// Crash-recovery demo with a *file-backed* NVMM region.
//
// First run:   creates ./nvcaracal_demo.pool, loads accounts, executes two
//              epochs, then simulates a crash in the middle of a third epoch.
//              The process state (DRAM: index, caches, version arrays) is
//              torn down; the pool file retains the torn epoch's partial
//              NVMM writes, but its epoch number was never advanced.
// Second run:  re-opens the pool file, runs failure recovery — rebuilding
//              the index from the persistent rows and deterministically
//              replaying the crashed epoch from the on-"NVMM" input log —
//              and verifies the balances.
//
// Usage: crash_recovery [pool-file]     (delete the file to start over)
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/core/database.h"
#include "src/sim/nvm_device.h"
#include "src/txn/transaction.h"

namespace {

using namespace nvc;

constexpr TableId kAccounts = 0;
constexpr txn::TxnType kCreditType = 7;
constexpr Key kAccountCount = 100;

// credit(account) += amount, and a running checksum on a separate row so the
// verification can detect lost or duplicated effects.
class CreditTxn final : public txn::Transaction {
 public:
  CreditTxn(Key account, std::uint64_t amount) : account_(account), amount_(amount) {}

  txn::TxnType type() const override { return kCreditType; }
  void EncodeInputs(BinaryWriter& writer) const override {
    writer.Put(account_);
    writer.Put(amount_);
  }
  static std::unique_ptr<txn::Transaction> Decode(BinaryReader& reader) {
    const auto account = reader.Get<Key>();
    const auto amount = reader.Get<std::uint64_t>();
    return std::make_unique<CreditTxn>(account, amount);
  }

  void AppendStep(txn::AppendContext& ctx) override {
    ctx.DeclareUpdate(kAccounts, account_);
  }
  void Execute(txn::ExecContext& ctx) override {
    std::uint64_t balance = 0;
    ctx.Read(kAccounts, account_, &balance, sizeof(balance));
    balance += amount_;
    ctx.Write(kAccounts, account_, &balance, sizeof(balance));
  }

 private:
  Key account_;
  std::uint64_t amount_;
};

std::vector<std::unique_ptr<txn::Transaction>> MakeEpoch(Epoch epoch) {
  std::vector<std::unique_ptr<txn::Transaction>> txns;
  Rng rng(9000 + epoch);
  for (int i = 0; i < 500; ++i) {
    const Key account = rng.NextBounded(kAccountCount);
    const std::uint64_t amount = rng.NextRange(1, 9);
    txns.push_back(std::make_unique<CreditTxn>(account, amount));
  }
  return txns;
}

core::DatabaseSpec Spec() {
  core::DatabaseSpec spec;
  spec.workers = 1;
  spec.tables.push_back(core::TableSpec{.name = "accounts", .capacity_rows = 1024});
  spec.value_blocks_per_core = 1024;
  spec.log_bytes = 1u << 20;
  // Persist the per-epoch replay digest so run 2 recovers instantly (reads
  // are served during the window; the epoch is backfilled behind them).
  spec.enable_instant_recovery = true;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string pool_path = argc > 1 ? argv[1] : "nvcaracal_demo.pool";
  const core::DatabaseSpec spec = Spec();

  sim::NvmConfig device_config;
  device_config.size_bytes = core::Database::RequiredDeviceBytes(spec);
  device_config.backing_file = pool_path;
  sim::NvmDevice device(device_config);

  txn::TxnRegistry registry;
  registry.Register(kCreditType, CreditTxn::Decode);

  core::Database db(device, spec);

  if (!device.recovered_existing_file()) {
    std::printf("[run 1] fresh pool file %s — loading and crashing mid-epoch\n",
                pool_path.c_str());
    db.Format();
    for (Key account = 0; account < kAccountCount; ++account) {
      const std::uint64_t balance = 1000;
      db.BulkLoad(kAccounts, account, &balance, sizeof(balance));
    }
    db.FinalizeLoad();

    db.ExecuteEpoch(MakeEpoch(1));
    db.ExecuteEpoch(MakeEpoch(2));
    std::printf("[run 1] two epochs committed (epoch=%u)\n", db.current_epoch());

    // Crash after 200 of 500 transactions of epoch 4 executed.
    int count = 0;
    db.SetCrashHook([&count](core::CrashSite site) {
      return site == core::CrashSite::kMidExecution && ++count > 200;
    });
    const core::EpochResult result = db.ExecuteEpoch(MakeEpoch(3));
    std::printf("[run 1] simulated crash mid-epoch (crashed=%d). Run me again to recover!\n",
                result.crashed ? 1 : 0);
    // Exit without checkpointing — the file holds a torn epoch.
    return 0;
  }

  std::printf("[run 2] found existing pool %s — recovering\n", pool_path.c_str());
  const core::RecoveryReport report = db.Recover(registry).value();
  if (report.instant) {
    std::printf("[run 2] instant recovery: ready to serve after %.2f ms; %zu keys of the "
                "crashed epoch pending backfill\n",
                report.time_to_first_commit * 1e3, report.backfill_pending_keys);
  } else {
    std::printf("[run 2] recovered to epoch %u; scanned %zu rows in %.2f ms; replayed %zu "
                "transactions in %.2f ms\n",
                report.recovered_epoch, report.rows_scanned,
                report.scan_rebuild_seconds * 1e3, report.replayed_txns,
                report.replay_seconds * 1e3);
  }

  // Verify against a fresh in-memory reference run of the same three epochs.
  std::uint64_t expected[kAccountCount];
  for (auto& balance : expected) {
    balance = 1000;
  }
  for (Epoch e = 1; e <= 3; ++e) {
    Rng rng(9000 + e);
    for (int i = 0; i < 500; ++i) {
      const Key account = rng.NextBounded(kAccountCount);
      expected[account] += rng.NextRange(1, 9);
    }
  }
  // Under instant recovery each of these reads transparently redoes its
  // key's slice of the crashed epoch before returning.
  std::size_t mismatches = 0;
  for (Key account = 0; account < kAccountCount; ++account) {
    std::uint64_t balance = 0;
    db.ReadCommitted(kAccounts, account, &balance, sizeof(balance));
    if (balance != expected[account]) {
      ++mismatches;
    }
  }
  if (db.instant_recovery_pending()) {
    const core::BackfillProgress progress = db.RecoveryProgress();
    if (const Status done = db.CompleteBackfill(); !done.ok()) {
      std::printf("[run 2] backfill failed: %s\n", done.ToString().c_str());
      return 1;
    }
    std::printf("[run 2] backfill retired the remaining %zu of %zu keys; the epoch is "
                "checkpointed and the read path is branch-free again\n",
                progress.pending_keys, progress.total_keys);
  }
  if (mismatches == 0) {
    std::printf("[run 2] verification OK: all %llu balances match the reference "
                "(the crashed epoch was replayed exactly)\n",
                static_cast<unsigned long long>(kAccountCount));
    std::remove(pool_path.c_str());
    return 0;
  }
  std::printf("[run 2] verification FAILED: %zu mismatching balances\n", mismatches);
  return 1;
}
