// Wholesale order-processing example: the TPC-C workload library on the
// public API — order entry, payments, deliveries, order status and stock
// level — followed by the TPC-C consistency audit. Shows how a workload with
// inserts, deletes, range-ish logic and non-deterministic order-id counters
// (RecoveryPolicy::kRevertAndReplay) is wired up.
//
// Usage: order_processing [warehouses] [epochs] [txns_per_epoch]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/core/database.h"
#include "src/sim/nvm_device.h"
#include "src/workload/tpcc.h"

int main(int argc, char** argv) {
  using namespace nvc;

  workload::TpccConfig config;
  config.warehouses = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 4;
  const std::size_t epochs = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 6;
  const std::size_t txns_per_epoch = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 2000;
  config.items = 2000;
  config.customers_per_district = 120;
  config.initial_orders_per_district = 120;
  config.new_order_capacity =
      static_cast<std::uint32_t>(epochs * txns_per_epoch / 2 + 10'000);

  workload::TpccWorkload tpcc(config);
  core::DatabaseSpec spec = tpcc.Spec(/*workers=*/1);

  sim::NvmConfig device_config;
  device_config.size_bytes = core::Database::RequiredDeviceBytes(spec);
  device_config.latency = sim::LatencyProfile::Optane();
  sim::NvmDevice device(device_config);
  core::Database db(device, spec);

  std::printf("loading %u warehouses (%u districts, %u customers)...\n", config.warehouses,
              config.warehouses * workload::kDistrictsPerWarehouse,
              config.warehouses * workload::kDistrictsPerWarehouse *
                  config.customers_per_district);
  db.Format();
  tpcc.Load(db);
  db.FinalizeLoad();

  for (std::size_t e = 0; e < epochs; ++e) {
    const core::EpochResult result = db.ExecuteEpoch(tpcc.MakeEpoch(txns_per_epoch));
    std::printf("epoch %2u: %7.0f txn/s (%zu committed)\n", result.epoch,
                result.committed / result.seconds, result.committed);
  }

  std::uint64_t orders = 0;
  for (std::uint64_t w = 1; w <= config.warehouses; ++w) {
    for (std::uint64_t d = 1; d <= workload::kDistrictsPerWarehouse; ++d) {
      orders += db.counter_value(workload::OrderCounter(config, w, d)) - 1;
    }
  }
  std::printf("\ntotal orders on file: %llu (rows: order %zu, order-line %zu, new-order %zu)\n",
              static_cast<unsigned long long>(orders), db.table_rows(workload::kOrderTable),
              db.table_rows(workload::kOrderLine), db.table_rows(workload::kNewOrderTable));

  std::string message;
  if (workload::TpccWorkload::CheckConsistency(db, config, &message)) {
    std::printf("TPC-C consistency audit: OK\n");
  } else {
    std::printf("TPC-C consistency audit FAILED: %s\n", message.c_str());
    return 1;
  }
  return 0;
}
