// Quickstart: define a transaction type, run epochs, read the results.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// This walks the whole public API surface: DatabaseSpec -> NvmDevice ->
// Database -> Format/BulkLoad/FinalizeLoad -> ExecuteEpoch -> ReadCommitted.
#include <cstdio>
#include <memory>
#include <vector>

#include "src/core/database.h"
#include "src/sim/nvm_device.h"
#include "src/txn/transaction.h"

namespace {

using namespace nvc;

constexpr TableId kAccounts = 0;
constexpr txn::TxnType kTransferType = 1;

// A one-shot transaction: all inputs are provided up front so the engine can
// log them to (simulated) NVMM and replay them deterministically after a
// crash. The write set is declared in AppendStep, before execution.
class TransferTxn final : public txn::Transaction {
 public:
  TransferTxn(Key from, Key to, std::int64_t amount)
      : from_(from), to_(to), amount_(amount) {}

  txn::TxnType type() const override { return kTransferType; }

  void EncodeInputs(BinaryWriter& writer) const override {
    writer.Put(from_);
    writer.Put(to_);
    writer.Put(amount_);
  }

  static std::unique_ptr<txn::Transaction> Decode(BinaryReader& reader) {
    const auto from = reader.Get<Key>();
    const auto to = reader.Get<Key>();
    const auto amount = reader.Get<std::int64_t>();
    return std::make_unique<TransferTxn>(from, to, amount);
  }

  void AppendStep(txn::AppendContext& ctx) override {
    ctx.DeclareUpdate(kAccounts, from_);
    ctx.DeclareUpdate(kAccounts, to_);
  }

  void Execute(txn::ExecContext& ctx) override {
    std::int64_t from_balance = 0;
    std::int64_t to_balance = 0;
    ctx.Read(kAccounts, from_, &from_balance, sizeof(from_balance));
    if (from_balance < amount_) {
      ctx.Abort();  // user-level aborts must precede all writes
      return;
    }
    ctx.Read(kAccounts, to_, &to_balance, sizeof(to_balance));
    from_balance -= amount_;
    to_balance += amount_;
    ctx.Write(kAccounts, from_, &from_balance, sizeof(from_balance));
    ctx.Write(kAccounts, to_, &to_balance, sizeof(to_balance));
  }

 private:
  Key from_;
  Key to_;
  std::int64_t amount_;
};

}  // namespace

int main() {
  // 1. Describe the database: one table of 256-byte persistent rows.
  core::DatabaseSpec spec;
  spec.workers = 1;
  spec.tables.push_back(core::TableSpec{.name = "accounts", .capacity_rows = 1024});
  spec.value_blocks_per_core = 1024;

  // 2. Create a simulated NVMM device with Optane-like latencies and open
  //    the database on it.
  sim::NvmConfig device_config;
  device_config.size_bytes = core::Database::RequiredDeviceBytes(spec);
  device_config.latency = sim::LatencyProfile::Optane();
  sim::NvmDevice device(device_config);
  core::Database db(device, spec);

  // 3. Load initial data.
  db.Format();
  for (Key account = 0; account < 10; ++account) {
    const std::int64_t balance = 100;
    db.BulkLoad(kAccounts, account, &balance, sizeof(balance));
  }
  db.FinalizeLoad();

  // 4. Execute an epoch of transactions. The serial order is the submission
  //    order; transaction 0 runs (logically) before transaction 1, etc.
  std::vector<std::unique_ptr<txn::Transaction>> txns;
  txns.push_back(std::make_unique<TransferTxn>(0, 1, 30));
  txns.push_back(std::make_unique<TransferTxn>(1, 2, 120));   // sees the +30
  txns.push_back(std::make_unique<TransferTxn>(2, 3, 1000));  // aborts: insufficient funds
  const core::EpochResult result = db.ExecuteEpoch(std::move(txns));
  std::printf("epoch %u: %zu committed, %zu aborted (%.2f ms)\n", result.epoch,
              result.committed, result.aborted, result.seconds * 1e3);

  // 5. Read the committed state.
  for (Key account = 0; account < 4; ++account) {
    std::int64_t balance = 0;
    db.ReadCommitted(kAccounts, account, &balance, sizeof(balance));
    std::printf("account %llu: %lld\n", static_cast<unsigned long long>(account),
                static_cast<long long>(balance));
  }

  // 6. Engine statistics: how many updates stayed in DRAM vs reached NVMM.
  std::printf("transient writes: %llu, persistent writes: %llu, logged bytes: %llu\n",
              static_cast<unsigned long long>(db.stats().transient_writes.Sum()),
              static_cast<unsigned long long>(db.stats().persistent_writes.Sum()),
              static_cast<unsigned long long>(db.stats().log_bytes.Sum()));
  return 0;
}
