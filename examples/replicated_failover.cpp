// Replication + failover demo: a primary ships each epoch's transaction
// inputs to a hot standby, which replays them deterministically. When the
// primary "dies", the standby is promoted and keeps serving epochs with zero
// data loss up to the last shipped epoch.
//
// Usage: replicated_failover [epochs] [txns_per_epoch]
#include <cstdio>
#include <cstdlib>

#include "src/replication/replica.h"
#include "src/sim/nvm_device.h"
#include "src/workload/smallbank.h"

int main(int argc, char** argv) {
  using namespace nvc;

  const std::size_t epochs = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 6;
  const std::size_t txns_per_epoch = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2000;

  workload::SmallBankConfig config;
  config.customers = 10'000;
  config.hotspot_customers = 300;
  workload::SmallBankWorkload bank(config);
  const core::DatabaseSpec spec = bank.Spec(1);

  auto make_device = [&] {
    sim::NvmConfig device_config;
    device_config.size_bytes = core::Database::RequiredDeviceBytes(spec);
    device_config.latency = sim::LatencyProfile::Optane();
    return device_config;
  };
  sim::NvmDevice primary_device(make_device());
  sim::NvmDevice standby_device(make_device());

  core::Database primary(primary_device, spec);
  core::Database standby(standby_device, spec);
  std::printf("loading primary and standby with %llu customers...\n",
              static_cast<unsigned long long>(config.customers));
  primary.Format();
  bank.Load(primary);
  primary.FinalizeLoad();
  standby.Format();
  bank.Load(standby);
  standby.FinalizeLoad();

  repl::Replica replica(standby, workload::SmallBankWorkload::Registry());
  repl::ReplicationChannel channel;

  for (std::size_t e = 0; e < epochs; ++e) {
    auto txns = bank.MakeEpoch(txns_per_epoch);
    channel.Ship(repl::MakeBundle(primary.current_epoch() + 1, txns));
    const core::EpochResult result = primary.ExecuteEpoch(std::move(txns));
    std::printf("primary  epoch %2u: %7.0f txn/s (%zu committed, %zu aborted)\n",
                result.epoch, result.committed / result.seconds, result.committed,
                result.aborted);
    // The standby applies asynchronously (here: every other epoch).
    if (e % 2 == 1) {
      const std::size_t applied = replica.CatchUp(channel);
      std::printf("standby  caught up %zu epoch(s), now at epoch %u\n", applied,
                  replica.applied_epoch());
    }
  }
  replica.CatchUp(channel);

  // Verify the standby matches the primary exactly before the "failure".
  std::size_t diffs = 0;
  for (std::uint64_t c = 0; c < config.customers; ++c) {
    std::int64_t a = 0;
    std::int64_t b = 0;
    primary.ReadCommitted(workload::kCheckingTable, c, &a, sizeof(a));
    standby.ReadCommitted(workload::kCheckingTable, c, &b, sizeof(b));
    diffs += a != b ? 1 : 0;
  }
  std::printf("\nstandby divergence before failover: %zu accounts (expect 0)\n", diffs);

  std::printf("simulating primary failure — promoting the standby...\n");
  const core::EpochResult result = standby.ExecuteEpoch(bank.MakeEpoch(txns_per_epoch));
  std::printf("promoted epoch %2u: %7.0f txn/s — failover complete, no data lost\n",
              result.epoch, result.committed / result.seconds);
  return diffs == 0 ? 0 : 1;
}
