// Bank-teller example: drives the SmallBank workload library through the
// public API, printing per-epoch throughput, abort rates, and the engine's
// transient/persistent write split — the paper's headline effect is directly
// visible: raise the hotspot skew and watch NVMM writes fall.
//
// Usage: bank_teller [customers] [hotspot_customers] [epochs] [txns_per_epoch]
#include <cstdio>
#include <cstdlib>

#include "src/core/database.h"
#include "src/sim/nvm_device.h"
#include "src/workload/smallbank.h"

int main(int argc, char** argv) {
  using namespace nvc;

  workload::SmallBankConfig config;
  config.customers = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20'000;
  config.hotspot_customers = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 500;
  const std::size_t epochs = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 8;
  const std::size_t txns_per_epoch = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 5000;

  workload::SmallBankWorkload bank(config);
  core::DatabaseSpec spec = bank.Spec(/*workers=*/1);

  sim::NvmConfig device_config;
  device_config.size_bytes = core::Database::RequiredDeviceBytes(spec);
  device_config.latency = sim::LatencyProfile::Optane();
  sim::NvmDevice device(device_config);
  core::Database db(device, spec);

  std::printf("loading %llu customers (hotspot %llu)...\n",
              static_cast<unsigned long long>(config.customers),
              static_cast<unsigned long long>(config.hotspot_customers));
  db.Format();
  bank.Load(db);
  db.FinalizeLoad();

  for (std::size_t e = 0; e < epochs; ++e) {
    db.stats().Reset();
    const core::EpochResult result = db.ExecuteEpoch(bank.MakeEpoch(txns_per_epoch));
    const double transient = static_cast<double>(db.stats().transient_writes.Sum());
    const double persistent = static_cast<double>(db.stats().persistent_writes.Sum());
    std::printf("epoch %2u: %7.0f txn/s, %4zu aborts, %4.1f%% of updates stayed in DRAM\n",
                result.epoch, result.committed / result.seconds, result.aborted,
                100.0 * transient / (transient + persistent));
  }

  const core::MemoryBreakdown memory = db.GetMemoryBreakdown();
  std::printf("\nfootprint: DRAM %.1f MB (index %.1f, transient %.1f, cache %.1f) | "
              "NVMM %.1f MB\n",
              memory.dram_total() / 1e6, memory.dram_index_bytes / 1e6,
              memory.dram_transient_bytes / 1e6, memory.dram_cache_bytes / 1e6,
              memory.nvm_total() / 1e6);
  return 0;
}
