// Async submission through the group-commit service.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/service_frontend
//
// Instead of hand-assembling epochs and calling ExecuteEpoch, clients hand
// individual transactions to a DbService and get back a TxnTicket — a
// future-like handle that resolves once the transaction's epoch is durable
// on (simulated) NVMM. The service's background pacer cuts epochs when
// either max_epoch_txns transactions are waiting or the oldest one has
// waited max_epoch_delay, so throughput-friendly batching happens without
// any client coordination. Submission order is the serial order.
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "src/core/database.h"
#include "src/service/db_service.h"
#include "src/sim/nvm_device.h"
#include "src/txn/transaction.h"

namespace {

using namespace nvc;

constexpr TableId kAccounts = 0;
constexpr txn::TxnType kDepositType = 1;

// Same one-shot shape as quickstart's TransferTxn, minimally: add an amount
// to one account.
class DepositTxn final : public txn::Transaction {
 public:
  DepositTxn(Key account, std::int64_t amount) : account_(account), amount_(amount) {}

  txn::TxnType type() const override { return kDepositType; }

  void EncodeInputs(BinaryWriter& writer) const override {
    writer.Put(account_);
    writer.Put(amount_);
  }

  void AppendStep(txn::AppendContext& ctx) override {
    ctx.DeclareUpdate(kAccounts, account_);
  }

  void Execute(txn::ExecContext& ctx) override {
    std::int64_t balance = 0;
    ctx.Read(kAccounts, account_, &balance, sizeof(balance));
    balance += amount_;
    ctx.Write(kAccounts, account_, &balance, sizeof(balance));
  }

 private:
  Key account_;
  std::int64_t amount_;
};

}  // namespace

int main() {
  // 1. Open a database exactly as in quickstart...
  core::DatabaseSpec spec;
  spec.workers = 2;
  spec.tables.push_back(core::TableSpec{.name = "accounts", .capacity_rows = 1024});
  spec.value_blocks_per_core = 1024;

  sim::NvmConfig device_config;
  device_config.size_bytes = core::Database::RequiredDeviceBytes(spec);
  device_config.latency = sim::LatencyProfile::Optane();
  sim::NvmDevice device(device_config);

  auto db = std::make_unique<core::Database>(device, spec);
  db->Format();
  for (Key account = 0; account < 8; ++account) {
    const std::int64_t balance = 0;
    db->BulkLoad(kAccounts, account, &balance, sizeof(balance));
  }
  db->FinalizeLoad();

  // 2. ...then hand it to the service. The pacer cuts an epoch after 64
  //    transactions or 500 microseconds, whichever comes first; a full queue
  //    blocks submitters (BackpressurePolicy::kBlock, the default).
  service::ServiceSpec sspec;
  sspec.max_epoch_txns = 64;
  sspec.max_epoch_delay = std::chrono::microseconds(500);
  sspec.queue_capacity = 1024;
  service::DbService svc(std::move(db), sspec);

  // 3. Concurrent clients submit independently — no epoch assembly anywhere.
  constexpr int kClients = 4;
  constexpr int kDepositsPerClient = 100;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&svc, c] {
      for (int i = 0; i < kDepositsPerClient; ++i) {
        auto ticket = svc.Submit(std::make_unique<DepositTxn>(c, 1));
        if (!ticket.ok()) {
          std::fprintf(stderr, "client %d: %s\n", c, ticket.status().ToString().c_str());
          return;
        }
        if (i + 1 == kDepositsPerClient) {
          // Block on the last ticket: Get() returns once the epoch holding
          // this deposit is durable.
          const service::TicketResult& r = ticket.value().Get();
          std::printf("client %d: last deposit durable in epoch %u after %.1f us\n", c,
                      r.epoch, r.latency_micros);
        }
      }
    });
  }
  for (std::thread& t : clients) {
    t.join();
  }

  // 4. Drain flushes every queued transaction to durability, then the
  //    latency snapshot summarizes submit->durable times service-wide.
  if (const Status drained = svc.Drain(); !drained.ok()) {
    std::fprintf(stderr, "drain failed: %s\n", drained.ToString().c_str());
    return 1;
  }
  const LatencySummary lat = svc.LatencySnapshot();
  std::printf("%zu transactions over %zu epochs; latency p50 %.1f us, p99 %.1f us\n",
              lat.count, svc.epochs_executed(), lat.p50, lat.p99);

  // 5. Reclaim the database for direct reads (stops the service).
  std::unique_ptr<core::Database> done = svc.TakeDatabase();
  bool correct = true;
  for (Key account = 0; account < kClients; ++account) {
    std::int64_t balance = 0;
    const StatusOr<std::uint32_t> n =
        done->ReadCommitted(kAccounts, account, &balance, sizeof(balance));
    correct = correct && n.ok() && balance == kDepositsPerClient;
    std::printf("account %llu: %lld\n", static_cast<unsigned long long>(account),
                static_cast<long long>(balance));
  }
  if (!correct) {
    std::fprintf(stderr, "balances do not match the submitted deposits\n");
    return 1;
  }
  return 0;
}
