// Async submission through the group-commit service.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/service_frontend
//
// Instead of hand-assembling epochs and calling ExecuteEpoch, clients hand
// individual transactions to a DbService and get back a TxnTicket — a
// future-like handle that resolves once the transaction's epoch is durable
// on (simulated) NVMM. The service's background pacer cuts epochs when
// either max_epoch_txns transactions are waiting or the oldest one has
// waited max_epoch_delay, so throughput-friendly batching happens without
// any client coordination. Submission order is the serial order.
//
// The second half crashes the engine mid-epoch and reopens it with instant
// recovery: Recover() returns before the crashed epoch is replayed, the
// service refuses Submit with kUnavailable while its pacer backfills the
// pending keys, and a client with bounded exponential backoff rides out the
// window without losing a deposit.
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "src/core/database.h"
#include "src/service/db_service.h"
#include "src/sim/nvm_device.h"
#include "src/txn/transaction.h"

namespace {

using namespace nvc;

constexpr TableId kAccounts = 0;
constexpr txn::TxnType kDepositType = 1;

// Same one-shot shape as quickstart's TransferTxn, minimally: add an amount
// to one account.
class DepositTxn final : public txn::Transaction {
 public:
  DepositTxn(Key account, std::int64_t amount) : account_(account), amount_(amount) {}

  txn::TxnType type() const override { return kDepositType; }

  void EncodeInputs(BinaryWriter& writer) const override {
    writer.Put(account_);
    writer.Put(amount_);
  }

  void AppendStep(txn::AppendContext& ctx) override {
    ctx.DeclareUpdate(kAccounts, account_);
  }

  void Execute(txn::ExecContext& ctx) override {
    std::int64_t balance = 0;
    ctx.Read(kAccounts, account_, &balance, sizeof(balance));
    balance += amount_;
    ctx.Write(kAccounts, account_, &balance, sizeof(balance));
  }

 private:
  Key account_;
  std::int64_t amount_;
};

}  // namespace

int main() {
  // 1. Open a database exactly as in quickstart...
  core::DatabaseSpec spec;
  spec.workers = 2;
  spec.tables.push_back(core::TableSpec{.name = "accounts", .capacity_rows = 1024});
  spec.value_blocks_per_core = 1024;
  spec.enable_instant_recovery = true;  // for the crash demo in part 6

  sim::NvmConfig device_config;
  device_config.size_bytes = core::Database::RequiredDeviceBytes(spec);
  device_config.latency = sim::LatencyProfile::Optane();
  // Shadow tracking lets part 6 simulate a power failure (device.Crash()).
  device_config.crash_tracking = sim::CrashTracking::kShadow;
  sim::NvmDevice device(device_config);

  auto db = std::make_unique<core::Database>(device, spec);
  db->Format();
  for (Key account = 0; account < 8; ++account) {
    const std::int64_t balance = 0;
    db->BulkLoad(kAccounts, account, &balance, sizeof(balance));
  }
  db->FinalizeLoad();

  // 2. ...then hand it to the service. The pacer cuts an epoch after 64
  //    transactions or 500 microseconds, whichever comes first; a full queue
  //    blocks submitters (BackpressurePolicy::kBlock, the default).
  service::ServiceSpec sspec;
  sspec.max_epoch_txns = 64;
  sspec.max_epoch_delay = std::chrono::microseconds(500);
  sspec.queue_capacity = 1024;
  service::DbService svc(std::move(db), sspec);

  // 3. Concurrent clients submit independently — no epoch assembly anywhere.
  constexpr int kClients = 4;
  constexpr int kDepositsPerClient = 100;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&svc, c] {
      for (int i = 0; i < kDepositsPerClient; ++i) {
        auto ticket = svc.Submit(std::make_unique<DepositTxn>(c, 1));
        if (!ticket.ok()) {
          std::fprintf(stderr, "client %d: %s\n", c, ticket.status().ToString().c_str());
          return;
        }
        if (i + 1 == kDepositsPerClient) {
          // Block on the last ticket: Get() returns once the epoch holding
          // this deposit is durable.
          const service::TicketResult& r = ticket.value().Get();
          std::printf("client %d: last deposit durable in epoch %u after %.1f us\n", c,
                      r.epoch, r.latency_micros);
        }
      }
    });
  }
  for (std::thread& t : clients) {
    t.join();
  }

  // 4. Drain flushes every queued transaction to durability, then the
  //    latency snapshot summarizes submit->durable times service-wide.
  if (const Status drained = svc.Drain(); !drained.ok()) {
    std::fprintf(stderr, "drain failed: %s\n", drained.ToString().c_str());
    return 1;
  }
  const LatencySummary lat = svc.LatencySnapshot();
  std::printf("%zu transactions over %zu epochs; latency p50 %.1f us, p99 %.1f us\n",
              lat.count, svc.epochs_executed(), lat.p50, lat.p99);

  // 5. Reclaim the database for direct reads (stops the service).
  std::unique_ptr<core::Database> done = svc.TakeDatabase();
  bool correct = true;
  for (Key account = 0; account < kClients; ++account) {
    std::int64_t balance = 0;
    const StatusOr<std::uint32_t> n =
        done->ReadCommitted(kAccounts, account, &balance, sizeof(balance));
    correct = correct && n.ok() && balance == kDepositsPerClient;
    std::printf("account %llu: %lld\n", static_cast<unsigned long long>(account),
                static_cast<long long>(balance));
  }
  if (!correct) {
    std::fprintf(stderr, "balances do not match the submitted deposits\n");
    return 1;
  }

  // 6. Crash mid-epoch, reopen with instant recovery, and submit through the
  //    backfill window. The crashed epoch deposits 900 per account; the
  //    crash hook fires after execution but before the epoch's durability
  //    point, so only instant recovery's redo can surface those writes.
  done->SetCrashHook(
      [](core::CrashSite site) { return site == core::CrashSite::kBeforeEpochPersist; });
  std::vector<std::unique_ptr<txn::Transaction>> crashing_epoch;
  for (Key account = 0; account < kClients; ++account) {
    crashing_epoch.push_back(std::make_unique<DepositTxn>(account, 900));
  }
  // Under pipelining the hook fires on the asynchronous tail; WaitIdle
  // surfaces it when ExecuteEpoch itself returned before the tail ran.
  bool crashed = done->ExecuteEpoch(std::move(crashing_epoch)).crashed;
  if (!crashed) {
    crashed = !done->WaitIdle().ok();
  }
  if (!crashed) {
    std::fprintf(stderr, "crash hook unexpectedly did not fire\n");
    return 1;
  }
  done.reset();
  device.Crash();  // drop DRAM state and every unfenced NVMM line

  auto reopened = std::make_unique<core::Database>(device, spec);
  txn::TxnRegistry registry;
  registry.Register(kDepositType, [](BinaryReader& r) -> std::unique_ptr<txn::Transaction> {
    const auto account = r.Get<Key>();
    const auto amount = r.Get<std::int64_t>();
    return std::make_unique<DepositTxn>(account, amount);
  });
  const StatusOr<core::RecoveryReport> report = reopened->Recover(registry);
  if (!report.ok() || !report->instant) {
    std::fprintf(stderr, "expected an instant recovery: %s\n",
                 report.ok() ? "fell back to full replay" : report.status().ToString().c_str());
    return 1;
  }
  std::printf("instant recovery: first commit possible after %.3f ms (%zu keys pending)\n",
              report->time_to_first_commit * 1e3, report->backfill_pending_keys);
  // Stretch the backfill window (the hook runs once per pending key) so the
  // client's backoff loop below actually observes kUnavailable.
  reopened->SetCrashHook([](core::CrashSite site) {
    if (site == core::CrashSite::kMidBackfill) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return false;
  });

  service::DbService recovered_svc(std::move(reopened), sspec);
  int refusals = 0;
  for (Key account = 0; account < kClients; ++account) {
    std::chrono::milliseconds backoff(1);
    for (;;) {
      const auto ticket = recovered_svc.Submit(std::make_unique<DepositTxn>(account, 1));
      if (ticket.ok()) {
        break;
      }
      if (ticket.status().code() != StatusCode::kUnavailable) {
        std::fprintf(stderr, "submit failed: %s\n", ticket.status().ToString().c_str());
        return 1;
      }
      // The status message carries the service's retry-after hint; a simple
      // client can just back off exponentially (bounded at 32 ms).
      ++refusals;
      std::this_thread::sleep_for(backoff);
      if (backoff < std::chrono::milliseconds(32)) {
        backoff *= 2;
      }
    }
  }
  if (const Status drained = recovered_svc.Drain(); !drained.ok()) {
    std::fprintf(stderr, "drain after recovery failed: %s\n", drained.ToString().c_str());
    return 1;
  }
  std::printf("submitted %d post-crash deposits through the window (%d refusals)\n",
              kClients, refusals);

  std::unique_ptr<core::Database> final_db = recovered_svc.TakeDatabase();
  final_db->SetCrashHook({});
  for (Key account = 0; account < kClients; ++account) {
    std::int64_t balance = 0;
    const StatusOr<std::uint32_t> n =
        final_db->ReadCommitted(kAccounts, account, &balance, sizeof(balance));
    // 100 pre-crash deposits + 900 from the redone crashed epoch + 1 after.
    correct = correct && n.ok() && balance == kDepositsPerClient + 901;
    std::printf("account %llu after recovery: %lld\n",
                static_cast<unsigned long long>(account), static_cast<long long>(balance));
  }
  if (!correct) {
    std::fprintf(stderr, "post-recovery balances lost a deposit\n");
    return 1;
  }
  return 0;
}
