// Adversarial contention/skew stress suite (PR8).
//
// One parameterized binary driving five scenarios that are deliberately
// hostile to the engine's weak spots, each against a fresh database over the
// simulated NVMM device:
//
//   zipf_sweep     hot-key skew: single-key RMWs with zipfian key choice,
//                  swept over theta in {0.50, 0.90, 0.99, 1.20}. Rising theta
//                  concentrates version-array growth on ever-fewer rows.
//   rmw_storm      every transaction is a read-modify-write on one of 8 rows:
//                  the worst case for per-row version arrays and minor GC.
//   aria_deferral  Aria concurrency control with 64 conflicting RMWs per
//                  epoch over 16 rows: most of each batch is deterministically
//                  deferred, building a multi-epoch deferral chain that the
//                  suite then drains to empty.
//   cold_thrash    working set larger than the DRAM cache (256 entries over
//                  2048 pool-backed rows, cache_k = 1) with the cold tier
//                  enabled: every epoch demotes cold rows and promotes them
//                  right back.
//   range_mix      ordered table under a scan/write/insert/delete mix; the
//                  identical stream is replayed on the pipelined, barrier,
//                  and serial-tail engines and all three final states must
//                  hash equal (scan digests are committed state, so a scan
//                  divergence anywhere shows up in the hash).
//
// Every scenario derives its workload RNG from seed ^ FNV(scenario name) —
// never from the shared base seed directly, so reordering scenarios or
// running one in isolation (--scenario=NAME) cannot change its stream — and
// runs twice with that same seed; the two runs must produce identical oracle
// StateHash values or the suite fails. Per-scenario throughput, abort and
// deferral rates, and per-phase profiler attribution (wall/busy ms and NVM
// bytes per epoch phase) land in BENCH_PR8.json.
//
// Usage: stress_suite [--out=PATH] [--scale=F] [--workers=N] [--seed=N]
//                     [--scenario=NAME]
//   --scale (or NVC_BENCH_SCALE) multiplies epochs per scenario; 0.2 is the
//   CI smoke setting. Absolute throughput depends on the host; the JSON is
//   for shape and rate comparisons, and `healthy` asserts only determinism
//   and cross-engine agreement.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/common/profiler.h"
#include "src/common/rng.h"
#include "src/core/database.h"
#include "src/core/oracle.h"
#include "src/sim/nvm_device.h"
#include "tests/test_util.h"

namespace {

using nvc::Key;
using nvc::ProfileReport;
using nvc::Rng;
using nvc::SplitMix64;
using nvc::ZipfGenerator;
using nvc::core::Database;
using nvc::core::DatabaseSpec;
using nvc::core::EpochResult;
using nvc::sim::NvmConfig;
using nvc::sim::NvmDevice;
using nvc::txn::Transaction;

std::uint64_t FnvHash(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

using EpochFn =
    std::function<std::vector<std::unique_ptr<Transaction>>(Rng&, std::size_t)>;

struct Scenario {
  std::string name;
  std::string detail;
  DatabaseSpec spec;
  bool cold = false;
  std::size_t load_rows = 0;         // BulkLoad keys [0, load_rows)
  std::uint32_t load_value_bytes = 8;
  std::size_t epochs = 0;
  std::size_t txns_per_epoch = 0;
  bool drain_deferrals = false;  // run empty epochs until the backlog is gone
  EpochFn make_epoch;
};

struct RunOutcome {
  double seconds = 0;
  std::size_t committed = 0;
  std::size_t aborted = 0;
  std::size_t deferred = 0;
  std::size_t drain_epochs = 0;
  std::size_t max_deferred_per_epoch = 0;
  std::uint64_t state_hash = 0;
  ProfileReport profile;
};

struct ScenarioResult {
  std::string name;
  std::string detail;
  double txns_per_sec = 0;
  RunOutcome run;
  bool deterministic = false;  // double-run StateHash equality
  bool engines_agree = true;   // range_mix only; trivially true elsewhere
  std::vector<std::pair<std::string, double>> extras;
};

void LoadRows(Database& db, std::size_t rows, std::uint32_t value_bytes) {
  std::vector<std::uint8_t> value(value_bytes);
  for (std::size_t key = 0; key < rows; ++key) {
    if (value_bytes == 8) {
      const std::uint64_t v = 5000 + key;
      std::memcpy(value.data(), &v, 8);
    } else {
      for (std::uint32_t i = 0; i < value_bytes; ++i) {
        value[i] = static_cast<std::uint8_t>(key * 7 + i);
      }
    }
    db.BulkLoad(0, key, value.data(), value_bytes);
  }
  db.FinalizeLoad();
}

NvmConfig HotDeviceConfig(const DatabaseSpec& spec) {
  NvmConfig config;
  config.size_bytes = Database::RequiredDeviceBytes(spec);
  return config;
}

NvmConfig ColdDeviceConfig(const DatabaseSpec& spec) {
  NvmConfig config;
  config.size_bytes = Database::RequiredColdDeviceBytes(spec);
  config.access_granule = 4096;
  return config;
}

// One full scenario execution on a fresh database. The workload RNG is
// seeded from `seed` alone, so two calls with the same seed replay the same
// stream transaction for transaction.
RunOutcome RunOnce(const Scenario& scenario, const DatabaseSpec& spec, std::uint64_t seed) {
  NvmDevice device(HotDeviceConfig(spec));
  std::unique_ptr<NvmDevice> cold;
  if (scenario.cold) {
    cold = std::make_unique<NvmDevice>(ColdDeviceConfig(spec));
  }
  Database db(device, spec, cold.get());
  db.Format();
  LoadRows(db, scenario.load_rows, scenario.load_value_bytes);

  nvc::ProfilerConfig profiler_config;
  profiler_config.enabled = true;
  db.ConfigureProfiler(profiler_config);

  Rng rng(seed);
  RunOutcome outcome;
  for (std::size_t e = 0; e < scenario.epochs; ++e) {
    const EpochResult r = db.ExecuteEpoch(scenario.make_epoch(rng, e));
    outcome.seconds += r.seconds;
    outcome.committed += r.committed;
    outcome.aborted += r.aborted;
    outcome.deferred += r.deferred;
    outcome.max_deferred_per_epoch = std::max(outcome.max_deferred_per_epoch, r.deferred);
  }
  if (scenario.drain_deferrals) {
    // The Aria backlog re-runs at the front of each next batch; empty epochs
    // let the chain collapse (each drain epoch commits the min-SID writers).
    for (std::size_t guard = 0; guard < 200; ++guard) {
      const EpochResult r = db.ExecuteEpoch({});
      outcome.seconds += r.seconds;
      outcome.committed += r.committed;
      outcome.aborted += r.aborted;
      ++outcome.drain_epochs;
      if (r.deferred == 0) {
        break;
      }
      outcome.deferred += r.deferred;
    }
  }
  if (!db.WaitIdle().ok()) {
    std::fprintf(stderr, "stress_suite: WaitIdle failed in %s\n", scenario.name.c_str());
    std::exit(1);
  }
  outcome.state_hash = nvc::core::StateHash(nvc::core::CaptureState(db));
  outcome.profile = db.ProfileReport();

  // The ordered index must stay consistent with the hash index under any mix.
  std::string ordered_diff;
  if (nvc::core::ValidateOrderedIndex(db, &ordered_diff) != 0) {
    std::fprintf(stderr, "stress_suite: ordered index inconsistent in %s:\n%s",
                 scenario.name.c_str(), ordered_diff.c_str());
    std::exit(1);
  }
  return outcome;
}

// Runs the scenario twice with the same per-scenario seed and asserts the
// committed states hash identical — the determinism contract every recovery
// and equivalence argument in this engine rests on.
ScenarioResult RunScenario(const Scenario& scenario, std::uint64_t base_seed) {
  const std::uint64_t seed = base_seed ^ FnvHash(scenario.name);
  ScenarioResult result;
  result.name = scenario.name;
  result.detail = scenario.detail;
  result.run = RunOnce(scenario, scenario.spec, seed);
  const RunOutcome second = RunOnce(scenario, scenario.spec, seed);
  result.deterministic = result.run.state_hash == second.state_hash;
  const double txns =
      static_cast<double>(scenario.epochs * scenario.txns_per_epoch);
  result.txns_per_sec = result.run.seconds > 0 ? txns / result.run.seconds : 0;
  return result;
}

// ---- Scenario definitions ---------------------------------------------------

DatabaseSpec BaseSpec(std::size_t workers, std::size_t rows, bool ordered = false) {
  DatabaseSpec spec = nvc::test::SmallKvSpec(workers, ordered);
  spec.tables[0].capacity_rows = rows + 512;
  spec.tables[0].freelist_capacity = rows + 512;
  spec.value_blocks_per_core = 2 * rows + 2048;
  spec.value_freelist_capacity = 2 * (2 * rows + 2048);
  spec.log_bytes = 8u << 20;
  return spec;
}

Scenario MakeRmwStorm(std::size_t workers, std::size_t epochs) {
  Scenario s;
  s.name = "rmw_storm";
  s.detail = "all transactions RMW one of 8 rows (version-array worst case)";
  s.spec = BaseSpec(workers, 64);
  s.load_rows = 64;
  s.epochs = epochs;
  s.txns_per_epoch = 256;
  s.make_epoch = [](Rng& rng, std::size_t) {
    std::vector<std::unique_ptr<Transaction>> txns;
    txns.reserve(256);
    for (std::size_t i = 0; i < 256; ++i) {
      txns.push_back(
          std::make_unique<nvc::test::KvRmwTxn>(rng.NextBounded(8), rng.NextBounded(1000)));
    }
    return txns;
  };
  return s;
}

Scenario MakeAriaDeferral(std::size_t workers, std::size_t epochs) {
  Scenario s;
  s.name = "aria_deferral";
  s.detail = "Aria: 64 conflicting RMWs/epoch over 16 rows; backlog drained at end";
  s.spec = BaseSpec(workers, 64);
  s.spec.concurrency = nvc::core::ConcurrencyControl::kAria;
  s.load_rows = 64;
  s.epochs = epochs;
  s.txns_per_epoch = 64;
  s.drain_deferrals = true;
  s.make_epoch = [](Rng& rng, std::size_t) {
    std::vector<std::unique_ptr<Transaction>> txns;
    txns.reserve(64);
    for (std::size_t i = 0; i < 64; ++i) {
      txns.push_back(
          std::make_unique<nvc::test::KvRmwTxn>(rng.NextBounded(16), rng.NextBounded(1000)));
    }
    return txns;
  };
  return s;
}

Scenario MakeColdThrash(std::size_t workers, std::size_t epochs) {
  Scenario s;
  s.name = "cold_thrash";
  s.detail = "2048 pool-backed rows vs a 256-entry cache, cold tier on (thrash)";
  s.spec = BaseSpec(workers, 2048);
  s.spec.enable_cold_tier = true;
  s.spec.cache_max_entries = 256;
  s.spec.cache_k = 1;
  s.spec.cold_block_size = 1024;
  s.spec.cold_blocks_per_core = 2 * 2048 + 2048;
  s.spec.cold_freelist_capacity = 2 * (2 * 2048 + 2048);
  s.cold = true;
  s.load_rows = 2048;
  s.load_value_bytes = nvc::test::kBigValueSize;  // pool-allocated, demotable
  s.epochs = epochs;
  s.txns_per_epoch = 256;
  s.make_epoch = [](Rng& rng, std::size_t) {
    std::vector<std::unique_ptr<Transaction>> txns;
    txns.reserve(256);
    for (std::size_t i = 0; i < 256; ++i) {
      const Key key = rng.NextBounded(2048);
      if (rng.NextPercent(30)) {
        txns.push_back(std::make_unique<nvc::test::KvBigPutTxn>(key, rng.Next()));
      } else {
        txns.push_back(std::make_unique<nvc::test::KvRmwTxn>(key, rng.NextBounded(1000)));
      }
    }
    return txns;
  };
  return s;
}

Scenario MakeRangeMix(std::size_t workers, std::size_t epochs) {
  Scenario s;
  s.name = "range_mix";
  s.detail = "ordered table: 45% put / 25% scan-digest / 20% insert-delete / 10% rmw";
  s.spec = BaseSpec(workers, 4096, /*ordered=*/true);
  s.load_rows = 2048;  // keys [2048, 2560) churn via insert/delete
  s.epochs = epochs;
  s.txns_per_epoch = 256;
  // dyn_live must be captured per run, not per scenario: a shared_ptr inside
  // the closure would leak one run's churn state into the next and break the
  // double-run determinism assert. Keying it off epoch 0 resets it.
  auto dyn_live = std::make_shared<std::set<Key>>();
  s.make_epoch = [dyn_live](Rng& rng, std::size_t epoch) {
    if (epoch == 0) {
      dyn_live->clear();
    }
    std::set<Key> dyn_touched;
    std::vector<std::unique_ptr<Transaction>> txns;
    txns.reserve(256);
    for (std::size_t i = 0; i < 256; ++i) {
      const std::uint64_t pick = rng.NextBounded(100);
      if (pick < 45) {
        txns.push_back(
            std::make_unique<nvc::test::KvPutTxn>(rng.NextBounded(2048), rng.Next()));
      } else if (pick < 70) {
        const Key lo = rng.NextBounded(2560);
        const Key hi = lo + 1 + rng.NextBounded(64);
        const auto limit = static_cast<std::uint32_t>(1 + rng.NextBounded(32));
        const Key out_key = rng.NextBounded(2048);
        txns.push_back(std::make_unique<nvc::test::KvScanSumTxn>(lo, hi, limit, out_key));
      } else if (pick < 90) {
        const Key key = 2048 + rng.NextBounded(512);
        if (!dyn_touched.insert(key).second) {
          txns.push_back(
              std::make_unique<nvc::test::KvPutTxn>(rng.NextBounded(2048), rng.Next()));
        } else if (dyn_live->count(key) != 0) {
          dyn_live->erase(key);
          txns.push_back(std::make_unique<nvc::test::KvDeleteTxn>(key));
        } else {
          dyn_live->insert(key);
          txns.push_back(std::make_unique<nvc::test::KvInsertTxn>(key, rng.Next()));
        }
      } else {
        txns.push_back(std::make_unique<nvc::test::KvRmwTxn>(rng.NextBounded(2048),
                                                             rng.NextBounded(1000)));
      }
    }
    return txns;
  };
  return s;
}

// zipf_sweep runs one sub-run per theta on a fresh database and reports the
// per-theta throughput; the scenario hash folds all four final states.
ScenarioResult RunZipfSweep(std::size_t workers, std::size_t epochs,
                            std::uint64_t base_seed) {
  constexpr double kThetas[] = {0.50, 0.90, 0.99, 1.20};
  constexpr std::size_t kRows = 4096;
  constexpr std::size_t kTxns = 256;

  ScenarioResult result;
  result.name = "zipf_sweep";
  result.detail = "single-key RMWs, zipfian keys over 4096 rows, theta sweep";
  const std::uint64_t seed = base_seed ^ FnvHash(result.name);

  Scenario s;
  s.name = result.name;
  s.spec = BaseSpec(workers, kRows);
  s.load_rows = kRows;
  s.epochs = epochs;
  s.txns_per_epoch = kTxns;

  result.deterministic = true;
  std::uint64_t combined = 0;
  double total_seconds = 0;
  for (const double theta : kThetas) {
    // The generator is rebuilt per run from (rows, theta): its draws consume
    // the run RNG, so determinism follows from the seed alone.
    auto zipf = std::make_shared<ZipfGenerator>(kRows, theta, /*scatter=*/true);
    s.make_epoch = [zipf](Rng& rng, std::size_t) {
      std::vector<std::unique_ptr<Transaction>> txns;
      txns.reserve(kTxns);
      for (std::size_t i = 0; i < kTxns; ++i) {
        txns.push_back(
            std::make_unique<nvc::test::KvRmwTxn>(zipf->Next(rng), rng.NextBounded(1000)));
      }
      return txns;
    };
    const std::uint64_t theta_seed = seed ^ SplitMix64(static_cast<std::uint64_t>(theta * 100));
    const RunOutcome first = RunOnce(s, s.spec, theta_seed);
    const RunOutcome second = RunOnce(s, s.spec, theta_seed);
    result.deterministic = result.deterministic && first.state_hash == second.state_hash;
    combined ^= SplitMix64(first.state_hash);
    total_seconds += first.seconds;
    result.run.committed += first.committed;
    result.run.aborted += first.aborted;
    result.run.seconds += first.seconds;
    result.run.profile = first.profile;  // last theta's attribution
    char label[64];
    std::snprintf(label, sizeof(label), "theta_%.2f_txns_per_sec", theta);
    result.extras.emplace_back(
        label, first.seconds > 0
                   ? static_cast<double>(epochs * kTxns) / first.seconds
                   : 0);
  }
  result.run.state_hash = combined;
  result.txns_per_sec =
      total_seconds > 0
          ? static_cast<double>(std::size(kThetas) * epochs * kTxns) / total_seconds
          : 0;
  return result;
}

// range_mix additionally replays the identical stream on the barrier and
// serial-tail engines: all three final state hashes must agree, which proves
// RangeScan/Scan results (committed via scan digests) are engine-invariant.
ScenarioResult RunRangeMix(std::size_t workers, std::size_t epochs,
                           std::uint64_t base_seed) {
  Scenario scenario = MakeRangeMix(workers, epochs);
  ScenarioResult result = RunScenario(scenario, base_seed);
  const std::uint64_t seed = base_seed ^ FnvHash(scenario.name);

  DatabaseSpec barrier = scenario.spec;
  barrier.enable_epoch_pipeline = false;
  const RunOutcome barrier_run = RunOnce(scenario, barrier, seed);

  DatabaseSpec serial = scenario.spec;
  serial.enable_epoch_pipeline = false;
  serial.enable_parallel_tail = false;
  const RunOutcome serial_run = RunOnce(scenario, serial, seed);

  result.engines_agree = result.run.state_hash == barrier_run.state_hash &&
                         result.run.state_hash == serial_run.state_hash;
  result.extras.emplace_back("barrier_txns_per_sec",
                             barrier_run.seconds > 0
                                 ? static_cast<double>(scenario.epochs * scenario.txns_per_epoch) /
                                       barrier_run.seconds
                                 : 0);
  result.extras.emplace_back("serial_tail_txns_per_sec",
                             serial_run.seconds > 0
                                 ? static_cast<double>(scenario.epochs * scenario.txns_per_epoch) /
                                       serial_run.seconds
                                 : 0);
  return result;
}

// ---- Reporting --------------------------------------------------------------

void WriteScenarioJson(std::FILE* f, const ScenarioResult& r, bool last) {
  const double total = static_cast<double>(r.run.committed + r.run.aborted + r.run.deferred);
  std::fprintf(f, "    {\n");
  std::fprintf(f, "      \"name\": \"%s\",\n", r.name.c_str());
  std::fprintf(f, "      \"detail\": \"%s\",\n", r.detail.c_str());
  std::fprintf(f, "      \"txns_per_sec\": %.1f,\n", r.txns_per_sec);
  std::fprintf(f, "      \"committed\": %zu,\n", r.run.committed);
  std::fprintf(f, "      \"aborted\": %zu,\n", r.run.aborted);
  std::fprintf(f, "      \"deferred\": %zu,\n", r.run.deferred);
  std::fprintf(f, "      \"abort_rate\": %.4f,\n",
               total > 0 ? static_cast<double>(r.run.aborted) / total : 0);
  std::fprintf(f, "      \"deferral_rate\": %.4f,\n",
               total > 0 ? static_cast<double>(r.run.deferred) / total : 0);
  std::fprintf(f, "      \"max_deferred_per_epoch\": %zu,\n", r.run.max_deferred_per_epoch);
  std::fprintf(f, "      \"drain_epochs\": %zu,\n", r.run.drain_epochs);
  std::fprintf(f, "      \"state_hash\": \"0x%016llx\",\n",
               static_cast<unsigned long long>(r.run.state_hash));
  std::fprintf(f, "      \"deterministic\": %s,\n", r.deterministic ? "true" : "false");
  std::fprintf(f, "      \"engines_agree\": %s,\n", r.engines_agree ? "true" : "false");
  for (const auto& [key, value] : r.extras) {
    std::fprintf(f, "      \"%s\": %.1f,\n", key.c_str(), value);
  }
  std::fprintf(f, "      \"phases\": [\n");
  bool first_phase = true;
  for (std::size_t p = 0; p < nvc::kPhaseCount; ++p) {
    const nvc::PhaseAggregate& agg = r.run.profile.phases[p];
    if (agg.activations == 0 && agg.worker_spans == 0) {
      continue;
    }
    std::fprintf(f,
                 "%s        {\"phase\": \"%s\", \"wall_ms\": %.3f, \"busy_ms\": %.3f, "
                 "\"nvm_write_bytes\": %llu, \"nvm_read_bytes\": %llu}",
                 first_phase ? "" : ",\n", nvc::PhaseName(static_cast<nvc::Phase>(p)),
                 agg.wall_ms, agg.busy_ms,
                 static_cast<unsigned long long>(agg.ops.nvm_write_bytes),
                 static_cast<unsigned long long>(agg.ops.nvm_read_bytes));
    first_phase = false;
  }
  std::fprintf(f, "\n      ]\n");
  std::fprintf(f, "    }%s\n", last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_PR8.json";
  double scale = 1.0;
  if (const char* env = std::getenv("NVC_BENCH_SCALE"); env != nullptr && env[0] != '\0') {
    const double parsed = std::atof(env);
    if (parsed > 0) {
      scale = parsed;
    }
  }
  std::size_t workers = 1;
  std::uint64_t base_seed = 42;
  std::string only;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--out=", 6) == 0) {
      out_path = arg + 6;
    } else if (std::strncmp(arg, "--scale=", 8) == 0) {
      const double parsed = std::atof(arg + 8);
      if (parsed <= 0) {
        std::fprintf(stderr, "--scale requires a positive number\n");
        return 2;
      }
      scale = parsed;
    } else if (std::strncmp(arg, "--workers=", 10) == 0) {
      const long parsed = std::atol(arg + 10);
      if (parsed <= 0) {
        std::fprintf(stderr, "--workers requires a positive integer\n");
        return 2;
      }
      workers = static_cast<std::size_t>(parsed);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      base_seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strncmp(arg, "--scenario=", 11) == 0) {
      only = arg + 11;
    } else {
      std::fprintf(stderr,
                   "usage: stress_suite [--out=PATH] [--scale=F] [--workers=N] "
                   "[--seed=N] [--scenario=NAME]\n");
      return 2;
    }
  }
  const auto epochs = static_cast<std::size_t>(std::max(1.0, 12.0 * scale));

  std::printf("stress_suite: %zu epochs/scenario, %zu workers, seed %llu\n", epochs, workers,
              static_cast<unsigned long long>(base_seed));

  std::vector<ScenarioResult> results;
  const auto want = [&only](const char* name) { return only.empty() || only == name; };
  if (want("zipf_sweep")) {
    results.push_back(RunZipfSweep(workers, epochs, base_seed));
  }
  if (want("rmw_storm")) {
    results.push_back(RunScenario(MakeRmwStorm(workers, epochs), base_seed));
  }
  if (want("aria_deferral")) {
    results.push_back(RunScenario(MakeAriaDeferral(workers, epochs), base_seed));
  }
  if (want("cold_thrash")) {
    results.push_back(RunScenario(MakeColdThrash(workers, epochs), base_seed));
  }
  if (want("range_mix")) {
    results.push_back(RunRangeMix(workers, epochs, base_seed));
  }
  if (results.empty()) {
    std::fprintf(stderr, "unknown scenario '%s' (zipf_sweep rmw_storm aria_deferral "
                 "cold_thrash range_mix)\n", only.c_str());
    return 2;
  }

  bool healthy = true;
  std::printf("%-14s %12s %10s %10s %10s  %s\n", "scenario", "txn/s", "aborted", "deferred",
              "determin.", "notes");
  for (const ScenarioResult& r : results) {
    healthy = healthy && r.deterministic && r.engines_agree;
    std::string notes;
    if (!r.deterministic) {
      notes += "STATE HASH DIVERGED BETWEEN SAME-SEED RUNS ";
    }
    if (!r.engines_agree) {
      notes += "ENGINES DISAGREE ";
    }
    if (r.run.drain_epochs > 0) {
      notes += "drained backlog in " + std::to_string(r.run.drain_epochs) + " epochs ";
    }
    std::printf("%-14s %12.0f %10zu %10zu %10s  %s\n", r.name.c_str(), r.txns_per_sec,
                r.run.aborted, r.run.deferred, r.deterministic ? "yes" : "NO",
                notes.c_str());
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"pr8_stress_suite\",\n");
  std::fprintf(f, "  \"scale\": %.2f,\n", scale);
  std::fprintf(f, "  \"epochs_per_scenario\": %zu,\n", epochs);
  std::fprintf(f, "  \"workers\": %zu,\n", workers);
  std::fprintf(f, "  \"seed\": %llu,\n", static_cast<unsigned long long>(base_seed));
  std::fprintf(f, "  \"healthy\": %s,\n", healthy ? "true" : "false");
  std::fprintf(f, "  \"scenarios\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    WriteScenarioJson(f, results[i], i + 1 == results.size());
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  if (!healthy) {
    std::printf("FAIL\n");
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
