// Standalone Chrome-trace exporter for the epoch-phase profiler.
//
// Runs a small YCSB workload against an NVCaracal engine with profiling
// enabled and writes a Chrome-trace ("Trace Event Format") JSON, loadable in
// https://ui.perfetto.dev or chrome://tracing. Also prints the per-phase
// summary table. CI uploads the JSON as a build artifact so every commit has
// an openable trace.
//
// Usage:
//   trace_export [--out=trace.json] [--epochs=8] [--txns=512] [--workers=2]
//                [--rows=4096] [--mode=nvcaracal|alldram|allnvmm|hybrid]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/core/database.h"
#include "src/sim/nvm_device.h"
#include "src/workload/ycsb.h"

namespace {

struct Options {
  std::string out = "trace.json";
  std::size_t epochs = 8;
  std::size_t txns = 512;
  std::size_t workers = 2;
  std::uint64_t rows = 4096;
  nvc::core::EngineMode mode = nvc::core::EngineMode::kNvCaracal;
};

bool ParseMode(const char* name, nvc::core::EngineMode* mode) {
  using nvc::core::EngineMode;
  if (std::strcmp(name, "nvcaracal") == 0) {
    *mode = EngineMode::kNvCaracal;
  } else if (std::strcmp(name, "alldram") == 0) {
    *mode = EngineMode::kAllDram;
  } else if (std::strcmp(name, "allnvmm") == 0) {
    *mode = EngineMode::kAllNvmm;
  } else if (std::strcmp(name, "hybrid") == 0) {
    *mode = EngineMode::kHybrid;
  } else {
    return false;
  }
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--out=PATH] [--epochs=N] [--txns=N] [--workers=N] [--rows=N]\n"
               "          [--mode=nvcaracal|alldram|allnvmm|hybrid]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--out=", 6) == 0) {
      opts.out = arg + 6;
    } else if (std::strncmp(arg, "--epochs=", 9) == 0) {
      opts.epochs = std::strtoull(arg + 9, nullptr, 10);
    } else if (std::strncmp(arg, "--txns=", 7) == 0) {
      opts.txns = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strncmp(arg, "--workers=", 10) == 0) {
      opts.workers = std::strtoull(arg + 10, nullptr, 10);
    } else if (std::strncmp(arg, "--rows=", 7) == 0) {
      opts.rows = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strncmp(arg, "--mode=", 7) == 0) {
      if (!ParseMode(arg + 7, &opts.mode)) {
        return Usage(argv[0]);
      }
    } else {
      return Usage(argv[0]);
    }
  }
  if (opts.epochs == 0 || opts.txns == 0 || opts.workers == 0 || opts.workers > nvc::kMaxCores) {
    return Usage(argv[0]);
  }

  nvc::workload::YcsbConfig ycsb_config;
  ycsb_config.rows = opts.rows;
  nvc::workload::YcsbWorkload workload(ycsb_config);

  nvc::core::DatabaseSpec spec = workload.Spec(opts.workers);
  spec.mode = opts.mode;

  nvc::sim::NvmConfig device_config;
  device_config.size_bytes = nvc::core::Database::RequiredDeviceBytes(spec);
  device_config.latency = nvc::sim::LatencyProfile::Optane();
  nvc::sim::NvmDevice device(device_config);

  nvc::core::Database db(device, spec);
  db.Format();
  workload.Load(db);
  db.FinalizeLoad();

  nvc::ProfilerConfig profiler_config;
  profiler_config.enabled = true;
  db.ConfigureProfiler(profiler_config);
  db.stats().Reset();
  device.stats().Reset();

  for (std::size_t e = 0; e < opts.epochs; ++e) {
    const nvc::core::EpochResult r = db.ExecuteEpoch(workload.MakeEpoch(opts.txns));
    if (r.crashed) {
      std::fprintf(stderr, "epoch %u crashed unexpectedly\n", r.epoch);
      return 1;
    }
  }

  std::printf("%s", db.ProfileReport().ToTable().c_str());
  if (!db.profiler().WriteChromeTrace(opts.out)) {
    std::fprintf(stderr, "failed to write %s\n", opts.out.c_str());
    return 1;
  }
  std::printf("chrome trace written to %s (open in https://ui.perfetto.dev)\n", opts.out.c_str());
  return 0;
}
