// Crash-consistency chaos harness (the paper's section 5 failure model,
// exercised adversarially).
//
// For a sweep of engine configurations x workload seeds x crash sites, each
// run:
//   1. executes a seeded deterministic KV workload on a shadow-tracked
//      NvmDevice with a crash hook armed for one site;
//   2. when the hook fires, simulates the power failure in one of three
//      modes: clean (revert all unfenced lines), chaos (each dirty line
//      independently survives with a swept keep-probability), or torn (each
//      staged-but-unfenced persist torn at cache-line granularity);
//   3. recovers a fresh Database over the surviving image and finishes the
//      remaining epochs;
//   4. diffs the full recovered state — every table, every row, every
//      counter — against an oracle that re-executed the same input stream
//      crash-free, and cross-checks the persistent NVMM index when enabled.
//
// Any divergence is a correctness bug in the engine's persistence ordering
// or recovery repair logic. The tool reports per-site reach/fire counts so a
// sweep that silently stopped exercising a recovery branch is visible.
//
// Epoch pipelining (on by default) moves the persistence tail onto an
// asynchronous tail thread, so a tail-site crash surfaces on the NEXT
// ExecuteEpoch (or at WaitIdle for the final epoch) while that epoch's front
// half has already run and been cancelled. The harness therefore derives the
// resume point from the recovered header instead of loop bookkeeping, and a
// pair of barrier (pipeline-off) configurations keeps the synchronous serial
// and parallel tails — and their parallel-only crash sites — exercised.
//
// Half of the runs (deterministically chosen from the run seed) drive the
// crashing execution through the DbService group-commit front-end instead of
// hand-batched ExecuteEpoch calls: transactions are submitted one by one,
// the pacer cuts size-triggered epochs matching the stream's composition,
// and the crash fires mid-Drain(). The service must fail every in-flight
// ticket with the crash status, and recovery over the surviving image must
// still replay to the crash-free oracle state — proving the front-end adds
// no persistence-ordering behavior of its own.
//
// Usage: crash_fuzz [--smoke] [--seeds N] [--verbose]
//   --smoke    small sweep for CI (fewer seeds and configurations)
//   --seeds N  workload seeds per configuration (default 20, smoke 3)
//   --verbose  per-run output instead of per-config summaries
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/core/database.h"
#include "src/core/oracle.h"
#include "src/service/db_service.h"
#include "src/shard/sharded_db.h"
#include "src/sim/nvm_device.h"
#include "tests/test_util.h"

namespace {

using nvc::Epoch;
using nvc::Key;
using nvc::Rng;
using nvc::core::CrashSite;
using nvc::core::CrashSiteCoverage;
using nvc::core::CrashSiteName;
using nvc::core::Database;
using nvc::core::DatabaseSpec;
using nvc::core::kAllCrashSites;
using nvc::core::kCrashSiteCount;
using nvc::core::OracleState;
using nvc::sim::NvmConfig;
using nvc::sim::NvmDevice;
using nvc::service::DbService;
using nvc::service::ServiceSpec;

// ---- Workload ---------------------------------------------------------------
//
// Key ranges: [0, kBaseRows) hold 8-byte values (Put/Rmw/Abort), [kBigBase,
// kBigBase + kBigRows) hold pool-allocated values (BigPut/VarPut; these feed
// major GC, caching, and cold-tier demotion), and [kDynBase, kDynBase +
// kDynRows) churn through Insert/Delete.

constexpr std::size_t kBaseRows = 40;
constexpr std::size_t kBigBase = 40;
constexpr std::size_t kBigRows = 40;
constexpr std::size_t kDynBase = 80;
constexpr std::size_t kDynRows = 24;
constexpr std::size_t kEpochs = 5;
constexpr std::size_t kTxnsPerEpoch = 24;

enum class Kind { kPut, kRmw, kBigPut, kVarPut, kInsert, kDelete, kAbort, kScan };

struct TxnSpec {
  Kind kind;
  Key key;  // lo for kScan
  std::uint64_t arg;  // out_key for kScan
  std::uint32_t size;
  Key hi = 0;              // kScan only
  std::uint32_t limit = 0; // kScan only
};
using StreamSpec = std::vector<std::vector<TxnSpec>>;

// Deterministic from the seed alone, so the crash run, any re-execution after
// recovery, and the oracle run all see byte-identical inputs. Ordered configs
// (with_scans) mix in range-scan-digest transactions whose observed rows are
// folded into a committed output key — so a scan that sees a phantom, a stale
// row, or a wrong ordering after recovery diverges the oracle diff.
StreamSpec GenerateStream(std::uint64_t seed, bool with_scans) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  std::set<Key> dyn_live;
  StreamSpec stream(kEpochs);
  for (auto& epoch : stream) {
    std::set<Key> dyn_touched;  // at most one insert/delete per key per epoch
    for (std::size_t i = 0; i < kTxnsPerEpoch; ++i) {
      const std::uint64_t pick = rng.NextBounded(100);
      if (with_scans && pick >= 86 && pick < 96) {
        // Scans cover the whole keyspace: base rows (mutated by Put/Rmw and by
        // other scans' output keys), big rows, and the insert/delete churn
        // band, so rebuild and phantom bugs in any band are observable.
        const Key lo = rng.NextBounded(kDynBase + kDynRows);
        const Key hi = lo + 1 + rng.NextBounded(32);
        const auto limit = static_cast<std::uint32_t>(1 + rng.NextBounded(16));
        const Key out_key = rng.NextBounded(kBaseRows);
        epoch.push_back({Kind::kScan, lo, out_key, 0, hi, limit});
        continue;
      }
      if (pick < 25) {
        epoch.push_back({Kind::kPut, rng.NextBounded(kBaseRows), rng.Next(), 0});
      } else if (pick < 45) {
        epoch.push_back({Kind::kRmw, rng.NextBounded(kBaseRows), rng.NextBounded(1000), 0});
      } else if (pick < 60) {
        epoch.push_back({Kind::kBigPut, kBigBase + rng.NextBounded(kBigRows), rng.Next(), 0});
      } else if (pick < 75) {
        epoch.push_back({Kind::kVarPut, kBigBase + rng.NextBounded(kBigRows), rng.Next(),
                         static_cast<std::uint32_t>(8 + rng.NextBounded(393))});
      } else if (pick < 90) {
        const Key key = kDynBase + rng.NextBounded(kDynRows);
        if (!dyn_touched.insert(key).second) {
          epoch.push_back({Kind::kPut, rng.NextBounded(kBaseRows), rng.Next(), 0});
        } else if (dyn_live.count(key) != 0) {
          dyn_live.erase(key);
          epoch.push_back({Kind::kDelete, key, 0, 0});
        } else {
          dyn_live.insert(key);
          epoch.push_back({Kind::kInsert, key, rng.Next(), 0});
        }
      } else {
        epoch.push_back({Kind::kAbort, rng.NextBounded(kBaseRows), 0, 0});
      }
    }
  }
  return stream;
}

std::vector<std::unique_ptr<nvc::txn::Transaction>> Materialize(
    const std::vector<TxnSpec>& specs) {
  std::vector<std::unique_ptr<nvc::txn::Transaction>> txns;
  txns.reserve(specs.size());
  for (const TxnSpec& s : specs) {
    switch (s.kind) {
      case Kind::kPut:
        txns.push_back(std::make_unique<nvc::test::KvPutTxn>(s.key, s.arg));
        break;
      case Kind::kRmw:
        txns.push_back(std::make_unique<nvc::test::KvRmwTxn>(s.key, s.arg));
        break;
      case Kind::kBigPut:
        txns.push_back(std::make_unique<nvc::test::KvBigPutTxn>(s.key, s.arg));
        break;
      case Kind::kVarPut:
        txns.push_back(std::make_unique<nvc::test::KvVarPutTxn>(s.key, s.size, s.arg));
        break;
      case Kind::kInsert:
        txns.push_back(std::make_unique<nvc::test::KvInsertTxn>(s.key, s.arg));
        break;
      case Kind::kDelete:
        txns.push_back(std::make_unique<nvc::test::KvDeleteTxn>(s.key));
        break;
      case Kind::kAbort:
        txns.push_back(std::make_unique<nvc::test::KvAbortTxn>(s.key));
        break;
      case Kind::kScan:
        txns.push_back(
            std::make_unique<nvc::test::KvScanSumTxn>(s.key, s.hi, s.limit, s.arg));
        break;
    }
  }
  return txns;
}

void LoadAll(Database& db) {
  for (std::size_t i = 0; i < kBigBase + kBigRows; ++i) {
    const std::uint64_t value = 5000 + i;
    db.BulkLoad(0, i, &value, sizeof(value));
  }
  db.FinalizeLoad();
}

// ---- Engine configurations --------------------------------------------------

struct FuzzConfig {
  std::string name;
  DatabaseSpec spec;
  bool cold = false;
  bool ordered = false;  // table 0 ordered: stream gains scan transactions
};

std::vector<FuzzConfig> BuildConfigs(bool smoke) {
  std::vector<FuzzConfig> configs;
  configs.push_back({"default", nvc::test::SmallKvSpec(), false});

  {
    DatabaseSpec spec = nvc::test::SmallKvSpec();
    spec.enable_batch_append = true;
    configs.push_back({"batch-append", spec, false});
  }
  {
    DatabaseSpec spec = nvc::test::SmallKvSpec();
    spec.enable_cache = false;
    configs.push_back({"no-cache", spec, false});
  }
  {
    DatabaseSpec spec = nvc::test::SmallKvSpec();
    spec.enable_persistent_index = true;
    configs.push_back({"persistent-index", spec, false});
  }
  {
    DatabaseSpec spec = nvc::test::SmallKvSpec();
    spec.enable_cold_tier = true;
    spec.cache_k = 1;  // short LRU window so demotions happen within the run
    spec.cold_block_size = 1024;
    spec.cold_blocks_per_core = 4096;
    spec.cold_freelist_capacity = 8192;
    configs.push_back({"cold-tier", spec, true});
  }
  {
    DatabaseSpec spec = nvc::test::SmallKvSpec();
    spec.enable_instant_recovery = true;
    configs.push_back({"instant", spec, false});
  }
  // Ordered-table configs: table 0 carries the skiplist secondary index, the
  // stream mixes in scan-digest transactions, and recovery must rebuild the
  // ordered index identically (kMidOrderedIndexRebuild crashes the rebuild
  // itself). Instant recovery rejects ordered tables by design, so these rows
  // and the instant rows stay disjoint.
  {
    DatabaseSpec spec = nvc::test::SmallKvSpec(/*workers=*/1, /*ordered=*/true);
    configs.push_back({"ordered", spec, false, true});
  }
  {
    DatabaseSpec spec = nvc::test::SmallKvSpec(/*workers=*/1, /*ordered=*/true);
    spec.enable_persistent_index = true;
    configs.push_back({"ordered-pindex", spec, false, true});
  }
  // Epoch pipelining is on by default, which routes the persistence tail
  // through the tail thread; the barrier rows keep the synchronous serial and
  // parallel tails recoverable (and are the only rows that can reach the
  // parallel-only crash sites, just as the pipelined rows are the only ones
  // reaching the two overlap sites).
  {
    DatabaseSpec spec = nvc::test::SmallKvSpec();
    spec.enable_epoch_pipeline = false;
    configs.push_back({"barrier", spec, false});
  }
  {
    DatabaseSpec spec = nvc::test::SmallKvSpec();
    spec.enable_epoch_pipeline = false;
    spec.enable_persistent_index = true;
    configs.push_back({"barrier-pindex", spec, false});
  }
  if (!smoke) {
    {
      DatabaseSpec spec = nvc::test::SmallKvSpec();
      spec.enable_instant_recovery = true;
      spec.enable_persistent_index = true;
      configs.push_back({"instant-pindex", spec, false});
    }
    {
      DatabaseSpec spec = nvc::test::SmallKvSpec(/*workers=*/4);
      spec.enable_instant_recovery = true;
      configs.push_back({"instant-mt", spec, false});
    }
    {
      DatabaseSpec spec = nvc::test::SmallKvSpec();
      spec.enable_minor_gc = false;
      configs.push_back({"no-minor-gc", spec, false});
    }
    {
      DatabaseSpec mt = nvc::test::SmallKvSpec(/*workers=*/4);
      configs.push_back({"multi-worker", mt, false});
    }
    // The legacy serial tail must stay recoverable while it remains an
    // engine option (enable_parallel_tail = false). The parallel-only crash
    // sites are simply never reached under these configs.
    {
      DatabaseSpec spec = nvc::test::SmallKvSpec();
      spec.enable_parallel_tail = false;
      configs.push_back({"serial-tail", spec, false});
    }
    {
      DatabaseSpec spec = nvc::test::SmallKvSpec();
      spec.enable_parallel_tail = false;
      spec.enable_persistent_index = true;
      configs.push_back({"serial-tail-pindex", spec, false});
    }
    {
      DatabaseSpec spec = nvc::test::SmallKvSpec(/*workers=*/4, /*ordered=*/true);
      configs.push_back({"ordered-mt", spec, false, true});
    }
    {
      DatabaseSpec spec = nvc::test::SmallKvSpec(/*workers=*/1, /*ordered=*/true);
      spec.enable_parallel_tail = false;
      configs.push_back({"ordered-serial-tail", spec, false, true});
    }
    {
      DatabaseSpec spec = nvc::test::SmallKvSpec(/*workers=*/1, /*ordered=*/true);
      spec.enable_epoch_pipeline = false;
      configs.push_back({"ordered-barrier", spec, false, true});
    }
  }
  return configs;
}

NvmConfig ColdDeviceConfig(const DatabaseSpec& spec) {
  NvmConfig config;
  config.size_bytes = Database::RequiredColdDeviceBytes(spec);
  config.crash_tracking = nvc::sim::CrashTracking::kShadow;
  config.access_granule = 4096;
  return config;
}

// How many times a run may let a site pass before firing: dense sites are
// reached many times per epoch, sparse ones once, so the fire index doubles
// as a crash-epoch / crash-depth randomizer.
// The two recovery-window sites are reached once per still-pending key on a
// recovering database (see RunRecoverySiteCase); a small bound fires them
// reliably even when chaos shrinks the pending set.
bool IsRecoverySite(CrashSite site) {
  return site == CrashSite::kMidInstantRecoveryOnDemand || site == CrashSite::kMidBackfill;
}

std::uint64_t FireIndexBound(CrashSite site) {
  switch (site) {
    case CrashSite::kMidExecution:
      return kEpochs * kTxnsPerEpoch / 2;
    case CrashSite::kMidInstantRecoveryOnDemand:
    case CrashSite::kMidBackfill:
      return 8;
    case CrashSite::kDuringIndexApply:
      return kEpochs * 8;
    case CrashSite::kMidParallelIndexApply:
      // Reached once per index delta (~18 per run); only the persistent-index
      // configs reach it at all, so a tight bound keeps the smoke sweep's
      // 3 armed runs firing reliably.
      return kEpochs * 2;
    case CrashSite::kDuringGcPass2:
      return kEpochs * 4;
    case CrashSite::kDuringDemotion:
      return 3;
    case CrashSite::kMidOverlapExecute:
    case CrashSite::kMidOverlapTailPersist:
      return kEpochs;  // once per pipelined epoch (front half / async tail)
    default:
      return kEpochs;  // reached at most once per epoch: picks the epoch
  }
}

// ---- Sweep ------------------------------------------------------------------

struct SweepStats {
  std::size_t runs = 0;
  std::size_t crashed_runs = 0;
  std::size_t missed_runs = 0;   // the armed site was never reached
  std::size_t service_runs = 0;  // driven through the DbService front-end
  std::size_t divergences = 0;
  std::size_t index_inconsistencies = 0;
  std::size_t ordered_inconsistencies = 0;
  CrashSiteCoverage coverage;
  std::array<std::uint64_t, kCrashSiteCount> armed{};
  std::array<std::uint64_t, kCrashSiteCount> armed_fired{};
};

const OracleState& ReferenceState(const FuzzConfig& config, std::size_t config_index,
                                  std::uint64_t seed, const StreamSpec& stream) {
  static std::map<std::pair<std::size_t, std::uint64_t>, OracleState> cache;
  auto it = cache.find({config_index, seed});
  if (it != cache.end()) {
    return it->second;
  }
  NvmDevice device(nvc::test::ShadowDeviceConfig(config.spec));
  std::unique_ptr<NvmDevice> cold;
  if (config.cold) {
    cold = std::make_unique<NvmDevice>(ColdDeviceConfig(config.spec));
  }
  Database db(device, config.spec, cold.get());
  db.Format();
  LoadAll(db);
  for (const auto& epoch : stream) {
    db.ExecuteEpoch(Materialize(epoch));
  }
  return cache.emplace(std::make_pair(config_index, seed), nvc::core::CaptureState(db))
      .first->second;
}

constexpr double kKeepSweep[] = {0.0, 0.25, 0.5, 0.75, 1.0};

// Simulates the power failure on the hot (and optional cold) device.
void CrashDevices(NvmDevice& device, NvmDevice* cold, int mode, std::uint64_t crash_seed,
                  double keep) {
  switch (mode) {
    case 0:
      device.Crash();
      if (cold) cold->Crash();
      break;
    case 1:
      device.CrashChaos(crash_seed, keep);
      if (cold) cold->CrashChaos(crash_seed ^ 0x5bd1e995, keep);
      break;
    default:
      device.CrashTorn(crash_seed, keep);
      if (cold) cold->CrashTorn(crash_seed ^ 0x5bd1e995, keep);
      break;
  }
}

// Full-state diff against the oracle; returns a failure description.
std::string DiffAgainstOracle(const OracleState& expected, Database& db, SweepStats* stats) {
  std::string failure;
  const OracleState actual = nvc::core::CaptureState(db);
  std::string diff;
  const std::size_t divergences = nvc::core::DiffStates(expected, actual, &diff);
  stats->divergences += divergences;
  if (divergences != 0) {
    failure += "state diverged (" + std::to_string(divergences) + "):\n" + diff;
  }
  std::string index_diff;
  const std::size_t index_bad = nvc::core::ValidatePersistentIndex(db, &index_diff);
  stats->index_inconsistencies += index_bad;
  if (index_bad != 0) {
    failure += "persistent index inconsistent (" + std::to_string(index_bad) + "):\n" +
               index_diff;
  }
  std::string ordered_diff;
  const std::size_t ordered_bad = nvc::core::ValidateOrderedIndex(db, &ordered_diff);
  stats->ordered_inconsistencies += ordered_bad;
  if (ordered_bad != 0) {
    failure += "ordered index inconsistent (" + std::to_string(ordered_bad) + "):\n" +
               ordered_diff;
  }
  return failure;
}

// Double-crash run targeting the instant-recovery window itself: crash the
// epoch tail, recover instantly, then crash AGAIN while either a foreground
// read drives on-demand redo (kMidInstantRecoveryOnDemand) or the background
// backfill is sweeping (kMidBackfill). The third recovery must still reach
// the oracle state — the proof that no instant-recovery step makes a
// persistent mutation the next recovery cannot absorb.
std::string RunRecoverySiteCase(const FuzzConfig& config, std::size_t config_index,
                                std::uint64_t seed, CrashSite site, SweepStats* stats,
                                bool verbose) {
  const StreamSpec stream = GenerateStream(seed, config.ordered);
  const OracleState& expected = ReferenceState(config, config_index, seed, stream);

  Rng run_rng(seed * 1000003 + static_cast<std::uint64_t>(site) * 101 + config_index * 31 + 7);
  const std::uint64_t crash_epoch = run_rng.NextBounded(kEpochs);
  const std::uint64_t fire_index = 1 + run_rng.NextBounded(FireIndexBound(site));
  const int mode = static_cast<int>(run_rng.NextBounded(3));
  const double keep = kKeepSweep[run_rng.NextBounded(5)];
  const std::uint64_t crash_seed = run_rng.Next();
  const int mode2 = static_cast<int>(run_rng.NextBounded(3));
  const double keep2 = kKeepSweep[run_rng.NextBounded(5)];
  const std::uint64_t crash_seed2 = run_rng.Next();

  NvmDevice device(nvc::test::ShadowDeviceConfig(config.spec));
  std::unique_ptr<NvmDevice> cold;
  if (config.cold) {
    cold = std::make_unique<NvmDevice>(ColdDeviceConfig(config.spec));
  }

  ++stats->runs;
  ++stats->armed[static_cast<std::size_t>(site)];

  // First crash: at the epoch tail, so the whole epoch is pending-replay.
  {
    Database db(device, config.spec, cold.get());
    db.Format();
    LoadAll(db);
    std::atomic<std::uint64_t> reached{0};
    db.SetCrashHook([&reached, crash_epoch](CrashSite s) {
      return s == CrashSite::kBeforeEpochPersist && ++reached == crash_epoch + 1;
    });
    bool crashed = false;
    for (std::size_t e = 0; e < stream.size(); ++e) {
      if (db.ExecuteEpoch(Materialize(stream[e])).crashed) {
        crashed = true;
        break;
      }
    }
    if (!crashed && !db.WaitIdle().ok()) {
      crashed = true;  // tail-site crash in the final epoch (pipelined)
    }
    stats->coverage.Merge(db.crash_coverage());
    if (!crashed) {
      return "kBeforeEpochPersist unexpectedly never reached";
    }
  }
  CrashDevices(device, cold.get(), mode, crash_seed, keep);

  // Recover with the window-site hook armed; a chaos/torn first crash may
  // have destroyed the digest or the log, in which case the window never
  // opens and the run counts as a miss.
  bool fired = false;
  auto db = std::make_unique<Database>(device, config.spec, cold.get());
  {
    std::atomic<std::uint64_t> reached{0};
    db->SetCrashHook([&reached, site, fire_index](CrashSite s) {
      return s == site && ++reached == fire_index;
    });
    const nvc::core::RecoveryReport report = db->Recover(nvc::test::KvRegistry()).value();
    if (report.instant) {
      if (site == CrashSite::kMidInstantRecoveryOnDemand) {
        // Foreground traffic: read the whole keyspace during the window.
        std::uint8_t buffer[512];
        for (Key key = 0; key < kDynBase + kDynRows && !fired; ++key) {
          const nvc::StatusOr<std::uint32_t> n = db->ReadCommitted(0, key, buffer, sizeof(buffer));
          if (!n.ok() && n.status().code() == nvc::StatusCode::kAborted) {
            fired = true;
          }
        }
      }
      if (!fired && !db->CompleteBackfill().ok()) {
        fired = true;
      }
    } else if (!report.replayed) {
      db->ExecuteEpoch(Materialize(stream[crash_epoch]));
    }
    stats->coverage.Merge(db->crash_coverage());
  }

  if (fired) {
    ++stats->crashed_runs;
    ++stats->armed_fired[static_cast<std::size_t>(site)];
    db.reset();
    CrashDevices(device, cold.get(), mode2, crash_seed2, keep2);
    db = std::make_unique<Database>(device, config.spec, cold.get());
    const nvc::core::RecoveryReport report = db->Recover(nvc::test::KvRegistry()).value();
    if (report.instant) {
      const nvc::Status st = db->CompleteBackfill();
      if (!st.ok()) {
        return "CompleteBackfill failed after double crash: " + st.message();
      }
    } else if (!report.replayed) {
      db->ExecuteEpoch(Materialize(stream[crash_epoch]));
    }
    stats->coverage.Merge(db->crash_coverage());
  } else {
    ++stats->missed_runs;
  }

  for (std::size_t e = crash_epoch + 1; e < stream.size(); ++e) {
    db->ExecuteEpoch(Materialize(stream[e]));
  }
  const std::string failure = DiffAgainstOracle(expected, *db, stats);
  if (verbose || !failure.empty()) {
    static constexpr const char* kModeNames[] = {"crash", "chaos", "torn"};
    std::printf("[%s seed=%llu site=%s mode=%s/%s keep=%.2f/%.2f fire=%llu] %s\n",
                config.name.c_str(), static_cast<unsigned long long>(seed),
                CrashSiteName(site), kModeNames[mode], kModeNames[mode2], keep, keep2,
                static_cast<unsigned long long>(fire_index),
                failure.empty() ? (fired ? "ok" : "miss") : "FAIL");
  }
  return failure;
}

// Double-crash run targeting the ordered-index rebuild inside Recover(): crash
// the epoch tail, then crash AGAIN while the recovery scan (or the fast
// persistent-index path) is re-inserting keys into the skiplist. Recover()
// surfaces that as kAborted — a power failure mid-recovery — and the NEXT
// recovery over the re-crashed image must still reach the oracle state,
// proving the rebuild makes no persistent mutation recovery cannot absorb.
std::string RunRebuildSiteCase(const FuzzConfig& config, std::size_t config_index,
                               std::uint64_t seed, SweepStats* stats, bool verbose) {
  constexpr CrashSite site = CrashSite::kMidOrderedIndexRebuild;
  const StreamSpec stream = GenerateStream(seed, config.ordered);
  const OracleState& expected = ReferenceState(config, config_index, seed, stream);

  Rng run_rng(seed * 1000003 + static_cast<std::uint64_t>(site) * 101 + config_index * 31 + 7);
  const std::uint64_t crash_epoch = run_rng.NextBounded(kEpochs);
  // The site is reached once per live ordered row; the bulk-loaded base and
  // big bands alone keep ~80 rows live through any crash, so a small bound
  // fires reliably while still varying the rebuild depth.
  const std::uint64_t fire_index = 1 + run_rng.NextBounded(30);
  const int mode = static_cast<int>(run_rng.NextBounded(3));
  const double keep = kKeepSweep[run_rng.NextBounded(5)];
  const std::uint64_t crash_seed = run_rng.Next();
  const int mode2 = static_cast<int>(run_rng.NextBounded(3));
  const double keep2 = kKeepSweep[run_rng.NextBounded(5)];
  const std::uint64_t crash_seed2 = run_rng.Next();

  NvmDevice device(nvc::test::ShadowDeviceConfig(config.spec));
  std::unique_ptr<NvmDevice> cold;
  if (config.cold) {
    cold = std::make_unique<NvmDevice>(ColdDeviceConfig(config.spec));
  }

  ++stats->runs;
  ++stats->armed[static_cast<std::size_t>(site)];

  // First crash: at the epoch tail, so recovery has an epoch to repair.
  {
    Database db(device, config.spec, cold.get());
    db.Format();
    LoadAll(db);
    std::atomic<std::uint64_t> reached{0};
    db.SetCrashHook([&reached, crash_epoch](CrashSite s) {
      return s == CrashSite::kBeforeEpochPersist && ++reached == crash_epoch + 1;
    });
    bool crashed = false;
    for (std::size_t e = 0; e < stream.size(); ++e) {
      if (db.ExecuteEpoch(Materialize(stream[e])).crashed) {
        crashed = true;
        break;
      }
    }
    if (!crashed && !db.WaitIdle().ok()) {
      crashed = true;  // tail-site crash in the final epoch (pipelined)
    }
    stats->coverage.Merge(db.crash_coverage());
    if (!crashed) {
      return "kBeforeEpochPersist unexpectedly never reached";
    }
  }
  CrashDevices(device, cold.get(), mode, crash_seed, keep);

  // Recover with the rebuild site armed: a fire aborts Recover() exactly as a
  // real power failure mid-recovery would leave the process dead.
  bool fired = false;
  auto db = std::make_unique<Database>(device, config.spec, cold.get());
  bool replayed = false;
  {
    std::atomic<std::uint64_t> reached{0};
    db->SetCrashHook([&reached, fire_index](CrashSite s) {
      return s == site && ++reached == fire_index;
    });
    const nvc::StatusOr<nvc::core::RecoveryReport> report =
        db->Recover(nvc::test::KvRegistry());
    stats->coverage.Merge(db->crash_coverage());
    if (!report.ok()) {
      fired = true;
    } else {
      replayed = report->replayed;
    }
  }

  if (fired) {
    ++stats->crashed_runs;
    ++stats->armed_fired[static_cast<std::size_t>(site)];
    db.reset();
    CrashDevices(device, cold.get(), mode2, crash_seed2, keep2);
    db = std::make_unique<Database>(device, config.spec, cold.get());
    replayed = db->Recover(nvc::test::KvRegistry()).value().replayed;
  } else {
    ++stats->missed_runs;
  }
  if (!replayed) {
    db->ExecuteEpoch(Materialize(stream[crash_epoch]));
  }
  for (std::size_t e = crash_epoch + 1; e < stream.size(); ++e) {
    db->ExecuteEpoch(Materialize(stream[e]));
  }
  const std::string failure = DiffAgainstOracle(expected, *db, stats);
  if (verbose || !failure.empty()) {
    static constexpr const char* kModeNames[] = {"crash", "chaos", "torn"};
    std::printf("[%s seed=%llu site=%s mode=%s/%s keep=%.2f/%.2f fire=%llu] %s\n",
                config.name.c_str(), static_cast<unsigned long long>(seed),
                CrashSiteName(site), kModeNames[mode], kModeNames[mode2], keep, keep2,
                static_cast<unsigned long long>(fire_index),
                failure.empty() ? (fired ? "ok" : "miss") : "FAIL");
  }
  return failure;
}

// One crash-and-recover run. Returns a failure description, empty on success.
std::string RunCase(const FuzzConfig& config, std::size_t config_index, std::uint64_t seed,
                    CrashSite site, SweepStats* stats, bool verbose) {
  if (IsRecoverySite(site)) {
    return RunRecoverySiteCase(config, config_index, seed, site, stats, verbose);
  }
  if (site == CrashSite::kMidOrderedIndexRebuild) {
    return RunRebuildSiteCase(config, config_index, seed, stats, verbose);
  }
  const StreamSpec stream = GenerateStream(seed, config.ordered);
  const OracleState& expected = ReferenceState(config, config_index, seed, stream);

  // Per-run deterministic choices: crash mode, keep-probability, fire index.
  Rng run_rng(seed * 1000003 + static_cast<std::uint64_t>(site) * 101 + config_index * 31 + 7);
  const std::uint64_t fire_index = 1 + run_rng.NextBounded(FireIndexBound(site));
  const int mode = static_cast<int>(run_rng.NextBounded(3));
  const double keep = kKeepSweep[run_rng.NextBounded(5)];
  const std::uint64_t crash_seed = run_rng.Next();
  const bool use_service = run_rng.NextBounded(2) == 1;

  NvmDevice device(nvc::test::ShadowDeviceConfig(config.spec));
  std::unique_ptr<NvmDevice> cold;
  if (config.cold) {
    cold = std::make_unique<NvmDevice>(ColdDeviceConfig(config.spec));
  }

  ++stats->runs;
  ++stats->armed[static_cast<std::size_t>(site)];

  bool crashed = false;
  {
    auto dbp = std::make_unique<Database>(device, config.spec, cold.get());
    dbp->Format();
    LoadAll(*dbp);
    std::atomic<std::uint64_t> reached{0};
    dbp->SetCrashHook([&reached, site, fire_index](CrashSite s) {
      return s == site && ++reached == fire_index;
    });
    if (use_service) {
      // Drive the same stream through the group-commit front-end. Size-only
      // batching (the delay bound far exceeds the run) makes the pacer cut
      // exactly kTxnsPerEpoch-sized epochs in submission order, so the batch
      // composition — and therefore the cached oracle state and crash_epoch
      // bookkeeping — matches the hand-batched path bit for bit.
      ++stats->service_runs;
      ServiceSpec sspec;
      sspec.max_epoch_txns = kTxnsPerEpoch;
      sspec.max_epoch_delay = std::chrono::minutes(1);
      sspec.queue_capacity = kEpochs * kTxnsPerEpoch;
      DbService svc(std::move(dbp), sspec);
      bool submit_ok = true;
      for (std::size_t e = 0; submit_ok && e < stream.size(); ++e) {
        for (auto& txn : Materialize(stream[e])) {
          if (!svc.Submit(std::move(txn)).ok()) {
            submit_ok = false;  // already failed over the crash; Drain reports it
            break;
          }
        }
      }
      crashed = !svc.Drain().ok();
      dbp = svc.TakeDatabase();
    } else {
      for (std::size_t e = 0; e < stream.size(); ++e) {
        if (dbp->ExecuteEpoch(Materialize(stream[e])).crashed) {
          crashed = true;
          break;
        }
      }
      if (!crashed && !dbp->WaitIdle().ok()) {
        // Under pipelining a tail-site crash in the final epoch surfaces
        // only when the asynchronous tail is joined.
        crashed = true;
      }
    }
    stats->coverage.Merge(dbp->crash_coverage());
  }

  std::unique_ptr<Database> db;
  if (crashed) {
    ++stats->crashed_runs;
    ++stats->armed_fired[static_cast<std::size_t>(site)];
    switch (mode) {
      case 0:
        device.Crash();
        if (cold) cold->Crash();
        break;
      case 1:
        device.CrashChaos(crash_seed, keep);
        if (cold) cold->CrashChaos(crash_seed ^ 0x5bd1e995, keep);
        break;
      default:
        device.CrashTorn(crash_seed, keep);
        if (cold) cold->CrashTorn(crash_seed ^ 0x5bd1e995, keep);
        break;
    }
    db = std::make_unique<Database>(device, config.spec, cold.get());
    const nvc::core::RecoveryReport report = db->Recover(nvc::test::KvRegistry()).value();
    // The resume point is derived from the durable image, not from loop
    // bookkeeping: under pipelining a tail crash of epoch N surfaces while
    // epoch N+1's (cancelled) front half is running, so the crashing loop's
    // index can overshoot the epoch that actually lost its tail. stream[e]
    // ran as engine epoch e+2 (FinalizeLoad leaves the engine at epoch 1),
    // and a replay advances the recovered header by one.
    const std::size_t resume = static_cast<std::size_t>(report.recovered_epoch) +
                               (report.replayed ? 1 : 0) - 1;
    if (report.replayed && report.instant && run_rng.NextBounded(2) == 1) {
      // Half the instant runs retire the backfill eagerly; the other half let
      // the next ExecuteEpoch pre-finish it, covering both admission paths.
      const nvc::Status st = db->CompleteBackfill();
      if (!st.ok()) {
        return "CompleteBackfill failed: " + st.message();
      }
    }
    for (std::size_t e = resume; e < stream.size(); ++e) {
      db->ExecuteEpoch(Materialize(stream[e]));
    }
    if (db->instant_recovery_pending()) {
      // CaptureState reads the store directly (no on-demand redo), so a run
      // that crashed in its final epoch must retire the window first.
      const nvc::Status st = db->CompleteBackfill();
      if (!st.ok()) {
        return "CompleteBackfill failed: " + st.message();
      }
    }
  } else {
    // The armed site was never reached (e.g. no demotion happened this run).
    // The completed run still doubles as a no-crash consistency check.
    ++stats->missed_runs;
    db = std::make_unique<Database>(device, config.spec, cold.get());
    db->Recover(nvc::test::KvRegistry()).value();
  }

  const std::string failure = DiffAgainstOracle(expected, *db, stats);

  if (verbose || !failure.empty()) {
    static constexpr const char* kModeNames[] = {"crash", "chaos", "torn"};
    std::printf("[%s seed=%llu site=%s mode=%s keep=%.2f fire=%llu via=%s] %s\n",
                config.name.c_str(), static_cast<unsigned long long>(seed),
                CrashSiteName(site), kModeNames[mode], keep,
                static_cast<unsigned long long>(fire_index),
                use_service ? "service" : "direct",
                failure.empty() ? (crashed ? "ok" : "miss") : "FAIL");
  }
  return failure;
}

// ---- Sharded sweep ----------------------------------------------------------
//
// The multi-shard config partitions the keyspace across two engines behind
// one global epoch (src/shard). Each run arms one crash site on ONE shard,
// crashes every device at the moment the global epoch fails (a power failure
// takes the whole fleet), recovers a fresh ShardedDatabase — which must land
// every shard on one consistent global epoch — resumes the remaining stream,
// and diffs all shards against a crash-free sharded oracle.
//
// The stream is deferral-free by construction: every epoch front-loads its
// cross-shard transfers over mutually disjoint key pairs before any write,
// so the router admits all of them (a deferral held in memory would be lost
// across the crash and the resumed run would diverge by design, not by bug;
// deferral behavior is covered by unit tests instead). The harness asserts
// this.

constexpr std::size_t kShardCount = 2;
constexpr std::size_t kShardEpochs = 4;
constexpr std::size_t kXfersPerEpoch = 4;

// Engine sites reachable under the sharded spec (pipelining and instant
// recovery are forced off; table 0 unordered; no persistent index) plus the
// two shard-layer sites, which only this sweep can fire.
constexpr CrashSite kShardedSites[] = {
    CrashSite::kAfterLog,          CrashSite::kAfterInsert,
    CrashSite::kDuringMajorGc,     CrashSite::kAfterGcPersist,
    CrashSite::kAfterAppend,       CrashSite::kMidExecution,
    CrashSite::kAfterExecution,    CrashSite::kBeforeEpochPersist,
    CrashSite::kMidParallelCheckpoint,
    CrashSite::kMidShardExchange,  CrashSite::kMidShardEpochBarrier,
};

std::vector<std::unique_ptr<nvc::txn::Transaction>> ShardEpochBatch(std::uint64_t seed,
                                                                    std::size_t epoch) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + epoch * 1000003 + 17);
  std::vector<std::unique_ptr<nvc::txn::Transaction>> txns;
  // Disjoint transfer pairs drawn from a per-epoch shuffle of the base band.
  std::array<Key, kBaseRows> keys{};
  for (std::size_t i = 0; i < kBaseRows; ++i) {
    keys[i] = i;
  }
  for (std::size_t i = 0; i < 2 * kXfersPerEpoch; ++i) {
    const std::size_t j = i + rng.NextBounded(kBaseRows - i);
    std::swap(keys[i], keys[j]);
  }
  for (std::size_t i = 0; i < kXfersPerEpoch; ++i) {
    txns.push_back(std::make_unique<nvc::test::KvXferTxn>(keys[2 * i], keys[2 * i + 1],
                                                          1 + rng.NextBounded(20)));
  }
  // Single-shard tail (never router-deferred): small and pool-allocated
  // writes so the engines' GC sites stay reachable, plus user aborts.
  for (std::size_t i = 0; i < 12; ++i) {
    const std::uint64_t pick = rng.NextBounded(100);
    if (pick < 40) {
      txns.push_back(std::make_unique<nvc::test::KvPutTxn>(rng.NextBounded(kBaseRows),
                                                           rng.Next()));
    } else if (pick < 60) {
      txns.push_back(std::make_unique<nvc::test::KvRmwTxn>(rng.NextBounded(kBaseRows),
                                                           rng.NextBounded(1000)));
    } else if (pick < 90) {
      txns.push_back(std::make_unique<nvc::test::KvBigPutTxn>(
          kBigBase + rng.NextBounded(kBigRows), rng.Next()));
    } else {
      txns.push_back(std::make_unique<nvc::test::KvAbortTxn>(rng.NextBounded(kBaseRows)));
    }
  }
  return txns;
}

nvc::sim::NvmConfig ShardDeviceConfig(const DatabaseSpec& base) {
  NvmConfig config;
  config.size_bytes = nvc::shard::ShardedDatabase::RequiredDeviceBytes(base);
  config.crash_tracking = nvc::sim::CrashTracking::kShadow;
  return config;
}

void LoadSharded(nvc::shard::ShardedDatabase& db) {
  for (std::size_t i = 0; i < kBigBase + kBigRows; ++i) {
    const std::uint64_t value = 5000 + i;
    db.BulkLoad(0, i, &value, sizeof(value));
  }
  db.FinalizeLoad();
}

// Final per-shard oracle states of a crash-free sharded run, cached per seed.
const std::vector<OracleState>& ShardedReferenceState(std::uint64_t seed) {
  static std::map<std::uint64_t, std::vector<OracleState>> cache;
  auto it = cache.find(seed);
  if (it != cache.end()) {
    return it->second;
  }
  const DatabaseSpec base = nvc::test::SmallKvSpec();
  std::vector<std::unique_ptr<NvmDevice>> owned;
  std::vector<NvmDevice*> devices;
  for (std::size_t s = 0; s < kShardCount; ++s) {
    owned.push_back(std::make_unique<NvmDevice>(ShardDeviceConfig(base)));
    devices.push_back(owned.back().get());
  }
  nvc::shard::ShardedDatabase db(devices, base);
  db.Format();
  LoadSharded(db);
  for (std::size_t e = 0; e < kShardEpochs; ++e) {
    db.ExecuteEpoch(ShardEpochBatch(seed, e));
  }
  std::vector<OracleState> states;
  for (std::size_t s = 0; s < kShardCount; ++s) {
    states.push_back(nvc::core::CaptureState(db.shard(s)));
  }
  return cache.emplace(seed, std::move(states)).first->second;
}

// One sharded crash-and-recover run: arm `site` on `crash_shard` only.
std::string RunShardedCase(std::uint64_t seed, CrashSite site, std::size_t crash_shard,
                           SweepStats* stats, bool verbose) {
  const std::vector<OracleState>& expected = ShardedReferenceState(seed);
  const DatabaseSpec base = nvc::test::SmallKvSpec();

  Rng run_rng(seed * 1000003 + static_cast<std::uint64_t>(site) * 101 + crash_shard * 31 + 9);
  const bool shard_site = site == CrashSite::kMidShardExchange ||
                          site == CrashSite::kMidShardEpochBarrier;
  // Shard-layer sites are reached exactly once per shard per global epoch;
  // a tight bound keeps them firing in every armed run.
  const std::uint64_t bound = shard_site ? kShardEpochs : FireIndexBound(site);
  const std::uint64_t fire_index = 1 + run_rng.NextBounded(bound);
  const int mode = static_cast<int>(run_rng.NextBounded(3));
  const double keep = kKeepSweep[run_rng.NextBounded(5)];
  const std::uint64_t crash_seed = run_rng.Next();

  std::vector<std::unique_ptr<NvmDevice>> owned;
  std::vector<NvmDevice*> devices;
  for (std::size_t s = 0; s < kShardCount; ++s) {
    owned.push_back(std::make_unique<NvmDevice>(ShardDeviceConfig(base)));
    devices.push_back(owned.back().get());
  }

  ++stats->runs;
  ++stats->armed[static_cast<std::size_t>(site)];

  bool crashed = false;
  {
    auto db = std::make_unique<nvc::shard::ShardedDatabase>(devices, base);
    db->Format();
    LoadSharded(*db);
    std::atomic<std::uint64_t> reached{0};
    db->SetCrashHook([&reached, site, crash_shard, fire_index](std::size_t shard,
                                                               CrashSite s) {
      return shard == crash_shard && s == site && ++reached == fire_index;
    });
    for (std::size_t e = 0; e < kShardEpochs; ++e) {
      const nvc::shard::ShardedEpochResult result = db->ExecuteEpoch(ShardEpochBatch(seed, e));
      if (result.deferred != 0) {
        return "sharded stream unexpectedly router-deferred " +
               std::to_string(result.deferred) + " transactions (harness bug)";
      }
      if (result.crashed) {
        crashed = true;
        break;
      }
    }
    stats->coverage.Merge(db->crash_coverage());
  }

  std::unique_ptr<nvc::shard::ShardedDatabase> db;
  if (crashed) {
    ++stats->crashed_runs;
    ++stats->armed_fired[static_cast<std::size_t>(site)];
    // The power failure takes the whole fleet: the armed shard's device gets
    // the swept failure mode, the survivors lose their unfenced lines too.
    for (std::size_t s = 0; s < kShardCount; ++s) {
      if (s == crash_shard) {
        switch (mode) {
          case 0:
            devices[s]->Crash();
            break;
          case 1:
            devices[s]->CrashChaos(crash_seed, keep);
            break;
          default:
            devices[s]->CrashTorn(crash_seed, keep);
            break;
        }
      } else {
        devices[s]->Crash();
      }
    }
  } else {
    ++stats->missed_runs;
  }

  db = std::make_unique<nvc::shard::ShardedDatabase>(devices, base);
  const nvc::StatusOr<nvc::shard::ShardedRecoveryReport> report =
      db->Recover(nvc::test::KvRegistry());
  if (!report.ok()) {
    ++stats->divergences;
    return "sharded recovery failed: " + report.status().message();
  }
  stats->coverage.Merge(db->crash_coverage());
  // stream[e] ran as global epoch e+2; recovered_epoch is the agreed epoch
  // AFTER any replay, so the next batch to run is recovered_epoch - 1.
  for (std::size_t e = static_cast<std::size_t>(report->recovered_epoch) - 1;
       e < kShardEpochs; ++e) {
    db->ExecuteEpoch(ShardEpochBatch(seed, e));
  }

  std::vector<OracleState> actual;
  for (std::size_t s = 0; s < kShardCount; ++s) {
    actual.push_back(nvc::core::CaptureState(db->shard(s)));
  }
  std::string diff;
  const std::size_t divergences = nvc::core::DiffShardedStates(expected, actual, &diff);
  stats->divergences += divergences;
  std::string failure;
  if (divergences != 0) {
    failure = "sharded state diverged (" + std::to_string(divergences) + "):\n" + diff;
  } else if (nvc::core::MultiShardStateHash(expected) !=
             nvc::core::MultiShardStateHash(actual)) {
    failure = "sharded state hash mismatch with zero reported divergences";
  }
  if (verbose || !failure.empty()) {
    static constexpr const char* kModeNames[] = {"crash", "chaos", "torn"};
    std::printf("[sharded seed=%llu site=%s shard=%zu mode=%s keep=%.2f fire=%llu] %s\n",
                static_cast<unsigned long long>(seed), CrashSiteName(site), crash_shard,
                kModeNames[mode], keep, static_cast<unsigned long long>(fire_index),
                failure.empty() ? (crashed ? "ok" : "miss") : "FAIL");
  }
  return failure;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool verbose = false;
  std::size_t seeds = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--seeds" && i + 1 < argc) {
      char* end = nullptr;
      seeds = static_cast<std::size_t>(std::strtoull(argv[++i], &end, 10));
      if (end == argv[i] || *end != '\0' || seeds == 0) {
        std::fprintf(stderr, "crash_fuzz: --seeds requires a positive integer, got '%s'\n",
                     argv[i]);
        return 2;
      }
    } else {
      std::fprintf(stderr, "usage: crash_fuzz [--smoke] [--seeds N] [--verbose]\n");
      return 2;
    }
  }
  if (seeds == 0) {
    seeds = smoke ? 3 : 20;
  }

  const std::vector<FuzzConfig> configs = BuildConfigs(smoke);
  SweepStats stats;
  std::size_t failures = 0;

  for (std::size_t c = 0; c < configs.size(); ++c) {
    const std::size_t runs_before = stats.runs;
    const std::size_t crashed_before = stats.crashed_runs;
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      for (CrashSite site : kAllCrashSites) {
        // The recovery-window sites only exist when instant recovery is on.
        if (IsRecoverySite(site) && !configs[c].spec.enable_instant_recovery) {
          continue;
        }
        // The scan/rebuild sites only exist on ordered-table configs.
        if ((site == CrashSite::kMidScanValidate ||
             site == CrashSite::kMidOrderedIndexRebuild) &&
            !configs[c].ordered) {
          continue;
        }
        // The shard-layer sites only exist in the sharded sweep below.
        if (site == CrashSite::kMidShardExchange ||
            site == CrashSite::kMidShardEpochBarrier) {
          continue;
        }
        const std::string failure = RunCase(configs[c], c, seed, site, &stats, verbose);
        if (!failure.empty()) {
          ++failures;
        }
      }
    }
    std::printf("config %-16s: %3zu runs, %3zu crashed+recovered, %3zu missed\n",
                configs[c].name.c_str(), stats.runs - runs_before,
                stats.crashed_runs - crashed_before,
                (stats.runs - runs_before) - (stats.crashed_runs - crashed_before));
  }

  // Multi-shard config: one sub-sweep per (seed, site, crashing shard). The
  // two shard-layer sites (kMidShardExchange, kMidShardEpochBarrier) exist
  // only here, so this sweep is what keeps the all-sites-fired gate honest
  // for them.
  {
    const std::size_t runs_before = stats.runs;
    const std::size_t crashed_before = stats.crashed_runs;
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      for (CrashSite site : kShardedSites) {
        for (std::size_t shard = 0; shard < kShardCount; ++shard) {
          const std::string failure = RunShardedCase(seed, site, shard, &stats, verbose);
          if (!failure.empty()) {
            ++failures;
            std::printf("%s\n", failure.c_str());
          }
        }
      }
    }
    std::printf("config %-16s: %3zu runs, %3zu crashed+recovered, %3zu missed\n", "sharded",
                stats.runs - runs_before, stats.crashed_runs - crashed_before,
                (stats.runs - runs_before) - (stats.crashed_runs - crashed_before));
  }

  std::printf("\nper-site coverage (armed = runs targeting the site; fired = crashes):\n");
  bool all_sites_fired = true;
  for (std::size_t i = 0; i < kCrashSiteCount; ++i) {
    std::printf("  %-20s armed %4llu  fired %4llu  reached %7llu\n",
                CrashSiteName(kAllCrashSites[i]),
                static_cast<unsigned long long>(stats.armed[i]),
                static_cast<unsigned long long>(stats.armed_fired[i]),
                static_cast<unsigned long long>(stats.coverage.reached[i]));
    if (stats.armed_fired[i] == 0) {
      all_sites_fired = false;
      std::printf("    ^ never fired: the sweep exercised no crash at this site\n");
    }
  }

  std::printf("\ntotal: %zu runs (%zu via service), %zu crashed+recovered, %zu missed, "
              "%zu divergences, %zu index inconsistencies, %zu ordered inconsistencies\n",
              stats.runs, stats.service_runs, stats.crashed_runs, stats.missed_runs,
              stats.divergences, stats.index_inconsistencies,
              stats.ordered_inconsistencies);
  if (failures != 0 || !all_sites_fired) {
    std::printf("FAIL\n");
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
