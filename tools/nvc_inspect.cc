// nvc_inspect — offline inspection of an NVCaracal pool file.
//
// Opens a file-backed NVMM region read-only-in-spirit (no engine phases, no
// recovery, no writes) and prints what an operator needs after an incident:
// the superblock state, the last checkpointed epoch, input-log status for
// the in-flight epoch (will recovery replay?), and the on-device area map.
//
// Usage: nvc_inspect <pool-file>
//
// The tool must be built with the same DatabaseSpec the pool was created
// with to locate the areas; it ships with the spec of
// examples/crash_recovery and serves as a template for project-specific
// inspectors.
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>

#include "src/core/database.h"
#include "src/sim/nvm_device.h"

namespace {

using namespace nvc;

// Must match examples/crash_recovery.cpp.
core::DatabaseSpec DemoSpec() {
  core::DatabaseSpec spec;
  spec.workers = 1;
  spec.tables.push_back(core::TableSpec{.name = "accounts", .capacity_rows = 1024});
  spec.value_blocks_per_core = 1024;
  spec.log_bytes = 1u << 20;
  spec.enable_instant_recovery = true;
  return spec;
}

struct RawSuperBlock {
  std::uint64_t magic;
  std::uint32_t version;
  std::uint32_t table_count;
  std::uint64_t epoch;
};

struct RawLogHeader {
  Epoch epoch;
  std::uint32_t txn_count;
  std::uint64_t payload_bytes;
  std::uint64_t checksum;
  std::uint64_t complete;
};

// Mirrors core::DigestEntry (one declared write of the pending epoch).
struct RawDigestEntry {
  Key key;
  std::uint32_t table;
  std::uint32_t slot;
};

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <pool-file>\n", argv[0]);
    return 2;
  }
  const std::string path = argv[1];
  const core::DatabaseSpec spec = DemoSpec();

  sim::NvmConfig config;
  config.size_bytes = core::Database::RequiredDeviceBytes(spec);
  config.backing_file = path;
  sim::NvmDevice device(config);
  if (!device.recovered_existing_file()) {
    std::fprintf(stderr, "error: %s does not exist or is smaller than the spec layout\n",
                 path.c_str());
    return 1;
  }

  const auto areas = core::Database::DescribeLayout(spec);
  const auto* sb = device.As<RawSuperBlock>(areas[0].offset);
  std::printf("pool file        : %s (%zu bytes mapped)\n", path.c_str(), device.size());
  std::printf("magic            : 0x%016" PRIx64 " (%s)\n", sb->magic,
              sb->magic == 0x4e564341524143ULL ? "NVCaracal" : "UNRECOGNIZED");
  if (sb->magic != 0x4e564341524143ULL) {
    return 1;
  }
  std::printf("format version   : %u\n", sb->version);
  std::printf("tables           : %u\n", sb->table_count);
  std::printf("checkpointed at  : epoch %" PRIu64 "\n", sb->epoch);

  std::uint64_t log_base = 0;
  for (const auto& area : areas) {
    if (area.name.rfind("input log", 0) == 0) {
      log_base = area.offset;
    }
  }
  bool replay_pending = false;
  for (int parity = 0; parity < 2; ++parity) {
    const auto* header = device.As<RawLogHeader>(log_base + parity * spec.log_bytes);
    std::printf("input log[%d]     : epoch %u, %u txns, %" PRIu64 " bytes, %s\n", parity,
                header->epoch, header->txn_count, header->payload_bytes,
                header->complete == 1 ? "complete" : "incomplete/empty");
    if (header->complete == 1 && header->epoch == sb->epoch + 1) {
      replay_pending = true;
    }
  }
  // The replay digest decides whether the pending epoch can be recovered
  // instantly (on-demand redo + background backfill) or needs a full replay.
  std::uint64_t digest_base = 0;
  for (const auto& area : areas) {
    if (area.name.rfind("replay digest", 0) == 0) {
      digest_base = area.offset;
    }
  }
  bool instant_ready = false;
  if (digest_base != 0) {
    for (int parity = 0; parity < 2; ++parity) {
      const std::uint64_t buffer = digest_base + parity * spec.digest_bytes;
      const auto* header = device.As<RawLogHeader>(buffer);
      if (header->complete != 1) {
        std::printf("replay digest[%d] : incomplete/empty\n", parity);
        continue;
      }
      const std::uint64_t entries = header->payload_bytes / sizeof(RawDigestEntry);
      std::printf("replay digest[%d] : epoch %u, %" PRIu64 " declared writes, complete\n",
                  parity, header->epoch, entries);
      if (replay_pending && header->epoch == sb->epoch + 1) {
        instant_ready = true;
        const auto* first =
            device.As<RawDigestEntry>(buffer + sizeof(RawLogHeader));
        const std::uint64_t sample = entries < 4 ? entries : 4;
        for (std::uint64_t i = 0; i < sample; ++i) {
          std::printf("    entry %" PRIu64 "      : table %u key %" PRIu64 " -> txn slot %u\n",
                      i, first[i].table, static_cast<std::uint64_t>(first[i].key),
                      first[i].slot);
        }
        if (entries > sample) {
          std::printf("    ... %" PRIu64 " more entries\n", entries - sample);
        }
      }
    }
  } else {
    std::printf("replay digest    : absent (instant recovery disabled in this spec)\n");
  }
  std::printf("recovery outlook : %s\n",
              replay_pending
                  ? (instant_ready
                         ? "epoch in flight at crash; digest is complete, so recovery can "
                           "serve reads instantly and backfill the epoch in the background"
                         : "epoch in flight at crash; recovery will deterministically replay it")
                  : "clean checkpoint; recovery rebuilds the index only");

  std::printf("\non-device area map:\n");
  for (const auto& area : areas) {
    std::printf("  %-34s @ %10" PRIu64 "  %12" PRIu64 " bytes\n", area.name.c_str(),
                area.offset, area.bytes);
  }
  return 0;
}
