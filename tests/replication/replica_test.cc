// Deterministic replication: a replica applying shipped input bundles is
// byte-identical to the primary at every epoch boundary, survives its own
// crashes with the standard recovery mechanism, tolerates re-shipped
// bundles, and can be promoted when the primary dies.
#include <gtest/gtest.h>

#include "src/replication/replica.h"
#include "src/workload/smallbank.h"
#include "tests/test_util.h"

namespace nvc::test {
namespace {

using core::CrashSite;
using core::Database;
using core::DatabaseSpec;
using repl::EpochBundle;
using repl::MakeBundle;
using repl::Replica;
using repl::ReplicationChannel;
using sim::NvmDevice;

void LoadKv(Database& db, std::size_t rows) {
  for (Key key = 0; key < rows; ++key) {
    const std::uint64_t value = 100 + key;
    db.BulkLoad(0, key, &value, sizeof(value));
  }
  db.FinalizeLoad();
}

std::vector<std::unique_ptr<txn::Transaction>> MixedEpoch(std::uint64_t seed, Key* fresh) {
  Rng rng(seed);
  std::vector<std::unique_ptr<txn::Transaction>> txns;
  for (int i = 0; i < 40; ++i) {
    const Key key = rng.NextBounded(16);
    switch (rng.NextBounded(4)) {
      case 0:
        txns.push_back(std::make_unique<KvPutTxn>(key, rng.Next()));
        break;
      case 1:
        txns.push_back(std::make_unique<KvRmwTxn>(key, rng.NextBounded(50)));
        break;
      case 2:
        txns.push_back(std::make_unique<KvBigPutTxn>(16 + key, rng.Next()));
        break;
      default:
        txns.push_back(std::make_unique<KvInsertTxn>((*fresh)++, rng.Next()));
        break;
    }
  }
  return txns;
}

void ExpectSameState(Database& a, Database& b, Key key_limit) {
  for (Key key = 0; key < key_limit; ++key) {
    EXPECT_EQ(ReadBytes(a, 0, key), ReadBytes(b, 0, key)) << "key " << key;
  }
}

TEST(ReplicationTest, ReplicaTracksPrimaryExactly) {
  const DatabaseSpec spec = SmallKvSpec();
  NvmDevice primary_device(ShadowDeviceConfig(spec));
  NvmDevice replica_device(ShadowDeviceConfig(spec));
  Database primary(primary_device, spec);
  Database standby(replica_device, spec);
  primary.Format();
  standby.Format();
  LoadKv(primary, 32);
  LoadKv(standby, 32);

  Replica replica(standby, KvRegistry());
  ReplicationChannel channel;

  Key fresh_p = 1000;
  Key fresh_r = 1000;  // bundles regenerate the same inserts
  (void)fresh_r;
  for (Epoch e = 0; e < 6; ++e) {
    auto txns = MixedEpoch(900 + e, &fresh_p);
    channel.Ship(MakeBundle(primary.current_epoch() + 1, txns));
    primary.ExecuteEpoch(std::move(txns));
  }
  EXPECT_EQ(replica.CatchUp(channel), 6u);
  EXPECT_EQ(replica.applied_epoch(), primary.current_epoch());
  ExpectSameState(primary, standby, 1300);
}

TEST(ReplicationTest, LaggingReplicaCatchesUp) {
  const DatabaseSpec spec = SmallKvSpec();
  NvmDevice primary_device(ShadowDeviceConfig(spec));
  NvmDevice replica_device(ShadowDeviceConfig(spec));
  Database primary(primary_device, spec);
  Database standby(replica_device, spec);
  primary.Format();
  standby.Format();
  LoadKv(primary, 32);
  LoadKv(standby, 32);

  Replica replica(standby, KvRegistry());
  ReplicationChannel channel;
  Key fresh = 1000;
  for (Epoch e = 0; e < 4; ++e) {
    auto txns = MixedEpoch(800 + e, &fresh);
    channel.Ship(MakeBundle(primary.current_epoch() + 1, txns));
    primary.ExecuteEpoch(std::move(txns));
    // Replica only drains every other epoch.
    if (e % 2 == 1) {
      replica.CatchUp(channel);
    }
  }
  replica.CatchUp(channel);
  ExpectSameState(primary, standby, 1200);
}

TEST(ReplicationTest, OutOfOrderBundleIsRejected) {
  const DatabaseSpec spec = SmallKvSpec();
  NvmDevice device(ShadowDeviceConfig(spec));
  Database standby(device, spec);
  standby.Format();
  LoadKv(standby, 8);
  Replica replica(standby, KvRegistry());

  Key fresh = 1000;
  auto txns = MixedEpoch(5, &fresh);
  const EpochBundle gap = MakeBundle(/*epoch=*/5, txns);  // replica is at epoch 1
  EXPECT_THROW(replica.Apply(gap), std::runtime_error);
  const EpochBundle stale = MakeBundle(/*epoch=*/1, txns);
  EXPECT_FALSE(replica.Apply(stale));
}

TEST(ReplicationTest, ReplicaCrashRecoversAndResumes) {
  const DatabaseSpec spec = SmallKvSpec();
  NvmDevice primary_device(ShadowDeviceConfig(spec));
  NvmDevice replica_device(ShadowDeviceConfig(spec));
  Database primary(primary_device, spec);
  primary.Format();
  LoadKv(primary, 32);

  std::vector<EpochBundle> bundles;
  Key fresh = 1000;
  for (Epoch e = 0; e < 5; ++e) {
    auto txns = MixedEpoch(700 + e, &fresh);
    bundles.push_back(MakeBundle(primary.current_epoch() + 1, txns));
    primary.ExecuteEpoch(std::move(txns));
  }

  // Replica applies two epochs, crashes in the middle of the third.
  {
    Database standby(replica_device, spec);
    standby.Format();
    LoadKv(standby, 32);
    Replica replica(standby, KvRegistry());
    ASSERT_TRUE(replica.Apply(bundles[0]));
    ASSERT_TRUE(replica.Apply(bundles[1]));
    int count = 0;
    standby.SetCrashHook([&count](CrashSite site) {
      return site == CrashSite::kMidExecution && ++count > 15;
    });
    EXPECT_THROW(replica.Apply(bundles[2]), std::runtime_error);
  }
  replica_device.CrashChaos(99, 0.5);

  // Standard recovery finishes the crashed epoch from the replica's own
  // input log; re-shipped bundles are skipped idempotently.
  Database standby(replica_device, spec);
  const auto report = standby.Recover(KvRegistry()).value();
  ASSERT_TRUE(report.replayed);
  Replica replica(standby, KvRegistry());
  std::size_t applied = 0;
  for (const EpochBundle& bundle : bundles) {
    applied += replica.Apply(bundle) ? 1 : 0;
  }
  EXPECT_EQ(applied, 2u);  // epochs 6 and 7; 2..5 already durable
  ExpectSameState(primary, standby, 1300);
}

TEST(ReplicationTest, FailoverPromotesReplica) {
  const DatabaseSpec spec = SmallKvSpec();
  NvmDevice primary_device(ShadowDeviceConfig(spec));
  NvmDevice replica_device(ShadowDeviceConfig(spec));
  std::vector<std::vector<std::uint8_t>> primary_final;
  Key fresh = 1000;
  {
    Database primary(primary_device, spec);
    primary.Format();
    LoadKv(primary, 32);
    Database standby(replica_device, spec);
    standby.Format();
    LoadKv(standby, 32);
    Replica replica(standby, KvRegistry());

    for (Epoch e = 0; e < 3; ++e) {
      auto txns = MixedEpoch(600 + e, &fresh);
      const EpochBundle bundle = MakeBundle(primary.current_epoch() + 1, txns);
      primary.ExecuteEpoch(std::move(txns));
      ASSERT_TRUE(replica.Apply(bundle));
    }
    // Primary dies here (its device is abandoned). Promote the replica:
    // new epochs now run directly against the standby database.
    auto txns = MixedEpoch(999, &fresh);
    const auto result = standby.ExecuteEpoch(std::move(txns));
    EXPECT_EQ(result.committed + result.aborted, 40u);
    for (Key key = 0; key < 32; ++key) {
      primary_final.push_back(ReadBytes(standby, 0, key));
    }
  }
  EXPECT_EQ(primary_final.size(), 32u);
}

// End-to-end with a real workload: SmallBank replicated for several epochs.
TEST(ReplicationTest, SmallBankReplication) {
  workload::SmallBankConfig config;
  config.customers = 300;
  config.hotspot_customers = 16;
  workload::SmallBankWorkload generator(config);
  const DatabaseSpec spec = generator.Spec(1);

  NvmDevice primary_device(ShadowDeviceConfig(spec));
  NvmDevice replica_device(ShadowDeviceConfig(spec));
  Database primary(primary_device, spec);
  Database standby(replica_device, spec);
  primary.Format();
  standby.Format();
  generator.Load(primary);
  primary.FinalizeLoad();
  generator.Load(standby);
  standby.FinalizeLoad();

  Replica replica(standby, workload::SmallBankWorkload::Registry());
  ReplicationChannel channel;
  for (Epoch e = 0; e < 5; ++e) {
    auto txns = generator.MakeEpoch(200);
    channel.Ship(MakeBundle(primary.current_epoch() + 1, txns));
    primary.ExecuteEpoch(std::move(txns));
  }
  replica.CatchUp(channel);
  for (std::uint64_t c = 0; c < config.customers; ++c) {
    EXPECT_EQ(ReadBytes(primary, workload::kSavingsTable, c),
              ReadBytes(standby, workload::kSavingsTable, c));
    EXPECT_EQ(ReadBytes(primary, workload::kCheckingTable, c),
              ReadBytes(standby, workload::kCheckingTable, c));
  }
}

}  // namespace
}  // namespace nvc::test
