// Zen baseline engine: single-worker batches match a serial model, every
// committed update costs an NVM tuple write, the cache bounds hold, and the
// two-pass recovery scan rebuilds the exact committed state.
#include <gtest/gtest.h>

#include "src/workload/smallbank.h"
#include "src/zen/zen_db.h"
#include "tests/test_util.h"

namespace nvc::test {
namespace {

using sim::NvmDevice;
using zen::ZenDb;
using zen::ZenSpec;
using zen::ZenTableSpec;

ZenSpec KvSpec(std::size_t cache_entries = 1 << 16) {
  ZenSpec spec;
  spec.workers = 1;
  spec.tables.push_back(ZenTableSpec{.name = "kv", .value_size = 8, .capacity_slots = 8192});
  spec.cache_max_entries = cache_entries;
  return spec;
}

TEST(ZenDbTest, LoadAndRead) {
  ZenSpec spec = KvSpec();
  NvmDevice device(sim::NvmConfig{.size_bytes = ZenDb::RequiredDeviceBytes(spec)});
  ZenDb db(device, spec);
  db.Format();
  for (std::uint64_t k = 0; k < 100; ++k) {
    const std::uint64_t v = k * 3;
    db.BulkLoad(0, k, &v, sizeof(v));
  }
  std::uint64_t v = 0;
  ASSERT_EQ(db.ReadCommitted(0, 42, &v, sizeof(v)).value(), 8u);
  EXPECT_EQ(v, 126u);
  EXPECT_FALSE(db.ReadCommitted(0, 1000, &v, sizeof(v)).ok());
}

TEST(ZenDbTest, BatchesMatchSerialOrderAndChargeNvmPerUpdate) {
  ZenSpec spec = KvSpec();
  NvmDevice device(sim::NvmConfig{.size_bytes = ZenDb::RequiredDeviceBytes(spec)});
  ZenDb db(device, spec);
  db.Format();
  const std::uint64_t zero = 0;
  db.BulkLoad(0, 1, &zero, sizeof(zero));
  device.stats().Reset();

  // 50 updates to one contended key: Zen persists every one of them.
  std::vector<std::unique_ptr<txn::Transaction>> txns;
  for (std::uint64_t i = 1; i <= 50; ++i) {
    txns.push_back(std::make_unique<KvRmwTxn>(1, i));
  }
  const auto result = db.ExecuteBatch(std::move(txns));
  EXPECT_EQ(result.committed, 50u);
  EXPECT_EQ(db.stats().persistent_writes.Sum(), 50u);
  EXPECT_GE(device.stats().persist_ops.Sum(), 50u);
  EXPECT_GE(device.stats().fences.Sum(), 50u);

  std::uint64_t expected = 0;
  for (std::uint64_t i = 1; i <= 50; ++i) {
    expected = expected * 3 + i;
  }
  std::uint64_t v = 0;
  ASSERT_EQ(db.ReadCommitted(0, 1, &v, sizeof(v)).value(), 8u);
  EXPECT_EQ(v, expected);
}

TEST(ZenDbTest, AbortedTransactionsTouchNothing) {
  using workload::SbWriteCheckTxn;
  ZenSpec spec;
  spec.workers = 1;
  spec.tables.push_back(ZenTableSpec{.name = "savings", .value_size = 8,
                                     .capacity_slots = 1024});
  spec.tables.push_back(ZenTableSpec{.name = "checking", .value_size = 8,
                                     .capacity_slots = 1024});
  NvmDevice device(sim::NvmConfig{.size_bytes = ZenDb::RequiredDeviceBytes(spec)});
  ZenDb db(device, spec);
  db.Format();
  const std::int64_t balance = 100;
  db.BulkLoad(workload::kSavingsTable, 7, &balance, sizeof(balance));
  db.BulkLoad(workload::kCheckingTable, 7, &balance, sizeof(balance));
  device.stats().Reset();

  std::vector<std::unique_ptr<txn::Transaction>> txns;
  txns.push_back(std::make_unique<SbWriteCheckTxn>(7, 1'000'000));  // must abort
  const auto result = db.ExecuteBatch(std::move(txns));
  EXPECT_EQ(result.aborted, 1u);
  EXPECT_EQ(device.stats().persist_ops.Sum(), 0u);
  std::int64_t v = 0;
  db.ReadCommitted(workload::kCheckingTable, 7, &v, sizeof(v)).IgnoreError();
  EXPECT_EQ(v, 100);
}

TEST(ZenDbTest, CacheBoundAndEviction) {
  ZenSpec spec = KvSpec(/*cache_entries=*/16);
  NvmDevice device(sim::NvmConfig{.size_bytes = ZenDb::RequiredDeviceBytes(spec)});
  ZenDb db(device, spec);
  db.Format();
  for (std::uint64_t k = 0; k < 200; ++k) {
    db.BulkLoad(0, k, &k, sizeof(k));
  }
  std::uint64_t v = 0;
  for (std::uint64_t k = 0; k < 200; ++k) {
    db.ReadCommitted(0, k, &v, sizeof(v)).IgnoreError();
  }
  EXPECT_LE(db.cache_entries(), 16u);
  EXPECT_GT(db.stats().cache_evictions.Sum(), 0u);
  // Hot re-reads hit the cache.
  const auto misses_before = db.stats().cache_misses.Sum();
  db.ReadCommitted(0, 199, &v, sizeof(v)).IgnoreError();
  EXPECT_EQ(db.stats().cache_misses.Sum(), misses_before);
}

TEST(ZenDbTest, TwoPassRecoveryRebuildsCommittedState) {
  ZenSpec spec = KvSpec();
  NvmDevice device(sim::NvmConfig{.size_bytes = ZenDb::RequiredDeviceBytes(spec),
                                  .crash_tracking = sim::CrashTracking::kShadow});
  {
    ZenDb db(device, spec);
    db.Format();
    for (std::uint64_t k = 0; k < 100; ++k) {
      db.BulkLoad(0, k, &k, sizeof(k));
    }
    std::vector<std::unique_ptr<txn::Transaction>> txns;
    for (std::uint64_t i = 0; i < 60; ++i) {
      txns.push_back(std::make_unique<KvPutTxn>(i % 20, 7'000 + i));
    }
    db.ExecuteBatch(std::move(txns));
  }
  device.Crash();  // all commits were fenced; the DRAM index is lost

  ZenDb recovered(device, spec);
  const auto report = recovered.Recover();
  EXPECT_EQ(report.live_rows, 100u);
  // Two passes over the full tuple heap (the high-water mark is lost).
  EXPECT_EQ(report.slots_scanned, 2u * 8192u);
  for (std::uint64_t k = 0; k < 100; ++k) {
    std::uint64_t v = 0;
    ASSERT_EQ(recovered.ReadCommitted(0, k, &v, sizeof(v)).value(), 8u);
    if (k < 20) {
      EXPECT_EQ(v, 7'000 + 40 + k);  // last writer in the batch
    } else {
      EXPECT_EQ(v, k);
    }
  }
}

}  // namespace
}  // namespace nvc::test
