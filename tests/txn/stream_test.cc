// Transaction stream codec: round trips, framing, unknown types, and
// workload generator determinism (same seed => byte-identical streams, the
// property replication and replay both rest on).
#include <gtest/gtest.h>

#include "src/txn/stream.h"
#include "src/workload/smallbank.h"
#include "src/workload/tpcc.h"
#include "src/workload/ycsb.h"
#include "tests/test_util.h"

namespace nvc::test {
namespace {

TEST(TxnStreamTest, RoundTripMixedTypes) {
  std::vector<std::unique_ptr<txn::Transaction>> txns;
  txns.push_back(std::make_unique<KvPutTxn>(1, 100));
  txns.push_back(std::make_unique<KvRmwTxn>(2, 7));
  txns.push_back(std::make_unique<KvVarPutTxn>(3, 500, 42));
  txns.push_back(std::make_unique<KvDeleteTxn>(4));

  const auto bytes = txn::EncodeTxnStream(txns);
  const auto decoded = txn::DecodeTxnStream(bytes.data(), bytes.size(),
                                            static_cast<std::uint32_t>(txns.size()),
                                            KvRegistry());
  ASSERT_EQ(decoded.size(), txns.size());
  for (std::size_t i = 0; i < txns.size(); ++i) {
    EXPECT_EQ(decoded[i]->type(), txns[i]->type());
  }
  // Re-encoding the decoded stream must be byte-identical.
  EXPECT_EQ(txn::EncodeTxnStream(decoded), bytes);
}

TEST(TxnStreamTest, EmptyStream) {
  const auto bytes = txn::EncodeTxnStream({});
  EXPECT_TRUE(bytes.empty());
  EXPECT_TRUE(txn::DecodeTxnStream(bytes.data(), 0, 0, KvRegistry()).empty());
}

TEST(BinaryReaderTest, ReadsPastEndThrowCleanly) {
  const std::vector<std::uint8_t> bytes = {1, 2, 3, 4};
  BinaryReader reader(bytes.data(), bytes.size());
  EXPECT_THROW(reader.Get<std::uint64_t>(), SerializeError);
  EXPECT_THROW(reader.Skip(5), SerializeError);
  std::uint8_t out[8];
  EXPECT_THROW(reader.GetBytes(out, 8), SerializeError);
  // A failed read consumes nothing: the reader is still usable.
  EXPECT_EQ(reader.remaining(), 4u);
  EXPECT_EQ(reader.Get<std::uint32_t>(), 0x04030201u);
  EXPECT_THROW(reader.Get<std::uint8_t>(), SerializeError);
}

// A log payload truncated at any byte (torn tail) must fail decode with
// SerializeError — the pre-fix BinaryReader read past size_ (undefined
// behaviour on a real torn log).
TEST(TxnStreamTest, TruncatedStreamThrowsAtEveryLength) {
  std::vector<std::unique_ptr<txn::Transaction>> txns;
  txns.push_back(std::make_unique<KvPutTxn>(1, 100));
  txns.push_back(std::make_unique<KvVarPutTxn>(2, 300, 42));
  txns.push_back(std::make_unique<KvRmwTxn>(3, 7));
  const auto bytes = txn::EncodeTxnStream(txns);
  const auto registry = KvRegistry();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW(txn::DecodeTxnStream(bytes.data(), len, 3, registry), SerializeError)
        << "truncated to " << len << " of " << bytes.size() << " bytes";
  }
}

// A bit-flipped record size field must not extend the record past the
// payload (the sub-reader would otherwise cover out-of-bounds memory).
TEST(TxnStreamTest, OversizedRecordSizeFieldThrows) {
  std::vector<std::unique_ptr<txn::Transaction>> txns;
  txns.push_back(std::make_unique<KvPutTxn>(1, 100));
  auto bytes = txn::EncodeTxnStream(txns);
  // Record framing: type u32, size u32, payload. Corrupt the size field.
  std::uint32_t huge = 0x7FFFFFFF;
  std::memcpy(bytes.data() + sizeof(std::uint32_t), &huge, sizeof(huge));
  EXPECT_THROW(txn::DecodeTxnStream(bytes.data(), bytes.size(), 1, KvRegistry()),
               SerializeError);
}

// Every single-bit corruption of a stream must either decode (the flip was
// semantically harmless at this layer) or throw — never crash or read out of
// bounds. Run under ASan/UBSan this is the torn-log safety net.
TEST(TxnStreamTest, BitFlippedStreamNeverReadsOutOfBounds) {
  std::vector<std::unique_ptr<txn::Transaction>> txns;
  txns.push_back(std::make_unique<KvPutTxn>(1, 100));
  txns.push_back(std::make_unique<KvVarPutTxn>(2, 120, 42));
  txns.push_back(std::make_unique<KvDeleteTxn>(3));
  const auto bytes = txn::EncodeTxnStream(txns);
  const auto registry = KvRegistry();
  for (std::size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto corrupt = bytes;
      corrupt[byte] ^= static_cast<std::uint8_t>(1u << bit);
      try {
        const auto decoded = txn::DecodeTxnStream(corrupt.data(), corrupt.size(), 3, registry);
        EXPECT_LE(decoded.size(), 3u);
      } catch (const std::runtime_error&) {
        // SerializeError or unregistered-type: both are clean failures.
      }
    }
  }
}

TEST(TxnStreamTest, UnknownTypeThrows) {
  std::vector<std::unique_ptr<txn::Transaction>> txns;
  txns.push_back(std::make_unique<KvPutTxn>(1, 100));
  const auto bytes = txn::EncodeTxnStream(txns);
  const txn::TxnRegistry empty;
  EXPECT_THROW(txn::DecodeTxnStream(bytes.data(), bytes.size(), 1, empty),
               std::runtime_error);
}

template <typename MakeA, typename MakeB>
void ExpectDeterministicGenerator(MakeA make_a, MakeB make_b) {
  auto a = make_a();
  auto b = make_b();
  for (int epoch = 0; epoch < 3; ++epoch) {
    const auto ta = a.MakeEpoch(100);
    const auto tb = b.MakeEpoch(100);
    EXPECT_EQ(txn::EncodeTxnStream(ta), txn::EncodeTxnStream(tb)) << "epoch " << epoch;
  }
}

TEST(TxnStreamTest, YcsbGeneratorIsDeterministic) {
  workload::YcsbConfig config;
  config.rows = 5000;
  config.hot_ops = 4;
  ExpectDeterministicGenerator([&] { return workload::YcsbWorkload(config); },
                               [&] { return workload::YcsbWorkload(config); });
}

TEST(TxnStreamTest, SmallBankGeneratorIsDeterministic) {
  workload::SmallBankConfig config;
  config.customers = 2000;
  ExpectDeterministicGenerator([&] { return workload::SmallBankWorkload(config); },
                               [&] { return workload::SmallBankWorkload(config); });
}

TEST(TxnStreamTest, TpccGeneratorIsDeterministic) {
  workload::TpccConfig config;
  config.warehouses = 2;
  config.items = 200;
  config.customers_per_district = 20;
  config.initial_orders_per_district = 20;
  ExpectDeterministicGenerator([&] { return workload::TpccWorkload(config); },
                               [&] { return workload::TpccWorkload(config); });
}

TEST(TxnStreamTest, DifferentSeedsDiffer) {
  workload::YcsbConfig a;
  a.rows = 5000;
  a.seed = 1;
  workload::YcsbConfig b = a;
  b.seed = 2;
  workload::YcsbWorkload wa(a);
  workload::YcsbWorkload wb(b);
  EXPECT_NE(txn::EncodeTxnStream(wa.MakeEpoch(50)), txn::EncodeTxnStream(wb.MakeEpoch(50)));
}

}  // namespace
}  // namespace nvc::test
