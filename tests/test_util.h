// Shared helpers for the test suites: a tiny key-value workload over the
// public transaction API, plus device/database factories.
#pragma once

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/core/database.h"
#include "src/sim/nvm_device.h"
#include "src/txn/transaction.h"

namespace nvc::test {

inline constexpr txn::TxnType kKvPutType = 1;
inline constexpr txn::TxnType kKvRmwType = 2;

// Blind write of (key, value64) into table 0.
class KvPutTxn final : public txn::Transaction {
 public:
  KvPutTxn(Key key, std::uint64_t value) : key_(key), value_(value) {}

  txn::TxnType type() const override { return kKvPutType; }

  void EncodeInputs(BinaryWriter& writer) const override {
    writer.Put(key_);
    writer.Put(value_);
  }
  static std::unique_ptr<txn::Transaction> Decode(BinaryReader& reader) {
    const auto key = reader.Get<Key>();
    const auto value = reader.Get<std::uint64_t>();
    return std::make_unique<KvPutTxn>(key, value);
  }

  void AppendStep(txn::AppendContext& ctx) override { ctx.DeclareUpdate(0, key_); }
  void Execute(txn::ExecContext& ctx) override {
    ctx.Write(0, key_, &value_, sizeof(value_));
  }

 private:
  Key key_;
  std::uint64_t value_;
};

// Read-modify-write: value = old * 3 + delta (order-sensitive, so serial
// order violations are detectable).
class KvRmwTxn final : public txn::Transaction {
 public:
  KvRmwTxn(Key key, std::uint64_t delta) : key_(key), delta_(delta) {}

  txn::TxnType type() const override { return kKvRmwType; }

  void EncodeInputs(BinaryWriter& writer) const override {
    writer.Put(key_);
    writer.Put(delta_);
  }
  static std::unique_ptr<txn::Transaction> Decode(BinaryReader& reader) {
    const auto key = reader.Get<Key>();
    const auto delta = reader.Get<std::uint64_t>();
    return std::make_unique<KvRmwTxn>(key, delta);
  }

  void AppendStep(txn::AppendContext& ctx) override { ctx.DeclareUpdate(0, key_); }
  void DeclareReadSet(const std::function<void(TableId, Key)>& declare) const override {
    declare(0, key_);
  }
  void Execute(txn::ExecContext& ctx) override {
    std::uint64_t value = 0;
    ctx.Read(0, key_, &value, sizeof(value));
    value = value * 3 + delta_;
    ctx.Write(0, key_, &value, sizeof(value));
  }

 private:
  Key key_;
  std::uint64_t delta_;
};

inline constexpr txn::TxnType kKvBigPutType = 3;
inline constexpr std::uint32_t kBigValueSize = 200;  // > 168 B inline heap: pool-allocated

// Writes a 200-byte deterministic pattern; exercises the persistent value
// pool and the major garbage collector (non-inline stale versions).
class KvBigPutTxn final : public txn::Transaction {
 public:
  KvBigPutTxn(Key key, std::uint64_t seed) : key_(key), seed_(seed) {}

  txn::TxnType type() const override { return kKvBigPutType; }

  void EncodeInputs(BinaryWriter& writer) const override {
    writer.Put(key_);
    writer.Put(seed_);
  }
  static std::unique_ptr<txn::Transaction> Decode(BinaryReader& reader) {
    const auto key = reader.Get<Key>();
    const auto seed = reader.Get<std::uint64_t>();
    return std::make_unique<KvBigPutTxn>(key, seed);
  }

  static void Fill(Key key, std::uint64_t seed, std::uint8_t* out) {
    for (std::uint32_t i = 0; i < kBigValueSize; ++i) {
      out[i] = static_cast<std::uint8_t>(key * 7 + seed * 31 + i);
    }
  }

  void AppendStep(txn::AppendContext& ctx) override { ctx.DeclareUpdate(0, key_); }
  void Execute(txn::ExecContext& ctx) override {
    std::uint8_t data[kBigValueSize];
    Fill(key_, seed_, data);
    ctx.Write(0, key_, data, sizeof(data));
  }

 private:
  Key key_;
  std::uint64_t seed_;
};

inline constexpr txn::TxnType kKvInsertType = 4;
inline constexpr txn::TxnType kKvDeleteType = 5;
inline constexpr txn::TxnType kKvAbortType = 6;
inline constexpr txn::TxnType kKvVarPutType = 7;

// Inserts a fresh row with an 8-byte value in the insert step.
class KvInsertTxn final : public txn::Transaction {
 public:
  KvInsertTxn(Key key, std::uint64_t value) : key_(key), value_(value) {}
  txn::TxnType type() const override { return kKvInsertType; }
  void EncodeInputs(BinaryWriter& w) const override {
    w.Put(key_);
    w.Put(value_);
  }
  static std::unique_ptr<txn::Transaction> Decode(BinaryReader& r) {
    const auto key = r.Get<Key>();
    const auto value = r.Get<std::uint64_t>();
    return std::make_unique<KvInsertTxn>(key, value);
  }
  void InsertStep(txn::InsertContext& ctx) override {
    ctx.InsertRow(0, key_, &value_, sizeof(value_));
  }
  void Execute(txn::ExecContext&) override {}

 private:
  Key key_;
  std::uint64_t value_;
};

class KvDeleteTxn final : public txn::Transaction {
 public:
  explicit KvDeleteTxn(Key key) : key_(key) {}
  txn::TxnType type() const override { return kKvDeleteType; }
  void EncodeInputs(BinaryWriter& w) const override { w.Put(key_); }
  static std::unique_ptr<txn::Transaction> Decode(BinaryReader& r) {
    return std::make_unique<KvDeleteTxn>(r.Get<Key>());
  }
  void AppendStep(txn::AppendContext& ctx) override { ctx.DeclareDelete(0, key_); }
  void Execute(txn::ExecContext& ctx) override { ctx.Delete(0, key_); }

 private:
  Key key_;
};

// Declares a write but user-aborts before writing (IGNORE path).
class KvAbortTxn final : public txn::Transaction {
 public:
  explicit KvAbortTxn(Key key) : key_(key) {}
  txn::TxnType type() const override { return kKvAbortType; }
  void EncodeInputs(BinaryWriter& w) const override { w.Put(key_); }
  static std::unique_ptr<txn::Transaction> Decode(BinaryReader& r) {
    return std::make_unique<KvAbortTxn>(r.Get<Key>());
  }
  void AppendStep(txn::AppendContext& ctx) override { ctx.DeclareUpdate(0, key_); }
  void Execute(txn::ExecContext& ctx) override { ctx.Abort(); }

 private:
  Key key_;
};

// Writes a deterministic pattern of a given size (spans inline/pool classes).
class KvVarPutTxn final : public txn::Transaction {
 public:
  KvVarPutTxn(Key key, std::uint32_t size, std::uint64_t seed)
      : key_(key), size_(size), seed_(seed) {}
  txn::TxnType type() const override { return kKvVarPutType; }
  void EncodeInputs(BinaryWriter& w) const override {
    w.Put(key_);
    w.Put(size_);
    w.Put(seed_);
  }
  static std::unique_ptr<txn::Transaction> Decode(BinaryReader& r) {
    const auto key = r.Get<Key>();
    const auto size = r.Get<std::uint32_t>();
    const auto seed = r.Get<std::uint64_t>();
    return std::make_unique<KvVarPutTxn>(key, size, seed);
  }
  static std::vector<std::uint8_t> Pattern(Key key, std::uint32_t size, std::uint64_t seed) {
    std::vector<std::uint8_t> data(size);
    for (std::uint32_t i = 0; i < size; ++i) {
      data[i] = static_cast<std::uint8_t>(key * 13 + seed * 31 + i);
    }
    return data;
  }
  void AppendStep(txn::AppendContext& ctx) override { ctx.DeclareUpdate(0, key_); }
  void Execute(txn::ExecContext& ctx) override {
    const auto data = Pattern(key_, size_, seed_);
    ctx.Write(0, key_, data.data(), size_);
  }

 private:
  Key key_;
  std::uint32_t size_;
  std::uint64_t seed_;
};

inline constexpr txn::TxnType kKvScanSumType = 8;
inline constexpr txn::TxnType kKvXferType = 9;

// Conditional balance transfer between two table-0 rows: reads both, and
// moves `amount` from a to b unless a's balance is short (user abort). Both
// keys are in the declared read set, so the multi-shard router can route it
// cross-shard and serve the reads from the pre-epoch exchange snapshot.
class KvXferTxn final : public txn::Transaction {
 public:
  KvXferTxn(Key a, Key b, std::uint64_t amount) : a_(a), b_(b), amount_(amount) {}
  txn::TxnType type() const override { return kKvXferType; }
  void EncodeInputs(BinaryWriter& w) const override {
    w.Put(a_);
    w.Put(b_);
    w.Put(amount_);
  }
  static std::unique_ptr<txn::Transaction> Decode(BinaryReader& r) {
    const auto a = r.Get<Key>();
    const auto b = r.Get<Key>();
    const auto amount = r.Get<std::uint64_t>();
    return std::make_unique<KvXferTxn>(a, b, amount);
  }
  void AppendStep(txn::AppendContext& ctx) override {
    ctx.DeclareUpdate(0, a_);
    ctx.DeclareUpdate(0, b_);
  }
  void DeclareReadSet(const std::function<void(TableId, Key)>& declare) const override {
    declare(0, a_);
    declare(0, b_);
  }
  void Execute(txn::ExecContext& ctx) override {
    std::uint64_t a_val = 0;
    std::uint64_t b_val = 0;
    ctx.Read(0, a_, &a_val, sizeof(a_val));
    ctx.Read(0, b_, &b_val, sizeof(b_val));
    if (a_val < amount_) {
      ctx.Abort();
      return;
    }
    a_val -= amount_;
    b_val += amount_;
    ctx.Write(0, a_, &a_val, sizeof(a_val));
    ctx.Write(0, b_, &b_val, sizeof(b_val));
  }

 private:
  Key a_;
  Key b_;
  std::uint64_t amount_;
};

// Range scan over [lo, hi] with a row limit, folding an order-sensitive
// digest over every delivered (key, bytes) pair, then writing
// {digest, count} (16 bytes) to out_key. Makes scan results part of the
// committed state, so the crash oracle and cross-engine diffs catch any
// divergence in scan contents, order, or phantom handling.
class KvScanSumTxn final : public txn::Transaction {
 public:
  KvScanSumTxn(Key lo, Key hi, std::uint32_t limit, Key out_key)
      : lo_(lo), hi_(hi), limit_(limit), out_key_(out_key) {}
  txn::TxnType type() const override { return kKvScanSumType; }
  void EncodeInputs(BinaryWriter& w) const override {
    w.Put(lo_);
    w.Put(hi_);
    w.Put(limit_);
    w.Put(out_key_);
  }
  static std::unique_ptr<txn::Transaction> Decode(BinaryReader& r) {
    const auto lo = r.Get<Key>();
    const auto hi = r.Get<Key>();
    const auto limit = r.Get<std::uint32_t>();
    const auto out_key = r.Get<Key>();
    return std::make_unique<KvScanSumTxn>(lo, hi, limit, out_key);
  }
  void AppendStep(txn::AppendContext& ctx) override { ctx.DeclareUpdate(0, out_key_); }
  void Execute(txn::ExecContext& ctx) override {
    std::uint64_t digest = 1469598103934665603ULL;  // FNV-1a offset basis
    const auto mix = [&digest](std::uint64_t v) {
      for (int i = 0; i < 8; ++i) {
        digest ^= (v >> (i * 8)) & 0xFF;
        digest *= 1099511628211ULL;
      }
    };
    std::uint64_t count = 0;
    ctx.Scan(txn::ScanSpec{0, lo_, hi_, limit_},
             [&](Key key, const void* data, std::uint32_t size) {
               mix(key);
               mix(size);
               const auto* bytes = static_cast<const std::uint8_t*>(data);
               for (std::uint32_t i = 0; i < size; ++i) {
                 digest ^= bytes[i];
                 digest *= 1099511628211ULL;
               }
               ++count;
               return true;
             });
    std::uint64_t out[2] = {digest, count};
    ctx.Write(0, out_key_, out, sizeof(out));
  }

 private:
  Key lo_;
  Key hi_;
  std::uint32_t limit_;
  Key out_key_;
};

inline txn::TxnRegistry KvRegistry() {
  txn::TxnRegistry registry;
  registry.Register(kKvPutType, KvPutTxn::Decode);
  registry.Register(kKvRmwType, KvRmwTxn::Decode);
  registry.Register(kKvBigPutType, KvBigPutTxn::Decode);
  registry.Register(kKvInsertType, KvInsertTxn::Decode);
  registry.Register(kKvDeleteType, KvDeleteTxn::Decode);
  registry.Register(kKvAbortType, KvAbortTxn::Decode);
  registry.Register(kKvVarPutType, KvVarPutTxn::Decode);
  registry.Register(kKvScanSumType, KvScanSumTxn::Decode);
  registry.Register(kKvXferType, KvXferTxn::Decode);
  return registry;
}

inline core::DatabaseSpec SmallKvSpec(std::size_t workers = 1, bool ordered = false) {
  core::DatabaseSpec spec;
  spec.workers = workers;
  spec.tables.push_back(core::TableSpec{.name = "kv",
                                        .row_size = 256,
                                        .ordered = ordered,
                                        .capacity_rows = 4096,
                                        .freelist_capacity = 4096});
  spec.value_blocks_per_core = 4096;
  spec.value_freelist_capacity = 8192;
  spec.log_bytes = 1u << 20;
  spec.cache_max_entries = 1 << 14;
  return spec;
}

inline sim::NvmConfig ShadowDeviceConfig(const core::DatabaseSpec& spec) {
  sim::NvmConfig config;
  config.size_bytes = core::Database::RequiredDeviceBytes(spec);
  config.crash_tracking = sim::CrashTracking::kShadow;
  return config;
}

inline std::uint64_t ReadU64(core::Database& db, TableId table, Key key) {
  std::uint64_t value = 0;
  const StatusOr<std::uint32_t> n = db.ReadCommitted(table, key, &value, sizeof(value));
  return n.ok() ? value : ~0ULL;
}

// Full committed row contents (empty vector when absent).
inline std::vector<std::uint8_t> ReadBytes(core::Database& db, TableId table, Key key) {
  std::vector<std::uint8_t> buffer(4096);
  const StatusOr<std::uint32_t> n = db.ReadCommitted(table, key, buffer.data(), buffer.size());
  if (!n.ok()) {
    return {};
  }
  buffer.resize(*n);
  return buffer;
}

}  // namespace nvc::test
