// Persistent row layout: ValueLoc packing, inline-heap placement rules, the
// dual-version invariant, and — crucially — the three intervening-crash
// descriptor states of paper section 4.5, constructed by hand.
#include <gtest/gtest.h>

#include "src/sim/nvm_device.h"
#include "src/vstore/persistent_row.h"

namespace nvc::test {
namespace {

using sim::NvmConfig;
using sim::NvmDevice;
using vstore::kRowHeaderSize;
using vstore::PersistentRow;
using vstore::ValueLoc;
using vstore::VersionDesc;

TEST(ValueLocTest, PacksAndUnpacks) {
  const ValueLoc loc = ValueLoc::Make(true, 4096, 0x123456789aULL);
  EXPECT_TRUE(loc.is_inline());
  EXPECT_EQ(loc.size(), 4096u);
  EXPECT_EQ(loc.offset(), 0x123456789aULL);
  EXPECT_FALSE(loc.is_null());

  const ValueLoc pool = ValueLoc::Make(false, 8, 256);
  EXPECT_FALSE(pool.is_inline());
  EXPECT_EQ(pool.size(), 8u);
  EXPECT_EQ(pool.offset(), 256u);

  EXPECT_TRUE(ValueLoc{}.is_null());
}

class PersistentRowTest : public ::testing::Test {
 protected:
  PersistentRowTest() : device_(NvmConfig{.size_bytes = 1 << 16}) {}

  PersistentRow MakeRow(std::size_t row_size = 256) {
    PersistentRow row(device_, 4096, row_size);
    row.Init(/*table=*/1, /*key=*/42);
    return row;
  }

  NvmDevice device_;
};

TEST_F(PersistentRowTest, InitSetsHeader) {
  PersistentRow row = MakeRow();
  EXPECT_EQ(row.header()->key, 42u);
  EXPECT_EQ(row.header()->table, 1u);
  EXPECT_EQ(row.header()->flags, vstore::kRowValid);
  EXPECT_EQ(row.header()->v[0].sid, 0u);
  EXPECT_EQ(row.header()->v[1].sid, 0u);
  EXPECT_EQ(row.inline_heap_size(), 256u - kRowHeaderSize);
}

TEST_F(PersistentRowTest, TwoHalfHeapSlotsWhenValueFitsHalf) {
  PersistentRow row = MakeRow();  // heap 168, half 84
  const ValueLoc first = row.FindInlineSpace(80);
  ASSERT_FALSE(first.is_null());
  EXPECT_TRUE(first.is_inline());
  EXPECT_EQ(first.offset(), row.inline_heap_offset());

  row.WriteDesc(0, Sid(2, 1), first, 0);
  const ValueLoc second = row.FindInlineSpace(80);
  ASSERT_FALSE(second.is_null());
  EXPECT_EQ(second.offset(), row.inline_heap_offset() + 84);

  row.WriteDesc(1, Sid(3, 1), second, 0);
  // Both slots live: no more inline space.
  EXPECT_TRUE(row.FindInlineSpace(80).is_null());
}

TEST_F(PersistentRowTest, SingleWholeHeapSlotForMediumValues) {
  PersistentRow row = MakeRow();  // heap 168
  const ValueLoc loc = row.FindInlineSpace(120);  // 84 < 120 <= 168
  ASSERT_FALSE(loc.is_null());
  row.WriteDesc(0, Sid(2, 1), loc, 0);
  // The whole heap is claimed: a second medium value cannot fit inline.
  EXPECT_TRUE(row.FindInlineSpace(120).is_null());
  // Nor can a half-size value (it would overlap the live version).
  EXPECT_TRUE(row.FindInlineSpace(80).is_null());
}

TEST_F(PersistentRowTest, OversizedValuesNeverInline) {
  PersistentRow row = MakeRow();
  EXPECT_TRUE(row.FindInlineSpace(169).is_null());
  EXPECT_TRUE(row.FindInlineSpace(1000).is_null());
}

TEST_F(PersistentRowTest, FreedSlotBecomesAvailableAfterDescriptorClears) {
  PersistentRow row = MakeRow();
  const ValueLoc a = row.FindInlineSpace(80);
  row.WriteDesc(0, Sid(2, 1), a, 0);
  const ValueLoc b = row.FindInlineSpace(80);
  row.WriteDesc(1, Sid(3, 1), b, 0);

  // Minor GC: copy v1 -> v0, clear v1. Slot a's space is implicitly freed.
  row.WriteDesc(0, Sid(3, 1), b, 0);
  row.WriteDesc(1, Sid(0), ValueLoc{}, 0);
  const ValueLoc again = row.FindInlineSpace(80);
  ASSERT_FALSE(again.is_null());
  EXPECT_EQ(again.offset(), a.offset());
}

TEST_F(PersistentRowTest, ReadWriteValueRoundTrip) {
  PersistentRow row = MakeRow();
  const ValueLoc loc = row.FindInlineSpace(64);
  std::uint8_t data[64];
  for (int i = 0; i < 64; ++i) {
    data[i] = static_cast<std::uint8_t>(i * 3);
  }
  row.WriteValue(loc, data, 64, 0);
  row.WriteDesc(1, Sid(2, 5), loc, 0);

  std::uint8_t out[64] = {};
  row.ReadValue(row.ReadDesc(1), out, 0);
  EXPECT_EQ(std::memcmp(data, out, 64), 0);
}

TEST_F(PersistentRowTest, LatestSlotAtOrBeforeRespectsBound) {
  PersistentRow row = MakeRow();
  row.WriteDesc(0, Sid(2, 1), ValueLoc::Make(true, 8, row.inline_heap_offset()), 0);
  row.WriteDesc(1, Sid(5, 3), ValueLoc::Make(true, 8, row.inline_heap_offset() + 84), 0);

  // Bound below both: nothing.
  EXPECT_EQ(row.LatestSlotAtOrBefore(Sid(1, 99)), -1);
  // Bound between: only the older version.
  EXPECT_EQ(row.LatestSlotAtOrBefore(Sid(4, 0)), 0);
  // Bound above both: the newer version.
  EXPECT_EQ(row.LatestSlotAtOrBefore(Sid(6, 0)), 1);
}

// ---- Intervening-crash states (paper 4.5) -----------------------------------
//
// The descriptor store order (SID before location, same cache line) means a
// crash can expose these exact states; the recovery scan must repair them.
// We construct them by hand here and assert the disambiguation rules the
// recovery code applies.

TEST_F(PersistentRowTest, Case1_GcCopyInterrupted_SidsEqualLocsDiffer) {
  PersistentRow row = MakeRow();
  const ValueLoc old_loc = ValueLoc::Make(false, 100, 8192);
  const ValueLoc new_loc = ValueLoc::Make(false, 100, 9216);
  // Pre-GC: v0 = (sid 2, old), v1 = (sid 3, new). GC copies v1 to v0:
  // the SID store hit NVMM, the loc store did not.
  row.header()->v[0] = VersionDesc{Sid(3, 7).raw(), old_loc.raw()};
  row.header()->v[1] = VersionDesc{Sid(3, 7).raw(), new_loc.raw()};
  // Detection: equal non-zero SIDs, differing locations -> copy v1.loc.
  ASSERT_EQ(row.header()->v[0].sid, row.header()->v[1].sid);
  ASSERT_NE(row.header()->v[0].loc, row.header()->v[1].loc);
  row.WriteDesc(0, Sid(row.header()->v[0].sid), ValueLoc(row.header()->v[1].loc), 0);
  EXPECT_EQ(row.header()->v[0].loc, new_loc.raw());
}

TEST_F(PersistentRowTest, Case2_GcResetInterrupted_NullSidNonNullLoc) {
  PersistentRow row = MakeRow();
  // GC reset of v1: SID zeroed (persisted), loc not yet.
  row.header()->v[1] = VersionDesc{0, ValueLoc::Make(false, 100, 9216).raw()};
  ASSERT_EQ(row.header()->v[1].sid, 0u);
  ASSERT_NE(row.header()->v[1].loc, 0u);
  row.WriteDesc(1, Sid(0), ValueLoc{}, 0);
  EXPECT_EQ(row.header()->v[1].loc, 0u);
  // A null-SID version is never picked as the latest.
  row.header()->v[0] = VersionDesc{Sid(2, 1).raw(),
                                   ValueLoc::Make(true, 8, row.inline_heap_offset()).raw()};
  EXPECT_EQ(row.LatestSlotAtOrBefore(Sid(9, 0)), 0);
}

TEST_F(PersistentRowTest, Case3_FinalWriteInterrupted_CrashedSidDetectable) {
  PersistentRow row = MakeRow();
  constexpr Epoch kCrashedEpoch = 7;
  row.header()->v[0] = VersionDesc{Sid(5, 2).raw(),
                                   ValueLoc::Make(true, 8, row.inline_heap_offset()).raw()};
  // The final write of the crashed epoch persisted the SID but not the loc.
  row.header()->v[1] = VersionDesc{Sid(kCrashedEpoch, 9).raw(), 0};
  // Replay detects the crashed epoch's SID in v1...
  EXPECT_EQ(Sid(row.header()->v[1].sid).epoch(), kCrashedEpoch);
  // ...and the checkpoint bound (end of epoch 6) still resolves to v0.
  EXPECT_EQ(row.LatestSlotAtOrBefore(Sid(Sid(kCrashedEpoch, 0).raw() - 1)), 0);
}

}  // namespace
}  // namespace nvc::test
