// DRAM version cache: K-epoch LRU eviction lists, access refresh, capacity
// bound, drop semantics (paper sections 4.2 and 5.2).
#include <gtest/gtest.h>

#include <deque>

#include "src/vstore/version_cache.h"

namespace nvc::test {
namespace {

using vstore::RowEntry;
using vstore::VersionCache;

struct CacheFixture {
  CacheFixture(std::size_t max_entries, Epoch k)
      : cache(max_entries, k, /*cores=*/1) {}

  RowEntry* NewRow() {
    rows.emplace_back();
    return &rows.back();
  }

  std::deque<RowEntry> rows;
  VersionCache cache;
};

TEST(VersionCacheTest, PutAndReplace) {
  CacheFixture f(16, 2);
  RowEntry* row = f.NewRow();
  const std::uint64_t v1 = 111;
  ASSERT_TRUE(f.cache.Put(row, &v1, sizeof(v1), /*now=*/5, 0));
  EXPECT_EQ(f.cache.entries(), 1u);
  EXPECT_EQ(f.cache.bytes(), sizeof(v1));
  ASSERT_NE(row->cached.load(), nullptr);
  EXPECT_EQ(*reinterpret_cast<const std::uint64_t*>(row->cached.load()->data()), 111u);

  const std::uint64_t v2 = 222;
  ASSERT_TRUE(f.cache.Put(row, &v2, sizeof(v2), 6, 0));
  EXPECT_EQ(f.cache.entries(), 1u);  // in-place replacement
  EXPECT_EQ(*reinterpret_cast<const std::uint64_t*>(row->cached.load()->data()), 222u);
  EXPECT_EQ(row->cache_epoch.load(), 6u);
}

TEST(VersionCacheTest, ReplacementWithDifferentSizeReallocates) {
  CacheFixture f(16, 2);
  RowEntry* row = f.NewRow();
  const std::uint64_t small = 1;
  ASSERT_TRUE(f.cache.Put(row, &small, sizeof(small), 5, 0));
  std::uint8_t big[100] = {42};
  ASSERT_TRUE(f.cache.Put(row, big, sizeof(big), 5, 0));
  EXPECT_EQ(f.cache.entries(), 1u);
  EXPECT_EQ(f.cache.bytes(), 100u);
  EXPECT_EQ(row->cached.load()->size, 100u);
}

TEST(VersionCacheTest, CapacityBound) {
  CacheFixture f(4, 2);
  const std::uint64_t v = 9;
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(f.cache.Put(f.NewRow(), &v, sizeof(v), 5, 0));
  }
  EXPECT_FALSE(f.cache.Put(f.NewRow(), &v, sizeof(v), 5, 0)) << "cache overfilled";
  EXPECT_EQ(f.cache.entries(), 4u);
}

TEST(VersionCacheTest, EvictsAfterKUntouchedEpochs) {
  CacheFixture f(16, /*k=*/3);
  RowEntry* row = f.NewRow();
  const std::uint64_t v = 7;
  ASSERT_TRUE(f.cache.Put(row, &v, sizeof(v), /*now=*/10, 0));

  // Epochs 11..13: the row is not old enough (created at 10, K=3 keeps it
  // through epoch 13 = 10+3).
  for (Epoch e = 11; e <= 13; ++e) {
    f.cache.EvictForEpoch(e, nullptr);
    EXPECT_NE(row->cached.load(), nullptr) << "evicted too early at epoch " << e;
  }
  // Epoch 14 processes list 14-3-1 = 10: the row was last touched at 10.
  f.cache.EvictForEpoch(14, nullptr);
  EXPECT_EQ(row->cached.load(), nullptr);
  EXPECT_EQ(f.cache.entries(), 0u);
}

TEST(VersionCacheTest, AccessRefreshesLifetime) {
  CacheFixture f(16, 3);
  RowEntry* row = f.NewRow();
  const std::uint64_t v = 7;
  ASSERT_TRUE(f.cache.Put(row, &v, sizeof(v), 10, 0));
  f.cache.Touch(row, 12);  // read at epoch 12

  // Epoch 14 processes the creation-epoch list (10); the access at 12 defers
  // eviction to epoch 16.
  f.cache.EvictForEpoch(14, nullptr);
  EXPECT_NE(row->cached.load(), nullptr);
  f.cache.EvictForEpoch(15, nullptr);
  EXPECT_NE(row->cached.load(), nullptr);
  f.cache.EvictForEpoch(16, nullptr);
  EXPECT_EQ(row->cached.load(), nullptr);
}

TEST(VersionCacheTest, DropReleasesCapacityAndSurvivesStaleListEntries) {
  CacheFixture f(2, 2);
  RowEntry* a = f.NewRow();
  RowEntry* b = f.NewRow();
  const std::uint64_t v = 7;
  ASSERT_TRUE(f.cache.Put(a, &v, sizeof(v), 10, 0));
  ASSERT_TRUE(f.cache.Put(b, &v, sizeof(v), 10, 0));
  f.cache.Drop(a);
  EXPECT_EQ(f.cache.entries(), 1u);
  EXPECT_EQ(a->cached.load(), nullptr);

  // Capacity is available again.
  RowEntry* c = f.NewRow();
  EXPECT_TRUE(f.cache.Put(c, &v, sizeof(v), 10, 0));
  // The stale eviction-list reference to `a` must be skipped safely, and a
  // re-cached `a` later must not be double-freed.
  ASSERT_FALSE(f.cache.Put(a, &v, sizeof(v), 11, 0));  // full now
  f.cache.EvictForEpoch(13, nullptr);                  // processes epoch-10 list
  EXPECT_EQ(f.cache.entries(), 0u);
}

TEST(VersionCacheTest, EvictionCountsStat) {
  CacheFixture f(16, 1);
  EngineStats stats;
  const std::uint64_t v = 7;
  for (int i = 0; i < 5; ++i) {
    f.cache.Put(f.NewRow(), &v, sizeof(v), 10, 0);
  }
  f.cache.EvictForEpoch(12, &stats);
  EXPECT_EQ(stats.cache_evictions.Sum(), 5u);
}

}  // namespace
}  // namespace nvc::test
