// Version arrays: sorted insertion, growth, binary searches, state machine.
#include <gtest/gtest.h>

#include "src/alloc/transient_pool.h"
#include "src/common/rng.h"
#include "src/vstore/version_array.h"

namespace nvc::test {
namespace {

using alloc::TransientPool;
using vstore::kIgnore;
using vstore::kPending;
using vstore::kTombstone;
using vstore::VersionArray;

TEST(VersionArrayTest, CreateHasInitialSlot) {
  TransientPool pool(1);
  VersionArray* array = VersionArray::Create(pool, 0);
  ASSERT_EQ(array->count(), 1u);
  EXPECT_EQ(array->entry(0).sid, 0u);
  EXPECT_EQ(array->entry(0).state.load(), kPending);
}

TEST(VersionArrayTest, AppendsStaySortedRegardlessOfOrder) {
  TransientPool pool(1);
  VersionArray* array = VersionArray::Create(pool, 0);
  const std::uint32_t seqs[] = {5, 2, 9, 1, 7, 3, 8, 4, 6};
  for (std::uint32_t seq : seqs) {
    array->Append(pool, 0, Sid(2, seq));
  }
  ASSERT_EQ(array->count(), 10u);
  for (std::uint32_t i = 1; i < array->count(); ++i) {
    EXPECT_LT(array->entry(i - 1).sid, array->entry(i).sid);
    EXPECT_EQ(array->entry(i).state.load(), kPending);
  }
}

TEST(VersionArrayTest, GrowthPreservesEntries) {
  TransientPool pool(1);
  VersionArray* array = VersionArray::Create(pool, 0);
  for (std::uint32_t seq = 1; seq <= 100; ++seq) {
    array->Append(pool, 0, Sid(2, seq));
    // Mark odd versions so we can detect copy bugs after growth.
    if (seq % 2 == 1) {
      const int slot = array->FindSlot(Sid(2, seq));
      array->entry(static_cast<std::uint32_t>(slot)).state.store(kIgnore);
    }
  }
  ASSERT_EQ(array->count(), 101u);
  for (std::uint32_t seq = 1; seq <= 100; ++seq) {
    const int slot = array->FindSlot(Sid(2, seq));
    ASSERT_GE(slot, 1);
    EXPECT_EQ(array->entry(static_cast<std::uint32_t>(slot)).state.load(),
              seq % 2 == 1 ? kIgnore : kPending);
  }
}

TEST(VersionArrayTest, FindSlotExactOnly) {
  TransientPool pool(1);
  VersionArray* array = VersionArray::Create(pool, 0);
  array->Append(pool, 0, Sid(2, 10));
  array->Append(pool, 0, Sid(2, 20));
  EXPECT_GE(array->FindSlot(Sid(2, 10)), 1);
  EXPECT_GE(array->FindSlot(Sid(2, 20)), 1);
  EXPECT_EQ(array->FindSlot(Sid(2, 15)), -1);
  EXPECT_EQ(array->FindSlot(Sid(3, 10)), -1);
}

TEST(VersionArrayTest, LatestBeforeSemantics) {
  TransientPool pool(1);
  VersionArray* array = VersionArray::Create(pool, 0);
  array->Append(pool, 0, Sid(2, 10));
  array->Append(pool, 0, Sid(2, 20));
  // A reader below every writer sees the initial version (slot 0).
  EXPECT_EQ(array->LatestBefore(Sid(2, 5)), 0);
  // A reader between the writers sees the first writer.
  const int mid = array->LatestBefore(Sid(2, 15));
  EXPECT_EQ(array->entry(static_cast<std::uint32_t>(mid)).sid, Sid(2, 10).raw());
  // Readers never see their own SID.
  const int self = array->LatestBefore(Sid(2, 10));
  EXPECT_EQ(self, 0);
  // A reader above everything sees the last writer.
  const int top = array->LatestBefore(Sid(2, 99));
  EXPECT_EQ(array->entry(static_cast<std::uint32_t>(top)).sid, Sid(2, 20).raw());
}

TEST(VersionArrayTest, IsFinalIdentifiesHighestSid) {
  TransientPool pool(1);
  VersionArray* array = VersionArray::Create(pool, 0);
  array->Append(pool, 0, Sid(2, 10));
  array->Append(pool, 0, Sid(2, 30));
  array->Append(pool, 0, Sid(2, 20));
  EXPECT_FALSE(array->IsFinal(Sid(2, 10)));
  EXPECT_FALSE(array->IsFinal(Sid(2, 20)));
  EXPECT_TRUE(array->IsFinal(Sid(2, 30)));
}

TEST(VersionArrayTest, RandomizedSortedInvariant) {
  TransientPool pool(1);
  Rng rng(99);
  for (int round = 0; round < 20; ++round) {
    VersionArray* array = VersionArray::Create(pool, 0);
    std::set<std::uint32_t> used;
    const int n = 1 + static_cast<int>(rng.NextBounded(200));
    for (int i = 0; i < n; ++i) {
      std::uint32_t seq;
      do {
        seq = static_cast<std::uint32_t>(rng.NextRange(1, 100'000));
      } while (!used.insert(seq).second);
      array->Append(pool, 0, Sid(3, seq));
    }
    ASSERT_EQ(array->count(), used.size() + 1);
    std::uint64_t prev = 0;
    for (std::uint32_t i = 0; i < array->count(); ++i) {
      EXPECT_GE(array->entry(i).sid, prev);
      prev = array->entry(i).sid;
    }
    pool.Reset();
  }
}

}  // namespace
}  // namespace nvc::test
