// DRAM table index: point ops, ordered-range ops, rebuild, concurrency.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/index/table_index.h"

namespace nvc::test {
namespace {

using index::TableIndex;
using index::TableSchema;

TableIndex MakeOrdered() {
  return TableIndex(TableSchema{.id = 3, .name = "t", .row_size = 256, .ordered = true});
}

TEST(TableIndexTest, GetOrCreateAndGet) {
  TableIndex table(TableSchema{.id = 1, .name = "t"});
  bool created = false;
  vstore::RowEntry* entry = table.GetOrCreate(42, &created);
  EXPECT_TRUE(created);
  EXPECT_EQ(entry->key, 42u);
  EXPECT_EQ(entry->table, 1u);

  vstore::RowEntry* again = table.GetOrCreate(42, &created);
  EXPECT_FALSE(created);
  EXPECT_EQ(again, entry);
  EXPECT_EQ(table.Get(42), entry);
  EXPECT_EQ(table.Get(43), nullptr);
  EXPECT_EQ(table.entries(), 1u);
}

TEST(TableIndexTest, RemoveHidesEntry) {
  TableIndex table(TableSchema{.id = 1, .name = "t"});
  bool created = false;
  table.GetOrCreate(1, &created);
  table.GetOrCreate(2, &created);
  table.Remove(1);
  EXPECT_EQ(table.Get(1), nullptr);
  EXPECT_NE(table.Get(2), nullptr);
  EXPECT_EQ(table.entries(), 1u);
  // The key can be re-inserted.
  vstore::RowEntry* entry = table.GetOrCreate(1, &created);
  EXPECT_TRUE(created);
  EXPECT_NE(entry, nullptr);
}

TEST(TableIndexTest, OrderedRangeQueries) {
  TableIndex table = MakeOrdered();
  bool created = false;
  for (Key key : {10, 20, 30, 40, 50}) {
    table.GetOrCreate(key, &created);
  }
  Key found = 0;
  EXPECT_TRUE(table.FirstInRange(15, 45, &found));
  EXPECT_EQ(found, 20u);
  EXPECT_TRUE(table.LastInRange(15, 45, &found));
  EXPECT_EQ(found, 40u);
  EXPECT_TRUE(table.FirstInRange(10, 10, &found));
  EXPECT_EQ(found, 10u);
  EXPECT_FALSE(table.FirstInRange(41, 49, &found));
  EXPECT_FALSE(table.LastInRange(0, 9, &found));

  std::vector<Key> scanned;
  table.ForRange(20, 40, [&](Key key, vstore::RowEntry*) { scanned.push_back(key); });
  EXPECT_EQ(scanned, (std::vector<Key>{20, 30, 40}));
}

TEST(TableIndexTest, OrderedRemove) {
  TableIndex table = MakeOrdered();
  bool created = false;
  for (Key key : {10, 20, 30}) {
    table.GetOrCreate(key, &created);
  }
  table.Remove(20);
  Key found = 0;
  EXPECT_TRUE(table.FirstInRange(15, 35, &found));
  EXPECT_EQ(found, 30u);
}

TEST(TableIndexTest, ClearEmptiesEverything) {
  TableIndex table = MakeOrdered();
  bool created = false;
  for (Key key = 0; key < 100; ++key) {
    table.GetOrCreate(key, &created);
  }
  table.Clear();
  EXPECT_EQ(table.entries(), 0u);
  EXPECT_EQ(table.Get(5), nullptr);
  Key found = 0;
  EXPECT_FALSE(table.FirstInRange(0, 99, &found));
}

TEST(TableIndexTest, ConcurrentGetOrCreateIsSafe) {
  TableIndex table(TableSchema{.id = 1, .name = "t"});
  constexpr int kThreads = 4;
  constexpr int kKeys = 2000;
  std::vector<std::thread> threads;
  std::vector<std::vector<vstore::RowEntry*>> seen(kThreads,
                                                   std::vector<vstore::RowEntry*>(kKeys));
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      bool created = false;
      for (Key key = 0; key < kKeys; ++key) {
        seen[t][key] = table.GetOrCreate(key, &created);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(table.entries(), static_cast<std::size_t>(kKeys));
  for (int t = 1; t < kThreads; ++t) {
    for (Key key = 0; key < kKeys; ++key) {
      EXPECT_EQ(seen[t][key], seen[0][key]) << "divergent entry for key " << key;
    }
  }
}

TEST(TableIndexTest, ApproxBytesGrowsWithEntries) {
  TableIndex table(TableSchema{.id = 1, .name = "t"});
  const std::size_t empty = table.ApproxBytes();
  bool created = false;
  for (Key key = 0; key < 1000; ++key) {
    table.GetOrCreate(key, &created);
  }
  EXPECT_GT(table.ApproxBytes(), empty + 1000 * sizeof(vstore::RowEntry));
}

}  // namespace
}  // namespace nvc::test
