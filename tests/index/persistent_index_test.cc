// Persistent NVMM index: probe/apply mechanics, epoch-tagged crash rules,
// idempotent re-application, and end-to-end fast recovery equivalence.
#include <gtest/gtest.h>

#include <map>

#include "src/index/persistent_index.h"
#include "tests/test_util.h"

namespace nvc::test {
namespace {

using core::CrashSite;
using core::Database;
using core::DatabaseSpec;
using index::PersistentIndex;
using sim::NvmDevice;

struct IndexFixture {
  explicit IndexFixture(std::uint64_t max_rows = 256)
      : device(sim::NvmConfig{.size_bytes = PersistentIndex::RequiredBytes(max_rows),
                              .latency = {},
                              .crash_tracking = sim::CrashTracking::kShadow}),
        pindex(device, 0, max_rows) {
    pindex.Format();
  }

  std::map<Key, std::uint64_t> Live(Epoch last_checkpointed) {
    std::map<Key, std::uint64_t> live;
    pindex.ForEachLive(last_checkpointed, [&](Key key, std::uint64_t prow) {
      EXPECT_TRUE(live.emplace(key, prow).second) << "duplicate key " << key;
    }, 0);
    return live;
  }

  NvmDevice device;
  PersistentIndex pindex;
};

TEST(PersistentIndexTest, InsertAndIterate) {
  IndexFixture f;
  for (Key key = 0; key < 100; ++key) {
    f.pindex.ApplyInsert(key, 4096 + key * 256, /*epoch=*/2, 0);
  }
  const auto live = f.Live(/*last_checkpointed=*/2);
  ASSERT_EQ(live.size(), 100u);
  EXPECT_EQ(live.at(42), 4096u + 42 * 256);
  EXPECT_EQ(f.pindex.live_slots(), 100u);
}

TEST(PersistentIndexTest, DeleteHidesAndReinsertRevives) {
  IndexFixture f;
  f.pindex.ApplyInsert(7, 1000, 2, 0);
  f.pindex.ApplyDelete(7, 3, 0);
  EXPECT_EQ(f.Live(3).count(7), 0u);
  // Re-insert in a later epoch reuses the key's slot.
  f.pindex.ApplyInsert(7, 2000, 4, 0);
  const auto live = f.Live(4);
  ASSERT_EQ(live.count(7), 1u);
  EXPECT_EQ(live.at(7), 2000u);
}

TEST(PersistentIndexTest, CrashedEpochInsertIsIgnored) {
  IndexFixture f;
  f.pindex.ApplyInsert(1, 1000, 2, 0);
  f.pindex.ApplyInsert(2, 2000, 3, 0);  // crashed epoch 3 delta (partially applied)
  // Recovery to epoch 2: key 2's insert is invisible.
  const auto live = f.Live(2);
  EXPECT_EQ(live.size(), 1u);
  EXPECT_TRUE(live.count(1));
}

TEST(PersistentIndexTest, CrashedEpochDeleteIsResurrected) {
  IndexFixture f;
  f.pindex.ApplyInsert(1, 1000, 2, 0);
  f.pindex.ApplyDelete(1, 3, 0);  // crashed epoch 3
  const auto live = f.Live(2);
  ASSERT_EQ(live.count(1), 1u);
  EXPECT_EQ(live.at(1), 1000u);
}

TEST(PersistentIndexTest, ReapplicationIsIdempotent) {
  IndexFixture f;
  f.pindex.ApplyInsert(1, 1000, 2, 0);
  f.pindex.ApplyInsert(1, 1000, 2, 0);
  f.pindex.ApplyDelete(9, 2, 0);  // delete of unknown key: no-op
  EXPECT_EQ(f.Live(2).size(), 1u);
  EXPECT_EQ(f.pindex.live_slots(), 1u);
}

TEST(PersistentIndexTest, CollidingKeysProbeLinearly) {
  IndexFixture f(16);  // tiny table: plenty of collisions
  for (Key key = 0; key < 16; ++key) {
    f.pindex.ApplyInsert(key * 1000, key, 2, 0);
  }
  const auto live = f.Live(2);
  ASSERT_EQ(live.size(), 16u);
  for (Key key = 0; key < 16; ++key) {
    EXPECT_EQ(live.at(key * 1000), key);
  }
}

TEST(PersistentIndexTest, UnfencedApplicationRevertsOnCrash) {
  IndexFixture f;
  f.pindex.ApplyInsert(1, 1000, 2, 0);
  f.device.Fence(0);
  f.pindex.ApplyInsert(2, 2000, 3, 0);  // persisted but never fenced
  f.device.Crash();
  const auto live = f.Live(3);
  EXPECT_EQ(live.size(), 1u);
  EXPECT_TRUE(live.count(1));
}

// ---- End-to-end: engine fast recovery --------------------------------------

DatabaseSpec PindexSpec() {
  DatabaseSpec spec = SmallKvSpec();
  spec.enable_persistent_index = true;
  return spec;
}

TEST(PersistentIndexTest, FastRecoveryMatchesScanRecovery) {
  auto run = [&](bool enable_pindex) {
    DatabaseSpec spec = SmallKvSpec();
    spec.enable_persistent_index = enable_pindex;
    NvmDevice device(ShadowDeviceConfig(spec));
    std::vector<std::vector<std::uint8_t>> state;
    bool used_fast = false;
    {
      Database db(device, spec);
      db.Format();
      for (Key key = 0; key < 64; ++key) {
        const std::uint64_t value = 100 + key;
        db.BulkLoad(0, key, &value, sizeof(value));
      }
      db.FinalizeLoad();
      Rng rng(31337);
      for (int e = 0; e < 3; ++e) {
        std::vector<std::unique_ptr<txn::Transaction>> txns;
        for (int i = 0; i < 80; ++i) {
          const Key key = rng.NextBounded(16);
          if (rng.NextPercent(60)) {
            txns.push_back(std::make_unique<KvRmwTxn>(key, rng.NextBounded(40)));
          } else {
            txns.push_back(std::make_unique<KvBigPutTxn>(16 + key, rng.Next()));
          }
        }
        db.ExecuteEpoch(std::move(txns));
      }
      int count = 0;
      db.SetCrashHook([&count](CrashSite site) {
        return site == CrashSite::kMidExecution && ++count > 40;
      });
      std::vector<std::unique_ptr<txn::Transaction>> txns;
      Rng crash_rng(777);
      for (int i = 0; i < 80; ++i) {
        txns.push_back(std::make_unique<KvRmwTxn>(crash_rng.NextBounded(16),
                                                  crash_rng.NextBounded(40)));
      }
      if (!db.ExecuteEpoch(std::move(txns)).crashed) {
        ADD_FAILURE() << "crash hook did not fire";
      }
    }
    device.CrashChaos(13, 0.5);
    Database recovered(device, spec);
    const auto report = recovered.Recover(KvRegistry()).value();
    used_fast = report.used_persistent_index;
    EXPECT_TRUE(report.replayed);
    for (Key key = 0; key < 64; ++key) {
      state.push_back(ReadBytes(recovered, 0, key));
    }
    // Post-recovery epochs keep working (lazy latest_sid path).
    std::vector<std::unique_ptr<txn::Transaction>> txns;
    for (Key key = 0; key < 64; ++key) {
      txns.push_back(std::make_unique<KvRmwTxn>(key, 5));
    }
    recovered.ExecuteEpoch(std::move(txns));
    for (Key key = 0; key < 64; ++key) {
      state.push_back(ReadBytes(recovered, 0, key));
    }
    return std::make_pair(state, used_fast);
  };

  const auto [scan_state, scan_fast] = run(false);
  const auto [fast_state, fast_fast] = run(true);
  EXPECT_FALSE(scan_fast);
  EXPECT_TRUE(fast_fast);
  EXPECT_EQ(fast_state, scan_state);
}

// The fast path is gated to fully deterministic workloads: with
// kRevertAndReplay (TPC-C's counters) recovery must fall back to the scan,
// which also performs the version reverts.
TEST(PersistentIndexTest, RevertPolicyFallsBackToScan) {
  DatabaseSpec spec = PindexSpec();
  spec.recovery = core::RecoveryPolicy::kRevertAndReplay;
  NvmDevice device(ShadowDeviceConfig(spec));
  {
    Database db(device, spec);
    db.Format();
    for (Key key = 0; key < 16; ++key) {
      const std::uint64_t value = key;
      db.BulkLoad(0, key, &value, sizeof(value));
    }
    db.FinalizeLoad();
    std::vector<std::unique_ptr<txn::Transaction>> txns;
    for (Key key = 0; key < 16; ++key) {
      txns.push_back(std::make_unique<KvPutTxn>(key, 300 + key));
    }
    db.ExecuteEpoch(std::move(txns));
    db.SetCrashHook(
        [](CrashSite site) { return site == CrashSite::kBeforeEpochPersist; });
    std::vector<std::unique_ptr<txn::Transaction>> txns2;
    txns2.push_back(std::make_unique<KvPutTxn>(3, 999));
    bool crashed = db.ExecuteEpoch(std::move(txns2)).crashed;
    if (!crashed) {
      crashed = !db.WaitIdle().ok();  // tail-thread site under pipelining
    }
    ASSERT_TRUE(crashed);
  }
  device.CrashChaos(12, 0.8);

  Database recovered(device, spec);
  const auto report = recovered.Recover(KvRegistry()).value();
  EXPECT_FALSE(report.used_persistent_index);
  EXPECT_EQ(report.rows_scanned, 16u);  // the scan ran
  ASSERT_TRUE(report.replayed);
  EXPECT_EQ(ReadU64(recovered, 0, 3), 999u);
  EXPECT_EQ(ReadU64(recovered, 0, 5), 305u);
}

TEST(PersistentIndexTest, FastRecoveryHandlesDeletesAndInserts) {
  // Uses the engine-level insert/delete txns from engine_semantics_test via
  // raw KV types here: insert new keys, delete some, crash, fast-recover.
  DatabaseSpec spec = PindexSpec();
  NvmDevice device(ShadowDeviceConfig(spec));
  {
    Database db(device, spec);
    db.Format();
    for (Key key = 0; key < 32; ++key) {
      const std::uint64_t value = key;
      db.BulkLoad(0, key, &value, sizeof(value));
    }
    db.FinalizeLoad();
    // Committed epoch: update some rows.
    std::vector<std::unique_ptr<txn::Transaction>> txns;
    for (Key key = 0; key < 8; ++key) {
      txns.push_back(std::make_unique<KvPutTxn>(key, 900 + key));
    }
    db.ExecuteEpoch(std::move(txns));
    // Crashed epoch (whole epoch executes; checkpoint is interrupted).
    db.SetCrashHook(
        [](CrashSite site) { return site == CrashSite::kBeforeEpochPersist; });
    std::vector<std::unique_ptr<txn::Transaction>> txns2;
    for (Key key = 8; key < 16; ++key) {
      txns2.push_back(std::make_unique<KvPutTxn>(key, 800 + key));
    }
    bool crashed = db.ExecuteEpoch(std::move(txns2)).crashed;
    if (!crashed) {
      crashed = !db.WaitIdle().ok();  // tail-thread site under pipelining
    }
    ASSERT_TRUE(crashed);
  }
  device.CrashChaos(3, 0.6);
  Database recovered(device, spec);
  const auto report = recovered.Recover(KvRegistry()).value();
  EXPECT_TRUE(report.used_persistent_index);
  ASSERT_TRUE(report.replayed);
  for (Key key = 0; key < 8; ++key) {
    EXPECT_EQ(ReadU64(recovered, 0, key), 900 + key);
  }
  for (Key key = 8; key < 16; ++key) {
    EXPECT_EQ(ReadU64(recovered, 0, key), 800 + key);
  }
  for (Key key = 16; key < 32; ++key) {
    EXPECT_EQ(ReadU64(recovered, 0, key), key);
  }
}

}  // namespace
}  // namespace nvc::test
