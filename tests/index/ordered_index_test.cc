// Deterministic ordered secondary index: model-checked against std::map,
// structure independence from insertion order, and scans racing the epoch
// pipeline (the TSan shard runs this file under -fsanitize=thread).
#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <map>
#include <memory>
#include <random>
#include <vector>

#include "src/core/database.h"
#include "src/core/oracle.h"
#include "src/index/ordered_index.h"
#include "tests/test_util.h"

namespace nvc::test {
namespace {

using index::OrderedIndex;

// Backing entries for the pure index tests; the index stores pointers and
// never dereferences them, but real objects keep sanitizers honest.
class ModelFixture {
 public:
  vstore::RowEntry* EntryFor(Key key) {
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      storage_.emplace_back();
      storage_.back().key = key;
      it = entries_.emplace(key, &storage_.back()).first;
    }
    return it->second;
  }

 private:
  std::deque<vstore::RowEntry> storage_;
  std::map<Key, vstore::RowEntry*> entries_;
};

std::vector<std::pair<Key, vstore::RowEntry*>> Collect(const OrderedIndex& index, Key lo,
                                                       Key hi) {
  std::vector<std::pair<Key, vstore::RowEntry*>> out;
  index.ForRangeWhile(lo, hi, [&](Key key, vstore::RowEntry* entry) {
    out.emplace_back(key, entry);
    return true;
  });
  return out;
}

TEST(OrderedIndexTest, ModelCheckAgainstStdMap) {
  // Random insert/erase/find/range ops mirrored into a std::map; every
  // divergence in contents, order, or range answers is a bug.
  OrderedIndex index(/*table=*/0);
  std::map<Key, vstore::RowEntry*> model;
  ModelFixture fixture;
  Rng rng(0xfeedULL);
  constexpr Key kKeySpace = 512;

  for (int step = 0; step < 20'000; ++step) {
    const Key key = rng.NextBounded(kKeySpace);
    switch (rng.NextBounded(4)) {
      case 0:
      case 1: {  // insert
        vstore::RowEntry* entry = fixture.EntryFor(key);
        const bool inserted = index.Insert(key, entry);
        EXPECT_EQ(inserted, model.emplace(key, entry).second);
        break;
      }
      case 2: {  // erase
        EXPECT_EQ(index.Erase(key), model.erase(key) == 1);
        break;
      }
      default: {  // point + range queries
        auto it = model.find(key);
        EXPECT_EQ(index.Find(key), it == model.end() ? nullptr : it->second);
        const Key lo = rng.NextBounded(kKeySpace);
        const Key hi = lo + rng.NextBounded(64);
        Key found = 0;
        auto first = model.lower_bound(lo);
        const bool has_first = first != model.end() && first->first <= hi;
        EXPECT_EQ(index.FirstInRange(lo, hi, &found), has_first);
        if (has_first) {
          EXPECT_EQ(found, first->first);
        }
        auto last = model.upper_bound(hi);
        const bool has_last = last != model.begin() && std::prev(last)->first >= lo;
        EXPECT_EQ(index.LastInRange(lo, hi, &found), has_last);
        if (has_last) {
          EXPECT_EQ(found, std::prev(last)->first);
        }
        break;
      }
    }
    if (step % 1000 == 999) {
      // Full sweep: identical contents in identical order.
      const auto scanned = Collect(index, 0, ~Key{0});
      ASSERT_EQ(scanned.size(), model.size());
      std::size_t i = 0;
      for (const auto& [k, v] : model) {
        EXPECT_EQ(scanned[i].first, k);
        EXPECT_EQ(scanned[i].second, v);
        ++i;
      }
      EXPECT_EQ(index.size(), model.size());
    }
  }
}

TEST(OrderedIndexTest, StructureIndependentOfInsertionOrder) {
  // Tower heights are a pure function of (table, key), so any insertion
  // order — and any insert/erase/re-insert history — must converge to the
  // same physical skiplist for the same final key set.
  ModelFixture fixture;
  std::vector<Key> keys;
  for (Key key = 0; key < 1000; ++key) {
    keys.push_back(key * 7 + 3);
  }

  OrderedIndex ascending(/*table=*/5);
  for (Key key : keys) {
    ascending.Insert(key, fixture.EntryFor(key));
  }

  OrderedIndex shuffled(/*table=*/5);
  std::vector<Key> order = keys;
  std::mt19937_64 mt(99);
  std::shuffle(order.begin(), order.end(), mt);
  for (Key key : order) {
    shuffled.Insert(key, fixture.EntryFor(key));
  }

  OrderedIndex churned(/*table=*/5);
  for (Key key : order) {
    churned.Insert(key, fixture.EntryFor(key));
  }
  for (Key key : keys) {
    if (key % 3 == 0) {
      churned.Erase(key);
    }
  }
  for (Key key : keys) {
    if (key % 3 == 0) {
      churned.Insert(key, fixture.EntryFor(key));
    }
  }

  EXPECT_EQ(ascending.StructureHash(), shuffled.StructureHash());
  EXPECT_EQ(ascending.StructureHash(), churned.StructureHash());

  // A different table id must yield a different tower layout (the hash mixes
  // heights, which derive from the table salt).
  OrderedIndex other_table(/*table=*/6);
  for (Key key : keys) {
    other_table.Insert(key, fixture.EntryFor(key));
  }
  EXPECT_NE(ascending.StructureHash(), other_table.StructureHash());
}

TEST(OrderedIndexTest, TowerHeightsDeterministicAndBounded) {
  std::size_t tall = 0;
  for (Key key = 0; key < 100'000; ++key) {
    const int h = OrderedIndex::TowerHeight(/*table=*/0, key);
    ASSERT_GE(h, 1);
    ASSERT_LE(h, OrderedIndex::kMaxHeight);
    EXPECT_EQ(h, OrderedIndex::TowerHeight(0, key));  // pure function
    if (h > 1) {
      ++tall;
    }
  }
  // Geometric with p = 1/4: ~25% of towers exceed height 1.
  EXPECT_GT(tall, 20'000u);
  EXPECT_LT(tall, 30'000u);
}

TEST(OrderedIndexTest, ForRangeWhileEarlyStop) {
  OrderedIndex index(/*table=*/0);
  ModelFixture fixture;
  for (Key key = 0; key < 100; key += 10) {
    index.Insert(key, fixture.EntryFor(key));
  }
  std::vector<Key> seen;
  const bool completed = index.ForRangeWhile(5, 95, [&](Key key, vstore::RowEntry*) {
    seen.push_back(key);
    return seen.size() < 3;
  });
  EXPECT_FALSE(completed);
  EXPECT_EQ(seen, (std::vector<Key>{10, 20, 30}));
  EXPECT_TRUE(index.ForRangeWhile(200, 300, [&](Key, vstore::RowEntry*) { return false; }));
}

TEST(OrderedIndexTest, ClearAndAccounting) {
  OrderedIndex index(/*table=*/0);
  ModelFixture fixture;
  EXPECT_TRUE(index.empty());
  const std::size_t empty_bytes = index.ApproxBytes();
  for (Key key = 0; key < 256; ++key) {
    index.Insert(key, fixture.EntryFor(key));
  }
  EXPECT_EQ(index.size(), 256u);
  EXPECT_GT(index.ApproxBytes(), empty_bytes);
  index.Clear();
  EXPECT_TRUE(index.empty());
  EXPECT_EQ(Collect(index, 0, ~Key{0}).size(), 0u);
  // Reusable after Clear.
  index.Insert(7, fixture.EntryFor(7));
  EXPECT_NE(index.Find(7), nullptr);
}

// ---- Scans racing the epoch pipeline ---------------------------------------
//
// Multi-worker transactions scan the ordered index while sibling workers
// execute writes, and the submitting thread issues Database::RangeScan
// between ExecuteEpoch calls while the previous epoch's persistence tail is
// still in flight on the tail thread. Under TSan this is the proof that the
// collect-keys-under-latch / read-latch-free scan protocol and the pipelined
// tail share no unsynchronized state.
TEST(OrderedIndexTest, ScansRaceTheEpochPipeline) {
  core::DatabaseSpec spec = SmallKvSpec(/*workers=*/4, /*ordered=*/true);
  ASSERT_TRUE(spec.enable_epoch_pipeline);
  sim::NvmDevice device(ShadowDeviceConfig(spec));
  core::Database db(device, spec);
  db.Format();
  for (Key key = 0; key < 200; ++key) {
    const std::uint64_t value = 1000 + key;
    db.BulkLoad(0, key, &value, sizeof(value));
  }
  db.FinalizeLoad();

  Rng rng(2024);
  for (int epoch = 0; epoch < 12; ++epoch) {
    std::vector<std::unique_ptr<txn::Transaction>> txns;
    for (int i = 0; i < 96; ++i) {
      switch (rng.NextBounded(3)) {
        case 0:
          txns.push_back(std::make_unique<KvPutTxn>(rng.NextBounded(200), rng.Next()));
          break;
        case 1:
          txns.push_back(std::make_unique<KvRmwTxn>(rng.NextBounded(200), rng.NextBounded(50)));
          break;
        default: {
          const Key lo = rng.NextBounded(200);
          txns.push_back(std::make_unique<KvScanSumTxn>(lo, lo + 1 + rng.NextBounded(40),
                                                        1 + rng.NextBounded(16),
                                                        rng.NextBounded(200)));
          break;
        }
      }
    }
    const core::EpochResult result = db.ExecuteEpoch(std::move(txns));
    EXPECT_FALSE(result.crashed);
    // The pipelined tail of this epoch may still be persisting: RangeScan
    // against the committed state must be safe concurrently with it (the
    // tail never mutates the DRAM index; structural changes happen in the
    // next epoch's insert/GC phases, which have not started yet).
    const StatusOr<std::vector<core::Database::ScanRow>> rows =
        db.RangeScan(0, 0, 199, 64);
    ASSERT_TRUE(rows.ok());
    EXPECT_GT(rows->size(), 0u);
    for (std::size_t i = 1; i < rows->size(); ++i) {
      EXPECT_LT((*rows)[i - 1].key, (*rows)[i].key);
    }
  }
  ASSERT_TRUE(db.WaitIdle().ok());
  std::string diff;
  EXPECT_EQ(core::ValidateOrderedIndex(db, &diff), 0u) << diff;
}

}  // namespace
}  // namespace nvc::test
