// Common utilities: SIDs, RNG determinism, sharded counters, worker pool,
// serializer, latency recorder.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/common/hash.h"
#include "src/common/latch.h"
#include "src/common/rng.h"
#include "src/common/serializer.h"
#include "src/common/stats.h"
#include "src/common/types.h"
#include "src/common/worker_pool.h"

namespace nvc::test {
namespace {

TEST(SidTest, PackingAndOrdering) {
  const Sid a(3, 100);
  EXPECT_EQ(a.epoch(), 3u);
  EXPECT_EQ(a.seq(), 100u);
  EXPECT_LT(Sid(3, 99), a);
  EXPECT_LT(a, Sid(3, 101));
  EXPECT_LT(Sid(3, 0xFFFFFFFF), Sid(4, 0));  // later epochs always greater
  EXPECT_TRUE(Sid().is_null());
  EXPECT_FALSE(a.is_null());
}

TEST(TypesTest, AlignUp) {
  EXPECT_EQ(AlignUp(0, 64), 0u);
  EXPECT_EQ(AlignUp(1, 64), 64u);
  EXPECT_EQ(AlignUp(64, 64), 64u);
  EXPECT_EQ(AlignUp(65, 256), 256u);
}

TEST(RngTest, DeterministicFromSeed) {
  Rng a(77);
  Rng b(77);
  Rng c(78);
  bool any_diff = false;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    if (va != c.Next()) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, BoundsRespected) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
    const std::uint64_t r = rng.NextRange(5, 9);
    EXPECT_GE(r, 5u);
    EXPECT_LE(r, 9u);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, PercentIsRoughlyCalibrated) {
  Rng rng(6);
  int hits = 0;
  for (int i = 0; i < 10'000; ++i) {
    hits += rng.NextPercent(10) ? 1 : 0;
  }
  EXPECT_GT(hits, 800);
  EXPECT_LT(hits, 1200);
}

TEST(HashTest, KeysSpread) {
  // Adjacent keys must land in different shards with high probability.
  int same = 0;
  for (Key key = 0; key < 1000; ++key) {
    if (HashKey(0, key) % 16 == HashKey(0, key + 1) % 16) {
      ++same;
    }
  }
  EXPECT_LT(same, 200);
}

TEST(HashTest, Fnv1aDetectsChanges) {
  const char a[] = "hello world";
  char b[] = "hello worle";
  EXPECT_NE(Fnv1a(a, sizeof(a) - 1), Fnv1a(b, sizeof(b) - 1));
  EXPECT_EQ(Fnv1a(a, sizeof(a) - 1), Fnv1a(a, sizeof(a) - 1));
}

TEST(ShardedCounterTest, SumsAcrossCores) {
  ShardedCounter counter;
  counter.Add(0, 5);
  counter.Add(1, 7);
  counter.Add(63, 1);
  EXPECT_EQ(counter.Sum(), 13u);
  counter.Reset();
  EXPECT_EQ(counter.Sum(), 0u);
}

TEST(SpinLatchTest, MutualExclusion) {
  SpinLatch latch;
  int counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10'000; ++i) {
        SpinLatchGuard guard(latch);
        ++counter;
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter, 40'000);
}

TEST(SpinLatchTest, TryLock) {
  SpinLatch latch;
  EXPECT_TRUE(latch.TryLock());
  EXPECT_FALSE(latch.TryLock());
  latch.Unlock();
  EXPECT_TRUE(latch.TryLock());
  latch.Unlock();
}

TEST(WorkerPoolTest, AllWorkersRun) {
  WorkerPool pool(4);
  std::atomic<int> ran{0};
  std::atomic<int> mask{0};
  pool.RunParallel([&](std::size_t w) {
    ran.fetch_add(1);
    mask.fetch_or(1 << w);
  });
  EXPECT_EQ(ran.load(), 4);
  EXPECT_EQ(mask.load(), 0b1111);
}

TEST(WorkerPoolTest, ReusableAcrossRounds) {
  WorkerPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.RunParallel([&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 150);
}

TEST(WorkerPoolTest, SingleWorkerRunsInline) {
  WorkerPool pool(1);
  const auto caller = std::this_thread::get_id();
  std::thread::id executed;
  pool.RunParallel([&](std::size_t) { executed = std::this_thread::get_id(); });
  EXPECT_EQ(executed, caller);
}

TEST(SplitRangeTest, CoversExactlyOnce) {
  for (std::size_t total : {0u, 1u, 7u, 100u, 101u}) {
    for (std::size_t workers : {1u, 3u, 8u}) {
      std::size_t covered = 0;
      std::size_t last_end = 0;
      for (std::size_t w = 0; w < workers; ++w) {
        const Range range = SplitRange(total, workers, w);
        EXPECT_EQ(range.begin, last_end);
        covered += range.end - range.begin;
        last_end = range.end;
      }
      EXPECT_EQ(covered, total);
      EXPECT_EQ(last_end, total);
    }
  }
}

TEST(SerializerTest, RoundTrip) {
  std::vector<std::uint8_t> buffer;
  BinaryWriter writer(buffer);
  writer.Put<std::uint32_t>(7);
  writer.Put<std::uint64_t>(0xdeadbeefcafef00dULL);
  writer.Put<double>(3.25);
  const char bytes[] = {1, 2, 3};
  writer.PutBytes(bytes, 3);

  BinaryReader reader(buffer.data(), buffer.size());
  EXPECT_EQ(reader.Get<std::uint32_t>(), 7u);
  EXPECT_EQ(reader.Get<std::uint64_t>(), 0xdeadbeefcafef00dULL);
  EXPECT_EQ(reader.Get<double>(), 3.25);
  char out[3];
  reader.GetBytes(out, 3);
  EXPECT_EQ(out[2], 3);
  EXPECT_TRUE(reader.exhausted());
}

TEST(LatencyRecorderTest, Percentiles) {
  LatencyRecorder recorder;
  for (int i = 1; i <= 100; ++i) {
    recorder.Record(i);
  }
  EXPECT_DOUBLE_EQ(recorder.Mean(), 50.5);
  EXPECT_NEAR(recorder.Percentile(50), 50.5, 0.01);
  EXPECT_NEAR(recorder.Percentile(99), 99.01, 0.02);
  EXPECT_DOUBLE_EQ(recorder.Max(), 100.0);
}

TEST(LatencyRecorderTest, EmptyReturnsZero) {
  LatencyRecorder recorder;
  EXPECT_TRUE(recorder.empty());
  EXPECT_EQ(recorder.count(), 0u);
  EXPECT_DOUBLE_EQ(recorder.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(recorder.Percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(recorder.Percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(recorder.Percentile(100), 0.0);
  EXPECT_DOUBLE_EQ(recorder.Max(), 0.0);
}

TEST(LatencyRecorderTest, SingleSampleEveryPercentile) {
  LatencyRecorder recorder;
  recorder.Record(42.5);
  EXPECT_DOUBLE_EQ(recorder.Mean(), 42.5);
  EXPECT_DOUBLE_EQ(recorder.Percentile(0), 42.5);
  EXPECT_DOUBLE_EQ(recorder.Percentile(50), 42.5);
  EXPECT_DOUBLE_EQ(recorder.Percentile(100), 42.5);
  EXPECT_DOUBLE_EQ(recorder.Max(), 42.5);
}

TEST(LatencyRecorderTest, InterpolatesBetweenSamples) {
  // Linear interpolation on rank (p/100)*(n-1): for {10,20,30,40},
  // p50 lands halfway between the 2nd and 3rd sorted samples.
  LatencyRecorder recorder;
  for (double sample : {40.0, 10.0, 30.0, 20.0}) {  // unsorted on purpose
    recorder.Record(sample);
  }
  EXPECT_DOUBLE_EQ(recorder.Percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(recorder.Percentile(50), 25.0);
  EXPECT_NEAR(recorder.Percentile(75), 32.5, 1e-9);
  EXPECT_DOUBLE_EQ(recorder.Percentile(100), 40.0);
  EXPECT_DOUBLE_EQ(recorder.Max(), 40.0);
  recorder.Clear();
  EXPECT_TRUE(recorder.empty());
  EXPECT_DOUBLE_EQ(recorder.Percentile(50), 0.0);
}

TEST(ShardedCounterTest, ConcurrentAddsSumExactly) {
  constexpr int kThreads = 8;
  constexpr std::uint64_t kIncrementsPerThread = 50'000;
  ShardedCounter counter;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter, t] {
      for (std::uint64_t i = 0; i < kIncrementsPerThread; ++i) {
        // Mix of same-shard and cross-shard adds, including ids beyond
        // kMaxCores (which must wrap, not corrupt).
        counter.Add(static_cast<std::size_t>(t) + (i % 3) * kMaxCores);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter.Sum(), kThreads * kIncrementsPerThread);
}

TEST(ShardedCounterTest, ResetWhileAddingLosesNothingAfterJoin) {
  // Reset() racing Add() is allowed (benches reset between runs while the
  // pool is idle; this stress documents that the race is at worst lossy for
  // in-flight adds, never corrupting). After all writers join, a final
  // Reset + quiesced Add must be exact.
  ShardedCounter counter;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&counter, &stop, t] {
      while (!stop.load(std::memory_order_relaxed)) {
        counter.Add(static_cast<std::size_t>(t));
      }
    });
  }
  for (int i = 0; i < 100; ++i) {
    counter.Reset();
    (void)counter.Sum();
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& writer : writers) {
    writer.join();
  }
  counter.Reset();
  EXPECT_EQ(counter.Sum(), 0u);
  counter.Add(3, 11);
  EXPECT_EQ(counter.Sum(), 11u);
}

}  // namespace
}  // namespace nvc::test
