// nvc::Status / StatusOr semantics, DatabaseSpec::Validate, and the
// bounds-checked Database accessors — the Status-API satellite surface.
#include <gtest/gtest.h>

#include <stdexcept>

#include "src/common/status.h"
#include "tests/test_util.h"

namespace nvc::test {
namespace {

using core::Database;
using core::DatabaseSpec;
using sim::NvmDevice;

TEST(StatusTest, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  const Status s = Status::NotFound("row 7");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "row 7");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: row 7");
  EXPECT_EQ(s, Status::NotFound("row 7"));
  EXPECT_FALSE(s == Status::NotFound("row 8"));
}

TEST(StatusOrTest, HoldsValueOrStatus) {
  StatusOr<int> ok = 42;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  EXPECT_EQ(ok.value_or(-1), 42);

  StatusOr<int> err = Status::OutOfRange("id 99");
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(err.value_or(-1), -1);
  EXPECT_THROW(err.value(), BadStatus);
  try {
    err.value();
  } catch (const BadStatus& bad) {
    EXPECT_EQ(bad.status().code(), StatusCode::kOutOfRange);
  }
}

TEST(StatusOrTest, CopiesAndMoves) {
  StatusOr<std::string> a = std::string("payload");
  StatusOr<std::string> b = a;            // copy
  StatusOr<std::string> c = std::move(a); // move
  EXPECT_EQ(*b, "payload");
  EXPECT_EQ(*c, "payload");
  b = Status::Internal("gone");
  EXPECT_FALSE(b.ok());
  b = c;
  EXPECT_EQ(*b, "payload");
}

TEST(ValidateTest, AcceptsTheStockSpec) {
  EXPECT_TRUE(SmallKvSpec().Validate().ok());
  EXPECT_TRUE(SmallKvSpec(4).Validate().ok());
}

TEST(ValidateTest, RejectsBadWorkerCounts) {
  DatabaseSpec spec = SmallKvSpec();
  spec.workers = 0;
  EXPECT_EQ(spec.Validate().code(), StatusCode::kInvalidArgument);
  spec.workers = kMaxCores + 1;
  EXPECT_EQ(spec.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(ValidateTest, RejectsUndersizedRows) {
  DatabaseSpec spec = SmallKvSpec();
  spec.tables[0].row_size = 8;  // smaller than the row header
  const Status s = spec.Validate();
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("row_size"), std::string::npos);
}

TEST(ValidateTest, RejectsColdTierWithoutCache) {
  DatabaseSpec spec = SmallKvSpec();
  spec.enable_cold_tier = true;
  spec.cold_block_size = 4096;
  spec.cold_blocks_per_core = 64;
  spec.cold_freelist_capacity = 64;
  spec.enable_cache = false;
  EXPECT_EQ(spec.Validate().code(), StatusCode::kInvalidArgument);
  spec.enable_cache = true;
  EXPECT_TRUE(spec.Validate().ok());
}

TEST(ValidateTest, CtorSurfacesValidateMessage) {
  DatabaseSpec spec = SmallKvSpec();
  spec.log_bytes = 0;  // NVCaracal mode logs inputs; needs a log area
  NvmDevice device(ShadowDeviceConfig(SmallKvSpec()));
  EXPECT_THROW(Database(device, spec), std::invalid_argument);
}

TEST(BoundsCheckTest, AccessorsThrowOnOutOfRangeIds) {
  const DatabaseSpec spec = SmallKvSpec();
  NvmDevice device(ShadowDeviceConfig(spec));
  Database db(device, spec);
  db.Format();
  db.FinalizeLoad();
  EXPECT_NO_THROW(db.table_rows(0));
  EXPECT_THROW(db.table_rows(1), std::out_of_range);
  EXPECT_THROW(db.table_index(7), std::out_of_range);
  EXPECT_THROW(db.counter_value(0), std::out_of_range);  // no counters configured
}

}  // namespace
}  // namespace nvc::test
