// Free-list ring wrap-around stress: the monotonic head/tail offsets wrap
// around the physical ring many times over; the invariants (no reuse within
// an epoch, crash revert) must hold across every wrap.
#include <gtest/gtest.h>

#include <set>

#include "src/alloc/persistent_pool.h"
#include "src/common/rng.h"
#include "src/sim/nvm_device.h"

namespace nvc::test {
namespace {

using alloc::PersistentPool;
using alloc::PersistentPoolConfig;
using sim::NvmConfig;
using sim::NvmDevice;

TEST(PoolWraparoundTest, ManyEpochsOfChurnWrapTheRing) {
  // Tiny ring: 16 entries; each epoch frees/reallocs 4 blocks, so the ring
  // wraps every ~4 epochs. 64 epochs = ~16 wraps.
  const PersistentPoolConfig config{
      .block_size = 256, .blocks_per_core = 32, .freelist_capacity = 16};
  NvmDevice device(NvmConfig{.size_bytes = PersistentPool::RequiredBytes(config, 1),
                             .latency = {},
                             .crash_tracking = sim::CrashTracking::kShadow});
  PersistentPool pool(device, config, 0, 1);
  pool.Format();
  pool.BeginEpoch();

  // Working set of 8 live blocks.
  std::vector<std::uint64_t> live;
  for (int i = 0; i < 8; ++i) {
    live.push_back(pool.Alloc(0));
  }
  pool.Checkpoint(2, 0);
  device.Fence(0);
  pool.BeginEpoch();

  Rng rng(11);
  for (Epoch epoch = 3; epoch < 67; ++epoch) {
    // Free 4 random live blocks, allocate 4 replacements.
    for (int i = 0; i < 4; ++i) {
      const std::size_t victim = rng.NextBounded(live.size());
      pool.Free(0, live[victim]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    }
    for (int i = 0; i < 4; ++i) {
      const std::uint64_t block = pool.Alloc(0);
      ASSERT_NE(block, 0u) << "epoch " << epoch;
      // Never hand out a block that is still live.
      ASSERT_EQ(std::count(live.begin(), live.end(), block), 0) << "epoch " << epoch;
      live.push_back(block);
    }
    pool.Checkpoint(epoch, 0);
    device.Fence(0);
    pool.BeginEpoch();
    ASSERT_EQ(pool.blocks_allocated(), 8u);
  }

  // Crash mid-epoch after more churn: the live set reverts exactly.
  const std::set<std::uint64_t> live_at_ckpt(live.begin(), live.end());
  for (int i = 0; i < 3; ++i) {
    pool.Free(0, live[static_cast<std::size_t>(i)]);
    (void)pool.Alloc(0);
  }
  device.Crash();
  pool.Recover(66);
  const auto free_set = pool.BuildFreeSet();
  std::set<std::uint64_t> visited;
  pool.ForEachAllocated(0, free_set, [&](std::uint64_t block) { visited.insert(block); });
  EXPECT_EQ(visited, live_at_ckpt);
}

TEST(PoolWraparoundTest, OverflowAssertsWhenWindowExceedsCapacity) {
  // Freeing more blocks in one checkpoint window than the ring can hold must
  // trip the invariant assertion (debug builds) rather than corrupt.
  const PersistentPoolConfig config{
      .block_size = 256, .blocks_per_core = 64, .freelist_capacity = 8};
  NvmDevice device(NvmConfig{.size_bytes = PersistentPool::RequiredBytes(config, 1)});
  PersistentPool pool(device, config, 0, 1);
  pool.Format();
  pool.BeginEpoch();
  std::vector<std::uint64_t> blocks;
  for (int i = 0; i < 9; ++i) {
    blocks.push_back(pool.Alloc(0));
  }
  // The ring holds up to capacity-1 = 8 pending entries per checkpoint
  // window; the ninth free would overwrite the revert window.
  for (int i = 0; i < 8; ++i) {
    pool.Free(0, blocks[static_cast<std::size_t>(i)]);
  }
#ifndef NDEBUG
  EXPECT_DEATH(pool.Free(0, blocks[8]), "free list overflow");
#endif
}

}  // namespace
}  // namespace nvc::test
