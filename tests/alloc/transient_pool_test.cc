// Transient pool: bump allocation, O(1) epoch reset, chunk reuse.
#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "src/alloc/transient_pool.h"

namespace nvc::test {
namespace {

using alloc::TransientPool;

TEST(TransientPoolTest, AllocationsAreWritableAndAligned) {
  TransientPool pool(1, /*chunk_bytes=*/4096);
  for (int i = 0; i < 100; ++i) {
    void* p = pool.Alloc(0, 24);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 8, 0u);
    std::memset(p, 0x5c, 24);
  }
  EXPECT_EQ(pool.bytes_allocated(), 100u * 24);
}

TEST(TransientPoolTest, GrowsBeyondOneChunk) {
  TransientPool pool(1, /*chunk_bytes=*/1024);
  std::set<void*> seen;
  for (int i = 0; i < 64; ++i) {
    void* p = pool.Alloc(0, 100);
    EXPECT_TRUE(seen.insert(p).second);
    std::memset(p, 1, 100);
  }
  EXPECT_GE(pool.bytes_allocated(), 64u * 100);
}

TEST(TransientPoolTest, OversizedAllocationGetsOwnChunk) {
  TransientPool pool(1, /*chunk_bytes=*/256);
  void* big = pool.Alloc(0, 10'000);
  ASSERT_NE(big, nullptr);
  std::memset(big, 2, 10'000);
}

TEST(TransientPoolTest, ResetReusesChunks) {
  TransientPool pool(1, /*chunk_bytes=*/4096);
  void* first = pool.Alloc(0, 64);
  pool.Alloc(0, 64);
  pool.Reset();
  EXPECT_EQ(pool.bytes_allocated(), 0u);
  // After reset, the first allocation lands at the same address (chunk 0).
  EXPECT_EQ(pool.Alloc(0, 64), first);
}

TEST(TransientPoolTest, HighWaterTracksEpochPeak) {
  TransientPool pool(1);
  pool.Alloc(0, 1000);
  pool.Reset();
  pool.Alloc(0, 5000);
  pool.Reset();
  pool.Alloc(0, 200);
  pool.Reset();
  EXPECT_GE(pool.high_water_bytes(), 5000u);
  EXPECT_LT(pool.high_water_bytes(), 8000u);
}

TEST(TransientPoolTest, PerCoreArenasAreIndependent) {
  TransientPool pool(4, /*chunk_bytes=*/4096);
  void* a = pool.Alloc(0, 64);
  void* b = pool.Alloc(3, 64);
  EXPECT_NE(a, b);
  std::memset(a, 1, 64);
  std::memset(b, 2, 64);
  EXPECT_EQ(static_cast<std::uint8_t*>(a)[0], 1);
  EXPECT_EQ(static_cast<std::uint8_t*>(b)[0], 2);
}

}  // namespace
}  // namespace nvc::test
