// Persistent pool: allocation/free mechanics, the two free-list invariants,
// epoch-parity checkpointing, crash revert, and GC-tail semantics.
#include <gtest/gtest.h>

#include <set>

#include "src/common/rng.h"

#include "src/alloc/persistent_pool.h"
#include "src/sim/nvm_device.h"

namespace nvc::test {
namespace {

using alloc::PersistentPool;
using alloc::PersistentPoolConfig;
using sim::CrashTracking;
using sim::NvmConfig;
using sim::NvmDevice;

PersistentPoolConfig SmallConfig(bool gc_tail = false) {
  return PersistentPoolConfig{.block_size = 256,
                              .blocks_per_core = 256,
                              .freelist_capacity = 512,
                              .gc_tail = gc_tail};
}

struct PoolFixture {
  explicit PoolFixture(const PersistentPoolConfig& config, std::size_t cores = 1)
      : device(NvmConfig{.size_bytes = PersistentPool::RequiredBytes(config, cores),
                         .latency = {},
                         .crash_tracking = CrashTracking::kShadow}),
        pool(device, config, 0, cores) {
    pool.Format();
    pool.BeginEpoch();
  }
  NvmDevice device;
  PersistentPool pool;
};

TEST(PersistentPoolTest, BumpAllocationIsDistinctAndAligned) {
  PoolFixture f(SmallConfig());
  std::set<std::uint64_t> blocks;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t block = f.pool.Alloc(0);
    ASSERT_NE(block, 0u);
    EXPECT_EQ(block % 256, 0u);
    EXPECT_TRUE(blocks.insert(block).second) << "duplicate allocation";
  }
  EXPECT_EQ(f.pool.blocks_allocated(), 100u);
}

TEST(PersistentPoolTest, ExhaustionReturnsZero) {
  PoolFixture f(SmallConfig());
  for (int i = 0; i < 256; ++i) {
    ASSERT_NE(f.pool.Alloc(0), 0u);
  }
  EXPECT_EQ(f.pool.Alloc(0), 0u);
}

// Invariant 2: blocks freed in the current epoch are not reallocated until
// the epoch is checkpointed.
TEST(PersistentPoolTest, FreedBlocksNotReusedWithinEpoch) {
  PoolFixture f(SmallConfig());
  const std::uint64_t a = f.pool.Alloc(0);
  const std::uint64_t b = f.pool.Alloc(0);
  f.pool.Free(0, a);
  f.pool.Free(0, b);
  // Same epoch: allocations must come from the bump area, not the free list.
  for (int i = 0; i < 10; ++i) {
    const std::uint64_t block = f.pool.Alloc(0);
    EXPECT_NE(block, a);
    EXPECT_NE(block, b);
  }
  // After the checkpoint the freed blocks become available (FIFO).
  f.pool.Checkpoint(2, 0);
  f.device.Fence(0);
  f.pool.BeginEpoch();
  EXPECT_EQ(f.pool.Alloc(0), a);
  EXPECT_EQ(f.pool.Alloc(0), b);
}

TEST(PersistentPoolTest, CrashRevertsAllocationsAndFrees) {
  PoolFixture f(SmallConfig());
  // Epoch 2: allocate three blocks, checkpoint.
  const std::uint64_t a = f.pool.Alloc(0);
  const std::uint64_t b = f.pool.Alloc(0);
  const std::uint64_t c = f.pool.Alloc(0);
  f.pool.Checkpoint(2, 0);
  f.device.Fence(0);
  f.pool.BeginEpoch();

  // Epoch 3 (crashes): free b, allocate two more.
  f.pool.Free(0, b);
  (void)f.pool.Alloc(0);
  (void)f.pool.Alloc(0);
  f.device.Crash();
  f.pool.Recover(/*last_checkpointed_epoch=*/2);

  // b's deletion reverted: the free set is empty, bump is back to 3 blocks.
  EXPECT_TRUE(f.pool.BuildFreeSet().empty());
  EXPECT_EQ(f.pool.blocks_allocated(), 3u);
  // The next allocations reuse the reverted bump region.
  std::set<std::uint64_t> seen{a, b, c};
  const std::uint64_t d = f.pool.Alloc(0);
  EXPECT_EQ(seen.count(d), 0u);
}

TEST(PersistentPoolTest, CheckpointedFreeSurvivesCrash) {
  PoolFixture f(SmallConfig());
  const std::uint64_t a = f.pool.Alloc(0);
  f.pool.Free(0, a);
  f.pool.Checkpoint(2, 0);
  f.device.Fence(0);
  f.pool.BeginEpoch();

  f.device.Crash();
  f.pool.Recover(2);
  const auto free_set = f.pool.BuildFreeSet();
  EXPECT_EQ(free_set.size(), 1u);
  EXPECT_TRUE(free_set.count(a));
  // And it is allocatable again.
  EXPECT_EQ(f.pool.Alloc(0), a);
}

TEST(PersistentPoolTest, ParityCheckpointsAlternate) {
  PoolFixture f(SmallConfig());
  (void)f.pool.Alloc(0);
  f.pool.Checkpoint(2, 0);
  f.device.Fence(0);
  f.pool.BeginEpoch();
  (void)f.pool.Alloc(0);
  f.pool.Checkpoint(3, 0);
  f.device.Fence(0);
  f.pool.BeginEpoch();
  (void)f.pool.Alloc(0);
  // Crash during epoch 4 (would use slot 0 = epoch 2's slot): recovery from
  // epoch 3 must see exactly two allocated blocks.
  f.device.Crash();
  f.pool.Recover(3);
  EXPECT_EQ(f.pool.blocks_allocated(), 2u);
}

TEST(PersistentPoolTest, GcTailMakesGcFreesDurableBeforeExecution) {
  PoolFixture f(SmallConfig(/*gc_tail=*/true));
  const std::uint64_t a = f.pool.Alloc(0);
  const std::uint64_t b = f.pool.Alloc(0);
  f.pool.Checkpoint(2, 0);
  f.device.Fence(0);
  f.pool.BeginEpoch();

  // Epoch 3 init: GC frees a; PersistGcTail makes it durable and available.
  f.pool.FreeGc(0, a);
  f.pool.PersistGcTail(0);
  EXPECT_EQ(f.pool.Alloc(0), a);  // reusable within the same epoch

  // Execution-phase transactional free of b, then crash before checkpoint.
  f.pool.Free(0, b);
  f.device.Crash();
  f.pool.Recover(2);

  // The GC free survived (non-revertible); the transactional free reverted.
  const auto free_set = f.pool.BuildFreeSet();
  EXPECT_TRUE(free_set.count(a));
  EXPECT_FALSE(free_set.count(b));
  // The GC window (dedup source) contains exactly a.
  const auto window = f.pool.GcWindowEntries();
  EXPECT_EQ(window.size(), 1u);
  EXPECT_TRUE(window.count(a));
}

TEST(PersistentPoolTest, ForEachAllocatedSkipsFreeSet) {
  PoolFixture f(SmallConfig());
  const std::uint64_t a = f.pool.Alloc(0);
  const std::uint64_t b = f.pool.Alloc(0);
  const std::uint64_t c = f.pool.Alloc(0);
  f.pool.Free(0, b);
  f.pool.Checkpoint(2, 0);
  f.device.Fence(0);

  const auto free_set = f.pool.BuildFreeSet();
  std::set<std::uint64_t> visited;
  f.pool.ForEachAllocated(0, free_set, [&](std::uint64_t block) { visited.insert(block); });
  EXPECT_EQ(visited, (std::set<std::uint64_t>{a, c}));
}

TEST(PersistentPoolTest, MultiCoreAreasAreDisjoint) {
  const PersistentPoolConfig config = SmallConfig();
  PoolFixture f(config, /*cores=*/4);
  std::set<std::uint64_t> blocks;
  for (std::size_t core = 0; core < 4; ++core) {
    for (int i = 0; i < 50; ++i) {
      const std::uint64_t block = f.pool.Alloc(core);
      ASSERT_NE(block, 0u);
      EXPECT_TRUE(blocks.insert(block).second);
    }
  }
  // Cross-core free/realloc: core 0 frees a block from core 3's area.
  const std::uint64_t block = *blocks.rbegin();
  f.pool.Free(0, block);
  f.pool.Checkpoint(2, 0);
  f.device.Fence(0);
  f.pool.BeginEpoch();
  EXPECT_EQ(f.pool.Alloc(0), block);
}

// Property sweep: random alloc/free/checkpoint/crash sequences always revert
// to a consistent checkpointed state.
class PoolCrashPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PoolCrashPropertyTest, RandomOpsThenCrashRevertsExactly) {
  Rng rng(GetParam());
  PoolFixture f(SmallConfig());
  std::set<std::uint64_t> live;       // allocated, not freed
  std::set<std::uint64_t> freelist;   // freed, reusable after ckpt

  Epoch epoch = 1;
  // Run a few committed epochs of random ops.
  const int committed_epochs = 1 + static_cast<int>(rng.NextBounded(4));
  for (int e = 0; e < committed_epochs; ++e) {
    ++epoch;
    const int ops = static_cast<int>(rng.NextBounded(40));
    for (int i = 0; i < ops; ++i) {
      if (rng.NextPercent(60) || live.empty()) {
        const std::uint64_t block = f.pool.Alloc(0);
        if (block != 0) {
          EXPECT_EQ(live.count(block), 0u);
          live.insert(block);
          freelist.erase(block);
        }
      } else {
        const std::uint64_t block = *live.begin();
        live.erase(live.begin());
        f.pool.Free(0, block);
        freelist.insert(block);
      }
    }
    f.pool.Checkpoint(epoch, 0);
    f.device.Fence(0);
    f.pool.BeginEpoch();
  }
  const auto live_at_ckpt = live;
  const std::uint64_t allocated_at_ckpt = f.pool.blocks_allocated();

  // One crashed epoch of random ops.
  const int ops = static_cast<int>(rng.NextBounded(60));
  for (int i = 0; i < ops; ++i) {
    if (rng.NextPercent(60) || live.empty()) {
      (void)f.pool.Alloc(0);
    } else {
      const std::uint64_t block = *live.begin();
      live.erase(live.begin());
      f.pool.Free(0, block);
    }
  }
  f.device.CrashChaos(GetParam() * 3 + 1, 0.5);
  f.pool.Recover(epoch);

  EXPECT_EQ(f.pool.blocks_allocated(), allocated_at_ckpt);
  const auto free_set = f.pool.BuildFreeSet();
  std::set<std::uint64_t> visited;
  f.pool.ForEachAllocated(0, free_set, [&](std::uint64_t block) { visited.insert(block); });
  EXPECT_EQ(visited, live_at_ckpt);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PoolCrashPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace nvc::test
