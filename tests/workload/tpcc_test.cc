// TPC-C correctness: order/delivery bookkeeping stays consistent across
// epochs, and revert-and-replay recovery (the counters make TPC-C not fully
// deterministic) restores a consistent state.
#include <gtest/gtest.h>

#include <string>

#include "src/workload/tpcc.h"
#include "src/workload/tpcc_txns.h"
#include "tests/test_util.h"

namespace nvc::test {
namespace {

using core::CrashSite;
using core::Database;
using sim::NvmDevice;
using namespace nvc::workload;  // NOLINT: test readability

TpccConfig TinyConfig(std::uint32_t warehouses) {
  TpccConfig config;
  config.warehouses = warehouses;
  config.items = 500;
  config.customers_per_district = 30;
  config.initial_orders_per_district = 30;
  config.new_order_capacity = 20'000;
  return config;
}

TEST(TpccTest, LoadIsConsistent) {
  const TpccConfig config = TinyConfig(2);
  TpccWorkload workload(config);
  core::DatabaseSpec spec = workload.Spec(1);
  NvmDevice device(sim::NvmConfig{.size_bytes = Database::RequiredDeviceBytes(spec)});
  Database db(device, spec);
  db.Format();
  workload.Load(db);
  db.FinalizeLoad();

  std::string message;
  EXPECT_TRUE(TpccWorkload::CheckConsistency(db, config, &message)) << message;
  EXPECT_EQ(db.table_rows(kWarehouse), 2u);
  EXPECT_EQ(db.table_rows(kDistrict), 20u);
  EXPECT_EQ(db.table_rows(kCustomer), 600u);
  EXPECT_EQ(db.table_rows(kItem), 500u);
  EXPECT_EQ(db.table_rows(kStock), 1000u);
  EXPECT_EQ(db.table_rows(kOrderTable), 600u);
  // 30% of the 30 initial orders per district are undelivered.
  EXPECT_EQ(db.table_rows(kNewOrderTable), 20u * 9);
}

class TpccRunTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(TpccRunTest, EpochsStayConsistent) {
  const TpccConfig config = TinyConfig(GetParam());
  TpccWorkload workload(config);
  core::DatabaseSpec spec = workload.Spec(1);
  NvmDevice device(sim::NvmConfig{.size_bytes = Database::RequiredDeviceBytes(spec)});
  Database db(device, spec);
  db.Format();
  workload.Load(db);
  db.FinalizeLoad();

  std::size_t committed = 0;
  std::size_t aborted = 0;
  for (int e = 0; e < 6; ++e) {
    const auto result = db.ExecuteEpoch(workload.MakeEpoch(250));
    committed += result.committed;
    aborted += result.aborted;
    std::string message;
    ASSERT_TRUE(TpccWorkload::CheckConsistency(db, config, &message))
        << "epoch " << e << ": " << message;
  }
  EXPECT_EQ(committed + aborted, 1500u);
  // ~1% of the ~45% NewOrder share rolls back (TPC-C 2.4.1.4).
  EXPECT_LT(aborted, 30u);
  // Orders were actually created.
  std::uint64_t total_orders = 0;
  for (std::uint64_t w = 1; w <= config.warehouses; ++w) {
    for (std::uint64_t d = 1; d <= kDistrictsPerWarehouse; ++d) {
      total_orders += db.counter_value(OrderCounter(config, w, d)) - 1;
    }
  }
  EXPECT_GT(total_orders,
            static_cast<std::uint64_t>(config.warehouses) * kDistrictsPerWarehouse *
                config.initial_orders_per_district);
}

INSTANTIATE_TEST_SUITE_P(Warehouses, TpccRunTest, ::testing::Values(1u, 2u, 4u));

TEST(TpccTest, CrashRecoveryRestoresConsistency) {
  const TpccConfig config = TinyConfig(2);
  TpccWorkload workload(config);
  core::DatabaseSpec spec = workload.Spec(1);
  ASSERT_EQ(spec.recovery, core::RecoveryPolicy::kRevertAndReplay);
  NvmDevice device(sim::NvmConfig{.size_bytes = Database::RequiredDeviceBytes(spec),
                                  .crash_tracking = sim::CrashTracking::kShadow});
  {
    Database db(device, spec);
    db.Format();
    workload.Load(db);
    db.FinalizeLoad();
    for (int e = 0; e < 2; ++e) {
      ASSERT_FALSE(db.ExecuteEpoch(workload.MakeEpoch(250)).crashed);
    }
    int count = 0;
    db.SetCrashHook([&count](CrashSite site) {
      return site == CrashSite::kMidExecution && ++count > 150;
    });
    ASSERT_TRUE(db.ExecuteEpoch(workload.MakeEpoch(250)).crashed);
  }
  device.CrashChaos(31, 0.5);

  Database recovered(device, spec);
  const auto report = recovered.Recover(workload.Registry()).value();
  ASSERT_TRUE(report.replayed);
  EXPECT_EQ(report.replayed_txns, 250u);

  std::string message;
  EXPECT_TRUE(TpccWorkload::CheckConsistency(recovered, config, &message)) << message;

  // The database remains usable: run more epochs on the recovered instance.
  for (int e = 0; e < 2; ++e) {
    const auto result = recovered.ExecuteEpoch(workload.MakeEpoch(250));
    EXPECT_EQ(result.committed + result.aborted, 250u);
  }
  EXPECT_TRUE(TpccWorkload::CheckConsistency(recovered, config, &message)) << message;
}

// Force a high NewOrder rollback rate: aborted orders leave order-id gaps
// that Delivery and the consistency audit must tolerate, and the inserted
// rows must be fully discarded.
TEST(TpccTest, NewOrderRollbacksLeaveConsistentGaps) {
  TpccConfig config = TinyConfig(1);
  config.new_order_rollback_pct = 50;
  TpccWorkload workload(config);
  core::DatabaseSpec spec = workload.Spec(1);
  NvmDevice device(sim::NvmConfig{.size_bytes = Database::RequiredDeviceBytes(spec)});
  Database db(device, spec);
  db.Format();
  workload.Load(db);
  db.FinalizeLoad();

  std::size_t aborted = 0;
  for (int e = 0; e < 4; ++e) {
    const auto result = db.ExecuteEpoch(workload.MakeEpoch(250));
    aborted += result.aborted;
    std::string message;
    ASSERT_TRUE(TpccWorkload::CheckConsistency(db, config, &message))
        << "epoch " << e << ": " << message;
  }
  // ~50% of the ~45% NewOrder share aborts.
  EXPECT_GT(aborted, 100u);
  // Gap accounting: the order counter advanced past the number of live
  // Order rows (aborted inserts were discarded).
  std::uint64_t next_order_total = 0;
  for (std::uint64_t d = 1; d <= kDistrictsPerWarehouse; ++d) {
    next_order_total += db.counter_value(OrderCounter(config, 1, d)) - 1;
  }
  EXPECT_GT(next_order_total, db.table_rows(kOrderTable));
}

TEST(TpccTest, RevertedVersionsAreCounted) {
  const TpccConfig config = TinyConfig(1);
  TpccWorkload workload(config);
  core::DatabaseSpec spec = workload.Spec(1);
  NvmDevice device(sim::NvmConfig{.size_bytes = Database::RequiredDeviceBytes(spec),
                                  .crash_tracking = sim::CrashTracking::kShadow});
  {
    Database db(device, spec);
    db.Format();
    workload.Load(db);
    db.FinalizeLoad();
    db.ExecuteEpoch(workload.MakeEpoch(200));
    db.SetCrashHook([](CrashSite site) { return site == CrashSite::kAfterExecution; });
    ASSERT_TRUE(db.ExecuteEpoch(workload.MakeEpoch(200)).crashed);
  }
  // Keep most unfenced lines so the crashed epoch's SIDs are visible in NVMM
  // and the scan has versions to revert.
  device.CrashChaos(5, 0.95);

  Database recovered(device, spec);
  const auto report = recovered.Recover(workload.Registry()).value();
  ASSERT_TRUE(report.replayed);
  // The whole epoch executed before the crash, so many persistent versions
  // carried the crashed epoch's SIDs and had to be reverted.
  EXPECT_GT(report.reverted_versions, 0u);
  std::string message;
  EXPECT_TRUE(TpccWorkload::CheckConsistency(recovered, config, &message)) << message;
}

}  // namespace
}  // namespace nvc::test
