// TPC-C transaction-level semantics: the effects each of the five
// transactions must have on specific rows and counters.
#include <gtest/gtest.h>

#include <string>

#include "src/workload/tpcc.h"
#include "src/workload/tpcc_txns.h"
#include "tests/test_util.h"

namespace nvc::test {
namespace {

using core::Database;
using sim::NvmDevice;
using namespace nvc::workload;  // NOLINT: test readability

struct TpccFixture {
  TpccFixture() : config(MakeConfig()), generator(config) {
    spec = generator.Spec(1);
    device = std::make_unique<NvmDevice>(
        sim::NvmConfig{.size_bytes = Database::RequiredDeviceBytes(spec)});
    db = std::make_unique<Database>(*device, spec);
    db->Format();
    generator.Load(*db);
    db->FinalizeLoad();
  }

  static TpccConfig MakeConfig() {
    TpccConfig config;
    config.warehouses = 1;
    config.items = 100;
    config.customers_per_district = 10;
    config.initial_orders_per_district = 10;
    config.new_order_capacity = 1000;
    config.new_order_rollback_pct = 0;
    return config;
  }

  template <typename T>
  T Get(TableId table, Key key) {
    T row{};
    EXPECT_TRUE(db->ReadCommitted(table, key, &row, sizeof(row)).ok()) << "missing row";
    return row;
  }

  void Run(std::unique_ptr<txn::Transaction> txn) {
    std::vector<std::unique_ptr<txn::Transaction>> txns;
    txns.push_back(std::move(txn));
    const auto result = db->ExecuteEpoch(std::move(txns));
    ASSERT_EQ(result.committed, 1u);
  }

  TpccConfig config;
  TpccWorkload generator;
  core::DatabaseSpec spec;
  std::unique_ptr<NvmDevice> device;
  std::unique_ptr<Database> db;
};

TEST(TpccSemanticsTest, NewOrderCreatesRowsAndUpdatesStock) {
  TpccFixture f;
  const std::uint64_t next_o = f.db->counter_value(OrderCounter(f.config, 1, 3));
  const StockRow stock_before = f.Get<StockRow>(kStock, StockKey(1, 5));

  std::vector<NewOrderLine> lines;
  lines.push_back(NewOrderLine{.item = 5, .supply_w = 1, .quantity = 3});
  lines.push_back(NewOrderLine{.item = 6, .supply_w = 1, .quantity = 2});
  f.Run(std::make_unique<TpccNewOrderTxn>(&f.config, 1, 3, 7, 1234, lines));

  // Order + NewOrder + OrderLine rows exist with the counter-drawn id.
  const OrderRow order = f.Get<OrderRow>(kOrderTable, OrderKey(1, 3, next_o));
  EXPECT_EQ(order.c_id, 7u);
  EXPECT_EQ(order.ol_cnt, 2u);
  EXPECT_EQ(order.carrier_id, 0u);
  EXPECT_EQ(order.entry_date, 1234);
  (void)f.Get<NewOrderRow>(kNewOrderTable, NewOrderKey(1, 3, next_o));
  const OrderLineRow line1 = f.Get<OrderLineRow>(kOrderLine, OrderLineKey(1, 3, next_o, 1));
  EXPECT_EQ(line1.i_id, 5u);
  EXPECT_EQ(line1.quantity, 3);
  const ItemRow item = f.Get<ItemRow>(kItem, ItemKey(5));
  EXPECT_EQ(line1.amount, item.price * 3);

  // Stock decremented (with the TPC-C +91 underflow rule) and counted.
  const StockRow stock_after = f.Get<StockRow>(kStock, StockKey(1, 5));
  const std::int32_t expected_qty = stock_before.quantity >= 3 + 10
                                        ? stock_before.quantity - 3
                                        : stock_before.quantity - 3 + 91;
  EXPECT_EQ(stock_after.quantity, expected_qty);
  EXPECT_EQ(stock_after.order_cnt, stock_before.order_cnt + 1);
  EXPECT_EQ(stock_after.ytd, stock_before.ytd + 3);

  // Customer-last-order updated; the counter advanced.
  const CustomerLastOrderRow last =
      f.Get<CustomerLastOrderRow>(kCustomerLastOrder, CustomerKey(1, 3, 7));
  EXPECT_EQ(last.o_id, next_o);
  EXPECT_EQ(f.db->counter_value(OrderCounter(f.config, 1, 3)), next_o + 1);
}

TEST(TpccSemanticsTest, PaymentMovesMoneyAndWritesHistory) {
  TpccFixture f;
  const WarehouseRow w_before = f.Get<WarehouseRow>(kWarehouse, WarehouseKey(1));
  const DistrictRow d_before = f.Get<DistrictRow>(kDistrict, DistrictKey(1, 2));
  const CustomerRow c_before = f.Get<CustomerRow>(kCustomer, CustomerKey(1, 2, 4));
  const std::uint64_t h_seq = f.db->counter_value(HistoryCounter(f.config, 1));

  f.Run(std::make_unique<TpccPaymentTxn>(&f.config, 1, 2, 1, 2, 4, /*amount=*/777,
                                         /*date=*/55));

  EXPECT_EQ(f.Get<WarehouseRow>(kWarehouse, WarehouseKey(1)).ytd, w_before.ytd + 777);
  EXPECT_EQ(f.Get<DistrictRow>(kDistrict, DistrictKey(1, 2)).ytd, d_before.ytd + 777);
  const CustomerRow c_after = f.Get<CustomerRow>(kCustomer, CustomerKey(1, 2, 4));
  EXPECT_EQ(c_after.balance, c_before.balance - 777);
  EXPECT_EQ(c_after.ytd_payment, c_before.ytd_payment + 777);
  EXPECT_EQ(c_after.payment_cnt, c_before.payment_cnt + 1);

  const HistoryRow history = f.Get<HistoryRow>(kHistory, HistoryKey(1, h_seq));
  EXPECT_EQ(history.amount, 777);
  EXPECT_EQ(history.customer_key, CustomerKey(1, 2, 4));
}

TEST(TpccSemanticsTest, DeliveryDeliversOldestUndeliveredOrders) {
  TpccFixture f;
  // Initial load: orders 1..10 per district, 1..7 delivered, 8..10 pending.
  const std::uint64_t first_undelivered =
      f.db->counter_value(DeliveryCounter(f.config, 1, 1));
  ASSERT_EQ(first_undelivered, 8u);
  const OrderRow pending = f.Get<OrderRow>(kOrderTable, OrderKey(1, 1, 8));
  ASSERT_EQ(pending.carrier_id, 0u);
  const CustomerRow c_before =
      f.Get<CustomerRow>(kCustomer, CustomerKey(1, 1, pending.c_id));

  f.Run(std::make_unique<TpccDeliveryTxn>(&f.config, 1, /*carrier=*/9, /*date=*/99));

  // Order 8 of every district delivered: carrier set, NewOrder row gone,
  // lines stamped, customer credited with the line total.
  const OrderRow delivered = f.Get<OrderRow>(kOrderTable, OrderKey(1, 1, 8));
  EXPECT_EQ(delivered.carrier_id, 9u);
  NewOrderRow no_row{};
  EXPECT_FALSE(f.db->ReadCommitted(kNewOrderTable, NewOrderKey(1, 1, 8), &no_row,
                                 sizeof(no_row))
                   .ok());
  std::int64_t total = 0;
  for (std::uint64_t ol = 1; ol <= delivered.ol_cnt; ++ol) {
    const OrderLineRow line = f.Get<OrderLineRow>(kOrderLine, OrderLineKey(1, 1, 8, ol));
    EXPECT_EQ(line.delivery_date, 99);
    total += line.amount;
  }
  const CustomerRow c_after =
      f.Get<CustomerRow>(kCustomer, CustomerKey(1, 1, pending.c_id));
  EXPECT_EQ(c_after.balance, c_before.balance + total);
  EXPECT_EQ(c_after.delivery_cnt, c_before.delivery_cnt + 1);
  EXPECT_EQ(f.db->counter_value(DeliveryCounter(f.config, 1, 1)), 9u);
}

TEST(TpccSemanticsTest, DeliverySkipsDistrictsWithNothingPending) {
  TpccFixture f;
  // Deliver the 3 pending orders of every district, plus one extra round.
  for (int i = 0; i < 4; ++i) {
    f.Run(std::make_unique<TpccDeliveryTxn>(&f.config, 1, 5, 10 + i));
  }
  // The counter stops at the order counter; nothing ran past it.
  for (std::uint64_t d = 1; d <= kDistrictsPerWarehouse; ++d) {
    EXPECT_EQ(f.db->counter_value(DeliveryCounter(f.config, 1, d)),
              f.db->counter_value(OrderCounter(f.config, 1, d)));
  }
  std::string message;
  EXPECT_TRUE(TpccWorkload::CheckConsistency(*f.db, f.config, &message)) << message;
}

TEST(TpccSemanticsTest, RolledBackNewOrderHasNoEffects) {
  TpccFixture f;
  const std::uint64_t next_o = f.db->counter_value(OrderCounter(f.config, 1, 1));
  const StockRow stock_before = f.Get<StockRow>(kStock, StockKey(1, 5));

  std::vector<NewOrderLine> lines;
  lines.push_back(NewOrderLine{.item = 5, .supply_w = 1, .quantity = 3});
  lines.push_back(NewOrderLine{.item = f.config.items + 1, .supply_w = 1, .quantity = 1});
  std::vector<std::unique_ptr<txn::Transaction>> txns;
  txns.push_back(std::make_unique<TpccNewOrderTxn>(&f.config, 1, 1, 2, 1, lines));
  const auto result = f.db->ExecuteEpoch(std::move(txns));
  EXPECT_EQ(result.aborted, 1u);

  // The counter advanced (gap), but no rows or stock changes exist.
  EXPECT_EQ(f.db->counter_value(OrderCounter(f.config, 1, 1)), next_o + 1);
  OrderRow order{};
  EXPECT_FALSE(
      f.db->ReadCommitted(kOrderTable, OrderKey(1, 1, next_o), &order, sizeof(order)).ok());
  const StockRow stock_after = f.Get<StockRow>(kStock, StockKey(1, 5));
  EXPECT_EQ(stock_after.quantity, stock_before.quantity);
  EXPECT_EQ(stock_after.order_cnt, stock_before.order_cnt);
  std::string message;
  EXPECT_TRUE(TpccWorkload::CheckConsistency(*f.db, f.config, &message)) << message;
}

}  // namespace
}  // namespace nvc::test
