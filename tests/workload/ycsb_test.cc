// YCSB workload correctness: generated keys respect the contention knobs,
// updates land with the right contents, and crash recovery reproduces the
// exact state of an uncrashed run.
#include <gtest/gtest.h>

#include <memory>

#include "src/workload/ycsb.h"
#include "tests/test_util.h"

namespace nvc::test {
namespace {

using core::CrashSite;
using core::Database;
using sim::NvmDevice;
using workload::kYcsbTable;
using workload::YcsbConfig;
using workload::YcsbRmwTxn;
using workload::YcsbWorkload;

YcsbConfig TinyConfig(std::uint32_t hot_ops) {
  YcsbConfig config;
  config.rows = 2000;
  config.value_size = 100;
  config.update_bytes = 40;
  config.hot_rows = 16;
  config.hot_ops = hot_ops;
  config.row_size = 256;  // 100 B values do not fit the 84 B half-heap: pool values
  return config;
}

TEST(YcsbTest, GeneratedKeysRespectContention) {
  YcsbWorkload workload(TinyConfig(7));
  auto txns = workload.MakeEpoch(200);
  std::size_t hot = 0;
  std::size_t total = 0;
  for (const auto& txn : txns) {
    const auto* rmw = dynamic_cast<const YcsbRmwTxn*>(txn.get());
    ASSERT_NE(rmw, nullptr);
    ASSERT_EQ(rmw->keys().size(), 10u);
    // Keys must be unique within a transaction.
    for (std::size_t i = 0; i < rmw->keys().size(); ++i) {
      for (std::size_t j = i + 1; j < rmw->keys().size(); ++j) {
        EXPECT_NE(rmw->keys()[i], rmw->keys()[j]);
      }
      if (rmw->keys()[i] < 16) {
        ++hot;
      }
      ++total;
    }
  }
  EXPECT_EQ(hot, 200u * 7);  // exactly hot_ops per transaction
  EXPECT_EQ(total, 2000u);
}

TEST(YcsbTest, RunsAndUpdatesRows) {
  YcsbWorkload workload(TinyConfig(4));
  core::DatabaseSpec spec = workload.Spec(1);
  NvmDevice device(sim::NvmConfig{.size_bytes = Database::RequiredDeviceBytes(spec)});
  Database db(device, spec);
  db.Format();
  workload.Load(db);
  db.FinalizeLoad();

  for (int e = 0; e < 3; ++e) {
    const auto result = db.ExecuteEpoch(workload.MakeEpoch(100));
    EXPECT_EQ(result.committed, 100u);
    EXPECT_EQ(result.aborted, 0u);
  }
  // Untouched cold rows keep their load pattern.
  std::vector<std::uint8_t> expected(100);
  std::vector<std::uint8_t> actual(100);
  // Find a key no transaction touched (beyond hot rows; check a high key).
  const Key cold = 1999;
  YcsbWorkload::FillRow(cold, expected.data(), 100);
  const auto n = db.ReadCommitted(kYcsbTable, cold, actual.data(), 100);
  ASSERT_EQ(n.value(), 100u);
  // The key may have been updated by chance; only compare sizes then.
  // (Deterministic seed: verify whether it was in any write set.)
  bool touched = false;
  YcsbWorkload regen(TinyConfig(4));
  for (int e = 0; e < 3; ++e) {
    for (const auto& txn : regen.MakeEpoch(100)) {
      const auto* rmw = dynamic_cast<const YcsbRmwTxn*>(txn.get());
      for (Key key : rmw->keys()) {
        if (key == cold) {
          touched = true;
        }
      }
    }
  }
  if (!touched) {
    EXPECT_EQ(actual, expected);
  }
}

TEST(YcsbTest, ContentionIncreasesTransientShare) {
  auto run = [](std::uint32_t hot_ops) {
    // A larger cold keyspace keeps accidental collisions low so the
    // low-contention transient share is dominated by the hot set.
    YcsbConfig config = TinyConfig(hot_ops);
    config.rows = 20'000;
    YcsbWorkload workload(config);
    core::DatabaseSpec spec = workload.Spec(1);
    NvmDevice device(sim::NvmConfig{.size_bytes = Database::RequiredDeviceBytes(spec)});
    Database db(device, spec);
    db.Format();
    workload.Load(db);
    db.FinalizeLoad();
    db.stats().Reset();
    for (int e = 0; e < 3; ++e) {
      db.ExecuteEpoch(workload.MakeEpoch(200));
    }
    const double transient = static_cast<double>(db.stats().transient_writes.Sum());
    const double persistent = static_cast<double>(db.stats().persistent_writes.Sum());
    return transient / (transient + persistent);
  };
  const double low = run(0);
  const double high = run(7);
  // The paper reports ~3% transient at low contention and ~70% at high.
  EXPECT_LT(low, 0.2);
  EXPECT_GT(high, 0.4);
  EXPECT_GT(high, low + 0.2);
}

TEST(YcsbTest, CrashRecoveryMatchesReference) {
  const YcsbConfig config = TinyConfig(7);

  auto run_reference = [&]() {
    YcsbWorkload workload(config);
    core::DatabaseSpec spec = workload.Spec(1);
    NvmDevice device(sim::NvmConfig{.size_bytes = Database::RequiredDeviceBytes(spec)});
    Database db(device, spec);
    db.Format();
    workload.Load(db);
    db.FinalizeLoad();
    for (int e = 0; e < 2; ++e) {
      db.ExecuteEpoch(workload.MakeEpoch(150));
    }
    std::vector<std::vector<std::uint8_t>> state;
    for (Key key = 0; key < config.rows; ++key) {
      state.push_back(ReadBytes(db, kYcsbTable, key));
    }
    return state;
  };
  const auto expected = run_reference();

  YcsbWorkload workload(config);
  core::DatabaseSpec spec = workload.Spec(1);
  sim::NvmConfig device_config{.size_bytes = Database::RequiredDeviceBytes(spec),
                               .crash_tracking = sim::CrashTracking::kShadow};
  NvmDevice device(device_config);
  {
    Database db(device, spec);
    db.Format();
    workload.Load(db);
    db.FinalizeLoad();
    db.ExecuteEpoch(workload.MakeEpoch(150));
    int count = 0;
    db.SetCrashHook([&count](CrashSite site) {
      return site == CrashSite::kMidExecution && ++count > 60;
    });
    ASSERT_TRUE(db.ExecuteEpoch(workload.MakeEpoch(150)).crashed);
  }
  device.CrashChaos(17, 0.5);

  Database recovered(device, spec);
  const auto report = recovered.Recover(workload.Registry()).value();
  ASSERT_TRUE(report.replayed);
  for (Key key = 0; key < config.rows; ++key) {
    ASSERT_EQ(ReadBytes(recovered, kYcsbTable, key), expected[key]) << "key " << key;
  }
}

}  // namespace
}  // namespace nvc::test
