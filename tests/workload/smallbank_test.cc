// SmallBank correctness: the engine's balances must match a simple serial
// reference model executed in the same predetermined order (this checks
// serializability, abort semantics, and early-write visibility end to end),
// and crash recovery must restore the exact reference state.
#include <gtest/gtest.h>

#include <vector>

#include "src/workload/smallbank.h"
#include "tests/test_util.h"

namespace nvc::test {
namespace {

using core::CrashSite;
using core::Database;
using sim::NvmDevice;
using workload::Balance;
using workload::kCheckingTable;
using workload::kSavingsTable;
using workload::SmallBankConfig;
using workload::SmallBankWorkload;

SmallBankConfig TinyConfig() {
  SmallBankConfig config;
  config.customers = 500;
  config.hotspot_customers = 20;
  return config;
}

// Serial in-memory model of the five transaction types.
struct BankModel {
  std::vector<Balance> savings;
  std::vector<Balance> checking;
  std::size_t aborted = 0;

  explicit BankModel(const SmallBankConfig& config)
      : savings(config.customers, config.initial_balance),
        checking(config.customers, config.initial_balance) {}

  void Apply(const txn::Transaction& txn) {
    if (const auto* t = dynamic_cast<const workload::SbAmalgamateTxn*>(&txn)) {
      checking[t->b()] += savings[t->a()] + checking[t->a()];
      savings[t->a()] = 0;
      checking[t->a()] = 0;
    } else if (const auto* t = dynamic_cast<const workload::SbDepositCheckingTxn*>(&txn)) {
      checking[t->customer()] += t->amount();
    } else if (const auto* t = dynamic_cast<const workload::SbSendPaymentTxn*>(&txn)) {
      if (checking[t->from()] < t->amount()) {
        ++aborted;
        return;
      }
      checking[t->from()] -= t->amount();
      checking[t->to()] += t->amount();
    } else if (const auto* t = dynamic_cast<const workload::SbTransactSavingTxn*>(&txn)) {
      if (savings[t->customer()] + t->amount() < 0) {
        ++aborted;
        return;
      }
      savings[t->customer()] += t->amount();
    } else if (const auto* t = dynamic_cast<const workload::SbWriteCheckTxn*>(&txn)) {
      if (savings[t->customer()] + checking[t->customer()] < t->amount()) {
        ++aborted;
        return;
      }
      checking[t->customer()] -= t->amount();
    } else {
      FAIL() << "unknown SmallBank transaction type";
    }
  }
};

void ExpectMatchesModel(Database& db, const BankModel& model) {
  for (std::uint64_t c = 0; c < model.savings.size(); ++c) {
    Balance balance = 0;
    ASSERT_TRUE(db.ReadCommitted(kSavingsTable, c, &balance, sizeof(balance)).ok());
    ASSERT_EQ(balance, model.savings[c]) << "savings " << c;
    balance = 0;
    ASSERT_TRUE(db.ReadCommitted(kCheckingTable, c, &balance, sizeof(balance)).ok());
    ASSERT_EQ(balance, model.checking[c]) << "checking " << c;
  }
}

TEST(SmallBankTest, MatchesSerialModel) {
  const SmallBankConfig config = TinyConfig();
  SmallBankWorkload workload(config);
  core::DatabaseSpec spec = workload.Spec(1);
  NvmDevice device(sim::NvmConfig{.size_bytes = Database::RequiredDeviceBytes(spec)});
  Database db(device, spec);
  db.Format();
  workload.Load(db);
  db.FinalizeLoad();

  BankModel model(config);
  std::size_t committed = 0;
  std::size_t aborted = 0;
  for (int e = 0; e < 10; ++e) {
    auto txns = workload.MakeEpoch(300);
    for (const auto& txn : txns) {
      model.Apply(*txn);  // model applies in the predetermined serial order
    }
    const auto result = db.ExecuteEpoch(std::move(txns));
    committed += result.committed;
    aborted += result.aborted;
    ExpectMatchesModel(db, model);
  }
  EXPECT_EQ(committed + aborted, 3000u);
  EXPECT_EQ(aborted, model.aborted);
  // Beyond the ~4% forced aborts, Amalgamate keeps zeroing the tiny hotspot
  // accounts, so organic insufficient-funds aborts are common at this scale.
  EXPECT_GT(aborted, 30u);
  EXPECT_LT(aborted, 1500u);
}

TEST(SmallBankTest, HotspotSkewMakesUpdatesTransient) {
  SmallBankWorkload workload(TinyConfig());
  core::DatabaseSpec spec = workload.Spec(1);
  NvmDevice device(sim::NvmConfig{.size_bytes = Database::RequiredDeviceBytes(spec)});
  Database db(device, spec);
  db.Format();
  workload.Load(db);
  db.FinalizeLoad();

  db.stats().Reset();
  db.ExecuteEpoch(workload.MakeEpoch(500));
  // With 90% of customers drawn from 20 hotspot accounts, most updates are
  // intermediate (transient) rather than final.
  const auto transient = db.stats().transient_writes.Sum();
  const auto persistent = db.stats().persistent_writes.Sum();
  EXPECT_GT(transient, persistent);
}

TEST(SmallBankTest, CrashRecoveryMatchesModel) {
  const SmallBankConfig config = TinyConfig();
  SmallBankWorkload workload(config);
  core::DatabaseSpec spec = workload.Spec(1);
  NvmDevice device(sim::NvmConfig{.size_bytes = Database::RequiredDeviceBytes(spec),
                                  .crash_tracking = sim::CrashTracking::kShadow});
  BankModel model(config);
  {
    Database db(device, spec);
    db.Format();
    workload.Load(db);
    db.FinalizeLoad();
    for (int e = 0; e < 2; ++e) {
      auto txns = workload.MakeEpoch(200);
      for (const auto& txn : txns) {
        model.Apply(*txn);
      }
      db.ExecuteEpoch(std::move(txns));
    }
    auto txns = workload.MakeEpoch(200);
    for (const auto& txn : txns) {
      model.Apply(*txn);
    }
    int count = 0;
    db.SetCrashHook([&count](CrashSite site) {
      return site == CrashSite::kMidExecution && ++count > 120;
    });
    ASSERT_TRUE(db.ExecuteEpoch(std::move(txns)).crashed);
  }
  device.CrashChaos(23, 0.4);

  Database recovered(device, spec);
  const auto report = recovered.Recover(SmallBankWorkload::Registry()).value();
  ASSERT_TRUE(report.replayed);
  ExpectMatchesModel(recovered, model);
}

}  // namespace
}  // namespace nvc::test
