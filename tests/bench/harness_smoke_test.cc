// Bench-harness smoke test: a tiny YCSB run through bench/harness.h with
// profiling enabled must produce a populated report and a parseable trace.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "bench/harness.h"
#include "src/workload/ycsb.h"

namespace nvc::test {
namespace {

TEST(BenchHarnessSmokeTest, TinyYcsbRunWithProfilingProducesReportAndTrace) {
  const std::string trace_path = ::testing::TempDir() + "harness_smoke_trace.json";
  std::remove(trace_path.c_str());
  bench::Profiling().enabled = true;
  bench::Profiling().trace_out = trace_path;

  workload::YcsbConfig config;
  config.rows = 512;
  config.value_size = 64;
  config.update_bytes = 64;
  config.row_size = 256;
  workload::YcsbWorkload workload(config);

  const bench::RunResult result =
      bench::RunNvCaracal(workload, core::EngineMode::kNvCaracal, /*epochs=*/3,
                          /*txns_per_epoch=*/64);

  // Engine-level results are sane.
  EXPECT_EQ(result.committed, 3u * 64u);
  EXPECT_GT(result.txns_per_sec, 0.0);

  // The profile report is populated.
  EXPECT_TRUE(result.profile.enabled);
  EXPECT_EQ(result.profile.epochs, 3u);
  EXPECT_GT(result.profile.total.nvm_write_lines, 0u);
  EXPECT_GT(result.profile.phase(Phase::kExecute).activations, 0u);
  EXPECT_FALSE(result.profile.ToTable().empty());

  // The trace file was written and looks like a Chrome trace.
  std::ifstream in(trace_path);
  ASSERT_TRUE(in.good()) << "trace file missing: " << trace_path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"execute\""), std::string::npos);

  bench::Profiling() = bench::ProfileOptions{};  // do not leak into other tests
  std::remove(trace_path.c_str());
}

}  // namespace
}  // namespace nvc::test
