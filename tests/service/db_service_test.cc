// DbService: group-commit front-end over the deterministic engine.
//
// Covers the PR's acceptance invariants: a service-driven run is bit-for-bit
// the same engine execution as a hand-batched ExecuteEpoch run with the same
// cuts (oracle state hash AND persisted-line/fence counts), backpressure in
// both block and reject flavors, crash-during-drain failing every in-flight
// ticket with the crash status, and Aria deferral tickets resolving across
// flush epochs. ConcurrentSubmitters doubles as the TSan target.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "src/core/oracle.h"
#include "src/service/db_service.h"
#include "tests/test_util.h"

namespace nvc::test {
namespace {

using core::CaptureState;
using core::CrashSite;
using core::Database;
using core::DatabaseSpec;
using core::DiffStates;
using core::OracleState;
using core::StateHash;
using service::BackpressurePolicy;
using service::DbService;
using service::ServiceSpec;
using service::TicketOutcome;
using service::TicketResult;
using service::TxnTicket;
using sim::NvmDevice;

constexpr std::size_t kLoadedRows = 32;

std::unique_ptr<Database> MakeLoadedDb(NvmDevice& device, const DatabaseSpec& spec) {
  auto db = std::make_unique<Database>(device, spec);
  db->Format();
  for (Key key = 0; key < kLoadedRows; ++key) {
    const std::uint64_t value = 1000 + key;
    db->BulkLoad(0, key, &value, sizeof(value));
  }
  db->FinalizeLoad();
  return db;
}

// Deterministic mixed stream: puts, order-sensitive RMWs, pool-allocated big
// values, inserts, deletes, and user aborts. The key space is partitioned by
// case (deletes get unique keys nothing revisits) because a declared update
// on a deleted row is a workload bug the engine asserts on.
std::unique_ptr<txn::Transaction> MakeTxn(std::size_t i) {
  const std::size_t round = i / 6;
  switch (i % 6) {
    case 0:
      return std::make_unique<KvPutTxn>(round % 8, 5000 + i);
    case 1:
      return std::make_unique<KvRmwTxn>(8 + round % 8, i + 1);
    case 2:
      return std::make_unique<KvBigPutTxn>(16 + round % 4, i);
    case 3:
      return std::make_unique<KvInsertTxn>(kLoadedRows + i, i);
    case 4:
      return std::make_unique<KvDeleteTxn>(20 + round % 8);  // each key once
    default:
      return std::make_unique<KvAbortTxn>(28 + round % 4);
  }
}

// Sleeps inside execution so a test can keep the pacer busy while it fills
// the submission queue.
class SlowPutTxn final : public txn::Transaction {
 public:
  SlowPutTxn(Key key, std::chrono::milliseconds delay) : key_(key), delay_(delay) {}
  txn::TxnType type() const override { return 90; }
  void EncodeInputs(BinaryWriter& w) const override { w.Put(key_); }
  void AppendStep(txn::AppendContext& ctx) override { ctx.DeclareUpdate(0, key_); }
  void Execute(txn::ExecContext& ctx) override {
    std::this_thread::sleep_for(delay_);
    const std::uint64_t value = 77;
    ctx.Write(0, key_, &value, sizeof(value));
  }

 private:
  Key key_;
  std::chrono::milliseconds delay_;
};

// The determinism acceptance criterion: a DbService run and a hand-batched
// ExecuteEpoch run over the same transaction sequence with the same cuts
// produce identical oracle state hashes and identical persisted-line/fence
// counts.
TEST(DbServiceTest, DeterminismMatchesHandBatchedRun) {
  const DatabaseSpec spec = SmallKvSpec();
  constexpr std::size_t kBatch = 8;
  constexpr std::size_t kTotal = 3 * kBatch;

  // Service-driven run: size-only batching (delay effectively infinite), so
  // the cuts are exactly kBatch-sized prefixes of the submission order.
  NvmDevice service_device(ShadowDeviceConfig(spec));
  OracleState service_state;
  std::uint64_t service_persists = 0;
  std::uint64_t service_fences = 0;
  std::uint64_t service_write_lines = 0;
  {
    ServiceSpec sspec;
    sspec.max_epoch_txns = kBatch;
    sspec.max_epoch_delay = std::chrono::microseconds(60'000'000);
    sspec.queue_capacity = kTotal;
    DbService svc(MakeLoadedDb(service_device, spec), sspec);
    std::vector<TxnTicket> tickets;
    for (std::size_t i = 0; i < kTotal; ++i) {
      auto ticket = svc.Submit(MakeTxn(i));
      ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
      tickets.push_back(*ticket);
    }
    ASSERT_TRUE(svc.Drain().ok());
    for (std::size_t i = 0; i < kTotal; ++i) {
      const TicketResult& r = tickets[i].Get();
      EXPECT_EQ(r.outcome, i % 6 == 5 ? TicketOutcome::kUserAborted
                                      : TicketOutcome::kCommitted)
          << "txn " << i;
      EXPECT_GE(r.latency_micros, 0.0);
    }
    EXPECT_EQ(svc.epochs_executed(), kTotal / kBatch);
    auto db = svc.TakeDatabase();
    service_state = CaptureState(*db);
    service_persists = db->stats().nvm_persist_ops.Sum();
    service_fences = db->stats().nvm_fences.Sum();
    service_write_lines = db->stats().nvm_write_lines.Sum();
  }

  // Hand-batched reference with the same cuts.
  NvmDevice ref_device(ShadowDeviceConfig(spec));
  auto ref = MakeLoadedDb(ref_device, spec);
  for (std::size_t base = 0; base < kTotal; base += kBatch) {
    std::vector<std::unique_ptr<txn::Transaction>> batch;
    for (std::size_t i = base; i < base + kBatch; ++i) {
      batch.push_back(MakeTxn(i));
    }
    ASSERT_FALSE(ref->ExecuteEpoch(std::move(batch)).crashed);
  }
  // Quiesce the pipelined tail before reading the NVM counters: the last
  // epoch's persistence (and its stats mirror) completes asynchronously.
  ASSERT_TRUE(ref->WaitIdle().ok());
  const OracleState ref_state = CaptureState(*ref);

  std::string diff;
  EXPECT_EQ(DiffStates(ref_state, service_state, &diff), 0u) << diff;
  EXPECT_EQ(StateHash(ref_state), StateHash(service_state));
  EXPECT_EQ(service_persists, ref->stats().nvm_persist_ops.Sum());
  EXPECT_EQ(service_fences, ref->stats().nvm_fences.Sum());
  EXPECT_EQ(service_write_lines, ref->stats().nvm_write_lines.Sum());
}

TEST(DbServiceTest, TimeThresholdResolvesUnderfullEpoch) {
  const DatabaseSpec spec = SmallKvSpec();
  NvmDevice device(ShadowDeviceConfig(spec));
  ServiceSpec sspec;
  sspec.max_epoch_txns = 1024;  // never reached
  sspec.max_epoch_delay = std::chrono::microseconds(2000);
  DbService svc(MakeLoadedDb(device, spec), sspec);

  auto ticket = svc.Submit(std::make_unique<KvPutTxn>(0, 42));
  ASSERT_TRUE(ticket.ok());
  // No Drain: the delay bound alone must cut the epoch.
  const TicketResult& r = ticket->Get();
  EXPECT_EQ(r.outcome, TicketOutcome::kCommitted);
  EXPECT_GT(r.epoch, 1u);
  auto db = svc.TakeDatabase();
  EXPECT_EQ(ReadU64(*db, 0, 0), 42u);
}

TEST(DbServiceTest, LatencySnapshotCountsResolvedTickets) {
  const DatabaseSpec spec = SmallKvSpec();
  NvmDevice device(ShadowDeviceConfig(spec));
  ServiceSpec sspec;
  sspec.max_epoch_txns = 4;
  sspec.max_epoch_delay = std::chrono::microseconds(1000);
  DbService svc(MakeLoadedDb(device, spec), sspec);
  for (std::size_t i = 0; i < 12; ++i) {
    ASSERT_TRUE(svc.Submit(std::make_unique<KvPutTxn>(i % kLoadedRows, i)).ok());
  }
  ASSERT_TRUE(svc.Drain().ok());
  const LatencySummary summary = svc.LatencySnapshot();
  EXPECT_EQ(summary.count, 12u);
  EXPECT_GT(summary.max, 0.0);
  EXPECT_LE(summary.p50, summary.p99);
  EXPECT_LE(summary.p99, summary.max);
}

TEST(DbServiceTest, BackpressureRejectReturnsResourceExhausted) {
  const DatabaseSpec spec = SmallKvSpec();
  NvmDevice device(ShadowDeviceConfig(spec));
  ServiceSpec sspec;
  sspec.max_epoch_txns = 1;
  sspec.max_epoch_delay = std::chrono::microseconds(0);
  sspec.queue_capacity = 2;
  sspec.backpressure = BackpressurePolicy::kReject;
  DbService svc(MakeLoadedDb(device, spec), sspec);

  // The slow transaction occupies the pacer; the queue then fills behind it.
  auto slow = svc.Submit(std::make_unique<SlowPutTxn>(0, std::chrono::milliseconds(400)));
  ASSERT_TRUE(slow.ok());
  // Give the pacer time to move the slow txn from the queue into its epoch.
  while (svc.queue_depth() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(svc.Submit(std::make_unique<KvPutTxn>(1, 1)).ok());
  ASSERT_TRUE(svc.Submit(std::make_unique<KvPutTxn>(2, 2)).ok());
  const auto rejected = svc.Submit(std::make_unique<KvPutTxn>(3, 3));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(svc.Drain().ok());
}

TEST(DbServiceTest, BackpressureBlockEventuallyAdmits) {
  const DatabaseSpec spec = SmallKvSpec();
  NvmDevice device(ShadowDeviceConfig(spec));
  ServiceSpec sspec;
  sspec.max_epoch_txns = 1;
  sspec.max_epoch_delay = std::chrono::microseconds(0);
  sspec.queue_capacity = 1;
  sspec.backpressure = BackpressurePolicy::kBlock;
  DbService svc(MakeLoadedDb(device, spec), sspec);

  auto slow = svc.Submit(std::make_unique<SlowPutTxn>(0, std::chrono::milliseconds(200)));
  ASSERT_TRUE(slow.ok());
  while (svc.queue_depth() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(svc.Submit(std::make_unique<KvPutTxn>(1, 1)).ok());  // fills the queue
  // Blocks until the slow epoch finishes and the pacer pops the queue.
  const auto blocked = svc.Submit(std::make_unique<KvPutTxn>(2, 2));
  ASSERT_TRUE(blocked.ok());
  ASSERT_TRUE(svc.Drain().ok());
  EXPECT_EQ(blocked->Get().outcome, TicketOutcome::kCommitted);
}

// Crash-during-drain: every unresolved ticket fails with the crash status,
// Drain surfaces it, and recovery over the same device replays the crashed
// epoch to the exact crash-free reference state.
TEST(DbServiceTest, CrashDuringDrainFailsTicketsAndRecoversToReference) {
  const DatabaseSpec spec = SmallKvSpec();
  constexpr std::size_t kBatch = 8;
  constexpr std::size_t kTotal = 3 * kBatch;

  NvmDevice device(ShadowDeviceConfig(spec));
  auto db = MakeLoadedDb(device, spec);
  // Crash in the third service epoch, after its input log is durable.
  int persists = 0;
  db->SetCrashHook([&persists](CrashSite site) {
    return site == CrashSite::kBeforeEpochPersist && ++persists == 3;
  });

  ServiceSpec sspec;
  sspec.max_epoch_txns = kBatch;
  sspec.max_epoch_delay = std::chrono::microseconds(60'000'000);
  sspec.queue_capacity = kTotal;
  DbService svc(std::move(db), sspec);
  std::vector<TxnTicket> tickets;
  for (std::size_t i = 0; i < kTotal; ++i) {
    auto ticket = svc.Submit(MakeTxn(i));
    ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
    tickets.push_back(*ticket);
  }
  const Status drained = svc.Drain();
  ASSERT_FALSE(drained.ok());
  EXPECT_EQ(drained.code(), StatusCode::kDataLoss);
  EXPECT_EQ(svc.health(), drained);
  // The first two epochs committed; the crashed epoch's tickets failed.
  for (std::size_t i = 0; i < 2 * kBatch; ++i) {
    EXPECT_NE(tickets[i].Get().outcome, TicketOutcome::kFailed) << "txn " << i;
  }
  for (std::size_t i = 2 * kBatch; i < kTotal; ++i) {
    const TicketResult& r = tickets[i].Get();
    EXPECT_EQ(r.outcome, TicketOutcome::kFailed) << "txn " << i;
    EXPECT_EQ(r.status.code(), StatusCode::kDataLoss) << "txn " << i;
  }
  const auto refused = svc.Submit(MakeTxn(0));
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kDataLoss);

  // Drop DRAM + unflushed lines, recover, and replay from the input log.
  svc.TakeDatabase().reset();
  device.Crash();
  Database recovered(device, spec);
  const auto report = recovered.Recover(KvRegistry());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->replayed);  // the log was complete before the crash

  // Crash-free reference over the same stream and cuts.
  NvmDevice ref_device(ShadowDeviceConfig(spec));
  auto ref = MakeLoadedDb(ref_device, spec);
  for (std::size_t base = 0; base < kTotal; base += kBatch) {
    std::vector<std::unique_ptr<txn::Transaction>> batch;
    for (std::size_t i = base; i < base + kBatch; ++i) {
      batch.push_back(MakeTxn(i));
    }
    ref->ExecuteEpoch(std::move(batch));
  }
  std::string diff;
  const OracleState expected = CaptureState(*ref);
  const OracleState actual = CaptureState(recovered);
  EXPECT_EQ(DiffStates(expected, actual, &diff), 0u) << diff;
  EXPECT_EQ(StateHash(expected), StateHash(actual));
}

TEST(DbServiceTest, AriaDeferredTicketsResolveAcrossFlushEpochs) {
  DatabaseSpec spec = SmallKvSpec();
  spec.concurrency = core::ConcurrencyControl::kAria;
  NvmDevice device(ShadowDeviceConfig(spec));
  ServiceSpec sspec;
  sspec.max_epoch_txns = 3;
  sspec.max_epoch_delay = std::chrono::microseconds(60'000'000);
  DbService svc(MakeLoadedDb(device, spec), sspec);

  // Three writers to one key: Aria commits the smallest sid per batch and
  // defers the rest, so the tickets resolve over three epochs in order.
  auto t1 = svc.Submit(std::make_unique<KvPutTxn>(3, 1111));
  auto t2 = svc.Submit(std::make_unique<KvPutTxn>(3, 2222));
  auto t3 = svc.Submit(std::make_unique<KvPutTxn>(3, 3333));
  ASSERT_TRUE(t1.ok() && t2.ok() && t3.ok());
  ASSERT_TRUE(svc.Drain().ok());

  const TicketResult& r1 = t1->Get();
  const TicketResult& r2 = t2->Get();
  const TicketResult& r3 = t3->Get();
  EXPECT_EQ(r1.outcome, TicketOutcome::kCommitted);
  EXPECT_EQ(r2.outcome, TicketOutcome::kCommitted);
  EXPECT_EQ(r3.outcome, TicketOutcome::kCommitted);
  EXPECT_EQ(r1.deferrals, 0u);
  EXPECT_EQ(r2.deferrals, 1u);
  EXPECT_EQ(r3.deferrals, 2u);
  EXPECT_LT(r1.epoch, r2.epoch);
  EXPECT_LT(r2.epoch, r3.epoch);

  auto db = svc.TakeDatabase();
  EXPECT_EQ(ReadU64(*db, 0, 3), 3333u);  // submission order won
}

// TSan target: concurrent submitters over the full Submit/ticket/Drain
// surface. Each thread owns one key, so per-key values are totally ordered
// by that thread's submission order.
TEST(DbServiceTest, ConcurrentSubmitters) {
  const DatabaseSpec spec = SmallKvSpec();
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 50;
  NvmDevice device(ShadowDeviceConfig(spec));
  ServiceSpec sspec;
  sspec.max_epoch_txns = 16;
  sspec.max_epoch_delay = std::chrono::microseconds(500);
  sspec.queue_capacity = 64;
  DbService svc(MakeLoadedDb(device, spec), sspec);

  std::atomic<std::size_t> committed{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        auto ticket = svc.Submit(std::make_unique<KvPutTxn>(t, t * 1000 + i));
        ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
        if (ticket->Get().outcome == TicketOutcome::kCommitted) {
          committed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  ASSERT_TRUE(svc.Drain().ok());
  EXPECT_EQ(committed.load(), kThreads * kPerThread);
  const LatencySummary summary = svc.LatencySnapshot();
  EXPECT_EQ(summary.count, kThreads * kPerThread);

  auto db = svc.TakeDatabase();
  for (std::size_t t = 0; t < kThreads; ++t) {
    // Tickets resolve in submission order, so the thread's last write wins.
    EXPECT_EQ(ReadU64(*db, 0, t), t * 1000 + (kPerThread - 1));
  }
}

// A database handed over mid-instant-recovery: Submit during the backfill
// window returns kUnavailable with a retry-after hint, the pacer retires the
// backfill on its own, and a client that backs off is eventually admitted.
TEST(DbServiceTest, InstantRecoveryWindowRefusesSubmitsThenAdmits) {
  DatabaseSpec spec = SmallKvSpec();
  spec.enable_instant_recovery = true;
  NvmDevice device(ShadowDeviceConfig(spec));
  {
    auto db = MakeLoadedDb(device, spec);
    int persists = 0;
    db->SetCrashHook([&persists](CrashSite site) {
      return site == CrashSite::kBeforeEpochPersist && ++persists == 2;
    });
    for (std::uint64_t e = 1; e <= 2; ++e) {
      std::vector<std::unique_ptr<txn::Transaction>> batch;
      for (Key key = 0; key < kLoadedRows; ++key) {
        batch.push_back(std::make_unique<KvPutTxn>(key, 100 * e + key));
      }
      db->ExecuteEpoch(std::move(batch));
    }
  }
  device.Crash();

  auto db = std::make_unique<Database>(device, spec);
  const auto report = db->Recover(KvRegistry());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report->instant);

  // Throttle the pacer's backfill (the hook runs once per pending key) so
  // the window is reliably open when the first Submit lands.
  std::atomic<bool> throttle{true};
  db->SetCrashHook([&throttle](CrashSite site) {
    if (site == CrashSite::kMidBackfill && throttle.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return false;
  });

  ServiceSpec sspec;
  sspec.max_epoch_txns = 4;
  sspec.max_epoch_delay = std::chrono::microseconds(1000);
  DbService svc(std::move(db), sspec);
  EXPECT_TRUE(svc.recovering());

  const auto refused = svc.Submit(std::make_unique<KvPutTxn>(0, 999));
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(refused.status().message().find("retry after"), std::string::npos)
      << refused.status().ToString();
  throttle.store(false);

  StatusOr<TxnTicket> admitted = svc.Submit(std::make_unique<KvPutTxn>(0, 999));
  while (!admitted.ok()) {
    ASSERT_EQ(admitted.status().code(), StatusCode::kUnavailable);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    admitted = svc.Submit(std::make_unique<KvPutTxn>(0, 999));
  }
  EXPECT_FALSE(svc.recovering());
  ASSERT_TRUE(svc.Drain().ok());
  EXPECT_EQ(admitted->Get().outcome, TicketOutcome::kCommitted);

  auto recovered = svc.TakeDatabase();
  recovered->SetCrashHook({});
  EXPECT_FALSE(recovered->instant_recovery_pending());
  EXPECT_EQ(ReadU64(*recovered, 0, 0), 999u);
  EXPECT_EQ(ReadU64(*recovered, 0, 1), 201u);  // the crashed epoch's write
}

TEST(DbServiceTest, StopRefusesFurtherSubmissions) {
  const DatabaseSpec spec = SmallKvSpec();
  NvmDevice device(ShadowDeviceConfig(spec));
  DbService svc(MakeLoadedDb(device, spec), ServiceSpec{});
  auto ticket = svc.Submit(std::make_unique<KvPutTxn>(0, 7));
  ASSERT_TRUE(ticket.ok());
  ASSERT_TRUE(svc.Stop().ok());
  EXPECT_EQ(ticket->Get().outcome, TicketOutcome::kCommitted);  // drained first
  const auto refused = svc.Submit(std::make_unique<KvPutTxn>(1, 8));
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kUnavailable);
}

TEST(DbServiceTest, SpecValidationRejectsBadThresholds) {
  ServiceSpec bad;
  bad.max_epoch_txns = 0;
  EXPECT_EQ(bad.Validate().code(), StatusCode::kInvalidArgument);
  bad = ServiceSpec{};
  bad.queue_capacity = 4;
  bad.max_epoch_txns = 8;
  EXPECT_EQ(bad.Validate().code(), StatusCode::kInvalidArgument);

  const DatabaseSpec spec = SmallKvSpec();
  NvmDevice device(ShadowDeviceConfig(spec));
  EXPECT_THROW(DbService(MakeLoadedDb(device, spec), bad), std::invalid_argument);
  EXPECT_THROW(DbService(nullptr, ServiceSpec{}), std::invalid_argument);
}

}  // namespace
}  // namespace nvc::test
