// Simulated NVMM device: persistence semantics (persist + fence), crash
// behaviour (deterministic and chaos), accounting granularity, and the
// file-backed mode.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <vector>

#include "src/sim/nvm_device.h"

namespace nvc::test {
namespace {

using sim::CrashTracking;
using sim::LatencyProfile;
using sim::NvmConfig;
using sim::NvmDevice;

NvmConfig ShadowConfig(std::size_t bytes = 1 << 16) {
  NvmConfig config;
  config.size_bytes = bytes;
  config.crash_tracking = CrashTracking::kShadow;
  return config;
}

TEST(NvmDeviceTest, UnpersistedWritesAreLostOnCrash) {
  NvmDevice device(ShadowConfig());
  std::memset(device.At(0), 0xAB, 128);
  device.Crash();
  EXPECT_EQ(device.At(0)[0], 0);
  EXPECT_EQ(device.At(0)[127], 0);
}

TEST(NvmDeviceTest, PersistWithoutFenceIsLostOnCrash) {
  NvmDevice device(ShadowConfig());
  std::memset(device.At(0), 0xAB, 128);
  device.Persist(0, 128, 0);
  // No fence: the flush was initiated but not ordered/completed.
  device.Crash();
  EXPECT_EQ(device.At(0)[0], 0);
}

TEST(NvmDeviceTest, PersistPlusFenceSurvivesCrash) {
  NvmDevice device(ShadowConfig());
  std::memset(device.At(0), 0xAB, 128);
  device.Persist(0, 128, 0);
  device.Fence(0);
  std::memset(device.At(256), 0xCD, 64);  // dirty, unpersisted
  device.Crash();
  EXPECT_EQ(device.At(0)[0], 0xAB);
  EXPECT_EQ(device.At(0)[127], 0xAB);
  EXPECT_EQ(device.At(256)[0], 0);
}

TEST(NvmDeviceTest, PersistenceIsLineGranular) {
  NvmDevice device(ShadowConfig());
  // Dirty two adjacent lines; persist only part of the first one.
  std::memset(device.At(0), 0x11, 128);
  device.Persist(8, 8, 0);  // within line 0
  device.Fence(0);
  device.Crash();
  // The whole first line was written back; the second was not.
  EXPECT_EQ(device.At(0)[0], 0x11);
  EXPECT_EQ(device.At(0)[63], 0x11);
  EXPECT_EQ(device.At(64)[0], 0);
}

TEST(NvmDeviceTest, FenceIsPerCore) {
  NvmDevice device(ShadowConfig());
  std::memset(device.At(0), 0x22, 64);
  std::memset(device.At(64), 0x33, 64);
  device.Persist(0, 64, /*core=*/0);
  device.Persist(64, 64, /*core=*/1);
  device.Fence(/*core=*/0);  // only core 0's staged persists become durable
  device.Crash();
  EXPECT_EQ(device.At(0)[0], 0x22);
  EXPECT_EQ(device.At(64)[0], 0);
}

TEST(NvmDeviceTest, FenceAllDrainsEveryCoreForOneFence) {
  NvmDevice device(ShadowConfig());
  std::memset(device.At(0), 0x44, 64);
  std::memset(device.At(64), 0x55, 64);
  std::memset(device.At(128), 0x66, 64);
  device.Persist(0, 64, /*core=*/0);
  device.Persist(64, 64, /*core=*/1);
  device.Persist(128, 64, /*core=*/3);
  const std::uint64_t fences_before = device.stats().fences.Sum();
  device.FenceAll(/*core_for_stats=*/0);
  EXPECT_EQ(device.stats().fences.Sum(), fences_before + 1);
  device.Crash();
  // All cores' staged persists became durable at the single barrier.
  EXPECT_EQ(device.At(0)[0], 0x44);
  EXPECT_EQ(device.At(64)[0], 0x55);
  EXPECT_EQ(device.At(128)[0], 0x66);
}

TEST(NvmDeviceTest, ChaosCrashKeepsSubsetDeterministically) {
  auto run = [](std::uint64_t seed) {
    NvmDevice device(ShadowConfig());
    std::memset(device.At(0), 0x77, 4096);  // 64 dirty lines, none persisted
    device.CrashChaos(seed, 0.5);
    std::size_t survived = 0;
    for (std::size_t line = 0; line < 4096; line += kCacheLineSize) {
      if (device.At(line)[0] == 0x77) {
        ++survived;
      }
    }
    return survived;
  };
  const std::size_t a1 = run(5);
  const std::size_t a2 = run(5);
  const std::size_t b = run(6);
  EXPECT_EQ(a1, a2);      // deterministic from the seed
  EXPECT_GT(a1, 8u);      // roughly half survive
  EXPECT_LT(a1, 56u);
  EXPECT_NE(a1, b);       // different seeds differ (overwhelmingly likely)
}

TEST(NvmDeviceTest, ChaosSurvivorsBecomePartOfPersistedImage) {
  NvmDevice device(ShadowConfig());
  std::memset(device.At(0), 0x55, 64);
  device.CrashChaos(/*seed=*/1, /*keep_probability=*/1.0);
  EXPECT_EQ(device.At(0)[0], 0x55);
  // A second crash must not revert the line that already survived.
  device.Crash();
  EXPECT_EQ(device.At(0)[0], 0x55);
}

TEST(NvmDeviceTest, ReadAccountingUses256ByteGranules) {
  NvmDevice device(NvmConfig{.size_bytes = 1 << 16});
  device.ChargeRead(0, 1, 0);
  EXPECT_EQ(device.stats().read_granules.Sum(), 1u);
  device.ChargeRead(255, 2, 0);  // straddles two granules
  EXPECT_EQ(device.stats().read_granules.Sum(), 3u);
  device.ChargeRead(0, 1024, 0);  // four granules
  EXPECT_EQ(device.stats().read_granules.Sum(), 7u);
  EXPECT_EQ(device.stats().read_bytes.Sum(), 1027u);
}

TEST(NvmDeviceTest, PersistAccountingUses64ByteLines) {
  NvmDevice device(NvmConfig{.size_bytes = 1 << 16});
  device.Persist(0, 1, 0);
  EXPECT_EQ(device.stats().persisted_lines.Sum(), 1u);
  device.Persist(63, 2, 0);  // straddles two lines
  EXPECT_EQ(device.stats().persisted_lines.Sum(), 3u);
  EXPECT_EQ(device.stats().persist_ops.Sum(), 2u);
}

TEST(NvmDeviceTest, LatencyInjectionSlowsOperations) {
  NvmConfig fast_config{.size_bytes = 1 << 16};
  NvmConfig slow_config{.size_bytes = 1 << 16};
  slow_config.latency = LatencyProfile{.read_ns_per_granule = 2000,
                                       .write_ns_per_line = 2000,
                                       .fence_ns = 2000};
  NvmDevice fast(fast_config);
  NvmDevice slow(slow_config);

  auto time_reads = [](NvmDevice& device) {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < 1000; ++i) {
      device.ChargeRead(0, 256, 0);
    }
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  };
  const double fast_seconds = time_reads(fast);
  const double slow_seconds = time_reads(slow);
  // 1000 x 2000 ns = 2 ms minimum for the slow device.
  EXPECT_GT(slow_seconds, 0.0015);
  EXPECT_GT(slow_seconds, fast_seconds * 2);
}

TEST(NvmDeviceTest, ScaledProfile) {
  const LatencyProfile base = LatencyProfile::Optane();
  const LatencyProfile half = base.Scaled(0.5);
  EXPECT_EQ(half.read_ns_per_granule, base.read_ns_per_granule / 2);
  EXPECT_EQ(half.write_ns_per_line, base.write_ns_per_line / 2);
}

TEST(NvmDeviceTest, FileBackedPersistsAcrossReopen) {
  const std::string path = "/tmp/nvc_device_test.pool";
  std::filesystem::remove(path);
  {
    NvmConfig config{.size_bytes = 1 << 16};
    config.backing_file = path;
    NvmDevice device(config);
    EXPECT_FALSE(device.recovered_existing_file());
    std::memset(device.At(128), 0x5A, 64);
  }
  {
    NvmConfig config{.size_bytes = 1 << 16};
    config.backing_file = path;
    NvmDevice device(config);
    EXPECT_TRUE(device.recovered_existing_file());
    EXPECT_EQ(device.At(128)[0], 0x5A);
  }
  std::filesystem::remove(path);
}

TEST(NvmDeviceTest, SyntheticChargesCountStats) {
  NvmDevice device(NvmConfig{.size_bytes = 1 << 16});
  device.ChargeSyntheticRead(512, 0);
  device.ChargeSyntheticWrite(100, 0);
  EXPECT_EQ(device.stats().read_granules.Sum(), 2u);
  EXPECT_EQ(device.stats().persisted_lines.Sum(), 2u);
}

TEST(NvmDeviceTest, ZeroLengthChargesAreFree) {
  // A zero-length charge used to reach GranulesTouched with n == 0, where
  // `offset + n - 1` underflows and bills ~2^64/granule granules (an
  // effectively infinite busy-wait when latency injection is on).
  NvmConfig config{.size_bytes = 1 << 16};
  config.latency = LatencyProfile{.read_ns_per_granule = 1'000'000'000,
                                  .write_ns_per_line = 1'000'000'000,
                                  .fence_ns = 0};
  NvmDevice device(config);
  device.ChargeRead(0, 0, 0);
  device.Persist(0, 0, 0);
  device.ChargeSyntheticRead(0, 0);
  device.ChargeSyntheticWrite(0, 0);
  EXPECT_EQ(device.stats().read_granules.Sum(), 0u);
  EXPECT_EQ(device.stats().read_bytes.Sum(), 0u);
  EXPECT_EQ(device.stats().persisted_lines.Sum(), 0u);
  EXPECT_EQ(device.stats().persist_ops.Sum(), 0u);
}

TEST(NvmDeviceTest, TornCrashTearsOnlyStagedRanges) {
  NvmDevice device(ShadowConfig());
  // Line 0: dirty and staged (clwb issued, no fence) — eligible to survive.
  std::memset(device.At(0), 0xA1, 64);
  device.Persist(0, 64, 0);
  // Line at 256: dirty but never persisted — must always revert.
  std::memset(device.At(256), 0xB2, 64);
  device.CrashTorn(/*seed=*/3, /*keep_probability=*/1.0);
  EXPECT_EQ(device.At(0)[0], 0xA1);
  EXPECT_EQ(device.At(256)[0], 0);
  // Survivors joined the persisted image: a later crash keeps them.
  device.Crash();
  EXPECT_EQ(device.At(0)[0], 0xA1);
}

TEST(NvmDeviceTest, TornCrashDropsEverythingAtZeroKeepProbability) {
  NvmDevice device(ShadowConfig());
  std::memset(device.At(0), 0xC3, 512);
  device.Persist(0, 512, 0);
  device.CrashTorn(/*seed=*/4, /*keep_probability=*/0.0);
  for (std::size_t i = 0; i < 512; i += 64) {
    EXPECT_EQ(device.At(i)[0], 0) << "line " << i;
  }
}

TEST(NvmDeviceTest, TornCrashSplitsMultiLinePersistDeterministically) {
  auto run = [](std::uint64_t seed) {
    NvmDevice device(ShadowConfig());
    // One 16-line staged persist (a multi-line value + header write).
    std::memset(device.At(0), 0xD4, 1024);
    device.Persist(0, 1024, 0);
    device.CrashTorn(seed, 0.5);
    std::vector<bool> survived;
    for (std::size_t line = 0; line < 1024; line += kCacheLineSize) {
      survived.push_back(device.At(line)[0] == 0xD4);
    }
    return survived;
  };
  const auto a1 = run(9);
  const auto a2 = run(9);
  EXPECT_EQ(a1, a2);  // deterministic from the seed
  const std::size_t kept = static_cast<std::size_t>(
      std::count(a1.begin(), a1.end(), true));
  EXPECT_GT(kept, 0u);   // with p=0.5 over 16 lines, all-or-nothing is
  EXPECT_LT(kept, 16u);  // astronomically unlikely for this seed
}

TEST(NvmDeviceTest, TornCrashIsPerCoreIndependent) {
  NvmDevice device(ShadowConfig());
  std::memset(device.At(0), 0xE5, 64);
  std::memset(device.At(1024), 0xE6, 64);
  device.Persist(0, 64, /*core=*/0);
  device.Persist(1024, 64, /*core=*/1);
  device.Fence(/*core=*/0);  // core 0's line is already durable
  device.CrashTorn(/*seed=*/11, /*keep_probability=*/0.0);
  EXPECT_EQ(device.At(0)[0], 0xE5);    // fenced before the crash
  EXPECT_EQ(device.At(1024)[0], 0);    // staged on core 1, torn away
}

}  // namespace
}  // namespace nvc::test
