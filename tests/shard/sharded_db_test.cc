// Multi-shard database: shared partitioner routing, cross-shard transfers
// through the fixed-point read exchange, router deferrals, crash/recovery to
// one consistent global epoch, per-shard ledger identity against standalone
// engines, and the stats/profiler roll-ups.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "src/common/partition.h"
#include "src/core/oracle.h"
#include "src/shard/sharded_db.h"
#include "src/service/sharded_service.h"
#include "tests/test_util.h"

namespace nvc::test {
namespace {

using core::DatabaseSpec;
using core::TxnOutcome;
using shard::ShardedDatabase;
using shard::ShardedEpochResult;
using sim::NvmDevice;

sim::NvmConfig ShardDeviceConfig(const DatabaseSpec& base) {
  sim::NvmConfig config;
  config.size_bytes = ShardedDatabase::RequiredDeviceBytes(base);
  config.crash_tracking = sim::CrashTracking::kShadow;
  return config;
}

// N shard devices + a ShardedDatabase, bulk-loaded with `rows` keys holding
// 1000 + key (same seed state as the single-engine suites).
struct ShardedFixture {
  DatabaseSpec base;
  std::vector<std::unique_ptr<NvmDevice>> owned;
  std::vector<NvmDevice*> devices;
  std::unique_ptr<ShardedDatabase> db;

  explicit ShardedFixture(std::size_t shards, DatabaseSpec spec = SmallKvSpec())
      : base(std::move(spec)) {
    for (std::size_t s = 0; s < shards; ++s) {
      owned.push_back(std::make_unique<NvmDevice>(ShardDeviceConfig(base)));
      devices.push_back(owned.back().get());
    }
    db = std::make_unique<ShardedDatabase>(devices, base);
    db->Format();
  }

  void Load(std::size_t rows) {
    for (std::size_t i = 0; i < rows; ++i) {
      const std::uint64_t value = 1000 + i;
      db->BulkLoad(0, i, &value, sizeof(value));
    }
    db->FinalizeLoad();
  }

  std::uint64_t Read(Key key) {
    std::uint64_t value = 0;
    const auto n = db->ReadCommitted(0, key, &value, sizeof(value));
    return n.ok() ? value : ~0ULL;
  }
};

// First pair of keys < limit owned by different shards.
std::pair<Key, Key> CrossShardPair(const ShardedDatabase& db, Key limit) {
  const std::size_t home = db.OwnerOf(0, 0);
  for (Key k = 1; k < limit; ++k) {
    if (db.OwnerOf(0, k) != home) {
      return {0, k};
    }
  }
  ADD_FAILURE() << "no cross-shard key pair below " << limit;
  return {0, 0};
}

TEST(ShardSpecTest, RejectsUnsupportedModesAndForcesSynchronousEpochs) {
  DatabaseSpec base = SmallKvSpec();
  base.enable_epoch_pipeline = true;
  base.enable_instant_recovery = true;
  const DatabaseSpec normalized = ShardedDatabase::ShardSpec(base);
  EXPECT_FALSE(normalized.enable_epoch_pipeline);
  EXPECT_FALSE(normalized.enable_instant_recovery);

  DatabaseSpec aria = SmallKvSpec();
  aria.concurrency = core::ConcurrencyControl::kAria;
  EXPECT_THROW(ShardedDatabase::ShardSpec(aria), std::invalid_argument);

  DatabaseSpec counters = SmallKvSpec();
  counters.counters.push_back(0);
  EXPECT_THROW(ShardedDatabase::ShardSpec(counters), std::invalid_argument);
}

TEST(ShardedDatabaseTest, PartitionerRoutesLoadAndReads) {
  ShardedFixture f(2);
  f.Load(64);
  for (Key k = 0; k < 64; ++k) {
    ASSERT_EQ(f.db->OwnerOf(0, k), PartitionOf(0, k, 2));
    ASSERT_EQ(f.Read(k), 1000 + k);
    // The row lives only on its owner shard.
    std::uint64_t value = 0;
    core::Database& owner = f.db->shard(f.db->OwnerOf(0, k));
    core::Database& other = f.db->shard(1 - f.db->OwnerOf(0, k));
    EXPECT_TRUE(owner.ReadCommitted(0, k, &value, sizeof(value)).ok());
    EXPECT_FALSE(other.ReadCommitted(0, k, &value, sizeof(value)).ok());
  }
}

TEST(ShardedDatabaseTest, SingleShardTransactionsPassThrough) {
  ShardedFixture f(2);
  f.Load(16);
  std::vector<std::unique_ptr<txn::Transaction>> txns;
  txns.push_back(std::make_unique<KvPutTxn>(3, 42));
  txns.push_back(std::make_unique<KvRmwTxn>(5, 7));  // 1005 * 3 + 7
  std::vector<TxnOutcome> outcomes;
  const ShardedEpochResult result = f.db->ExecuteEpoch(std::move(txns), &outcomes);
  EXPECT_EQ(result.committed, 2u);
  EXPECT_EQ(result.aborted, 0u);
  EXPECT_EQ(result.deferred, 0u);
  EXPECT_EQ(result.cross_shard, 0u);
  EXPECT_FALSE(result.crashed);
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_EQ(outcomes[0], TxnOutcome::kCommitted);
  EXPECT_EQ(outcomes[1], TxnOutcome::kCommitted);
  EXPECT_EQ(f.Read(3), 42u);
  EXPECT_EQ(f.Read(5), 1005u * 3 + 7);
}

TEST(ShardedDatabaseTest, CrossShardTransferMovesBalanceOnce) {
  ShardedFixture f(2);
  f.Load(32);
  const auto [a, b] = CrossShardPair(*f.db, 32);
  const std::uint64_t a0 = f.Read(a);
  const std::uint64_t b0 = f.Read(b);
  std::vector<std::unique_ptr<txn::Transaction>> txns;
  txns.push_back(std::make_unique<KvXferTxn>(a, b, 100));
  std::vector<TxnOutcome> outcomes;
  const ShardedEpochResult result = f.db->ExecuteEpoch(std::move(txns), &outcomes);
  EXPECT_EQ(result.committed, 1u);
  EXPECT_EQ(result.cross_shard, 1u);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0], TxnOutcome::kCommitted);
  EXPECT_EQ(f.Read(a), a0 - 100);
  EXPECT_EQ(f.Read(b), b0 + 100);
}

TEST(ShardedDatabaseTest, CrossShardTransferUserAbortsOnInsufficientFunds) {
  ShardedFixture f(2);
  f.Load(32);
  const auto [a, b] = CrossShardPair(*f.db, 32);
  const std::uint64_t a0 = f.Read(a);
  const std::uint64_t b0 = f.Read(b);
  std::vector<std::unique_ptr<txn::Transaction>> txns;
  txns.push_back(std::make_unique<KvXferTxn>(a, b, a0 + 1));
  std::vector<TxnOutcome> outcomes;
  const ShardedEpochResult result = f.db->ExecuteEpoch(std::move(txns), &outcomes);
  EXPECT_EQ(result.committed, 0u);
  EXPECT_EQ(result.aborted, 1u);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0], TxnOutcome::kAborted);
  EXPECT_EQ(f.Read(a), a0);
  EXPECT_EQ(f.Read(b), b0);
}

TEST(ShardedDatabaseTest, RouterDefersCrossShardReadOfSameEpochWrite) {
  ShardedFixture f(2);
  f.Load(32);
  const auto [a, b] = CrossShardPair(*f.db, 32);
  const std::uint64_t b0 = f.Read(b);
  // The put precedes the transfer in serial order, so the transfer's
  // pre-epoch snapshot of `a` would be stale: it must defer.
  std::vector<std::unique_ptr<txn::Transaction>> txns;
  txns.push_back(std::make_unique<KvPutTxn>(a, 5000));
  txns.push_back(std::make_unique<KvXferTxn>(a, b, 700));
  std::vector<TxnOutcome> outcomes;
  const ShardedEpochResult r1 = f.db->ExecuteEpoch(std::move(txns), &outcomes);
  EXPECT_EQ(r1.committed, 1u);
  EXPECT_EQ(r1.deferred, 1u);
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_EQ(outcomes[0], TxnOutcome::kCommitted);
  EXPECT_EQ(outcomes[1], TxnOutcome::kDeferred);
  EXPECT_EQ(f.db->deferred_depth(), 1u);
  EXPECT_EQ(f.Read(a), 5000u);
  EXPECT_EQ(f.Read(b), b0);

  // A flush epoch with no new input re-runs the deferral; the deferred slot
  // comes first in the outcome vector.
  const ShardedEpochResult r2 = f.db->ExecuteEpoch({}, &outcomes);
  EXPECT_EQ(r2.committed, 1u);
  EXPECT_EQ(r2.deferred, 0u);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0], TxnOutcome::kCommitted);
  EXPECT_EQ(f.db->deferred_depth(), 0u);
  EXPECT_EQ(f.Read(a), 5000u - 700);
  EXPECT_EQ(f.Read(b), b0 + 700);
}

TEST(ShardedDatabaseTest, SingleShardTransactionsNeverDefer) {
  ShardedFixture f(2);
  f.Load(32);
  // Write-then-read on one shard is handled by the engine's own serial
  // order; the router must not defer it.
  std::vector<std::unique_ptr<txn::Transaction>> txns;
  txns.push_back(std::make_unique<KvPutTxn>(3, 9));
  txns.push_back(std::make_unique<KvRmwTxn>(3, 1));  // 9 * 3 + 1
  const ShardedEpochResult result = f.db->ExecuteEpoch(std::move(txns));
  EXPECT_EQ(result.committed, 2u);
  EXPECT_EQ(result.deferred, 0u);
  EXPECT_EQ(f.Read(3), 28u);
}

// Mixed deterministic stream: single-shard puts/RMWs plus cross-shard
// transfers with no same-epoch read-write conflicts (keys disjoint per
// epoch), so outcomes are crash-position independent.
std::vector<std::unique_ptr<txn::Transaction>> EpochBatch(const ShardedDatabase& db,
                                                          std::uint64_t epoch_seed) {
  std::vector<std::unique_ptr<txn::Transaction>> txns;
  const auto pair = CrossShardPair(db, 32);
  txns.push_back(std::make_unique<KvXferTxn>(pair.first, pair.second, 1 + epoch_seed % 5));
  for (std::uint64_t i = 0; i < 6; ++i) {
    const Key k = 2 + ((epoch_seed * 7 + i) % 28);
    if (i % 2 == 0) {
      txns.push_back(std::make_unique<KvPutTxn>(k, epoch_seed * 100 + i));
    } else {
      txns.push_back(std::make_unique<KvRmwTxn>(k, epoch_seed + i));
    }
  }
  return txns;
}

std::vector<core::OracleState> CaptureShards(ShardedDatabase& db) {
  std::vector<core::OracleState> states;
  for (std::size_t s = 0; s < db.shards(); ++s) {
    states.push_back(core::CaptureState(db.shard(s)));
  }
  return states;
}

// Multi-worker shards: each shard engine runs its sub-batch on its own
// worker pool while the shard threads coordinate through the exchange and
// epoch barriers. State must match a 1-worker fleet executing the same
// stream (worker count is not allowed to change outcomes). Primarily run
// under TSan in CI to exercise worker x shard thread interleavings.
TEST(ShardedDatabaseTest, MultiWorkerShardsMatchSingleWorkerFleet) {
  ShardedFixture multi(2, SmallKvSpec(/*workers=*/2));
  ShardedFixture single(2, SmallKvSpec(/*workers=*/1));
  multi.Load(32);
  single.Load(32);
  for (std::uint64_t e = 0; e < 4; ++e) {
    const ShardedEpochResult rm = multi.db->ExecuteEpoch(EpochBatch(*multi.db, e));
    const ShardedEpochResult rs = single.db->ExecuteEpoch(EpochBatch(*single.db, e));
    ASSERT_FALSE(rm.crashed);
    ASSERT_FALSE(rs.crashed);
    EXPECT_EQ(rm.committed, rs.committed);
    EXPECT_EQ(rm.aborted, rs.aborted);
    EXPECT_EQ(rm.cross_shard, rs.cross_shard);
  }
  std::string diff;
  EXPECT_EQ(core::DiffShardedStates(CaptureShards(*single.db), CaptureShards(*multi.db), &diff),
            0u)
      << diff;
  for (Key k = 0; k < 32; ++k) {
    EXPECT_EQ(multi.Read(k), single.Read(k)) << "key " << k;
  }
}

// Crash at the shard-layer exchange site: nothing of the crashed epoch is
// logged anywhere, so recovery lands on the pre-crash epoch; resuming the
// lost batch converges with a crash-free reference.
TEST(ShardedRecoveryTest, ExchangeCrashRecoversToPreviousEpochAndConverges) {
  ShardedFixture crashed(2);
  crashed.Load(32);
  ShardedFixture reference(2);
  reference.Load(32);

  for (std::uint64_t e = 0; e < 3; ++e) {
    ASSERT_FALSE(crashed.db->ExecuteEpoch(EpochBatch(*crashed.db, e)).crashed);
    ASSERT_FALSE(reference.db->ExecuteEpoch(EpochBatch(*reference.db, e)).crashed);
  }

  crashed.db->SetCrashHook([](std::size_t shard, core::CrashSite site) {
    return shard == 1 && site == core::CrashSite::kMidShardExchange;
  });
  const ShardedEpochResult r = crashed.db->ExecuteEpoch(EpochBatch(*crashed.db, 3));
  ASSERT_TRUE(r.crashed);
  const auto coverage = crashed.db->crash_coverage();
  EXPECT_GE(coverage.fired[static_cast<std::size_t>(core::CrashSite::kMidShardExchange)], 1u);

  crashed.db.reset();
  for (auto& device : crashed.owned) {
    device->Crash();
  }
  auto recovered = std::make_unique<ShardedDatabase>(crashed.devices, crashed.base);
  const auto report = recovered->Recover(KvRegistry());
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_FALSE(report->replayed);

  // Pre-crash state matches the reference before its 4th batch.
  EXPECT_EQ(core::MultiShardStateHash(CaptureShards(*recovered)),
            core::MultiShardStateHash(CaptureShards(*reference.db)));

  // Resume the lost batch on both; full convergence.
  ASSERT_FALSE(recovered->ExecuteEpoch(EpochBatch(*recovered, 3)).crashed);
  ASSERT_FALSE(reference.db->ExecuteEpoch(EpochBatch(*reference.db, 3)).crashed);
  std::string diff;
  EXPECT_EQ(core::DiffShardedStates(CaptureShards(*reference.db),
                                    CaptureShards(*recovered), &diff),
            0u)
      << diff;
  EXPECT_EQ(recovered->current_epoch(), reference.db->current_epoch());
}

// Crash after one shard's log is durable (engine kAfterLog site): every
// shard holds a complete log for the crashed epoch, so the fleet replays it
// and recovery lands ON the crashed epoch.
TEST(ShardedRecoveryTest, PostLogCrashReplaysTheCrashedGlobalEpoch) {
  ShardedFixture crashed(2);
  crashed.Load(32);
  ShardedFixture reference(2);
  reference.Load(32);

  for (std::uint64_t e = 0; e < 2; ++e) {
    ASSERT_FALSE(crashed.db->ExecuteEpoch(EpochBatch(*crashed.db, e)).crashed);
    ASSERT_FALSE(reference.db->ExecuteEpoch(EpochBatch(*reference.db, e)).crashed);
  }

  crashed.db->SetCrashHook([](std::size_t shard, core::CrashSite site) {
    return shard == 0 && site == core::CrashSite::kAfterLog;
  });
  ASSERT_TRUE(crashed.db->ExecuteEpoch(EpochBatch(*crashed.db, 2)).crashed);
  ASSERT_FALSE(reference.db->ExecuteEpoch(EpochBatch(*reference.db, 2)).crashed);

  crashed.db.reset();
  for (auto& device : crashed.owned) {
    device->Crash();
  }
  auto recovered = std::make_unique<ShardedDatabase>(crashed.devices, crashed.base);
  const auto report = recovered->Recover(KvRegistry());
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_TRUE(report->replayed);

  std::string diff;
  EXPECT_EQ(core::DiffShardedStates(CaptureShards(*reference.db),
                                    CaptureShards(*recovered), &diff),
            0u)
      << diff;
  EXPECT_EQ(recovered->current_epoch(), reference.db->current_epoch());
}

// Each shard's durable ledger must be byte-identical to a standalone engine
// fed the same resolved sub-batches: replay the recorded slices into fresh
// single-shard engines and compare logical state plus the device's
// write-side counters.
TEST(ShardedLedgerTest, PerShardLedgersMatchStandaloneEngines) {
  constexpr std::size_t kShards = 2;
  ShardedFixture f(kShards);

  // (type, encoded inputs) per transaction, grouped per shard per epoch.
  using EncodedBatch = std::vector<std::pair<txn::TxnType, std::vector<std::uint8_t>>>;
  std::vector<std::vector<EncodedBatch>> recorded(kShards);
  f.db->SetSubBatchRecorder(
      [&](std::size_t shard, Epoch, const std::vector<std::unique_ptr<txn::Transaction>>& sub) {
        EncodedBatch batch;
        for (const auto& t : sub) {
          std::vector<std::uint8_t> buf;
          BinaryWriter writer(buf);
          t->EncodeInputs(writer);
          batch.emplace_back(t->type(), std::move(buf));
        }
        recorded[shard].push_back(std::move(batch));
      });

  f.Load(32);
  // Only the epochs themselves are under comparison, not the load.
  for (NvmDevice* device : f.devices) {
    device->stats().Reset();
  }
  for (std::uint64_t e = 0; e < 4; ++e) {
    ASSERT_FALSE(f.db->ExecuteEpoch(EpochBatch(*f.db, e)).crashed);
  }
  // Quiesce the engines so trailing persists don't race the counter reads.
  for (std::size_t s = 0; s < kShards; ++s) {
    f.db->shard(s).WaitIdle();
  }

  const txn::TxnRegistry registry = f.db->ShardRegistry(KvRegistry());
  const DatabaseSpec standalone_spec = ShardedDatabase::ShardSpec(f.base);
  for (std::size_t s = 0; s < kShards; ++s) {
    NvmDevice device(ShardDeviceConfig(f.base));
    core::Database standalone(device, standalone_spec);
    standalone.Format();
    for (Key k = 0; k < 32; ++k) {
      if (f.db->OwnerOf(0, k) == s) {
        const std::uint64_t value = 1000 + k;
        standalone.BulkLoad(0, k, &value, sizeof(value));
      }
    }
    standalone.FinalizeLoad();
    device.stats().Reset();

    ASSERT_EQ(recorded[s].size(), 4u);
    for (const EncodedBatch& batch : recorded[s]) {
      std::vector<std::unique_ptr<txn::Transaction>> txns;
      for (const auto& [type, bytes] : batch) {
        BinaryReader reader(bytes.data(), bytes.size());
        auto txn = registry.Decode(type, reader);
        ASSERT_NE(txn, nullptr);
        txns.push_back(std::move(txn));
      }
      standalone.ExecuteEpoch(std::move(txns));
    }
    standalone.WaitIdle();

    std::string diff;
    EXPECT_EQ(core::DiffStates(core::CaptureState(f.db->shard(s)),
                               core::CaptureState(standalone), &diff),
              0u)
        << "shard " << s << ": " << diff;

    // Write-side NVM traffic is identical; reads differ (the sharded run's
    // exchange fill reads the device, the standalone run does not).
    const sim::NvmCounters sharded = f.devices[s]->stats().Snapshot();
    const sim::NvmCounters alone = device.stats().Snapshot();
    EXPECT_EQ(sharded.write_bytes, alone.write_bytes) << "shard " << s;
    EXPECT_EQ(sharded.persisted_lines, alone.persisted_lines) << "shard " << s;
    EXPECT_EQ(sharded.persist_ops, alone.persist_ops) << "shard " << s;
    EXPECT_EQ(sharded.fences, alone.fences) << "shard " << s;
  }
}

TEST(ShardedStatsTest, RollupsAggregateAcrossShards) {
  ShardedFixture f(2);
  f.db->ConfigureProfiler(ProfilerConfig{.enabled = true});
  f.Load(32);
  std::size_t committed = 0;
  for (std::uint64_t e = 0; e < 3; ++e) {
    const ShardedEpochResult r = f.db->ExecuteEpoch(EpochBatch(*f.db, e));
    committed += r.committed;
  }
  const shard::ShardStatsSummary stats = f.db->StatsRollup();
  // A cross-shard transaction commits on every participating shard, so the
  // engine-side sum can exceed the global count but never undershoots it.
  EXPECT_GE(stats.txn_committed, committed);
  EXPECT_GT(stats.nvm_write_bytes, 0u);
  EXPECT_GT(stats.log_bytes, 0u);

  const shard::ShardedProfileReport profile = f.db->ProfileReport();
  EXPECT_TRUE(profile.combined.enabled);
  ASSERT_EQ(profile.shards.size(), 2u);
  EXPECT_GT(profile.combined.epochs, 0u);
  const std::string table = profile.ToTable();
  EXPECT_NE(table.find("[shard 0]"), std::string::npos);
  EXPECT_NE(table.find("[shard 1]"), std::string::npos);
  EXPECT_NE(table.find("[all shards combined]"), std::string::npos);

  const std::string trace = ::testing::TempDir() + "/sharded_trace.json";
  EXPECT_TRUE(f.db->WriteChromeTrace(trace));
  std::FILE* fp = std::fopen(trace.c_str(), "rb");
  ASSERT_NE(fp, nullptr);
  std::fseek(fp, 0, SEEK_END);
  EXPECT_GT(std::ftell(fp), 0);
  std::fclose(fp);

  f.db->ResetStats();
  EXPECT_EQ(f.db->StatsRollup().txn_committed, 0u);
}

// ---- ShardedDbService -------------------------------------------------------

TEST(ShardedServiceTest, SubmitsResolveDurablyAcrossShards) {
  ShardedFixture f(2);
  f.Load(32);
  service::ServiceSpec spec;
  spec.max_epoch_txns = 4;
  spec.max_epoch_delay = std::chrono::microseconds(2000);
  auto svc = std::make_unique<service::ShardedDbService>(std::move(f.db), spec);

  const auto [a, b] = CrossShardPair(svc->db(), 32);
  std::vector<service::TxnTicket> tickets;
  auto t1 = svc->Submit(std::make_unique<KvPutTxn>(3, 42));
  ASSERT_TRUE(t1.ok());
  auto t2 = svc->Submit(std::make_unique<KvXferTxn>(a, b, 50));
  ASSERT_TRUE(t2.ok());
  auto t3 = svc->Submit(std::make_unique<KvXferTxn>(a, b, 1u << 20));  // insufficient
  ASSERT_TRUE(t3.ok());
  ASSERT_TRUE(svc->Drain().ok());

  EXPECT_EQ(t1->Get().outcome, service::TicketOutcome::kCommitted);
  EXPECT_EQ(t2->Get().outcome, service::TicketOutcome::kCommitted);
  EXPECT_EQ(t3->Get().outcome, service::TicketOutcome::kUserAborted);
  EXPECT_GE(svc->epochs_executed(), 1u);
  EXPECT_TRUE(svc->health().ok());
  EXPECT_GT(svc->LatencySnapshot().count, 0u);

  auto db = svc->TakeDatabase();
  std::uint64_t value = 0;
  ASSERT_TRUE(db->ReadCommitted(0, 3, &value, sizeof(value)).ok());
  EXPECT_EQ(value, 42u);
}

TEST(ShardedServiceTest, DeferredTicketResolvesWithDeferralCount) {
  ShardedFixture f(2);
  f.Load(32);
  service::ServiceSpec spec;
  spec.max_epoch_txns = 2;  // both submissions land in one global epoch
  spec.max_epoch_delay = std::chrono::microseconds(500000);
  auto svc = std::make_unique<service::ShardedDbService>(std::move(f.db), spec);

  const auto [a, b] = CrossShardPair(svc->db(), 32);
  auto put = svc->Submit(std::make_unique<KvPutTxn>(a, 9000));
  ASSERT_TRUE(put.ok());
  auto xfer = svc->Submit(std::make_unique<KvXferTxn>(a, b, 700));
  ASSERT_TRUE(xfer.ok());
  ASSERT_TRUE(svc->Drain().ok());

  EXPECT_EQ(put->Get().outcome, service::TicketOutcome::kCommitted);
  const service::TicketResult& r = xfer->Get();
  EXPECT_EQ(r.outcome, service::TicketOutcome::kCommitted);
  EXPECT_GE(r.deferrals, 1u);
  EXPECT_GT(r.epoch, put->Get().epoch);

  auto db = svc->TakeDatabase();
  std::uint64_t value = 0;
  ASSERT_TRUE(db->ReadCommitted(0, a, &value, sizeof(value)).ok());
  EXPECT_EQ(value, 9000u - 700);
}

TEST(ShardedServiceTest, CrashFailsAllPendingTickets) {
  ShardedFixture f(2);
  f.Load(32);
  f.db->SetCrashHook([](std::size_t, core::CrashSite site) {
    return site == core::CrashSite::kMidShardEpochBarrier;
  });
  service::ServiceSpec spec;
  spec.max_epoch_txns = 1;
  auto svc = std::make_unique<service::ShardedDbService>(std::move(f.db), spec);
  auto ticket = svc->Submit(std::make_unique<KvPutTxn>(3, 42));
  ASSERT_TRUE(ticket.ok());
  const service::TicketResult& r = ticket->Get();
  EXPECT_EQ(r.outcome, service::TicketOutcome::kFailed);
  EXPECT_FALSE(r.status.ok());
  EXPECT_FALSE(svc->health().ok());
  // Subsequent submissions are rejected with the crash status.
  EXPECT_FALSE(svc->Submit(std::make_unique<KvPutTxn>(4, 1)).ok());
  EXPECT_FALSE(svc->Stop().ok());
}

}  // namespace
}  // namespace nvc::test
