// Randomized soak: many epochs of mixed operations (puts of several sizes,
// RMWs, inserts, deletes, user aborts) with random mid-epoch crashes and
// chaos recovery, model-checked after every epoch against a serial in-memory
// reference. Engine knobs (batch append, persistent index, minor GC, cache
// policy) are varied per seed.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <vector>

#include "tests/test_util.h"

namespace nvc::test {
namespace {

using core::CrashSite;
using core::Database;
using core::DatabaseSpec;
using sim::NvmDevice;

// Serial reference model mirroring the KV transaction semantics.
struct KvModel {
  std::map<Key, std::vector<std::uint8_t>> rows;

  static std::vector<std::uint8_t> U64(std::uint64_t v) {
    std::vector<std::uint8_t> data(8);
    std::memcpy(data.data(), &v, 8);
    return data;
  }
  std::uint64_t ReadU64(Key key) const {
    auto it = rows.find(key);
    if (it == rows.end() || it->second.size() < 8) {
      return 0;
    }
    std::uint64_t v;
    std::memcpy(&v, it->second.data(), 8);
    return v;
  }
};

struct Op {
  enum Kind { kPut, kRmw, kBigPut, kVarPut, kInsert, kDelete, kAbort } kind;
  Key key;
  std::uint64_t a;
  std::uint32_t size;
};

std::unique_ptr<txn::Transaction> MakeTxn(const Op& op) {
  switch (op.kind) {
    case Op::kPut:
      return std::make_unique<KvPutTxn>(op.key, op.a);
    case Op::kRmw:
      return std::make_unique<KvRmwTxn>(op.key, op.a);
    case Op::kBigPut:
      return std::make_unique<KvBigPutTxn>(op.key, op.a);
    case Op::kVarPut:
      return std::make_unique<KvVarPutTxn>(op.key, op.size, op.a);
    case Op::kInsert:
      return std::make_unique<KvInsertTxn>(op.key, op.a);
    case Op::kDelete:
      return std::make_unique<KvDeleteTxn>(op.key);
    case Op::kAbort:
      return std::make_unique<KvAbortTxn>(op.key);
  }
  return nullptr;
}

void ApplyToModel(KvModel& model, const Op& op) {
  switch (op.kind) {
    case Op::kPut:
      model.rows[op.key] = KvModel::U64(op.a);
      break;
    case Op::kRmw:
      model.rows[op.key] = KvModel::U64(model.ReadU64(op.key) * 3 + op.a);
      break;
    case Op::kBigPut: {
      std::vector<std::uint8_t> data(kBigValueSize);
      KvBigPutTxn::Fill(op.key, op.a, data.data());
      model.rows[op.key] = std::move(data);
      break;
    }
    case Op::kVarPut:
      model.rows[op.key] = KvVarPutTxn::Pattern(op.key, op.size, op.a);
      break;
    case Op::kInsert:
      model.rows[op.key] = KvModel::U64(op.a);
      break;
    case Op::kDelete:
      model.rows.erase(op.key);
      break;
    case Op::kAbort:
      break;
  }
}

class SoakTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SoakTest, RandomOpsWithCrashesMatchModel) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 7919 + 5);

  DatabaseSpec spec = SmallKvSpec();
  spec.enable_batch_append = (seed & 1) != 0;
  spec.enable_persistent_index = (seed & 2) != 0;
  spec.enable_minor_gc = (seed & 4) == 0;
  spec.cache_policy = (seed & 8) != 0 ? DatabaseSpec::CachePolicy::kHotOnly
                                      : DatabaseSpec::CachePolicy::kAlways;
  spec.value_pools = {
      {.block_size = 256, .blocks_per_core = 2048, .freelist_capacity = 8192},
      {.block_size = 2048, .blocks_per_core = 512, .freelist_capacity = 4096},
  };

  NvmDevice device(ShadowDeviceConfig(spec));
  auto db = std::make_unique<Database>(device, spec);
  db->Format();

  KvModel model;
  for (Key key = 0; key < 24; ++key) {
    const std::uint64_t value = 1000 + key;
    db->BulkLoad(0, key, &value, sizeof(value));
    model.rows[key] = KvModel::U64(value);
  }
  db->FinalizeLoad();

  Key next_fresh_key = 1000;  // inserts use brand-new keys
  const txn::TxnRegistry registry = KvRegistry();

  for (int epoch = 0; epoch < 25; ++epoch) {
    // Build a random epoch against the model's current key set.
    std::vector<Key> live;
    for (const auto& [key, value] : model.rows) {
      live.push_back(key);
    }
    std::vector<Op> ops;
    std::set<Key> deleted_this_epoch;
    std::set<Key> inserted_this_epoch;
    const int txn_count = 10 + static_cast<int>(rng.NextBounded(50));
    for (int i = 0; i < txn_count; ++i) {
      Op op{};
      const std::uint64_t pick = rng.NextBounded(100);
      if (pick < 10 || live.empty()) {
        op.kind = Op::kInsert;
        op.key = next_fresh_key++;
        op.a = rng.Next();
        inserted_this_epoch.insert(op.key);
        // Later transactions in this epoch may read/update the fresh row
        // (exercises insert-step data visibility through version arrays).
        live.push_back(op.key);
      } else {
        // Choose a key that still exists at this point of the serial order.
        Key key;
        int attempts = 0;
        do {
          key = live[rng.NextBounded(live.size())];
        } while (deleted_this_epoch.count(key) != 0 && ++attempts < 20);
        if (deleted_this_epoch.count(key) != 0) {
          op.kind = Op::kInsert;
          op.key = next_fresh_key++;
          op.a = rng.Next();
        } else if (pick < 35) {
          op.kind = Op::kPut;
          op.key = key;
          op.a = rng.Next();
        } else if (pick < 60) {
          op.kind = Op::kRmw;
          op.key = key;
          op.a = rng.NextBounded(97);
        } else if (pick < 72) {
          op.kind = Op::kBigPut;
          op.key = key;
          op.a = rng.Next();
        } else if (pick < 84) {
          op.kind = Op::kVarPut;
          op.key = key;
          op.size = static_cast<std::uint32_t>(rng.NextRange(1, 1500));
          op.a = rng.Next();
        } else if (pick < 92) {
          op.kind = Op::kAbort;
          op.key = key;
        } else {
          op.kind = Op::kDelete;
          op.key = key;
          deleted_this_epoch.insert(key);
        }
      }
      ops.push_back(op);
    }

    std::vector<std::unique_ptr<txn::Transaction>> txns;
    for (const Op& op : ops) {
      txns.push_back(MakeTxn(op));
    }

    // Maybe crash this epoch.
    const bool crash = rng.NextPercent(30);
    if (crash) {
      const int crash_after = static_cast<int>(rng.NextBounded(txn_count));
      int count = 0;
      db->SetCrashHook([&count, crash_after](CrashSite site) {
        return site == CrashSite::kMidExecution && ++count > crash_after;
      });
      const auto result = db->ExecuteEpoch(std::move(txns));
      ASSERT_TRUE(result.crashed);
      db.reset();  // lose DRAM
      device.CrashChaos(seed * 1000 + epoch, 0.2 + rng.NextDouble() * 0.7);
      db = std::make_unique<Database>(device, spec);
      const auto report = db->Recover(registry).value();
      ASSERT_TRUE(report.replayed) << "epoch " << epoch;
    } else {
      db->SetCrashHook({});
      const auto result = db->ExecuteEpoch(std::move(txns));
      ASSERT_FALSE(result.crashed);
    }

    // The epoch completed (directly or via replay): apply it to the model
    // and verify every key.
    for (const Op& op : ops) {
      ApplyToModel(model, op);
    }
    for (const auto& [key, expected] : model.rows) {
      ASSERT_EQ(ReadBytes(*db, 0, key), expected)
          << "seed " << seed << " epoch " << epoch << " key " << key;
    }
    // Deleted keys are gone.
    for (Key key : deleted_this_epoch) {
      if (model.rows.count(key) == 0) {
        std::uint8_t buffer[8];
        ASSERT_FALSE(db->ReadCommitted(0, key, buffer, sizeof(buffer)).ok())
            << "seed " << seed << " epoch " << epoch << " deleted key " << key;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoakTest, ::testing::Range<std::uint64_t>(0, 16));

}  // namespace
}  // namespace nvc::test
