// Oracle library: state capture fidelity, diff detection, and the
// persistent-index cross-check used by the crash_fuzz chaos harness.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/core/oracle.h"
#include "tests/test_util.h"

namespace nvc::test {
namespace {

using core::CaptureState;
using core::Database;
using core::DatabaseSpec;
using core::DiffStates;
using core::OracleState;
using core::ValidatePersistentIndex;
using sim::NvmDevice;

void RunSmallWorkload(Database& db) {
  for (std::size_t i = 0; i < 16; ++i) {
    const std::uint64_t value = 100 + i;
    db.BulkLoad(0, i, &value, sizeof(value));
  }
  db.FinalizeLoad();
  for (int epoch = 0; epoch < 3; ++epoch) {
    std::vector<std::unique_ptr<txn::Transaction>> txns;
    txns.push_back(std::make_unique<KvPutTxn>(1, 1000 + epoch));
    txns.push_back(std::make_unique<KvRmwTxn>(2, 7));
    txns.push_back(std::make_unique<KvBigPutTxn>(8, epoch));
    txns.push_back(std::make_unique<KvInsertTxn>(100 + epoch, epoch));
    if (epoch == 2) {
      txns.push_back(std::make_unique<KvDeleteTxn>(100));
    }
    db.ExecuteEpoch(std::move(txns));
  }
}

TEST(OracleTest, CaptureMatchesReadCommitted) {
  const DatabaseSpec spec = SmallKvSpec();
  NvmDevice device(ShadowDeviceConfig(spec));
  Database db(device, spec);
  db.Format();
  RunSmallWorkload(db);

  const OracleState state = CaptureState(db);
  EXPECT_EQ(state.epoch, db.current_epoch());
  ASSERT_EQ(state.tables.size(), 1u);
  // Row 8 got big values, 100 was deleted, 101/102 inserted.
  EXPECT_EQ(state.tables[0].count(100), 0u);
  EXPECT_EQ(state.tables[0].count(101), 1u);
  EXPECT_EQ(state.tables[0].count(102), 1u);
  for (const auto& [key, bytes] : state.tables[0]) {
    EXPECT_EQ(bytes, ReadBytes(db, 0, key)) << "key " << key;
  }
}

TEST(OracleTest, IdenticalRunsProduceIdenticalStates) {
  const DatabaseSpec spec = SmallKvSpec();
  auto run = [&spec] {
    NvmDevice device(ShadowDeviceConfig(spec));
    Database db(device, spec);
    db.Format();
    RunSmallWorkload(db);
    return CaptureState(db);
  };
  const OracleState a = run();
  const OracleState b = run();
  std::string diff;
  EXPECT_EQ(DiffStates(a, b, &diff), 0u) << diff;
}

TEST(OracleTest, DiffDetectsEveryDivergenceKind) {
  OracleState expected;
  expected.epoch = 4;
  expected.counters = {10, 20};
  expected.tables.resize(1);
  expected.tables[0][1] = {1, 2, 3};
  expected.tables[0][2] = {4, 5, 6};

  OracleState actual = expected;
  EXPECT_EQ(DiffStates(expected, actual, nullptr), 0u);

  actual.epoch = 5;                    // wrong epoch
  actual.counters[1] = 21;             // wrong counter
  actual.tables[0][1] = {1, 9, 3};     // value mismatch
  actual.tables[0].erase(2);           // missing row
  actual.tables[0][7] = {8};           // unexpected row

  std::string diff;
  EXPECT_EQ(DiffStates(expected, actual, &diff), 5u);
  EXPECT_NE(diff.find("epoch"), std::string::npos);
  EXPECT_NE(diff.find("counter 1"), std::string::npos);
  EXPECT_NE(diff.find("key 1"), std::string::npos);
  EXPECT_NE(diff.find("key 2"), std::string::npos);
  EXPECT_NE(diff.find("key 7"), std::string::npos);
}

TEST(OracleTest, PersistentIndexCrossCheckPassesAfterRecovery) {
  DatabaseSpec spec = SmallKvSpec();
  spec.enable_persistent_index = true;
  NvmDevice device(ShadowDeviceConfig(spec));
  OracleState expected;
  {
    Database db(device, spec);
    db.Format();
    RunSmallWorkload(db);
    expected = CaptureState(db);
    std::string report;
    EXPECT_EQ(ValidatePersistentIndex(db, &report), 0u) << report;
  }
  device.Crash();
  Database recovered(device, spec);
  recovered.Recover(KvRegistry()).value();
  std::string report;
  EXPECT_EQ(ValidatePersistentIndex(recovered, &report), 0u) << report;
  std::string diff;
  EXPECT_EQ(DiffStates(expected, CaptureState(recovered), &diff), 0u) << diff;
}

TEST(OracleTest, PersistentIndexValidationIsVacuousWithoutTheIndex) {
  const DatabaseSpec spec = SmallKvSpec();
  NvmDevice device(ShadowDeviceConfig(spec));
  Database db(device, spec);
  db.Format();
  RunSmallWorkload(db);
  EXPECT_EQ(ValidatePersistentIndex(db, nullptr), 0u);
}

}  // namespace
}  // namespace nvc::test
