// NVMM input log: round-trip, parity buffers, torn-log detection, checksum.
#include <gtest/gtest.h>

#include "src/core/input_log.h"
#include "tests/test_util.h"

namespace nvc::test {
namespace {

using core::InputLog;
using sim::CrashTracking;
using sim::NvmConfig;
using sim::NvmDevice;

constexpr std::size_t kBuffer = 1 << 16;

struct LogFixture {
  LogFixture()
      : device(NvmConfig{.size_bytes = InputLog::RequiredBytes(kBuffer),
                         .latency = {},
                         .crash_tracking = CrashTracking::kShadow}),
        log(device, 0, kBuffer) {
    log.Format();
  }
  NvmDevice device;
  InputLog log;
};

std::vector<std::unique_ptr<txn::Transaction>> SomeTxns(int n, std::uint64_t seed) {
  std::vector<std::unique_ptr<txn::Transaction>> txns;
  for (int i = 0; i < n; ++i) {
    if (i % 2 == 0) {
      txns.push_back(std::make_unique<KvPutTxn>(seed + i, seed * 10 + i));
    } else {
      txns.push_back(std::make_unique<KvRmwTxn>(seed + i, i));
    }
  }
  return txns;
}

TEST(InputLogTest, RoundTripPreservesTypesAndInputs) {
  LogFixture f;
  const auto txns = SomeTxns(20, 7);
  const std::size_t bytes = f.log.LogEpoch(5, txns, 0);
  EXPECT_GT(bytes, 20u * 16);

  const auto registry = KvRegistry();
  std::vector<std::unique_ptr<txn::Transaction>> decoded;
  ASSERT_TRUE(f.log.LoadEpoch(5, registry, &decoded, 0));
  ASSERT_EQ(decoded.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(decoded[i]->type(), txns[i]->type()) << i;
    // Re-encode both and compare bytes.
    std::vector<std::uint8_t> a;
    std::vector<std::uint8_t> b;
    BinaryWriter wa(a);
    BinaryWriter wb(b);
    txns[i]->EncodeInputs(wa);
    decoded[i]->EncodeInputs(wb);
    EXPECT_EQ(a, b) << "inputs differ for txn " << i;
  }
}

TEST(InputLogTest, ParityBuffersHoldTwoEpochs) {
  LogFixture f;
  f.log.LogEpoch(4, SomeTxns(5, 1), 0);
  f.log.LogEpoch(5, SomeTxns(7, 2), 0);
  const auto registry = KvRegistry();
  std::vector<std::unique_ptr<txn::Transaction>> decoded;
  ASSERT_TRUE(f.log.LoadEpoch(4, registry, &decoded, 0));
  EXPECT_EQ(decoded.size(), 5u);
  ASSERT_TRUE(f.log.LoadEpoch(5, registry, &decoded, 0));
  EXPECT_EQ(decoded.size(), 7u);
  // Epoch 6 overwrites epoch 4's buffer.
  f.log.LogEpoch(6, SomeTxns(3, 3), 0);
  EXPECT_FALSE(f.log.LoadEpoch(4, registry, &decoded, 0));
  ASSERT_TRUE(f.log.LoadEpoch(6, registry, &decoded, 0));
  EXPECT_EQ(decoded.size(), 3u);
}

TEST(InputLogTest, MissingEpochIsRejected) {
  LogFixture f;
  f.log.LogEpoch(4, SomeTxns(5, 1), 0);
  const auto registry = KvRegistry();
  std::vector<std::unique_ptr<txn::Transaction>> decoded;
  EXPECT_FALSE(f.log.LoadEpoch(5, registry, &decoded, 0));
  EXPECT_FALSE(f.log.LoadEpoch(2, registry, &decoded, 0));
}

TEST(InputLogTest, CompleteLogSurvivesCrash) {
  LogFixture f;
  f.log.LogEpoch(4, SomeTxns(10, 1), 0);
  f.device.Crash();
  const auto registry = KvRegistry();
  std::vector<std::unique_ptr<txn::Transaction>> decoded;
  ASSERT_TRUE(f.log.LoadEpoch(4, registry, &decoded, 0));
  EXPECT_EQ(decoded.size(), 10u);
}

TEST(InputLogTest, CorruptedPayloadFailsChecksum) {
  LogFixture f;
  f.log.LogEpoch(4, SomeTxns(10, 1), 0);
  // Flip a payload byte behind the log's back.
  f.device.At(/*header*/ 40 + 64)[0] ^= 0xFF;
  const auto registry = KvRegistry();
  std::vector<std::unique_ptr<txn::Transaction>> decoded;
  EXPECT_FALSE(f.log.LoadEpoch(4, registry, &decoded, 0));
}

TEST(InputLogTest, OversizedEpochThrows) {
  LogFixture f;
  EXPECT_THROW(f.log.LogEpoch(4, SomeTxns(4000, 1), 0), std::runtime_error);
}

TEST(InputLogTest, EmptyEpochRoundTrips) {
  LogFixture f;
  f.log.LogEpoch(4, {}, 0);
  const auto registry = KvRegistry();
  std::vector<std::unique_ptr<txn::Transaction>> decoded;
  ASSERT_TRUE(f.log.LoadEpoch(4, registry, &decoded, 0));
  EXPECT_TRUE(decoded.empty());
}

}  // namespace
}  // namespace nvc::test
