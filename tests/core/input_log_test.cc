// NVMM input log: round-trip, parity buffers, torn-log detection, checksum.
#include <gtest/gtest.h>

#include "src/common/hash.h"
#include "src/core/input_log.h"
#include "tests/test_util.h"

namespace nvc::test {
namespace {

using core::InputLog;
using sim::CrashTracking;
using sim::NvmConfig;
using sim::NvmDevice;

constexpr std::size_t kBuffer = 1 << 16;

// LogHeader layout (input_log.h): epoch u32, txn_count u32, payload_bytes
// u64, checksum u64, complete u64. The payload follows the header.
constexpr std::uint64_t kHdrPayloadBytes = 8;
constexpr std::uint64_t kHdrChecksum = 16;
constexpr std::uint64_t kHeaderSize = 32;

struct LogFixture {
  LogFixture()
      : device(NvmConfig{.size_bytes = InputLog::RequiredBytes(kBuffer),
                         .latency = {},
                         .crash_tracking = CrashTracking::kShadow}),
        log(device, 0, kBuffer) {
    log.Format();
  }
  NvmDevice device;
  InputLog log;
};

std::vector<std::unique_ptr<txn::Transaction>> SomeTxns(int n, std::uint64_t seed) {
  std::vector<std::unique_ptr<txn::Transaction>> txns;
  for (int i = 0; i < n; ++i) {
    if (i % 2 == 0) {
      txns.push_back(std::make_unique<KvPutTxn>(seed + i, seed * 10 + i));
    } else {
      txns.push_back(std::make_unique<KvRmwTxn>(seed + i, i));
    }
  }
  return txns;
}

TEST(InputLogTest, RoundTripPreservesTypesAndInputs) {
  LogFixture f;
  const auto txns = SomeTxns(20, 7);
  const std::size_t bytes = f.log.LogEpoch(5, txns, 0);
  EXPECT_GT(bytes, 20u * 16);

  const auto registry = KvRegistry();
  std::vector<std::unique_ptr<txn::Transaction>> decoded;
  ASSERT_TRUE(f.log.LoadEpoch(5, registry, &decoded, 0));
  ASSERT_EQ(decoded.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(decoded[i]->type(), txns[i]->type()) << i;
    // Re-encode both and compare bytes.
    std::vector<std::uint8_t> a;
    std::vector<std::uint8_t> b;
    BinaryWriter wa(a);
    BinaryWriter wb(b);
    txns[i]->EncodeInputs(wa);
    decoded[i]->EncodeInputs(wb);
    EXPECT_EQ(a, b) << "inputs differ for txn " << i;
  }
}

TEST(InputLogTest, ParityBuffersHoldTwoEpochs) {
  LogFixture f;
  f.log.LogEpoch(4, SomeTxns(5, 1), 0);
  f.log.LogEpoch(5, SomeTxns(7, 2), 0);
  const auto registry = KvRegistry();
  std::vector<std::unique_ptr<txn::Transaction>> decoded;
  ASSERT_TRUE(f.log.LoadEpoch(4, registry, &decoded, 0));
  EXPECT_EQ(decoded.size(), 5u);
  ASSERT_TRUE(f.log.LoadEpoch(5, registry, &decoded, 0));
  EXPECT_EQ(decoded.size(), 7u);
  // Epoch 6 overwrites epoch 4's buffer.
  f.log.LogEpoch(6, SomeTxns(3, 3), 0);
  EXPECT_FALSE(f.log.LoadEpoch(4, registry, &decoded, 0));
  ASSERT_TRUE(f.log.LoadEpoch(6, registry, &decoded, 0));
  EXPECT_EQ(decoded.size(), 3u);
}

TEST(InputLogTest, MissingEpochIsRejected) {
  LogFixture f;
  f.log.LogEpoch(4, SomeTxns(5, 1), 0);
  const auto registry = KvRegistry();
  std::vector<std::unique_ptr<txn::Transaction>> decoded;
  EXPECT_FALSE(f.log.LoadEpoch(5, registry, &decoded, 0));
  EXPECT_FALSE(f.log.LoadEpoch(2, registry, &decoded, 0));
}

TEST(InputLogTest, CompleteLogSurvivesCrash) {
  LogFixture f;
  f.log.LogEpoch(4, SomeTxns(10, 1), 0);
  f.device.Crash();
  const auto registry = KvRegistry();
  std::vector<std::unique_ptr<txn::Transaction>> decoded;
  ASSERT_TRUE(f.log.LoadEpoch(4, registry, &decoded, 0));
  EXPECT_EQ(decoded.size(), 10u);
}

TEST(InputLogTest, CorruptedPayloadFailsChecksum) {
  LogFixture f;
  f.log.LogEpoch(4, SomeTxns(10, 1), 0);
  // Flip a payload byte behind the log's back.
  f.device.At(kHeaderSize + 64)[0] ^= 0xFF;
  const auto registry = KvRegistry();
  std::vector<std::unique_ptr<txn::Transaction>> decoded;
  EXPECT_FALSE(f.log.LoadEpoch(4, registry, &decoded, 0));
}

TEST(InputLogTest, CorruptPayloadSizeInHeaderIsRejected) {
  LogFixture f;
  f.log.LogEpoch(4, SomeTxns(10, 1), 0);
  // Bit-flip the header's payload_bytes field to an absurd length. The
  // checksum pass must not walk past the buffer chasing it.
  *reinterpret_cast<std::uint64_t*>(f.device.At(kHdrPayloadBytes)) = ~0ULL;
  const auto registry = KvRegistry();
  std::vector<std::unique_ptr<txn::Transaction>> decoded;
  EXPECT_FALSE(f.log.LoadEpoch(4, registry, &decoded, 0));
}

TEST(InputLogTest, ChecksummedButMisframedPayloadIsRejected) {
  LogFixture f;
  f.log.LogEpoch(4, SomeTxns(10, 1), 0);
  // Corrupt the first record's size field, then fix the checksum so the
  // corruption survives the integrity check and reaches the decoder. The
  // decoder must fail cleanly (log treated as invalid), not read past the
  // payload.
  const std::uint64_t payload_bytes =
      *reinterpret_cast<std::uint64_t*>(f.device.At(kHdrPayloadBytes));
  // Record 0 starts at the payload base: type u32, then the size field.
  *reinterpret_cast<std::uint32_t*>(f.device.At(kHeaderSize + sizeof(std::uint32_t))) =
      0x7FFFFFFF;
  *reinterpret_cast<std::uint64_t*>(f.device.At(kHdrChecksum)) =
      core::InputLog::Checksum(f.device.At(kHeaderSize), payload_bytes);
  const auto registry = KvRegistry();
  std::vector<std::unique_ptr<txn::Transaction>> decoded;
  EXPECT_FALSE(f.log.LoadEpoch(4, registry, &decoded, 0));
  EXPECT_TRUE(decoded.empty());
}

TEST(InputLogTest, TruncationInsidePayloadIsRejected) {
  LogFixture f;
  f.log.LogEpoch(4, SomeTxns(10, 1), 0);
  // Chop payload_bytes mid-record and fix the checksum: decode must fail
  // cleanly on the misframed tail instead of reading past the claimed end.
  const std::uint64_t truncated = 13;
  *reinterpret_cast<std::uint64_t*>(f.device.At(kHdrPayloadBytes)) = truncated;
  *reinterpret_cast<std::uint64_t*>(f.device.At(kHdrChecksum)) =
      core::InputLog::Checksum(f.device.At(kHeaderSize), truncated);
  const auto registry = KvRegistry();
  std::vector<std::unique_ptr<txn::Transaction>> decoded;
  EXPECT_FALSE(f.log.LoadEpoch(4, registry, &decoded, 0));
}

TEST(InputLogTest, OversizedEpochThrows) {
  LogFixture f;
  EXPECT_THROW(f.log.LogEpoch(4, SomeTxns(4000, 1), 0), std::runtime_error);
}

TEST(InputLogTest, EmptyEpochRoundTrips) {
  LogFixture f;
  f.log.LogEpoch(4, {}, 0);
  const auto registry = KvRegistry();
  std::vector<std::unique_ptr<txn::Transaction>> decoded;
  ASSERT_TRUE(f.log.LoadEpoch(4, registry, &decoded, 0));
  EXPECT_TRUE(decoded.empty());
}

}  // namespace
}  // namespace nvc::test
