// Epoch-phase profiler: span structure, per-phase NVM attribution, report
// aggregation, and the Chrome-trace JSON exporter.
#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/profiler.h"
#include "tests/test_util.h"

namespace nvc::test {
namespace {

using core::Database;
using core::DatabaseSpec;
using core::EpochResult;
using sim::NvmDevice;

// ---- Minimal JSON parser (schema validation for the trace exporter) ---------

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool Has(const std::string& key) const { return object.count(key) > 0; }
  const JsonValue& At(const std::string& key) const { return object.at(key); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    const bool ok = ParseValue(out);
    SkipWs();
    return ok && pos_ == text_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool ParseLiteral(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }
  bool ParseString(std::string* out) {
    if (!Consume('"')) {
      return false;
    }
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          return false;
        }
        out->push_back(text_[pos_++]);  // good enough for our own exporter
      } else {
        out->push_back(c);
      }
    }
    return false;  // unterminated
  }
  bool ParseValue(JsonValue* out) {
    SkipWs();
    if (pos_ >= text_.size()) {
      return false;
    }
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out->type = JsonValue::Type::kObject;
      SkipWs();
      if (Consume('}')) {
        return true;
      }
      while (true) {
        std::string key;
        if (!ParseString(&key) || !Consume(':')) {
          return false;
        }
        JsonValue value;
        if (!ParseValue(&value)) {
          return false;
        }
        out->object.emplace(std::move(key), std::move(value));
        if (Consume(',')) {
          continue;
        }
        return Consume('}');
      }
    }
    if (c == '[') {
      ++pos_;
      out->type = JsonValue::Type::kArray;
      SkipWs();
      if (Consume(']')) {
        return true;
      }
      while (true) {
        JsonValue value;
        if (!ParseValue(&value)) {
          return false;
        }
        out->array.push_back(std::move(value));
        if (Consume(',')) {
          continue;
        }
        return Consume(']');
      }
    }
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return ParseString(&out->str);
    }
    if (c == 't') {
      out->type = JsonValue::Type::kBool;
      out->boolean = true;
      return ParseLiteral("true");
    }
    if (c == 'f') {
      out->type = JsonValue::Type::kBool;
      out->boolean = false;
      return ParseLiteral("false");
    }
    if (c == 'n') {
      out->type = JsonValue::Type::kNull;
      return ParseLiteral("null");
    }
    // Number.
    std::size_t end = pos_;
    while (end < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[end])) || text_[end] == '-' ||
            text_[end] == '+' || text_[end] == '.' || text_[end] == 'e' || text_[end] == 'E')) {
      ++end;
    }
    if (end == pos_) {
      return false;
    }
    out->type = JsonValue::Type::kNumber;
    out->number = std::stod(text_.substr(pos_, end - pos_));
    pos_ = end;
    return true;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// ---- Fixture ----------------------------------------------------------------

class ProfilerTest : public ::testing::Test {
 protected:
  explicit ProfilerTest(std::size_t workers = 2)
      : spec_(SmallKvSpec(workers)), device_(ShadowDeviceConfig(spec_)) {
    // This suite validates the barrier engine's per-phase bracketing and the
    // synchronous per-epoch NVM attribution. Under pipelining the persistence
    // tail runs on the tail thread outside the driver's phase brackets (its
    // coverage lives in pipeline_test and the tail-overlap report fields).
    spec_.enable_epoch_pipeline = false;
  }

  void SetUp() override {
    db_ = std::make_unique<Database>(device_, spec_);
    db_->Format();
    for (std::size_t i = 0; i < 64; ++i) {
      const std::uint64_t value = 1000 + i;
      db_->BulkLoad(0, i, &value, sizeof(value));
    }
    db_->FinalizeLoad();
    ProfilerConfig config;
    config.enabled = true;
    db_->ConfigureProfiler(config);
    db_->stats().Reset();
  }

  // A mixed epoch: small puts, RMW reads, and big (non-inline) values so
  // insert/append/execute/checkpoint and eventually major GC all do work.
  std::vector<std::unique_ptr<txn::Transaction>> MakeEpoch(std::uint64_t salt) {
    std::vector<std::unique_ptr<txn::Transaction>> txns;
    for (std::uint64_t i = 0; i < 16; ++i) {
      txns.push_back(std::make_unique<KvPutTxn>(i, salt * 100 + i));
      txns.push_back(std::make_unique<KvRmwTxn>(16 + i, salt + i));
      txns.push_back(std::make_unique<KvBigPutTxn>(32 + i, salt + i));
    }
    return txns;
  }

  void RunEpochs(std::size_t n) {
    for (std::size_t e = 0; e < n; ++e) {
      const EpochResult result = db_->ExecuteEpoch(MakeEpoch(e + 1));
      ASSERT_FALSE(result.crashed);
      ASSERT_EQ(result.committed, 48u);
    }
  }

  DatabaseSpec spec_;
  NvmDevice device_;
  std::unique_ptr<Database> db_;
};

TEST_F(ProfilerTest, DisabledProfilerRecordsNothing) {
  db_->ConfigureProfiler(ProfilerConfig{});  // enabled = false
  RunEpochs(2);
  const ProfileReport report = db_->ProfileReport();
  EXPECT_FALSE(report.enabled);
  EXPECT_EQ(report.epochs, 0u);
  EXPECT_EQ(report.total.nvm_write_lines, 0u);
  EXPECT_TRUE(db_->profiler().driver_spans().empty());
  for (std::size_t w = 0; w < spec_.workers; ++w) {
    EXPECT_TRUE(db_->profiler().worker_spans(w).empty());
  }
}

TEST_F(ProfilerTest, ReportCountsEpochsAndCorePhases) {
  RunEpochs(3);
  const ProfileReport report = db_->ProfileReport();
  EXPECT_TRUE(report.enabled);
  EXPECT_EQ(report.epochs, 3u);
  EXPECT_EQ(report.dropped_spans, 0u);
  // Every epoch brackets these phases exactly once (checkpoint twice: before
  // and after the GC-log slot, merged into one aggregate).
  EXPECT_EQ(report.phase(Phase::kLogInputs).activations, 3u);
  EXPECT_EQ(report.phase(Phase::kInsert).activations, 3u);
  EXPECT_EQ(report.phase(Phase::kAppend).activations, 3u);
  EXPECT_EQ(report.phase(Phase::kExecute).activations, 3u);
  EXPECT_EQ(report.phase(Phase::kCheckpoint).activations, 6u);
  EXPECT_EQ(report.phase(Phase::kFinish).activations, 3u);
  // The fan-out phases record one span per worker per activation.
  EXPECT_EQ(report.phase(Phase::kExecute).worker_spans, 3u * spec_.workers);
  EXPECT_GT(report.phase(Phase::kExecute).wall_ms, 0.0);
  EXPECT_GT(report.phase(Phase::kExecute).busy_ms, 0.0);
  EXPECT_GE(report.phase(Phase::kExecute).epoch_max_ms,
            report.phase(Phase::kExecute).epoch_p50_ms);
  // Epoch-wall distribution is populated and ordered.
  EXPECT_GT(report.epoch_wall_p50_ms, 0.0);
  EXPECT_GE(report.epoch_wall_p95_ms, report.epoch_wall_p50_ms);
  EXPECT_GE(report.epoch_wall_max_ms, report.epoch_wall_p95_ms);
  // The table dump mentions every active phase.
  const std::string table = report.ToTable();
  EXPECT_NE(table.find("execute"), std::string::npos);
  EXPECT_NE(table.find("checkpoint"), std::string::npos);
}

TEST_F(ProfilerTest, WorkerSpansAreSortedAndDisjoint) {
  RunEpochs(3);
  for (std::size_t w = 0; w < spec_.workers; ++w) {
    const auto& spans = db_->profiler().worker_spans(w);
    ASSERT_FALSE(spans.empty());
    for (std::size_t i = 0; i < spans.size(); ++i) {
      EXPECT_EQ(spans[i].worker, w);
      if (i > 0) {
        // Recorded in order, never overlapping: each span starts at or after
        // the previous one ended.
        EXPECT_GE(spans[i].start_ns, spans[i - 1].start_ns + spans[i - 1].dur_ns);
      }
    }
  }
  // Driver phase brackets never overlap either (phases are sequential).
  const auto& driver = db_->profiler().driver_spans();
  ASSERT_FALSE(driver.empty());
  for (std::size_t i = 1; i < driver.size(); ++i) {
    EXPECT_GE(driver[i].start_ns, driver[i - 1].start_ns + driver[i - 1].dur_ns);
  }
}

TEST_F(ProfilerTest, WorkerSpansNestInsideMatchingDriverPhase) {
  RunEpochs(2);
  const auto& driver = db_->profiler().driver_spans();
  for (std::size_t w = 0; w < spec_.workers; ++w) {
    for (const PhaseSpan& span : db_->profiler().worker_spans(w)) {
      bool nested = false;
      for (const PhaseSpan& parent : driver) {
        if (parent.phase == span.phase && parent.epoch == span.epoch &&
            span.start_ns >= parent.start_ns &&
            span.start_ns + span.dur_ns <= parent.start_ns + parent.dur_ns) {
          nested = true;
          break;
        }
      }
      EXPECT_TRUE(nested) << "unnested span: phase " << PhaseName(span.phase) << " worker " << w
                          << " epoch " << span.epoch;
    }
  }
}

TEST_F(ProfilerTest, PerPhaseNvmDeltasSumToDeviceAndEngineTotals) {
  const sim::NvmCounters before = device_.stats().Snapshot();
  RunEpochs(4);
  const sim::NvmCounters after = device_.stats().Snapshot();
  const ProfileReport report = db_->ProfileReport();

  // Sum the per-phase attributions by hand (kOther picks up whatever
  // happened inside the epoch outside any bracketed phase).
  OpCounters summed;
  for (const PhaseAggregate& agg : report.phases) {
    summed += agg.ops;
  }
  EXPECT_EQ(summed.nvm_write_lines, report.total.nvm_write_lines);
  EXPECT_EQ(summed.nvm_persist_ops, report.total.nvm_persist_ops);
  EXPECT_EQ(summed.nvm_fences, report.total.nvm_fences);
  EXPECT_EQ(summed.nvm_read_bytes, report.total.nvm_read_bytes);

  // All device traffic in this window happened inside profiled epochs, so
  // the attributed totals equal the raw device deltas...
  EXPECT_EQ(report.total.nvm_write_lines, after.persisted_lines - before.persisted_lines);
  EXPECT_EQ(report.total.nvm_persist_ops, after.persist_ops - before.persist_ops);
  EXPECT_EQ(report.total.nvm_fences, after.fences - before.fences);
  EXPECT_EQ(report.total.nvm_read_bytes, after.read_bytes - before.read_bytes);
  EXPECT_GT(report.total.nvm_write_lines, 0u);

  // ...and the engine-stats mirror (populated at epoch end) agrees.
  EXPECT_EQ(db_->stats().nvm_write_lines.Sum(), report.total.nvm_write_lines);
  EXPECT_EQ(db_->stats().nvm_persist_ops.Sum(), report.total.nvm_persist_ops);
  EXPECT_EQ(db_->stats().nvm_fences.Sum(), report.total.nvm_fences);

  // The phases that must persist data actually got attributed writes.
  EXPECT_GT(report.phase(Phase::kLogInputs).ops.nvm_write_lines, 0u);
  EXPECT_GT(report.phase(Phase::kExecute).ops.nvm_write_lines, 0u);
  EXPECT_GT(report.phase(Phase::kCheckpoint).ops.nvm_fences, 0u);
}

TEST_F(ProfilerTest, ChromeTraceIsValidJsonWithRequiredKeys) {
  RunEpochs(2);
  std::ostringstream os;
  db_->profiler().WriteChromeTrace(os);
  const std::string text = os.str();

  JsonValue root;
  ASSERT_TRUE(JsonParser(text).Parse(&root)) << text.substr(0, 400);
  ASSERT_EQ(root.type, JsonValue::Type::kObject);
  ASSERT_TRUE(root.Has("traceEvents"));
  const JsonValue& events = root.At("traceEvents");
  ASSERT_EQ(events.type, JsonValue::Type::kArray);
  ASSERT_FALSE(events.array.empty());

  std::size_t complete_events = 0;
  std::size_t metadata_events = 0;
  std::uint64_t trace_write_lines = 0;
  for (const JsonValue& event : events.array) {
    ASSERT_EQ(event.type, JsonValue::Type::kObject);
    ASSERT_TRUE(event.Has("ph"));
    const std::string& ph = event.At("ph").str;
    if (ph == "M") {
      ++metadata_events;
      EXPECT_TRUE(event.Has("name"));
      EXPECT_TRUE(event.Has("pid"));
      EXPECT_TRUE(event.Has("tid"));
      continue;
    }
    ASSERT_EQ(ph, "X");
    ++complete_events;
    // Chrome Trace Event Format required keys for complete events.
    for (const char* key : {"name", "ts", "dur", "pid", "tid"}) {
      EXPECT_TRUE(event.Has(key)) << "missing " << key;
    }
    EXPECT_EQ(event.At("ts").type, JsonValue::Type::kNumber);
    EXPECT_EQ(event.At("dur").type, JsonValue::Type::kNumber);
    EXPECT_GE(event.At("dur").number, 0.0);
    if (event.Has("args") && event.At("args").Has("nvm_write_lines")) {
      trace_write_lines +=
          static_cast<std::uint64_t>(event.At("args").At("nvm_write_lines").number);
    }
  }
  EXPECT_GT(complete_events, 0u);
  // Thread-name metadata for the epoch track, driver track, and each worker.
  EXPECT_EQ(metadata_events, 2u + spec_.workers);

  // Args carry the per-phase deltas on the driver track and the unattributed
  // remainder on the epoch track, so summing across the whole trace must
  // reproduce the engine's total exactly.
  EXPECT_EQ(trace_write_lines, db_->stats().nvm_write_lines.Sum());
  EXPECT_GT(trace_write_lines, 0u);
}

TEST_F(ProfilerTest, ReconfigureResetsRecordedState) {
  RunEpochs(2);
  EXPECT_EQ(db_->ProfileReport().epochs, 2u);
  ProfilerConfig config;
  config.enabled = true;
  db_->ConfigureProfiler(config);  // re-enable clears history
  EXPECT_EQ(db_->ProfileReport().epochs, 0u);
  EXPECT_TRUE(db_->profiler().driver_spans().empty());
  RunEpochs(1);
  EXPECT_EQ(db_->ProfileReport().epochs, 1u);
}

TEST_F(ProfilerTest, SpanCapCountsDrops) {
  ProfilerConfig config;
  config.enabled = true;
  config.max_spans_per_track = 4;  // far fewer than spans per run
  db_->ConfigureProfiler(config);
  RunEpochs(3);
  EXPECT_GT(db_->profiler().dropped_spans(), 0u);
  for (std::size_t w = 0; w < spec_.workers; ++w) {
    EXPECT_LE(db_->profiler().worker_spans(w).size(), 4u);
  }
  // Aggregates keep counting past the span cap.
  EXPECT_EQ(db_->ProfileReport().epochs, 3u);
}

// Batch-append mode splits the append step into two sub-phases.
class ProfilerBatchAppendTest : public ProfilerTest {
 protected:
  ProfilerBatchAppendTest() {
    spec_.enable_batch_append = true;
  }
};

TEST_F(ProfilerBatchAppendTest, BatchAppendSubPhasesAreAttributed) {
  RunEpochs(2);
  const ProfileReport report = db_->ProfileReport();
  EXPECT_EQ(report.phase(Phase::kAppend).activations, 0u);
  EXPECT_EQ(report.phase(Phase::kAppendCollect).activations, 2u);
  EXPECT_EQ(report.phase(Phase::kAppendBuild).activations, 2u);
  EXPECT_EQ(report.phase(Phase::kAppendCollect).worker_spans, 2u * spec_.workers);
  EXPECT_EQ(report.phase(Phase::kAppendBuild).worker_spans, 2u * spec_.workers);
}

}  // namespace
}  // namespace nvc::test
