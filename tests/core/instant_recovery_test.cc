// Instant recovery (DESIGN.md section 12): the database comes up as soon as
// the checkpoint header and index are rebuilt, serving reads immediately.
// Reads of keys the crashed epoch wrote trigger targeted on-demand redo of
// exactly that key's transaction slice; a background backfill retires the
// rest and finally checkpoints the epoch. Every observable value — during
// the pending-replay window, after the backfill, and after further epochs —
// must match a reference database that never crashed.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/core/oracle.h"
#include "tests/test_util.h"

namespace nvc::test {
namespace {

using core::BackfillProgress;
using core::CrashSite;
using core::Database;
using core::DatabaseSpec;
using core::EpochResult;
using core::RecoveryReport;
using sim::NvmDevice;

constexpr std::size_t kRows = 48;      // pre-loaded: small values + big values
constexpr std::size_t kDynBase = 100;  // insert/delete churn range
constexpr std::size_t kDynRows = 16;
constexpr std::size_t kEpochs = 4;
constexpr std::size_t kTxnsPerEpoch = 48;

DatabaseSpec InstantSpec(std::size_t workers = 1) {
  DatabaseSpec spec = SmallKvSpec(workers);
  spec.enable_instant_recovery = true;
  return spec;
}

// Deterministic per-epoch stream with updates, RMWs, pool-allocated values,
// user aborts, and insert/delete churn. The two halves of the dynamic range
// alternate phase, so every epoch — including the crashed one — contains
// both inserts of fresh rows and deletes of rows from the previous epoch.
std::vector<std::unique_ptr<txn::Transaction>> EpochTxns(std::size_t e) {
  std::vector<std::unique_ptr<txn::Transaction>> txns;
  Rng rng(7000 + e);
  for (std::size_t i = 0; i < kTxnsPerEpoch; ++i) {
    const std::uint64_t pick = rng.NextBounded(100);
    const Key key = rng.NextBounded(kRows / 2);
    if (pick < 35) {
      txns.push_back(std::make_unique<KvRmwTxn>(key, rng.NextBounded(100)));
    } else if (pick < 60) {
      txns.push_back(std::make_unique<KvPutTxn>(key, rng.Next()));
    } else if (pick < 80) {
      txns.push_back(std::make_unique<KvBigPutTxn>(kRows / 2 + key, rng.Next()));
    } else if (pick < 90) {
      txns.push_back(std::make_unique<KvAbortTxn>(key));
    }  // else: gap — epochs vary in length
  }
  const std::size_t half = kDynRows / 2;
  for (std::size_t d = 0; d < kDynRows; ++d) {
    const Key key = kDynBase + d;
    const bool first_half = d < half;
    const bool insert_phase = first_half == (e % 2 == 0);
    if (insert_phase) {
      txns.push_back(std::make_unique<KvInsertTxn>(key, 9000 + e * 100 + d));
    } else if (e > 0) {
      txns.push_back(std::make_unique<KvDeleteTxn>(key));
    }
  }
  return txns;
}

std::vector<Key> AllKeys() {
  std::vector<Key> keys;
  for (std::size_t i = 0; i < kRows; ++i) {
    keys.push_back(i);
  }
  for (std::size_t d = 0; d < kDynRows; ++d) {
    keys.push_back(kDynBase + d);
  }
  return keys;
}

void LoadAll(Database& db) {
  for (std::size_t i = 0; i < kRows; ++i) {
    const std::uint64_t value = 5000 + i;
    db.BulkLoad(0, i, &value, sizeof(value));
  }
  db.FinalizeLoad();
}

// Runs `epochs` epochs without crashing and returns every key's final bytes
// (empty vector = key absent).
std::vector<std::vector<std::uint8_t>> ReferenceRun(const DatabaseSpec& spec,
                                                    std::size_t epochs = kEpochs) {
  NvmDevice device(ShadowDeviceConfig(spec));
  Database db(device, spec);
  db.Format();
  LoadAll(db);
  for (std::size_t e = 0; e < epochs; ++e) {
    db.ExecuteEpoch(EpochTxns(e));
  }
  std::vector<std::vector<std::uint8_t>> values;
  for (const Key key : AllKeys()) {
    values.push_back(ReadBytes(db, 0, key));
  }
  return values;
}

// Executes the stream and crashes in the last epoch at `site` (after
// `fire_after` hits), then simulates the power failure on the device.
void CrashLastEpoch(NvmDevice& device, const DatabaseSpec& spec, CrashSite site,
                    std::uint64_t chaos_seed = 0, int fire_after = 0) {
  {
    Database db(device, spec);
    db.Format();
    LoadAll(db);
    for (std::size_t e = 0; e + 1 < kEpochs; ++e) {
      ASSERT_FALSE(db.ExecuteEpoch(EpochTxns(e)).crashed);
    }
    int count = 0;
    db.SetCrashHook([&count, site, fire_after](CrashSite s) {
      return s == site && ++count > fire_after;
    });
    bool crashed = db.ExecuteEpoch(EpochTxns(kEpochs - 1)).crashed;
    if (!crashed) {
      // Pipelined epochs: a tail-side site fires on the tail thread after
      // ExecuteEpoch returned; quiescing surfaces it.
      crashed = !db.WaitIdle().ok();
    }
    ASSERT_TRUE(crashed) << "hook did not fire";
  }
  if (chaos_seed != 0) {
    device.CrashChaos(chaos_seed, 0.5);
  } else {
    device.Crash();
  }
}

void ExpectMatchesReference(Database& db, const std::vector<std::vector<std::uint8_t>>& expected,
                            const char* when) {
  const std::vector<Key> keys = AllKeys();
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(ReadBytes(db, 0, keys[i]), expected[i]) << when << ": key " << keys[i];
  }
}

// The tentpole contract: recovery returns before any replay work, every read
// during the pending window already observes replayed state, and the
// background backfill converges to exactly the reference state.
TEST(InstantRecoveryTest, ServesReadsDuringBackfillWindow) {
  const DatabaseSpec spec = InstantSpec();
  const auto expected = ReferenceRun(spec);

  NvmDevice device(ShadowDeviceConfig(spec));
  CrashLastEpoch(device, spec, CrashSite::kBeforeEpochPersist);

  Database db(device, spec);
  const RecoveryReport report = db.Recover(KvRegistry()).value();
  ASSERT_TRUE(report.instant);
  ASSERT_TRUE(report.replayed);
  EXPECT_GT(report.backfill_pending_keys, 0u);
  EXPECT_GT(report.time_to_first_commit, 0.0);
  ASSERT_TRUE(db.instant_recovery_pending());

  const BackfillProgress before = db.RecoveryProgress();
  EXPECT_TRUE(before.pending);
  EXPECT_EQ(before.total_keys, report.backfill_pending_keys);
  EXPECT_EQ(before.pending_keys, before.total_keys);
  EXPECT_EQ(before.replayed_txns, 0u);
  EXPECT_EQ(before.total_txns, report.replayed_txns);

  // Every read during the window triggers on-demand redo and must already
  // observe the crashed epoch's committed state.
  ExpectMatchesReference(db, expected, "during window");

  // Reads alone retire every written key; progress reflects that.
  const BackfillProgress mid = db.RecoveryProgress();
  EXPECT_TRUE(mid.pending);  // the epoch is not checkpointed until backfill
  EXPECT_LT(mid.pending_keys, mid.total_keys);

  ASSERT_TRUE(db.CompleteBackfill().ok());
  EXPECT_FALSE(db.instant_recovery_pending());
  EXPECT_FALSE(db.RecoveryProgress().pending);
  ExpectMatchesReference(db, expected, "after backfill");
}

// Incremental backfill steps retire keys monotonically without foreground
// help, and report shrinking progress.
TEST(InstantRecoveryTest, BackfillStepsRetireMonotonically) {
  const DatabaseSpec spec = InstantSpec();
  const auto expected = ReferenceRun(spec);

  NvmDevice device(ShadowDeviceConfig(spec));
  CrashLastEpoch(device, spec, CrashSite::kBeforeEpochPersist, /*chaos_seed=*/21);

  Database db(device, spec);
  ASSERT_TRUE(db.Recover(KvRegistry()).value().instant);
  std::size_t last = db.RecoveryProgress().pending_keys;
  while (db.instant_recovery_pending()) {
    const StatusOr<std::size_t> remaining = db.RunBackfillStep(4);
    ASSERT_TRUE(remaining.ok());
    EXPECT_LE(*remaining, last);
    last = *remaining;
  }
  EXPECT_EQ(last, 0u);
  ExpectMatchesReference(db, expected, "after stepped backfill");
}

// Chaos crashes at the sites around the epoch tail: recovered on-demand
// reads and the final backfilled state must match the reference.
TEST(InstantRecoveryTest, ChaosCrashesRecoverOnDemand) {
  const DatabaseSpec spec = InstantSpec();
  const auto expected = ReferenceRun(spec);

  for (const CrashSite site : {CrashSite::kAfterExecution, CrashSite::kBeforeEpochPersist}) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      NvmDevice device(ShadowDeviceConfig(spec));
      CrashLastEpoch(device, spec, site, seed);

      Database db(device, spec);
      const RecoveryReport report = db.Recover(KvRegistry()).value();
      ASSERT_TRUE(report.instant) << "site " << static_cast<int>(site) << " seed " << seed;
      ExpectMatchesReference(db, expected, "during window");
      ASSERT_TRUE(db.CompleteBackfill().ok());
      ExpectMatchesReference(db, expected, "after backfill");
    }
  }
}

// Crash mid-execution: some of the crashed epoch's final writes are already
// on NVMM (crash-repair case 3 — the redo must clear and rewrite their
// untrusted value locations). Backfill-only, no foreground reads.
TEST(InstantRecoveryTest, PartialExecutionRepairsPersistedFinals) {
  const DatabaseSpec spec = InstantSpec();
  const auto expected = ReferenceRun(spec);

  for (const int fire_after : {1, 10, 30}) {
    NvmDevice device(ShadowDeviceConfig(spec));
    CrashLastEpoch(device, spec, CrashSite::kMidExecution, 33 + fire_after, fire_after);

    Database db(device, spec);
    ASSERT_TRUE(db.Recover(KvRegistry()).value().instant);
    ASSERT_TRUE(db.CompleteBackfill().ok());
    ExpectMatchesReference(db, expected, "after backfill");
  }
}

// New epochs are admitted while replay is pending: ExecuteEpoch finishes the
// backfill first (the crashed epoch checkpoints before any new-epoch write),
// then runs the new epoch normally.
TEST(InstantRecoveryTest, NextEpochFinishesPendingBackfill) {
  const DatabaseSpec spec = InstantSpec();
  const auto expected = ReferenceRun(spec, kEpochs + 1);

  NvmDevice device(ShadowDeviceConfig(spec));
  CrashLastEpoch(device, spec, CrashSite::kBeforeEpochPersist, /*chaos_seed=*/5);

  Database db(device, spec);
  ASSERT_TRUE(db.Recover(KvRegistry()).value().instant);
  // Submit the next epoch immediately — no CompleteBackfill call.
  const EpochResult result = db.ExecuteEpoch(EpochTxns(kEpochs));
  ASSERT_FALSE(result.crashed);
  EXPECT_FALSE(db.instant_recovery_pending());
  ExpectMatchesReference(db, expected, "after next epoch");
}

// Crash during the background backfill, before the crashed epoch
// checkpointed: the superblock still names the old epoch, so a second
// recovery starts over from the same checkpoint + log + digest.
TEST(InstantRecoveryTest, DoubleCrashMidBackfill) {
  const DatabaseSpec spec = InstantSpec();
  const auto expected = ReferenceRun(spec);

  NvmDevice device(ShadowDeviceConfig(spec));
  CrashLastEpoch(device, spec, CrashSite::kBeforeEpochPersist, /*chaos_seed=*/7);

  {
    Database db(device, spec);
    ASSERT_TRUE(db.Recover(KvRegistry()).value().instant);
    int count = 0;
    db.SetCrashHook([&count](CrashSite s) {
      return s == CrashSite::kMidBackfill && ++count > 5;
    });
    const Status failed = db.CompleteBackfill();
    ASSERT_FALSE(failed.ok());
    EXPECT_EQ(failed.code(), StatusCode::kAborted);
  }
  device.CrashChaos(11, 0.5);

  Database recovered(device, spec);
  ASSERT_TRUE(recovered.Recover(KvRegistry()).value().instant);
  ASSERT_TRUE(recovered.CompleteBackfill().ok());
  ExpectMatchesReference(recovered, expected, "after double crash");
}

// Crash while a foreground read drives on-demand redo: the read surfaces
// kAborted, and a fresh recovery over the re-crashed image still converges.
TEST(InstantRecoveryTest, DoubleCrashDuringOnDemandRedo) {
  const DatabaseSpec spec = InstantSpec();
  const auto expected = ReferenceRun(spec);

  NvmDevice device(ShadowDeviceConfig(spec));
  CrashLastEpoch(device, spec, CrashSite::kBeforeEpochPersist, /*chaos_seed=*/13);

  {
    Database db(device, spec);
    ASSERT_TRUE(db.Recover(KvRegistry()).value().instant);
    db.SetCrashHook(
        [](CrashSite s) { return s == CrashSite::kMidInstantRecoveryOnDemand; });
    // Scan until a read lands on a still-pending key and fires the hook.
    bool fired = false;
    std::uint8_t buffer[4096];
    for (const Key key : AllKeys()) {
      const StatusOr<std::uint32_t> n = db.ReadCommitted(0, key, buffer, sizeof(buffer));
      if (!n.ok() && n.status().code() == StatusCode::kAborted) {
        fired = true;
        break;
      }
    }
    ASSERT_TRUE(fired) << "no read hit a pending key";
  }
  device.CrashChaos(17, 0.5);

  Database recovered(device, spec);
  ASSERT_TRUE(recovered.Recover(KvRegistry()).value().instant);
  ExpectMatchesReference(recovered, expected, "during window");
  ASSERT_TRUE(recovered.CompleteBackfill().ok());
  ExpectMatchesReference(recovered, expected, "after backfill");
}

// Instant recovery composes with the persistent-index fast rebuild: both
// fast phases run, and the redo path keeps the NVMM index consistent.
TEST(InstantRecoveryTest, PersistentIndexConfig) {
  DatabaseSpec spec = InstantSpec();
  spec.enable_persistent_index = true;
  const auto expected = ReferenceRun(spec);

  NvmDevice device(ShadowDeviceConfig(spec));
  CrashLastEpoch(device, spec, CrashSite::kBeforeEpochPersist, /*chaos_seed=*/19);

  Database db(device, spec);
  const RecoveryReport report = db.Recover(KvRegistry()).value();
  ASSERT_TRUE(report.instant);
  ExpectMatchesReference(db, expected, "during window");
  ASSERT_TRUE(db.CompleteBackfill().ok());
  ExpectMatchesReference(db, expected, "after backfill");
  std::string diff;
  EXPECT_EQ(core::ValidatePersistentIndex(db, &diff), 0u) << diff;
}

// Instant recovery with the cold tier: demoted values are readable during
// the window and the backfilled state matches the cold-tier reference.
TEST(InstantRecoveryTest, ColdTierConfig) {
  DatabaseSpec spec = InstantSpec();
  spec.enable_cold_tier = true;
  spec.cache_k = 1;  // short LRU window so demotions happen within the run
  spec.cold_block_size = 1024;
  spec.cold_blocks_per_core = 4096;
  spec.cold_freelist_capacity = 8192;

  const auto cold_config = [&spec] {
    sim::NvmConfig config;
    config.size_bytes = Database::RequiredColdDeviceBytes(spec);
    config.crash_tracking = sim::CrashTracking::kShadow;
    config.access_granule = 4096;
    return config;
  }();

  std::vector<std::vector<std::uint8_t>> expected;
  {
    NvmDevice device(ShadowDeviceConfig(spec));
    NvmDevice cold(cold_config);
    Database db(device, spec, &cold);
    db.Format();
    LoadAll(db);
    for (std::size_t e = 0; e < kEpochs; ++e) {
      db.ExecuteEpoch(EpochTxns(e));
    }
    for (const Key key : AllKeys()) {
      expected.push_back(ReadBytes(db, 0, key));
    }
  }

  NvmDevice device(ShadowDeviceConfig(spec));
  NvmDevice cold(cold_config);
  {
    Database db(device, spec, &cold);
    db.Format();
    LoadAll(db);
    for (std::size_t e = 0; e + 1 < kEpochs; ++e) {
      ASSERT_FALSE(db.ExecuteEpoch(EpochTxns(e)).crashed);
    }
    db.SetCrashHook([](CrashSite s) { return s == CrashSite::kBeforeEpochPersist; });
    bool crashed = db.ExecuteEpoch(EpochTxns(kEpochs - 1)).crashed;
    if (!crashed) {
      crashed = !db.WaitIdle().ok();  // tail-thread site under pipelining
    }
    ASSERT_TRUE(crashed);
  }
  device.CrashChaos(23, 0.5);
  cold.CrashChaos(29, 0.5);

  Database db(device, spec, &cold);
  ASSERT_TRUE(db.Recover(KvRegistry()).value().instant);
  ExpectMatchesReference(db, expected, "during window");
  ASSERT_TRUE(db.CompleteBackfill().ok());
  ExpectMatchesReference(db, expected, "after backfill");
}

// Foreground reads race the background backfill from separate threads (the
// TSan shard runs this): every read observes the reference value, whether it
// was served by on-demand redo, by an already-retired row, or after the
// window closed.
TEST(InstantRecoveryRaceTest, ConcurrentReadsDuringBackfill) {
  const DatabaseSpec spec = InstantSpec(/*workers=*/2);
  const auto expected = ReferenceRun(spec);

  NvmDevice device(ShadowDeviceConfig(spec));
  CrashLastEpoch(device, spec, CrashSite::kBeforeEpochPersist, /*chaos_seed=*/31);

  Database db(device, spec);
  ASSERT_TRUE(db.Recover(KvRegistry()).value().instant);

  const std::vector<Key> keys = AllKeys();
  std::atomic<std::size_t> mismatches{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&db, &keys, &expected, &mismatches, t] {
      for (int pass = 0; pass < 3; ++pass) {
        for (std::size_t i = t % 2; i < keys.size(); i += 1 + pass % 2) {
          std::vector<std::uint8_t> buffer(4096);
          const StatusOr<std::uint32_t> n =
              db.ReadCommitted(0, keys[i], buffer.data(), buffer.size());
          std::vector<std::uint8_t> got;
          if (n.ok()) {
            buffer.resize(*n);
            got = std::move(buffer);
          }
          if (got != expected[i]) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  while (db.instant_recovery_pending()) {
    ASSERT_TRUE(db.RunBackfillStep(8).ok());
  }
  for (auto& reader : readers) {
    reader.join();
  }
  EXPECT_EQ(mismatches.load(), 0u);
  ExpectMatchesReference(db, expected, "after race");
}

// Regression for the window-contention fix: reads during the pending window
// used to serialize on one mutex, so a single slow on-demand redo stalled
// every reader. With the striped per-key gate, a reader stuck inside one
// key's redo (simulated by a crash hook that blocks while the redo holds the
// window mutex) must not stall readers of keys that are already retired or
// were never pending — they bypass the mutex via their stripe.
TEST(InstantRecoveryRaceTest, RetiredKeyReadsProgressWhileRedoBlocked) {
  const DatabaseSpec spec = InstantSpec();
  const auto expected = ReferenceRun(spec);

  NvmDevice device(ShadowDeviceConfig(spec));
  CrashLastEpoch(device, spec, CrashSite::kBeforeEpochPersist);

  Database db(device, spec);
  ASSERT_TRUE(db.Recover(KvRegistry()).value().instant);
  ASSERT_TRUE(db.instant_recovery_pending());

  // The crashed epoch (odd index) deterministically re-inserts the second
  // half of the dynamic range, so kDynBase + kDynRows/2 is pending-replay.
  const Key pending_key = kDynBase + kDynRows / 2;
  // Retire one key up front by reading it; its later reads must bypass the
  // window mutex entirely.
  const Key retired_key = 0;
  (void)ReadBytes(db, 0, retired_key);

  std::atomic<bool> redo_blocked{false};
  std::atomic<bool> release{false};
  db.SetCrashHook([&redo_blocked, &release](CrashSite s) {
    if (s == CrashSite::kMidInstantRecoveryOnDemand) {
      redo_blocked.store(true, std::memory_order_release);
      while (!release.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
    }
    return false;
  });

  std::thread blocked_reader([&db, pending_key] {
    std::uint8_t buffer[512];
    (void)db.ReadCommitted(0, pending_key, buffer, sizeof(buffer));
  });

  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!redo_blocked.load(std::memory_order_acquire)) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "redo never reached the hook";
    std::this_thread::yield();
  }

  // While the redo is wedged inside the window mutex, a retired-key read
  // must still complete.
  std::atomic<bool> retired_read_done{false};
  std::thread parallel_reader([&db, &retired_read_done, retired_key] {
    std::uint8_t buffer[512];
    (void)db.ReadCommitted(0, retired_key, buffer, sizeof(buffer));
    retired_read_done.store(true, std::memory_order_release);
  });
  while (!retired_read_done.load(std::memory_order_acquire)) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "retired-key read stalled behind the blocked on-demand redo";
    std::this_thread::yield();
  }
  EXPECT_FALSE(release.load());  // the redo was still blocked when it finished

  release.store(true, std::memory_order_release);
  blocked_reader.join();
  parallel_reader.join();

  db.SetCrashHook({});
  ASSERT_TRUE(db.CompleteBackfill().ok());
  ExpectMatchesReference(db, expected, "after backfill");
}

}  // namespace
}  // namespace nvc::test
