// Crash-recovery correctness: for every crash site and a sweep of chaos
// seeds, the recovered database must be byte-identical (per key) to a
// reference database that executed the same transaction stream without
// crashing. Deterministic replay makes this exact.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "tests/test_util.h"

namespace nvc::test {
namespace {

using core::CrashSite;
using core::Database;
using core::DatabaseSpec;
using core::EpochResult;
using core::RecoveryReport;
using sim::NvmDevice;

constexpr std::size_t kRows = 64;
constexpr std::size_t kEpochs = 4;
constexpr std::size_t kTxnsPerEpoch = 40;

// Builds the deterministic transaction stream for one epoch.
std::vector<std::unique_ptr<txn::Transaction>> EpochTxns(std::size_t epoch_index) {
  std::vector<std::unique_ptr<txn::Transaction>> txns;
  Rng rng(1234 + epoch_index);
  for (std::size_t i = 0; i < kTxnsPerEpoch; ++i) {
    const Key key = rng.NextBounded(kRows / 2);  // contended half of the keyspace
    const std::uint64_t pick = rng.NextBounded(100);
    if (pick < 40) {
      txns.push_back(std::make_unique<KvRmwTxn>(key, rng.NextBounded(100)));
    } else if (pick < 70) {
      txns.push_back(std::make_unique<KvPutTxn>(key, rng.Next()));
    } else {
      // Big values land in the persistent value pool and exercise major GC.
      // Use the upper half of the keyspace so RMW keys keep 8-byte values.
      txns.push_back(std::make_unique<KvBigPutTxn>(kRows / 2 + key, rng.Next()));
    }
  }
  return txns;
}

void LoadAll(Database& db) {
  for (std::size_t i = 0; i < kRows; ++i) {
    const std::uint64_t value = 5000 + i;
    db.BulkLoad(0, i, &value, sizeof(value));
  }
  db.FinalizeLoad();
}

// Runs the full stream without crashing and returns the final key values.
std::vector<std::vector<std::uint8_t>> ReferenceRun(const DatabaseSpec& spec) {
  NvmDevice device(ShadowDeviceConfig(spec));
  Database db(device, spec);
  db.Format();
  LoadAll(db);
  for (std::size_t e = 0; e < kEpochs; ++e) {
    db.ExecuteEpoch(EpochTxns(e));
  }
  std::vector<std::vector<std::uint8_t>> values(kRows);
  for (std::size_t i = 0; i < kRows; ++i) {
    values[i] = ReadBytes(db, 0, i);
  }
  return values;
}

// Crash during the last epoch at `site`, recover, finish nothing else, and
// compare against the reference.
void RunCrashAt(CrashSite site, bool chaos, std::uint64_t chaos_seed = 0) {
  const DatabaseSpec spec = SmallKvSpec();
  const std::vector<std::vector<std::uint8_t>> expected = ReferenceRun(spec);

  NvmDevice device(ShadowDeviceConfig(spec));
  {
    Database db(device, spec);
    db.Format();
    LoadAll(db);
    for (std::size_t e = 0; e + 1 < kEpochs; ++e) {
      ASSERT_FALSE(db.ExecuteEpoch(EpochTxns(e)).crashed);
    }
    db.SetCrashHook([site](CrashSite s) { return s == site; });
    EpochResult result = db.ExecuteEpoch(EpochTxns(kEpochs - 1));
    if (!result.crashed) {
      // Pipelined epochs: a site inside the persistence tail fires on the
      // tail thread after ExecuteEpoch returned; quiescing surfaces it.
      result.crashed = !db.WaitIdle().ok();
    }
    ASSERT_TRUE(result.crashed) << "crash hook did not fire";
  }
  if (chaos) {
    device.CrashChaos(chaos_seed, 0.5);
  } else {
    device.Crash();
  }

  Database recovered(device, spec);
  const txn::TxnRegistry registry = KvRegistry();
  const RecoveryReport report = recovered.Recover(registry).value();
  // If the crash happened before the log was complete, the epoch never
  // started executing; the recovered state must equal the previous epoch.
  // Replay the last epoch manually in that case.
  if (!report.replayed) {
    recovered.ExecuteEpoch(EpochTxns(kEpochs - 1));
  }
  for (std::size_t i = 0; i < kRows; ++i) {
    EXPECT_EQ(ReadBytes(recovered, 0, i), expected[i]) << "key " << i << " site "
                                                       << static_cast<int>(site);
  }
}

class CrashSiteTest : public ::testing::TestWithParam<CrashSite> {};

TEST_P(CrashSiteTest, DeterministicCrashRecovers) { RunCrashAt(GetParam(), /*chaos=*/false); }

TEST_P(CrashSiteTest, ChaosCrashRecovers) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    RunCrashAt(GetParam(), /*chaos=*/true, seed);
  }
}

INSTANTIATE_TEST_SUITE_P(AllSites, CrashSiteTest,
                         ::testing::Values(CrashSite::kAfterLog, CrashSite::kAfterInsert,
                                           CrashSite::kDuringMajorGc, CrashSite::kDuringGcPass2,
                                           CrashSite::kAfterGcPersist,
                                           CrashSite::kAfterAppend, CrashSite::kAfterExecution,
                                           CrashSite::kBeforeEpochPersist));

// Crash in the middle of the execution phase after a given number of
// transactions have run (partial final writes on NVMM).
class MidExecutionCrashTest : public ::testing::TestWithParam<int> {};

TEST_P(MidExecutionCrashTest, RecoversFromPartialExecution) {
  const int crash_after = GetParam();
  const DatabaseSpec spec = SmallKvSpec();
  const std::vector<std::vector<std::uint8_t>> expected = ReferenceRun(spec);

  NvmDevice device(ShadowDeviceConfig(spec));
  {
    Database db(device, spec);
    db.Format();
    LoadAll(db);
    for (std::size_t e = 0; e + 1 < kEpochs; ++e) {
      ASSERT_FALSE(db.ExecuteEpoch(EpochTxns(e)).crashed);
    }
    int count = 0;
    db.SetCrashHook([&count, crash_after](CrashSite s) {
      return s == CrashSite::kMidExecution && ++count > crash_after;
    });
    ASSERT_TRUE(db.ExecuteEpoch(EpochTxns(kEpochs - 1)).crashed);
  }
  device.CrashChaos(99 + crash_after, 0.5);

  Database recovered(device, spec);
  const txn::TxnRegistry registry = KvRegistry();
  const RecoveryReport report = recovered.Recover(registry).value();
  ASSERT_TRUE(report.replayed);
  EXPECT_EQ(report.replayed_txns, kTxnsPerEpoch);
  for (std::size_t i = 0; i < kRows; ++i) {
    EXPECT_EQ(ReadBytes(recovered, 0, i), expected[i]) << "key " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Points, MidExecutionCrashTest,
                         ::testing::Values(0, 1, 5, 10, 20, 35, 39));

// Repeated crash-recover-crash cycles on the same epoch.
TEST(RecoveryTest, DoubleCrashOnSameEpoch) {
  const DatabaseSpec spec = SmallKvSpec();
  const std::vector<std::vector<std::uint8_t>> expected = ReferenceRun(spec);

  NvmDevice device(ShadowDeviceConfig(spec));
  {
    Database db(device, spec);
    db.Format();
    LoadAll(db);
    for (std::size_t e = 0; e + 1 < kEpochs; ++e) {
      db.ExecuteEpoch(EpochTxns(e));
    }
    int count = 0;
    db.SetCrashHook([&count](CrashSite s) {
      return s == CrashSite::kMidExecution && ++count > 15;
    });
    ASSERT_TRUE(db.ExecuteEpoch(EpochTxns(kEpochs - 1)).crashed);
  }
  device.CrashChaos(7, 0.3);

  const txn::TxnRegistry registry = KvRegistry();
  {
    // First recovery attempt crashes partway through the replay.
    Database db(device, spec);
    int count = 0;
    db.SetCrashHook([&count](CrashSite s) {
      return s == CrashSite::kMidExecution && ++count > 25;
    });
    const auto failed = db.Recover(registry);
    ASSERT_FALSE(failed.ok());
    EXPECT_EQ(failed.status().code(), nvc::StatusCode::kAborted);
  }
  device.CrashChaos(8, 0.7);

  Database recovered(device, spec);
  const core::RecoveryReport report = recovered.Recover(registry).value();
  ASSERT_TRUE(report.replayed);
  for (std::size_t i = 0; i < kRows; ++i) {
    EXPECT_EQ(ReadBytes(recovered, 0, i), expected[i]) << "key " << i;
  }
}

// Multi-worker crash recovery: coordinator-site crash hooks work with any
// worker count, and multi-worker replay restores the same state as the
// multi-worker reference run.
class MultiWorkerCrashTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MultiWorkerCrashTest, CoordinatorSiteCrashRecovers) {
  const std::size_t workers = GetParam();
  const DatabaseSpec spec = SmallKvSpec(workers);

  // Reference (uncrashed) run with the same worker count.
  std::vector<std::vector<std::uint8_t>> expected;
  {
    NvmDevice device(ShadowDeviceConfig(spec));
    Database db(device, spec);
    db.Format();
    LoadAll(db);
    for (std::size_t e = 0; e < kEpochs; ++e) {
      db.ExecuteEpoch(EpochTxns(e));
    }
    for (std::size_t i = 0; i < kRows; ++i) {
      expected.push_back(ReadBytes(db, 0, i));
    }
  }

  for (const CrashSite site : {CrashSite::kAfterInsert, CrashSite::kAfterAppend,
                               CrashSite::kAfterExecution, CrashSite::kBeforeEpochPersist}) {
    NvmDevice device(ShadowDeviceConfig(spec));
    {
      Database db(device, spec);
      db.Format();
      LoadAll(db);
      for (std::size_t e = 0; e + 1 < kEpochs; ++e) {
        ASSERT_FALSE(db.ExecuteEpoch(EpochTxns(e)).crashed);
      }
      db.SetCrashHook([site](CrashSite s) { return s == site; });
      bool crashed = db.ExecuteEpoch(EpochTxns(kEpochs - 1)).crashed;
      if (!crashed) {
        crashed = !db.WaitIdle().ok();  // tail-thread site under pipelining
      }
      ASSERT_TRUE(crashed);
    }
    device.CrashChaos(600 + static_cast<int>(site), 0.5);

    Database recovered(device, spec);
    const RecoveryReport report = recovered.Recover(KvRegistry()).value();
    ASSERT_TRUE(report.replayed);
    for (std::size_t i = 0; i < kRows; ++i) {
      ASSERT_EQ(ReadBytes(recovered, 0, i), expected[i])
          << "workers " << workers << " site " << static_cast<int>(site) << " key " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Workers, MultiWorkerCrashTest, ::testing::Values(2u, 4u));

// Recovery when nothing crashed mid-epoch (clean shutdown): no replay, state
// equals the checkpoint.
TEST(RecoveryTest, CleanRestart) {
  const DatabaseSpec spec = SmallKvSpec();
  NvmDevice device(ShadowDeviceConfig(spec));
  {
    Database db(device, spec);
    db.Format();
    LoadAll(db);
    db.ExecuteEpoch(EpochTxns(0));
  }
  device.Crash();  // drop any unflushed (there should be none that matter)

  Database recovered(device, spec);
  const txn::TxnRegistry registry = KvRegistry();
  const RecoveryReport report = recovered.Recover(registry).value();
  EXPECT_EQ(report.recovered_epoch, 2u);
  EXPECT_EQ(report.rows_scanned, kRows);

  // The completed epoch's effects are present.
  std::size_t diffs = 0;
  NvmDevice ref_device(ShadowDeviceConfig(spec));
  Database ref(ref_device, spec);
  ref.Format();
  LoadAll(ref);
  ref.ExecuteEpoch(EpochTxns(0));
  for (std::size_t i = 0; i < kRows; ++i) {
    if (ReadBytes(recovered, 0, i) != ReadBytes(ref, 0, i)) {
      ++diffs;
    }
  }
  EXPECT_EQ(diffs, 0u);
}

}  // namespace
}  // namespace nvc::test
