// Cold-tier extension: values whose cached copy ages out of the DRAM cache
// are demoted from NVMM to block storage; reads fetch them back (slowly);
// writes promote rows to the hot tier; every crash window leaves a valid
// state (possibly with a bounded cold-block leak, never corruption).
#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace nvc::test {
namespace {

using core::CrashSite;
using core::Database;
using core::DatabaseSpec;
using sim::NvmDevice;

DatabaseSpec ColdSpec(Epoch k = 2) {
  DatabaseSpec spec = SmallKvSpec();
  spec.enable_cold_tier = true;
  spec.cache_k = k;  // short LRU window: rows go cold quickly
  spec.cold_block_size = 1024;
  spec.cold_blocks_per_core = 4096;
  spec.cold_freelist_capacity = 8192;
  return spec;
}

sim::NvmConfig ColdDeviceConfig(const DatabaseSpec& spec) {
  sim::NvmConfig config;
  config.size_bytes = Database::RequiredColdDeviceBytes(spec);
  config.crash_tracking = sim::CrashTracking::kShadow;
  config.access_granule = 4096;
  return config;
}

struct ColdFixture {
  explicit ColdFixture(const DatabaseSpec& s)
      : spec(s), hot(ShadowDeviceConfig(spec)), cold(ColdDeviceConfig(spec)) {}

  std::unique_ptr<Database> Open() {
    return std::make_unique<Database>(hot, spec, &cold);
  }

  DatabaseSpec spec;
  NvmDevice hot;
  NvmDevice cold;
};

// Runs idle epochs (single put to an unrelated key) to age the cache.
void IdleEpochs(Database& db, int n, Key busy_key) {
  for (int i = 0; i < n; ++i) {
    std::vector<std::unique_ptr<txn::Transaction>> txns;
    txns.push_back(std::make_unique<KvPutTxn>(busy_key, 1'000'000 + i));
    db.ExecuteEpoch(std::move(txns));
  }
}

TEST(ColdTierTest, ColdValuesDemoteAndReadBack) {
  ColdFixture f(ColdSpec());
  auto db = f.Open();
  db->Format();
  const std::uint64_t busy = 0;
  db->BulkLoad(0, busy, &busy, sizeof(busy));
  db->FinalizeLoad();

  // Create 8 big-value rows (pool-resident) and cache them via final writes.
  {
    std::vector<std::unique_ptr<txn::Transaction>> txns;
    for (Key key = 100; key < 108; ++key) {
      txns.push_back(std::make_unique<KvInsertTxn>(key, 1));
    }
    db->ExecuteEpoch(std::move(txns));
    std::vector<std::unique_ptr<txn::Transaction>> writes;
    for (Key key = 100; key < 108; ++key) {
      writes.push_back(std::make_unique<KvBigPutTxn>(key, 7));
    }
    db->ExecuteEpoch(std::move(writes));
  }
  EXPECT_EQ(db->stats().demotions.Sum(), 0u);

  // Age the rows out of the cache (K = 2): after K+2 idle epochs the cache
  // evicts them and the engine demotes their values to the cold device.
  IdleEpochs(*db, 6, busy);
  EXPECT_EQ(db->stats().demotions.Sum(), 8u);
  const auto memory = db->GetMemoryBreakdown();
  EXPECT_GT(memory.cold_value_bytes, 0u);

  // Reads still return the exact values (served from the cold tier).
  db->stats().Reset();
  for (Key key = 100; key < 108; ++key) {
    std::vector<std::uint8_t> expected(kBigValueSize);
    KvBigPutTxn::Fill(key, 7, expected.data());
    EXPECT_EQ(ReadBytes(*db, 0, key), expected) << "key " << key;
  }
  EXPECT_EQ(db->stats().cold_reads.Sum(), 8u);
}

TEST(ColdTierTest, WritePromotesBackToHotTier) {
  ColdFixture f(ColdSpec());
  auto db = f.Open();
  db->Format();
  const std::uint64_t busy = 0;
  db->BulkLoad(0, busy, &busy, sizeof(busy));
  db->FinalizeLoad();
  {
    std::vector<std::unique_ptr<txn::Transaction>> txns;
    txns.push_back(std::make_unique<KvInsertTxn>(100, 1));
    db->ExecuteEpoch(std::move(txns));
    std::vector<std::unique_ptr<txn::Transaction>> writes;
    writes.push_back(std::make_unique<KvBigPutTxn>(100, 7));
    db->ExecuteEpoch(std::move(writes));
  }
  IdleEpochs(*db, 6, busy);
  ASSERT_EQ(db->stats().demotions.Sum(), 1u);

  // A new write allocates from the hot tier again; the stale cold version is
  // collected by the major GC in the following epoch.
  {
    std::vector<std::unique_ptr<txn::Transaction>> txns;
    txns.push_back(std::make_unique<KvBigPutTxn>(100, 9));
    db->ExecuteEpoch(std::move(txns));
  }
  IdleEpochs(*db, 1, busy);  // lets major GC run
  std::vector<std::uint8_t> expected(kBigValueSize);
  KvBigPutTxn::Fill(100, 9, expected.data());
  db->stats().Reset();
  EXPECT_EQ(ReadBytes(*db, 0, 100), expected);
  EXPECT_EQ(db->stats().cold_reads.Sum(), 0u) << "value still served from the cold tier";
}

// Crash at every interesting window around a demotion; the recovered value
// must always be intact (old or new location, never garbage).
class ColdCrashTest : public ::testing::TestWithParam<int> {};

TEST_P(ColdCrashTest, DemotionCrashWindowsAreSafe) {
  const int crash_epoch_offset = GetParam();
  ColdFixture f(ColdSpec());
  {
    auto db = f.Open();
    db->Format();
    const std::uint64_t busy = 0;
    db->BulkLoad(0, busy, &busy, sizeof(busy));
    db->FinalizeLoad();
    std::vector<std::unique_ptr<txn::Transaction>> txns;
    txns.push_back(std::make_unique<KvInsertTxn>(100, 1));
    db->ExecuteEpoch(std::move(txns));
    std::vector<std::unique_ptr<txn::Transaction>> writes;
    writes.push_back(std::make_unique<KvBigPutTxn>(100, 7));
    db->ExecuteEpoch(std::move(writes));

    // Crash in one of the epochs around the demotion point (epoch offset 4
    // from here triggers the eviction+demotion).
    int remaining = crash_epoch_offset;
    db->SetCrashHook([&remaining](CrashSite site) {
      return site == CrashSite::kBeforeEpochPersist && remaining-- == 0;
    });
    for (int i = 0; i < 8; ++i) {
      std::vector<std::unique_ptr<txn::Transaction>> idle;
      idle.push_back(std::make_unique<KvPutTxn>(0, 1'000'000 + i));
      if (db->ExecuteEpoch(std::move(idle)).crashed) {
        break;
      }
    }
  }
  f.hot.CrashChaos(40 + crash_epoch_offset, 0.5);
  f.cold.CrashChaos(50 + crash_epoch_offset, 0.5);

  auto db = f.Open();
  const auto report = db->Recover(KvRegistry()).value();
  ASSERT_TRUE(report.replayed);
  std::vector<std::uint8_t> expected(kBigValueSize);
  KvBigPutTxn::Fill(100, 7, expected.data());
  EXPECT_EQ(ReadBytes(*db, 0, 100), expected);

  // The database stays fully operational afterwards.
  std::vector<std::unique_ptr<txn::Transaction>> txns;
  txns.push_back(std::make_unique<KvBigPutTxn>(100, 11));
  db->ExecuteEpoch(std::move(txns));
  KvBigPutTxn::Fill(100, 11, expected.data());
  EXPECT_EQ(ReadBytes(*db, 0, 100), expected);
}

INSTANTIATE_TEST_SUITE_P(Windows, ColdCrashTest, ::testing::Values(0, 1, 2, 3, 4, 5, 6, 7));

// Soak with the cold tier enabled: mixed sizes, aging, crashes.
TEST(ColdTierTest, MixedSoakWithCrashes) {
  DatabaseSpec spec = ColdSpec(/*k=*/1);
  ColdFixture f(spec);
  auto db = f.Open();
  db->Format();
  std::map<Key, std::vector<std::uint8_t>> model;
  for (Key key = 0; key < 16; ++key) {
    const std::uint64_t value = 50 + key;
    db->BulkLoad(0, key, &value, sizeof(value));
    std::vector<std::uint8_t> bytes(8);
    std::memcpy(bytes.data(), &value, 8);
    model[key] = bytes;
  }
  db->FinalizeLoad();

  Rng rng(4242);
  const auto registry = KvRegistry();
  for (int epoch = 0; epoch < 20; ++epoch) {
    std::vector<std::unique_ptr<txn::Transaction>> txns;
    std::vector<std::pair<Key, std::vector<std::uint8_t>>> effects;
    const int n = 1 + static_cast<int>(rng.NextBounded(8));
    for (int i = 0; i < n; ++i) {
      const Key key = rng.NextBounded(16);
      const auto size = static_cast<std::uint32_t>(rng.NextRange(1, 900));
      const std::uint64_t seed = rng.Next();
      txns.push_back(std::make_unique<KvVarPutTxn>(key, size, seed));
      effects.emplace_back(key, KvVarPutTxn::Pattern(key, size, seed));
    }
    const bool crash = rng.NextPercent(25);
    if (crash) {
      db->SetCrashHook(
          [](CrashSite site) { return site == CrashSite::kBeforeEpochPersist; });
      bool crashed = db->ExecuteEpoch(std::move(txns)).crashed;
      if (!crashed) {
        crashed = !db->WaitIdle().ok();  // tail-thread site under pipelining
      }
      ASSERT_TRUE(crashed);
      db.reset();
      f.hot.CrashChaos(8000 + epoch, 0.5);
      f.cold.CrashChaos(9000 + epoch, 0.5);
      db = f.Open();
      ASSERT_TRUE(db->Recover(registry).value().replayed);
    } else {
      db->SetCrashHook({});
      ASSERT_FALSE(db->ExecuteEpoch(std::move(txns)).crashed);
    }
    for (const auto& [key, bytes] : effects) {
      model[key] = bytes;
    }
    for (const auto& [key, bytes] : model) {
      ASSERT_EQ(ReadBytes(*db, 0, key), bytes) << "epoch " << epoch << " key " << key;
    }
  }
  EXPECT_GT(db->stats().demotions.Sum() + db->stats().cold_reads.Sum(), 0u);
}

}  // namespace
}  // namespace nvc::test
