// Aria-style concurrency control (paper section 7 future work): snapshot
// execution with buffered writes, deterministic conflict deferral, exactly
// one NVMM write per committed key per epoch, and unchanged crash recovery.
#include <gtest/gtest.h>

#include "src/workload/smallbank.h"
#include "tests/test_util.h"

namespace nvc::test {
namespace {

using core::ConcurrencyControl;
using core::CrashSite;
using core::Database;
using core::DatabaseSpec;
using core::EpochResult;
using sim::NvmDevice;

// An insert issued from execution (Aria's path).
class AriaInsertTxn final : public txn::Transaction {
 public:
  AriaInsertTxn(Key key, std::uint64_t value) : key_(key), value_(value) {}
  txn::TxnType type() const override { return 80; }
  void EncodeInputs(BinaryWriter& w) const override {
    w.Put(key_);
    w.Put(value_);
  }
  static std::unique_ptr<txn::Transaction> Decode(BinaryReader& r) {
    const auto key = r.Get<Key>();
    const auto value = r.Get<std::uint64_t>();
    return std::make_unique<AriaInsertTxn>(key, value);
  }
  void Execute(txn::ExecContext& ctx) override {
    ctx.Insert(0, key_, &value_, sizeof(value_));
  }

 private:
  Key key_;
  std::uint64_t value_;
};

DatabaseSpec AriaSpec() {
  DatabaseSpec spec = SmallKvSpec();
  spec.concurrency = ConcurrencyControl::kAria;
  return spec;
}

txn::TxnRegistry AriaRegistry() {
  txn::TxnRegistry registry = KvRegistry();
  registry.Register(80, AriaInsertTxn::Decode);
  return registry;
}

struct AriaFixture {
  AriaFixture() : spec(AriaSpec()), device(ShadowDeviceConfig(spec)), db(device, spec) {
    db.Format();
    for (Key key = 0; key < 16; ++key) {
      const std::uint64_t value = 100 + key;
      db.BulkLoad(0, key, &value, sizeof(value));
    }
    db.FinalizeLoad();
  }
  DatabaseSpec spec;
  NvmDevice device;
  Database db;
};

TEST(AriaTest, ConflictFreeBatchCommitsEverything) {
  AriaFixture f;
  std::vector<std::unique_ptr<txn::Transaction>> txns;
  for (Key key = 0; key < 8; ++key) {
    txns.push_back(std::make_unique<KvPutTxn>(key, 500 + key));
  }
  const EpochResult result = f.db.ExecuteEpoch(std::move(txns));
  EXPECT_EQ(result.committed, 8u);
  EXPECT_EQ(result.deferred, 0u);
  for (Key key = 0; key < 8; ++key) {
    EXPECT_EQ(ReadU64(f.db, 0, key), 500 + key);
  }
}

TEST(AriaTest, WawDefersAllButTheSmallestWriter) {
  AriaFixture f;
  std::vector<std::unique_ptr<txn::Transaction>> txns;
  txns.push_back(std::make_unique<KvPutTxn>(3, 1111));  // sid 1: commits
  txns.push_back(std::make_unique<KvPutTxn>(3, 2222));  // sid 2: deferred
  txns.push_back(std::make_unique<KvPutTxn>(3, 3333));  // sid 3: deferred
  const EpochResult first = f.db.ExecuteEpoch(std::move(txns));
  EXPECT_EQ(first.committed, 1u);
  EXPECT_EQ(first.deferred, 2u);
  EXPECT_EQ(ReadU64(f.db, 0, 3), 1111u);

  // The deferred pair re-runs next batch; again only the smaller commits.
  const EpochResult second = f.db.ExecuteEpoch({});
  EXPECT_EQ(second.committed, 1u);
  EXPECT_EQ(second.deferred, 1u);
  EXPECT_EQ(ReadU64(f.db, 0, 3), 2222u);
  const EpochResult third = f.db.ExecuteEpoch({});
  EXPECT_EQ(third.committed, 1u);
  EXPECT_EQ(third.deferred, 0u);
  EXPECT_EQ(ReadU64(f.db, 0, 3), 3333u);
}

TEST(AriaTest, RawDefersTheReader) {
  AriaFixture f;
  std::vector<std::unique_ptr<txn::Transaction>> txns;
  txns.push_back(std::make_unique<KvPutTxn>(5, 999));  // sid 1 writes key 5
  txns.push_back(std::make_unique<KvRmwTxn>(5, 1));    // sid 2 reads+writes key 5
  const EpochResult result = f.db.ExecuteEpoch(std::move(txns));
  EXPECT_EQ(result.committed, 1u);
  EXPECT_EQ(result.deferred, 1u);
  EXPECT_EQ(ReadU64(f.db, 0, 5), 999u);
  // Deferred RMW applies on top of the committed write next batch.
  f.db.ExecuteEpoch({});
  EXPECT_EQ(ReadU64(f.db, 0, 5), 999u * 3 + 1);
}

TEST(AriaTest, NoLostUpdatesUnderContention) {
  AriaFixture f;
  // 30 increments (v = v*1 pattern is order-sensitive; use RMW with delta 1
  // but track only the count: every increment must land exactly once).
  std::vector<std::unique_ptr<txn::Transaction>> txns;
  for (int i = 0; i < 30; ++i) {
    txns.push_back(std::make_unique<KvRmwTxn>(7, 0));  // v = v*3
  }
  std::size_t committed = 0;
  EpochResult result = f.db.ExecuteEpoch(std::move(txns));
  committed += result.committed;
  // Drain the deferred queue.
  int guard = 0;
  while (result.committed + result.aborted > 0 || result.deferred > 0) {
    ASSERT_LT(++guard, 64) << "deferred queue did not drain";
    result = f.db.ExecuteEpoch({});
    committed += result.committed;
    if (result.deferred == 0) {
      break;
    }
  }
  EXPECT_EQ(committed, 30u);
  std::uint64_t expected = 107;
  for (int i = 0; i < 30; ++i) {
    expected *= 3;
  }
  EXPECT_EQ(ReadU64(f.db, 0, 7), expected);
}

TEST(AriaTest, UserAbortConsumesTransaction) {
  AriaFixture f;
  std::vector<std::unique_ptr<txn::Transaction>> txns;
  txns.push_back(std::make_unique<KvAbortTxn>(2));
  const EpochResult result = f.db.ExecuteEpoch(std::move(txns));
  EXPECT_EQ(result.aborted, 1u);
  EXPECT_EQ(result.deferred, 0u);
  EXPECT_EQ(ReadU64(f.db, 0, 2), 102u);
  // Nothing lingers for the next batch.
  const EpochResult next = f.db.ExecuteEpoch({});
  EXPECT_EQ(next.committed + next.aborted + next.deferred, 0u);
}

TEST(AriaTest, InsertAndDeleteFromExecution) {
  AriaFixture f;
  {
    std::vector<std::unique_ptr<txn::Transaction>> txns;
    txns.push_back(std::make_unique<AriaInsertTxn>(500, 4242));
    const EpochResult result = f.db.ExecuteEpoch(std::move(txns));
    EXPECT_EQ(result.committed, 1u);
  }
  EXPECT_EQ(ReadU64(f.db, 0, 500), 4242u);
  {
    std::vector<std::unique_ptr<txn::Transaction>> txns;
    txns.push_back(std::make_unique<KvDeleteTxn>(500));
    f.db.ExecuteEpoch(std::move(txns));
  }
  EXPECT_EQ(ReadU64(f.db, 0, 500), ~0ULL);
}

TEST(AriaTest, DeterministicAcrossRuns) {
  auto run = [] {
    AriaFixture f;
    Rng rng(606);
    for (int e = 0; e < 6; ++e) {
      std::vector<std::unique_ptr<txn::Transaction>> txns;
      for (int i = 0; i < 40; ++i) {
        const Key key = rng.NextBounded(6);
        if (rng.NextPercent(60)) {
          txns.push_back(std::make_unique<KvRmwTxn>(key, rng.NextBounded(9)));
        } else {
          txns.push_back(std::make_unique<KvPutTxn>(key, rng.Next()));
        }
      }
      f.db.ExecuteEpoch(std::move(txns));
    }
    std::vector<std::uint64_t> state;
    for (Key key = 0; key < 16; ++key) {
      state.push_back(ReadU64(f.db, 0, key));
    }
    return state;
  };
  EXPECT_EQ(run(), run());
}

TEST(AriaTest, CrashRecoveryMatchesReference) {
  const DatabaseSpec spec = AriaSpec();
  auto epoch_txns = [](int e) {
    Rng rng(7100 + e);
    std::vector<std::unique_ptr<txn::Transaction>> txns;
    for (int i = 0; i < 40; ++i) {
      const Key key = rng.NextBounded(6);  // heavy conflicts -> deferrals
      if (rng.NextPercent(50)) {
        txns.push_back(std::make_unique<KvRmwTxn>(key, rng.NextBounded(9)));
      } else if (rng.NextPercent(50)) {
        txns.push_back(std::make_unique<KvPutTxn>(key, rng.Next()));
      } else {
        txns.push_back(std::make_unique<KvBigPutTxn>(6 + key, rng.Next()));
      }
    }
    return txns;
  };

  // Reference run (no crash).
  std::vector<std::vector<std::uint8_t>> expected;
  {
    NvmDevice device(ShadowDeviceConfig(spec));
    Database db(device, spec);
    db.Format();
    for (Key key = 0; key < 16; ++key) {
      const std::uint64_t value = 100 + key;
      db.BulkLoad(0, key, &value, sizeof(value));
    }
    db.FinalizeLoad();
    for (int e = 0; e < 4; ++e) {
      db.ExecuteEpoch(epoch_txns(e));
    }
    for (Key key = 0; key < 16; ++key) {
      expected.push_back(ReadBytes(db, 0, key));
    }
  }

  // Crashing run: the last epoch (which contains carried-over deferred
  // transactions) crashes mid-execution and is replayed from the log.
  NvmDevice device(ShadowDeviceConfig(spec));
  {
    Database db(device, spec);
    db.Format();
    for (Key key = 0; key < 16; ++key) {
      const std::uint64_t value = 100 + key;
      db.BulkLoad(0, key, &value, sizeof(value));
    }
    db.FinalizeLoad();
    for (int e = 0; e < 3; ++e) {
      db.ExecuteEpoch(epoch_txns(e));
    }
    int count = 0;
    db.SetCrashHook([&count](CrashSite site) {
      return site == CrashSite::kMidExecution && ++count > 20;
    });
    ASSERT_TRUE(db.ExecuteEpoch(epoch_txns(3)).crashed);
  }
  device.CrashChaos(71, 0.5);

  Database recovered(device, spec);
  const auto report = recovered.Recover(AriaRegistry()).value();
  ASSERT_TRUE(report.replayed);
  for (Key key = 0; key < 16; ++key) {
    EXPECT_EQ(ReadBytes(recovered, 0, key), expected[key]) << "key " << key;
  }
}

// A real workload under Aria: pure transfers conserve the total balance no
// matter how conflicts defer and reorder commits across batches.
TEST(AriaTest, SmallBankTransfersConserveMoney) {
  workload::SmallBankConfig config;
  config.customers = 200;
  config.hotspot_customers = 8;  // heavy conflicts
  workload::SmallBankWorkload generator(config);
  core::DatabaseSpec spec = generator.Spec(1);
  spec.concurrency = ConcurrencyControl::kAria;
  NvmDevice device(ShadowDeviceConfig(spec));
  Database db(device, spec);
  db.Format();
  generator.Load(db);
  db.FinalizeLoad();

  const workload::Balance initial =
      workload::SmallBankWorkload::TotalMoney(db, config.customers);
  Rng rng(808);
  for (int e = 0; e < 6; ++e) {
    std::vector<std::unique_ptr<txn::Transaction>> txns;
    for (int i = 0; i < 100; ++i) {
      const std::uint64_t from = rng.NextBounded(8);
      std::uint64_t to = rng.NextBounded(config.customers);
      if (to == from) {
        to = (to + 1) % config.customers;
      }
      txns.push_back(std::make_unique<workload::SbSendPaymentTxn>(
          from, to, static_cast<workload::Balance>(rng.NextRange(1, 50))));
    }
    db.ExecuteEpoch(std::move(txns));
    EXPECT_EQ(workload::SmallBankWorkload::TotalMoney(db, config.customers), initial)
        << "epoch " << e;
  }
  // Drain deferred transfers; conservation must hold throughout.
  for (int drain = 0; drain < 128; ++drain) {
    const EpochResult result = db.ExecuteEpoch({});
    EXPECT_EQ(workload::SmallBankWorkload::TotalMoney(db, config.customers), initial);
    if (result.deferred == 0) {
      break;
    }
  }
}

// Each committed key is written to NVMM exactly once per epoch, even when
// many transactions target it (the property that makes Aria compose with
// dual-version checkpointing).
TEST(AriaTest, OneNvmWritePerCommittedKey) {
  AriaFixture f;
  f.db.stats().Reset();
  std::vector<std::unique_ptr<txn::Transaction>> txns;
  for (int i = 0; i < 10; ++i) {
    txns.push_back(std::make_unique<KvPutTxn>(1, 100 + i));
  }
  const EpochResult result = f.db.ExecuteEpoch(std::move(txns));
  EXPECT_EQ(result.committed, 1u);
  EXPECT_EQ(result.deferred, 9u);
  EXPECT_EQ(f.db.stats().persistent_writes.Sum(), 1u);
}

}  // namespace
}  // namespace nvc::test
