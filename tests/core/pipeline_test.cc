// Pipelined-vs-barrier equivalence (DESIGN.md section 13).
//
// Epoch pipelining overlaps epoch N+1's front half with epoch N's persistence
// tail, but it must be a pure scheduling change: for any transaction stream
// the pipelined engine has to produce the same logical state, the same
// persisted NVMM image, and the same device line/fence ledger as the barrier
// engine. This suite proves that across the feature matrix (persistent
// index, cold tier, instant recovery, multi-worker), then crashes inside the
// overlap window at both new sites and checks recovery lands on the barrier
// reference state.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/core/database.h"
#include "src/core/oracle.h"
#include "src/sim/nvm_device.h"
#include "tests/test_util.h"

namespace nvc::test {
namespace {

using core::CrashSite;
using core::Database;
using core::DatabaseSpec;
using core::EpochResult;
using core::OracleState;
using core::RecoveryReport;
using sim::NvmCounters;
using sim::NvmDevice;

constexpr std::size_t kBaseRows = 32;
constexpr std::size_t kBigBase = 32;
constexpr std::size_t kBigRows = 24;
constexpr std::size_t kDynBase = 64;
constexpr std::size_t kDynRows = 16;
constexpr std::size_t kEpochs = 6;
constexpr std::size_t kTxnsPerEpoch = 24;

enum class Config { kDefault, kPindex, kColdTier, kInstant, kMultiWorker };

DatabaseSpec SpecFor(Config config, bool pipelined) {
  DatabaseSpec spec = SmallKvSpec(config == Config::kMultiWorker ? 4 : 1);
  spec.enable_epoch_pipeline = pipelined;
  switch (config) {
    case Config::kDefault:
    case Config::kMultiWorker:
      break;
    case Config::kPindex:
      spec.enable_persistent_index = true;
      break;
    case Config::kColdTier:
      spec.enable_cold_tier = true;
      spec.cache_k = 1;  // short LRU window so demotions happen within the run
      spec.cold_block_size = 1024;
      spec.cold_blocks_per_core = 4096;
      spec.cold_freelist_capacity = 8192;
      break;
    case Config::kInstant:
      spec.enable_instant_recovery = true;
      break;
  }
  return spec;
}

sim::NvmConfig ColdDeviceConfig(const DatabaseSpec& spec) {
  sim::NvmConfig config;
  config.size_bytes = Database::RequiredColdDeviceBytes(spec);
  config.crash_tracking = sim::CrashTracking::kShadow;
  config.access_granule = 4096;
  return config;
}

// Deterministic mixed stream: inline puts/RMWs, pool values (major GC and
// demotion fodder), and insert/delete churn.
std::vector<std::unique_ptr<txn::Transaction>> MakeEpoch(std::uint64_t epoch,
                                                         std::set<Key>* dyn_live) {
  Rng rng(epoch * 0x9e3779b97f4a7c15ULL + 11);
  std::vector<std::unique_ptr<txn::Transaction>> txns;
  std::set<Key> dyn_touched;
  for (std::size_t i = 0; i < kTxnsPerEpoch; ++i) {
    const std::uint64_t pick = rng.NextBounded(100);
    if (pick < 30) {
      txns.push_back(std::make_unique<KvPutTxn>(rng.NextBounded(kBaseRows), rng.Next()));
    } else if (pick < 50) {
      txns.push_back(
          std::make_unique<KvRmwTxn>(rng.NextBounded(kBaseRows), rng.NextBounded(1000)));
    } else if (pick < 65) {
      txns.push_back(
          std::make_unique<KvBigPutTxn>(kBigBase + rng.NextBounded(kBigRows), rng.Next()));
    } else if (pick < 78) {
      txns.push_back(std::make_unique<KvVarPutTxn>(
          kBigBase + rng.NextBounded(kBigRows),
          static_cast<std::uint32_t>(8 + rng.NextBounded(393)), rng.Next()));
    } else if (pick < 92) {
      const Key key = kDynBase + rng.NextBounded(kDynRows);
      if (!dyn_touched.insert(key).second) {
        txns.push_back(std::make_unique<KvPutTxn>(rng.NextBounded(kBaseRows), rng.Next()));
      } else if (dyn_live->count(key) != 0) {
        dyn_live->erase(key);
        txns.push_back(std::make_unique<KvDeleteTxn>(key));
      } else {
        dyn_live->insert(key);
        txns.push_back(std::make_unique<KvInsertTxn>(key, rng.Next()));
      }
    } else {
      txns.push_back(std::make_unique<KvAbortTxn>(rng.NextBounded(kBaseRows)));
    }
  }
  return txns;
}

void LoadAll(Database& db) {
  for (std::size_t i = 0; i < kBigBase + kBigRows; ++i) {
    const std::uint64_t value = 7000 + i;
    db.BulkLoad(0, i, &value, sizeof(value));
  }
  db.FinalizeLoad();
}

struct RunResult {
  OracleState state;
  NvmCounters counters;
  std::vector<std::uint8_t> image;  // hot device after crash-revert (durable lines only)
};

RunResult RunStream(Config config, bool pipelined) {
  const DatabaseSpec spec = SpecFor(config, pipelined);
  NvmDevice device(ShadowDeviceConfig(spec));
  std::unique_ptr<NvmDevice> cold;
  if (spec.enable_cold_tier) {
    cold = std::make_unique<NvmDevice>(ColdDeviceConfig(spec));
  }
  RunResult out;
  {
    Database db(device, spec, cold.get());
    db.Format();
    LoadAll(db);
    std::set<Key> dyn_live;
    for (std::uint64_t e = 0; e < kEpochs; ++e) {
      const EpochResult result = db.ExecuteEpoch(MakeEpoch(e, &dyn_live));
      EXPECT_FALSE(result.crashed);
    }
    // Quiesce the asynchronous tail before reading any ledger: the barrier
    // and pipelined engines must agree only at epoch durability points.
    EXPECT_TRUE(db.WaitIdle().ok());
    out.state = core::CaptureState(db);
    std::string diff;
    EXPECT_EQ(core::ValidatePersistentIndex(db, &diff), 0u) << diff;
    out.counters = db.device().stats().Snapshot();
  }
  // Revert staged-but-unfenced lines so the comparison covers exactly the
  // bytes a power failure would preserve.
  device.Crash();
  out.image.assign(device.At(0), device.At(0) + device.size());
  return out;
}

class PipelineEquivalenceTest : public ::testing::TestWithParam<Config> {};

// The tentpole equivalence claim: same logical state, same durable image,
// same write/line/fence ledger. persist_ops is excluded by design — the
// pipelined tail retires the execute phase's detached lines with the same
// per-worker fence count but merges staged persists differently.
TEST_P(PipelineEquivalenceTest, MatchesBarrierEngine) {
  const RunResult barrier = RunStream(GetParam(), /*pipelined=*/false);
  const RunResult pipelined = RunStream(GetParam(), /*pipelined=*/true);

  std::string diff;
  EXPECT_EQ(core::DiffStates(barrier.state, pipelined.state, &diff), 0u) << diff;
  EXPECT_EQ(core::StateHash(barrier.state), core::StateHash(pipelined.state));

  EXPECT_EQ(barrier.counters.write_bytes, pipelined.counters.write_bytes);
  EXPECT_EQ(barrier.counters.persisted_lines, pipelined.counters.persisted_lines);
  EXPECT_EQ(barrier.counters.fences, pipelined.counters.fences);

  ASSERT_EQ(barrier.image.size(), pipelined.image.size());
  EXPECT_EQ(std::memcmp(barrier.image.data(), pipelined.image.data(), barrier.image.size()),
            0)
      << "durable NVMM images diverge";
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, PipelineEquivalenceTest,
                         ::testing::Values(Config::kDefault, Config::kPindex,
                                           Config::kColdTier, Config::kInstant,
                                           Config::kMultiWorker));

// ---- Crash during the overlap window ----------------------------------------

class PipelineCrashTest
    : public ::testing::TestWithParam<std::tuple<Config, CrashSite>> {};

// Crash at one of the two overlap-window sites, recover over the surviving
// image, finish the stream, and diff against a crash-free barrier reference.
// The resume point comes from the recovered header: a tail crash of epoch N
// surfaces while epoch N+1's (cancelled) front half is running.
TEST_P(PipelineCrashTest, RecoversToBarrierReference) {
  const auto [config, site] = GetParam();
  const RunResult reference = RunStream(config, /*pipelined=*/false);

  const DatabaseSpec spec = SpecFor(config, /*pipelined=*/true);
  NvmDevice device(ShadowDeviceConfig(spec));
  std::unique_ptr<NvmDevice> cold;
  if (spec.enable_cold_tier) {
    cold = std::make_unique<NvmDevice>(ColdDeviceConfig(spec));
  }
  std::set<Key> dyn_live;
  {
    Database db(device, spec, cold.get());
    db.Format();
    LoadAll(db);
    std::atomic<std::uint64_t> reached{0};
    db.SetCrashHook([&reached, site](CrashSite s) {
      return s == site && ++reached == 3;  // third epoch's overlap window
    });
    bool crashed = false;
    for (std::uint64_t e = 0; e < kEpochs; ++e) {
      std::set<Key> scratch = dyn_live;  // generator state must survive the crash
      if (db.ExecuteEpoch(MakeEpoch(e, &scratch)).crashed) {
        crashed = true;
        break;
      }
      dyn_live = std::move(scratch);
    }
    if (!crashed) {
      crashed = !db.WaitIdle().ok();
    }
    ASSERT_TRUE(crashed) << "overlap site never fired";
  }
  device.Crash();
  if (cold) {
    cold->Crash();
  }

  Database recovered(device, spec, cold.get());
  const RecoveryReport report = recovered.Recover(KvRegistry()).value();
  const std::size_t resume = static_cast<std::size_t>(report.recovered_epoch) +
                             (report.replayed ? 1 : 0) - 1;
  std::set<Key> replay_live;
  for (std::uint64_t e = 0; e < resume; ++e) {
    MakeEpoch(e, &replay_live);  // advance the generator to the resume point
  }
  for (std::uint64_t e = resume; e < kEpochs; ++e) {
    EXPECT_FALSE(recovered.ExecuteEpoch(MakeEpoch(e, &replay_live)).crashed);
  }
  if (recovered.instant_recovery_pending()) {
    ASSERT_TRUE(recovered.CompleteBackfill().ok());
  }
  EXPECT_TRUE(recovered.WaitIdle().ok());

  std::string diff;
  EXPECT_EQ(core::DiffStates(reference.state, core::CaptureState(recovered), &diff), 0u)
      << diff;
  std::string index_diff;
  EXPECT_EQ(core::ValidatePersistentIndex(recovered, &index_diff), 0u) << index_diff;
}

INSTANTIATE_TEST_SUITE_P(
    OverlapSites, PipelineCrashTest,
    ::testing::Combine(::testing::Values(Config::kDefault, Config::kPindex,
                                         Config::kInstant),
                       ::testing::Values(CrashSite::kMidOverlapExecute,
                                         CrashSite::kMidOverlapTailPersist)));

// ---- Callback swap vs the tail thread ----------------------------------------

// Regression for the SetEpochCallback race: installing or clearing the
// durable-notify callback concurrently with running epochs (whose tails
// invoke it from the tail thread) must be safe, and a clearing call must
// leave no in-flight invocation behind. Run under TSan in CI.
TEST(PipelineTest, CallbackSwapRacesTailSafely) {
  const DatabaseSpec spec = SpecFor(Config::kDefault, /*pipelined=*/true);
  NvmDevice device(ShadowDeviceConfig(spec));
  Database db(device, spec);
  db.Format();
  LoadAll(db);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> invocations{0};
  std::thread swapper([&] {
    while (!stop.load(std::memory_order_acquire)) {
      db.SetEpochCallback(
          [&invocations](const EpochResult&, const std::vector<core::TxnOutcome>&) {
            invocations.fetch_add(1, std::memory_order_relaxed);
          });
      std::this_thread::yield();
      db.SetEpochCallback({});
    }
  });

  std::set<Key> dyn_live;
  for (std::uint64_t e = 0; e < 40; ++e) {
    ASSERT_FALSE(db.ExecuteEpoch(MakeEpoch(e % kEpochs, &dyn_live)).crashed);
  }
  stop.store(true, std::memory_order_release);
  swapper.join();
  EXPECT_TRUE(db.WaitIdle().ok());
}

}  // namespace
}  // namespace nvc::test
