// Engine semantics beyond the basics: inserts, deletes, abort-of-final
// resolution, cache behaviour at the database level, engine modes, and
// multi-worker equivalence with single-worker execution.
#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace nvc::test {
namespace {

using core::Database;
using core::DatabaseSpec;
using core::EngineMode;
using sim::NvmDevice;

// A txn that inserts a fresh row with data during the insert step.
class InsertTxn final : public txn::Transaction {
 public:
  InsertTxn(Key key, std::uint64_t value) : key_(key), value_(value) {}
  txn::TxnType type() const override { return 50; }
  void EncodeInputs(BinaryWriter& w) const override {
    w.Put(key_);
    w.Put(value_);
  }
  static std::unique_ptr<txn::Transaction> Decode(BinaryReader& r) {
    const auto key = r.Get<Key>();
    const auto value = r.Get<std::uint64_t>();
    return std::make_unique<InsertTxn>(key, value);
  }
  void InsertStep(txn::InsertContext& ctx) override {
    ctx.InsertRow(0, key_, &value_, sizeof(value_));
  }
  void Execute(txn::ExecContext&) override {}

 private:
  Key key_;
  std::uint64_t value_;
};

// Deletes a row.
class DeleteTxn final : public txn::Transaction {
 public:
  explicit DeleteTxn(Key key) : key_(key) {}
  txn::TxnType type() const override { return 51; }
  void EncodeInputs(BinaryWriter& w) const override { w.Put(key_); }
  static std::unique_ptr<txn::Transaction> Decode(BinaryReader& r) {
    return std::make_unique<DeleteTxn>(r.Get<Key>());
  }
  void AppendStep(txn::AppendContext& ctx) override { ctx.DeclareDelete(0, key_); }
  void Execute(txn::ExecContext& ctx) override { ctx.Delete(0, key_); }

 private:
  Key key_;
};

// Reads a key and records whether it was found and its value.
class ProbeTxn final : public txn::Transaction {
 public:
  ProbeTxn(Key key, int* found, std::uint64_t* value)
      : key_(key), found_(found), value_(value) {}
  txn::TxnType type() const override { return 52; }
  void EncodeInputs(BinaryWriter& w) const override { w.Put(key_); }
  void Execute(txn::ExecContext& ctx) override {
    std::uint64_t v = 0;
    const int n = ctx.Read(0, key_, &v, sizeof(v));
    *found_ = n >= 0 ? 1 : 0;
    *value_ = v;
  }

 private:
  Key key_;
  int* found_;
  std::uint64_t* value_;
};

// Declares a write but aborts (exercises IGNORE + final resolution).
class AbortTxn final : public txn::Transaction {
 public:
  explicit AbortTxn(Key key) : key_(key) {}
  txn::TxnType type() const override { return 53; }
  void EncodeInputs(BinaryWriter& w) const override { w.Put(key_); }
  static std::unique_ptr<txn::Transaction> Decode(BinaryReader& r) {
    return std::make_unique<AbortTxn>(r.Get<Key>());
  }
  void AppendStep(txn::AppendContext& ctx) override { ctx.DeclareUpdate(0, key_); }
  void Execute(txn::ExecContext& ctx) override { ctx.Abort(); }

 private:
  Key key_;
};

class EngineSemanticsTest : public ::testing::Test {
 protected:
  EngineSemanticsTest() : spec_(SmallKvSpec()), device_(ShadowDeviceConfig(spec_)) {
    db_ = std::make_unique<Database>(device_, spec_);
    db_->Format();
    for (Key key = 0; key < 16; ++key) {
      const std::uint64_t value = 100 + key;
      db_->BulkLoad(0, key, &value, sizeof(value));
    }
    db_->FinalizeLoad();
  }

  DatabaseSpec spec_;
  NvmDevice device_;
  std::unique_ptr<Database> db_;
};

TEST_F(EngineSemanticsTest, InsertIsVisibleWithinAndAcrossEpochs) {
  int found_before = -1;
  int found_after = -1;
  std::uint64_t value_before = 0;
  std::uint64_t value_after = 0;
  std::vector<std::unique_ptr<txn::Transaction>> txns;
  // Serial order: probe(100), insert(100), probe(100).
  txns.push_back(std::make_unique<ProbeTxn>(100, &found_before, &value_before));
  txns.push_back(std::make_unique<InsertTxn>(100, 777));
  txns.push_back(std::make_unique<ProbeTxn>(100, &found_after, &value_after));
  db_->ExecuteEpoch(std::move(txns));

  EXPECT_EQ(found_before, 0) << "earlier transaction saw a later insert";
  EXPECT_EQ(found_after, 1);
  EXPECT_EQ(value_after, 777u);
  EXPECT_EQ(ReadU64(*db_, 0, 100), 777u);
}

TEST_F(EngineSemanticsTest, DeleteHidesRowAndFreesIt) {
  int found_before = -1;
  int found_after = -1;
  std::uint64_t v0 = 0;
  std::uint64_t v1 = 0;
  std::vector<std::unique_ptr<txn::Transaction>> txns;
  txns.push_back(std::make_unique<ProbeTxn>(3, &found_before, &v0));
  txns.push_back(std::make_unique<DeleteTxn>(3));
  txns.push_back(std::make_unique<ProbeTxn>(3, &found_after, &v1));
  db_->ExecuteEpoch(std::move(txns));

  EXPECT_EQ(found_before, 1);
  EXPECT_EQ(v0, 103u);
  EXPECT_EQ(found_after, 0) << "later transaction still saw the deleted row";
  EXPECT_EQ(ReadU64(*db_, 0, 3), ~0ULL);
  EXPECT_EQ(db_->table_rows(0), 15u);

  // The key can be re-inserted in a later epoch.
  std::vector<std::unique_ptr<txn::Transaction>> txns2;
  txns2.push_back(std::make_unique<InsertTxn>(3, 999));
  db_->ExecuteEpoch(std::move(txns2));
  EXPECT_EQ(ReadU64(*db_, 0, 3), 999u);
}

TEST_F(EngineSemanticsTest, AbortedFinalWriterFallsBackToPreviousVersion) {
  std::vector<std::unique_ptr<txn::Transaction>> txns;
  txns.push_back(std::make_unique<KvPutTxn>(5, 501));
  txns.push_back(std::make_unique<KvPutTxn>(5, 502));
  txns.push_back(std::make_unique<AbortTxn>(5));  // final slot, aborted
  const auto result = db_->ExecuteEpoch(std::move(txns));
  EXPECT_EQ(result.aborted, 1u);
  // The latest non-ignored version (502) must have been checkpointed.
  EXPECT_EQ(ReadU64(*db_, 0, 5), 502u);
}

TEST_F(EngineSemanticsTest, AllAbortedLeavesRowUntouched) {
  db_->stats().Reset();
  std::vector<std::unique_ptr<txn::Transaction>> txns;
  txns.push_back(std::make_unique<AbortTxn>(5));
  txns.push_back(std::make_unique<AbortTxn>(5));
  db_->ExecuteEpoch(std::move(txns));
  EXPECT_EQ(ReadU64(*db_, 0, 5), 105u);
  EXPECT_EQ(db_->stats().persistent_writes.Sum(), 0u);
}

TEST_F(EngineSemanticsTest, AbortedReadersSkipIgnoredVersions) {
  int found = -1;
  std::uint64_t value = 0;
  std::vector<std::unique_ptr<txn::Transaction>> txns;
  txns.push_back(std::make_unique<KvPutTxn>(5, 501));
  txns.push_back(std::make_unique<AbortTxn>(5));
  txns.push_back(std::make_unique<ProbeTxn>(5, &found, &value));  // reads past the IGNORE
  txns.push_back(std::make_unique<KvPutTxn>(5, 504));
  db_->ExecuteEpoch(std::move(txns));
  EXPECT_EQ(found, 1);
  EXPECT_EQ(value, 501u);
  EXPECT_EQ(ReadU64(*db_, 0, 5), 504u);
}

TEST_F(EngineSemanticsTest, CacheServesRepeatedReads) {
  // First epoch: read key 7 (miss -> NVM, populates cache).
  int found = 0;
  std::uint64_t value = 0;
  {
    std::vector<std::unique_ptr<txn::Transaction>> txns;
    txns.push_back(std::make_unique<ProbeTxn>(7, &found, &value));
    db_->ExecuteEpoch(std::move(txns));
  }
  db_->stats().Reset();
  {
    std::vector<std::unique_ptr<txn::Transaction>> txns;
    for (int i = 0; i < 10; ++i) {
      txns.push_back(std::make_unique<ProbeTxn>(7, &found, &value));
    }
    db_->ExecuteEpoch(std::move(txns));
  }
  EXPECT_EQ(db_->stats().cache_hits.Sum(), 10u);
  EXPECT_EQ(db_->stats().cache_misses.Sum(), 0u);
  EXPECT_EQ(value, 107u);
}

TEST_F(EngineSemanticsTest, CacheDisabledStillCorrect) {
  DatabaseSpec spec = SmallKvSpec();
  spec.enable_cache = false;
  NvmDevice device(ShadowDeviceConfig(spec));
  Database db(device, spec);
  db.Format();
  const std::uint64_t v = 7;
  db.BulkLoad(0, 1, &v, sizeof(v));
  db.FinalizeLoad();
  std::vector<std::unique_ptr<txn::Transaction>> txns;
  txns.push_back(std::make_unique<KvRmwTxn>(1, 3));
  db.ExecuteEpoch(std::move(txns));
  EXPECT_EQ(ReadU64(db, 0, 1), 7u * 3 + 3);
  EXPECT_EQ(db.stats().cache_hits.Sum(), 0u);
}

// Engine modes must all produce identical logical state.
class EngineModeTest : public ::testing::TestWithParam<EngineMode> {};

TEST_P(EngineModeTest, ModesAgreeOnFinalState) {
  DatabaseSpec spec = SmallKvSpec();
  spec.mode = GetParam();
  NvmDevice device(ShadowDeviceConfig(spec));
  Database db(device, spec);
  db.Format();
  for (Key key = 0; key < 8; ++key) {
    const std::uint64_t value = 100 + key;
    db.BulkLoad(0, key, &value, sizeof(value));
  }
  db.FinalizeLoad();
  for (int e = 0; e < 3; ++e) {
    std::vector<std::unique_ptr<txn::Transaction>> txns;
    for (std::uint32_t i = 0; i < 30; ++i) {
      txns.push_back(std::make_unique<KvRmwTxn>(i % 8, i));
    }
    db.ExecuteEpoch(std::move(txns));
  }
  // Compute the expected values with a serial model.
  std::uint64_t expected[8];
  for (Key key = 0; key < 8; ++key) {
    expected[key] = 100 + key;
  }
  for (int e = 0; e < 3; ++e) {
    for (std::uint32_t i = 0; i < 30; ++i) {
      expected[i % 8] = expected[i % 8] * 3 + i;
    }
  }
  for (Key key = 0; key < 8; ++key) {
    EXPECT_EQ(ReadU64(db, 0, key), expected[key]) << "key " << key;
  }
}

INSTANTIATE_TEST_SUITE_P(AllModes, EngineModeTest,
                         ::testing::Values(EngineMode::kNvCaracal, EngineMode::kNoLogging,
                                           EngineMode::kAllDram, EngineMode::kHybrid,
                                           EngineMode::kAllNvmm));

// Multi-worker execution must match single-worker execution exactly
// (deterministic concurrency control).
class WorkerCountTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WorkerCountTest, MatchesSingleWorkerState) {
  auto run = [](std::size_t workers) {
    core::DatabaseSpec spec = SmallKvSpec(workers);
    NvmDevice device(ShadowDeviceConfig(spec));
    Database db(device, spec);
    db.Format();
    for (Key key = 0; key < 32; ++key) {
      const std::uint64_t value = 100 + key;
      db.BulkLoad(0, key, &value, sizeof(value));
    }
    db.FinalizeLoad();
    Rng rng(5150);
    for (int e = 0; e < 5; ++e) {
      std::vector<std::unique_ptr<txn::Transaction>> txns;
      for (int i = 0; i < 200; ++i) {
        const Key key = rng.NextBounded(8);  // heavy contention
        if (rng.NextPercent(60)) {
          txns.push_back(std::make_unique<KvRmwTxn>(key, rng.NextBounded(50)));
        } else {
          txns.push_back(std::make_unique<KvBigPutTxn>(8 + key, rng.Next()));
        }
      }
      db.ExecuteEpoch(std::move(txns));
    }
    std::vector<std::vector<std::uint8_t>> state;
    for (Key key = 0; key < 32; ++key) {
      state.push_back(ReadBytes(db, 0, key));
    }
    return state;
  };
  const auto reference = run(1);
  const auto parallel = run(GetParam());
  EXPECT_EQ(parallel, reference);
}

INSTANTIATE_TEST_SUITE_P(Workers, WorkerCountTest, ::testing::Values(2u, 3u, 4u));

// The batch-append optimization must be behaviourally invisible: identical
// state to per-append sorted insertion, for any worker count, including
// aborts and crash recovery.
class BatchAppendTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BatchAppendTest, MatchesNonBatchState) {
  auto run = [&](bool batch) {
    core::DatabaseSpec spec = SmallKvSpec(GetParam());
    spec.enable_batch_append = batch;
    NvmDevice device(ShadowDeviceConfig(spec));
    Database db(device, spec);
    db.Format();
    for (Key key = 0; key < 32; ++key) {
      const std::uint64_t value = 100 + key;
      db.BulkLoad(0, key, &value, sizeof(value));
    }
    db.FinalizeLoad();
    Rng rng(777);
    for (int e = 0; e < 4; ++e) {
      std::vector<std::unique_ptr<txn::Transaction>> txns;
      for (int i = 0; i < 150; ++i) {
        const Key key = rng.NextBounded(6);  // hot rows -> long version arrays
        if (rng.NextPercent(70)) {
          txns.push_back(std::make_unique<KvRmwTxn>(key, rng.NextBounded(50)));
        } else if (rng.NextPercent(50)) {
          txns.push_back(std::make_unique<KvBigPutTxn>(6 + key, rng.Next()));
        } else {
          txns.push_back(std::make_unique<AbortTxn>(key));
        }
      }
      db.ExecuteEpoch(std::move(txns));
    }
    std::vector<std::vector<std::uint8_t>> state;
    for (Key key = 0; key < 32; ++key) {
      state.push_back(ReadBytes(db, 0, key));
    }
    return state;
  };
  EXPECT_EQ(run(true), run(false));
}

INSTANTIATE_TEST_SUITE_P(Workers, BatchAppendTest, ::testing::Values(1u, 2u, 4u));

TEST(BatchAppendTest, CrashRecoveryWithBatchAppend) {
  core::DatabaseSpec spec = SmallKvSpec();
  spec.enable_batch_append = true;
  // Reference (uncrashed, also batch mode).
  std::vector<std::vector<std::uint8_t>> expected;
  {
    NvmDevice device(ShadowDeviceConfig(spec));
    Database db(device, spec);
    db.Format();
    for (Key key = 0; key < 16; ++key) {
      const std::uint64_t value = 100 + key;
      db.BulkLoad(0, key, &value, sizeof(value));
    }
    db.FinalizeLoad();
    for (int e = 0; e < 2; ++e) {
      std::vector<std::unique_ptr<txn::Transaction>> txns;
      for (std::uint32_t i = 0; i < 60; ++i) {
        txns.push_back(std::make_unique<KvRmwTxn>(i % 5, i));
      }
      db.ExecuteEpoch(std::move(txns));
    }
    for (Key key = 0; key < 16; ++key) {
      expected.push_back(ReadBytes(db, 0, key));
    }
  }
  NvmDevice device(ShadowDeviceConfig(spec));
  {
    Database db(device, spec);
    db.Format();
    for (Key key = 0; key < 16; ++key) {
      const std::uint64_t value = 100 + key;
      db.BulkLoad(0, key, &value, sizeof(value));
    }
    db.FinalizeLoad();
    {
      std::vector<std::unique_ptr<txn::Transaction>> txns;
      for (std::uint32_t i = 0; i < 60; ++i) {
        txns.push_back(std::make_unique<KvRmwTxn>(i % 5, i));
      }
      db.ExecuteEpoch(std::move(txns));
    }
    int count = 0;
    db.SetCrashHook([&count](core::CrashSite site) {
      return site == core::CrashSite::kMidExecution && ++count > 30;
    });
    std::vector<std::unique_ptr<txn::Transaction>> txns;
    for (std::uint32_t i = 0; i < 60; ++i) {
      txns.push_back(std::make_unique<KvRmwTxn>(i % 5, i));
    }
    ASSERT_TRUE(db.ExecuteEpoch(std::move(txns)).crashed);
  }
  device.CrashChaos(55, 0.5);
  Database recovered(device, spec);
  const auto report = recovered.Recover(KvRegistry()).value();
  ASSERT_TRUE(report.replayed);
  for (Key key = 0; key < 16; ++key) {
    EXPECT_EQ(ReadBytes(recovered, 0, key), expected[key]) << "key " << key;
  }
}

}  // namespace
}  // namespace nvc::test
