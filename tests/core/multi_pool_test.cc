// Multi-size persistent value pools (the paper 5.5 extension: one pool per
// power-of-two size class): routing by size, GC frees returning to the right
// class, spill to larger classes, and crash recovery across classes.
#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace nvc::test {
namespace {

using core::CrashSite;
using core::Database;
using core::DatabaseSpec;
using sim::NvmDevice;

// Writes a deterministic pattern of the given size (spans size classes).
class VarPutTxn final : public txn::Transaction {
 public:
  VarPutTxn(Key key, std::uint32_t size, std::uint64_t seed)
      : key_(key), size_(size), seed_(seed) {}
  txn::TxnType type() const override { return 60; }
  void EncodeInputs(BinaryWriter& w) const override {
    w.Put(key_);
    w.Put(size_);
    w.Put(seed_);
  }
  static std::unique_ptr<txn::Transaction> Decode(BinaryReader& r) {
    const auto key = r.Get<Key>();
    const auto size = r.Get<std::uint32_t>();
    const auto seed = r.Get<std::uint64_t>();
    return std::make_unique<VarPutTxn>(key, size, seed);
  }
  static std::vector<std::uint8_t> Pattern(Key key, std::uint32_t size, std::uint64_t seed) {
    std::vector<std::uint8_t> data(size);
    for (std::uint32_t i = 0; i < size; ++i) {
      data[i] = static_cast<std::uint8_t>(key * 3 + seed * 7 + i);
    }
    return data;
  }
  void AppendStep(txn::AppendContext& ctx) override { ctx.DeclareUpdate(0, key_); }
  void Execute(txn::ExecContext& ctx) override {
    const auto data = Pattern(key_, size_, seed_);
    ctx.Write(0, key_, data.data(), size_);
  }

 private:
  Key key_;
  std::uint32_t size_;
  std::uint64_t seed_;
};

DatabaseSpec MultiPoolSpec() {
  DatabaseSpec spec = SmallKvSpec();
  spec.value_pools = {
      {.block_size = 256, .blocks_per_core = 512, .freelist_capacity = 2048},
      {.block_size = 1024, .blocks_per_core = 512, .freelist_capacity = 2048},
      {.block_size = 4096, .blocks_per_core = 128, .freelist_capacity = 1024},
  };
  return spec;
}

txn::TxnRegistry MultiPoolRegistry() {
  txn::TxnRegistry registry = KvRegistry();
  registry.Register(60, VarPutTxn::Decode);
  return registry;
}

// Deterministic size for (key, epoch): rows migrate across size classes.
std::uint32_t SizeFor(Key key, int epoch) {
  const std::uint32_t sizes[] = {200, 900, 3000};
  return sizes[(key + epoch) % 3];
}

TEST(MultiPoolTest, ValuesRouteToClassesAndMigrate) {
  DatabaseSpec spec = MultiPoolSpec();
  NvmDevice device(ShadowDeviceConfig(spec));
  Database db(device, spec);
  db.Format();
  for (Key key = 0; key < 16; ++key) {
    const auto data = VarPutTxn::Pattern(key, 200, 0);
    db.BulkLoad(0, key, data.data(), 200);
  }
  db.FinalizeLoad();

  for (int e = 0; e < 6; ++e) {
    std::vector<std::unique_ptr<txn::Transaction>> txns;
    for (Key key = 0; key < 16; ++key) {
      txns.push_back(std::make_unique<VarPutTxn>(key, SizeFor(key, e), 100 + e));
    }
    const auto result = db.ExecuteEpoch(std::move(txns));
    ASSERT_EQ(result.committed, 16u);
    for (Key key = 0; key < 16; ++key) {
      EXPECT_EQ(ReadBytes(db, 0, key), VarPutTxn::Pattern(key, SizeFor(key, e), 100 + e))
          << "epoch " << e << " key " << key;
    }
  }
  // All three classes saw allocations; GC returned stale blocks so usage
  // stays bounded at ~2 versions per row.
  const auto memory = db.GetMemoryBreakdown();
  EXPECT_GT(memory.nvm_value_bytes, 0u);
  EXPECT_LT(memory.nvm_value_bytes, 16u * 2 * 4096 + 4096);
}

TEST(MultiPoolTest, SmallClassExhaustionSpillsToLarger) {
  DatabaseSpec spec = SmallKvSpec();
  spec.value_pools = {
      {.block_size = 256, .blocks_per_core = 4, .freelist_capacity = 64},  // tiny class
      {.block_size = 1024, .blocks_per_core = 256, .freelist_capacity = 1024},
  };
  NvmDevice device(ShadowDeviceConfig(spec));
  Database db(device, spec);
  db.Format();
  for (Key key = 0; key < 20; ++key) {
    const std::uint64_t v = key;  // tiny values: inline, no pool use at load
    db.BulkLoad(0, key, &v, sizeof(v));
  }
  db.FinalizeLoad();

  // 20 rows of 200-byte values: only 4 fit the small class per core; the
  // rest must spill into the 1024-byte class instead of failing.
  std::vector<std::unique_ptr<txn::Transaction>> txns;
  for (Key key = 0; key < 20; ++key) {
    txns.push_back(std::make_unique<VarPutTxn>(key, 200, 5));
  }
  const auto result = db.ExecuteEpoch(std::move(txns));
  EXPECT_EQ(result.committed, 20u);
  for (Key key = 0; key < 20; ++key) {
    EXPECT_EQ(ReadBytes(db, 0, key), VarPutTxn::Pattern(key, 200, 5));
  }
}

TEST(MultiPoolTest, CrashRecoveryAcrossClasses) {
  const DatabaseSpec spec = MultiPoolSpec();
  // Reference run.
  std::vector<std::vector<std::uint8_t>> expected;
  auto epoch_txns = [](int e) {
    std::vector<std::unique_ptr<txn::Transaction>> txns;
    for (Key key = 0; key < 16; ++key) {
      txns.push_back(std::make_unique<VarPutTxn>(key, SizeFor(key, e), 100 + e));
    }
    return txns;
  };
  {
    NvmDevice device(ShadowDeviceConfig(spec));
    Database db(device, spec);
    db.Format();
    for (Key key = 0; key < 16; ++key) {
      const auto data = VarPutTxn::Pattern(key, 200, 0);
      db.BulkLoad(0, key, data.data(), 200);
    }
    db.FinalizeLoad();
    for (int e = 0; e < 3; ++e) {
      db.ExecuteEpoch(epoch_txns(e));
    }
    for (Key key = 0; key < 16; ++key) {
      expected.push_back(ReadBytes(db, 0, key));
    }
  }
  // Crashing run.
  NvmDevice device(ShadowDeviceConfig(spec));
  {
    Database db(device, spec);
    db.Format();
    for (Key key = 0; key < 16; ++key) {
      const auto data = VarPutTxn::Pattern(key, 200, 0);
      db.BulkLoad(0, key, data.data(), 200);
    }
    db.FinalizeLoad();
    for (int e = 0; e < 2; ++e) {
      db.ExecuteEpoch(epoch_txns(e));
    }
    int count = 0;
    db.SetCrashHook([&count](CrashSite site) {
      return site == CrashSite::kMidExecution && ++count > 7;
    });
    ASSERT_TRUE(db.ExecuteEpoch(epoch_txns(2)).crashed);
  }
  device.CrashChaos(91, 0.5);

  Database recovered(device, spec);
  const auto report = recovered.Recover(MultiPoolRegistry()).value();
  ASSERT_TRUE(report.replayed);
  for (Key key = 0; key < 16; ++key) {
    EXPECT_EQ(ReadBytes(recovered, 0, key), expected[key]) << "key " << key;
  }
}

}  // namespace
}  // namespace nvc::test
