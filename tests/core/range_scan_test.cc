// Range scans over the ordered secondary index.
//
// Covers four layers:
//   1. Database::RangeScan committed-state semantics (inclusive bounds,
//      limit, mutation visibility, unordered-table rejection).
//   2. Transactional ctx.Scan under Caracal: SID-ordered reads make scans
//      phantom-safe by construction, so a scan must observe every
//      smaller-SID write/insert of its own epoch and nothing larger.
//   3. Determinism: identical streams with scans produce identical logical
//      state across serial-tail, parallel-tail, pipelined, and multi-worker
//      engines, and survive crash/recovery (including a crash during the
//      ordered-index rebuild inside Recover itself).
//   4. Aria phantom validation: a smaller-SID write or execution-phase
//      insert inside a scan's observed interval defers the scan; early-stop
//      clamps the interval so out-of-prefix writes do not.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "src/core/database.h"
#include "src/core/oracle.h"
#include "tests/test_util.h"

namespace nvc::test {
namespace {

using core::ConcurrencyControl;
using core::CrashSite;
using core::Database;
using core::DatabaseSpec;
using core::EpochResult;
using core::OracleState;
using core::RecoveryReport;
using sim::NvmDevice;

// Replicates KvScanSumTxn's fold so tests can state the exact 16-byte
// {digest, count} value a scan must have committed.
class ScanFold {
 public:
  void Row(Key key, const void* data, std::uint32_t size) {
    Mix(key);
    Mix(size);
    const auto* bytes = static_cast<const std::uint8_t*>(data);
    for (std::uint32_t i = 0; i < size; ++i) {
      digest_ ^= bytes[i];
      digest_ *= 1099511628211ULL;
    }
    ++count_;
  }
  void RowU64(Key key, std::uint64_t value) { Row(key, &value, sizeof(value)); }

  std::vector<std::uint8_t> Out() const {
    std::vector<std::uint8_t> out(16);
    std::memcpy(out.data(), &digest_, 8);
    std::memcpy(out.data() + 8, &count_, 8);
    return out;
  }

 private:
  void Mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      digest_ ^= (v >> (i * 8)) & 0xFF;
      digest_ *= 1099511628211ULL;
    }
  }
  std::uint64_t digest_ = 1469598103934665603ULL;  // FNV-1a offset basis
  std::uint64_t count_ = 0;
};

constexpr Key kLoadedRows = 32;  // bulk-loaded keys 0..31, value 100 + key

struct OrderedFixture {
  explicit OrderedFixture(DatabaseSpec s)
      : spec(std::move(s)), device(ShadowDeviceConfig(spec)), db(device, spec) {
    db.Format();
    for (Key key = 0; key < kLoadedRows; ++key) {
      const std::uint64_t value = 100 + key;
      db.BulkLoad(0, key, &value, sizeof(value));
    }
    db.FinalizeLoad();
  }
  DatabaseSpec spec;
  NvmDevice device;
  Database db;
};

// ---- Database::RangeScan (committed state) ---------------------------------

TEST(RangeScanTest, InclusiveBoundsLimitAndValues) {
  OrderedFixture f(SmallKvSpec(/*workers=*/1, /*ordered=*/true));

  const auto rows = f.db.RangeScan(0, 10, 20);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 11u);  // both bounds inclusive
  for (std::size_t i = 0; i < rows->size(); ++i) {
    EXPECT_EQ((*rows)[i].key, 10 + i);
    ASSERT_EQ((*rows)[i].value.size(), 8u);
    std::uint64_t value = 0;
    std::memcpy(&value, (*rows)[i].value.data(), 8);
    EXPECT_EQ(value, 110 + i);
  }

  const auto limited = f.db.RangeScan(0, 10, 20, /*limit=*/5);
  ASSERT_TRUE(limited.ok());
  ASSERT_EQ(limited->size(), 5u);  // ascending prefix
  EXPECT_EQ(limited->back().key, 14u);

  const auto empty = f.db.RangeScan(0, 1000, 2000);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());

  const auto all = f.db.RangeScan(0, 0, ~Key{0});
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), static_cast<std::size_t>(kLoadedRows));
}

TEST(RangeScanTest, RejectsUnorderedTable) {
  OrderedFixture f(SmallKvSpec(/*workers=*/1, /*ordered=*/false));
  const auto rows = f.db.RangeScan(0, 0, 100);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kInvalidArgument);
}

TEST(RangeScanTest, ReflectsCommittedMutations) {
  OrderedFixture f(SmallKvSpec(/*workers=*/1, /*ordered=*/true));
  std::vector<std::unique_ptr<txn::Transaction>> txns;
  txns.push_back(std::make_unique<KvPutTxn>(12, 999));
  txns.push_back(std::make_unique<KvInsertTxn>(40, 4040));
  txns.push_back(std::make_unique<KvDeleteTxn>(7));
  ASSERT_FALSE(f.db.ExecuteEpoch(std::move(txns)).crashed);

  const auto rows = f.db.RangeScan(0, 0, 63);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), static_cast<std::size_t>(kLoadedRows));  // -1 delete, +1 insert
  std::map<Key, std::uint64_t> seen;
  Key prev = 0;
  for (std::size_t i = 0; i < rows->size(); ++i) {
    if (i > 0) {
      EXPECT_LT(prev, (*rows)[i].key);
    }
    prev = (*rows)[i].key;
    std::uint64_t value = 0;
    std::memcpy(&value, (*rows)[i].value.data(), std::min<std::size_t>(8, (*rows)[i].value.size()));
    seen[(*rows)[i].key] = value;
  }
  EXPECT_EQ(seen.count(7), 0u);
  EXPECT_EQ(seen.at(12), 999u);
  EXPECT_EQ(seen.at(40), 4040u);
}

// ---- Transactional scans under Caracal -------------------------------------

TEST(RangeScanTest, CaracalScanObservesSmallerSidWritesOfItsEpoch) {
  // SID-ordered reads: the scan (sid 2) must see the put (sid 1) of the same
  // epoch. Phantom safety is by construction — the key set and all write
  // SIDs are fixed before the execute phase starts.
  OrderedFixture f(SmallKvSpec(/*workers=*/1, /*ordered=*/true));
  std::vector<std::unique_ptr<txn::Transaction>> txns;
  txns.push_back(std::make_unique<KvPutTxn>(5, 777));                    // sid 1
  txns.push_back(std::make_unique<KvScanSumTxn>(3, 9, 100, /*out=*/20));  // sid 2
  const EpochResult result = f.db.ExecuteEpoch(std::move(txns));
  EXPECT_EQ(result.committed, 2u);
  EXPECT_EQ(result.deferred, 0u);

  ScanFold fold;
  for (Key key = 3; key <= 9; ++key) {
    fold.RowU64(key, key == 5 ? 777 : 100 + key);
  }
  EXPECT_EQ(ReadBytes(f.db, 0, 20), fold.Out());
}

TEST(RangeScanTest, CaracalScanAheadOfWriterSeesPriorState) {
  OrderedFixture f(SmallKvSpec(/*workers=*/1, /*ordered=*/true));
  std::vector<std::unique_ptr<txn::Transaction>> txns;
  txns.push_back(std::make_unique<KvScanSumTxn>(3, 9, 100, /*out=*/20));  // sid 1
  txns.push_back(std::make_unique<KvPutTxn>(5, 777));                    // sid 2
  const EpochResult result = f.db.ExecuteEpoch(std::move(txns));
  EXPECT_EQ(result.committed, 2u);

  ScanFold fold;
  for (Key key = 3; key <= 9; ++key) {
    fold.RowU64(key, 100 + key);  // put at sid 2 is invisible to sid 1
  }
  EXPECT_EQ(ReadBytes(f.db, 0, 20), fold.Out());
  EXPECT_EQ(ReadU64(f.db, 0, 5), 777u);  // but it did commit
}

TEST(RangeScanTest, CaracalScanSeesSameEpochInsert) {
  // Inserts run in the insert phase, before execution: the new key is in the
  // ordered index when any scan of the epoch runs, and version visibility is
  // by SID like any other row.
  OrderedFixture f(SmallKvSpec(/*workers=*/1, /*ordered=*/true));
  std::vector<std::unique_ptr<txn::Transaction>> txns;
  txns.push_back(std::make_unique<KvInsertTxn>(40, 4040));                 // sid 1
  txns.push_back(std::make_unique<KvScanSumTxn>(38, 44, 16, /*out=*/20));  // sid 2
  const EpochResult result = f.db.ExecuteEpoch(std::move(txns));
  EXPECT_EQ(result.committed, 2u);

  ScanFold fold;
  fold.RowU64(40, 4040);
  EXPECT_EQ(ReadBytes(f.db, 0, 20), fold.Out());
}

// ---- Cross-engine determinism ----------------------------------------------

// One seeded epoch of mixed puts / RMWs / scans / insert-delete churn. The
// dynamic-key live set is part of the generator so every engine sees the
// exact same stream.
std::vector<std::unique_ptr<txn::Transaction>> MixedEpoch(Rng& rng, std::set<Key>& live) {
  constexpr Key kDynBase = 48;
  constexpr Key kDynRows = 16;
  std::vector<std::unique_ptr<txn::Transaction>> txns;
  std::set<Key> touched;  // at most one insert/delete per key per epoch: the
                          // insert phase runs before any delete executes
  for (int i = 0; i < 48; ++i) {
    const std::uint64_t pick = rng.NextBounded(100);
    if (pick < 35) {
      txns.push_back(std::make_unique<KvPutTxn>(rng.NextBounded(kLoadedRows), rng.Next()));
    } else if (pick < 60) {
      txns.push_back(
          std::make_unique<KvRmwTxn>(rng.NextBounded(kLoadedRows), rng.NextBounded(64)));
    } else if (pick < 85) {
      const Key lo = rng.NextBounded(kDynBase + kDynRows);
      txns.push_back(std::make_unique<KvScanSumTxn>(lo, lo + 1 + rng.NextBounded(24),
                                                    1 + rng.NextBounded(12),
                                                    rng.NextBounded(kLoadedRows)));
    } else {
      const Key key = kDynBase + rng.NextBounded(kDynRows);
      if (!touched.insert(key).second) {
        txns.push_back(std::make_unique<KvPutTxn>(rng.NextBounded(kLoadedRows), rng.Next()));
      } else if (live.count(key)) {
        live.erase(key);
        txns.push_back(std::make_unique<KvDeleteTxn>(key));
      } else {
        live.insert(key);
        txns.push_back(std::make_unique<KvInsertTxn>(key, rng.Next()));
      }
    }
  }
  return txns;
}

std::uint64_t RunMixedStream(DatabaseSpec spec, std::uint64_t seed) {
  OrderedFixture f(std::move(spec));
  Rng rng(seed);
  std::set<Key> live;
  for (int epoch = 0; epoch < 6; ++epoch) {
    EXPECT_FALSE(f.db.ExecuteEpoch(MixedEpoch(rng, live)).crashed);
  }
  EXPECT_TRUE(f.db.WaitIdle().ok());
  std::string diff;
  EXPECT_EQ(core::ValidateOrderedIndex(f.db, &diff), 0u) << diff;
  return core::StateHash(core::CaptureState(f.db));
}

TEST(RangeScanTest, IdenticalStateAcrossEngines) {
  const std::uint64_t seed = 0x5ca1ab1eULL;

  DatabaseSpec pipelined = SmallKvSpec(1, true);
  DatabaseSpec barrier = SmallKvSpec(1, true);
  barrier.enable_epoch_pipeline = false;
  DatabaseSpec serial = SmallKvSpec(1, true);
  serial.enable_epoch_pipeline = false;
  serial.enable_parallel_tail = false;
  DatabaseSpec multi = SmallKvSpec(4, true);

  const std::uint64_t reference = RunMixedStream(pipelined, seed);
  EXPECT_EQ(RunMixedStream(barrier, seed), reference);
  EXPECT_EQ(RunMixedStream(serial, seed), reference);
  EXPECT_EQ(RunMixedStream(multi, seed), reference);
}

// ---- Crash recovery with scans in the stream -------------------------------

// Crash at `site` in the last epoch, recover, re-execute if the epoch never
// reached its log, and require the exact crash-free logical state.
void RunScanCrashAt(CrashSite site, bool rebuild_crash) {
  const std::uint64_t seed = 0xdecafULL + static_cast<std::uint64_t>(site);
  constexpr int kEpochs = 4;
  const DatabaseSpec spec = SmallKvSpec(/*workers=*/1, /*ordered=*/true);

  OracleState expected;
  {
    OrderedFixture ref(spec);
    Rng rng(seed);
    std::set<Key> live;
    for (int epoch = 0; epoch < kEpochs; ++epoch) {
      ASSERT_FALSE(ref.db.ExecuteEpoch(MixedEpoch(rng, live)).crashed);
    }
    ASSERT_TRUE(ref.db.WaitIdle().ok());
    expected = core::CaptureState(ref.db);
  }

  NvmDevice device(ShadowDeviceConfig(spec));
  {
    Database db(device, spec);
    db.Format();
    for (Key key = 0; key < kLoadedRows; ++key) {
      const std::uint64_t value = 100 + key;
      db.BulkLoad(0, key, &value, sizeof(value));
    }
    db.FinalizeLoad();
    Rng rng(seed);
    std::set<Key> live;
    for (int epoch = 0; epoch + 1 < kEpochs; ++epoch) {
      ASSERT_FALSE(db.ExecuteEpoch(MixedEpoch(rng, live)).crashed);
    }
    db.SetCrashHook([site](CrashSite s) { return s == site; });
    EpochResult result = db.ExecuteEpoch(MixedEpoch(rng, live));
    if (!result.crashed) {
      result.crashed = !db.WaitIdle().ok();
    }
    ASSERT_TRUE(result.crashed) << "crash hook never fired at " << core::CrashSiteName(site);
  }
  device.Crash();

  const txn::TxnRegistry registry = KvRegistry();
  if (rebuild_crash) {
    // Second failure while Recover() itself is rebuilding the skiplist: the
    // rebuild must stay restartable (DRAM-only + idempotent repairs).
    Database wounded(device, spec);
    std::uint64_t reached = 0;
    wounded.SetCrashHook([&reached](CrashSite s) {
      return s == CrashSite::kMidOrderedIndexRebuild && ++reached == 1;
    });
    const auto failed = wounded.Recover(registry);
    ASSERT_FALSE(failed.ok());
    ASSERT_GT(reached, 0u);
    device.Crash();
  }

  Database recovered(device, spec);
  const RecoveryReport report = recovered.Recover(registry).value();
  if (!report.replayed) {
    // The crash predated the input log: replay the last epoch by hand.
    Rng rng(seed);
    std::set<Key> live;
    std::vector<std::unique_ptr<txn::Transaction>> last;
    for (int epoch = 0; epoch < kEpochs; ++epoch) {
      last = MixedEpoch(rng, live);
    }
    ASSERT_FALSE(recovered.ExecuteEpoch(std::move(last)).crashed);
  }
  ASSERT_TRUE(recovered.WaitIdle().ok());

  std::string diff;
  EXPECT_EQ(core::DiffStates(expected, core::CaptureState(recovered), &diff), 0u) << diff;
  EXPECT_EQ(core::ValidateOrderedIndex(recovered, &diff), 0u) << diff;
}

TEST(RangeScanTest, ScanStreamSurvivesTailCrash) {
  RunScanCrashAt(CrashSite::kBeforeEpochPersist, /*rebuild_crash=*/false);
}

TEST(RangeScanTest, ScanStreamSurvivesMidScanCrash) {
  RunScanCrashAt(CrashSite::kMidScanValidate, /*rebuild_crash=*/false);
}

TEST(RangeScanTest, ScanStreamSurvivesCrashDuringIndexRebuild) {
  RunScanCrashAt(CrashSite::kBeforeEpochPersist, /*rebuild_crash=*/true);
}

// ---- Aria phantom validation -----------------------------------------------

// An insert issued from execution (Aria's insert path), as in aria_test.cc.
class AriaInsertTxn final : public txn::Transaction {
 public:
  AriaInsertTxn(Key key, std::uint64_t value) : key_(key), value_(value) {}
  txn::TxnType type() const override { return 80; }
  void EncodeInputs(BinaryWriter& w) const override {
    w.Put(key_);
    w.Put(value_);
  }
  static std::unique_ptr<txn::Transaction> Decode(BinaryReader& r) {
    const auto key = r.Get<Key>();
    const auto value = r.Get<std::uint64_t>();
    return std::make_unique<AriaInsertTxn>(key, value);
  }
  void Execute(txn::ExecContext& ctx) override {
    ctx.Insert(0, key_, &value_, sizeof(value_));
  }

 private:
  Key key_;
  std::uint64_t value_;
};

DatabaseSpec AriaOrderedSpec(bool pipelined) {
  DatabaseSpec spec = SmallKvSpec(/*workers=*/1, /*ordered=*/true);
  spec.concurrency = ConcurrencyControl::kAria;
  spec.enable_epoch_pipeline = pipelined;
  return spec;
}

// The phantom regression proper, run on both the barrier and pipelined
// engines: Aria scans read the previous-epoch snapshot, so a smaller-SID
// write inside the observed interval MUST defer the scan, and the deferred
// re-run MUST observe that write.
void RunAriaPhantomSuite(bool pipelined) {
  {
    // (a) Smaller-SID update inside the scanned range defers the scan.
    OrderedFixture f(AriaOrderedSpec(pipelined));
    std::vector<std::unique_ptr<txn::Transaction>> txns;
    txns.push_back(std::make_unique<KvPutTxn>(5, 777));                    // sid 1
    txns.push_back(std::make_unique<KvScanSumTxn>(0, 15, 32, /*out=*/20));  // sid 2
    const EpochResult first = f.db.ExecuteEpoch(std::move(txns));
    EXPECT_EQ(first.committed, 1u);
    EXPECT_EQ(first.deferred, 1u);
    EXPECT_EQ(ReadBytes(f.db, 0, 20).size(), 8u);  // scan has not committed

    const EpochResult second = f.db.ExecuteEpoch({});
    EXPECT_EQ(second.committed, 1u);
    EXPECT_EQ(second.deferred, 0u);
    ScanFold fold;
    for (Key key = 0; key <= 15; ++key) {
      fold.RowU64(key, key == 5 ? 777 : 100 + key);  // re-run sees the write
    }
    EXPECT_EQ(ReadBytes(f.db, 0, 20), fold.Out());
  }
  {
    // (b) Scan ahead of the writer commits against the snapshot.
    OrderedFixture f(AriaOrderedSpec(pipelined));
    std::vector<std::unique_ptr<txn::Transaction>> txns;
    txns.push_back(std::make_unique<KvScanSumTxn>(0, 15, 32, /*out=*/20));  // sid 1
    txns.push_back(std::make_unique<KvPutTxn>(5, 777));                    // sid 2
    const EpochResult result = f.db.ExecuteEpoch(std::move(txns));
    EXPECT_EQ(result.committed, 2u);
    EXPECT_EQ(result.deferred, 0u);
    ScanFold fold;
    for (Key key = 0; key <= 15; ++key) {
      fold.RowU64(key, 100 + key);  // snapshot values
    }
    EXPECT_EQ(ReadBytes(f.db, 0, 20), fold.Out());
    EXPECT_EQ(ReadU64(f.db, 0, 5), 777u);
  }
  {
    // (c) A genuine phantom: an execution-phase insert lands inside an
    // interval the scan observed as EMPTY. The scan must defer and then see
    // the new key.
    OrderedFixture f(AriaOrderedSpec(pipelined));
    std::vector<std::unique_ptr<txn::Transaction>> txns;
    txns.push_back(std::make_unique<AriaInsertTxn>(40, 4242));               // sid 1
    txns.push_back(std::make_unique<KvScanSumTxn>(38, 44, 16, /*out=*/20));  // sid 2
    const EpochResult first = f.db.ExecuteEpoch(std::move(txns));
    EXPECT_EQ(first.committed, 1u);
    EXPECT_EQ(first.deferred, 1u);

    const EpochResult second = f.db.ExecuteEpoch({});
    EXPECT_EQ(second.committed, 1u);
    ScanFold fold;
    fold.RowU64(40, 4242);
    EXPECT_EQ(ReadBytes(f.db, 0, 20), fold.Out());
  }
  {
    // (d) Early stop clamps the validated interval: a write beyond the
    // delivered prefix cannot have changed it, so the scan commits.
    OrderedFixture f(AriaOrderedSpec(pipelined));
    std::vector<std::unique_ptr<txn::Transaction>> txns;
    txns.push_back(std::make_unique<KvPutTxn>(12, 999));                        // sid 1
    txns.push_back(std::make_unique<KvScanSumTxn>(0, 15, /*limit=*/4, /*out=*/20));  // sid 2
    const EpochResult result = f.db.ExecuteEpoch(std::move(txns));
    EXPECT_EQ(result.committed, 2u);
    EXPECT_EQ(result.deferred, 0u);
    ScanFold fold;
    for (Key key = 0; key <= 3; ++key) {
      fold.RowU64(key, 100 + key);
    }
    EXPECT_EQ(ReadBytes(f.db, 0, 20), fold.Out());
    EXPECT_EQ(ReadU64(f.db, 0, 12), 999u);
  }
}

TEST(RangeScanTest, AriaPhantomValidationBarrierEngine) {
  RunAriaPhantomSuite(/*pipelined=*/false);
}

TEST(RangeScanTest, AriaPhantomValidationPipelinedEngine) {
  RunAriaPhantomSuite(/*pipelined=*/true);
}

// ---- Spec validation ---------------------------------------------------------

TEST(RangeScanTest, InstantRecoveryRejectsOrderedTables) {
  // Instant recovery serves reads before the skiplist is rebuilt; until the
  // rebuild is integrated with on-demand redo, the combination is refused
  // up front rather than returning wrong scans.
  DatabaseSpec spec = SmallKvSpec(/*workers=*/1, /*ordered=*/true);
  spec.enable_instant_recovery = true;
  EXPECT_FALSE(spec.Validate().ok());
}

}  // namespace
}  // namespace nvc::test
