// Parallel epoch tail: the fanned-out checkpoint / index-apply / demotion /
// GC-log / input-log phases must produce the same logical persisted state as
// the serial tail at any worker count, with identical fence and
// persisted-line counts, and stay recoverable at the parallel-only crash
// sites.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <set>
#include <vector>

#include "src/common/profiler.h"
#include "src/common/rng.h"
#include "src/common/worker_pool.h"
#include "src/core/input_log.h"
#include "src/core/oracle.h"
#include "tests/test_util.h"

namespace nvc::test {
namespace {

using core::CrashSite;
using core::Database;
using core::DatabaseSpec;
using core::InputLog;
using core::OracleState;
using sim::NvmConfig;
using sim::NvmDevice;

constexpr std::size_t kEpochs = 4;
constexpr std::size_t kTxnsPerEpoch = 32;
// Preloaded rows: puts/RMWs hit [0, 32), pool values [32, 64); the
// insert/delete churn range [64, 88) must start empty.
constexpr std::size_t kRows = 64;

// Deterministic mixed workload: fixed-row puts/RMWs, pool-allocated values
// (feed checkpoint + demotion), insert/delete churn (feed the persistent
// index), and aborts.
std::vector<std::unique_ptr<txn::Transaction>> MakeEpoch(std::uint64_t seed,
                                                         std::size_t epoch,
                                                         std::set<Key>* dyn_live) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + epoch + 1);
  std::set<Key> dyn_touched;
  std::vector<std::unique_ptr<txn::Transaction>> txns;
  for (std::size_t i = 0; i < kTxnsPerEpoch; ++i) {
    const std::uint64_t pick = rng.NextBounded(100);
    if (pick < 25) {
      txns.push_back(std::make_unique<KvPutTxn>(rng.NextBounded(32), rng.Next()));
    } else if (pick < 45) {
      txns.push_back(std::make_unique<KvRmwTxn>(rng.NextBounded(32), rng.NextBounded(999)));
    } else if (pick < 60) {
      txns.push_back(std::make_unique<KvBigPutTxn>(32 + rng.NextBounded(32), rng.Next()));
    } else if (pick < 72) {
      txns.push_back(std::make_unique<KvVarPutTxn>(
          32 + rng.NextBounded(32), static_cast<std::uint32_t>(8 + rng.NextBounded(300)),
          rng.Next()));
    } else if (pick < 90) {
      const Key key = 64 + rng.NextBounded(24);
      if (!dyn_touched.insert(key).second) {
        txns.push_back(std::make_unique<KvPutTxn>(rng.NextBounded(32), rng.Next()));
      } else if (dyn_live->count(key) != 0) {
        dyn_live->erase(key);
        txns.push_back(std::make_unique<KvDeleteTxn>(key));
      } else {
        dyn_live->insert(key);
        txns.push_back(std::make_unique<KvInsertTxn>(key, rng.Next()));
      }
    } else {
      txns.push_back(std::make_unique<KvAbortTxn>(rng.NextBounded(32)));
    }
  }
  return txns;
}

enum class Variant { kDefault, kPersistentIndex, kColdTier };

DatabaseSpec SpecFor(Variant variant, std::size_t workers, bool parallel_tail) {
  DatabaseSpec spec = SmallKvSpec(workers);
  spec.enable_parallel_tail = parallel_tail;
  // This file validates the synchronous (barrier) parallel tail against the
  // barrier serial tail; under pipelining both would collapse onto the tail
  // thread's serial path and the comparison would be vacuous. The pipelined
  // engine's equivalence has its own suite (pipeline_test).
  spec.enable_epoch_pipeline = false;
  if (variant == Variant::kPersistentIndex) {
    spec.enable_persistent_index = true;
  } else if (variant == Variant::kColdTier) {
    spec.enable_cold_tier = true;
    spec.cache_k = 1;
    spec.cold_block_size = 1024;
    spec.cold_blocks_per_core = 4096;
    spec.cold_freelist_capacity = 8192;
  }
  return spec;
}

NvmConfig ColdConfig(const DatabaseSpec& spec) {
  NvmConfig config;
  config.size_bytes = Database::RequiredColdDeviceBytes(spec);
  config.crash_tracking = sim::CrashTracking::kShadow;
  config.access_granule = 4096;
  return config;
}

struct RunArtifacts {
  OracleState state;
  std::uint64_t fences = 0;
  std::uint64_t persisted_lines = 0;
  std::uint64_t write_bytes = 0;
  std::uint64_t persist_ops = 0;
  std::size_t index_bad = 0;
};

RunArtifacts RunWorkload(Variant variant, std::size_t workers, bool parallel_tail,
                         std::uint64_t seed) {
  const DatabaseSpec spec = SpecFor(variant, workers, parallel_tail);
  NvmDevice device(ShadowDeviceConfig(spec));
  std::unique_ptr<NvmDevice> cold;
  if (variant == Variant::kColdTier) {
    cold = std::make_unique<NvmDevice>(ColdConfig(spec));
  }
  Database db(device, spec, cold.get());
  db.Format();
  for (Key key = 0; key < kRows; ++key) {
    const std::uint64_t value = 5000 + key;
    db.BulkLoad(0, key, &value, sizeof(value));
  }
  db.FinalizeLoad();
  device.stats().Reset();

  std::set<Key> dyn_live;
  for (std::size_t e = 0; e < kEpochs; ++e) {
    db.ExecuteEpoch(MakeEpoch(seed, e, &dyn_live));
  }

  RunArtifacts out;
  out.state = core::CaptureState(db);
  out.fences = device.stats().fences.Sum();
  out.persisted_lines = device.stats().persisted_lines.Sum();
  out.write_bytes = device.stats().write_bytes.Sum();
  out.persist_ops = device.stats().persist_ops.Sum();
  std::string diff;
  out.index_bad = core::ValidatePersistentIndex(db, &diff);
  return out;
}

class ParallelTailTest : public ::testing::TestWithParam<Variant> {};

// The oracle: the parallel tail at any worker count reaches the same logical
// committed state as the serial tail.
TEST_P(ParallelTailTest, MatchesSerialTailOracle) {
  const Variant variant = GetParam();
  const RunArtifacts serial = RunWorkload(variant, 1, /*parallel_tail=*/false, 7);
  for (std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    const RunArtifacts parallel = RunWorkload(variant, workers, /*parallel_tail=*/true, 7);
    std::string diff;
    EXPECT_EQ(core::DiffStates(serial.state, parallel.state, &diff), 0u)
        << "workers=" << workers << "\n"
        << diff;
    EXPECT_EQ(parallel.index_bad, 0u) << "workers=" << workers;
  }
}

// Crash-ordering invariant: distributing the tail must not change what gets
// persisted or how often the epoch fences — only how many clwb batches cover
// the same lines (one per worker slice instead of one per region).
TEST_P(ParallelTailTest, NvmCountsMatchSerialTail) {
  const Variant variant = GetParam();
  for (std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    const RunArtifacts serial = RunWorkload(variant, workers, /*parallel_tail=*/false, 11);
    const RunArtifacts parallel = RunWorkload(variant, workers, /*parallel_tail=*/true, 11);
    EXPECT_EQ(serial.fences, parallel.fences) << "workers=" << workers;
    EXPECT_EQ(serial.persisted_lines, parallel.persisted_lines) << "workers=" << workers;
    EXPECT_EQ(serial.write_bytes, parallel.write_bytes) << "workers=" << workers;
    EXPECT_GE(parallel.persist_ops, serial.persist_ops) << "workers=" << workers;
    // The split is bounded: at most (workers - 1) extra slices per persisted
    // region, and regions number far fewer than the serial op count.
    EXPECT_LE(parallel.persist_ops, serial.persist_ops * workers) << "workers=" << workers;
  }
}

INSTANTIATE_TEST_SUITE_P(AllVariants, ParallelTailTest,
                         ::testing::Values(Variant::kDefault, Variant::kPersistentIndex,
                                           Variant::kColdTier));

// The parallel input log writes a byte-identical image to the serial one:
// same header (including the chunked checksum) and same payload bytes.
TEST(ParallelTailTest, ParallelInputLogImageIsByteIdentical) {
  constexpr std::size_t kBuffer = 1 << 16;
  NvmConfig config;
  config.size_bytes = InputLog::RequiredBytes(kBuffer);
  config.crash_tracking = sim::CrashTracking::kShadow;

  NvmDevice serial_device(config);
  NvmDevice parallel_device(config);
  InputLog serial_log(serial_device, 0, kBuffer);
  InputLog parallel_log(parallel_device, 0, kBuffer);
  serial_log.Format();
  parallel_log.Format();

  std::vector<std::unique_ptr<txn::Transaction>> txns;
  for (std::uint64_t i = 0; i < 100; ++i) {
    txns.push_back(std::make_unique<KvVarPutTxn>(
        i, static_cast<std::uint32_t>(8 + (i * 37) % 200), i * 3));
  }

  WorkerPool pool(4);
  PhaseProfiler profiler;
  const std::size_t serial_bytes = serial_log.LogEpoch(3, txns, 0);
  const std::size_t parallel_bytes = parallel_log.LogEpochParallel(3, txns, pool, profiler);
  EXPECT_EQ(serial_bytes, parallel_bytes);
  EXPECT_EQ(std::memcmp(serial_device.At(kBuffer), parallel_device.At(kBuffer),
                        sizeof(std::uint64_t) * 4 + serial_bytes),
            0);

  // Both decode back to the same transaction count through the registry.
  const auto registry = KvRegistry();
  std::vector<std::unique_ptr<txn::Transaction>> decoded;
  ASSERT_TRUE(parallel_log.LoadEpoch(3, registry, &decoded, 0));
  EXPECT_EQ(decoded.size(), txns.size());
}

// Crash/recover at the parallel-only sites (hooks fire at workers == 1,
// where CrashedException propagates from the inline closure).
class ParallelTailCrashTest : public ::testing::TestWithParam<CrashSite> {};

TEST_P(ParallelTailCrashTest, CrashAtParallelSiteRecovers) {
  const CrashSite site = GetParam();
  DatabaseSpec spec = SpecFor(Variant::kPersistentIndex, 1, /*parallel_tail=*/true);

  // Oracle: the same stream executed crash-free.
  OracleState expected;
  {
    NvmDevice device(ShadowDeviceConfig(spec));
    Database db(device, spec);
    db.Format();
    for (Key key = 0; key < kRows; ++key) {
      const std::uint64_t value = 5000 + key;
      db.BulkLoad(0, key, &value, sizeof(value));
    }
    db.FinalizeLoad();
    std::set<Key> dyn_live;
    for (std::size_t e = 0; e < kEpochs; ++e) {
      db.ExecuteEpoch(MakeEpoch(21, e, &dyn_live));
    }
    expected = core::CaptureState(db);
  }

  NvmDevice device(ShadowDeviceConfig(spec));
  bool crashed = false;
  std::size_t crash_epoch = 0;
  {
    Database db(device, spec);
    db.Format();
    for (Key key = 0; key < kRows; ++key) {
      const std::uint64_t value = 5000 + key;
      db.BulkLoad(0, key, &value, sizeof(value));
    }
    db.FinalizeLoad();
    std::uint64_t reached = 0;
    db.SetCrashHook([&reached, site](CrashSite s) { return s == site && ++reached == 2; });
    std::set<Key> dyn_live;
    for (std::size_t e = 0; e < kEpochs; ++e) {
      if (db.ExecuteEpoch(MakeEpoch(21, e, &dyn_live)).crashed) {
        crashed = true;
        crash_epoch = e;
        break;
      }
    }
  }
  ASSERT_TRUE(crashed) << "site " << core::CrashSiteName(site) << " never fired";

  device.Crash();
  Database db(device, spec);
  const core::RecoveryReport report = db.Recover(KvRegistry()).value();
  std::set<Key> dyn_live;
  std::size_t resume = crash_epoch;
  for (std::size_t e = 0; e < resume; ++e) {
    MakeEpoch(21, e, &dyn_live);  // advance the generator's live-set state
  }
  if (!report.replayed) {
    db.ExecuteEpoch(MakeEpoch(21, crash_epoch, &dyn_live));
  } else {
    MakeEpoch(21, crash_epoch, &dyn_live);  // replayed from the input log
  }
  for (std::size_t e = crash_epoch + 1; e < kEpochs; ++e) {
    db.ExecuteEpoch(MakeEpoch(21, e, &dyn_live));
  }

  std::string diff;
  EXPECT_EQ(core::DiffStates(expected, core::CaptureState(db), &diff), 0u) << diff;
  std::string index_diff;
  EXPECT_EQ(core::ValidatePersistentIndex(db, &index_diff), 0u) << index_diff;
}

INSTANTIATE_TEST_SUITE_P(NewSites, ParallelTailCrashTest,
                         ::testing::Values(CrashSite::kMidParallelCheckpoint,
                                           CrashSite::kMidParallelIndexApply));

}  // namespace
}  // namespace nvc::test
