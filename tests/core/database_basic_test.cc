// End-to-end engine behaviour: epochs, serial order, inserts, deletes,
// aborts, caching and multi-epoch GC.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "tests/test_util.h"

namespace nvc::test {
namespace {

using core::Database;
using core::DatabaseSpec;
using core::EpochResult;
using sim::NvmDevice;

class DatabaseBasicTest : public ::testing::Test {
 protected:
  DatabaseBasicTest() : spec_(SmallKvSpec()), device_(ShadowDeviceConfig(spec_)) {}

  void SetUp() override {
    db_ = std::make_unique<Database>(device_, spec_);
    db_->Format();
  }

  void Load(std::size_t rows) {
    for (std::size_t i = 0; i < rows; ++i) {
      const std::uint64_t value = 1000 + i;
      db_->BulkLoad(0, i, &value, sizeof(value));
    }
    db_->FinalizeLoad();
  }

  DatabaseSpec spec_;
  NvmDevice device_;
  std::unique_ptr<Database> db_;
};

TEST(DatabaseSpecValidationTest, WorkerCountOutsideCoreRangeIsRejected) {
  // Core indices shard kMaxCores-sized arrays in the device, stats, and
  // transient pool; a spec with more workers must fail loudly at
  // construction instead of aliasing counters and pending-persist queues.
  DatabaseSpec spec = SmallKvSpec();
  NvmDevice device(ShadowDeviceConfig(spec));
  spec.workers = kMaxCores + 1;
  EXPECT_THROW(Database(device, spec), std::invalid_argument);
  spec.workers = 0;
  EXPECT_THROW(Database(device, spec), std::invalid_argument);
  spec.workers = 1;
  EXPECT_NO_THROW(Database(device, spec));
}

TEST_F(DatabaseBasicTest, BulkLoadAndReadCommitted) {
  Load(100);
  EXPECT_EQ(ReadU64(*db_, 0, 0), 1000u);
  EXPECT_EQ(ReadU64(*db_, 0, 99), 1099u);
  EXPECT_EQ(ReadU64(*db_, 0, 100), ~0ULL);  // absent
  EXPECT_EQ(db_->table_rows(0), 100u);
}

TEST_F(DatabaseBasicTest, SingleEpochWrites) {
  Load(10);
  std::vector<std::unique_ptr<txn::Transaction>> txns;
  txns.push_back(std::make_unique<KvPutTxn>(3, 42));
  txns.push_back(std::make_unique<KvPutTxn>(7, 77));
  const EpochResult result = db_->ExecuteEpoch(std::move(txns));
  EXPECT_EQ(result.epoch, 2u);
  EXPECT_EQ(result.committed, 2u);
  EXPECT_EQ(ReadU64(*db_, 0, 3), 42u);
  EXPECT_EQ(ReadU64(*db_, 0, 7), 77u);
  EXPECT_EQ(ReadU64(*db_, 0, 0), 1000u);
}

TEST_F(DatabaseBasicTest, SerialOrderWithinEpoch) {
  Load(1);
  // value = 1000; then RMW chain in declared serial order:
  // t1: v*3+1, t2: v*3+2, t3: v*3+3 => ((1000*3+1)*3+2)*3+3 = 27036.
  std::vector<std::unique_ptr<txn::Transaction>> txns;
  txns.push_back(std::make_unique<KvRmwTxn>(0, 1));
  txns.push_back(std::make_unique<KvRmwTxn>(0, 2));
  txns.push_back(std::make_unique<KvRmwTxn>(0, 3));
  db_->ExecuteEpoch(std::move(txns));
  EXPECT_EQ(ReadU64(*db_, 0, 0), ((1000u * 3 + 1) * 3 + 2) * 3 + 3);
}

TEST_F(DatabaseBasicTest, SerialOrderAcrossEpochs) {
  Load(1);
  for (int epoch = 0; epoch < 5; ++epoch) {
    std::vector<std::unique_ptr<txn::Transaction>> txns;
    txns.push_back(std::make_unique<KvRmwTxn>(0, 1));
    db_->ExecuteEpoch(std::move(txns));
  }
  std::uint64_t expected = 1000;
  for (int i = 0; i < 5; ++i) {
    expected = expected * 3 + 1;
  }
  EXPECT_EQ(ReadU64(*db_, 0, 0), expected);
}

TEST_F(DatabaseBasicTest, ManyEpochsContendedKey) {
  Load(4);
  std::uint64_t expected[4] = {1000, 1001, 1002, 1003};
  for (int epoch = 0; epoch < 30; ++epoch) {
    std::vector<std::unique_ptr<txn::Transaction>> txns;
    for (std::uint32_t i = 0; i < 20; ++i) {
      const Key key = i % 4;
      txns.push_back(std::make_unique<KvRmwTxn>(key, i));
      expected[key] = expected[key] * 3 + i;
    }
    const EpochResult result = db_->ExecuteEpoch(std::move(txns));
    EXPECT_EQ(result.committed, 20u);
  }
  for (Key key = 0; key < 4; ++key) {
    EXPECT_EQ(ReadU64(*db_, 0, key), expected[key]) << "key " << key;
  }
}

// Transient-write accounting: with 10 updates to the same key in one epoch,
// only the final write is persistent (paper section 4).
TEST_F(DatabaseBasicTest, OnlyFinalWritePersisted) {
  Load(1);
  db_->stats().Reset();
  std::vector<std::unique_ptr<txn::Transaction>> txns;
  for (std::uint32_t i = 0; i < 10; ++i) {
    txns.push_back(std::make_unique<KvPutTxn>(0, i));
  }
  db_->ExecuteEpoch(std::move(txns));
  EXPECT_EQ(db_->stats().persistent_writes.Sum(), 1u);
  EXPECT_EQ(db_->stats().transient_writes.Sum(), 9u);
  EXPECT_EQ(ReadU64(*db_, 0, 0), 9u);
}

}  // namespace
}  // namespace nvc::test
