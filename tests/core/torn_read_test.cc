// Regression: WriteRow used to reuse an already-published TransientValue when
// a transaction wrote the same row twice with the same size, memcpying the
// new bytes into the buffer in place. A concurrent reader at a later SID that
// had already passed WaitNonPending could be mid-copy from that buffer and
// observe a torn value (half old pattern, half new). WriteRow must publish a
// fresh buffer on every write; under TSan the pre-fix code reports a data
// race between the writer's memcpy-in and the reader's memcpy-out.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "tests/test_util.h"

namespace nvc::test {
namespace {

using core::Database;
using core::DatabaseSpec;
using sim::NvmDevice;

constexpr std::uint32_t kValueSize = 128;
constexpr int kRewrites = 16;
constexpr std::size_t kWorkers = 4;
constexpr std::size_t kGroups = 8;
constexpr std::size_t kEpochs = 60;

std::atomic<bool> g_torn{false};

std::uint8_t FillByte(std::uint64_t round, int rewrite) {
  return static_cast<std::uint8_t>(1 + ((round * 31 + rewrite * 17) & 0xFF) % 255);
}

// Rewrites the same key kRewrites times with distinct uniform fill bytes.
// It is deliberately NOT the serially-last writer of the key (a FinalPutTxn
// follows), so every rewrite stays a transient version — the publication
// path under test.
class MultiWriteTxn final : public txn::Transaction {
 public:
  MultiWriteTxn(Key key, std::uint64_t round) : key_(key), round_(round) {}
  txn::TxnType type() const override { return 100; }
  void EncodeInputs(BinaryWriter& w) const override {
    w.Put(key_);
    w.Put(round_);
  }
  void AppendStep(txn::AppendContext& ctx) override { ctx.DeclareUpdate(0, key_); }
  void Execute(txn::ExecContext& ctx) override {
    std::uint8_t data[kValueSize];
    for (int r = 0; r < kRewrites; ++r) {
      std::memset(data, FillByte(round_, r), sizeof(data));
      ctx.Write(0, key_, data, sizeof(data));
      // Hand the core to the reader threads between rewrites so they load
      // the just-published pointer before the next rewrite lands.
      std::this_thread::yield();
    }
  }

 private:
  Key key_;
  std::uint64_t round_;
};

// Reads the key (waiting on the MultiWriteTxn's pending slot) and checks the
// copy it got is a single uniform pattern — a mixed fill means a torn read.
class UniformReadTxn final : public txn::Transaction {
 public:
  explicit UniformReadTxn(Key key) : key_(key) {}
  txn::TxnType type() const override { return 101; }
  void EncodeInputs(BinaryWriter& w) const override { w.Put(key_); }
  void Execute(txn::ExecContext& ctx) override {
    std::uint8_t data[kValueSize];
    const int n = ctx.Read(0, key_, data, sizeof(data));
    if (n != static_cast<int>(kValueSize)) {
      return;
    }
    for (std::uint32_t i = 1; i < kValueSize; ++i) {
      if (data[i] != data[0]) {
        g_torn.store(true, std::memory_order_relaxed);
        return;
      }
    }
  }

 private:
  Key key_;
};

// Serially-last writer of the key: keeps the MultiWriteTxn's versions
// transient and gives PersistFinal exactly one write per key per epoch.
class FinalPutTxn final : public txn::Transaction {
 public:
  FinalPutTxn(Key key, std::uint64_t round) : key_(key), round_(round) {}
  txn::TxnType type() const override { return 102; }
  void EncodeInputs(BinaryWriter& w) const override {
    w.Put(key_);
    w.Put(round_);
  }
  void AppendStep(txn::AppendContext& ctx) override { ctx.DeclareUpdate(0, key_); }
  void Execute(txn::ExecContext& ctx) override {
    std::uint8_t data[kValueSize];
    std::memset(data, FillByte(round_, kRewrites), sizeof(data));
    ctx.Write(0, key_, data, sizeof(data));
  }

 private:
  Key key_;
  std::uint64_t round_;
};

TEST(TornReadTest, LaterSidReadersNeverSeeTornValues) {
  g_torn.store(false);
  const DatabaseSpec spec = SmallKvSpec(kWorkers);
  NvmDevice device(ShadowDeviceConfig(spec));
  Database db(device, spec);
  db.Format();
  std::vector<std::uint8_t> initial(kValueSize, 1);
  for (std::size_t g = 0; g < kGroups; ++g) {
    db.BulkLoad(0, g, initial.data(), kValueSize);
  }
  db.FinalizeLoad();

  for (std::size_t epoch = 0; epoch < kEpochs; ++epoch) {
    // Transaction i runs on worker i % kWorkers, so each group's rewriter
    // (index 4g, worker 0) executes concurrently with its two readers
    // (workers 1-2) and the final writer (worker 3). The readers' SIDs fall
    // between the rewriter's and the final writer's, so they copy out of the
    // rewriter's freshly-published transient versions while it keeps
    // publishing new ones.
    std::vector<std::unique_ptr<txn::Transaction>> txns;
    for (std::size_t g = 0; g < kGroups; ++g) {
      txns.push_back(std::make_unique<MultiWriteTxn>(g, epoch * kGroups + g));
      txns.push_back(std::make_unique<UniformReadTxn>(g));
      txns.push_back(std::make_unique<UniformReadTxn>(g));
      txns.push_back(std::make_unique<FinalPutTxn>(g, epoch * kGroups + g));
    }
    db.ExecuteEpoch(std::move(txns));
    ASSERT_FALSE(g_torn.load()) << "torn read observed in epoch " << epoch;
  }
}

}  // namespace
}  // namespace nvc::test
