#include "src/zen/zen_db.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "src/common/rng.h"

namespace nvc::zen {
namespace {

constexpr std::size_t kShardsPerTable = 16;

std::uint64_t HashShard(TableId table, Key key) {
  return nvc::SplitMix64(key ^ (static_cast<std::uint64_t>(table) * 0x9e3779b97f4a7c15ULL)) %
         kShardsPerTable;
}

}  // namespace

// Zen stages writes privately and applies them at commit; aborted
// transactions therefore never touch NVMM.
class ZenExecContext final : public txn::ExecContext {
 public:
  ZenExecContext(ZenDb* db, std::size_t core) : db_(db), core_(core) {}

  int Read(TableId table, Key key, void* out, std::uint32_t cap) override {
    // Read-your-own-writes from the staging buffer first.
    for (const StagedWrite& write : staged_) {
      if (write.table == table && write.key == key) {
        std::memcpy(out, write.data.data(),
                    std::min<std::size_t>(cap, write.data.size()));
        return static_cast<int>(write.data.size());
      }
    }
    return db_->ReadRow(table, key, out, cap, core_);
  }

  void Write(TableId table, Key key, const void* data, std::uint32_t size) override {
    for (StagedWrite& write : staged_) {
      if (write.table == table && write.key == key) {
        write.data.assign(static_cast<const std::uint8_t*>(data),
                          static_cast<const std::uint8_t*>(data) + size);
        return;
      }
    }
    staged_.push_back(StagedWrite{
        table, key,
        std::vector<std::uint8_t>(static_cast<const std::uint8_t*>(data),
                                  static_cast<const std::uint8_t*>(data) + size)});
  }

  void Delete(TableId, Key) override {
    throw std::logic_error("ZenDb: deletes are not supported (YCSB/SmallBank only)");
  }
  void Abort() override { aborted_ = true; }
  bool FirstInRange(TableId, Key, Key, Key*) override {
    throw std::logic_error("ZenDb: range queries are not supported");
  }
  bool LastInRange(TableId, Key, Key, Key*) override {
    throw std::logic_error("ZenDb: range queries are not supported");
  }
  std::uint64_t CounterEpochStart(txn::CounterId) const override {
    throw std::logic_error("ZenDb: counters are not supported");
  }
  Sid sid() const override { return Sid{}; }

  bool aborted() const { return aborted_; }

  // Applies the staged writes as one commit.
  void Commit() {
    if (staged_.empty()) {
      return;
    }
    const std::uint64_t csn = db_->next_csn_.fetch_add(1, std::memory_order_relaxed);
    for (const StagedWrite& write : staged_) {
      db_->CommitWrite(write.table, write.key, write.data.data(),
                       static_cast<std::uint32_t>(write.data.size()), csn, core_);
    }
    // One durability point per transaction (log-free group of tuple writes).
    db_->device_.Fence(core_);
  }

  void Reset() {
    staged_.clear();
    aborted_ = false;
  }

 private:
  struct StagedWrite {
    TableId table;
    Key key;
    std::vector<std::uint8_t> data;
  };

  ZenDb* db_;
  std::size_t core_;
  std::vector<StagedWrite> staged_;
  bool aborted_ = false;
};

std::size_t ZenDb::RequiredDeviceBytes(const ZenSpec& spec) {
  std::size_t total = kNvmAccessGranularity;  // reserved header page
  for (const ZenTableSpec& table : spec.tables) {
    const std::size_t slot = AlignUp(sizeof(TupleHeader) + table.value_size, 8);
    total += AlignUp(slot * table.capacity_slots, kNvmAccessGranularity);
  }
  return total;
}

ZenDb::ZenDb(sim::NvmDevice& device, const ZenSpec& spec)
    : device_(device), spec_(spec), pool_(spec.workers) {
  std::uint64_t offset = kNvmAccessGranularity;
  for (const ZenTableSpec& table : spec_.tables) {
    TableRuntime runtime;
    runtime.base = offset;
    runtime.slot_size = AlignUp(sizeof(TupleHeader) + table.value_size, 8);
    runtime.capacity = table.capacity_slots;
    for (std::size_t i = 0; i < kShardsPerTable; ++i) {
      runtime.shards.push_back(std::make_unique<Shard>());
    }
    runtime.free_lists.resize(spec_.workers);
    offset += AlignUp(runtime.slot_size * runtime.capacity, kNvmAccessGranularity);
    tables_.push_back(std::move(runtime));
  }
  if (offset > device_.size()) {
    throw std::invalid_argument("ZenDb: device too small for spec");
  }
}

ZenDb::~ZenDb() {
  for (TableRuntime& table : tables_) {
    for (auto& shard : table.shards) {
      for (auto& [key, row] : shard->map) {
        if (row->cached != nullptr) {
          std::free(row->cached);
        }
      }
    }
  }
}

void ZenDb::Format() {
  // Mark every slot invalid (csn 0). Only headers need clearing.
  for (TableRuntime& table : tables_) {
    for (std::uint64_t i = 0; i < table.capacity; ++i) {
      auto* header = device_.As<TupleHeader>(table.base + i * table.slot_size);
      header->csn = 0;
      header->valid = 0;
    }
    device_.Persist(table.base, table.capacity * table.slot_size, 0);
  }
  device_.Fence(0);
}

std::uint64_t ZenDb::AllocSlot(TableId table, std::size_t core) {
  TableRuntime& runtime = tables_[table];
  CoreFreeList& free_list = runtime.free_lists[core];
  if (!free_list.slots.empty()) {
    const std::uint64_t slot = free_list.slots.back();
    free_list.slots.pop_back();
    return slot;
  }
  const std::uint64_t index = runtime.next_unused.fetch_add(1, std::memory_order_relaxed);
  if (index >= runtime.capacity) {
    throw std::runtime_error("ZenDb: tuple heap exhausted for table " +
                             spec_.tables[table].name);
  }
  return runtime.base + index * runtime.slot_size;
}

void ZenDb::FreeSlot(TableId table, std::size_t core, std::uint64_t slot) {
  tables_[table].free_lists[core].slots.push_back(slot);
}

ZenDb::RowState* ZenDb::Find(TableId table, Key key) {
  Shard& shard = *tables_[table].shards[HashShard(table, key)];
  SpinLatchGuard guard(shard.latch);
  auto it = shard.map.find(key);
  return it == shard.map.end() ? nullptr : it->second;
}

ZenDb::RowState* ZenDb::FindOrCreate(TableId table, Key key) {
  Shard& shard = *tables_[table].shards[HashShard(table, key)];
  SpinLatchGuard guard(shard.latch);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    return it->second;
  }
  shard.slab.emplace_back();
  RowState* row = &shard.slab.back();
  shard.map.emplace(key, row);
  return row;
}

void ZenDb::BulkLoad(TableId table, Key key, const void* data, std::uint32_t size) {
  assert(size <= tables_[table].slot_size - sizeof(TupleHeader));
  const std::uint64_t slot = AllocSlot(table, 0);
  auto* header = device_.As<TupleHeader>(slot);
  header->key = key;
  header->table = table;
  header->csn = next_csn_.fetch_add(1, std::memory_order_relaxed);
  header->valid = 1;
  std::memcpy(device_.At(slot + sizeof(TupleHeader)), data, size);
  device_.Persist(slot, sizeof(TupleHeader) + size, 0);

  RowState* row = FindOrCreate(table, key);
  row->slot = slot;
}

int ZenDb::ReadRow(TableId table, Key key, void* out, std::uint32_t cap, std::size_t core) {
  RowState* row = Find(table, key);
  if (row == nullptr || row->slot == 0) {
    return -1;
  }
  const std::uint32_t value_size = spec_.tables[table].value_size;
  {
    SpinLatchGuard guard(row->latch);
    if (row->cached != nullptr) {
      stats_.cache_hits.Add(core);
      row->clock = 1;
      std::memcpy(out, row->cached->data(), std::min(cap, row->cached->size));
      return static_cast<int>(row->cached->size);
    }
  }
  stats_.cache_misses.Add(core);
  device_.ChargeRead(row->slot, sizeof(TupleHeader) + value_size, core);
  const std::uint8_t* value = device_.At(row->slot + sizeof(TupleHeader));
  std::memcpy(out, value, std::min(cap, value_size));
  {
    SpinLatchGuard guard(row->latch);
    if (row->cached == nullptr) {
      InstallCache(row, value, value_size);
    }
  }
  return static_cast<int>(value_size);
}

void ZenDb::InstallCache(RowState* row, const void* data, std::uint32_t size) {
  // Caller holds row->latch.
  if (cache_entries_.load(std::memory_order_relaxed) >= spec_.cache_max_entries) {
    MaybeEvictOne();
    if (cache_entries_.load(std::memory_order_relaxed) >= spec_.cache_max_entries) {
      return;  // could not make room; skip caching
    }
  }
  auto* entry = static_cast<CacheEntry*>(std::malloc(sizeof(CacheEntry) + size));
  entry->size = size;
  std::memcpy(entry->data(), data, size);
  row->cached = entry;
  row->clock = 1;
  cache_entries_.fetch_add(1, std::memory_order_relaxed);
  cache_bytes_.fetch_add(size, std::memory_order_relaxed);
  SpinLatchGuard guard(clock_latch_);
  clock_ring_.push_back(row);
}

void ZenDb::MaybeEvictOne() {
  // Second-chance clock over cached rows. Caller holds the victim row's
  // latch only if it is the row being installed; take latches carefully.
  SpinLatchGuard guard(clock_latch_);
  for (std::size_t step = 0; step < clock_ring_.size() * 2 && !clock_ring_.empty(); ++step) {
    clock_hand_ %= clock_ring_.size();
    RowState* candidate = clock_ring_[clock_hand_];
    if (candidate->cached == nullptr) {
      clock_ring_[clock_hand_] = clock_ring_.back();
      clock_ring_.pop_back();
      continue;
    }
    if (candidate->clock != 0) {
      candidate->clock = 0;
      ++clock_hand_;
      continue;
    }
    if (!candidate->latch.TryLock()) {
      ++clock_hand_;
      continue;
    }
    CacheEntry* entry = candidate->cached;
    if (entry != nullptr) {
      candidate->cached = nullptr;
      cache_entries_.fetch_sub(1, std::memory_order_relaxed);
      cache_bytes_.fetch_sub(entry->size, std::memory_order_relaxed);
      std::free(entry);
      stats_.cache_evictions.Add(0);
    }
    candidate->latch.Unlock();
    clock_ring_[clock_hand_] = clock_ring_.back();
    clock_ring_.pop_back();
    return;
  }
}

void ZenDb::CommitWrite(TableId table, Key key, const void* data, std::uint32_t size,
                        std::uint64_t csn, std::size_t core) {
  RowState* row = FindOrCreate(table, key);

  // Out-of-place NVM write: fresh slot, full tuple, persisted.
  const std::uint64_t slot = AllocSlot(table, core);
  auto* header = device_.As<TupleHeader>(slot);
  header->key = key;
  header->table = table;
  header->csn = csn;
  header->valid = 1;
  std::memcpy(device_.At(slot + sizeof(TupleHeader)), data, size);
  device_.Persist(slot, sizeof(TupleHeader) + size, core);
  stats_.persistent_writes.Add(core);

  std::uint64_t old_slot;
  {
    SpinLatchGuard guard(row->latch);
    old_slot = row->slot;
    row->slot = slot;
    if (row->cached != nullptr && row->cached->size == size) {
      std::memcpy(row->cached->data(), data, size);
      row->clock = 1;
    } else if (row->cached == nullptr) {
      InstallCache(row, data, size);
    }
  }
  if (old_slot != 0) {
    // Invalidate the stale version lazily (recovery picks max CSN anyway);
    // reuse the slot via the DRAM free list.
    auto* old_header = device_.As<TupleHeader>(old_slot);
    old_header->valid = 0;
    FreeSlot(table, core, old_slot);
  }
}

ZenBatchResult ZenDb::ExecuteBatch(std::vector<std::unique_ptr<txn::Transaction>> txns) {
  const auto start = std::chrono::steady_clock::now();
  std::atomic<std::size_t> committed{0};
  std::atomic<std::size_t> aborted{0};
  pool_.RunParallel([&](std::size_t w) {
    ZenExecContext ctx(this, w);
    for (std::size_t i = w; i < txns.size(); i += spec_.workers) {
      ctx.Reset();
      txns[i]->Execute(ctx);
      if (ctx.aborted()) {
        aborted.fetch_add(1, std::memory_order_relaxed);
        stats_.txn_aborted.Add(w);
      } else {
        ctx.Commit();
        committed.fetch_add(1, std::memory_order_relaxed);
        stats_.txn_committed.Add(w);
      }
    }
  });
  ZenBatchResult result;
  result.committed = committed.load();
  result.aborted = aborted.load();
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return result;
}

ZenRecoveryReport ZenDb::Recover() {
  const auto start = std::chrono::steady_clock::now();
  ZenRecoveryReport report;

  // Pass 1: find the latest committed version of every key. The DRAM
  // high-water mark died with the process, so the whole heap is scanned —
  // this is why Zen's recovery scales with database size (paper 6.8).
  std::vector<std::unordered_map<Key, std::pair<std::uint64_t, std::uint64_t>>> latest(
      tables_.size());  // key -> (csn, slot)
  std::uint64_t max_csn = 0;
  for (std::size_t t = 0; t < tables_.size(); ++t) {
    TableRuntime& runtime = tables_[t];
    for (std::uint64_t i = 0; i < runtime.capacity; ++i) {
      const std::uint64_t slot = runtime.base + i * runtime.slot_size;
      device_.ChargeRead(slot, sizeof(TupleHeader), 0);
      ++report.slots_scanned;
      const auto* header = device_.As<TupleHeader>(slot);
      if (header->csn == 0 || header->valid == 0) {
        continue;
      }
      max_csn = std::max(max_csn, header->csn);
      auto [it, inserted] = latest[t].try_emplace(header->key,
                                                  std::make_pair(header->csn, slot));
      if (!inserted && header->csn > it->second.first) {
        it->second = {header->csn, slot};
      }
    }
  }

  // Pass 2: rebuild the index and free lists (a second scan over the heap,
  // as Zen's recovery requires).
  for (std::size_t t = 0; t < tables_.size(); ++t) {
    TableRuntime& runtime = tables_[t];
    std::size_t core = 0;
    for (std::uint64_t i = 0; i < runtime.capacity; ++i) {
      const std::uint64_t slot = runtime.base + i * runtime.slot_size;
      device_.ChargeRead(slot, sizeof(TupleHeader), 0);
      ++report.slots_scanned;
      const auto* header = device_.As<TupleHeader>(slot);
      auto it = latest[t].find(header->key);
      const bool is_latest = header->csn != 0 && header->valid != 0 &&
                             it != latest[t].end() && it->second.second == slot;
      if (is_latest) {
        RowState* row = FindOrCreate(static_cast<TableId>(t), header->key);
        row->slot = slot;
        ++report.live_rows;
      } else {
        FreeSlot(static_cast<TableId>(t), core, slot);
        core = (core + 1) % spec_.workers;
      }
    }
    runtime.next_unused.store(runtime.capacity, std::memory_order_relaxed);
  }
  next_csn_.store(max_csn + 1, std::memory_order_relaxed);
  report.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return report;
}

StatusOr<std::uint32_t> ZenDb::ReadCommitted(TableId table, Key key, void* out,
                                             std::uint32_t cap) {
  const int n = ReadRow(table, key, out, cap, 0);
  if (n < 0) {
    return Status::NotFound("ZenDb::ReadCommitted: no committed version for key " +
                            std::to_string(key));
  }
  return static_cast<std::uint32_t>(n);
}

}  // namespace nvc::zen
