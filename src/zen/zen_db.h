// Zen baseline: a from-scratch reimplementation of the Zen log-free NVMM
// OLTP engine (Liu, Chen & Chen, VLDB '21), the paper's primary comparison
// system (sections 2.1 and 6.3).
//
// Zen's architecture, as reproduced here:
//   * NVM tuple heap — fixed-size tuple slots per table; every committed
//     update writes the full tuple (header + value) out of place to a fresh
//     slot and persists it, regardless of contention. This is the structural
//     property the paper's comparison hinges on.
//   * Metadata-enhanced tuple cache — a DRAM cache (bounded entry count,
//     clock eviction) absorbs reads; updates go through the cache and reach
//     NVMM at commit.
//   * Lightweight NVM space management — free slots are tracked in DRAM
//     free lists (one per core); the old slot of an updated tuple is freed
//     after the new slot commits.
//   * Log-free commits — no redo/undo log; tuples carry a commit sequence
//     number (CSN) and recovery validates by scanning the tuple heap more
//     than once (pass 1 finds the latest committed version of every key,
//     pass 2 rebuilds the index and free lists).
//
// Scope: Zen runs the YCSB and SmallBank comparisons (figures 5 and 6); the
// paper omits TPC-C because Zen's released code does not support it, and the
// insert-step/counter APIs are likewise unsupported here. Transactions are
// executed through the same txn::Transaction interface as NVCaracal, in
// batch (epoch-equivalent) groups, with writes staged privately and applied
// at commit — aborted transactions touch no NVMM.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <deque>
#include <unordered_map>
#include <vector>

#include "src/common/latch.h"
#include "src/common/stats.h"
#include "src/common/status.h"
#include "src/common/types.h"
#include "src/common/worker_pool.h"
#include "src/sim/nvm_device.h"
#include "src/txn/transaction.h"

namespace nvc::zen {

struct ZenTableSpec {
  std::string name;
  std::uint32_t value_size = 0;    // fixed tuple payload size
  std::uint64_t capacity_slots = 0;  // >= 2x live rows for multi-versioning
};

struct ZenSpec {
  std::size_t workers = 1;
  std::vector<ZenTableSpec> tables;
  std::size_t cache_max_entries = 1 << 20;  // Table 4's cache entry limits
};

struct ZenBatchResult {
  std::size_t committed = 0;
  std::size_t aborted = 0;
  double seconds = 0;
};

struct ZenRecoveryReport {
  std::size_t slots_scanned = 0;  // across both passes
  std::size_t live_rows = 0;
  double seconds = 0;
};

class ZenDb {
 public:
  static std::size_t RequiredDeviceBytes(const ZenSpec& spec);

  ZenDb(sim::NvmDevice& device, const ZenSpec& spec);
  ~ZenDb();

  ZenDb(const ZenDb&) = delete;
  ZenDb& operator=(const ZenDb&) = delete;

  void Format();
  void BulkLoad(TableId table, Key key, const void* data, std::uint32_t size);

  // Executes one batch; transactions are applied in submission order per
  // worker with last-committer-wins per row (Zen is not deterministic).
  ZenBatchResult ExecuteBatch(std::vector<std::unique_ptr<txn::Transaction>> txns);

  // Two-pass recovery scan (no replay needed; all committed updates are in
  // the tuple heap). Call on a fresh ZenDb over a recovered device.
  ZenRecoveryReport Recover();

  // Latest committed value; kNotFound when the row has no committed version
  // (same contract as core::Database::ReadCommitted).
  StatusOr<std::uint32_t> ReadCommitted(TableId table, Key key, void* out, std::uint32_t cap);

  EngineStats& stats() { return stats_; }
  std::size_t cache_entries() const { return cache_entries_.load(std::memory_order_relaxed); }
  std::size_t cache_bytes() const { return cache_bytes_.load(std::memory_order_relaxed); }

 private:
  friend class ZenExecContext;

  // NVM tuple layout: header followed by value bytes.
  struct TupleHeader {
    Key key;
    std::uint64_t csn;  // 0 = free/invalid slot
    std::uint32_t table;
    std::uint32_t valid;
  };

  struct CacheEntry {
    std::uint32_t size;
    std::uint8_t* data() { return reinterpret_cast<std::uint8_t*>(this + 1); }
  };

  struct RowState {
    std::uint64_t slot = 0;  // NVM offset of the committed tuple
    CacheEntry* cached = nullptr;
    std::uint8_t clock = 0;  // second-chance bit
    SpinLatch latch;
  };

  struct Shard {
    SpinLatch latch;
    std::unordered_map<Key, RowState*> map;
    std::deque<RowState> slab;
  };

  struct alignas(kCacheLineSize) CoreFreeList {
    std::vector<std::uint64_t> slots;
  };

  struct TableRuntime {
    std::uint64_t base = 0;
    std::uint64_t slot_size = 0;
    std::uint64_t capacity = 0;
    std::vector<std::unique_ptr<Shard>> shards;
    std::vector<CoreFreeList> free_lists;
    std::atomic<std::uint64_t> next_unused{0};  // bump within capacity

    TableRuntime() = default;
    TableRuntime(TableRuntime&& other) noexcept
        : base(other.base), slot_size(other.slot_size), capacity(other.capacity),
          shards(std::move(other.shards)), free_lists(std::move(other.free_lists)),
          next_unused(other.next_unused.load(std::memory_order_relaxed)) {}
  };

  RowState* Find(TableId table, Key key);
  RowState* FindOrCreate(TableId table, Key key);
  std::uint64_t AllocSlot(TableId table, std::size_t core);
  void FreeSlot(TableId table, std::size_t core, std::uint64_t slot);

  int ReadRow(TableId table, Key key, void* out, std::uint32_t cap, std::size_t core);
  void CommitWrite(TableId table, Key key, const void* data, std::uint32_t size,
                   std::uint64_t csn, std::size_t core);
  void InstallCache(RowState* row, const void* data, std::uint32_t size);
  void MaybeEvictOne();

  sim::NvmDevice& device_;
  ZenSpec spec_;
  WorkerPool pool_;
  std::vector<TableRuntime> tables_;
  std::atomic<std::uint64_t> next_csn_{1};
  EngineStats stats_;

  std::atomic<std::size_t> cache_entries_{0};
  std::atomic<std::size_t> cache_bytes_{0};
  // Clock hand over rows that currently hold a cache entry.
  SpinLatch clock_latch_;
  std::vector<RowState*> clock_ring_;
  std::size_t clock_hand_ = 0;
};

}  // namespace nvc::zen
