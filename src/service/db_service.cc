#include "src/service/db_service.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

namespace nvc::service {

namespace {

double MicrosSince(std::chrono::steady_clock::time_point start,
                   std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double, std::micro>(end - start).count();
}

}  // namespace

Status ServiceSpec::Validate() const {
  if (max_epoch_txns == 0) {
    return Status::InvalidArgument("ServiceSpec: max_epoch_txns must be at least 1");
  }
  if (max_epoch_delay.count() < 0) {
    return Status::InvalidArgument("ServiceSpec: max_epoch_delay must be non-negative");
  }
  if (queue_capacity == 0) {
    return Status::InvalidArgument("ServiceSpec: queue_capacity must be at least 1");
  }
  if (queue_capacity < max_epoch_txns) {
    return Status::InvalidArgument(
        "ServiceSpec: queue_capacity (" + std::to_string(queue_capacity) +
        ") must admit a full epoch of max_epoch_txns (" +
        std::to_string(max_epoch_txns) + ")");
  }
  return Status::Ok();
}

// ---- TxnTicket ---------------------------------------------------------------

const TicketResult& TxnTicket::Get() const {
  std::unique_lock<std::mutex> lk(state_->mu);
  state_->cv.wait(lk, [&] { return state_->done; });
  return state_->result;
}

bool TxnTicket::WaitFor(std::chrono::microseconds timeout) const {
  std::unique_lock<std::mutex> lk(state_->mu);
  return state_->cv.wait_for(lk, timeout, [&] { return state_->done; });
}

bool TxnTicket::done() const {
  std::lock_guard<std::mutex> lk(state_->mu);
  return state_->done;
}

// ---- DbService ---------------------------------------------------------------

DbService::DbService(std::unique_ptr<core::Database> db, const ServiceSpec& spec)
    : db_(std::move(db)), spec_(spec) {
  if (!db_) {
    throw std::invalid_argument("DbService: database must not be null");
  }
  const Status valid = spec_.Validate();
  if (!valid.ok()) {
    throw std::invalid_argument("DbService: " + valid.message());
  }
  db_->SetEpochCallback(
      [this](const core::EpochResult& result, const std::vector<core::TxnOutcome>& outcomes) {
        OnEpochDurable(result, outcomes);
      });
  if (db_->instant_recovery_pending()) {
    const core::BackfillProgress progress = db_->RecoveryProgress();
    backfill_total_ = progress.total_keys;
    backfill_epoch_ = progress.crashed_epoch;
    backfill_pending_.store(progress.pending_keys, std::memory_order_relaxed);
    recovering_.store(progress.pending, std::memory_order_release);
  }
  pacer_ = std::thread([this] { PacerLoop(); });
}

DbService::~DbService() { Stop().IgnoreError(); }

StatusOr<TxnTicket> DbService::Submit(std::unique_ptr<txn::Transaction> txn) {
  if (!txn) {
    return Status::InvalidArgument("DbService::Submit: transaction must not be null");
  }
  if (recovering_.load(std::memory_order_acquire)) {
    // Don't queue behind an epoch that cannot start yet: tell the client how
    // long the remaining backfill is likely to take so it can back off. The
    // snapshot and the hint are pacer-maintained — the hint extrapolates the
    // measured retire rate of the steps completed so far — so this never
    // blocks on a backfill step.
    const std::size_t pending = backfill_pending_.load(std::memory_order_relaxed);
    const std::size_t retry_ms = backfill_retry_hint_ms_.load(std::memory_order_relaxed);
    return Status::Unavailable(
        "DbService::Submit: instant-recovery backfill in progress (" +
        std::to_string(pending) + " of " + std::to_string(backfill_total_) +
        " keys pending, crashed epoch " + std::to_string(backfill_epoch_) +
        "); retry after ~" + std::to_string(retry_ms) + " ms");
  }
  std::unique_lock<std::mutex> lk(mu_);
  if (!fail_status_.ok()) {
    return fail_status_;
  }
  if (stopping_) {
    return Status::Unavailable("DbService::Submit: service is stopped");
  }
  if (queue_.size() >= spec_.queue_capacity) {
    if (spec_.backpressure == BackpressurePolicy::kReject) {
      return Status::ResourceExhausted(
          "DbService::Submit: queue full (" + std::to_string(spec_.queue_capacity) +
          " transactions); retry after the pacer drains");
    }
    space_cv_.wait(lk, [&] {
      return stopping_ || !fail_status_.ok() || queue_.size() < spec_.queue_capacity;
    });
    if (!fail_status_.ok()) {
      return fail_status_;
    }
    if (stopping_) {
      return Status::Unavailable("DbService::Submit: service stopped while blocked");
    }
  }
  auto state = std::make_shared<internal::TicketState>();
  state->submit_time = std::chrono::steady_clock::now();
  queue_.push_back(Pending{std::move(txn), state});
  work_cv_.notify_all();
  return TxnTicket(std::move(state));
}

bool DbService::RunRecoveryBackfill() {
  if (!recovering_.load(std::memory_order_acquire)) {
    return true;
  }
  const auto backfill_start = std::chrono::steady_clock::now();
  const std::size_t initial_pending = backfill_pending_.load(std::memory_order_relaxed);
  while (db_->instant_recovery_pending()) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (stopping_ || !fail_status_.ok()) {
        // Shut down with the window still open; the database is handed back
        // pending and the next owner finishes (or re-recovers) the backfill.
        return false;
      }
    }
    const StatusOr<std::size_t> remaining = db_->RunBackfillStep(64);
    if (!remaining.ok()) {
      std::lock_guard<std::mutex> lk(mu_);
      FailAll(Status::DataLoss("DbService: crash during recovery backfill: " +
                               remaining.status().message()));
      recovering_.store(false, std::memory_order_release);
      return false;
    }
    backfill_pending_.store(*remaining, std::memory_order_relaxed);
    // Refresh the retry-after hint from the measured retire rate: keys
    // retired since the backfill began over the wall time it took. The
    // fixed per-key guess this replaces was off by orders of magnitude
    // whenever redo work per key diverged from the assumed constant.
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                  backfill_start)
            .count();
    const std::size_t retired =
        initial_pending > *remaining ? initial_pending - *remaining : 0;
    if (retired > 0 && elapsed_ms > 0.0) {
      const double rate_keys_per_ms = static_cast<double>(retired) / elapsed_ms;
      const double eta_ms = static_cast<double>(*remaining) / rate_keys_per_ms;
      const std::size_t hint =
          std::min<std::size_t>(60000, 1 + static_cast<std::size_t>(eta_ms));
      backfill_retry_hint_ms_.store(hint, std::memory_order_relaxed);
    }
  }
  recovering_.store(false, std::memory_order_release);
  return true;
}

void DbService::PacerLoop() {
  if (!RunRecoveryBackfill()) {
    std::lock_guard<std::mutex> lk(mu_);
    flush_ = false;  // nothing was admitted, so a concurrent Drain() is done
    idle_cv_.notify_all();
    space_cv_.notify_all();
    return;
  }
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    if (deferred_.empty() && inflight_new_.empty()) {
      work_cv_.wait(lk, [&] {
        return stopping_ || !fail_status_.ok() || !queue_.empty() || flush_;
      });
    } else {
      // Aria deferrals (or an epoch whose durable callback is still in
      // flight on the tail thread) exist: never sleep past the delay bound,
      // so a deferred ticket resolves even when no new traffic arrives.
      work_cv_.wait_for(lk, spec_.max_epoch_delay, [&] {
        return stopping_ || !fail_status_.ok() || !queue_.empty() || flush_;
      });
    }
    if (!fail_status_.ok()) {
      break;
    }
    if (queue_.empty()) {
      if ((flush_ || stopping_) && !inflight_new_.empty()) {
        // Quiesce: the tail thread still owes durable callbacks, which may
        // reveal deferrals that need further flush epochs. Re-evaluate once
        // it drains.
        if (!QuiesceTail(lk)) {
          break;
        }
        continue;
      }
      if (!deferred_.empty()) {
        // Flush epoch: empty input; the engine re-runs its deferred batch.
        const std::size_t before = deferred_.size();
        if (!RunBatch(lk, {})) {
          break;
        }
        if (stopping_ || flush_) {
          // Progress must be observable before the next shutdown decision:
          // drain the flush epoch's own tail (its callback rebuilds
          // deferred_), then check that it resolved at least one deferral.
          // Aria guarantees the batch's first transaction commits, so a
          // no-progress flush means an engine bug — fail the stragglers
          // rather than spinning in shutdown forever.
          if (!QuiesceTail(lk)) {
            break;
          }
          if (!deferred_.empty() && deferred_.size() >= before) {
            FailAll(Status::Internal(
                "DbService: flush epoch resolved no deferred transactions"));
            break;
          }
        }
        continue;
      }
      if (!inflight_new_.empty()) {
        // No deferrals known yet, but a callback is outstanding; it will
        // notify work_cv_ when it lands. Loop back to the bounded wait.
        continue;
      }
      if (flush_) {
        flush_ = false;
        idle_cv_.notify_all();
      }
      if (stopping_) {
        break;
      }
      continue;
    }
    // A batch is forming: cut on size, delay bound, flush, or shutdown.
    const auto deadline = queue_.front().state->submit_time + spec_.max_epoch_delay;
    while (!stopping_ && !flush_ && fail_status_.ok() &&
           queue_.size() < spec_.max_epoch_txns) {
      if (work_cv_.wait_until(lk, deadline) == std::cv_status::timeout) {
        break;
      }
    }
    if (!fail_status_.ok()) {
      break;
    }
    const std::size_t n = std::min(queue_.size(), spec_.max_epoch_txns);
    std::vector<Pending> batch;
    batch.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    space_cv_.notify_all();
    if (!RunBatch(lk, std::move(batch))) {
      break;
    }
  }
  idle_cv_.notify_all();
  space_cv_.notify_all();
}

bool DbService::RunBatch(std::unique_lock<std::mutex>& lk, std::vector<Pending> batch) {
  std::vector<std::unique_ptr<txn::Transaction>> txns;
  txns.reserve(batch.size());
  // Register the epoch's new-submission tickets before the engine sees the
  // batch: when OnEpochDurable later fires (tail thread under pipelining,
  // synchronously inside ExecuteEpoch otherwise), it prepends the deferred
  // carryover to the front entry to reconstruct the engine's slot order.
  std::vector<std::shared_ptr<internal::TicketState>> fresh;
  fresh.reserve(batch.size());
  for (auto& p : batch) {
    txns.push_back(std::move(p.txn));
    fresh.push_back(std::move(p.state));
  }
  inflight_new_.push_back(std::move(fresh));
  executing_ = true;
  lk.unlock();
  const core::EpochResult result = db_->ExecuteEpoch(std::move(txns));
  lk.lock();
  executing_ = false;
  ++epochs_;
  if (result.crashed) {
    const Status why = Status::DataLoss(
        "DbService: crash hook fired during epoch " + std::to_string(result.epoch) +
        "; recover the database from the device");
    FailAll(why);
    return false;
  }
  if (queue_.empty() && deferred_.empty() && inflight_new_.empty()) {
    if (flush_) {
      flush_ = false;
    }
    idle_cv_.notify_all();
  }
  return true;
}

bool DbService::QuiesceTail(std::unique_lock<std::mutex>& lk) {
  lk.unlock();  // the durable callback takes mu_; don't hold it across the wait
  const Status idle = db_->WaitIdle();
  lk.lock();
  if (!idle.ok()) {
    FailAll(Status::DataLoss("DbService: " + idle.message() +
                             "; recover the database from the device"));
    return false;
  }
  if (!fail_status_.ok()) {
    return false;
  }
  return true;
}

void DbService::OnEpochDurable(const core::EpochResult& result,
                               const std::vector<core::TxnOutcome>& outcomes) {
  const auto now = std::chrono::steady_clock::now();
  std::unique_lock<std::mutex> lk(mu_);
  if (!fail_status_.ok()) {
    return;  // FailAll already resolved every outstanding ticket
  }
  // Engine slot order: deferred carryover first, then the epoch's new
  // submissions. Callbacks arrive in strict epoch order (one tail at a
  // time), so the front of inflight_new_ is always this epoch's entry.
  std::vector<std::shared_ptr<internal::TicketState>> slots;
  slots.reserve(deferred_.size() +
                (inflight_new_.empty() ? 0 : inflight_new_.front().size()));
  for (auto& state : deferred_) {
    slots.push_back(std::move(state));
  }
  deferred_.clear();
  if (!inflight_new_.empty()) {
    for (auto& state : inflight_new_.front()) {
      slots.push_back(std::move(state));
    }
    inflight_new_.pop_front();
  }
  {
    std::lock_guard<std::mutex> stats_lk(stats_mu_);
    for (std::size_t i = 0; i < outcomes.size() && i < slots.size(); ++i) {
      const std::shared_ptr<internal::TicketState>& state = slots[i];
      switch (outcomes[i]) {
        case core::TxnOutcome::kDeferred:
          ++state->deferrals;
          deferred_.push_back(state);
          break;
        case core::TxnOutcome::kAborted:
        case core::TxnOutcome::kCommitted: {
          const TicketOutcome outcome = outcomes[i] == core::TxnOutcome::kCommitted
                                            ? TicketOutcome::kCommitted
                                            : TicketOutcome::kUserAborted;
          latency_.Record(MicrosSince(state->submit_time, now));
          Resolve(state, outcome, result.epoch, Status::Ok());
          break;
        }
      }
    }
  }
  const bool idle =
      queue_.empty() && deferred_.empty() && inflight_new_.empty() && !executing_;
  lk.unlock();
  // The pacer may be sleeping on the delay-bounded wait for exactly this
  // callback (deferred tickets to flush, or drain progress).
  work_cv_.notify_all();
  if (idle) {
    idle_cv_.notify_all();
  }
}

void DbService::Resolve(const std::shared_ptr<internal::TicketState>& state,
                        TicketOutcome outcome, Epoch epoch, Status status) {
  const auto now = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lk(state->mu);
    if (state->done) {
      return;  // first resolution wins (e.g. FailAll over a stale slot)
    }
    state->result.outcome = outcome;
    state->result.epoch = epoch;
    state->result.latency_micros = MicrosSince(state->submit_time, now);
    state->result.deferrals = state->deferrals;
    state->result.status = std::move(status);
    state->done = true;
  }
  state->cv.notify_all();
}

void DbService::FailAll(const Status& why) {
  fail_status_ = why;
  for (const auto& batch : inflight_new_) {
    for (const auto& state : batch) {
      Resolve(state, TicketOutcome::kFailed, 0, why);
    }
  }
  inflight_new_.clear();
  for (const auto& state : deferred_) {
    Resolve(state, TicketOutcome::kFailed, 0, why);
  }
  deferred_.clear();
  for (auto& p : queue_) {
    Resolve(p.state, TicketOutcome::kFailed, 0, why);
  }
  queue_.clear();
  work_cv_.notify_all();
  space_cv_.notify_all();
  idle_cv_.notify_all();
}

Status DbService::Drain() {
  std::unique_lock<std::mutex> lk(mu_);
  if (!fail_status_.ok()) {
    return fail_status_;
  }
  flush_ = true;
  work_cv_.notify_all();
  idle_cv_.wait(lk, [&] {
    return !fail_status_.ok() ||
           (queue_.empty() && deferred_.empty() && inflight_new_.empty() &&
            !executing_ && !flush_);
  });
  return fail_status_;
}

Status DbService::Stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
    work_cv_.notify_all();
    space_cv_.notify_all();
  }
  if (pacer_.joinable()) {
    pacer_.join();
  }
  if (db_) {
    db_->SetEpochCallback({});
  }
  std::lock_guard<std::mutex> lk(mu_);
  return fail_status_;
}

std::unique_ptr<core::Database> DbService::TakeDatabase() {
  Stop().IgnoreError();
  return std::move(db_);
}

LatencySummary DbService::LatencySnapshot() const {
  std::lock_guard<std::mutex> lk(stats_mu_);
  return latency_.Summarize();
}

std::size_t DbService::epochs_executed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return epochs_;
}

std::size_t DbService::queue_depth() const {
  std::lock_guard<std::mutex> lk(mu_);
  return queue_.size();
}

Status DbService::health() const {
  std::lock_guard<std::mutex> lk(mu_);
  return fail_status_;
}

}  // namespace nvc::service
