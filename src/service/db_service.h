// Asynchronous group-commit front-end for the deterministic engine.
//
// The paper's engine is epoch-batched by construction (batch = epoch,
// footnote 1); DbService is the missing path from concurrent client
// submissions to those batches. Clients call Submit() from any thread and
// receive a TxnTicket — a future-like handle that resolves once the epoch
// containing the transaction has reached its durability point (the epoch
// number is persisted behind a fence, Algorithm 1). A background pacer
// thread cuts epochs from the submission queue by size (max_epoch_txns) and
// time (max_epoch_delay) thresholds, which makes the paper's §6 epoch-size
// latency/throughput trade measurable end-to-end per transaction.
//
// Guarantees (see DESIGN.md section 11):
//   - Submission order is preserved: the queue is FIFO and a batch is a
//     contiguous prefix of it, so results are deterministic given batch
//     composition — a DbService run and a hand-batched ExecuteEpoch run
//     over the same sequence with the same cuts produce identical state.
//   - Tickets resolve only after the durable point; the reported latency is
//     submit -> durable, never submit -> executed. Under pipelined epochs
//     (CoreSpec::enable_epoch_pipeline) the durable notification arrives on
//     the engine's tail thread while the pacer already executes the next
//     batch; the pacer does not wait for epoch N's tail before cutting
//     epoch N+1.
//   - Under Aria, conflict-deferred transactions stay in flight (the engine
//     re-runs them at the front of the next batch); their tickets resolve on
//     the epoch that finally commits or aborts them, with the deferral count.
//   - After a simulated crash (a crash hook fired inside ExecuteEpoch) the
//     service fails fast: every unresolved ticket resolves kFailed and
//     Submit/Drain return the crash status. Recovery happens outside the
//     service, exactly as for a hand-driven Database (tools/crash_fuzz
//     exercises this path against the oracle).
//   - A database handed over mid-instant-recovery (Recover() returned with
//     the crashed epoch still pending-replay) is admissible: the pacer
//     drives the backfill to completion before cutting its first epoch,
//     and Submit during that window returns kUnavailable with a
//     retry-after hint so clients can back off instead of queueing behind
//     an epoch that cannot start yet.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/status.h"
#include "src/common/stats.h"
#include "src/core/database.h"
#include "src/txn/transaction.h"

namespace nvc::service {

// How Submit behaves when the queue holds queue_capacity transactions.
enum class BackpressurePolicy {
  kBlock,   // Submit blocks until the pacer frees room
  kReject,  // Submit returns kResourceExhausted immediately
};

struct ServiceSpec {
  // Size threshold: the pacer cuts an epoch as soon as this many
  // transactions are queued.
  std::size_t max_epoch_txns = 1024;

  // Time threshold: an epoch is cut at the latest this long after its first
  // transaction was queued, even if underfull (group-commit delay bound).
  std::chrono::microseconds max_epoch_delay{2000};

  // Submissions admitted but not yet handed to the engine.
  std::size_t queue_capacity = 8192;

  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;

  Status Validate() const;
};

// Final fate of one submitted transaction.
enum class TicketOutcome : std::uint8_t {
  kCommitted = 0,
  kUserAborted = 1,  // the transaction called Abort(); the abort is durable
  kFailed = 2,       // service crashed/stopped before the txn became durable
};

struct TicketResult {
  TicketOutcome outcome = TicketOutcome::kFailed;
  Epoch epoch = 0;           // epoch whose checkpoint made the outcome durable
  double latency_micros = 0;  // submit -> durable
  std::uint32_t deferrals = 0;  // Aria conflict-deferrals before resolution
  Status status;  // non-OK only for kFailed: why the service gave up
};

namespace internal {
struct TicketState {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  TicketResult result;
  std::chrono::steady_clock::time_point submit_time;
  std::uint32_t deferrals = 0;
};
}  // namespace internal

// Future-like handle for one submission. Copyable; all copies observe the
// same resolution. Thread-safe.
class TxnTicket {
 public:
  TxnTicket() = default;

  bool valid() const { return state_ != nullptr; }

  // Blocks until the ticket resolves and returns the result.
  const TicketResult& Get() const;

  // Returns true when the ticket resolved within the timeout.
  bool WaitFor(std::chrono::microseconds timeout) const;

  bool done() const;

 private:
  friend class DbService;
  friend class ShardedDbService;
  explicit TxnTicket(std::shared_ptr<internal::TicketState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<internal::TicketState> state_;
};

class DbService {
 public:
  // Takes ownership of the database. The service installs the engine's
  // epoch callback (durable-notify) for its whole lifetime; do not call
  // ExecuteEpoch or SetEpochCallback on the database while the service
  // runs. Throws std::invalid_argument when spec.Validate() fails.
  DbService(std::unique_ptr<core::Database> db, const ServiceSpec& spec);

  // Stops the pacer (draining admitted work first unless failed).
  ~DbService();

  DbService(const DbService&) = delete;
  DbService& operator=(const DbService&) = delete;

  // Enqueues one transaction. Thread-safe; admission order is resolution
  // order within an epoch. Failure statuses:
  //   kResourceExhausted  queue full under BackpressurePolicy::kReject
  //   kUnavailable        Stop()/Drain-to-stop already requested, or the
  //                       instant-recovery backfill is still running (the
  //                       message carries a retry-after-milliseconds hint)
  //   <crash status>      the service failed (simulated crash); the original
  //                       crash status is returned verbatim
  StatusOr<TxnTicket> Submit(std::unique_ptr<txn::Transaction> txn);

  // Blocks until everything admitted so far is durable (including Aria
  // deferrals, which may need extra flush epochs). Returns the crash status
  // if the service failed before finishing. Submissions racing with Drain
  // may or may not be covered; quiesce submitters first for a full barrier.
  Status Drain();

  // Drains, then shuts the pacer down. Further Submit calls return
  // kUnavailable. Idempotent.
  Status Stop();

  // Stops the service and returns the engine, e.g. to destroy it and run
  // recovery after a simulated crash.
  std::unique_ptr<core::Database> TakeDatabase();

  // ---- Introspection ---------------------------------------------------------

  core::Database& db() { return *db_; }
  const ServiceSpec& spec() const { return spec_; }

  // Submit -> durable latency digest over all resolved tickets so far.
  LatencySummary LatencySnapshot() const;

  std::size_t epochs_executed() const;
  std::size_t queue_depth() const;

  // True while the pacer is still backfilling an instant recovery; Submit
  // returns kUnavailable until this flips false.
  bool recovering() const { return recovering_.load(std::memory_order_acquire); }

  // Why the service failed; OK while healthy.
  Status health() const;

 private:
  struct Pending {
    std::unique_ptr<txn::Transaction> txn;
    std::shared_ptr<internal::TicketState> state;
  };

  void PacerLoop();
  // Retires a pending instant-recovery backfill in bounded steps before the
  // pacer cuts its first epoch. Fails the service if a crash hook fires
  // mid-backfill. Returns false when the pacer should exit.
  bool RunRecoveryBackfill();
  // Runs one epoch over `batch` (plus any engine-held Aria deferrals).
  // Called with mu_ held; unlocks during ExecuteEpoch. Returns false when
  // the epoch crashed and the service is now failed.
  bool RunBatch(std::unique_lock<std::mutex>& lk, std::vector<Pending> batch);
  // Blocks until the engine's asynchronous persistence tail (and therefore
  // every outstanding durable callback) has drained. Drops mu_ while
  // waiting — the callback needs it. Returns false (service failed) when
  // a crash hook fired inside the tail.
  bool QuiesceTail(std::unique_lock<std::mutex>& lk);
  // Durable-notify from the engine. Under pipelined epochs this runs on the
  // engine's tail thread, concurrent with the pacer preparing the next
  // batch; callbacks arrive in strict epoch order.
  void OnEpochDurable(const core::EpochResult& result,
                      const std::vector<core::TxnOutcome>& outcomes);
  void Resolve(const std::shared_ptr<internal::TicketState>& state,
               TicketOutcome outcome, Epoch epoch, Status status);
  // Fails every unresolved ticket (current batch slots, deferred, queued).
  void FailAll(const Status& why);

  std::unique_ptr<core::Database> db_;
  const ServiceSpec spec_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // pacer: queue state changed
  std::condition_variable space_cv_;  // blocked submitters: room freed
  std::condition_variable idle_cv_;   // Drain(): everything resolved
  std::deque<Pending> queue_;  // FIFO; front's submit_time bounds the epoch delay
  // Tickets of Aria-deferred transactions still held by the engine, in
  // batch order. Rebuilt by OnEpochDurable as each epoch's outcomes arrive
  // (guarded by mu_).
  std::deque<std::shared_ptr<internal::TicketState>> deferred_;
  // New-submission tickets of epochs handed to the engine whose durable
  // callback has not arrived yet, in cut order. The callback pops the
  // front and prepends the deferred carryover to reconstruct the engine's
  // slot order — the pacer never waits for the tail before cutting the
  // next batch (guarded by mu_).
  std::deque<std::vector<std::shared_ptr<internal::TicketState>>> inflight_new_;
  bool executing_ = false;  // pacer is inside ExecuteEpoch
  bool flush_ = false;      // Drain(): cut underfull epochs immediately
  bool stopping_ = false;
  // Instant-recovery window: set at construction when the database still has
  // a pending-replay epoch, cleared by the pacer once backfill retires it.
  // The progress snapshot is kept here (updated by the pacer between steps)
  // so Submit can fail fast with a hint instead of blocking on the engine's
  // recovery lock while a backfill step holds it.
  std::atomic<bool> recovering_{false};
  std::atomic<std::size_t> backfill_pending_{0};
  // Retry-after hint for Submit during the backfill window, derived from
  // the measured retire rate (keys per millisecond) of completed backfill
  // steps rather than a fixed constant.
  std::atomic<std::size_t> backfill_retry_hint_ms_{1};
  std::size_t backfill_total_ = 0;  // written before the pacer starts
  Epoch backfill_epoch_ = 0;
  Status fail_status_;  // non-OK once a crash hook fired
  std::size_t epochs_ = 0;

  mutable std::mutex stats_mu_;
  LatencyRecorder latency_;

  std::thread pacer_;
};

}  // namespace nvc::service
