#include "src/service/sharded_service.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

namespace nvc::service {

namespace {

double MicrosSince(std::chrono::steady_clock::time_point start,
                   std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double, std::micro>(end - start).count();
}

}  // namespace

ShardedDbService::ShardedDbService(std::unique_ptr<shard::ShardedDatabase> db,
                                   const ServiceSpec& spec)
    : db_(std::move(db)), spec_(spec) {
  if (!db_) {
    throw std::invalid_argument("ShardedDbService: database must not be null");
  }
  const Status valid = spec_.Validate();
  if (!valid.ok()) {
    throw std::invalid_argument("ShardedDbService: " + valid.message());
  }
  pacer_ = std::thread([this] { PacerLoop(); });
}

ShardedDbService::~ShardedDbService() { Stop().IgnoreError(); }

StatusOr<TxnTicket> ShardedDbService::Submit(std::unique_ptr<txn::Transaction> txn) {
  if (!txn) {
    return Status::InvalidArgument("ShardedDbService::Submit: transaction must not be null");
  }
  std::unique_lock<std::mutex> lk(mu_);
  if (!fail_status_.ok()) {
    return fail_status_;
  }
  if (stopping_) {
    return Status::Unavailable("ShardedDbService::Submit: service is stopped");
  }
  if (queue_.size() >= spec_.queue_capacity) {
    if (spec_.backpressure == BackpressurePolicy::kReject) {
      return Status::ResourceExhausted(
          "ShardedDbService::Submit: queue full (" + std::to_string(spec_.queue_capacity) +
          " transactions); retry after the pacer drains");
    }
    space_cv_.wait(lk, [&] {
      return stopping_ || !fail_status_.ok() || queue_.size() < spec_.queue_capacity;
    });
    if (!fail_status_.ok()) {
      return fail_status_;
    }
    if (stopping_) {
      return Status::Unavailable("ShardedDbService::Submit: service stopped while blocked");
    }
  }
  auto state = std::make_shared<internal::TicketState>();
  state->submit_time = std::chrono::steady_clock::now();
  queue_.push_back(Pending{std::move(txn), state});
  work_cv_.notify_all();
  return TxnTicket(std::move(state));
}

void ShardedDbService::PacerLoop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    if (deferred_.empty()) {
      work_cv_.wait(lk, [&] {
        return stopping_ || !fail_status_.ok() || !queue_.empty() || flush_;
      });
    } else {
      // Router deferrals exist: never sleep past the delay bound, so a
      // deferred cross-shard ticket resolves even with no new traffic.
      work_cv_.wait_for(lk, spec_.max_epoch_delay, [&] {
        return stopping_ || !fail_status_.ok() || !queue_.empty() || flush_;
      });
    }
    if (!fail_status_.ok()) {
      break;
    }
    if (queue_.empty()) {
      if (!deferred_.empty()) {
        // Flush epoch: empty input; the engine re-runs its deferred batch.
        // The router always admits the first deferred transaction, so every
        // flush epoch makes progress.
        const std::size_t before = deferred_.size();
        if (!RunBatch(lk, {})) {
          break;
        }
        if ((stopping_ || flush_) && !deferred_.empty() && deferred_.size() >= before) {
          FailAll(Status::Internal(
              "ShardedDbService: flush epoch resolved no deferred transactions"));
          break;
        }
        continue;
      }
      if (flush_) {
        flush_ = false;
        idle_cv_.notify_all();
      }
      if (stopping_) {
        break;
      }
      continue;
    }
    // A batch is forming: cut on size, delay bound, flush, or shutdown.
    const auto deadline = queue_.front().state->submit_time + spec_.max_epoch_delay;
    while (!stopping_ && !flush_ && fail_status_.ok() &&
           queue_.size() < spec_.max_epoch_txns) {
      if (work_cv_.wait_until(lk, deadline) == std::cv_status::timeout) {
        break;
      }
    }
    if (!fail_status_.ok()) {
      break;
    }
    const std::size_t n = std::min(queue_.size(), spec_.max_epoch_txns);
    std::vector<Pending> batch;
    batch.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    space_cv_.notify_all();
    if (!RunBatch(lk, std::move(batch))) {
      break;
    }
  }
  idle_cv_.notify_all();
  space_cv_.notify_all();
}

bool ShardedDbService::RunBatch(std::unique_lock<std::mutex>& lk,
                                std::vector<Pending> batch) {
  // Global slot order: the engine's deferred carryover first, then this
  // epoch's new submissions — mirror it with the tickets.
  std::vector<std::shared_ptr<internal::TicketState>> slots;
  slots.reserve(deferred_.size() + batch.size());
  for (auto& state : deferred_) {
    slots.push_back(std::move(state));
  }
  deferred_.clear();
  std::vector<std::unique_ptr<txn::Transaction>> txns;
  txns.reserve(batch.size());
  for (auto& p : batch) {
    txns.push_back(std::move(p.txn));
    slots.push_back(std::move(p.state));
  }
  executing_ = true;
  lk.unlock();
  std::vector<core::TxnOutcome> outcomes;
  const shard::ShardedEpochResult result = db_->ExecuteEpoch(std::move(txns), &outcomes);
  const auto now = std::chrono::steady_clock::now();
  lk.lock();
  executing_ = false;
  ++epochs_;
  if (result.crashed) {
    // Tickets in `slots` were consumed from deferred_/queue_; fail them too.
    const Status why = Status::DataLoss(
        "ShardedDbService: crash hook fired during global epoch " +
        std::to_string(result.epoch) + "; recover the shards from their devices");
    for (const auto& state : slots) {
      Resolve(state, TicketOutcome::kFailed, 0, why);
    }
    FailAll(why);
    return false;
  }
  // A non-crashed sharded epoch is durable on every shard: resolve now.
  {
    std::lock_guard<std::mutex> stats_lk(stats_mu_);
    for (std::size_t i = 0; i < outcomes.size() && i < slots.size(); ++i) {
      const std::shared_ptr<internal::TicketState>& state = slots[i];
      switch (outcomes[i]) {
        case core::TxnOutcome::kDeferred:
          ++state->deferrals;
          deferred_.push_back(state);
          break;
        case core::TxnOutcome::kAborted:
        case core::TxnOutcome::kCommitted: {
          const TicketOutcome outcome = outcomes[i] == core::TxnOutcome::kCommitted
                                            ? TicketOutcome::kCommitted
                                            : TicketOutcome::kUserAborted;
          latency_.Record(MicrosSince(state->submit_time, now));
          Resolve(state, outcome, result.epoch, Status::Ok());
          break;
        }
      }
    }
  }
  if (queue_.empty() && deferred_.empty()) {
    if (flush_) {
      flush_ = false;
    }
    idle_cv_.notify_all();
  }
  return true;
}

void ShardedDbService::Resolve(const std::shared_ptr<internal::TicketState>& state,
                               TicketOutcome outcome, Epoch epoch, Status status) {
  const auto now = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lk(state->mu);
    if (state->done) {
      return;
    }
    state->result.outcome = outcome;
    state->result.epoch = epoch;
    state->result.latency_micros = MicrosSince(state->submit_time, now);
    state->result.deferrals = state->deferrals;
    state->result.status = std::move(status);
    state->done = true;
  }
  state->cv.notify_all();
}

void ShardedDbService::FailAll(const Status& why) {
  fail_status_ = why;
  for (const auto& state : deferred_) {
    Resolve(state, TicketOutcome::kFailed, 0, why);
  }
  deferred_.clear();
  for (auto& p : queue_) {
    Resolve(p.state, TicketOutcome::kFailed, 0, why);
  }
  queue_.clear();
  work_cv_.notify_all();
  space_cv_.notify_all();
  idle_cv_.notify_all();
}

Status ShardedDbService::Drain() {
  std::unique_lock<std::mutex> lk(mu_);
  if (!fail_status_.ok()) {
    return fail_status_;
  }
  flush_ = true;
  work_cv_.notify_all();
  idle_cv_.wait(lk, [&] {
    return !fail_status_.ok() ||
           (queue_.empty() && deferred_.empty() && !executing_ && !flush_);
  });
  return fail_status_;
}

Status ShardedDbService::Stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
    work_cv_.notify_all();
    space_cv_.notify_all();
  }
  if (pacer_.joinable()) {
    pacer_.join();
  }
  std::lock_guard<std::mutex> lk(mu_);
  return fail_status_;
}

std::unique_ptr<shard::ShardedDatabase> ShardedDbService::TakeDatabase() {
  Stop().IgnoreError();
  return std::move(db_);
}

LatencySummary ShardedDbService::LatencySnapshot() const {
  std::lock_guard<std::mutex> lk(stats_mu_);
  return latency_.Summarize();
}

std::size_t ShardedDbService::epochs_executed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return epochs_;
}

std::size_t ShardedDbService::queue_depth() const {
  std::lock_guard<std::mutex> lk(mu_);
  return queue_.size();
}

Status ShardedDbService::health() const {
  std::lock_guard<std::mutex> lk(mu_);
  return fail_status_;
}

}  // namespace nvc::service
