// Global group-commit pacer for the multi-shard database (src/shard).
//
// Extends the DbService model to a ShardedDatabase: one pacer thread cuts
// one *global* epoch from a FIFO submission queue (size and delay bounded,
// same ServiceSpec), routes it through ShardedDatabase::ExecuteEpoch — which
// fans the batch out to every shard and coordinates the exchange and
// durability barriers — and resolves tickets when the call returns. Sharded
// epochs are synchronous (ShardSpec forces epoch pipelining off: the
// durability barrier needs every shard's log durable before any shard
// executes), so a returned epoch *is* durable on every shard and tickets
// resolve immediately; there is no tail-thread callback path here.
//
// Router-deferred cross-shard transactions (a read key written earlier in
// the same global epoch) stay in flight exactly like Aria deferrals in
// DbService: the engine re-runs them at the front of the next global epoch
// and their tickets resolve then, with the deferral count. The pacer never
// sleeps past the delay bound while deferrals are pending, so they flush
// even without new traffic.
//
// On a crashed global epoch the service fails fast: every unresolved ticket
// resolves kFailed with the crash status. Recovery happens outside the
// service (ShardedDatabase::Recover on a fresh instance over the crashed
// devices), as for a hand-driven engine.
#pragma once

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/service/db_service.h"
#include "src/shard/sharded_db.h"

namespace nvc::service {

class ShardedDbService {
 public:
  // Takes ownership of the sharded database. Throws std::invalid_argument
  // when the database is null or spec.Validate() fails.
  ShardedDbService(std::unique_ptr<shard::ShardedDatabase> db, const ServiceSpec& spec);
  ~ShardedDbService();

  ShardedDbService(const ShardedDbService&) = delete;
  ShardedDbService& operator=(const ShardedDbService&) = delete;

  // Enqueues one transaction (any shard mix; the router classifies it).
  // Same contract and failure statuses as DbService::Submit.
  StatusOr<TxnTicket> Submit(std::unique_ptr<txn::Transaction> txn);

  // Blocks until everything admitted so far is durable on every shard
  // (including router deferrals, which may need extra flush epochs).
  Status Drain();

  // Drains, then shuts the pacer down. Idempotent.
  Status Stop();

  // Stops the service and returns the sharded database (e.g. to discard and
  // recover after a simulated crash).
  std::unique_ptr<shard::ShardedDatabase> TakeDatabase();

  // ---- Introspection ---------------------------------------------------------
  shard::ShardedDatabase& db() { return *db_; }
  const ServiceSpec& spec() const { return spec_; }

  // Submit -> durable latency digest over all resolved tickets so far.
  LatencySummary LatencySnapshot() const;

  std::size_t epochs_executed() const;
  std::size_t queue_depth() const;

  // Why the service failed; OK while healthy.
  Status health() const;

 private:
  struct Pending {
    std::unique_ptr<txn::Transaction> txn;
    std::shared_ptr<internal::TicketState> state;
  };

  void PacerLoop();
  // Runs one global epoch over `batch` (the engine prepends its router
  // deferrals). Called with mu_ held; unlocks during ExecuteEpoch. Returns
  // false when the epoch crashed and the service is now failed.
  bool RunBatch(std::unique_lock<std::mutex>& lk, std::vector<Pending> batch);
  void Resolve(const std::shared_ptr<internal::TicketState>& state, TicketOutcome outcome,
               Epoch epoch, Status status);
  void FailAll(const Status& why);

  std::unique_ptr<shard::ShardedDatabase> db_;
  const ServiceSpec spec_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // pacer: queue state changed
  std::condition_variable space_cv_;  // blocked submitters: room freed
  std::condition_variable idle_cv_;   // Drain(): everything resolved
  std::deque<Pending> queue_;
  // Tickets of router-deferred transactions still held by the engine, in
  // global slot order (the engine re-queues them at the batch front).
  std::deque<std::shared_ptr<internal::TicketState>> deferred_;
  bool executing_ = false;
  bool flush_ = false;
  bool stopping_ = false;
  Status fail_status_;
  std::size_t epochs_ = 0;

  mutable std::mutex stats_mu_;
  LatencyRecorder latency_;

  std::thread pacer_;
};

}  // namespace nvc::service
