#include "src/replication/replica.h"

#include <stdexcept>

namespace nvc::repl {

bool Replica::Apply(const EpochBundle& bundle) {
  if (bundle.epoch <= db_.current_epoch()) {
    return false;  // already applied (e.g. re-shipped after replica recovery)
  }
  if (bundle.epoch != db_.current_epoch() + 1) {
    throw std::runtime_error("Replica: bundle for epoch " + std::to_string(bundle.epoch) +
                             " but replica is at epoch " +
                             std::to_string(db_.current_epoch()));
  }
  auto txns = txn::DecodeTxnStream(bundle.payload.data(), bundle.payload.size(),
                                   bundle.txn_count, registry_);
  const core::EpochResult result = db_.ExecuteEpoch(std::move(txns));
  if (result.crashed) {
    throw std::runtime_error("Replica: crash hook fired while applying epoch " +
                             std::to_string(bundle.epoch));
  }
  return true;
}

std::size_t Replica::CatchUp(ReplicationChannel& channel) {
  std::size_t applied = 0;
  while (channel.HasBundle()) {
    if (Apply(channel.Next())) {
      ++applied;
    }
  }
  return applied;
}

}  // namespace nvc::repl
