// Deterministic replication by input-log shipping (paper section 1:
// "deterministic databases use input logging and deterministic replay for
// failure recovery, which also simplifies replication [SLOG]").
//
// The primary serializes each epoch's transaction inputs into an EpochBundle
// — the same byte format as the NVMM input log — and ships it to replicas.
// A replica applies bundles in epoch order through the regular
// epoch-processing path, so its database is byte-equivalent to the primary's
// at every epoch boundary. Because the replica's own engine logs the inputs
// to its own NVMM before executing, a replica crash recovers with the
// standard mechanism and resumes applying where it left off; on primary
// failure the replica is simply promoted by sending new epochs to it.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "src/core/database.h"
#include "src/txn/stream.h"
#include "src/txn/transaction.h"

namespace nvc::repl {

// One epoch's worth of transaction inputs in serial order.
struct EpochBundle {
  Epoch epoch = 0;
  std::uint32_t txn_count = 0;
  std::vector<std::uint8_t> payload;
};

// Serializes an epoch for shipping. Call before handing the transactions to
// ExecuteEpoch (which consumes them).
inline EpochBundle MakeBundle(Epoch epoch,
                              const std::vector<std::unique_ptr<txn::Transaction>>& txns) {
  EpochBundle bundle;
  bundle.epoch = epoch;
  bundle.txn_count = static_cast<std::uint32_t>(txns.size());
  bundle.payload = txn::EncodeTxnStream(txns);
  return bundle;
}

// A simple in-order shipping channel (in-process; stands in for the network).
class ReplicationChannel {
 public:
  void Ship(EpochBundle bundle) { queue_.push_back(std::move(bundle)); }
  bool HasBundle() const { return !queue_.empty(); }
  EpochBundle Next() {
    EpochBundle bundle = std::move(queue_.front());
    queue_.pop_front();
    return bundle;
  }
  std::size_t backlog() const { return queue_.size(); }

 private:
  std::deque<EpochBundle> queue_;
};

// Applies shipped bundles to a standby database in strict epoch order.
class Replica {
 public:
  // The database must have been loaded with the same initial state as the
  // primary (Format + identical BulkLoads + FinalizeLoad), or recovered from
  // its own pool after a replica crash.
  Replica(core::Database& db, txn::TxnRegistry registry)
      : db_(db), registry_(std::move(registry)) {}

  // Applies one bundle. Returns false (without side effects) when the
  // bundle is not the next epoch — stale bundles after a replica recovery
  // are skipped by the caller via applied_epoch().
  bool Apply(const EpochBundle& bundle);

  // Drains every ready bundle from a channel; returns how many were applied.
  std::size_t CatchUp(ReplicationChannel& channel);

  Epoch applied_epoch() const { return db_.current_epoch(); }
  core::Database& db() { return db_; }
  const txn::TxnRegistry& registry() const { return registry_; }

 private:
  core::Database& db_;
  txn::TxnRegistry registry_;
};

}  // namespace nvc::repl
