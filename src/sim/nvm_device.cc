#include "src/sim/nvm_device.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cassert>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "src/common/latch.h"
#include "src/common/rng.h"

#if defined(__x86_64__)
#include <x86intrin.h>
#endif

namespace nvc::sim {
namespace {

// TSC ticks per nanosecond, calibrated once. Falls back to steady_clock on
// non-x86 targets.
#if defined(__x86_64__)
double CalibrateTscPerNs() {
  const auto start_time = std::chrono::steady_clock::now();
  const std::uint64_t start_tsc = __rdtsc();
  // Busy wait ~2 ms of wall clock for a stable estimate.
  while (std::chrono::steady_clock::now() - start_time < std::chrono::milliseconds(2)) {
    CpuRelax();
  }
  const std::uint64_t end_tsc = __rdtsc();
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                           start_time)
          .count();
  if (elapsed <= 0) {
    return 1.0;
  }
  return static_cast<double>(end_tsc - start_tsc) / static_cast<double>(elapsed);
}

double TscPerNs() {
  static const double ticks = CalibrateTscPerNs();
  return ticks;
}
#endif

std::uint64_t GranulesTouched(std::uint64_t offset, std::size_t n, std::size_t granule) {
  if (n == 0) {
    // Without this guard `offset + n - 1` underflows for offset 0 and the
    // charge paths would bill (and busy-wait for) ~2^64/granule granules.
    return 0;
  }
  const std::uint64_t first = offset / granule;
  const std::uint64_t last = (offset + n - 1) / granule;
  return last - first + 1;
}

}  // namespace

void SpinDelayNs(std::uint32_t ns) {
  if (ns == 0) {
    return;
  }
#if defined(__x86_64__)
  const std::uint64_t target = __rdtsc() + static_cast<std::uint64_t>(ns * TscPerNs());
  while (__rdtsc() < target) {
    CpuRelax();
  }
#else
  const auto end = std::chrono::steady_clock::now() + std::chrono::nanoseconds(ns);
  while (std::chrono::steady_clock::now() < end) {
    CpuRelax();
  }
#endif
}

LatencyProfile LatencyProfile::Scaled(double factor) const {
  LatencyProfile scaled;
  scaled.read_ns_per_granule = static_cast<std::uint32_t>(read_ns_per_granule * factor);
  scaled.write_ns_per_line = static_cast<std::uint32_t>(write_ns_per_line * factor);
  scaled.fence_ns = static_cast<std::uint32_t>(fence_ns * factor);
  return scaled;
}

NvmDevice::NvmDevice(const NvmConfig& config) : config_(config), size_(config.size_bytes) {
  if (size_ == 0) {
    throw std::invalid_argument("NvmDevice: size_bytes must be > 0");
  }
  if (!config_.backing_file.empty()) {
    struct stat st {};
    recovered_existing_file_ = (::stat(config_.backing_file.c_str(), &st) == 0 &&
                                static_cast<std::size_t>(st.st_size) >= size_);
    fd_ = ::open(config_.backing_file.c_str(), O_RDWR | O_CREAT, 0644);
    if (fd_ < 0) {
      throw std::runtime_error("NvmDevice: cannot open backing file " + config_.backing_file);
    }
    if (::ftruncate(fd_, static_cast<off_t>(size_)) != 0) {
      ::close(fd_);
      throw std::runtime_error("NvmDevice: ftruncate failed");
    }
    void* mapping = ::mmap(nullptr, size_, PROT_READ | PROT_WRITE, MAP_SHARED, fd_, 0);
    if (mapping == MAP_FAILED) {
      ::close(fd_);
      throw std::runtime_error("NvmDevice: mmap failed");
    }
    base_ = static_cast<std::uint8_t*>(mapping);
  } else {
    void* mapping = ::mmap(nullptr, size_, PROT_READ | PROT_WRITE,
                           MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (mapping == MAP_FAILED) {
      throw std::runtime_error("NvmDevice: anonymous mmap failed");
    }
    base_ = static_cast<std::uint8_t*>(mapping);
  }
  if (config_.crash_tracking == CrashTracking::kShadow) {
    shadow_ = std::make_unique<std::uint8_t[]>(size_);
    std::memcpy(shadow_.get(), base_, size_);
  }
}

NvmDevice::~NvmDevice() {
  if (base_ != nullptr) {
    ::munmap(base_, size_);
  }
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

void NvmDevice::ChargeRead(std::uint64_t offset, std::size_t n, std::size_t core) {
  assert(core < kMaxCores && "core index out of range (validate workers <= kMaxCores)");
  if (n == 0) {
    return;
  }
  const std::uint64_t granules = GranulesTouched(offset, n, config_.access_granule);
  stats_.read_bytes.Add(core, n);
  stats_.read_granules.Add(core, granules);
  if (config_.latency.read_ns_per_granule != 0) {
    SpinDelayNs(static_cast<std::uint32_t>(granules * config_.latency.read_ns_per_granule));
  }
}

void NvmDevice::Persist(std::uint64_t offset, std::size_t n, std::size_t core) {
  assert(core < kMaxCores && "core index out of range (validate workers <= kMaxCores)");
  if (n == 0) {
    return;
  }
  const std::uint64_t lines = GranulesTouched(offset, n, kCacheLineSize);
  stats_.write_bytes.Add(core, n);
  stats_.persisted_lines.Add(core, lines);
  stats_.persist_ops.Add(core, 1);
  if (config_.latency.write_ns_per_line != 0) {
    SpinDelayNs(static_cast<std::uint32_t>(lines * config_.latency.write_ns_per_line));
  }
  if (shadow_ != nullptr) {
    pending_[core % kMaxCores].ranges.push_back({offset, n});
  }
}

void NvmDevice::ChargeSyntheticRead(std::size_t n, std::size_t core) {
  if (n == 0) {
    return;
  }
  const std::uint64_t granules = (n + config_.access_granule - 1) / config_.access_granule;
  stats_.read_bytes.Add(core, n);
  stats_.read_granules.Add(core, granules);
  if (config_.latency.read_ns_per_granule != 0) {
    SpinDelayNs(static_cast<std::uint32_t>(granules * config_.latency.read_ns_per_granule));
  }
}

void NvmDevice::ChargeSyntheticWrite(std::size_t n, std::size_t core) {
  if (n == 0) {
    return;
  }
  const std::uint64_t lines = (n + kCacheLineSize - 1) / kCacheLineSize;
  stats_.write_bytes.Add(core, n);
  stats_.persisted_lines.Add(core, lines);
  stats_.persist_ops.Add(core, 1);
  if (config_.latency.write_ns_per_line != 0) {
    SpinDelayNs(static_cast<std::uint32_t>(lines * config_.latency.write_ns_per_line));
  }
}

void NvmDevice::WritePersist(std::uint64_t offset, const void* src, std::size_t n,
                             std::size_t core) {
  std::memcpy(base_ + offset, src, n);
  Persist(offset, n, core);
}

void NvmDevice::Fence(std::size_t core) {
  assert(core < kMaxCores && "core index out of range (validate workers <= kMaxCores)");
  stats_.fences.Add(core, 1);
  if (config_.latency.fence_ns != 0) {
    SpinDelayNs(config_.latency.fence_ns);
  }
  if (shadow_ != nullptr) {
    auto& pending = pending_[core % kMaxCores];
    for (const PendingRange& range : pending.ranges) {
      ApplyToShadow(range);
    }
    pending.ranges.clear();
  }
}

void NvmDevice::FenceAll(std::size_t core_for_stats) {
  assert(core_for_stats < kMaxCores && "core index out of range");
  stats_.fences.Add(core_for_stats, 1);
  if (config_.latency.fence_ns != 0) {
    SpinDelayNs(config_.latency.fence_ns);
  }
  if (shadow_ != nullptr) {
    for (auto& pending : pending_) {
      for (const PendingRange& range : pending.ranges) {
        ApplyToShadow(range);
      }
      pending.ranges.clear();
    }
  }
}

void NvmDevice::FenceWorkers(std::size_t limit, std::size_t core_for_stats) {
  assert(core_for_stats < kMaxCores && "core index out of range");
  stats_.fences.Add(core_for_stats, 1);
  if (config_.latency.fence_ns != 0) {
    SpinDelayNs(config_.latency.fence_ns);
  }
  if (shadow_ != nullptr) {
    for (std::size_t core = 0; core < limit && core < kMaxCores; ++core) {
      auto& pending = pending_[core];
      for (const PendingRange& range : pending.ranges) {
        ApplyToShadow(range);
      }
      pending.ranges.clear();
    }
  }
}

void NvmDevice::DetachPending() {
  if (shadow_ == nullptr) {
    return;
  }
  for (auto& pending : pending_) {
    detached_.insert(detached_.end(), pending.ranges.begin(), pending.ranges.end());
    pending.ranges.clear();
  }
}

void NvmDevice::FenceDetached(std::size_t count, std::size_t core) {
  assert(core < kMaxCores && "core index out of range");
  for (std::size_t i = 0; i < count; ++i) {
    stats_.fences.Add(core, 1);
    if (config_.latency.fence_ns != 0) {
      SpinDelayNs(config_.latency.fence_ns);
    }
  }
  if (shadow_ != nullptr) {
    for (const PendingRange& range : detached_) {
      ApplyToShadow(range);
    }
    detached_.clear();
    auto& pending = pending_[core % kMaxCores];
    for (const PendingRange& range : pending.ranges) {
      ApplyToShadow(range);
    }
    pending.ranges.clear();
  }
}

void NvmDevice::ApplyToShadow(const PendingRange& range) {
  // Persistence is line-granular: widen the range to full cache lines, the
  // way clwb writes back whole lines.
  const std::uint64_t first = range.offset / kCacheLineSize * kCacheLineSize;
  std::uint64_t last = (range.offset + range.length + kCacheLineSize - 1) / kCacheLineSize *
                       kCacheLineSize;
  if (last > size_) {
    last = size_;
  }
  std::memcpy(shadow_.get() + first, base_ + first, last - first);
}

void NvmDevice::Crash() {
  if (shadow_ == nullptr) {
    throw std::logic_error("NvmDevice::Crash requires CrashTracking::kShadow");
  }
  // Unfenced persists are lost too (including detached ones awaiting a tail
  // fence).
  for (auto& pending : pending_) {
    pending.ranges.clear();
  }
  detached_.clear();
  std::memcpy(base_, shadow_.get(), size_);
}

void NvmDevice::CrashTorn(std::uint64_t seed, double keep_probability) {
  if (shadow_ == nullptr) {
    throw std::logic_error("NvmDevice::CrashTorn requires CrashTracking::kShadow");
  }
  // Tear the in-flight persists: each staged-but-unfenced PendingRange is
  // split at cache-line granularity and every line independently reaches the
  // persisted image with keep_probability — a clwb was issued for the line,
  // so the hardware may or may not have completed the write-back when power
  // was cut. Iterating cores in index order keeps the outcome deterministic
  // from the seed.
  Rng rng(seed);
  const auto tear_range = [&](const PendingRange& range) {
    const std::uint64_t first = range.offset / kCacheLineSize * kCacheLineSize;
    std::uint64_t last = (range.offset + range.length + kCacheLineSize - 1) /
                         kCacheLineSize * kCacheLineSize;
    if (last > size_) {
      last = size_;
    }
    for (std::uint64_t line = first; line < last; line += kCacheLineSize) {
      if (rng.NextDouble() < keep_probability) {
        ApplyToShadow(PendingRange{line, std::min(kCacheLineSize, size_ - line)});
      }
    }
  };
  // Detached ranges (a pipelined tail in flight) are torn like any other
  // staged range; they come first so the outcome stays deterministic.
  for (const PendingRange& range : detached_) {
    tear_range(range);
  }
  detached_.clear();
  for (auto& pending : pending_) {
    for (const PendingRange& range : pending.ranges) {
      tear_range(range);
    }
    pending.ranges.clear();
  }
  // Everything else (dirty lines never covered by a persist, and the dropped
  // lines above) reverts to the persisted image.
  std::memcpy(base_, shadow_.get(), size_);
}

void NvmDevice::CrashChaos(std::uint64_t seed, double keep_probability) {
  if (shadow_ == nullptr) {
    throw std::logic_error("NvmDevice::CrashChaos requires CrashTracking::kShadow");
  }
  for (auto& pending : pending_) {
    pending.ranges.clear();
  }
  detached_.clear();
  Rng rng(seed);
  for (std::size_t line = 0; line < size_; line += kCacheLineSize) {
    const std::size_t len = std::min(kCacheLineSize, size_ - line);
    if (std::memcmp(base_ + line, shadow_.get() + line, len) == 0) {
      continue;  // clean or already persisted
    }
    if (rng.NextDouble() < keep_probability) {
      // The line happened to be written back by the cache before the crash:
      // it survives, and the persisted image must reflect that.
      std::memcpy(shadow_.get() + line, base_ + line, len);
    } else {
      std::memcpy(base_ + line, shadow_.get() + line, len);
    }
  }
}

}  // namespace nvc::sim
