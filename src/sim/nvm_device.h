// Simulated non-volatile main memory device.
//
// The paper evaluates on Intel Optane DCPMM (App Direct / fsdax). That
// hardware is unavailable, so this module provides an instrumented in-process
// replacement that preserves the three properties the paper's design depends
// on:
//
//   1. Cost asymmetry vs DRAM. Reads and persisted writes are charged a
//      configurable delay (busy-wait, TSC-calibrated) so that NVM op *counts*
//      translate into wall-clock differences with Optane-like ratios.
//   2. Byte addressability with cache-line persistence ordering. Stores land
//      immediately in the region; durability requires Persist (clwb) on the
//      touched lines followed by Fence (sfence). Crash simulation reverts any
//      line whose latest contents were not covered by a persist+fence pair.
//   3. 256 B internal access granularity. Reads and persists are accounted in
//      256 B granules, which is what makes the paper's inline heap and
//      same-cache-line version descriptors matter.
//
// Two backends:
//   * anonymous: heap region, optional shadow "persisted image" enabling
//     Crash()/chaos-crash testing within a process, and
//   * file-backed: mmap of a file (like fsdax), giving real persistence
//     across process restarts for the example applications.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/common/types.h"

namespace nvc::sim {

// Per-operation delays in nanoseconds. A zero field disables that delay.
struct LatencyProfile {
  std::uint32_t read_ns_per_granule = 0;   // per 256 B granule read from NVM
  std::uint32_t write_ns_per_line = 0;     // per 64 B cache line persisted
  std::uint32_t fence_ns = 0;              // per Fence

  // No injected delays; use for functional tests and the all-DRAM baseline.
  static constexpr LatencyProfile None() { return {}; }

  // Optane-like asymmetry. The paper measured DRAM at 3.2x NVM random-read
  // and 11.9x NVM random-write throughput; with DRAM random access around
  // 90 ns these deltas reproduce those ratios at simulation scale. The
  // fence cost models the sfence-after-clwb stall on ADR platforms (the
  // dominant per-transaction durability cost for non-batched designs).
  static constexpr LatencyProfile Optane() { return {.read_ns_per_granule = 200,
                                                     .write_ns_per_line = 450,
                                                     .fence_ns = 500}; }

  // Fast-NVMe-like block storage for the cold tier (pair with a 4096-byte
  // access granule): page reads around 10 us, high per-line write cost.
  static constexpr LatencyProfile FastSsd() { return {.read_ns_per_granule = 10'000,
                                                      .write_ns_per_line = 2'000,
                                                      .fence_ns = 2'000}; }

  // Uniformly scales all delays (for fast CI runs or stress runs).
  LatencyProfile Scaled(double factor) const;
};

// Whether the device maintains a shadow persisted image for crash testing.
enum class CrashTracking {
  kNone,    // no shadow; Crash() is unavailable (benchmark configurations)
  kShadow,  // shadow image; Crash() reverts unpersisted lines
};

struct NvmConfig {
  std::size_t size_bytes = 0;
  LatencyProfile latency = LatencyProfile::None();
  CrashTracking crash_tracking = CrashTracking::kNone;
  std::string backing_file;  // empty = anonymous region

  // Internal access granularity for read accounting. 256 B models Optane;
  // 4096 B models a block device (the cold-tier extension).
  std::size_t access_granule = kNvmAccessGranularity;
};

// Point-in-time sums of every NvmStats counter. Plain values, so phase
// profilers and tests can snapshot at a boundary and diff two snapshots.
struct NvmCounters {
  std::uint64_t read_bytes = 0;
  std::uint64_t read_granules = 0;
  std::uint64_t write_bytes = 0;
  std::uint64_t persisted_lines = 0;
  std::uint64_t persist_ops = 0;
  std::uint64_t fences = 0;
};

// Cumulative device statistics (per-core sharded; Sum() on read).
struct NvmStats {
  ShardedCounter read_bytes;
  ShardedCounter read_granules;   // 256 B granule touches
  ShardedCounter write_bytes;     // bytes covered by Persist
  ShardedCounter persisted_lines; // 64 B lines covered by Persist
  ShardedCounter persist_ops;
  ShardedCounter fences;

  NvmCounters Snapshot() const {
    return NvmCounters{.read_bytes = read_bytes.Sum(),
                       .read_granules = read_granules.Sum(),
                       .write_bytes = write_bytes.Sum(),
                       .persisted_lines = persisted_lines.Sum(),
                       .persist_ops = persist_ops.Sum(),
                       .fences = fences.Sum()};
  }

  void Reset() {
    read_bytes.Reset();
    read_granules.Reset();
    write_bytes.Reset();
    persisted_lines.Reset();
    persist_ops.Reset();
    fences.Reset();
  }
};

class NvmDevice {
 public:
  explicit NvmDevice(const NvmConfig& config);
  ~NvmDevice();

  NvmDevice(const NvmDevice&) = delete;
  NvmDevice& operator=(const NvmDevice&) = delete;

  std::size_t size() const { return size_; }
  const NvmConfig& config() const { return config_; }
  bool file_backed() const { return !config_.backing_file.empty(); }

  // True when the backing file already existed (recovery path for examples).
  bool recovered_existing_file() const { return recovered_existing_file_; }

  // Raw access. Offsets are used as the stable persistent representation;
  // pointers are only valid for the lifetime of this mapping.
  std::uint8_t* At(std::uint64_t offset) { return base_ + offset; }
  const std::uint8_t* At(std::uint64_t offset) const { return base_ + offset; }

  template <typename T>
  T* As(std::uint64_t offset) {
    return reinterpret_cast<T*>(base_ + offset);
  }

  std::uint64_t OffsetOf(const void* p) const {
    return static_cast<std::uint64_t>(static_cast<const std::uint8_t*>(p) - base_);
  }

  // Charges read latency + stats for an NVM read of [offset, offset+n).
  // The caller performs the actual load through At()/As().
  void ChargeRead(std::uint64_t offset, std::size_t n, std::size_t core);

  // Flushes [offset, offset+n) toward persistence (clwb-equivalent): charges
  // write latency + stats and stages the lines for the next Fence. Data is
  // durable only after a subsequent Fence from the same core.
  void Persist(std::uint64_t offset, std::size_t n, std::size_t core);

  // Convenience: memcpy into the region followed by Persist.
  void WritePersist(std::uint64_t offset, const void* src, std::size_t n, std::size_t core);

  // Ordering + durability point (sfence-equivalent) for this core's staged
  // persists.
  void Fence(std::size_t core);

  // Cross-core durability barrier for fork/join parallel persistence: drains
  // EVERY core's staged persists, charging a single fence (stats + latency)
  // to core_for_stats. Models the epoch tail's join point, where each
  // worker's clwbs are already issued and the per-core sfences would retire
  // concurrently — one fence of wall time, not one per worker. Call only
  // while the workers are quiesced (after RunParallel returns).
  void FenceAll(std::size_t core_for_stats);

  // FenceAll bounded to cores [0, limit): drains only the worker cores'
  // staged persists. Foreground code that can run concurrently with the
  // pipelined tail thread must use this instead of FenceAll — the tail owns
  // the device core at index `limit` (== spec workers) and the detached set,
  // and draining them from another thread would race.
  void FenceWorkers(std::size_t limit, std::size_t core_for_stats);

  // Pipelined epoch tail support (DESIGN.md section 13). DetachPending moves
  // every core's staged-but-unfenced ranges into an internal detached set, so
  // a tail thread can later drain exactly those lines while foreground cores
  // stage new persists. Detached ranges are still "in flight" for crash
  // simulation: Crash() loses them, CrashTorn() tears them line-by-line like
  // any other staged range. Call from the execution thread while all workers
  // are quiesced (the cut point between epochs).
  void DetachPending();

  // Drains the detached set plus `core`'s own staged ranges, charging `count`
  // fences (stats + latency) to `core` — replicates the serial tail's
  // per-worker fence loop without touching the other cores' pending state.
  void FenceDetached(std::size_t count, std::size_t core);

  // Accounting-only charges for data that has no concrete location in the
  // region — used by the all-NVMM baseline, where version arrays and
  // intermediate values notionally live in NVMM. Charges latency + stats as
  // if n well-aligned bytes were read / persisted.
  void ChargeSyntheticRead(std::size_t n, std::size_t core);
  void ChargeSyntheticWrite(std::size_t n, std::size_t core);

  // --- Crash simulation (CrashTracking::kShadow only) ---------------------

  // Simulates a power failure: every line reverts to its last fenced
  // contents. The caller must have quiesced all workers.
  void Crash();

  // Chaos variant: each *unfenced dirty* line independently survives with
  // probability keep_probability (real hardware may write back cache lines
  // at any time). Deterministic from seed.
  void CrashChaos(std::uint64_t seed, double keep_probability);

  // Torn-persist variant: each staged-but-unfenced PendingRange (clwb issued,
  // no sfence yet) is split at cache-line granularity and every line
  // independently survives with keep_probability; dirty lines never covered
  // by a Persist always revert. Models a multi-line persist (value + header,
  // log payload) torn mid-flight. Deterministic from seed.
  void CrashTorn(std::uint64_t seed, double keep_probability);

  NvmStats& stats() { return stats_; }
  const NvmStats& stats() const { return stats_; }

 private:
  struct PendingRange {
    std::uint64_t offset;
    std::uint64_t length;
  };
  struct alignas(kCacheLineSize) CorePending {
    std::vector<PendingRange> ranges;
  };

  void ApplyToShadow(const PendingRange& range);

  NvmConfig config_;
  std::size_t size_;
  std::uint8_t* base_ = nullptr;
  int fd_ = -1;
  bool recovered_existing_file_ = false;
  std::unique_ptr<std::uint8_t[]> shadow_;
  std::array<CorePending, kMaxCores> pending_{};
  // Staged ranges handed off by DetachPending, awaiting FenceDetached (owned
  // by the tail thread between those two calls; crash entry points run
  // quiesced and may also clear/tear it).
  std::vector<PendingRange> detached_;
  NvmStats stats_;
};

// Calibrated busy-wait used for latency injection. Exposed for tests.
void SpinDelayNs(std::uint32_t ns);

}  // namespace nvc::sim
