// YCSB workload (paper section 6.2.1, Table 1).
//
// Caracal's YCSB groups 10 read-modify-write operations to unique keys into
// one transaction. The default configuration uses 1,000-byte rows where each
// write updates the first 100 bytes; the smallrow variant uses 64-byte rows
// updated entirely. Contention is controlled by directing h of the 10
// operations to a set of 256 hot rows (h = 0 / 4 / 7 for low / medium /
// high contention).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/core/config.h"
#include "src/core/database.h"
#include "src/txn/transaction.h"

namespace nvc::workload {

inline constexpr txn::TxnType kYcsbRmwType = 10;
inline constexpr TableId kYcsbTable = 0;

struct YcsbConfig {
  std::uint64_t rows = 100'000;
  std::uint32_t value_size = 1000;
  std::uint32_t update_bytes = 100;  // prefix of the row rewritten per op
  std::uint32_t ops_per_txn = 10;
  std::uint64_t hot_rows = 256;
  std::uint32_t hot_ops = 0;  // of ops_per_txn directed at hot rows
  std::uint64_t seed = 42;

  // Persistent row size. 256 keeps YCSB values non-inline (figure 7); Table
  // 4's 2304 inlines both 1 KB versions (figures 5/6 comparison with Zen).
  std::size_t row_size = 2304;

  static YcsbConfig SmallRow() {
    YcsbConfig config;
    config.value_size = 64;
    config.update_bytes = 64;
    config.row_size = 256;
    return config;
  }
};

class YcsbWorkload {
 public:
  explicit YcsbWorkload(const YcsbConfig& config) : config_(config), rng_(config.seed) {}

  const YcsbConfig& config() const { return config_; }

  // DatabaseSpec for this workload (caller may adjust mode/cache settings).
  core::DatabaseSpec Spec(std::size_t workers) const;

  // Populates the table; call between Format() and FinalizeLoad().
  void Load(core::Database& db) const;

  // Deterministically generates the next `count` transactions.
  std::vector<std::unique_ptr<txn::Transaction>> MakeEpoch(std::size_t count);

  txn::TxnRegistry Registry() const;

  // The initial value pattern of a row (tests verify loads and updates).
  static void FillRow(Key key, std::uint8_t* out, std::uint32_t size);

 private:
  YcsbConfig config_;
  Rng rng_;
};

// One transaction: ops_per_txn read-modify-writes to unique keys.
class YcsbRmwTxn final : public txn::Transaction {
 public:
  YcsbRmwTxn(const YcsbConfig* config, std::vector<Key> keys, std::uint64_t mod_seed)
      : config_(config), keys_(std::move(keys)), mod_seed_(mod_seed) {}

  txn::TxnType type() const override { return kYcsbRmwType; }
  void EncodeInputs(BinaryWriter& writer) const override;
  static std::unique_ptr<txn::Transaction> Decode(const YcsbConfig* config,
                                                  BinaryReader& reader);

  void AppendStep(txn::AppendContext& ctx) override;
  void Execute(txn::ExecContext& ctx) override;

  const std::vector<Key>& keys() const { return keys_; }

 private:
  const YcsbConfig* config_;
  std::vector<Key> keys_;
  std::uint64_t mod_seed_;
};

}  // namespace nvc::workload
