// YCSB workload (paper section 6.2.1, Table 1).
//
// Caracal's YCSB groups 10 read-modify-write operations to unique keys into
// one transaction. The default configuration uses 1,000-byte rows where each
// write updates the first 100 bytes; the smallrow variant uses 64-byte rows
// updated entirely. Contention is controlled by directing h of the 10
// operations to a set of 256 hot rows (h = 0 / 4 / 7 for low / medium /
// high contention).
// The YCSB-E variant mixes in range scans (kYcsbScanType): each scan walks
// up to scan_span_max consecutive keys from a start drawn uniformly or — when
// zipf_theta > 0 — zipfian over the unscattered rank space, so hot scan
// starts cluster at the low end of the keyspace. Scans require
// config.ordered = true (the table grows the skiplist secondary index) and
// fold every observed row into a shared XOR digest, which commutes across
// workers and engines: two runs over the same stream must produce the same
// digest no matter how execution interleaves.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/core/config.h"
#include "src/core/database.h"
#include "src/txn/transaction.h"

namespace nvc::workload {

inline constexpr txn::TxnType kYcsbRmwType = 10;
inline constexpr txn::TxnType kYcsbScanType = 11;
inline constexpr TableId kYcsbTable = 0;

struct YcsbConfig {
  std::uint64_t rows = 100'000;
  std::uint32_t value_size = 1000;
  std::uint32_t update_bytes = 100;  // prefix of the row rewritten per op
  std::uint32_t ops_per_txn = 10;
  std::uint64_t hot_rows = 256;
  std::uint32_t hot_ops = 0;  // of ops_per_txn directed at hot rows
  std::uint64_t seed = 42;

  // Persistent row size. 256 keeps YCSB values non-inline (figure 7); Table
  // 4's 2304 inlines both 1 KB versions (figures 5/6 comparison with Zen).
  std::size_t row_size = 2304;

  // YCSB-E knobs. scan_pct > 0 requires ordered = true.
  bool ordered = false;        // table 0 carries the skiplist secondary index
  std::uint32_t scan_pct = 0;  // percent of transactions that are range scans
  std::uint32_t scan_span_max = 100;  // max keys walked per scan
  double zipf_theta = 0.0;     // > 0: zipfian scan-start skew (unscattered)

  static YcsbConfig SmallRow() {
    YcsbConfig config;
    config.value_size = 64;
    config.update_bytes = 64;
    config.row_size = 256;
    return config;
  }

  // YCSB-E: 95% scans / 5% RMW over an ordered table (small rows keep the
  // dataset cheap for tests and the stress suite).
  static YcsbConfig ScanHeavy() {
    YcsbConfig config = SmallRow();
    config.ordered = true;
    config.scan_pct = 95;
    config.scan_span_max = 100;
    return config;
  }
};

class YcsbWorkload {
 public:
  explicit YcsbWorkload(const YcsbConfig& config) : config_(config), rng_(config.seed) {
    if (config_.zipf_theta > 0.0) {
      zipf_ = std::make_unique<ZipfGenerator>(config_.rows, config_.zipf_theta,
                                              /*scatter=*/false);
    }
  }

  const YcsbConfig& config() const { return config_; }

  // XOR fold of every row observed by every scan since the last reset.
  // Order-insensitive, so it is comparable across engines and worker counts.
  std::uint64_t scan_digest() const { return scan_digest_.load(std::memory_order_relaxed); }
  void ResetScanDigest() { scan_digest_.store(0, std::memory_order_relaxed); }

  // DatabaseSpec for this workload (caller may adjust mode/cache settings).
  core::DatabaseSpec Spec(std::size_t workers) const;

  // Populates the table; call between Format() and FinalizeLoad().
  void Load(core::Database& db) const;

  // Deterministically generates the next `count` transactions.
  std::vector<std::unique_ptr<txn::Transaction>> MakeEpoch(std::size_t count);

  txn::TxnRegistry Registry() const;

  // The initial value pattern of a row (tests verify loads and updates).
  static void FillRow(Key key, std::uint8_t* out, std::uint32_t size);

 private:
  YcsbConfig config_;
  Rng rng_;
  std::unique_ptr<ZipfGenerator> zipf_;
  mutable std::atomic<std::uint64_t> scan_digest_{0};
};

// One transaction: ops_per_txn read-modify-writes to unique keys.
class YcsbRmwTxn final : public txn::Transaction {
 public:
  YcsbRmwTxn(const YcsbConfig* config, std::vector<Key> keys, std::uint64_t mod_seed)
      : config_(config), keys_(std::move(keys)), mod_seed_(mod_seed) {}

  txn::TxnType type() const override { return kYcsbRmwType; }
  void EncodeInputs(BinaryWriter& writer) const override;
  static std::unique_ptr<txn::Transaction> Decode(const YcsbConfig* config,
                                                  BinaryReader& reader);

  void AppendStep(txn::AppendContext& ctx) override;
  void Execute(txn::ExecContext& ctx) override;

  const std::vector<Key>& keys() const { return keys_; }

 private:
  const YcsbConfig* config_;
  std::vector<Key> keys_;
  std::uint64_t mod_seed_;
};

// YCSB-E range scan: reads up to `span` consecutive live keys starting at
// `start`, folds (key, bytes) into an FNV digest, and XORs that into the
// workload's shared accumulator. Read-only: declares no writes, so it commits
// under Caracal without touching any version array and never defers under
// Aria (no write reservations to collide with).
class YcsbScanTxn final : public txn::Transaction {
 public:
  YcsbScanTxn(Key start, std::uint32_t span, std::atomic<std::uint64_t>* digest)
      : start_(start), span_(span), digest_(digest) {}

  txn::TxnType type() const override { return kYcsbScanType; }
  void EncodeInputs(BinaryWriter& writer) const override;
  static std::unique_ptr<txn::Transaction> Decode(std::atomic<std::uint64_t>* digest,
                                                  BinaryReader& reader);

  void AppendStep(txn::AppendContext&) override {}
  void Execute(txn::ExecContext& ctx) override;

 private:
  Key start_;
  std::uint32_t span_;
  std::atomic<std::uint64_t>* digest_;
};

}  // namespace nvc::workload
