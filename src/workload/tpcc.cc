#include "src/workload/tpcc.h"

#include <cstring>
#include <string>
#include <unordered_set>

#include "src/workload/tpcc_txns.h"

namespace nvc::workload {
namespace {

template <typename T>
T ReadRow(txn::ExecContext& ctx, TableId table, Key key, bool* found = nullptr) {
  T row{};
  const int n = ctx.Read(table, key, &row, sizeof(row));
  if (found != nullptr) {
    *found = n >= 0;
  }
  return row;
}

void FillName(char* out, std::size_t n, std::uint64_t seed) {
  static const char alphabet[] = "ABCDEFGHIJKLMNOPQRSTUVWXYZ";
  for (std::size_t i = 0; i + 1 < n; ++i) {
    seed = SplitMix64(seed);
    out[i] = alphabet[seed % 26];
  }
  out[n - 1] = '\0';
}

}  // namespace

core::DatabaseSpec TpccWorkload::Spec(std::size_t workers) const {
  const std::uint64_t w = config_.warehouses;
  const std::uint64_t districts = w * kDistrictsPerWarehouse;
  const std::uint64_t customers = districts * config_.customers_per_district;
  const std::uint64_t initial_orders = districts * config_.initial_orders_per_district;
  const std::uint64_t order_capacity = initial_orders + config_.new_order_capacity;

  core::DatabaseSpec spec;
  spec.workers = workers;
  spec.recovery = core::RecoveryPolicy::kRevertAndReplay;

  auto table = [&](const char* name, std::uint64_t capacity,
                   std::size_t freelist = 1 << 10) {
    spec.tables.push_back(core::TableSpec{
        .name = name,
        .row_size = config_.row_size,
        .ordered = false,
        .capacity_rows = capacity + 64,
        .freelist_capacity = freelist,
    });
  };
  // Order must match enum TpccTable. The dynamic tables need free-list
  // headroom proportional to their churn: Delivery deletes NewOrder rows and
  // rolled-back NewOrders free their Order/NewOrder/OrderLine inserts.
  table("warehouse", w);
  table("district", districts);
  table("customer", customers);
  table("history", order_capacity + config_.new_order_capacity);
  table("new_order", order_capacity, /*freelist=*/order_capacity + 1024);
  table("order", order_capacity, /*freelist=*/order_capacity + 1024);
  table("order_line", order_capacity * kMaxOrderLines,
        /*freelist=*/order_capacity * kMaxOrderLines / 2 + 1024);
  table("item", config_.items);
  table("stock", w * config_.items);
  table("customer_last_order", customers);

  // All row payloads fit the 256-byte rows' inline heap; the value pool only
  // backs occasional spill (kept small).
  spec.value_block_size = 256;
  spec.value_blocks_per_core = 4096;
  spec.value_freelist_capacity = 8192;
  spec.log_bytes = 32u << 20;

  // Counters: order + delivery per district, history per warehouse.
  spec.counters.assign(2 * districts + w, 0);
  for (std::uint64_t wid = 1; wid <= w; ++wid) {
    for (std::uint64_t d = 1; d <= kDistrictsPerWarehouse; ++d) {
      spec.counters[OrderCounter(config_, wid, d)] = config_.initial_orders_per_district + 1;
      // 30% of the initial orders are undelivered (spec: 2101..3000).
      spec.counters[DeliveryCounter(config_, wid, d)] =
          config_.initial_orders_per_district * 7 / 10 + 1;
    }
    spec.counters[HistoryCounter(config_, wid)] = 1;
  }
  return spec;
}

void TpccWorkload::Load(core::Database& db) const {
  Rng rng(config_.seed ^ 0x70cc);

  for (std::uint64_t i = 1; i <= config_.items; ++i) {
    ItemRow item{};
    item.price = static_cast<std::int64_t>(rng.NextRange(100, 10'000));
    item.im_id = static_cast<std::int32_t>(rng.NextBounded(10'000));
    FillName(item.name, sizeof(item.name), i);
    db.BulkLoad(kItem, ItemKey(i), &item, sizeof(item));
  }

  for (std::uint64_t w = 1; w <= config_.warehouses; ++w) {
    WarehouseRow warehouse{};
    warehouse.ytd = 0;
    warehouse.tax_pct = static_cast<std::int32_t>(rng.NextBounded(2000));
    FillName(warehouse.name, sizeof(warehouse.name), w);
    db.BulkLoad(kWarehouse, WarehouseKey(w), &warehouse, sizeof(warehouse));

    for (std::uint64_t i = 1; i <= config_.items; ++i) {
      StockRow stock{};
      stock.quantity = static_cast<std::int32_t>(rng.NextRange(10, 100));
      FillName(stock.dist_info, sizeof(stock.dist_info), w * 1'000'003 + i);
      db.BulkLoad(kStock, StockKey(w, i), &stock, sizeof(stock));
    }

    for (std::uint64_t d = 1; d <= kDistrictsPerWarehouse; ++d) {
      DistrictRow district{};
      district.tax_pct = static_cast<std::int32_t>(rng.NextBounded(2000));
      FillName(district.name, sizeof(district.name), w * 16 + d);
      db.BulkLoad(kDistrict, DistrictKey(w, d), &district, sizeof(district));

      for (std::uint64_t c = 1; c <= config_.customers_per_district; ++c) {
        CustomerRow customer{};
        customer.balance = -1000;  // spec: C_BALANCE = -10.00
        FillName(customer.last_name, sizeof(customer.last_name), c);
        customer.credit[0] = rng.NextPercent(10) ? 'B' : 'G';
        customer.credit[1] = 'C';
        db.BulkLoad(kCustomer, CustomerKey(w, d, c), &customer, sizeof(customer));
      }

      // Initial orders 1..N over a random permutation of customers; the last
      // 30% are undelivered (have NewOrder rows, no carrier).
      const std::uint64_t delivered_upto = config_.initial_orders_per_district * 7 / 10;
      std::vector<std::uint64_t> last_order(config_.customers_per_district + 1, 0);
      for (std::uint64_t o = 1; o <= config_.initial_orders_per_district; ++o) {
        const std::uint64_t c = rng.NextRange(1, config_.customers_per_district);
        last_order[c] = o;
        OrderRow order{};
        order.c_id = static_cast<std::uint32_t>(c);
        order.ol_cnt = static_cast<std::uint32_t>(rng.NextRange(5, kMaxOrderLines));
        order.all_local = 1;
        order.entry_date = static_cast<std::int64_t>(o);
        order.carrier_id =
            o <= delivered_upto ? static_cast<std::uint32_t>(rng.NextRange(1, 10)) : 0;
        db.BulkLoad(kOrderTable, OrderKey(w, d, o), &order, sizeof(order));

        for (std::uint64_t ol = 1; ol <= order.ol_cnt; ++ol) {
          OrderLineRow line{};
          line.i_id = static_cast<std::uint32_t>(rng.NextRange(1, config_.items));
          line.supply_w = static_cast<std::uint32_t>(w);
          line.quantity = 5;
          line.amount = o <= delivered_upto
                            ? static_cast<std::int64_t>(rng.NextRange(1, 999'999))
                            : 0;
          line.delivery_date = o <= delivered_upto ? static_cast<std::int64_t>(o) : 0;
          db.BulkLoad(kOrderLine, OrderLineKey(w, d, o, ol), &line, sizeof(line));
        }
        if (o > delivered_upto) {
          NewOrderRow new_order{1};
          db.BulkLoad(kNewOrderTable, NewOrderKey(w, d, o), &new_order, sizeof(new_order));
        }
      }
      for (std::uint64_t c = 1; c <= config_.customers_per_district; ++c) {
        CustomerLastOrderRow last{last_order[c]};
        db.BulkLoad(kCustomerLastOrder, CustomerKey(w, d, c), &last, sizeof(last));
      }
    }
  }
}

std::vector<std::unique_ptr<txn::Transaction>> TpccWorkload::MakeEpoch(std::size_t count) {
  std::vector<std::unique_ptr<txn::Transaction>> txns;
  txns.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t pick = rng_.NextBounded(100);
    if (pick < config_.new_order_pct) {
      txns.push_back(MakeNewOrder());
    } else if (pick < config_.new_order_pct + config_.payment_pct) {
      txns.push_back(MakePayment());
    } else if (pick < config_.new_order_pct + config_.payment_pct + config_.order_status_pct) {
      txns.push_back(MakeOrderStatus());
    } else if (pick < config_.new_order_pct + config_.payment_pct + config_.order_status_pct +
                          config_.delivery_pct) {
      txns.push_back(MakeDelivery());
    } else {
      txns.push_back(MakeStockLevel());
    }
  }
  return txns;
}

std::unique_ptr<txn::Transaction> TpccWorkload::MakeNewOrder() {
  const auto w = static_cast<std::uint32_t>(rng_.NextRange(1, config_.warehouses));
  const auto d = static_cast<std::uint32_t>(rng_.NextRange(1, kDistrictsPerWarehouse));
  const auto c = static_cast<std::uint32_t>(rng_.NextRange(1, config_.customers_per_district));
  const auto ol_cnt = static_cast<std::uint32_t>(rng_.NextRange(5, kMaxOrderLines));
  const bool rollback = config_.new_order_rollback_pct > 0 &&
                        rng_.NextPercent(config_.new_order_rollback_pct);
  std::vector<NewOrderLine> lines;
  std::unordered_set<std::uint32_t> seen;
  lines.reserve(ol_cnt);
  while (lines.size() < ol_cnt) {
    // TPC-C 2.4.1.4: a rollback transaction's last item id is unused.
    const auto item = (rollback && lines.size() + 1 == ol_cnt)
                          ? config_.items + 1
                          : static_cast<std::uint32_t>(rng_.NextRange(1, config_.items));
    if (!seen.insert(item).second) {
      continue;
    }
    NewOrderLine line;
    line.item = item;
    // 1% remote supply warehouse (when more than one exists).
    line.supply_w = (config_.warehouses > 1 && rng_.NextPercent(1))
                        ? static_cast<std::uint32_t>(rng_.NextRange(1, config_.warehouses))
                        : w;
    line.quantity = static_cast<std::uint32_t>(rng_.NextRange(1, 10));
    lines.push_back(line);
  }
  return std::make_unique<TpccNewOrderTxn>(&config_, w, d, c,
                                           static_cast<std::int64_t>(rng_.Next() >> 32),
                                           std::move(lines));
}

std::unique_ptr<txn::Transaction> TpccWorkload::MakePayment() {
  const auto w = static_cast<std::uint32_t>(rng_.NextRange(1, config_.warehouses));
  const auto d = static_cast<std::uint32_t>(rng_.NextRange(1, kDistrictsPerWarehouse));
  std::uint32_t c_w = w;
  std::uint32_t c_d = d;
  if (config_.warehouses > 1 && rng_.NextPercent(15)) {
    do {
      c_w = static_cast<std::uint32_t>(rng_.NextRange(1, config_.warehouses));
    } while (c_w == w);
    c_d = static_cast<std::uint32_t>(rng_.NextRange(1, kDistrictsPerWarehouse));
  }
  const auto c = static_cast<std::uint32_t>(rng_.NextRange(1, config_.customers_per_district));
  const auto amount = static_cast<std::int64_t>(rng_.NextRange(100, 500'000));
  return std::make_unique<TpccPaymentTxn>(&config_, w, d, c_w, c_d, c, amount,
                                          static_cast<std::int64_t>(rng_.Next() >> 32));
}

std::unique_ptr<txn::Transaction> TpccWorkload::MakeOrderStatus() {
  const auto w = static_cast<std::uint32_t>(rng_.NextRange(1, config_.warehouses));
  const auto d = static_cast<std::uint32_t>(rng_.NextRange(1, kDistrictsPerWarehouse));
  const auto c = static_cast<std::uint32_t>(rng_.NextRange(1, config_.customers_per_district));
  return std::make_unique<TpccOrderStatusTxn>(&config_, w, d, c);
}

std::unique_ptr<txn::Transaction> TpccWorkload::MakeDelivery() {
  const auto w = static_cast<std::uint32_t>(rng_.NextRange(1, config_.warehouses));
  const auto carrier = static_cast<std::uint32_t>(rng_.NextRange(1, 10));
  return std::make_unique<TpccDeliveryTxn>(&config_, w, carrier,
                                           static_cast<std::int64_t>(rng_.Next() >> 32));
}

std::unique_ptr<txn::Transaction> TpccWorkload::MakeStockLevel() {
  const auto w = static_cast<std::uint32_t>(rng_.NextRange(1, config_.warehouses));
  const auto d = static_cast<std::uint32_t>(rng_.NextRange(1, kDistrictsPerWarehouse));
  const auto threshold = static_cast<std::int32_t>(rng_.NextRange(10, 20));
  return std::make_unique<TpccStockLevelTxn>(&config_, w, d, threshold);
}

txn::TxnRegistry TpccWorkload::Registry() const {
  txn::TxnRegistry registry;
  const TpccConfig* config = &config_;
  registry.Register(kTpccNewOrder, [config](BinaryReader& r) {
    return TpccNewOrderTxn::Decode(config, r);
  });
  registry.Register(kTpccPayment, [config](BinaryReader& r) {
    return TpccPaymentTxn::Decode(config, r);
  });
  registry.Register(kTpccOrderStatus, [config](BinaryReader& r) {
    return TpccOrderStatusTxn::Decode(config, r);
  });
  registry.Register(kTpccDelivery, [config](BinaryReader& r) {
    return TpccDeliveryTxn::Decode(config, r);
  });
  registry.Register(kTpccStockLevel, [config](BinaryReader& r) {
    return TpccStockLevelTxn::Decode(config, r);
  });
  return registry;
}

// ---- NewOrder ---------------------------------------------------------------------

void TpccNewOrderTxn::EncodeInputs(BinaryWriter& writer) const {
  writer.Put(w_);
  writer.Put(d_);
  writer.Put(c_);
  writer.Put(entry_date_);
  writer.Put<std::uint32_t>(static_cast<std::uint32_t>(lines_.size()));
  for (const NewOrderLine& line : lines_) {
    writer.Put(line);
  }
}

std::unique_ptr<txn::Transaction> TpccNewOrderTxn::Decode(const TpccConfig* config,
                                                          BinaryReader& reader) {
  const auto w = reader.Get<std::uint32_t>();
  const auto d = reader.Get<std::uint32_t>();
  const auto c = reader.Get<std::uint32_t>();
  const auto entry_date = reader.Get<std::int64_t>();
  const auto n = reader.Get<std::uint32_t>();
  std::vector<NewOrderLine> lines(n);
  for (auto& line : lines) {
    line = reader.Get<NewOrderLine>();
  }
  return std::make_unique<TpccNewOrderTxn>(config, w, d, c, entry_date, std::move(lines));
}

void TpccNewOrderTxn::InsertStep(txn::InsertContext& ctx) {
  o_id_ = ctx.CounterFetchAdd(OrderCounter(*config_, w_, d_), 1);

  OrderRow order{};
  order.c_id = c_;
  order.carrier_id = 0;
  order.ol_cnt = static_cast<std::uint32_t>(lines_.size());
  order.all_local = 1;
  for (const NewOrderLine& line : lines_) {
    if (line.supply_w != w_) {
      order.all_local = 0;
    }
  }
  order.entry_date = entry_date_;
  ctx.InsertRow(kOrderTable, OrderKey(w_, d_, o_id_), &order, sizeof(order));

  NewOrderRow new_order{1};
  ctx.InsertRow(kNewOrderTable, NewOrderKey(w_, d_, o_id_), &new_order, sizeof(new_order));

  // Order lines are created without data; the amounts depend on item prices
  // read during execution.
  for (std::uint64_t ol = 1; ol <= lines_.size(); ++ol) {
    ctx.InsertRow(kOrderLine, OrderLineKey(w_, d_, o_id_, ol), nullptr, 0);
  }
}

void TpccNewOrderTxn::AppendStep(txn::AppendContext& ctx) {
  // Validate item ids against the (stable, read-only) item table first: a
  // rollback transaction (unused item id, TPC-C 2.4.1.4) has no write set —
  // its stock rows may not even exist. Execution re-checks and aborts.
  for (const NewOrderLine& line : lines_) {
    ItemRow item{};
    if (ctx.ReadPreEpoch(kItem, ItemKey(line.item), &item, sizeof(item)) < 0) {
      return;
    }
  }
  for (const NewOrderLine& line : lines_) {
    ctx.DeclareUpdate(kStock, StockKey(line.supply_w, line.item));
  }
  for (std::uint64_t ol = 1; ol <= lines_.size(); ++ol) {
    ctx.DeclareUpdate(kOrderLine, OrderLineKey(w_, d_, o_id_, ol));
  }
  ctx.DeclareUpdate(kCustomerLastOrder, CustomerKey(w_, d_, c_));
}

void TpccNewOrderTxn::Execute(txn::ExecContext& ctx) {
  // Reads that the full transaction performs for the result set.
  (void)ReadRow<DistrictRow>(ctx, kDistrict, DistrictKey(w_, d_));
  (void)ReadRow<WarehouseRow>(ctx, kWarehouse, WarehouseKey(w_));
  (void)ReadRow<CustomerRow>(ctx, kCustomer, CustomerKey(w_, d_, c_));

  // All validity checks precede all writes (paper 3.1.1): an unused item id
  // rolls the transaction back (TPC-C 2.4.1.4); the rows created in the
  // insert step are discarded by the engine.
  std::array<ItemRow, kMaxOrderLines> items{};
  for (std::size_t i = 0; i < lines_.size(); ++i) {
    bool found = false;
    items[i] = ReadRow<ItemRow>(ctx, kItem, ItemKey(lines_[i].item), &found);
    if (!found) {
      ctx.Abort();
      return;
    }
  }

  for (std::uint64_t ol = 1; ol <= lines_.size(); ++ol) {
    const NewOrderLine& input = lines_[ol - 1];
    const ItemRow& item = items[ol - 1];

    StockRow stock = ReadRow<StockRow>(ctx, kStock, StockKey(input.supply_w, input.item));
    if (stock.quantity >= static_cast<std::int32_t>(input.quantity) + 10) {
      stock.quantity -= static_cast<std::int32_t>(input.quantity);
    } else {
      stock.quantity = stock.quantity - static_cast<std::int32_t>(input.quantity) + 91;
    }
    stock.ytd += input.quantity;
    stock.order_cnt += 1;
    if (input.supply_w != w_) {
      stock.remote_cnt += 1;
    }
    ctx.Write(kStock, StockKey(input.supply_w, input.item), &stock, sizeof(stock));

    OrderLineRow line{};
    line.i_id = input.item;
    line.supply_w = input.supply_w;
    line.quantity = static_cast<std::int32_t>(input.quantity);
    line.amount = item.price * input.quantity;
    line.delivery_date = 0;
    ctx.Write(kOrderLine, OrderLineKey(w_, d_, o_id_, ol), &line, sizeof(line));
  }

  CustomerLastOrderRow last{o_id_};
  ctx.Write(kCustomerLastOrder, CustomerKey(w_, d_, c_), &last, sizeof(last));
}

// ---- Payment -----------------------------------------------------------------------

void TpccPaymentTxn::EncodeInputs(BinaryWriter& writer) const {
  writer.Put(w_);
  writer.Put(d_);
  writer.Put(c_w_);
  writer.Put(c_d_);
  writer.Put(c_);
  writer.Put(amount_);
  writer.Put(date_);
}

std::unique_ptr<txn::Transaction> TpccPaymentTxn::Decode(const TpccConfig* config,
                                                         BinaryReader& reader) {
  const auto w = reader.Get<std::uint32_t>();
  const auto d = reader.Get<std::uint32_t>();
  const auto c_w = reader.Get<std::uint32_t>();
  const auto c_d = reader.Get<std::uint32_t>();
  const auto c = reader.Get<std::uint32_t>();
  const auto amount = reader.Get<std::int64_t>();
  const auto date = reader.Get<std::int64_t>();
  return std::make_unique<TpccPaymentTxn>(config, w, d, c_w, c_d, c, amount, date);
}

void TpccPaymentTxn::InsertStep(txn::InsertContext& ctx) {
  const std::uint64_t seq = ctx.CounterFetchAdd(HistoryCounter(*config_, w_), 1);
  HistoryRow history{};
  history.customer_key = CustomerKey(c_w_, c_d_, c_);
  history.amount = amount_;
  history.date = date_;
  ctx.InsertRow(kHistory, HistoryKey(w_, seq), &history, sizeof(history));
}

void TpccPaymentTxn::AppendStep(txn::AppendContext& ctx) {
  ctx.DeclareUpdate(kWarehouse, WarehouseKey(w_));
  ctx.DeclareUpdate(kDistrict, DistrictKey(w_, d_));
  ctx.DeclareUpdate(kCustomer, CustomerKey(c_w_, c_d_, c_));
}

void TpccPaymentTxn::Execute(txn::ExecContext& ctx) {
  WarehouseRow warehouse = ReadRow<WarehouseRow>(ctx, kWarehouse, WarehouseKey(w_));
  warehouse.ytd += amount_;
  ctx.Write(kWarehouse, WarehouseKey(w_), &warehouse, sizeof(warehouse));

  DistrictRow district = ReadRow<DistrictRow>(ctx, kDistrict, DistrictKey(w_, d_));
  district.ytd += amount_;
  ctx.Write(kDistrict, DistrictKey(w_, d_), &district, sizeof(district));

  CustomerRow customer = ReadRow<CustomerRow>(ctx, kCustomer, CustomerKey(c_w_, c_d_, c_));
  customer.balance -= amount_;
  customer.ytd_payment += amount_;
  customer.payment_cnt += 1;
  ctx.Write(kCustomer, CustomerKey(c_w_, c_d_, c_), &customer, sizeof(customer));
}

// ---- OrderStatus --------------------------------------------------------------------

void TpccOrderStatusTxn::EncodeInputs(BinaryWriter& writer) const {
  writer.Put(w_);
  writer.Put(d_);
  writer.Put(c_);
}

std::unique_ptr<txn::Transaction> TpccOrderStatusTxn::Decode(const TpccConfig* config,
                                                             BinaryReader& reader) {
  const auto w = reader.Get<std::uint32_t>();
  const auto d = reader.Get<std::uint32_t>();
  const auto c = reader.Get<std::uint32_t>();
  return std::make_unique<TpccOrderStatusTxn>(config, w, d, c);
}

void TpccOrderStatusTxn::Execute(txn::ExecContext& ctx) {
  bool found = false;
  const CustomerLastOrderRow last =
      ReadRow<CustomerLastOrderRow>(ctx, kCustomerLastOrder, CustomerKey(w_, d_, c_), &found);
  if (!found || last.o_id == 0) {
    return;
  }
  const OrderRow order =
      ReadRow<OrderRow>(ctx, kOrderTable, OrderKey(w_, d_, last.o_id), &found);
  if (!found) {
    return;
  }
  std::int64_t total = 0;
  for (std::uint64_t ol = 1; ol <= order.ol_cnt; ++ol) {
    const OrderLineRow line =
        ReadRow<OrderLineRow>(ctx, kOrderLine, OrderLineKey(w_, d_, last.o_id, ol), &found);
    if (found) {
      total += line.amount;
    }
  }
  (void)total;
}

// ---- Delivery -----------------------------------------------------------------------

void TpccDeliveryTxn::EncodeInputs(BinaryWriter& writer) const {
  writer.Put(w_);
  writer.Put(carrier_);
  writer.Put(date_);
}

std::unique_ptr<txn::Transaction> TpccDeliveryTxn::Decode(const TpccConfig* config,
                                                          BinaryReader& reader) {
  const auto w = reader.Get<std::uint32_t>();
  const auto carrier = reader.Get<std::uint32_t>();
  const auto date = reader.Get<std::int64_t>();
  return std::make_unique<TpccDeliveryTxn>(config, w, carrier, date);
}

void TpccDeliveryTxn::InsertStep(txn::InsertContext& ctx) {
  for (std::uint64_t d = 1; d <= kDistrictsPerWarehouse; ++d) {
    // Deliver the oldest undelivered order, restricted to orders placed in
    // previous epochs so the write set is computable from stable rows.
    const std::uint64_t bound = ctx.CounterEpochStart(OrderCounter(*config_, w_, d));
    const std::uint64_t o =
        ctx.CounterFetchAddIfLess(DeliveryCounter(*config_, w_, d), bound);
    o_ids_[d - 1] = (o == ~0ULL) ? 0 : o;
  }
}

void TpccDeliveryTxn::AppendStep(txn::AppendContext& ctx) {
  for (std::uint64_t d = 1; d <= kDistrictsPerWarehouse; ++d) {
    const std::uint64_t o = o_ids_[d - 1];
    if (o == 0) {
      continue;
    }
    OrderRow order{};
    const int n = ctx.ReadPreEpoch(kOrderTable, OrderKey(w_, d, o), &order, sizeof(order));
    if (n < 0) {
      o_ids_[d - 1] = 0;  // should not happen; skip defensively
      continue;
    }
    customers_[d - 1] = order.c_id;
    ol_counts_[d - 1] = order.ol_cnt;
    ctx.DeclareDelete(kNewOrderTable, NewOrderKey(w_, d, o));
    ctx.DeclareUpdate(kOrderTable, OrderKey(w_, d, o));
    for (std::uint64_t ol = 1; ol <= order.ol_cnt; ++ol) {
      ctx.DeclareUpdate(kOrderLine, OrderLineKey(w_, d, o, ol));
    }
    ctx.DeclareUpdate(kCustomer, CustomerKey(w_, d, order.c_id));
  }
}

void TpccDeliveryTxn::Execute(txn::ExecContext& ctx) {
  for (std::uint64_t d = 1; d <= kDistrictsPerWarehouse; ++d) {
    const std::uint64_t o = o_ids_[d - 1];
    if (o == 0) {
      continue;
    }
    std::int64_t total = 0;
    for (std::uint64_t ol = 1; ol <= ol_counts_[d - 1]; ++ol) {
      OrderLineRow line =
          ReadRow<OrderLineRow>(ctx, kOrderLine, OrderLineKey(w_, d, o, ol));
      total += line.amount;
      line.delivery_date = date_;
      ctx.Write(kOrderLine, OrderLineKey(w_, d, o, ol), &line, sizeof(line));
    }

    OrderRow order = ReadRow<OrderRow>(ctx, kOrderTable, OrderKey(w_, d, o));
    order.carrier_id = carrier_;
    ctx.Write(kOrderTable, OrderKey(w_, d, o), &order, sizeof(order));

    CustomerRow customer =
        ReadRow<CustomerRow>(ctx, kCustomer, CustomerKey(w_, d, customers_[d - 1]));
    customer.balance += total;
    customer.delivery_cnt += 1;
    ctx.Write(kCustomer, CustomerKey(w_, d, customers_[d - 1]), &customer, sizeof(customer));

    ctx.Delete(kNewOrderTable, NewOrderKey(w_, d, o));
  }
}

// ---- StockLevel ---------------------------------------------------------------------

void TpccStockLevelTxn::EncodeInputs(BinaryWriter& writer) const {
  writer.Put(w_);
  writer.Put(d_);
  writer.Put(threshold_);
}

std::unique_ptr<txn::Transaction> TpccStockLevelTxn::Decode(const TpccConfig* config,
                                                            BinaryReader& reader) {
  const auto w = reader.Get<std::uint32_t>();
  const auto d = reader.Get<std::uint32_t>();
  const auto threshold = reader.Get<std::int32_t>();
  return std::make_unique<TpccStockLevelTxn>(config, w, d, threshold);
}

void TpccStockLevelTxn::Execute(txn::ExecContext& ctx) {
  const std::uint64_t next_o = ctx.CounterEpochStart(OrderCounter(*config_, w_, d_));
  const std::uint64_t from = next_o > 20 ? next_o - 20 : 1;
  std::unordered_set<std::uint32_t> low_items;
  bool found = false;
  for (std::uint64_t o = from; o < next_o; ++o) {
    const OrderRow order = ReadRow<OrderRow>(ctx, kOrderTable, OrderKey(w_, d_, o), &found);
    if (!found) {
      continue;
    }
    for (std::uint64_t ol = 1; ol <= order.ol_cnt; ++ol) {
      const OrderLineRow line =
          ReadRow<OrderLineRow>(ctx, kOrderLine, OrderLineKey(w_, d_, o, ol), &found);
      if (!found) {
        continue;
      }
      const StockRow stock =
          ReadRow<StockRow>(ctx, kStock, StockKey(w_, line.i_id), &found);
      if (found && stock.quantity < threshold_) {
        low_items.insert(line.i_id);
      }
    }
  }
  (void)low_items;
}

// ---- Consistency check ----------------------------------------------------------------

bool TpccWorkload::CheckConsistency(core::Database& db, const TpccConfig& config,
                                    std::string* message) {
  // Check: every order id below the delivery counter has carrier != 0 and no
  // NewOrder row; every order at or above it has a NewOrder row iff it is
  // undelivered. Also per-district monotonic counters never exceed capacity.
  for (std::uint64_t w = 1; w <= config.warehouses; ++w) {
    for (std::uint64_t d = 1; d <= kDistrictsPerWarehouse; ++d) {
      const std::uint64_t next_delivery =
          db.counter_value(DeliveryCounter(config, w, d));
      const std::uint64_t next_order = db.counter_value(OrderCounter(config, w, d));
      if (next_delivery > next_order) {
        *message = "delivery counter ran past the order counter";
        return false;
      }
      for (std::uint64_t o = 1; o < next_order; ++o) {
        OrderRow order{};
        NewOrderRow new_order{};
        const bool has_new_order =
            db.ReadCommitted(kNewOrderTable, NewOrderKey(w, d, o), &new_order,
                             sizeof(new_order))
                .ok();
        if (!db.ReadCommitted(kOrderTable, OrderKey(w, d, o), &order, sizeof(order)).ok()) {
          // Order-id gap from a rolled-back NewOrder (2.4.1.4): the counter
          // advanced but every inserted row was discarded with the abort.
          if (has_new_order) {
            *message = "NewOrder row for a rolled-back order o=" + std::to_string(o);
            return false;
          }
          continue;
        }
        const bool delivered = o < next_delivery;
        if (delivered == has_new_order) {
          *message = "NewOrder row inconsistency at w=" + std::to_string(w) +
                     " d=" + std::to_string(d) + " o=" + std::to_string(o) +
                     " delivered=" + std::to_string(delivered);
          return false;
        }
        if (delivered && order.carrier_id == 0) {
          *message = "delivered order without carrier at o=" + std::to_string(o);
          return false;
        }
        // Every order line of a delivered order must have a delivery date.
        for (std::uint64_t ol = 1; ol <= order.ol_cnt; ++ol) {
          OrderLineRow line{};
          if (!db.ReadCommitted(kOrderLine, OrderLineKey(w, d, o, ol), &line, sizeof(line))
                   .ok()) {
            *message = "missing order line o=" + std::to_string(o) +
                       " ol=" + std::to_string(ol);
            return false;
          }
          if (delivered && line.delivery_date == 0) {
            *message = "undelivered line in delivered order o=" + std::to_string(o);
            return false;
          }
        }
      }
    }
  }
  return true;
}

}  // namespace nvc::workload
