#include "src/workload/ycsb.h"

#include <algorithm>
#include <cstring>

#include "src/vstore/persistent_row.h"

namespace nvc::workload {

core::DatabaseSpec YcsbWorkload::Spec(std::size_t workers) const {
  core::DatabaseSpec spec;
  spec.workers = workers;
  spec.tables.push_back(core::TableSpec{
      .name = "ycsb",
      .row_size = config_.row_size,
      .ordered = config_.ordered,
      .capacity_rows = config_.rows + 16,
      .freelist_capacity = 1 << 10,
  });
  // When values do not fit inline, every row needs a pool block per live
  // version; two versions can be live at once.
  const bool values_inline =
      config_.value_size <= (config_.row_size - vstore::kRowHeaderSize) / 2;
  spec.value_block_size = AlignUp(config_.value_size, 256);
  spec.value_blocks_per_core =
      values_inline ? 1024 : (2 * config_.rows) / workers + 1024;
  spec.value_freelist_capacity = spec.value_blocks_per_core + 1024;
  spec.log_bytes = 32u << 20;
  spec.recovery = core::RecoveryPolicy::kReplayInPlace;
  return spec;
}

void YcsbWorkload::FillRow(Key key, std::uint8_t* out, std::uint32_t size) {
  std::uint64_t state = SplitMix64(key ^ 0xabcdefULL);
  for (std::uint32_t i = 0; i < size; ++i) {
    if (i % 8 == 0) {
      state = SplitMix64(state);
    }
    out[i] = static_cast<std::uint8_t>(state >> ((i % 8) * 8));
  }
}

void YcsbWorkload::Load(core::Database& db) const {
  std::vector<std::uint8_t> value(config_.value_size);
  for (std::uint64_t key = 0; key < config_.rows; ++key) {
    FillRow(key, value.data(), config_.value_size);
    db.BulkLoad(kYcsbTable, key, value.data(), config_.value_size);
  }
}

std::vector<std::unique_ptr<txn::Transaction>> YcsbWorkload::MakeEpoch(std::size_t count) {
  std::vector<std::unique_ptr<txn::Transaction>> txns;
  txns.reserve(count);
  for (std::size_t t = 0; t < count; ++t) {
    if (config_.scan_pct != 0 && rng_.NextPercent(config_.scan_pct)) {
      const Key start = zipf_ != nullptr ? zipf_->Next(rng_) : rng_.NextBounded(config_.rows);
      const auto span =
          static_cast<std::uint32_t>(1 + rng_.NextBounded(config_.scan_span_max));
      txns.push_back(std::make_unique<YcsbScanTxn>(start, span, &scan_digest_));
      continue;
    }
    std::vector<Key> keys;
    keys.reserve(config_.ops_per_txn);
    for (std::uint32_t op = 0; op < config_.ops_per_txn; ++op) {
      const bool hot = op < config_.hot_ops;
      Key key;
      do {
        key = hot ? rng_.NextBounded(config_.hot_rows)
                  : config_.hot_rows + rng_.NextBounded(config_.rows - config_.hot_rows);
      } while (std::find(keys.begin(), keys.end(), key) != keys.end());
      keys.push_back(key);
    }
    txns.push_back(std::make_unique<YcsbRmwTxn>(&config_, std::move(keys), rng_.Next()));
  }
  return txns;
}

txn::TxnRegistry YcsbWorkload::Registry() const {
  txn::TxnRegistry registry;
  const YcsbConfig* config = &config_;
  registry.Register(kYcsbRmwType,
                    [config](BinaryReader& reader) { return YcsbRmwTxn::Decode(config, reader); });
  std::atomic<std::uint64_t>* digest = &scan_digest_;
  registry.Register(kYcsbScanType, [digest](BinaryReader& reader) {
    return YcsbScanTxn::Decode(digest, reader);
  });
  return registry;
}

void YcsbRmwTxn::EncodeInputs(BinaryWriter& writer) const {
  writer.Put<std::uint32_t>(static_cast<std::uint32_t>(keys_.size()));
  for (Key key : keys_) {
    writer.Put(key);
  }
  writer.Put(mod_seed_);
}

std::unique_ptr<txn::Transaction> YcsbRmwTxn::Decode(const YcsbConfig* config,
                                                     BinaryReader& reader) {
  const auto n = reader.Get<std::uint32_t>();
  std::vector<Key> keys(n);
  for (auto& key : keys) {
    key = reader.Get<Key>();
  }
  const auto mod_seed = reader.Get<std::uint64_t>();
  return std::make_unique<YcsbRmwTxn>(config, std::move(keys), mod_seed);
}

void YcsbRmwTxn::AppendStep(txn::AppendContext& ctx) {
  for (Key key : keys_) {
    ctx.DeclareUpdate(kYcsbTable, key);
  }
}

void YcsbRmwTxn::Execute(txn::ExecContext& ctx) {
  std::vector<std::uint8_t> value(config_->value_size);
  for (std::size_t op = 0; op < keys_.size(); ++op) {
    const Key key = keys_[op];
    const int n = ctx.Read(kYcsbTable, key, value.data(), config_->value_size);
    (void)n;
    // Overwrite the first update_bytes with a deterministic pattern derived
    // from the logged inputs (replayable).
    std::uint64_t state = SplitMix64(mod_seed_ + op);
    for (std::uint32_t i = 0; i < config_->update_bytes; ++i) {
      if (i % 8 == 0) {
        state = SplitMix64(state);
      }
      value[i] = static_cast<std::uint8_t>(state >> ((i % 8) * 8));
    }
    ctx.Write(kYcsbTable, key, value.data(), config_->value_size);
  }
}

void YcsbScanTxn::EncodeInputs(BinaryWriter& writer) const {
  writer.Put(start_);
  writer.Put(span_);
}

std::unique_ptr<txn::Transaction> YcsbScanTxn::Decode(std::atomic<std::uint64_t>* digest,
                                                      BinaryReader& reader) {
  const auto start = reader.Get<Key>();
  const auto span = reader.Get<std::uint32_t>();
  return std::make_unique<YcsbScanTxn>(start, span, digest);
}

void YcsbScanTxn::Execute(txn::ExecContext& ctx) {
  std::uint64_t digest = 1469598103934665603ULL;  // FNV-1a offset basis
  const auto mix = [&digest](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      digest ^= (v >> (i * 8)) & 0xFF;
      digest *= 1099511628211ULL;
    }
  };
  ctx.Scan(txn::ScanSpec{kYcsbTable, start_, start_ + span_ - 1, span_},
           [&](Key key, const void* data, std::uint32_t size) {
             mix(key);
             mix(size);
             const auto* bytes = static_cast<const std::uint8_t*>(data);
             for (std::uint32_t i = 0; i < size; ++i) {
               digest ^= bytes[i];
               digest *= 1099511628211ULL;
             }
             return true;
           });
  if (digest_ != nullptr) {
    digest_->fetch_xor(digest, std::memory_order_relaxed);
  }
}

}  // namespace nvc::workload
