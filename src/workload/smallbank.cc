#include "src/workload/smallbank.h"

namespace nvc::workload {
namespace {

// An amount no account can cover — used to realize the configured abort rate.
constexpr Balance kImpossibleAmount = 1'000'000'000'000LL;

Balance ReadBalance(txn::ExecContext& ctx, TableId table, std::uint64_t customer) {
  Balance balance = 0;
  ctx.Read(table, customer, &balance, sizeof(balance));
  return balance;
}

void WriteBalance(txn::ExecContext& ctx, TableId table, std::uint64_t customer,
                  Balance balance) {
  ctx.Write(table, customer, &balance, sizeof(balance));
}

}  // namespace

core::DatabaseSpec SmallBankWorkload::Spec(std::size_t workers) const {
  core::DatabaseSpec spec;
  spec.workers = workers;
  for (const char* name : {"savings", "checking"}) {
    spec.tables.push_back(core::TableSpec{
        .name = name,
        .row_size = config_.row_size,
        .ordered = false,
        .capacity_rows = config_.customers + 16,
        .freelist_capacity = 1 << 10,
    });
  }
  spec.value_block_size = 256;
  spec.value_blocks_per_core = 1024;  // 8-byte balances always inline
  spec.value_freelist_capacity = 2048;
  spec.log_bytes = 16u << 20;
  spec.recovery = core::RecoveryPolicy::kReplayInPlace;
  return spec;
}

void SmallBankWorkload::Load(core::Database& db) const {
  for (std::uint64_t customer = 0; customer < config_.customers; ++customer) {
    db.BulkLoad(kSavingsTable, customer, &config_.initial_balance,
                sizeof(config_.initial_balance));
    db.BulkLoad(kCheckingTable, customer, &config_.initial_balance,
                sizeof(config_.initial_balance));
  }
}

std::uint64_t SmallBankWorkload::PickCustomer() {
  if (rng_.NextPercent(90)) {
    return rng_.NextBounded(config_.hotspot_customers);
  }
  return rng_.NextBounded(config_.customers);
}

std::vector<std::unique_ptr<txn::Transaction>> SmallBankWorkload::MakeEpoch(std::size_t count) {
  std::vector<std::unique_ptr<txn::Transaction>> txns;
  txns.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t c0 = PickCustomer();
    std::uint64_t c1 = PickCustomer();
    while (c1 == c0) {
      c1 = (c1 + 1) % config_.customers;
    }
    const Balance small = static_cast<Balance>(rng_.NextRange(1, 100));
    const bool force_abort = rng_.NextPercent(config_.abort_percent);
    switch (rng_.NextBounded(5)) {
      case 0:
        txns.push_back(std::make_unique<SbAmalgamateTxn>(c0, c1));
        break;
      case 1:
        txns.push_back(std::make_unique<SbDepositCheckingTxn>(c0, small));
        break;
      case 2:
        txns.push_back(std::make_unique<SbSendPaymentTxn>(c0, c1, small));
        break;
      case 3:
        txns.push_back(std::make_unique<SbTransactSavingTxn>(
            c0, force_abort ? -kImpossibleAmount : -small));
        break;
      default:
        txns.push_back(std::make_unique<SbWriteCheckTxn>(
            c0, force_abort ? kImpossibleAmount : small));
        break;
    }
  }
  return txns;
}

txn::TxnRegistry SmallBankWorkload::Registry() {
  txn::TxnRegistry registry;
  registry.Register(kSbAmalgamate, SbAmalgamateTxn::Decode);
  registry.Register(kSbDepositChecking, SbDepositCheckingTxn::Decode);
  registry.Register(kSbSendPayment, SbSendPaymentTxn::Decode);
  registry.Register(kSbTransactSaving, SbTransactSavingTxn::Decode);
  registry.Register(kSbWriteCheck, SbWriteCheckTxn::Decode);
  return registry;
}

Balance SmallBankWorkload::TotalMoney(core::Database& db, std::uint64_t customers) {
  Balance total = 0;
  for (std::uint64_t customer = 0; customer < customers; ++customer) {
    Balance balance = 0;
    db.ReadCommitted(kSavingsTable, customer, &balance, sizeof(balance)).IgnoreError();
    total += balance;
    balance = 0;
    db.ReadCommitted(kCheckingTable, customer, &balance, sizeof(balance)).IgnoreError();
    total += balance;
  }
  return total;
}

// ---- Amalgamate ---------------------------------------------------------------

void SbAmalgamateTxn::EncodeInputs(BinaryWriter& writer) const {
  writer.Put(a_);
  writer.Put(b_);
}

std::unique_ptr<txn::Transaction> SbAmalgamateTxn::Decode(BinaryReader& reader) {
  const auto a = reader.Get<std::uint64_t>();
  const auto b = reader.Get<std::uint64_t>();
  return std::make_unique<SbAmalgamateTxn>(a, b);
}

void SbAmalgamateTxn::AppendStep(txn::AppendContext& ctx) {
  ctx.DeclareUpdate(kSavingsTable, a_);
  ctx.DeclareUpdate(kCheckingTable, a_);
  ctx.DeclareUpdate(kCheckingTable, b_);
}

void SbAmalgamateTxn::Execute(txn::ExecContext& ctx) {
  const Balance savings_a = ReadBalance(ctx, kSavingsTable, a_);
  const Balance checking_a = ReadBalance(ctx, kCheckingTable, a_);
  const Balance checking_b = ReadBalance(ctx, kCheckingTable, b_);
  WriteBalance(ctx, kSavingsTable, a_, 0);
  WriteBalance(ctx, kCheckingTable, a_, 0);
  WriteBalance(ctx, kCheckingTable, b_, checking_b + savings_a + checking_a);
}

// ---- DepositChecking ------------------------------------------------------------

void SbDepositCheckingTxn::EncodeInputs(BinaryWriter& writer) const {
  writer.Put(customer_);
  writer.Put(amount_);
}

std::unique_ptr<txn::Transaction> SbDepositCheckingTxn::Decode(BinaryReader& reader) {
  const auto customer = reader.Get<std::uint64_t>();
  const auto amount = reader.Get<Balance>();
  return std::make_unique<SbDepositCheckingTxn>(customer, amount);
}

void SbDepositCheckingTxn::AppendStep(txn::AppendContext& ctx) {
  ctx.DeclareUpdate(kCheckingTable, customer_);
}

void SbDepositCheckingTxn::Execute(txn::ExecContext& ctx) {
  const Balance checking = ReadBalance(ctx, kCheckingTable, customer_);
  WriteBalance(ctx, kCheckingTable, customer_, checking + amount_);
}

// ---- SendPayment ------------------------------------------------------------------

void SbSendPaymentTxn::EncodeInputs(BinaryWriter& writer) const {
  writer.Put(from_);
  writer.Put(to_);
  writer.Put(amount_);
}

std::unique_ptr<txn::Transaction> SbSendPaymentTxn::Decode(BinaryReader& reader) {
  const auto from = reader.Get<std::uint64_t>();
  const auto to = reader.Get<std::uint64_t>();
  const auto amount = reader.Get<Balance>();
  return std::make_unique<SbSendPaymentTxn>(from, to, amount);
}

void SbSendPaymentTxn::AppendStep(txn::AppendContext& ctx) {
  ctx.DeclareUpdate(kCheckingTable, from_);
  ctx.DeclareUpdate(kCheckingTable, to_);
}

void SbSendPaymentTxn::Execute(txn::ExecContext& ctx) {
  const Balance from_balance = ReadBalance(ctx, kCheckingTable, from_);
  if (from_balance < amount_) {
    ctx.Abort();  // before any writes (paper 3.1.1)
    return;
  }
  const Balance to_balance = ReadBalance(ctx, kCheckingTable, to_);
  WriteBalance(ctx, kCheckingTable, from_, from_balance - amount_);
  WriteBalance(ctx, kCheckingTable, to_, to_balance + amount_);
}

// ---- TransactSaving ---------------------------------------------------------------

void SbTransactSavingTxn::EncodeInputs(BinaryWriter& writer) const {
  writer.Put(customer_);
  writer.Put(amount_);
}

std::unique_ptr<txn::Transaction> SbTransactSavingTxn::Decode(BinaryReader& reader) {
  const auto customer = reader.Get<std::uint64_t>();
  const auto amount = reader.Get<Balance>();
  return std::make_unique<SbTransactSavingTxn>(customer, amount);
}

void SbTransactSavingTxn::AppendStep(txn::AppendContext& ctx) {
  ctx.DeclareUpdate(kSavingsTable, customer_);
}

void SbTransactSavingTxn::Execute(txn::ExecContext& ctx) {
  const Balance savings = ReadBalance(ctx, kSavingsTable, customer_);
  if (savings + amount_ < 0) {
    ctx.Abort();
    return;
  }
  WriteBalance(ctx, kSavingsTable, customer_, savings + amount_);
}

// ---- WriteCheck --------------------------------------------------------------------

void SbWriteCheckTxn::EncodeInputs(BinaryWriter& writer) const {
  writer.Put(customer_);
  writer.Put(amount_);
}

std::unique_ptr<txn::Transaction> SbWriteCheckTxn::Decode(BinaryReader& reader) {
  const auto customer = reader.Get<std::uint64_t>();
  const auto amount = reader.Get<Balance>();
  return std::make_unique<SbWriteCheckTxn>(customer, amount);
}

void SbWriteCheckTxn::AppendStep(txn::AppendContext& ctx) {
  ctx.DeclareUpdate(kCheckingTable, customer_);
}

void SbWriteCheckTxn::Execute(txn::ExecContext& ctx) {
  const Balance savings = ReadBalance(ctx, kSavingsTable, customer_);
  const Balance checking = ReadBalance(ctx, kCheckingTable, customer_);
  if (savings + checking < amount_) {
    ctx.Abort();
    return;
  }
  WriteBalance(ctx, kCheckingTable, customer_, checking - amount_);
}

}  // namespace nvc::workload
