// SmallBank OLTP benchmark (paper section 6.2.2, Table 2).
//
// Two tables — savings and checking balances keyed by customer id, 8-byte
// values — and five transaction types chosen uniformly: Amalgamate,
// DepositChecking, SendPayment, TransactSaving and WriteCheck. TransactSaving
// and WriteCheck abort on insufficient funds; the generator arranges a ~10%
// abort rate for those two types. A hotspot subset of customers receives 90%
// of the transactions.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/core/config.h"
#include "src/core/database.h"
#include "src/txn/transaction.h"

namespace nvc::workload {

inline constexpr TableId kSavingsTable = 0;
inline constexpr TableId kCheckingTable = 1;

inline constexpr txn::TxnType kSbAmalgamate = 20;
inline constexpr txn::TxnType kSbDepositChecking = 21;
inline constexpr txn::TxnType kSbSendPayment = 22;
inline constexpr txn::TxnType kSbTransactSaving = 23;
inline constexpr txn::TxnType kSbWriteCheck = 24;

// Balances are signed 64-bit "cents".
using Balance = std::int64_t;

struct SmallBankConfig {
  std::uint64_t customers = 50'000;
  std::uint64_t hotspot_customers = 1'000;  // targeted by 90% of transactions
  Balance initial_balance = 1'000'000;
  std::uint32_t abort_percent = 10;  // guaranteed-insufficient amounts
  std::uint64_t seed = 43;
  std::size_t row_size = 128;  // Table 4: SmallBank persistent row size
};

class SmallBankWorkload {
 public:
  explicit SmallBankWorkload(const SmallBankConfig& config)
      : config_(config), rng_(config.seed) {}

  const SmallBankConfig& config() const { return config_; }

  core::DatabaseSpec Spec(std::size_t workers) const;
  void Load(core::Database& db) const;
  std::vector<std::unique_ptr<txn::Transaction>> MakeEpoch(std::size_t count);
  static txn::TxnRegistry Registry();

  // Sum of all savings and checking balances. Deposits, savings transactions
  // and checks move money in and out of the bank, so tests compare this
  // against a reference model rather than asserting invariance.
  static Balance TotalMoney(core::Database& db, std::uint64_t customers);

 private:
  std::uint64_t PickCustomer();

  SmallBankConfig config_;
  Rng rng_;
};

// ---- Transactions ------------------------------------------------------------

// Moves all funds of customer a into customer b's checking account.
class SbAmalgamateTxn final : public txn::Transaction {
 public:
  SbAmalgamateTxn(std::uint64_t a, std::uint64_t b) : a_(a), b_(b) {}
  txn::TxnType type() const override { return kSbAmalgamate; }
  void EncodeInputs(BinaryWriter& writer) const override;
  static std::unique_ptr<txn::Transaction> Decode(BinaryReader& reader);
  void AppendStep(txn::AppendContext& ctx) override;
  void Execute(txn::ExecContext& ctx) override;

  std::uint64_t a() const { return a_; }
  std::uint64_t b() const { return b_; }

 private:
  std::uint64_t a_;
  std::uint64_t b_;
};

class SbDepositCheckingTxn final : public txn::Transaction {
 public:
  SbDepositCheckingTxn(std::uint64_t customer, Balance amount)
      : customer_(customer), amount_(amount) {}
  txn::TxnType type() const override { return kSbDepositChecking; }
  void EncodeInputs(BinaryWriter& writer) const override;
  static std::unique_ptr<txn::Transaction> Decode(BinaryReader& reader);
  void AppendStep(txn::AppendContext& ctx) override;
  void Execute(txn::ExecContext& ctx) override;

  std::uint64_t customer() const { return customer_; }
  Balance amount() const { return amount_; }

 private:
  std::uint64_t customer_;
  Balance amount_;
};

// Transfers between two customers' checking accounts; aborts on
// insufficient funds.
class SbSendPaymentTxn final : public txn::Transaction {
 public:
  SbSendPaymentTxn(std::uint64_t from, std::uint64_t to, Balance amount)
      : from_(from), to_(to), amount_(amount) {}
  txn::TxnType type() const override { return kSbSendPayment; }
  void EncodeInputs(BinaryWriter& writer) const override;
  static std::unique_ptr<txn::Transaction> Decode(BinaryReader& reader);
  void AppendStep(txn::AppendContext& ctx) override;
  void Execute(txn::ExecContext& ctx) override;

  std::uint64_t from() const { return from_; }
  std::uint64_t to() const { return to_; }
  Balance amount() const { return amount_; }

 private:
  std::uint64_t from_;
  std::uint64_t to_;
  Balance amount_;
};

// Adds amount to a savings balance; aborts if the result would be negative.
class SbTransactSavingTxn final : public txn::Transaction {
 public:
  SbTransactSavingTxn(std::uint64_t customer, Balance amount)
      : customer_(customer), amount_(amount) {}
  txn::TxnType type() const override { return kSbTransactSaving; }
  void EncodeInputs(BinaryWriter& writer) const override;
  static std::unique_ptr<txn::Transaction> Decode(BinaryReader& reader);
  void AppendStep(txn::AppendContext& ctx) override;
  void Execute(txn::ExecContext& ctx) override;

  std::uint64_t customer() const { return customer_; }
  Balance amount() const { return amount_; }

 private:
  std::uint64_t customer_;
  Balance amount_;
};

// Cashes a check against checking; aborts if savings + checking < amount.
class SbWriteCheckTxn final : public txn::Transaction {
 public:
  SbWriteCheckTxn(std::uint64_t customer, Balance amount)
      : customer_(customer), amount_(amount) {}
  txn::TxnType type() const override { return kSbWriteCheck; }
  void EncodeInputs(BinaryWriter& writer) const override;
  static std::unique_ptr<txn::Transaction> Decode(BinaryReader& reader);
  void AppendStep(txn::AppendContext& ctx) override;
  void Execute(txn::ExecContext& ctx) override;

  std::uint64_t customer() const { return customer_; }
  Balance amount() const { return amount_; }

 private:
  std::uint64_t customer_;
  Balance amount_;
};

}  // namespace nvc::workload
