// TPC-C workload (paper section 6.2.3, Table 3) with Caracal's two
// determinism modifications:
//
//   * Payment receives the customer ID as a transaction input instead of a
//     by-last-name lookup;
//   * NewOrder draws its order id from an atomic per-district counter during
//     the insert step instead of incrementing D_NEXT_O_ID.
//
// Because the counters make execution not fully deterministic across replay,
// the TPC-C spec uses RecoveryPolicy::kRevertAndReplay (paper 6.2.3): the
// engine persists the counters each epoch and recovery reverts all versions
// written by the crashed epoch before replaying.
//
// Beyond the paper, Delivery is determinized one step further: it only
// delivers orders placed in *previous* epochs (epoch-start counter
// snapshot), so its write set is computable during initialization from
// stable rows.
//
// Schema notes: keys are bit-packed into 64 bits; row payloads carry the
// fields the five transactions actually touch, trimmed to inline-friendly
// sizes (the paper reports almost all TPC-C values inline in 256-byte rows).
// OrderStatus uses an auxiliary customer-last-order table maintained by
// NewOrder instead of a secondary index.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/core/config.h"
#include "src/core/database.h"
#include "src/txn/transaction.h"

namespace nvc::workload {

// ---- Tables -----------------------------------------------------------------

enum TpccTable : TableId {
  kWarehouse = 0,
  kDistrict,
  kCustomer,
  kHistory,
  kNewOrderTable,
  kOrderTable,
  kOrderLine,
  kItem,
  kStock,
  kCustomerLastOrder,
  kTpccTableCount,
};

inline constexpr std::uint32_t kDistrictsPerWarehouse = 10;
inline constexpr std::uint32_t kMaxOrderLines = 15;

// ---- Key encodings -----------------------------------------------------------

inline Key WarehouseKey(std::uint64_t w) { return w; }
inline Key DistrictKey(std::uint64_t w, std::uint64_t d) { return (w << 4) | d; }
inline Key CustomerKey(std::uint64_t w, std::uint64_t d, std::uint64_t c) {
  return (DistrictKey(w, d) << 12) | c;
}
inline Key ItemKey(std::uint64_t i) { return i; }
inline Key StockKey(std::uint64_t w, std::uint64_t i) { return (w << 20) | i; }
inline Key OrderKey(std::uint64_t w, std::uint64_t d, std::uint64_t o) {
  return (DistrictKey(w, d) << 32) | o;
}
inline Key NewOrderKey(std::uint64_t w, std::uint64_t d, std::uint64_t o) {
  return OrderKey(w, d, o);
}
inline Key OrderLineKey(std::uint64_t w, std::uint64_t d, std::uint64_t o, std::uint64_t ol) {
  return ((DistrictKey(w, d) << 28 | o) << 4) | ol;
}
inline Key HistoryKey(std::uint64_t w, std::uint64_t seq) { return (w << 40) | seq; }

// ---- Row payloads --------------------------------------------------------------

struct WarehouseRow {
  std::int64_t ytd;
  std::int32_t tax_pct;  // basis points
  char name[20];
};

struct DistrictRow {
  std::int64_t ytd;
  std::int32_t tax_pct;
  char name[20];
};

struct CustomerRow {
  std::int64_t balance;
  std::int64_t ytd_payment;
  std::int32_t payment_cnt;
  std::int32_t delivery_cnt;
  char last_name[16];
  char credit[2];
  char pad[6];
};

struct ItemRow {
  std::int64_t price;
  std::int32_t im_id;
  char name[20];
};

struct StockRow {
  std::int32_t quantity;
  std::int32_t order_cnt;
  std::int32_t remote_cnt;
  std::int32_t pad;
  std::int64_t ytd;
  char dist_info[24];
};

struct OrderRow {
  std::uint32_t c_id;
  std::uint32_t carrier_id;  // 0 = undelivered
  std::uint32_t ol_cnt;
  std::uint32_t all_local;
  std::int64_t entry_date;
};

struct NewOrderRow {
  std::uint64_t flag;
};

struct OrderLineRow {
  std::uint32_t i_id;
  std::uint32_t supply_w;
  std::int64_t delivery_date;  // 0 = undelivered
  std::int32_t quantity;
  std::int32_t pad;
  std::int64_t amount;
};

struct HistoryRow {
  std::uint64_t customer_key;
  std::int64_t amount;
  std::int64_t date;
};

struct CustomerLastOrderRow {
  std::uint64_t o_id;
};

// ---- Configuration ---------------------------------------------------------------

struct TpccConfig {
  std::uint32_t warehouses = 8;  // 1 = high contention (Table 3)
  std::uint32_t items = 10'000;
  std::uint32_t customers_per_district = 300;
  std::uint32_t initial_orders_per_district = 300;  // last 30% undelivered
  // Capacity headroom for orders created at runtime (sizes the pools).
  std::uint32_t new_order_capacity = 50'000;
  std::uint64_t seed = 44;
  std::size_t row_size = 256;

  // TPC-C clause 2.4.1.4: ~1% of NewOrder transactions carry an invalid
  // item id and must roll back (before any writes; inserted rows are
  // discarded). Set to 0 to disable.
  std::uint32_t new_order_rollback_pct = 1;

  // Transaction mix in percent (standard-ish: 45/43/4/4/4).
  std::uint32_t new_order_pct = 45;
  std::uint32_t payment_pct = 43;
  std::uint32_t order_status_pct = 4;
  std::uint32_t delivery_pct = 4;  // remainder goes to StockLevel
};

// Counter ids.
inline txn::CounterId OrderCounter(const TpccConfig& config, std::uint64_t w, std::uint64_t d) {
  (void)config;
  return static_cast<txn::CounterId>((w - 1) * kDistrictsPerWarehouse + (d - 1));
}
inline txn::CounterId DeliveryCounter(const TpccConfig& config, std::uint64_t w,
                                      std::uint64_t d) {
  return static_cast<txn::CounterId>(config.warehouses * kDistrictsPerWarehouse +
                                     (w - 1) * kDistrictsPerWarehouse + (d - 1));
}
inline txn::CounterId HistoryCounter(const TpccConfig& config, std::uint64_t w) {
  return static_cast<txn::CounterId>(2 * config.warehouses * kDistrictsPerWarehouse + (w - 1));
}

class TpccWorkload {
 public:
  explicit TpccWorkload(const TpccConfig& config) : config_(config), rng_(config.seed) {}

  const TpccConfig& config() const { return config_; }

  core::DatabaseSpec Spec(std::size_t workers) const;
  void Load(core::Database& db) const;
  std::vector<std::unique_ptr<txn::Transaction>> MakeEpoch(std::size_t count);
  txn::TxnRegistry Registry() const;

  // Consistency checks used by the tests (TPC-C clause 3.3-style).
  // Sum of order-line amounts of delivered orders equals the total customer
  // balance credit from deliveries, etc. Returns false + message on failure.
  static bool CheckConsistency(core::Database& db, const TpccConfig& config,
                               std::string* message);

 private:
  std::unique_ptr<txn::Transaction> MakeNewOrder();
  std::unique_ptr<txn::Transaction> MakePayment();
  std::unique_ptr<txn::Transaction> MakeOrderStatus();
  std::unique_ptr<txn::Transaction> MakeDelivery();
  std::unique_ptr<txn::Transaction> MakeStockLevel();

  TpccConfig config_;
  Rng rng_;
};

}  // namespace nvc::workload
