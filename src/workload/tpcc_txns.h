// The five TPC-C transactions (see tpcc.h for the determinism notes).
#pragma once

#include <memory>
#include <vector>

#include "src/workload/tpcc.h"

namespace nvc::workload {

inline constexpr txn::TxnType kTpccNewOrder = 30;
inline constexpr txn::TxnType kTpccPayment = 31;
inline constexpr txn::TxnType kTpccOrderStatus = 32;
inline constexpr txn::TxnType kTpccDelivery = 33;
inline constexpr txn::TxnType kTpccStockLevel = 34;

struct NewOrderLine {
  std::uint32_t item;
  std::uint32_t supply_w;
  std::uint32_t quantity;
};

class TpccNewOrderTxn final : public txn::Transaction {
 public:
  TpccNewOrderTxn(const TpccConfig* config, std::uint32_t w, std::uint32_t d, std::uint32_t c,
                  std::int64_t entry_date, std::vector<NewOrderLine> lines)
      : config_(config), w_(w), d_(d), c_(c), entry_date_(entry_date),
        lines_(std::move(lines)) {}

  txn::TxnType type() const override { return kTpccNewOrder; }
  void EncodeInputs(BinaryWriter& writer) const override;
  static std::unique_ptr<txn::Transaction> Decode(const TpccConfig* config,
                                                  BinaryReader& reader);

  void InsertStep(txn::InsertContext& ctx) override;
  void AppendStep(txn::AppendContext& ctx) override;
  void Execute(txn::ExecContext& ctx) override;

 private:
  const TpccConfig* config_;
  std::uint32_t w_, d_, c_;
  std::int64_t entry_date_;
  std::vector<NewOrderLine> lines_;
  std::uint64_t o_id_ = 0;  // drawn in the insert step
};

class TpccPaymentTxn final : public txn::Transaction {
 public:
  TpccPaymentTxn(const TpccConfig* config, std::uint32_t w, std::uint32_t d, std::uint32_t c_w,
                 std::uint32_t c_d, std::uint32_t c, std::int64_t amount, std::int64_t date)
      : config_(config), w_(w), d_(d), c_w_(c_w), c_d_(c_d), c_(c), amount_(amount),
        date_(date) {}

  txn::TxnType type() const override { return kTpccPayment; }
  void EncodeInputs(BinaryWriter& writer) const override;
  static std::unique_ptr<txn::Transaction> Decode(const TpccConfig* config,
                                                  BinaryReader& reader);

  void InsertStep(txn::InsertContext& ctx) override;
  void AppendStep(txn::AppendContext& ctx) override;
  void Execute(txn::ExecContext& ctx) override;

 private:
  const TpccConfig* config_;
  std::uint32_t w_, d_, c_w_, c_d_, c_;
  std::int64_t amount_, date_;
};

class TpccOrderStatusTxn final : public txn::Transaction {
 public:
  TpccOrderStatusTxn(const TpccConfig* config, std::uint32_t w, std::uint32_t d, std::uint32_t c)
      : config_(config), w_(w), d_(d), c_(c) {}

  txn::TxnType type() const override { return kTpccOrderStatus; }
  void EncodeInputs(BinaryWriter& writer) const override;
  static std::unique_ptr<txn::Transaction> Decode(const TpccConfig* config,
                                                  BinaryReader& reader);

  void Execute(txn::ExecContext& ctx) override;  // read-only

 private:
  const TpccConfig* config_;
  std::uint32_t w_, d_, c_;
};

class TpccDeliveryTxn final : public txn::Transaction {
 public:
  TpccDeliveryTxn(const TpccConfig* config, std::uint32_t w, std::uint32_t carrier,
                  std::int64_t date)
      : config_(config), w_(w), carrier_(carrier), date_(date) {}

  txn::TxnType type() const override { return kTpccDelivery; }
  void EncodeInputs(BinaryWriter& writer) const override;
  static std::unique_ptr<txn::Transaction> Decode(const TpccConfig* config,
                                                  BinaryReader& reader);

  void InsertStep(txn::InsertContext& ctx) override;
  void AppendStep(txn::AppendContext& ctx) override;
  void Execute(txn::ExecContext& ctx) override;

 private:
  const TpccConfig* config_;
  std::uint32_t w_, carrier_;
  std::int64_t date_;
  // Per-district order picked in the insert step (0 = none undelivered) and
  // the order metadata read in the append step.
  std::array<std::uint64_t, kDistrictsPerWarehouse> o_ids_{};
  std::array<std::uint32_t, kDistrictsPerWarehouse> customers_{};
  std::array<std::uint32_t, kDistrictsPerWarehouse> ol_counts_{};
};

class TpccStockLevelTxn final : public txn::Transaction {
 public:
  TpccStockLevelTxn(const TpccConfig* config, std::uint32_t w, std::uint32_t d,
                    std::int32_t threshold)
      : config_(config), w_(w), d_(d), threshold_(threshold) {}

  txn::TxnType type() const override { return kTpccStockLevel; }
  void EncodeInputs(BinaryWriter& writer) const override;
  static std::unique_ptr<txn::Transaction> Decode(const TpccConfig* config,
                                                  BinaryReader& reader);

  void Execute(txn::ExecContext& ctx) override;  // read-only

 private:
  const TpccConfig* config_;
  std::uint32_t w_, d_;
  std::int32_t threshold_;
};

}  // namespace nvc::workload
