// Persistent NVMM row index (the paper's section-7 future work: "persisting
// the row indexes to NVMM to improve recovery time... our epoch-based design
// will allow persisting index updates in batches efficiently").
//
// One open-addressing hash table per table lives in NVMM. The engine
// accumulates index *deltas* (row inserts and deletes) during each epoch and
// applies them in a batch during the checkpoint, before the epoch number is
// persisted. Each slot carries the epoch that added it and the epoch that
// deleted it, which makes a torn batch application recoverable without any
// logging:
//
//   * a slot with epoch_added == crashed epoch is ignored on recovery (the
//     row's allocation was reverted with the pools; deterministic replay
//     re-inserts it and re-applies the delta idempotently);
//   * a slot with epoch_deleted == crashed epoch is resurrected (the delete
//     reverted; replay re-deletes it);
//   * everything else reflects the last checkpointed epoch exactly.
//
// Recovery then rebuilds the DRAM index by iterating the compact 32-byte
// slots instead of scanning full persistent rows — roughly rows_size/16 less
// NVMM read volume (see bench/ext_persistent_index.cc).
#pragma once

#include <cstdint>
#include <functional>

#include "src/common/types.h"
#include "src/sim/nvm_device.h"

namespace nvc::index {

class PersistentIndex {
 public:
  // Slots are 32 bytes; capacity is rounded up to a power of two and sized
  // for a load factor <= 0.5.
  static std::size_t RequiredBytes(std::uint64_t max_rows);

  PersistentIndex(sim::NvmDevice& device, std::uint64_t base_offset, std::uint64_t max_rows);

  void Format();

  // ---- Batch application (checkpoint path) ---------------------------------
  // Applies one insert/delete; the caller persists in ranges via Flush()
  // after a batch (or relies on the checkpoint fence). Both operations are
  // idempotent, so a replayed epoch may re-apply its deltas.
  //
  // Concurrency: callers sharded by key hash may apply concurrently, as long
  // as all operations on one key come from one thread (the parallel tail's
  // owner sharding guarantees this). Free slots are claimed with a CAS
  // through an intermediate kBusy state, published with a release store of
  // kUsed; probers acquire-load the state word before trusting a slot's key.
  void ApplyInsert(Key key, std::uint64_t prow, Epoch epoch, std::size_t core);
  void ApplyDelete(Key key, Epoch epoch, std::size_t core);

  // ---- Recovery -------------------------------------------------------------
  // Invokes fn(key, prow) for every row live as of last_checkpointed_epoch,
  // applying the crashed-epoch rules above. Charges NVMM reads for the slot
  // array.
  void ForEachLive(Epoch last_checkpointed_epoch,
                   const std::function<void(Key, std::uint64_t)>& fn, std::size_t core) const;

  std::uint64_t live_slots() const;
  std::uint64_t capacity() const { return capacity_; }

 private:
  struct Slot {
    Key key;
    std::uint64_t prow;
    std::uint32_t epoch_added;
    std::uint32_t epoch_deleted;
    std::uint64_t state;  // 0 = free, 1 = used, 2 = claimed mid-publish
  };
  static_assert(sizeof(Slot) == 32);

  static constexpr std::uint64_t kFree = 0;
  static constexpr std::uint64_t kUsed = 1;
  // Transient DRAM-side claim marker: a worker CASed the slot and is filling
  // the payload fields. Never persisted — the claiming worker stores kUsed
  // before the slot's only Persist, and crash hooks cannot fire mid-apply —
  // so the on-NVMM image only ever holds kFree or kUsed.
  static constexpr std::uint64_t kBusy = 2;

  Slot* SlotAt(std::uint64_t index) const {
    return device_.As<Slot>(base_ + index * sizeof(Slot));
  }
  std::uint64_t SlotOffset(std::uint64_t index) const { return base_ + index * sizeof(Slot); }

  sim::NvmDevice& device_;
  std::uint64_t base_;
  std::uint64_t capacity_;  // power of two
  std::uint64_t mask_;
};

}  // namespace nvc::index
