#include "src/index/ordered_index.h"

#include <cassert>
#include <cstdlib>
#include <new>

namespace nvc::index {

OrderedIndex::OrderedIndex(TableId table) : table_(table) {
  head_ = NewNode(0, nullptr, kMaxHeight);
  for (int h = 0; h < kMaxHeight; ++h) {
    head_->next[h] = nullptr;
  }
  approx_bytes_ = NodeBytes(kMaxHeight);
}

OrderedIndex::~OrderedIndex() {
  Node* node = head_;
  while (node != nullptr) {
    Node* next = node->next[0];
    DeleteNode(node);
    node = next;
  }
}

std::size_t OrderedIndex::NodeBytes(int height) {
  return sizeof(Node) + (static_cast<std::size_t>(height) - 1) * sizeof(Node*);
}

OrderedIndex::Node* OrderedIndex::NewNode(Key key, vstore::RowEntry* entry, int height) {
  void* raw = ::operator new(NodeBytes(height));
  Node* node = static_cast<Node*>(raw);
  node->key = key;
  node->entry = entry;
  node->height = height;
  return node;
}

void OrderedIndex::DeleteNode(Node* node) { ::operator delete(static_cast<void*>(node)); }

OrderedIndex::Node* OrderedIndex::FindGreaterOrEqual(Key target, Node** prev) const {
  Node* node = head_;
  for (int h = max_height_ - 1; h >= 0; --h) {
    while (node->next[h] != nullptr && node->next[h]->key < target) {
      node = node->next[h];
    }
    if (prev != nullptr) {
      prev[h] = node;
    }
  }
  return node->next[0];
}

OrderedIndex::Node* OrderedIndex::FindLastLessOrEqual(Key target) const {
  Node* node = head_;
  for (int h = max_height_ - 1; h >= 0; --h) {
    while (node->next[h] != nullptr && node->next[h]->key <= target) {
      node = node->next[h];
    }
  }
  return node == head_ ? nullptr : node;
}

bool OrderedIndex::Insert(Key key, vstore::RowEntry* entry) {
  Node* prev[kMaxHeight];
  for (int h = max_height_; h < kMaxHeight; ++h) {
    prev[h] = head_;
  }
  Node* existing = FindGreaterOrEqual(key, prev);
  if (existing != nullptr && existing->key == key) {
    return false;
  }
  const int height = TowerHeight(table_, key);
  if (height > max_height_) {
    max_height_ = height;
  }
  Node* node = NewNode(key, entry, height);
  for (int h = 0; h < height; ++h) {
    node->next[h] = prev[h]->next[h];
    prev[h]->next[h] = node;
  }
  ++size_;
  approx_bytes_ += NodeBytes(height);
  return true;
}

bool OrderedIndex::Erase(Key key) {
  Node* prev[kMaxHeight];
  for (int h = max_height_; h < kMaxHeight; ++h) {
    prev[h] = head_;
  }
  Node* node = FindGreaterOrEqual(key, prev);
  if (node == nullptr || node->key != key) {
    return false;
  }
  for (int h = 0; h < node->height; ++h) {
    assert(prev[h]->next[h] == node);
    prev[h]->next[h] = node->next[h];
  }
  // max_height_ is left as a high-water mark; searches just walk empty
  // levels, which stays O(1) per level.
  --size_;
  approx_bytes_ -= NodeBytes(node->height);
  DeleteNode(node);
  return true;
}

vstore::RowEntry* OrderedIndex::Find(Key key) const {
  Node* node = FindGreaterOrEqual(key, nullptr);
  return node != nullptr && node->key == key ? node->entry : nullptr;
}

bool OrderedIndex::FirstInRange(Key lo, Key hi, Key* found) const {
  Node* node = FindGreaterOrEqual(lo, nullptr);
  if (node == nullptr || node->key > hi) {
    return false;
  }
  *found = node->key;
  return true;
}

bool OrderedIndex::LastInRange(Key lo, Key hi, Key* found) const {
  Node* node = FindLastLessOrEqual(hi);
  if (node == nullptr || node->key < lo) {
    return false;
  }
  *found = node->key;
  return true;
}

bool OrderedIndex::ForRangeWhile(
    Key lo, Key hi, const std::function<bool(Key, vstore::RowEntry*)>& fn) const {
  for (Node* node = FindGreaterOrEqual(lo, nullptr);
       node != nullptr && node->key <= hi; node = node->next[0]) {
    if (!fn(node->key, node->entry)) {
      return false;
    }
  }
  return true;
}

void OrderedIndex::Clear() {
  Node* node = head_->next[0];
  while (node != nullptr) {
    Node* next = node->next[0];
    DeleteNode(node);
    node = next;
  }
  for (int h = 0; h < kMaxHeight; ++h) {
    head_->next[h] = nullptr;
  }
  max_height_ = 1;
  size_ = 0;
  approx_bytes_ = NodeBytes(kMaxHeight);
}

std::uint64_t OrderedIndex::StructureHash() const {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xFF;
      h *= 1099511628211ULL;
    }
  };
  for (const Node* node = head_->next[0]; node != nullptr; node = node->next[0]) {
    mix(node->key);
    mix(static_cast<std::uint64_t>(node->height));
  }
  return h;
}

}  // namespace nvc::index
