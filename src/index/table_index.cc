#include "src/index/table_index.h"

namespace nvc::index {

TableIndex::TableIndex(const TableSchema& schema, std::size_t shards)
    : schema_(schema), ordered_(schema.id) {
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

vstore::RowEntry* TableIndex::Get(Key key) {
  Shard& shard = ShardFor(key);
  SpinLatchGuard guard(shard.latch);
  auto it = shard.map.find(key);
  return it == shard.map.end() ? nullptr : it->second;
}

vstore::RowEntry* TableIndex::GetOrCreate(Key key, bool* created) {
  Shard& shard = ShardFor(key);
  vstore::RowEntry* entry = nullptr;
  {
    SpinLatchGuard guard(shard.latch);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      *created = false;
      return it->second;
    }
    shard.slab.emplace_back();
    entry = &shard.slab.back();
    entry->key = key;
    entry->table = schema_.id;
    shard.map.emplace(key, entry);
    *created = true;
  }
  if (schema_.ordered) {
    SpinLatchGuard guard(ordered_latch_);
    ordered_.Insert(key, entry);
  }
  return entry;
}

void TableIndex::Remove(Key key) {
  Shard& shard = ShardFor(key);
  {
    SpinLatchGuard guard(shard.latch);
    shard.map.erase(key);
    // The slab entry is intentionally leaked until Clear(): execution-phase
    // readers may still hold the pointer until the epoch ends.
  }
  if (schema_.ordered) {
    SpinLatchGuard guard(ordered_latch_);
    ordered_.Erase(key);
  }
}

bool TableIndex::FirstInRange(Key lo, Key hi, Key* found) {
  SpinLatchGuard guard(ordered_latch_);
  return ordered_.FirstInRange(lo, hi, found);
}

bool TableIndex::LastInRange(Key lo, Key hi, Key* found) {
  SpinLatchGuard guard(ordered_latch_);
  return ordered_.LastInRange(lo, hi, found);
}

void TableIndex::ForRange(Key lo, Key hi,
                          const std::function<void(Key, vstore::RowEntry*)>& fn) {
  SpinLatchGuard guard(ordered_latch_);
  ordered_.ForRangeWhile(lo, hi, [&fn](Key key, vstore::RowEntry* entry) {
    fn(key, entry);
    return true;
  });
}

bool TableIndex::ForRangeWhile(Key lo, Key hi,
                               const std::function<bool(Key, vstore::RowEntry*)>& fn) {
  SpinLatchGuard guard(ordered_latch_);
  return ordered_.ForRangeWhile(lo, hi, fn);
}

std::uint64_t TableIndex::OrderedStructureHash() {
  if (!schema_.ordered) {
    return 0;
  }
  SpinLatchGuard guard(ordered_latch_);
  return ordered_.StructureHash();
}

void TableIndex::ForEach(const std::function<void(Key, vstore::RowEntry*)>& fn) {
  for (auto& shard : shards_) {
    SpinLatchGuard guard(shard->latch);
    for (auto& [key, entry] : shard->map) {
      fn(key, entry);
    }
  }
}

std::size_t TableIndex::entries() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->map.size();
  }
  return total;
}

std::size_t TableIndex::ApproxBytes() const {
  // Hash node (~56 B with bucket overhead) + RowEntry slab storage, plus the
  // skiplist nodes when present.
  const std::size_t per_entry = 56 + sizeof(vstore::RowEntry);
  std::size_t total = entries() * per_entry;
  if (schema_.ordered) {
    total += ordered_.ApproxBytes();
  }
  return total;
}

void TableIndex::Clear() {
  for (auto& shard : shards_) {
    SpinLatchGuard guard(shard->latch);
    shard->map.clear();
    shard->slab.clear();
  }
  if (schema_.ordered) {
    SpinLatchGuard guard(ordered_latch_);
    ordered_.Clear();
  }
}

}  // namespace nvc::index
