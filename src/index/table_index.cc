#include "src/index/table_index.h"

namespace nvc::index {

TableIndex::TableIndex(const TableSchema& schema, std::size_t shards) : schema_(schema) {
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

vstore::RowEntry* TableIndex::Get(Key key) {
  Shard& shard = ShardFor(key);
  SpinLatchGuard guard(shard.latch);
  auto it = shard.map.find(key);
  return it == shard.map.end() ? nullptr : it->second;
}

vstore::RowEntry* TableIndex::GetOrCreate(Key key, bool* created) {
  Shard& shard = ShardFor(key);
  vstore::RowEntry* entry = nullptr;
  {
    SpinLatchGuard guard(shard.latch);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      *created = false;
      return it->second;
    }
    shard.slab.emplace_back();
    entry = &shard.slab.back();
    entry->key = key;
    entry->table = schema_.id;
    shard.map.emplace(key, entry);
    *created = true;
  }
  if (schema_.ordered) {
    SpinLatchGuard guard(ordered_latch_);
    ordered_.emplace(key, entry);
  }
  return entry;
}

void TableIndex::Remove(Key key) {
  Shard& shard = ShardFor(key);
  {
    SpinLatchGuard guard(shard.latch);
    shard.map.erase(key);
    // The slab entry is intentionally leaked until Clear(): execution-phase
    // readers may still hold the pointer until the epoch ends.
  }
  if (schema_.ordered) {
    SpinLatchGuard guard(ordered_latch_);
    ordered_.erase(key);
  }
}

bool TableIndex::FirstInRange(Key lo, Key hi, Key* found) {
  SpinLatchGuard guard(ordered_latch_);
  auto it = ordered_.lower_bound(lo);
  if (it == ordered_.end() || it->first > hi) {
    return false;
  }
  *found = it->first;
  return true;
}

bool TableIndex::LastInRange(Key lo, Key hi, Key* found) {
  SpinLatchGuard guard(ordered_latch_);
  auto it = ordered_.upper_bound(hi);
  if (it == ordered_.begin()) {
    return false;
  }
  --it;
  if (it->first < lo) {
    return false;
  }
  *found = it->first;
  return true;
}

void TableIndex::ForRange(Key lo, Key hi,
                          const std::function<void(Key, vstore::RowEntry*)>& fn) {
  SpinLatchGuard guard(ordered_latch_);
  for (auto it = ordered_.lower_bound(lo); it != ordered_.end() && it->first <= hi; ++it) {
    fn(it->first, it->second);
  }
}

void TableIndex::ForEach(const std::function<void(Key, vstore::RowEntry*)>& fn) {
  for (auto& shard : shards_) {
    SpinLatchGuard guard(shard->latch);
    for (auto& [key, entry] : shard->map) {
      fn(key, entry);
    }
  }
}

std::size_t TableIndex::entries() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->map.size();
  }
  return total;
}

std::size_t TableIndex::ApproxBytes() const {
  // Hash node (~56 B with bucket overhead) + RowEntry slab storage, plus the
  // ordered map node (~72 B) when present.
  std::size_t per_entry = 56 + sizeof(vstore::RowEntry);
  if (schema_.ordered) {
    per_entry += 72;
  }
  return entries() * per_entry;
}

void TableIndex::Clear() {
  for (auto& shard : shards_) {
    SpinLatchGuard guard(shard->latch);
    shard->map.clear();
    shard->slab.clear();
  }
  if (schema_.ordered) {
    SpinLatchGuard guard(ordered_latch_);
    ordered_.clear();
  }
}

}  // namespace nvc::index
