#include "src/index/persistent_index.h"

#include <cassert>
#include <cstring>
#include <stdexcept>

#include "src/common/hash.h"

namespace nvc::index {
namespace {

std::uint64_t NextPow2(std::uint64_t n) {
  std::uint64_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

}  // namespace

std::size_t PersistentIndex::RequiredBytes(std::uint64_t max_rows) {
  return NextPow2(max_rows * 2 + 16) * sizeof(Slot);
}

PersistentIndex::PersistentIndex(sim::NvmDevice& device, std::uint64_t base_offset,
                                 std::uint64_t max_rows)
    : device_(device), base_(base_offset), capacity_(NextPow2(max_rows * 2 + 16)),
      mask_(capacity_ - 1) {}

void PersistentIndex::Format() {
  std::memset(device_.At(base_), 0, capacity_ * sizeof(Slot));
  device_.Persist(base_, capacity_ * sizeof(Slot), 0);
}

std::uint64_t PersistentIndex::Probe(Key key) const {
  std::uint64_t index = SplitMix64(key) & mask_;
  std::uint64_t first_free = ~0ULL;
  for (std::uint64_t step = 0; step < capacity_; ++step) {
    const Slot* slot = SlotAt(index);
    if (slot->state == kFree) {
      return first_free != ~0ULL ? first_free : index;
    }
    if (slot->key == key) {
      return index;  // used slot for this key (live or tombstoned)
    }
    // Used slot for another key: keep probing. (Tombstoned slots of other
    // keys are not reused — reuse would break probe chains; the table is
    // sized for twice the live rows, and deleted keys are commonly
    // re-inserted, reusing their own slot.)
    index = (index + 1) & mask_;
  }
  return first_free;
}

void PersistentIndex::ApplyInsert(Key key, std::uint64_t prow, Epoch epoch, std::size_t core) {
  const std::uint64_t index = Probe(key);
  if (index == ~0ULL) {
    throw std::runtime_error("PersistentIndex: table full");
  }
  Slot* slot = SlotAt(index);
  // Store order: payload fields first, the state/publish word last, all in
  // one 32-byte (half-line) persist. A torn write leaves either a free slot
  // or a fully-tagged one; either is recoverable.
  slot->key = key;
  slot->prow = prow;
  slot->epoch_added = epoch;
  slot->epoch_deleted = 0;
  std::atomic_signal_fence(std::memory_order_seq_cst);
  slot->state = kUsed;
  device_.Persist(SlotOffset(index), sizeof(Slot), core);
}

void PersistentIndex::ApplyDelete(Key key, Epoch epoch, std::size_t core) {
  const std::uint64_t index = Probe(key);
  if (index == ~0ULL) {
    return;  // unknown key: nothing to delete (idempotent)
  }
  Slot* slot = SlotAt(index);
  if (slot->state != kUsed || slot->key != key) {
    return;
  }
  slot->epoch_deleted = epoch;
  device_.Persist(SlotOffset(index), sizeof(Slot), core);
}

void PersistentIndex::ForEachLive(Epoch last_checkpointed_epoch,
                                  const std::function<void(Key, std::uint64_t)>& fn,
                                  std::size_t core) const {
  device_.ChargeRead(base_, capacity_ * sizeof(Slot), core);
  for (std::uint64_t index = 0; index < capacity_; ++index) {
    const Slot* slot = SlotAt(index);
    if (slot->state != kUsed) {
      continue;
    }
    if (slot->epoch_added > last_checkpointed_epoch) {
      continue;  // insert from the crashed epoch: reverted with the pools
    }
    if (slot->epoch_deleted != 0 && slot->epoch_deleted <= last_checkpointed_epoch) {
      continue;  // committed delete
    }
    // Includes tombstones of the crashed epoch: the delete reverted.
    fn(slot->key, slot->prow);
  }
}

std::uint64_t PersistentIndex::live_slots() const {
  std::uint64_t live = 0;
  for (std::uint64_t index = 0; index < capacity_; ++index) {
    const Slot* slot = SlotAt(index);
    if (slot->state == kUsed && slot->epoch_deleted == 0) {
      ++live;
    }
  }
  return live;
}

}  // namespace nvc::index
