#include "src/index/persistent_index.h"

#include <atomic>
#include <cassert>
#include <cstring>
#include <stdexcept>

#include "src/common/hash.h"
#include "src/common/latch.h"

namespace nvc::index {
namespace {

std::uint64_t NextPow2(std::uint64_t n) {
  std::uint64_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

}  // namespace

std::size_t PersistentIndex::RequiredBytes(std::uint64_t max_rows) {
  return NextPow2(max_rows * 2 + 16) * sizeof(Slot);
}

PersistentIndex::PersistentIndex(sim::NvmDevice& device, std::uint64_t base_offset,
                                 std::uint64_t max_rows)
    : device_(device), base_(base_offset), capacity_(NextPow2(max_rows * 2 + 16)),
      mask_(capacity_ - 1) {}

void PersistentIndex::Format() {
  std::memset(device_.At(base_), 0, capacity_ * sizeof(Slot));
  device_.Persist(base_, capacity_ * sizeof(Slot), 0);
}

void PersistentIndex::ApplyInsert(Key key, std::uint64_t prow, Epoch epoch, std::size_t core) {
  // Concurrent linear probe. Once a slot is published (kUsed) its key never
  // changes — a re-insert of the same key rewrites only the payload fields,
  // and tombstoned slots of other keys are not reused (reuse would break
  // probe chains; the table is sized for twice the live rows, and deleted
  // keys are commonly re-inserted, reusing their own slot). That makes a
  // plain read of slot->key safe after an acquire load observes kUsed.
  std::uint64_t index = SplitMix64(key) & mask_;
  for (std::uint64_t step = 0; step < capacity_; ++step) {
    Slot* slot = SlotAt(index);
    std::atomic_ref<std::uint64_t> state(slot->state);
    std::uint64_t observed = state.load(std::memory_order_acquire);
    while (observed == kBusy) {
      CpuRelax();
      observed = state.load(std::memory_order_acquire);
    }
    if (observed == kFree) {
      std::uint64_t expected = kFree;
      if (state.compare_exchange_strong(expected, kBusy, std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
        // Store order: payload fields first, the publish word last, all in
        // one 32-byte (half-line) persist. A torn write leaves either a free
        // slot or a fully-tagged one; either is recoverable.
        slot->key = key;
        slot->prow = prow;
        slot->epoch_added = epoch;
        slot->epoch_deleted = 0;
        state.store(kUsed, std::memory_order_release);
        device_.Persist(SlotOffset(index), sizeof(Slot), core);
        return;
      }
      // Lost the claim race: another worker took this slot for a different
      // key (same-key operations are single-threaded under the owner
      // sharding). Wait for its publish, then re-examine the slot.
      while (state.load(std::memory_order_acquire) == kBusy) {
        CpuRelax();
      }
    }
    if (slot->key == key) {
      // Re-insert into this key's own slot (live or tombstoned): refresh the
      // payload without touching key/state.
      slot->prow = prow;
      slot->epoch_added = epoch;
      slot->epoch_deleted = 0;
      device_.Persist(SlotOffset(index), sizeof(Slot), core);
      return;
    }
    index = (index + 1) & mask_;
  }
  throw std::runtime_error("PersistentIndex: table full");
}

void PersistentIndex::ApplyDelete(Key key, Epoch epoch, std::size_t core) {
  std::uint64_t index = SplitMix64(key) & mask_;
  for (std::uint64_t step = 0; step < capacity_; ++step) {
    Slot* slot = SlotAt(index);
    std::atomic_ref<std::uint64_t> state(slot->state);
    std::uint64_t observed = state.load(std::memory_order_acquire);
    while (observed == kBusy) {
      CpuRelax();
      observed = state.load(std::memory_order_acquire);
    }
    if (observed == kFree) {
      return;  // unknown key: nothing to delete (idempotent)
    }
    if (slot->key == key) {
      slot->epoch_deleted = epoch;
      device_.Persist(SlotOffset(index), sizeof(Slot), core);
      return;
    }
    index = (index + 1) & mask_;
  }
}

void PersistentIndex::ForEachLive(Epoch last_checkpointed_epoch,
                                  const std::function<void(Key, std::uint64_t)>& fn,
                                  std::size_t core) const {
  device_.ChargeRead(base_, capacity_ * sizeof(Slot), core);
  for (std::uint64_t index = 0; index < capacity_; ++index) {
    const Slot* slot = SlotAt(index);
    if (slot->state != kUsed) {
      continue;
    }
    if (slot->epoch_added > last_checkpointed_epoch) {
      continue;  // insert from the crashed epoch: reverted with the pools
    }
    if (slot->epoch_deleted != 0 && slot->epoch_deleted <= last_checkpointed_epoch) {
      continue;  // committed delete
    }
    // Includes tombstones of the crashed epoch: the delete reverted.
    fn(slot->key, slot->prow);
  }
}

std::uint64_t PersistentIndex::live_slots() const {
  std::uint64_t live = 0;
  for (std::uint64_t index = 0; index < capacity_; ++index) {
    const Slot* slot = SlotAt(index);
    if (slot->state == kUsed && slot->epoch_deleted == 0) {
      ++live;
    }
  }
  return live;
}

}  // namespace nvc::index
