// Deterministic ordered secondary index over the primary key space.
//
// A skiplist in transient memory (DRAM): the engine rebuilds it from the
// checkpointed rows + input log on recovery, exactly like the hash index —
// both are views over the same persistent rows. Tower heights are a pure
// function of the key (SplitMix64), not of a per-process RNG, so the
// structure reached after any insert/erase interleaving depends only on the
// surviving key set. That makes the index itself replay-deterministic:
// rebuilding after a crash yields a byte-identical structure, and two
// engines fed the same stream agree on every level pointer (StructureHash
// lets tests assert this directly).
//
// Concurrency contract: callers serialize all operations externally
// (TableIndex wraps every call in its ordered latch). Structural changes
// happen only in the initialization phase, at epoch boundaries, and during
// recovery rebuild; execution-phase scans only read.
#pragma once

#include <cstdint>
#include <functional>

#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/vstore/row_entry.h"

namespace nvc::index {

class OrderedIndex {
 public:
  static constexpr int kMaxHeight = 16;

  explicit OrderedIndex(TableId table);
  ~OrderedIndex();

  OrderedIndex(const OrderedIndex&) = delete;
  OrderedIndex& operator=(const OrderedIndex&) = delete;

  // Inserts the key; returns false (and changes nothing) when already
  // present. The entry pointer is stored verbatim.
  bool Insert(Key key, vstore::RowEntry* entry);

  // Removes the key; returns false when absent.
  bool Erase(Key key);

  // Point lookup; nullptr when absent.
  vstore::RowEntry* Find(Key key) const;

  // Smallest key in [lo, hi]; false when the range is empty.
  bool FirstInRange(Key lo, Key hi, Key* found) const;

  // Largest key in [lo, hi]; false when the range is empty.
  bool LastInRange(Key lo, Key hi, Key* found) const;

  // Invokes fn for each entry with key in [lo, hi] ascending until fn
  // returns false. Returns false iff fn stopped the walk early.
  bool ForRangeWhile(Key lo, Key hi,
                     const std::function<bool(Key, vstore::RowEntry*)>& fn) const;

  void Clear();

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Approximate DRAM footprint (figure 8 accounting).
  std::size_t ApproxBytes() const { return approx_bytes_; }

  // FNV-1a over (key, tower height) in ascending order: two indexes holding
  // the same key set hash identically regardless of operation history.
  std::uint64_t StructureHash() const;

  // The deterministic tower height for a key (1..kMaxHeight, p = 1/4 per
  // additional level). Exposed for the property tests.
  static int TowerHeight(TableId table, Key key) {
    std::uint64_t bits = SplitMix64(key ^ (0x9e3779b97f4a7c15ULL * (table + 1)));
    int height = 1;
    while (height < kMaxHeight && (bits & 3) == 0) {
      ++height;
      bits >>= 2;
    }
    return height;
  }

 private:
  struct Node {
    Key key;
    vstore::RowEntry* entry;
    std::int32_t height;
    Node* next[1];  // over-allocated to `height` slots
  };

  Node* NewNode(Key key, vstore::RowEntry* entry, int height);
  static void DeleteNode(Node* node);
  static std::size_t NodeBytes(int height);

  // First node with key >= target; prev[h] (when non-null) receives the
  // last node before it on each level.
  Node* FindGreaterOrEqual(Key target, Node** prev) const;

  // Last node with key <= target, or nullptr when none.
  Node* FindLastLessOrEqual(Key target) const;

  TableId table_;
  Node* head_;
  int max_height_ = 1;
  std::size_t size_ = 0;
  std::size_t approx_bytes_ = 0;
};

}  // namespace nvc::index
