// DRAM row index (paper section 4: "Currently, we store the row index in
// DRAM for performance"; rebuilt from the persistent rows after a crash).
//
// Point lookups go through a sharded hash table. Tables that need range
// operations (TPC-C order processing) additionally maintain an ordered map.
// Structural changes (inserts/removals) happen only in the initialization
// phase and at epoch boundaries, so execution-phase lookups are latch-free.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/latch.h"
#include "src/common/partition.h"
#include "src/common/types.h"
#include "src/index/ordered_index.h"
#include "src/vstore/row_entry.h"

namespace nvc::index {

struct TableSchema {
  TableId id = 0;
  std::string name;
  std::size_t row_size = kNvmAccessGranularity;  // persistent row block size
  bool ordered = false;                          // maintain the ordered map
};

class TableIndex {
 public:
  explicit TableIndex(const TableSchema& schema, std::size_t shards = 16);

  TableIndex(const TableIndex&) = delete;
  TableIndex& operator=(const TableIndex&) = delete;

  const TableSchema& schema() const { return schema_; }

  // Point lookup; nullptr when absent.
  vstore::RowEntry* Get(Key key);

  // Inserts a new entry (insert step / recovery rebuild). Returns the entry;
  // sets *created=false if the key already existed.
  vstore::RowEntry* GetOrCreate(Key key, bool* created);

  // Removes the entry for key (deferred deletion processing at epoch end).
  void Remove(Key key);

  // ---- Ordered operations (schema.ordered only) -----------------------------

  // Smallest key in [lo, hi]; false when empty.
  bool FirstInRange(Key lo, Key hi, Key* found);

  // Largest key in [lo, hi]; false when empty.
  bool LastInRange(Key lo, Key hi, Key* found);

  // Invokes fn for every entry with key in [lo, hi], ascending.
  void ForRange(Key lo, Key hi, const std::function<void(Key, vstore::RowEntry*)>& fn);

  // Like ForRange but fn returns false to stop early (range scans with a
  // row limit). Returns false iff the walk was stopped.
  bool ForRangeWhile(Key lo, Key hi, const std::function<bool(Key, vstore::RowEntry*)>& fn);

  // Structural fingerprint of the ordered index (determinism tests); 0 for
  // unordered tables.
  std::uint64_t OrderedStructureHash();

  // Invokes fn for every entry in the table, in unspecified order, holding
  // the owning shard latch (works for unordered tables too; state capture /
  // validation outside the execution phase).
  void ForEach(const std::function<void(Key, vstore::RowEntry*)>& fn);

  // ---- Accounting ------------------------------------------------------------

  std::size_t entries() const;
  // Approximate DRAM footprint of the index structures (figure 8).
  std::size_t ApproxBytes() const;

  // Clears all entries (recovery rebuilds from the NVM scan).
  void Clear();

 private:
  struct alignas(kCacheLineSize) Shard {
    SpinLatch latch;
    std::unordered_map<Key, vstore::RowEntry*> map;
    std::deque<vstore::RowEntry> slab;  // stable addresses for entries
  };

  Shard& ShardFor(Key key) {
    return *shards_[PartitionOf(schema_.id, key, shards_.size())];
  }

  TableSchema schema_;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Deterministic skiplist (see ordered_index.h); every access below takes
  // ordered_latch_, which is the index's entire concurrency story.
  SpinLatch ordered_latch_;
  OrderedIndex ordered_;
};

}  // namespace nvc::index
