// Deterministic multi-shard database: N independent Database engines behind
// one global epoch, with a fixed-point pre-epoch read exchange for
// cross-shard transactions (ROADMAP "Deterministic multi-shard scale-out";
// Calvin/Caracal-style — no 2PC voting).
//
// Keyspace partitioning is PartitionOf(table, key, shards) — the same
// deterministic partitioner the engines use internally, so routing is a pure
// function of the transaction inputs and replays identically.
//
// One global epoch proceeds as:
//
//   route      (driver)  capture each transaction's write set by running its
//                        insert/append steps against side-effect-free contexts
//                        and its read set via Transaction::DeclareReadSet;
//                        single-shard transactions pass through unchanged,
//                        cross-shard ones become per-shard SliceTxns sharing
//                        the inner transaction (slice_txn.h). A cross-shard
//                        transaction reading any key written by an earlier
//                        transaction of the same epoch is deterministically
//                        deferred to the next epoch (its snapshot reads would
//                        not be serializable), mirroring Aria's deferral.
//   exchange   (shards)  each shard publishes the previous-epoch committed
//                        values of the exchange keys it owns into a lock-free
//                        slot buffer (disjoint slots per owner, release-
//                        published), then arrives at the fixed-point barrier;
//                        after it, every slice's snapshot is resolved.
//   execute    (shards)  each shard runs its sub-batch through its own
//                        Database::ExecuteEpoch. A post-log hook holds every
//                        shard at a durability barrier until all shards'
//                        input logs are durable, so a crash never leaves one
//                        shard executed and another without a log to replay
//                        (global-epoch skew stays <= 1 and is always
//                        resolvable).
//
// Crash model: any shard crashing fails the global epoch; the object must be
// discarded, the devices crashed, and a fresh ShardedDatabase recovered.
// Recover() peeks every shard's device first and derives the single global
// replay decision (see the .cc) so all shards come back at one global epoch.
//
// v1 restrictions (checked at construction): ConcurrencyControl::kCaracal,
// no deterministic counters, no epoch pipelining, no instant recovery;
// cross-shard transactions additionally cannot use range operations (see
// slice_txn.h).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/partition.h"
#include "src/common/status.h"
#include "src/core/database.h"
#include "src/shard/slice_txn.h"
#include "src/sim/nvm_device.h"

namespace nvc::shard {

struct ShardedEpochResult {
  Epoch epoch = 0;
  std::size_t committed = 0;  // global transactions (a cross-shard txn counts once)
  std::size_t aborted = 0;
  std::size_t deferred = 0;     // router-deferred to the next global epoch
  std::size_t cross_shard = 0;  // admitted cross-shard transactions
  double seconds = 0;           // wall time of the global epoch
  double routing_seconds = 0;   // serial routing prologue (driver CPU)
  // Critical-path model for hosts with fewer cores than shards: the slowest
  // shard's thread-CPU time (exchange fill + engine epoch). On real multi-core
  // hardware wall time converges to routing + max shard CPU.
  double max_shard_cpu_seconds = 0;
  std::vector<double> shard_cpu_seconds;  // per-shard breakdown of the above
  bool crashed = false;  // some shard crashed; discard and recover
};

struct ShardedRecoveryReport {
  Epoch recovered_epoch = 0;  // the agreed global epoch
  bool replayed = false;      // the crashed global epoch was replayed
  std::vector<core::RecoveryReport> shards;
};

// Summed EngineStats across shards (the counters benches diff).
struct ShardStatsSummary {
  std::uint64_t txn_committed = 0;
  std::uint64_t txn_aborted = 0;
  std::uint64_t nvm_read_bytes = 0;
  std::uint64_t nvm_write_bytes = 0;
  std::uint64_t nvm_write_lines = 0;
  std::uint64_t nvm_persist_ops = 0;
  std::uint64_t nvm_fences = 0;
  std::uint64_t log_bytes = 0;
};

// Per-shard profiler roll-up: the combined report sums phase activity across
// shards; ToTable() emits shard-tagged sections plus the combined table.
struct ShardedProfileReport {
  nvc::ProfileReport combined;
  std::vector<nvc::ProfileReport> shards;
  std::string ToTable() const;
};

// Shard-layer crash hook: like core::CrashHook but tagged with the shard
// index. Forwarded to every engine's hook and additionally evaluated at the
// two shard-layer sites (kMidShardExchange, kMidShardEpochBarrier).
using ShardCrashHook = std::function<bool(std::size_t shard, core::CrashSite site)>;

// Observes the exact sub-batch a shard executes for an epoch, after the
// exchange resolved every slice's snapshot (ledger-identity verification:
// the same sub-batch fed to a standalone engine must produce a byte-identical
// durable-write ledger). Called on the shard's epoch thread.
using SubBatchRecorder = std::function<void(
    std::size_t shard, Epoch epoch,
    const std::vector<std::unique_ptr<txn::Transaction>>& sub_batch)>;

class ShardedDatabase {
 public:
  // Normalizes a per-shard spec: forces the sharded-mode engine overrides
  // (no pipelining — the durability barrier needs synchronous epochs and
  // bounds recovery skew to one epoch; no instant recovery) and validates
  // the v1 restrictions. Throws std::invalid_argument on violations.
  static core::DatabaseSpec ShardSpec(core::DatabaseSpec base);

  // Device bytes each shard's device needs under ShardSpec(base).
  static std::size_t RequiredDeviceBytes(const core::DatabaseSpec& base);

  // One device per shard; devices.size() is the shard count (>= 1). Devices
  // must outlive the ShardedDatabase.
  ShardedDatabase(std::vector<sim::NvmDevice*> devices, const core::DatabaseSpec& base);
  ~ShardedDatabase();

  ShardedDatabase(const ShardedDatabase&) = delete;
  ShardedDatabase& operator=(const ShardedDatabase&) = delete;

  std::size_t shards() const { return dbs_.size(); }
  core::Database& shard(std::size_t i) { return *dbs_[i]; }
  std::size_t OwnerOf(TableId table, Key key) const {
    return PartitionOf(table, key, dbs_.size());
  }

  // ---- Load ------------------------------------------------------------------
  void Format();
  void BulkLoad(TableId table, Key key, const void* data, std::uint32_t size);
  void FinalizeLoad();

  // ---- Epoch processing ------------------------------------------------------

  // Processes one global epoch across all shards (route, exchange, execute).
  // `outcomes`, when non-null, receives one entry per input slot — router-
  // deferred transactions at the front (carried from previous epochs) first,
  // then `txns` in order, exactly like the Aria deferral convention. On a
  // non-crashed return the epoch is durable on every shard.
  ShardedEpochResult ExecuteEpoch(std::vector<std::unique_ptr<txn::Transaction>> txns,
                                  std::vector<core::TxnOutcome>* outcomes = nullptr);

  // Transactions the router deferred, re-queued at the front of the next
  // global epoch (deterministic from the batch composition).
  std::size_t deferred_depth() const { return deferred_.size(); }

  Epoch current_epoch() const { return current_epoch_; }

  // ---- Recovery --------------------------------------------------------------

  // Recovers every shard to one consistent global epoch. Peeks all devices,
  // derives the global replay decision (a shard that checkpointed ahead of a
  // laggard never replays past it; a level fleet replays the next epoch only
  // when *every* shard holds a complete log for it), then runs per-shard
  // Recover with the matching allow_replay option. `registry` is the
  // workload registry; the slice decoder is added internally.
  //   kDataLoss  a device is unformatted, shards disagree by more than one
  //              epoch, or a laggard lacks the log the decision requires
  //   kAborted   a crash hook fired during a shard's replay
  StatusOr<ShardedRecoveryReport> Recover(const txn::TxnRegistry& registry);

  // The registry shard engines log/replay with (workload + slice decoder).
  txn::TxnRegistry ShardRegistry(const txn::TxnRegistry& user) const {
    return MakeShardRegistry(user);
  }

  // ---- Reads (tests, tooling; between epochs) --------------------------------
  StatusOr<std::uint32_t> ReadCommitted(TableId table, Key key, void* out,
                                        std::uint32_t cap) {
    return dbs_[OwnerOf(table, key)]->ReadCommitted(table, key, out, cap);
  }

  // ---- Crash injection -------------------------------------------------------
  void SetCrashHook(ShardCrashHook hook);

  // Engine coverage merged across shards plus the shard-layer sites.
  core::CrashSiteCoverage crash_coverage() const;

  void SetSubBatchRecorder(SubBatchRecorder recorder) { recorder_ = std::move(recorder); }

  // ---- Stats / profiling -----------------------------------------------------
  ShardStatsSummary StatsRollup() const;
  void ResetStats();
  void ConfigureProfiler(const ProfilerConfig& config);
  ShardedProfileReport ProfileReport() const;
  // One combined Chrome trace: pid = shard (process names "shard N"), tids =
  // driver/workers/tail per shard, loadable in Perfetto like the single-
  // engine export.
  bool WriteChromeTrace(const std::string& path) const;

 private:
  struct ExchangeSlot;
  struct EpochBarriers;
  struct RoutedEpoch;

  // Returns true when the hook asked to crash at the shard-layer site.
  bool MaybeCrashShard(std::size_t shard, core::CrashSite site);
  bool PostLogBarrier(std::size_t shard, Epoch epoch);
  void RouteEpoch(Epoch epoch, std::vector<std::unique_ptr<txn::Transaction>> batch,
                  RoutedEpoch& routed);
  void RunShardEpoch(std::size_t s, Epoch epoch, RoutedEpoch& routed);

  std::vector<sim::NvmDevice*> devices_;
  core::DatabaseSpec shard_spec_;
  std::vector<std::unique_ptr<core::Database>> dbs_;
  Epoch current_epoch_ = 0;

  ShardCrashHook crash_hook_;
  std::array<std::atomic<std::uint64_t>, core::kCrashSiteCount> site_reached_{};
  std::array<std::atomic<std::uint64_t>, core::kCrashSiteCount> site_fired_{};

  SubBatchRecorder recorder_;
  std::vector<std::unique_ptr<txn::Transaction>> deferred_;

  // Per-shard outcome mailboxes filled by the engines' epoch callbacks
  // (each shard thread writes only its own slot; the driver reads after join).
  std::vector<std::vector<core::TxnOutcome>> shard_outcomes_;

  // Set only while ExecuteEpoch coordinates an epoch; the post-log hooks
  // no-op outside one (per-shard recovery replay runs uncoordinated).
  EpochBarriers* active_barriers_ = nullptr;
  RoutedEpoch* active_routed_ = nullptr;
};

}  // namespace nvc::shard
