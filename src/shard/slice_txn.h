// Per-shard slice of a cross-shard transaction.
//
// The multi-shard router (sharded_db.h) turns every transaction whose
// declared read/write set spans more than one shard into N SliceTxn
// instances — one per shard that owns part of its write set — all sharing
// the same inner transaction. Each slice:
//
//   * forwards inserts, write declarations, and execution-phase writes only
//     for keys its shard owns (PartitionOf), and silently drops the rest
//     (another shard's slice applies them);
//   * serves every read — ExecContext::Read and AppendContext::ReadPreEpoch —
//     from the pre-epoch exchange snapshot resolved by the router at the
//     fixed point, overlaid with the transaction's own inserts and earlier
//     writes, so all participating shards observe identical values and reach
//     identical commit/abort decisions with no coordination during execution
//     (Calvin/Caracal-style determinism);
//   * encodes the resolved snapshot into its logged inputs, so a crashed
//     shard replays its slice from its own input log alone, without
//     re-running the exchange against peers that may have moved on.
//
// Restrictions (enforced by throwing std::logic_error): cross-shard
// transactions cannot use deterministic counters, ordered-table range
// operations, or Aria execution-phase inserts, and every key they read must
// be named by Transaction::DeclareReadSet.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/common/partition.h"
#include "src/common/serializer.h"
#include "src/common/types.h"
#include "src/txn/transaction.h"

namespace nvc::shard {

// Reserved type tag for shard slices; workload types must stay below it.
inline constexpr txn::TxnType kSliceTxnType = 0xFFFFFF01;

// One resolved pre-epoch read: the owning shard's committed value for
// (table, key) as of the epoch before the slice's epoch, or "absent".
struct SliceRead {
  TableId table = 0;
  Key key = 0;
  bool present = false;
  std::vector<std::uint8_t> value;
};

class SliceTxn final : public txn::Transaction {
 public:
  SliceTxn(std::shared_ptr<txn::Transaction> inner, std::uint32_t shard_index,
           std::uint32_t shard_count)
      : inner_(std::move(inner)), shard_index_(shard_index), shard_count_(shard_count) {}

  // Installs the resolved read snapshot (router, after the exchange fixed
  // point; also the decoder, from the logged inputs). Must be sorted by
  // (table, key) — lookups binary-search.
  void SetReads(std::vector<SliceRead> reads) {
    reads_ = std::move(reads);
    reads_resolved_ = true;
  }
  bool reads_resolved() const { return reads_resolved_; }

  const txn::Transaction& inner() const { return *inner_; }
  std::uint32_t shard_index() const { return shard_index_; }
  std::uint32_t shard_count() const { return shard_count_; }

  txn::TxnType type() const override { return kSliceTxnType; }

  void EncodeInputs(BinaryWriter& writer) const override {
    if (!reads_resolved_) {
      throw std::logic_error("SliceTxn: encoding before the exchange resolved its reads");
    }
    writer.Put<std::uint32_t>(inner_->type());
    inner_->EncodeInputs(writer);
    writer.Put<std::uint32_t>(shard_index_);
    writer.Put<std::uint32_t>(shard_count_);
    writer.Put<std::uint32_t>(static_cast<std::uint32_t>(reads_.size()));
    for (const SliceRead& r : reads_) {
      writer.Put<TableId>(r.table);
      writer.Put<Key>(r.key);
      writer.Put<std::uint8_t>(r.present ? 1 : 0);
      writer.Put<std::uint32_t>(static_cast<std::uint32_t>(r.value.size()));
      writer.PutBytes(r.value.data(), r.value.size());
    }
  }

  void InsertStep(txn::InsertContext& ctx) override;
  void AppendStep(txn::AppendContext& ctx) override;
  void Execute(txn::ExecContext& ctx) override;

  void DeclareReadSet(const std::function<void(TableId, Key)>& declare) const override {
    inner_->DeclareReadSet(declare);
  }

 private:
  friend class SliceInsertContext;
  friend class SliceAppendContext;
  friend class SliceExecContext;

  // A value written (or deleted / inserted) by this transaction itself,
  // overlaying the snapshot so read-your-writes matches single-engine EWV.
  struct Overlay {
    TableId table;
    Key key;
    bool present;  // false: deleted by this transaction
    std::vector<std::uint8_t> value;
  };

  bool Owned(TableId table, Key key) const {
    return PartitionOf(table, key, shard_count_) == shard_index_;
  }

  const SliceRead* FindRead(TableId table, Key key) const {
    const auto it = std::lower_bound(
        reads_.begin(), reads_.end(), std::make_pair(table, key),
        [](const SliceRead& r, const std::pair<TableId, Key>& k) {
          return r.table != k.first ? r.table < k.first : r.key < k.second;
        });
    if (it == reads_.end() || it->table != table || it->key != key) {
      return nullptr;
    }
    return &*it;
  }

  static const Overlay* FindOverlay(const std::vector<Overlay>& set, TableId table,
                                    Key key) {
    // Newest entry wins: a transaction may write the same key repeatedly.
    for (auto it = set.rbegin(); it != set.rend(); ++it) {
      if (it->table == table && it->key == key) {
        return &*it;
      }
    }
    return nullptr;
  }

  // Deterministic -1/value read through overlays and the snapshot.
  int ReadResolved(TableId table, Key key, void* out, std::uint32_t cap,
                   bool include_exec_overlay) const;

  std::shared_ptr<txn::Transaction> inner_;
  std::uint32_t shard_index_;
  std::uint32_t shard_count_;
  std::vector<SliceRead> reads_;  // sorted by (table, key)
  bool reads_resolved_ = false;
  // Rebuilt deterministically on every run (initial execution and replay).
  std::vector<Overlay> insert_overlay_;  // from InsertStep
  std::vector<Overlay> exec_overlay_;    // from Execute writes/deletes
};

// ---- Phase contexts ---------------------------------------------------------

class SliceInsertContext final : public txn::InsertContext {
 public:
  SliceInsertContext(SliceTxn& slice, txn::InsertContext& engine)
      : slice_(slice), engine_(engine) {}

  void InsertRow(TableId table, Key key, const void* data, std::uint32_t size) override {
    const auto* bytes = static_cast<const std::uint8_t*>(data);
    slice_.insert_overlay_.push_back(
        {table, key, true,
         bytes != nullptr ? std::vector<std::uint8_t>(bytes, bytes + size)
                          : std::vector<std::uint8_t>{}});
    if (slice_.Owned(table, key)) {
      engine_.InsertRow(table, key, data, size);
    }
  }

  std::uint64_t CounterFetchAdd(txn::CounterId, std::uint64_t) override {
    throw std::logic_error("cross-shard transactions cannot use deterministic counters");
  }
  std::uint64_t CounterEpochStart(txn::CounterId) const override {
    throw std::logic_error("cross-shard transactions cannot use deterministic counters");
  }
  std::uint64_t CounterFetchAddIfLess(txn::CounterId, std::uint64_t) override {
    throw std::logic_error("cross-shard transactions cannot use deterministic counters");
  }

  Sid sid() const override { return engine_.sid(); }

 private:
  SliceTxn& slice_;
  txn::InsertContext& engine_;
};

class SliceAppendContext final : public txn::AppendContext {
 public:
  SliceAppendContext(SliceTxn& slice, txn::AppendContext& engine)
      : slice_(slice), engine_(engine) {}

  void DeclareUpdate(TableId table, Key key) override {
    if (slice_.Owned(table, key)) {
      engine_.DeclareUpdate(table, key);
    }
  }
  void DeclareDelete(TableId table, Key key) override {
    if (slice_.Owned(table, key)) {
      engine_.DeclareDelete(table, key);
    }
  }

  int ReadPreEpoch(TableId table, Key key, void* out, std::uint32_t cap) override {
    // Pre-epoch semantics: the snapshot only, no same-transaction overlays.
    return slice_.ReadResolved(table, key, out, cap, /*include_exec_overlay=*/false);
  }

  Sid sid() const override { return engine_.sid(); }

 private:
  SliceTxn& slice_;
  txn::AppendContext& engine_;
};

class SliceExecContext final : public txn::ExecContext {
 public:
  SliceExecContext(SliceTxn& slice, txn::ExecContext& engine)
      : slice_(slice), engine_(engine) {}

  int Read(TableId table, Key key, void* out, std::uint32_t cap) override {
    return slice_.ReadResolved(table, key, out, cap, /*include_exec_overlay=*/true);
  }

  void Write(TableId table, Key key, const void* data, std::uint32_t size) override {
    const auto* bytes = static_cast<const std::uint8_t*>(data);
    slice_.exec_overlay_.push_back(
        {table, key, true, std::vector<std::uint8_t>(bytes, bytes + size)});
    if (slice_.Owned(table, key)) {
      engine_.Write(table, key, data, size);
    }
  }

  void Delete(TableId table, Key key) override {
    slice_.exec_overlay_.push_back({table, key, false, {}});
    if (slice_.Owned(table, key)) {
      engine_.Delete(table, key);
    }
  }

  void Abort() override { engine_.Abort(); }

  bool FirstInRange(TableId, Key, Key, Key*) override {
    throw std::logic_error("cross-shard transactions cannot use range operations");
  }
  bool LastInRange(TableId, Key, Key, Key*) override {
    throw std::logic_error("cross-shard transactions cannot use range operations");
  }
  std::uint32_t Scan(const txn::ScanSpec&, const txn::ScanRowFn&) override {
    throw std::logic_error("cross-shard transactions cannot use range operations");
  }
  std::uint64_t CounterEpochStart(txn::CounterId) const override {
    throw std::logic_error("cross-shard transactions cannot use deterministic counters");
  }

  Sid sid() const override { return engine_.sid(); }

 private:
  SliceTxn& slice_;
  txn::ExecContext& engine_;
};

inline void SliceTxn::InsertStep(txn::InsertContext& ctx) {
  insert_overlay_.clear();  // re-executable: replay rebuilds it identically
  SliceInsertContext filter(*this, ctx);
  inner_->InsertStep(filter);
}

inline void SliceTxn::AppendStep(txn::AppendContext& ctx) {
  SliceAppendContext filter(*this, ctx);
  inner_->AppendStep(filter);
}

inline void SliceTxn::Execute(txn::ExecContext& ctx) {
  exec_overlay_.clear();
  SliceExecContext filter(*this, ctx);
  inner_->Execute(filter);
}

inline int SliceTxn::ReadResolved(TableId table, Key key, void* out, std::uint32_t cap,
                                  bool include_exec_overlay) const {
  const auto deliver = [out, cap](bool present, const std::vector<std::uint8_t>& v) {
    if (!present) {
      return -1;
    }
    const std::uint32_t n = std::min<std::uint32_t>(cap, static_cast<std::uint32_t>(v.size()));
    if (n != 0) {
      std::copy_n(v.begin(), n, static_cast<std::uint8_t*>(out));
    }
    return static_cast<int>(v.size());
  };
  if (include_exec_overlay) {
    if (const Overlay* o = FindOverlay(exec_overlay_, table, key)) {
      return deliver(o->present, o->value);
    }
    if (const Overlay* o = FindOverlay(insert_overlay_, table, key)) {
      return deliver(o->present, o->value);
    }
  }
  const SliceRead* r = FindRead(table, key);
  if (r == nullptr) {
    throw std::logic_error("cross-shard read of (" + std::to_string(table) + ", " +
                           std::to_string(key) +
                           ") was not named by DeclareReadSet — the exchange cannot "
                           "resolve undeclared keys");
  }
  return deliver(r->present, r->value);
}

// Decodes a logged slice: the inner transaction through the user registry,
// then the shard assignment and the resolved snapshot.
inline std::unique_ptr<txn::Transaction> DecodeSliceTxn(BinaryReader& reader,
                                                        const txn::TxnRegistry& user) {
  const auto inner_type = reader.Get<std::uint32_t>();
  std::unique_ptr<txn::Transaction> inner = user.Decode(inner_type, reader);
  if (inner == nullptr) {
    throw SerializeError("SliceTxn: unknown inner transaction type " +
                         std::to_string(inner_type));
  }
  const auto shard_index = reader.Get<std::uint32_t>();
  const auto shard_count = reader.Get<std::uint32_t>();
  if (shard_count == 0 || shard_index >= shard_count) {
    throw SerializeError("SliceTxn: corrupt shard assignment");
  }
  const auto n = reader.Get<std::uint32_t>();
  std::vector<SliceRead> reads;
  reads.reserve(std::min<std::size_t>(n, reader.remaining()));
  for (std::uint32_t i = 0; i < n; ++i) {
    SliceRead r;
    r.table = reader.Get<TableId>();
    r.key = reader.Get<Key>();
    r.present = reader.Get<std::uint8_t>() != 0;
    const auto size = reader.Get<std::uint32_t>();
    if (size > reader.remaining()) {
      throw SerializeError("SliceTxn: read snapshot overruns the payload");
    }
    r.value.resize(size);
    reader.GetBytes(r.value.data(), size);
    reads.push_back(std::move(r));
  }
  auto slice = std::make_unique<SliceTxn>(
      std::shared_ptr<txn::Transaction>(std::move(inner)), shard_index, shard_count);
  slice->SetReads(std::move(reads));
  return slice;
}

// The registry a shard engine recovers with: every workload decoder plus the
// slice decoder (which decodes inner transactions through the user registry).
inline txn::TxnRegistry MakeShardRegistry(const txn::TxnRegistry& user) {
  txn::TxnRegistry combined = user;
  combined.Register(kSliceTxnType,
                    [user](BinaryReader& reader) { return DecodeSliceTxn(reader, user); });
  return combined;
}

}  // namespace nvc::shard
