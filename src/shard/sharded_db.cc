#include "src/shard/sharded_db.h"

#include <time.h>

#include <algorithm>
#include <bit>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <unordered_map>
#include <set>
#include <stdexcept>
#include <thread>
#include <unordered_set>
#include <utility>

#include "src/common/hash.h"

namespace nvc::shard {
namespace {

std::uint64_t ThreadCpuNs() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

// All-or-nothing rendezvous: every party arrives and is released together,
// or any party aborts and every waiter (present and future) returns false.
class ShardBarrier {
 public:
  explicit ShardBarrier(std::size_t parties) : parties_(parties) {}

  bool ArriveAndWait() {
    std::unique_lock<std::mutex> lk(mu_);
    if (aborted_) {
      return false;
    }
    if (++arrived_ == parties_) {
      released_ = true;
      cv_.notify_all();
      return true;
    }
    cv_.wait(lk, [this] { return released_ || aborted_; });
    return released_;
  }

  void Abort() {
    std::lock_guard<std::mutex> lk(mu_);
    aborted_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::size_t parties_;
  std::size_t arrived_ = 0;
  bool released_ = false;
  bool aborted_ = false;  // sticky
};

// ---- Routing capture contexts -----------------------------------------------
// Side-effect-free stand-ins that run a transaction's insert/append steps to
// capture its write set before the epoch starts — the same idiom as the
// engine's digest collection. Transactions are re-executable by contract
// (deterministic replay requires it), so running the steps twice is safe.

class RouteInsertContext final : public txn::InsertContext {
 public:
  RouteInsertContext(std::vector<std::pair<TableId, Key>>* writes, Sid sid)
      : writes_(writes), sid_(sid) {}

  void InsertRow(TableId table, Key key, const void*, std::uint32_t) override {
    writes_->emplace_back(table, key);
  }

  std::uint64_t CounterFetchAdd(txn::CounterId, std::uint64_t) override {
    throw std::logic_error("sharded deployments do not support deterministic counters");
  }
  std::uint64_t CounterEpochStart(txn::CounterId) const override {
    throw std::logic_error("sharded deployments do not support deterministic counters");
  }
  std::uint64_t CounterFetchAddIfLess(txn::CounterId, std::uint64_t) override {
    throw std::logic_error("sharded deployments do not support deterministic counters");
  }

  Sid sid() const override { return sid_; }

 private:
  std::vector<std::pair<TableId, Key>>* writes_;
  Sid sid_;
};

class RouteAppendContext final : public txn::AppendContext {
 public:
  using ReadFn = std::function<int(TableId, Key, void*, std::uint32_t)>;

  RouteAppendContext(std::vector<std::pair<TableId, Key>>* writes, const ReadFn& read,
                     Sid sid)
      : writes_(writes), read_(read), sid_(sid) {}

  void DeclareUpdate(TableId table, Key key) override { writes_->emplace_back(table, key); }
  void DeclareDelete(TableId table, Key key) override { writes_->emplace_back(table, key); }

  int ReadPreEpoch(TableId table, Key key, void* out, std::uint32_t cap) override {
    // Routing runs strictly between epochs, so the owner shard's committed
    // state *is* the pre-epoch snapshot.
    return read_(table, key, out, cap);
  }

  Sid sid() const override { return sid_; }

 private:
  std::vector<std::pair<TableId, Key>>* writes_;
  const ReadFn& read_;
  Sid sid_;
};

}  // namespace

// ---- Private per-epoch structures -------------------------------------------

// One unique (table, key) read by an admitted cross-shard transaction this
// epoch. The owning shard fills value/present from its committed pre-epoch
// state and release-publishes `ready`; slot sets are disjoint per owner, so
// the fill is lock-free. The fixed-point barrier orders every fill before
// any consumption.
struct ShardedDatabase::ExchangeSlot {
  TableId table = 0;
  Key key = 0;
  std::size_t owner = 0;
  std::atomic<bool> ready{false};
  bool present = false;
  std::vector<std::uint8_t> value;
};

struct ShardedDatabase::EpochBarriers {
  explicit EpochBarriers(std::size_t parties) : exchange(parties), log(parties) {}
  ShardBarrier exchange;  // the fixed point: all slots filled
  ShardBarrier log;       // post-log durability barrier (PostLogBarrier)
};

struct ShardedDatabase::RoutedEpoch {
  struct GlobalSlot {
    bool deferred = false;
    // (shard, slot in that shard's sub-batch), participants ascending by
    // shard. Single-shard transactions have exactly one entry.
    std::vector<std::pair<std::size_t, std::size_t>> parts;
  };
  std::vector<GlobalSlot> slots;
  std::vector<std::vector<std::unique_ptr<txn::Transaction>>> sub_batches;
  // Per shard: the slices in its sub-batch and, parallel to them, each
  // slice's exchange-slot indices in SliceRead sort order.
  std::vector<std::vector<SliceTxn*>> slices;
  std::vector<std::vector<std::vector<std::size_t>>> slice_slots;
  std::vector<ExchangeSlot> exchange;
  std::vector<std::unique_ptr<txn::Transaction>> next_deferred;
  std::size_t cross = 0;
  // Filled by the per-shard epoch threads (each writes only its own index).
  std::vector<core::EpochResult> results;
  std::vector<std::uint64_t> cpu_ns;
  std::vector<std::uint8_t> skipped;  // barrier aborted before this shard executed
};

// ---- Construction -----------------------------------------------------------

core::DatabaseSpec ShardedDatabase::ShardSpec(core::DatabaseSpec base) {
  if (base.concurrency != core::ConcurrencyControl::kCaracal) {
    throw std::invalid_argument(
        "ShardedDatabase requires ConcurrencyControl::kCaracal: Aria's "
        "shard-local conflict deferral would diverge across shards");
  }
  if (!base.counters.empty()) {
    throw std::invalid_argument(
        "ShardedDatabase does not support deterministic counters: the routing "
        "capture cannot reproduce counter draws across shards");
  }
  // The post-log durability barrier requires synchronous epochs (a pipelined
  // tail could checkpoint epoch N while a peer has not logged it), and the
  // global recovery decision requires full, immediate replay.
  base.enable_epoch_pipeline = false;
  base.enable_instant_recovery = false;
  return base;
}

std::size_t ShardedDatabase::RequiredDeviceBytes(const core::DatabaseSpec& base) {
  return core::Database::RequiredDeviceBytes(ShardSpec(base));
}

ShardedDatabase::ShardedDatabase(std::vector<sim::NvmDevice*> devices,
                                 const core::DatabaseSpec& base)
    : devices_(std::move(devices)), shard_spec_(ShardSpec(base)) {
  if (devices_.empty()) {
    throw std::invalid_argument("ShardedDatabase needs at least one device (one per shard)");
  }
  if (devices_.size() > 64) {
    // The router tracks a transaction's participating shards as a 64-bit
    // mask on its serial hot path.
    throw std::invalid_argument("ShardedDatabase supports at most 64 shards");
  }
  for (sim::NvmDevice* device : devices_) {
    if (device == nullptr) {
      throw std::invalid_argument("ShardedDatabase: null shard device");
    }
  }
  dbs_.reserve(devices_.size());
  shard_outcomes_.resize(devices_.size());
  for (std::size_t s = 0; s < devices_.size(); ++s) {
    dbs_.push_back(std::make_unique<core::Database>(*devices_[s], shard_spec_));
    dbs_[s]->SetEpochCallback(
        [this, s](const core::EpochResult&, const std::vector<core::TxnOutcome>& outcomes) {
          shard_outcomes_[s] = outcomes;
        });
    dbs_[s]->SetPostLogHook([this, s](Epoch epoch) { return PostLogBarrier(s, epoch); });
  }
}

ShardedDatabase::~ShardedDatabase() = default;

// ---- Load -------------------------------------------------------------------

void ShardedDatabase::Format() {
  for (auto& db : dbs_) {
    db->Format();
  }
}

void ShardedDatabase::BulkLoad(TableId table, Key key, const void* data,
                               std::uint32_t size) {
  dbs_[OwnerOf(table, key)]->BulkLoad(table, key, data, size);
}

void ShardedDatabase::FinalizeLoad() {
  for (auto& db : dbs_) {
    db->FinalizeLoad();
  }
  current_epoch_ = dbs_[0]->current_epoch();
}

// ---- Crash injection --------------------------------------------------------

bool ShardedDatabase::MaybeCrashShard(std::size_t shard, core::CrashSite site) {
  const auto idx = static_cast<std::size_t>(site);
  site_reached_[idx].fetch_add(1, std::memory_order_relaxed);
  if (crash_hook_ && crash_hook_(shard, site)) {
    site_fired_[idx].fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void ShardedDatabase::SetCrashHook(ShardCrashHook hook) {
  crash_hook_ = std::move(hook);
  for (std::size_t s = 0; s < dbs_.size(); ++s) {
    if (crash_hook_) {
      dbs_[s]->SetCrashHook([this, s](core::CrashSite site) { return crash_hook_(s, site); });
    } else {
      dbs_[s]->SetCrashHook({});
    }
  }
}

core::CrashSiteCoverage ShardedDatabase::crash_coverage() const {
  core::CrashSiteCoverage cov;
  for (const auto& db : dbs_) {
    cov.Merge(db->crash_coverage());
  }
  for (std::size_t i = 0; i < core::kCrashSiteCount; ++i) {
    cov.reached[i] += site_reached_[i].load(std::memory_order_relaxed);
    cov.fired[i] += site_fired_[i].load(std::memory_order_relaxed);
  }
  return cov;
}

// ---- Epoch processing -------------------------------------------------------

bool ShardedDatabase::PostLogBarrier(std::size_t shard, Epoch epoch) {
  (void)epoch;
  EpochBarriers* barriers = active_barriers_;
  if (barriers == nullptr) {
    return true;  // uncoordinated execution (per-shard recovery replay)
  }
  if (MaybeCrashShard(shard, core::CrashSite::kMidShardEpochBarrier)) {
    barriers->log.Abort();
    return false;
  }
  return barriers->log.ArriveAndWait();
}

void ShardedDatabase::RouteEpoch(Epoch epoch,
                                 std::vector<std::unique_ptr<txn::Transaction>> batch,
                                 RoutedEpoch& routed) {
  const std::size_t n_shards = dbs_.size();
  routed.sub_batches.resize(n_shards);
  routed.slices.resize(n_shards);
  routed.slice_slots.resize(n_shards);
  routed.results.resize(n_shards);
  routed.cpu_ns.assign(n_shards, 0);
  routed.skipped.assign(n_shards, 0);
  routed.slots.resize(batch.size());

  // Keys written (updated, deleted, or inserted) by transactions admitted
  // earlier in this epoch, as HashKey digests. A hash collision defers a
  // cross-shard reader that did not actually conflict — conservative and
  // deterministic, like Aria's hashed reservation table.
  std::unordered_set<std::uint64_t> written;
  struct SlotKeyHash {
    std::size_t operator()(const std::pair<TableId, Key>& p) const {
      return static_cast<std::size_t>(HashKey(p.first, p.second));
    }
  };
  std::unordered_map<std::pair<TableId, Key>, std::size_t, SlotKeyHash> slot_index;
  std::vector<std::pair<TableId, Key>> slot_keys;

  const RouteAppendContext::ReadFn read_fn = [this](TableId table, Key key, void* out,
                                                    std::uint32_t cap) -> int {
    const StatusOr<std::uint32_t> r = dbs_[OwnerOf(table, key)]->ReadCommitted(table, key, out, cap);
    return r.ok() ? static_cast<int>(*r) : -1;
  };

  // Serial hot path: one iteration per transaction of the global epoch.
  // Participating shards are tracked as 64-bit masks (ctor caps the shard
  // count), and each declared key is hashed exactly once — the owner is
  // derived from the same digest the written-set stores (PartitionOf is
  // HashKey mod shards by definition, see src/common/partition.h).
  std::vector<std::pair<TableId, Key>> writes;
  std::vector<std::pair<TableId, Key>> reads;
  std::vector<std::uint64_t> write_hashes;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    writes.clear();
    reads.clear();
    write_hashes.clear();
    const Sid sid(epoch, static_cast<std::uint32_t>(i + 1));
    RouteInsertContext insert_ctx(&writes, sid);
    batch[i]->InsertStep(insert_ctx);
    RouteAppendContext append_ctx(&writes, read_fn, sid);
    batch[i]->AppendStep(append_ctx);
    batch[i]->DeclareReadSet([&reads](TableId t, Key k) { reads.emplace_back(t, k); });

    std::uint64_t write_mask = 0;
    for (const auto& [t, k] : writes) {
      const std::uint64_t h = HashKey(t, k);
      write_hashes.push_back(h);
      write_mask |= std::uint64_t{1} << (h % n_shards);
    }
    std::uint64_t involved_mask = write_mask;
    for (const auto& [t, k] : reads) {
      involved_mask |= std::uint64_t{1} << (HashKey(t, k) % n_shards);
    }

    RoutedEpoch::GlobalSlot& slot = routed.slots[i];
    if ((involved_mask & (involved_mask - 1)) == 0) {
      // Single-shard: pass through unchanged — full engine semantics (EWV
      // reads, scans, everything) on the home shard.
      const std::size_t home =
          involved_mask == 0 ? 0 : static_cast<std::size_t>(std::countr_zero(involved_mask));
      slot.parts.emplace_back(home, routed.sub_batches[home].size());
      routed.sub_batches[home].push_back(std::move(batch[i]));
      written.insert(write_hashes.begin(), write_hashes.end());
      continue;
    }

    // Cross-shard. Its reads come from the pre-epoch snapshot; if an earlier
    // transaction of this epoch writes any of them, snapshot reads would not
    // be serializable — defer it to the next global epoch. The first
    // transaction of an epoch is always admitted, so progress is guaranteed.
    bool conflict = false;
    for (const auto& [t, k] : reads) {
      if (written.count(HashKey(t, k)) != 0) {
        conflict = true;
        break;
      }
    }
    if (conflict) {
      slot.deferred = true;
      routed.next_deferred.push_back(std::move(batch[i]));
      continue;
    }

    ++routed.cross;
    // Participants: every shard owning part of the write set executes the
    // transaction identically; a pure cross-shard reader runs once on its
    // lowest involved shard (something must produce its outcome).
    const std::uint64_t participants =
        write_mask != 0 ? write_mask
                        : std::uint64_t{1} << std::countr_zero(involved_mask);

    // Sorted unique read keys define the slice's snapshot order (SliceTxn
    // binary-searches them).
    std::sort(reads.begin(), reads.end());
    reads.erase(std::unique(reads.begin(), reads.end()), reads.end());
    std::vector<std::size_t> read_slots;
    read_slots.reserve(reads.size());
    for (const auto& [t, k] : reads) {
      const auto [it, inserted] = slot_index.try_emplace({t, k}, slot_keys.size());
      if (inserted) {
        slot_keys.emplace_back(t, k);
      }
      read_slots.push_back(it->second);
    }

    std::shared_ptr<txn::Transaction> inner(std::move(batch[i]));
    for (std::uint64_t rest = participants; rest != 0; rest &= rest - 1) {
      const std::size_t s = static_cast<std::size_t>(std::countr_zero(rest));
      auto slice = std::make_unique<SliceTxn>(inner, static_cast<std::uint32_t>(s),
                                              static_cast<std::uint32_t>(n_shards));
      routed.slices[s].push_back(slice.get());
      routed.slice_slots[s].push_back(read_slots);
      slot.parts.emplace_back(s, routed.sub_batches[s].size());
      routed.sub_batches[s].push_back(std::move(slice));
    }
    written.insert(write_hashes.begin(), write_hashes.end());
  }

  routed.exchange = std::vector<ExchangeSlot>(slot_keys.size());
  for (std::size_t i = 0; i < slot_keys.size(); ++i) {
    routed.exchange[i].table = slot_keys[i].first;
    routed.exchange[i].key = slot_keys[i].second;
    routed.exchange[i].owner = OwnerOf(slot_keys[i].first, slot_keys[i].second);
  }
}

void ShardedDatabase::RunShardEpoch(std::size_t s, Epoch epoch, RoutedEpoch& routed) {
  EpochBarriers& barriers = *active_barriers_;
  const std::uint64_t cpu0 = ThreadCpuNs();

  // Publish the previous-epoch committed values for every exchange key this
  // shard owns. Slot sets are disjoint per owner: lock-free fills, ordered
  // before all consumers by the fixed-point barrier below.
  std::vector<std::uint8_t> buffer(1 << 16);
  for (ExchangeSlot& slot : routed.exchange) {
    if (slot.owner != s) {
      continue;
    }
    const StatusOr<std::uint32_t> r = dbs_[s]->ReadCommitted(
        slot.table, slot.key, buffer.data(), static_cast<std::uint32_t>(buffer.size()));
    if (r.ok()) {
      slot.present = true;
      slot.value.assign(buffer.begin(), buffer.begin() + *r);
    } else {
      slot.present = false;
    }
    slot.ready.store(true, std::memory_order_release);
  }

  if (MaybeCrashShard(s, core::CrashSite::kMidShardExchange)) {
    routed.results[s].crashed = true;
    routed.skipped[s] = 1;
    barriers.exchange.Abort();
    barriers.log.Abort();
    routed.cpu_ns[s] = ThreadCpuNs() - cpu0;
    return;
  }

  if (!barriers.exchange.ArriveAndWait()) {
    // A peer crashed before the fixed point; nothing was logged or executed
    // anywhere for this epoch.
    routed.skipped[s] = 1;
    routed.cpu_ns[s] = ThreadCpuNs() - cpu0;
    return;
  }

  // Fixed point reached: resolve every local slice's snapshot.
  for (std::size_t i = 0; i < routed.slices[s].size(); ++i) {
    const std::vector<std::size_t>& idxs = routed.slice_slots[s][i];
    std::vector<SliceRead> resolved;
    resolved.reserve(idxs.size());
    for (const std::size_t idx : idxs) {
      const ExchangeSlot& slot = routed.exchange[idx];
      if (!slot.ready.load(std::memory_order_acquire)) {
        throw std::logic_error("exchange slot unfilled after the fixed-point barrier");
      }
      SliceRead r;
      r.table = slot.table;
      r.key = slot.key;
      r.present = slot.present;
      r.value = slot.value;
      resolved.push_back(std::move(r));
    }
    routed.slices[s][i]->SetReads(std::move(resolved));
  }

  if (recorder_) {
    recorder_(s, epoch, routed.sub_batches[s]);
  }

  routed.results[s] = dbs_[s]->ExecuteEpoch(std::move(routed.sub_batches[s]));
  if (routed.results[s].crashed) {
    // The engine crashed (its own site, or the post-log hook returned
    // false). Release any peers still parked at a barrier.
    barriers.exchange.Abort();
    barriers.log.Abort();
  }
  routed.cpu_ns[s] = ThreadCpuNs() - cpu0;
}

ShardedEpochResult ShardedDatabase::ExecuteEpoch(
    std::vector<std::unique_ptr<txn::Transaction>> txns,
    std::vector<core::TxnOutcome>* outcomes) {
  const auto wall_start = std::chrono::steady_clock::now();
  const std::uint64_t route_cpu0 = ThreadCpuNs();
  const Epoch epoch = current_epoch_ + 1;

  // Aria convention: previously deferred transactions run at the front.
  std::vector<std::unique_ptr<txn::Transaction>> batch = std::move(deferred_);
  deferred_.clear();
  for (auto& t : txns) {
    batch.push_back(std::move(t));
  }

  RoutedEpoch routed;
  RouteEpoch(epoch, std::move(batch), routed);

  ShardedEpochResult result;
  result.epoch = epoch;
  result.deferred = routed.next_deferred.size();
  result.cross_shard = routed.cross;
  result.routing_seconds =
      static_cast<double>(ThreadCpuNs() - route_cpu0) / 1e9;

  EpochBarriers barriers(dbs_.size());
  active_barriers_ = &barriers;
  active_routed_ = &routed;
  {
    // Every shard runs every global epoch, even with an empty sub-batch:
    // epoch numbers advance in lockstep, which the recovery decision relies
    // on (global skew <= 1, all shards at one of two adjacent epochs).
    std::vector<std::thread> threads;
    threads.reserve(dbs_.size());
    for (std::size_t s = 0; s < dbs_.size(); ++s) {
      threads.emplace_back([this, s, epoch, &routed] { RunShardEpoch(s, epoch, routed); });
    }
    for (auto& t : threads) {
      t.join();
    }
  }
  active_barriers_ = nullptr;
  active_routed_ = nullptr;

  bool crashed = false;
  double max_cpu = 0;
  result.shard_cpu_seconds.resize(dbs_.size());
  for (std::size_t s = 0; s < dbs_.size(); ++s) {
    crashed = crashed || routed.results[s].crashed || routed.skipped[s] != 0;
    result.shard_cpu_seconds[s] = static_cast<double>(routed.cpu_ns[s]) / 1e9;
    max_cpu = std::max(max_cpu, result.shard_cpu_seconds[s]);
  }
  result.max_shard_cpu_seconds = max_cpu;
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  if (crashed) {
    result.crashed = true;  // discard this object, crash devices, recover
    return result;
  }

  for (std::size_t s = 0; s < dbs_.size(); ++s) {
    if (dbs_[s]->current_epoch() != epoch) {
      throw std::runtime_error("shard epoch skew after a non-crashed global epoch");
    }
  }
  current_epoch_ = epoch;
  deferred_ = std::move(routed.next_deferred);

  if (outcomes != nullptr) {
    outcomes->assign(routed.slots.size(), core::TxnOutcome::kDeferred);
  }
  for (std::size_t i = 0; i < routed.slots.size(); ++i) {
    const RoutedEpoch::GlobalSlot& slot = routed.slots[i];
    if (slot.deferred) {
      continue;  // already kDeferred; counted in result.deferred
    }
    const core::TxnOutcome o =
        shard_outcomes_[slot.parts[0].first][slot.parts[0].second];
    for (const auto& [ps, pidx] : slot.parts) {
      if (shard_outcomes_[ps][pidx] != o) {
        throw std::runtime_error(
            "cross-shard outcome divergence: participating shards disagree on a "
            "transaction's fate (determinism bug)");
      }
    }
    if (o == core::TxnOutcome::kCommitted) {
      ++result.committed;
    } else {
      ++result.aborted;
    }
    if (outcomes != nullptr) {
      (*outcomes)[i] = o;
    }
  }
  return result;
}

// ---- Recovery ---------------------------------------------------------------

StatusOr<ShardedRecoveryReport> ShardedDatabase::Recover(const txn::TxnRegistry& registry) {
  const txn::TxnRegistry shard_registry = MakeShardRegistry(registry);

  std::vector<core::Database::RecoveryPeek> peeks;
  peeks.reserve(dbs_.size());
  for (auto& db : dbs_) {
    StatusOr<core::Database::RecoveryPeek> peek = db->PeekRecovery();
    if (!peek.ok()) {
      return peek.status();
    }
    peeks.push_back(*peek);
  }

  Epoch max_cp = 0;
  Epoch min_cp = ~Epoch{0};
  for (const auto& peek : peeks) {
    max_cp = std::max(max_cp, peek.checkpointed);
    min_cp = std::min(min_cp, peek.checkpointed);
  }
  if (max_cp - min_cp > 1) {
    return Status::DataLoss("sharded recovery: shard checkpoints span epochs " +
                            std::to_string(min_cp) + ".." + std::to_string(max_cp) +
                            " — the durability barrier bounds skew to one epoch, so "
                            "the devices do not belong to one consistent deployment");
  }

  // The global decision. Laggards exist: they crashed after logging epoch
  // max_cp (the barrier guarantees no shard executes before all shards
  // logged) and must replay it to rejoin the leaders, which must not replay
  // past max_cp. A level fleet replays the next epoch only when every shard
  // holds a complete log for it (all-logged means the crash hit at or after
  // the barrier; any shard without a log proves no shard executed).
  bool replay_all = false;
  if (max_cp == min_cp) {
    replay_all = true;
    for (const auto& peek : peeks) {
      replay_all = replay_all && peek.has_next_log;
    }
  } else {
    for (std::size_t s = 0; s < peeks.size(); ++s) {
      if (peeks[s].checkpointed == min_cp && !peeks[s].has_next_log) {
        return Status::DataLoss(
            "sharded recovery: shard " + std::to_string(s) + " checkpointed epoch " +
            std::to_string(min_cp) + " without a complete log for epoch " +
            std::to_string(max_cp) + ", which a peer shard already executed");
      }
    }
  }

  ShardedRecoveryReport report;
  report.shards.reserve(dbs_.size());
  for (std::size_t s = 0; s < dbs_.size(); ++s) {
    core::Database::RecoverOptions options;
    options.allow_replay =
        (max_cp == min_cp) ? replay_all : (peeks[s].checkpointed == min_cp);
    StatusOr<core::RecoveryReport> r = dbs_[s]->Recover(shard_registry, options);
    if (!r.ok()) {
      return r.status();
    }
    if (options.allow_replay && !r->replayed) {
      return Status::DataLoss("sharded recovery: shard " + std::to_string(s) +
                              " was expected to replay epoch " +
                              std::to_string(peeks[s].checkpointed + 1) +
                              " but its log failed to decode");
    }
    report.shards.push_back(*r);
  }

  const Epoch target = (max_cp == min_cp && replay_all) ? max_cp + 1 : max_cp;
  for (std::size_t s = 0; s < dbs_.size(); ++s) {
    if (dbs_[s]->current_epoch() != target) {
      return Status::DataLoss("sharded recovery: shard " + std::to_string(s) +
                              " recovered to epoch " +
                              std::to_string(dbs_[s]->current_epoch()) +
                              " while the fleet agreed on " + std::to_string(target));
    }
  }
  current_epoch_ = target;
  report.recovered_epoch = target;
  report.replayed = replay_all || max_cp != min_cp;
  return report;
}

// ---- Stats / profiling ------------------------------------------------------

ShardStatsSummary ShardedDatabase::StatsRollup() const {
  ShardStatsSummary sum;
  for (const auto& db : dbs_) {
    const EngineStats& s = db->stats();
    sum.txn_committed += s.txn_committed.Sum();
    sum.txn_aborted += s.txn_aborted.Sum();
    sum.nvm_read_bytes += s.nvm_read_bytes.Sum();
    sum.nvm_write_bytes += s.nvm_write_bytes.Sum();
    sum.nvm_write_lines += s.nvm_write_lines.Sum();
    sum.nvm_persist_ops += s.nvm_persist_ops.Sum();
    sum.nvm_fences += s.nvm_fences.Sum();
    sum.log_bytes += s.log_bytes.Sum();
  }
  return sum;
}

void ShardedDatabase::ResetStats() {
  for (auto& db : dbs_) {
    db->stats().Reset();
  }
}

void ShardedDatabase::ConfigureProfiler(const ProfilerConfig& config) {
  for (auto& db : dbs_) {
    db->ConfigureProfiler(config);
  }
}

ShardedProfileReport ShardedDatabase::ProfileReport() const {
  ShardedProfileReport report;
  report.shards.reserve(dbs_.size());
  for (const auto& db : dbs_) {
    report.shards.push_back(db->ProfileReport());
  }
  nvc::ProfileReport& c = report.combined;
  for (const nvc::ProfileReport& r : report.shards) {
    c.enabled = c.enabled || r.enabled;
    c.epochs = std::max(c.epochs, r.epochs);  // shards run epochs in lockstep
    c.dropped_spans += r.dropped_spans;
    c.pipeline.tails += r.pipeline.tails;
    c.pipeline.tail_ns += r.pipeline.tail_ns;
    c.pipeline.tail_cpu_ns += r.pipeline.tail_cpu_ns;
    c.pipeline.overlapped_ns += r.pipeline.overlapped_ns;
    for (std::size_t p = 0; p < kPhaseCount; ++p) {
      c.phases[p].activations += r.phases[p].activations;
      c.phases[p].worker_spans += r.phases[p].worker_spans;
      c.phases[p].wall_ms += r.phases[p].wall_ms;
      c.phases[p].busy_ms += r.phases[p].busy_ms;
      c.phases[p].ops += r.phases[p].ops;
      c.phases[p].epoch_p50_ms = std::max(c.phases[p].epoch_p50_ms, r.phases[p].epoch_p50_ms);
      c.phases[p].epoch_p95_ms = std::max(c.phases[p].epoch_p95_ms, r.phases[p].epoch_p95_ms);
      c.phases[p].epoch_max_ms = std::max(c.phases[p].epoch_max_ms, r.phases[p].epoch_max_ms);
    }
    c.total += r.total;
    c.epoch_wall_p50_ms = std::max(c.epoch_wall_p50_ms, r.epoch_wall_p50_ms);
    c.epoch_wall_p95_ms = std::max(c.epoch_wall_p95_ms, r.epoch_wall_p95_ms);
    c.epoch_wall_max_ms = std::max(c.epoch_wall_max_ms, r.epoch_wall_max_ms);
  }
  return report;
}

std::string ShardedProfileReport::ToTable() const {
  std::string out;
  for (std::size_t s = 0; s < shards.size(); ++s) {
    out += "[shard " + std::to_string(s) + "]\n";
    out += shards[s].ToTable();
  }
  out += "[all shards combined]\n";
  out += combined.ToTable();
  return out;
}

bool ShardedDatabase::WriteChromeTrace(const std::string& path) const {
  std::ofstream os(path);
  if (!os) {
    return false;
  }
  os << "[\n";
  bool first = true;
  char buf[256];
  const auto emit = [&os, &first, &buf](int n) {
    (void)buf;
    if (n <= 0) {
      return;
    }
    if (!first) {
      os << ",\n";
    }
    first = false;
    os.write(buf, n);
  };
  const auto emit_spans = [&](std::uint32_t pid, std::uint32_t tid,
                              const std::vector<PhaseSpan>& spans) {
    for (const PhaseSpan& span : spans) {
      emit(std::snprintf(buf, sizeof(buf),
                         "{\"name\":\"%s\",\"cat\":\"phase\",\"ph\":\"X\",\"ts\":%.3f,"
                         "\"dur\":%.3f,\"pid\":%u,\"tid\":%u,\"args\":{\"epoch\":%u}}",
                         PhaseName(span.phase), static_cast<double>(span.start_ns) / 1e3,
                         static_cast<double>(span.dur_ns) / 1e3, pid, tid, span.epoch));
    }
  };
  const auto emit_thread_name = [&](std::uint32_t pid, std::uint32_t tid,
                                    const std::string& name) {
    emit(std::snprintf(buf, sizeof(buf),
                       "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%u,\"tid\":%u,"
                       "\"args\":{\"name\":\"%s\"}}",
                       pid, tid, name.c_str()));
  };
  for (std::size_t s = 0; s < dbs_.size(); ++s) {
    const auto pid = static_cast<std::uint32_t>(s + 1);
    emit(std::snprintf(buf, sizeof(buf),
                       "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%u,"
                       "\"args\":{\"name\":\"shard %zu\"}}",
                       pid, s));
    const PhaseProfiler& profiler = dbs_[s]->profiler();
    emit_thread_name(pid, 1, "driver");
    emit_spans(pid, 1, profiler.driver_spans());
    for (std::size_t w = 0; w < shard_spec_.workers; ++w) {
      emit_thread_name(pid, static_cast<std::uint32_t>(w + 2),
                       "worker " + std::to_string(w));
      emit_spans(pid, static_cast<std::uint32_t>(w + 2), profiler.worker_spans(w));
    }
    if (!profiler.tail_spans().empty()) {
      emit_thread_name(pid, static_cast<std::uint32_t>(kMaxCores + 2), "tail");
      emit_spans(pid, static_cast<std::uint32_t>(kMaxCores + 2), profiler.tail_spans());
    }
  }
  os << "\n]\n";
  return os.good();
}

}  // namespace nvc::shard
