// One-shot deterministic transaction model (paper section 3.1.1).
//
// A transaction receives all of its inputs up front, which lets the engine
// log the inputs to NVMM and re-execute the transaction deterministically
// during failure recovery. Each transaction participates in the three epoch
// phases through the callbacks below; the contexts are implemented by the
// engine.
//
// Write sets must be declared before execution (AppendStep). Transactions
// may abort only before issuing their first write (paper 4.6) — perform all
// reads and validity checks first, then writes.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <memory>
#include <unordered_map>

#include "src/common/serializer.h"
#include "src/common/types.h"

namespace nvc::txn {

using TxnType = std::uint32_t;
using CounterId = std::uint32_t;

// Insert-step context: creates rows and draws deterministic-order IDs.
class InsertContext {
 public:
  virtual ~InsertContext() = default;

  // Creates a new persistent row with its initial data (written to NVMM
  // directly — paper 4.1). data may be null to create the row with its
  // first version produced during execution.
  virtual void InsertRow(TableId table, Key key, const void* data, std::uint32_t size) = 0;

  // Atomically advances a registered counter (Caracal's TPC-C order-id
  // counters). NOT deterministic across replay; see RecoveryPolicy.
  virtual std::uint64_t CounterFetchAdd(CounterId counter, std::uint64_t delta) = 0;

  // The counter's value as of the start of this epoch (stable within the
  // epoch). TPC-C Delivery uses this to only pick orders from previous
  // epochs, keeping its write set readable during initialization.
  virtual std::uint64_t CounterEpochStart(CounterId counter) const = 0;

  // Atomically advances the counter only while it is below `bound`; returns
  // the previous value, or ~0 when the bound was reached (TPC-C Delivery:
  // "deliver the oldest undelivered order, if any").
  virtual std::uint64_t CounterFetchAddIfLess(CounterId counter, std::uint64_t bound) = 0;

  virtual Sid sid() const = 0;
};

// Append-step context: declares the update/delete write set.
class AppendContext {
 public:
  virtual ~AppendContext() = default;
  virtual void DeclareUpdate(TableId table, Key key) = 0;
  virtual void DeclareDelete(TableId table, Key key) = 0;

  // Reads the latest value committed before this epoch (cached or
  // persistent). Supports write sets that depend on stable row contents,
  // e.g. TPC-C Delivery reading an order's customer and line count. Must not
  // be used on rows that may have been inserted in the current epoch.
  virtual int ReadPreEpoch(TableId table, Key key, void* out, std::uint32_t cap) = 0;

  virtual Sid sid() const = 0;
};

// Declarative range scan over an ordered table (TableSchema::ordered).
// Delivers live rows with key in [lo, hi] ascending, at most `limit`.
struct ScanSpec {
  TableId table = 0;
  Key lo = 0;
  Key hi = 0;                 // inclusive upper bound
  std::uint32_t limit = ~0u;  // max live rows delivered
};

// Receives one live row per call; return false to stop the scan early.
using ScanRowFn = std::function<bool(Key key, const void* data, std::uint32_t size)>;

// Execution-phase context.
class ExecContext {
 public:
  virtual ~ExecContext() = default;

  // Reads the latest version visible to this transaction. Returns the value
  // size, or -1 when the row does not exist (for this SID). `cap` is the
  // capacity of out; larger values are truncated.
  virtual int Read(TableId table, Key key, void* out, std::uint32_t cap) = 0;

  // Writes a declared key. The data becomes visible to later transactions
  // immediately (early write visibility).
  virtual void Write(TableId table, Key key, const void* data, std::uint32_t size) = 0;

  // Deletes a declared key (tombstone version).
  virtual void Delete(TableId table, Key key) = 0;

  // User-level abort; must precede all writes of this transaction.
  virtual void Abort() = 0;

  // Inserts a new row from within execution. Supported by the Aria
  // concurrency control (buffered, applied at commit); the Caracal engine
  // creates rows in the insert step instead and throws here.
  virtual void Insert(TableId table, Key key, const void* data, std::uint32_t size) {
    (void)table;
    (void)key;
    (void)data;
    (void)size;
    throw std::logic_error("Insert from execution requires ConcurrencyControl::kAria");
  }

  // Ordered-table queries (see TableSchema::ordered).
  virtual bool FirstInRange(TableId table, Key lo, Key hi, Key* found) = 0;
  virtual bool LastInRange(TableId table, Key lo, Key hi, Key* found) = 0;

  // Ordered range scan: every live row in [spec.lo, spec.hi] visible to this
  // transaction, ascending, at most spec.limit rows; returns the number
  // delivered. Under Aria the scan's observed key interval joins the read
  // set, so a smaller-SID write inside it deterministically defers this
  // transaction (phantom-safe); under Caracal visibility is decided per row
  // by the version machinery, which replay reproduces exactly. Contexts
  // without range support (e.g. instant-recovery redo) keep this default.
  virtual std::uint32_t Scan(const ScanSpec& spec, const ScanRowFn& fn) {
    (void)spec;
    (void)fn;
    throw std::logic_error("Scan requires an ordered table and a scan-capable engine");
  }

  // Epoch-start value of a deterministic counter (read-only; stable and
  // replay-identical). TPC-C StockLevel derives "the last 20 orders" from it.
  virtual std::uint64_t CounterEpochStart(CounterId counter) const = 0;

  virtual Sid sid() const = 0;
};

class Transaction {
 public:
  virtual ~Transaction() = default;

  // Workload-unique type tag used to decode logged inputs.
  virtual TxnType type() const = 0;

  // Serializes the transaction inputs for the NVMM input log.
  virtual void EncodeInputs(BinaryWriter& writer) const = 0;

  // Initialization phase.
  virtual void InsertStep(InsertContext& ctx) { (void)ctx; }
  virtual void AppendStep(AppendContext& ctx) { (void)ctx; }

  // Execution phase.
  virtual void Execute(ExecContext& ctx) = 0;

  // Declares every (table, key) this transaction may read — through
  // ExecContext::Read or AppendContext::ReadPreEpoch — as a pure function of
  // the transaction's inputs. Single-engine execution never calls it; the
  // multi-shard router (src/shard) uses it to classify transactions and to
  // resolve cross-shard reads from the pre-epoch exchange snapshot, so in
  // sharded deployments an incomplete declaration makes a cross-shard
  // transaction's reads fail. The default declares nothing (write-only
  // transactions need no override).
  virtual void DeclareReadSet(const std::function<void(TableId, Key)>& declare) const {
    (void)declare;
  }
};

// Decodes a logged transaction of a given type back into an executable
// object (deterministic replay).
using TxnDecoder = std::function<std::unique_ptr<Transaction>(BinaryReader&)>;

class TxnRegistry {
 public:
  void Register(TxnType type, TxnDecoder decoder) { decoders_[type] = std::move(decoder); }

  std::unique_ptr<Transaction> Decode(TxnType type, BinaryReader& reader) const {
    auto it = decoders_.find(type);
    if (it == decoders_.end()) {
      return nullptr;
    }
    return it->second(reader);
  }

  bool Has(TxnType type) const { return decoders_.count(type) != 0; }

 private:
  std::unordered_map<TxnType, TxnDecoder> decoders_;
};

}  // namespace nvc::txn
