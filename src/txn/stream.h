// Serialized transaction streams: the wire/log format shared by the NVMM
// input log (src/core/input_log.*) and the replication log shipper
// (src/replication/*). Record format: repeated { type: u32, size: u32,
// payload[size] }.
#pragma once

#include <cstring>
#include <memory>
#include <stdexcept>
#include <vector>

#include "src/common/serializer.h"
#include "src/txn/transaction.h"

namespace nvc::txn {

// Encodes the inputs of txns[begin, end), in serial order. Records are
// framed independently, so concatenating the encodings of consecutive ranges
// yields exactly the whole-stream encoding — the parallel input-log path
// relies on this to serialize disjoint ranges on different workers.
inline std::vector<std::uint8_t> EncodeTxnRange(
    const std::vector<std::unique_ptr<Transaction>>& txns, std::size_t begin, std::size_t end) {
  std::vector<std::uint8_t> payload;
  payload.reserve(64 * (end - begin));
  BinaryWriter writer(payload);
  for (std::size_t i = begin; i < end; ++i) {
    const auto& txn = txns[i];
    writer.Put<std::uint32_t>(txn->type());
    const std::size_t size_pos = payload.size();
    writer.Put<std::uint32_t>(0);
    const std::size_t body_start = payload.size();
    txn->EncodeInputs(writer);
    const auto body_size = static_cast<std::uint32_t>(payload.size() - body_start);
    std::memcpy(payload.data() + size_pos, &body_size, sizeof(body_size));
  }
  return payload;
}

// Encodes the inputs of all transactions, in serial order.
inline std::vector<std::uint8_t> EncodeTxnStream(
    const std::vector<std::unique_ptr<Transaction>>& txns) {
  return EncodeTxnRange(txns, 0, txns.size());
}

// Decodes `count` transactions back out of a stream. Throws when a type is
// not registered.
inline std::vector<std::unique_ptr<Transaction>> DecodeTxnStream(
    const std::uint8_t* data, std::size_t bytes, std::uint32_t count,
    const TxnRegistry& registry) {
  BinaryReader reader(data, bytes);
  std::vector<std::unique_ptr<Transaction>> txns;
  txns.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto type = reader.Get<std::uint32_t>();
    const auto size = reader.Get<std::uint32_t>();
    if (size > reader.remaining()) {
      // A torn or bit-flipped size field must not extend the record past the
      // payload: the body reader below would otherwise cover bytes outside
      // the buffer and every Get from it would be UB.
      throw SerializeError("DecodeTxnStream: record " + std::to_string(i) + " claims " +
                           std::to_string(size) + " bytes but only " +
                           std::to_string(reader.remaining()) + " remain");
    }
    BinaryReader body(data + reader.pos(), size);
    auto txn = registry.Decode(type, body);
    if (txn == nullptr) {
      throw std::runtime_error("DecodeTxnStream: unregistered transaction type " +
                               std::to_string(type));
    }
    txns.push_back(std::move(txn));
    reader.Skip(size);
  }
  return txns;
}

}  // namespace nvc::txn
