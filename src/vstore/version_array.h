// Transient sorted version arrays (paper sections 3.1.2 and 4.1).
//
// Unlike a traditional MVCC linked list, Caracal stores all row versions of
// an epoch in a sorted array, built during the append step of the
// initialization phase and discarded with the transient pool at epoch end.
// Entry 0 is the *initial version* — a copy of the row's value from before
// this epoch — so execution-phase readers resolve every read from the array
// with one binary search.
//
// Entry states double as the value pointer:
//   kPending   — placeholder created in the append step; readers spin-wait
//   kIgnore    — transaction aborted (paper 4.6) or no pre-epoch value exists
//   kTombstone — row deleted by this version's transaction
//   otherwise  — pointer to a TransientValue in the transient pool
#pragma once

#include <atomic>
#include <cstdint>

#include "src/alloc/transient_pool.h"
#include "src/common/types.h"

namespace nvc::vstore {

inline constexpr std::uint64_t kPending = 0;
inline constexpr std::uint64_t kIgnore = 1;
inline constexpr std::uint64_t kTombstone = 2;

// Value bytes in the transient pool, prefixed with their size.
struct TransientValue {
  std::uint32_t size;
  // data bytes follow
  std::uint8_t* data() { return reinterpret_cast<std::uint8_t*>(this + 1); }
  const std::uint8_t* data() const { return reinterpret_cast<const std::uint8_t*>(this + 1); }
};

struct VersionEntry {
  std::uint64_t sid;
  std::atomic<std::uint64_t> state;

  bool IsValuePointer(std::uint64_t s) const { return s > kTombstone; }
};

class VersionArray {
 public:
  // Creates an array in the transient pool with one slot for the initial
  // version (sid 0), whose state the caller sets.
  static VersionArray* Create(alloc::TransientPool& pool, std::size_t core);

  // Batch-append variant: exact capacity for `versions` appends is reserved
  // up front, so no growth-copies happen.
  static VersionArray* CreateWithCapacity(alloc::TransientPool& pool, std::size_t core,
                                          std::uint32_t versions);

  // Sorted insert of a pending version for `sid` (append step; caller holds
  // the row latch). Grows the array in the transient pool as needed.
  void Append(alloc::TransientPool& pool, std::size_t core, Sid sid);

  std::uint32_t count() const { return count_; }
  VersionEntry& entry(std::uint32_t i) { return entries_[i]; }
  const VersionEntry& entry(std::uint32_t i) const { return entries_[i]; }

  // Index of the exact entry for sid (the writer's own slot), or -1.
  int FindSlot(Sid sid) const;

  // Index of the latest entry with sid strictly smaller than `sid`
  // (readers); always >= 0 because slot 0 is the initial version.
  int LatestBefore(Sid sid) const;

  // True when `sid` owns the last (highest-SID) slot, i.e. its write is the
  // epoch's final write for this row.
  bool IsFinal(Sid sid) const { return count_ > 0 && entries_[count_ - 1].sid == sid.raw(); }

  VersionEntry& last() { return entries_[count_ - 1]; }

 private:
  std::uint32_t count_ = 0;
  std::uint32_t capacity_ = 0;
  VersionEntry* entries_ = nullptr;
};

}  // namespace nvc::vstore
