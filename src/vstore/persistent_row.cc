#include "src/vstore/persistent_row.h"

namespace nvc::vstore {

ValueLoc PersistentRow::FindInlineSpace(std::uint32_t size) const {
  const std::size_t heap = inline_heap_size();
  if (size > heap) {
    return ValueLoc{};
  }
  const std::uint64_t heap_off = inline_heap_offset();
  const std::size_t half = heap / 2;

  // Candidate placements: two half-heap slots when the value fits in a half,
  // otherwise the single whole-heap slot.
  std::uint64_t candidates[2];
  int candidate_count = 0;
  if (size <= half && half > 0) {
    candidates[candidate_count++] = heap_off;
    candidates[candidate_count++] = heap_off + half;
  } else {
    candidates[candidate_count++] = heap_off;
  }

  const PersistentRowHeader* h = header();
  for (int c = 0; c < candidate_count; ++c) {
    const std::uint64_t begin = candidates[c];
    const std::uint64_t end = begin + size;
    bool overlaps = false;
    for (const VersionDesc& desc : h->v) {
      const ValueLoc live(desc.loc);
      if (live.is_null() || !live.is_inline()) {
        continue;
      }
      const std::uint64_t live_begin = live.offset();
      const std::uint64_t live_end = live_begin + live.size();
      if (begin < live_end && live_begin < end) {
        overlaps = true;
        break;
      }
    }
    if (!overlaps) {
      return ValueLoc::Make(/*is_inline=*/true, size, begin);
    }
  }
  return ValueLoc{};
}

void PersistentRow::ReadValue(const VersionDesc& desc, void* out, std::size_t core) const {
  const ValueLoc loc(desc.loc);
  assert(!loc.is_null());
  if (loc.is_inline()) {
    // Inline values ride on the same 256 B granule(s) as the header in the
    // common 256 B-row case; charging the whole row captures that locality.
    device_->ChargeRead(offset_, row_size_, core);
  } else {
    device_->ChargeRead(offset_, kRowHeaderSize, core);
    device_->ChargeRead(loc.offset(), loc.size(), core);
  }
  std::memcpy(out, device_->At(loc.offset()), loc.size());
}

}  // namespace nvc::vstore
