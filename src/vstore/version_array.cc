#include "src/vstore/version_array.h"

#include <cassert>
#include <cstring>

namespace nvc::vstore {
namespace {
constexpr std::uint32_t kInitialCapacity = 4;
}

VersionArray* VersionArray::Create(alloc::TransientPool& pool, std::size_t core) {
  return CreateWithCapacity(pool, core, kInitialCapacity - 1);
}

VersionArray* VersionArray::CreateWithCapacity(alloc::TransientPool& pool, std::size_t core,
                                               std::uint32_t versions) {
  auto* array = static_cast<VersionArray*>(pool.Alloc(core, sizeof(VersionArray)));
  array->count_ = 1;
  array->capacity_ = versions + 1;  // +1 for the initial version
  array->entries_ = static_cast<VersionEntry*>(
      pool.Alloc(core, array->capacity_ * sizeof(VersionEntry)));
  array->entries_[0].sid = 0;
  array->entries_[0].state.store(kPending, std::memory_order_relaxed);
  return array;
}

void VersionArray::Append(alloc::TransientPool& pool, std::size_t core, Sid sid) {
  if (count_ == capacity_) {
    const std::uint32_t new_capacity = capacity_ * 2;
    auto* grown =
        static_cast<VersionEntry*>(pool.Alloc(core, new_capacity * sizeof(VersionEntry)));
    for (std::uint32_t i = 0; i < count_; ++i) {
      grown[i].sid = entries_[i].sid;
      grown[i].state.store(entries_[i].state.load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
    }
    entries_ = grown;
    capacity_ = new_capacity;
  }
  // Sorted insert. Appends mostly arrive in near-sorted order, so scan from
  // the back. Long arrays on hot rows make this quadratic — the append-phase
  // slowdown the paper observes for contended small-row YCSB (section 6.9).
  std::uint32_t pos = count_;
  while (pos > 0 && entries_[pos - 1].sid > sid.raw()) {
    entries_[pos].sid = entries_[pos - 1].sid;
    entries_[pos].state.store(entries_[pos - 1].state.load(std::memory_order_relaxed),
                              std::memory_order_relaxed);
    --pos;
  }
  assert(pos == 0 || entries_[pos - 1].sid != sid.raw());
  entries_[pos].sid = sid.raw();
  entries_[pos].state.store(kPending, std::memory_order_relaxed);
  ++count_;
}

int VersionArray::FindSlot(Sid sid) const {
  std::uint32_t lo = 0;
  std::uint32_t hi = count_;
  while (lo < hi) {
    const std::uint32_t mid = (lo + hi) / 2;
    if (entries_[mid].sid < sid.raw()) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < count_ && entries_[lo].sid == sid.raw()) {
    return static_cast<int>(lo);
  }
  return -1;
}

int VersionArray::LatestBefore(Sid sid) const {
  std::uint32_t lo = 0;
  std::uint32_t hi = count_;
  while (lo < hi) {
    const std::uint32_t mid = (lo + hi) / 2;
    if (entries_[mid].sid < sid.raw()) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return static_cast<int>(lo) - 1;
}

}  // namespace nvc::vstore
