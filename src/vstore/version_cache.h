// DRAM cache of persistent row values with epoch-based LRU eviction
// (paper sections 4.2 and 5.2).
//
// Each cached value carries the epoch of its last access. Values are placed
// on the eviction list of their creation epoch; when epoch E starts, the
// list for epoch E-K-1 is processed: entries whose last access is still
// <= E-K-1 are evicted, the rest are moved to the list of their last-access
// epoch. Because eviction runs in the initialization phase, it requires no
// synchronization with transaction execution.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "src/common/stats.h"
#include "src/common/types.h"
#include "src/vstore/row_entry.h"

namespace nvc::vstore {

class VersionCache {
 public:
  // max_entries caps the number of cached values (Table 4's "Max Number of
  // Cache Entries"); k is the LRU window in epochs.
  VersionCache(std::size_t max_entries, Epoch k, std::size_t cores);

  VersionCache(const VersionCache&) = delete;
  VersionCache& operator=(const VersionCache&) = delete;

  ~VersionCache();

  // Installs (or replaces) the cached value of `entry` with `data`. Returns
  // false when the cache is full and the row was not previously cached.
  // Caller must hold the row latch or otherwise be the only mutator.
  bool Put(RowEntry* entry, const void* data, std::uint32_t size, Epoch now, std::size_t core);

  // Notes a read hit (updates the LRU epoch).
  void Touch(RowEntry* entry, Epoch now) {
    entry->cache_epoch.store(now, std::memory_order_relaxed);
  }

  // Removes the cached value of `entry` (append step deletes the cached
  // version before execution updates the row; row deletion also lands here).
  void Drop(RowEntry* entry);

  // Invoked for each row whose cached value is being evicted (the cold-tier
  // demotion policy hooks here: aged-out-of-cache == cold).
  using EvictCallback = std::function<void(RowEntry*)>;

  // Initialization-phase eviction for the epoch that just started.
  void EvictForEpoch(Epoch now, EngineStats* stats, const EvictCallback& on_evict = {});

  std::size_t entries() const { return entries_.load(std::memory_order_relaxed); }
  std::size_t bytes() const { return bytes_.load(std::memory_order_relaxed); }
  Epoch k() const { return k_; }

 private:
  struct alignas(kCacheLineSize) CoreLists {
    std::map<Epoch, std::vector<RowEntry*>> by_epoch;
  };

  std::size_t max_entries_;
  Epoch k_;
  std::vector<CoreLists> lists_;
  std::atomic<std::size_t> entries_{0};
  std::atomic<std::size_t> bytes_{0};
};

}  // namespace nvc::vstore
