#include "src/vstore/version_cache.h"

#include <cstring>

namespace nvc::vstore {

VersionCache::VersionCache(std::size_t max_entries, Epoch k, std::size_t cores)
    : max_entries_(max_entries), k_(k), lists_(cores == 0 ? 1 : cores) {}

VersionCache::~VersionCache() {
  // Cached values are owned here; RowEntry lifetimes are managed by tables.
  for (CoreLists& lists : lists_) {
    for (auto& [epoch, rows] : lists.by_epoch) {
      for (RowEntry* entry : rows) {
        CachedValue* value = entry->cached.exchange(nullptr, std::memory_order_relaxed);
        if (value != nullptr) {
          CachedValue::Deallocate(value);
        }
      }
    }
  }
}

bool VersionCache::Put(RowEntry* entry, const void* data, std::uint32_t size, Epoch now,
                       std::size_t core) {
  CachedValue* existing = entry->cached.load(std::memory_order_relaxed);
  if (existing != nullptr && existing->size == size) {
    std::memcpy(existing->data(), data, size);
    entry->cache_epoch.store(now, std::memory_order_release);
    return true;
  }
  if (existing == nullptr) {
    if (entries_.load(std::memory_order_relaxed) >= max_entries_) {
      return false;  // cache full; skip (evictions happen per epoch)
    }
    entries_.fetch_add(1, std::memory_order_relaxed);
    // A new cached value joins the eviction list of its creation epoch.
    lists_[core].by_epoch[now].push_back(entry);
  } else {
    bytes_.fetch_sub(existing->size, std::memory_order_relaxed);
    CachedValue::Deallocate(existing);
    entry->cached.store(nullptr, std::memory_order_relaxed);
  }
  CachedValue* value = CachedValue::Allocate(size);
  std::memcpy(value->data(), data, size);
  bytes_.fetch_add(size, std::memory_order_relaxed);
  entry->cache_epoch.store(now, std::memory_order_relaxed);
  entry->cached.store(value, std::memory_order_release);
  return true;
}

void VersionCache::Drop(RowEntry* entry) {
  CachedValue* value = entry->cached.exchange(nullptr, std::memory_order_relaxed);
  if (value != nullptr) {
    bytes_.fetch_sub(value->size, std::memory_order_relaxed);
    entries_.fetch_sub(1, std::memory_order_relaxed);
    CachedValue::Deallocate(value);
  }
  // Any eviction-list membership becomes a harmless stale reference; the
  // eviction pass skips entries whose cached pointer is already null.
}

void VersionCache::EvictForEpoch(Epoch now, EngineStats* stats,
                                 const EvictCallback& on_evict) {
  if (now < k_ + 2) {
    return;
  }
  const Epoch target = now - k_ - 1;
  for (CoreLists& lists : lists_) {
    while (!lists.by_epoch.empty() && lists.by_epoch.begin()->first <= target) {
      std::vector<RowEntry*> rows = std::move(lists.by_epoch.begin()->second);
      lists.by_epoch.erase(lists.by_epoch.begin());
      for (RowEntry* entry : rows) {
        CachedValue* value = entry->cached.load(std::memory_order_relaxed);
        if (value == nullptr) {
          continue;  // dropped or already evicted via a duplicate reference
        }
        const Epoch last_access = entry->cache_epoch.load(std::memory_order_relaxed);
        if (last_access > target) {
          // Accessed recently: defer to the list of its last-access epoch.
          lists.by_epoch[last_access].push_back(entry);
          continue;
        }
        entry->cached.store(nullptr, std::memory_order_relaxed);
        bytes_.fetch_sub(value->size, std::memory_order_relaxed);
        entries_.fetch_sub(1, std::memory_order_relaxed);
        CachedValue::Deallocate(value);
        if (stats != nullptr) {
          stats->cache_evictions.Add(0);
        }
        if (on_evict) {
          on_evict(entry);
        }
      }
    }
  }
}

}  // namespace nvc::vstore
