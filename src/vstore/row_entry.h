// DRAM index entry for one row (paper figure 3, "Row Index" box).
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>

#include "src/common/latch.h"
#include "src/common/types.h"
#include "src/vstore/version_array.h"

namespace nvc::vstore {

// A cached copy of the row's latest persistent value (paper 4.2). Heap
// allocated; lifetime managed by VersionCache.
struct CachedValue {
  std::uint32_t size;
  std::uint8_t* data() { return reinterpret_cast<std::uint8_t*>(this + 1); }
  const std::uint8_t* data() const { return reinterpret_cast<const std::uint8_t*>(this + 1); }

  static CachedValue* Allocate(std::uint32_t size) {
    auto* value = static_cast<CachedValue*>(std::malloc(sizeof(CachedValue) + size));
    value->size = size;
    return value;
  }
  static void Deallocate(CachedValue* value) { std::free(value); }
};

struct RowEntry {
  Key key = 0;
  TableId table = 0;

  // NVM offset of the persistent row (never 0 for a live entry).
  std::uint64_t prow = 0;

  // Transient version array; valid only when varray_epoch equals the current
  // epoch (paper 5.1 — stale pointers are detected by epoch, not reset).
  VersionArray* varray = nullptr;
  Epoch varray_epoch = 0;

  // Cached persistent value and its last-access epoch (LRU bookkeeping).
  std::atomic<CachedValue*> cached{nullptr};
  std::atomic<Epoch> cache_epoch{0};

  // Raw SID of the row's latest persistent version (0 = none yet; ~0 = row
  // deleted this epoch). Lets intra-epoch readers decide visibility for rows
  // without a version array (freshly inserted rows).
  std::atomic<std::uint64_t> latest_sid{0};

  // Epoch in which the append step dropped this row's cached value (the
  // cached copy is deleted before updates). Selective cache admission treats
  // "was cached this epoch" as a heat signal.
  std::atomic<Epoch> cache_dropped_epoch{0};

  // Guards varray creation, cache creation and row deletion bookkeeping.
  SpinLatch latch;

  VersionArray* ArrayForEpoch(Epoch epoch) const {
    return varray_epoch == epoch ? varray : nullptr;
  }
};

}  // namespace nvc::vstore
