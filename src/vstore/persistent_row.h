// Persistent row layout (paper figure 3, sections 4.5 and 5.3).
//
// Each persistent row is a fixed-size NVM block (256 B by default — the
// Optane internal access granularity; configurable per table). It holds:
//
//   * a header with the row's table id, 64-bit key and flags (used to
//     rebuild the DRAM index by scanning rows after a crash),
//   * two version descriptors sharing one cache line — the invariant is
//     v[0].sid < v[1].sid, with single-version rows using v[0] — and
//   * an inline heap; values small enough are stored inline to improve
//     locality and avoid allocating from the persistent value pool.
//
// A descriptor update always writes the SID before the location word, each
// persisted in order, so recovery can disambiguate the three intervening
// crash cases of section 4.5.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>

#include "src/common/types.h"
#include "src/sim/nvm_device.h"

namespace nvc::vstore {

// Location word of one persistent version: packs where the value bytes live.
//   bit  63    : inline flag (value lives in this row's inline heap)
//   bit  62    : cold-tier flag (value lives on the block-storage device —
//                the "extend to fast block-based storage" extension)
//   bits 61..40: value size in bytes (up to 4 MiB)
//   bits 39..0 : absolute offset of the value bytes on its device
// The all-zero word means "no version".
class ValueLoc {
 public:
  constexpr ValueLoc() = default;
  constexpr explicit ValueLoc(std::uint64_t raw) : raw_(raw) {}

  static constexpr ValueLoc Make(bool is_inline, std::uint32_t size, std::uint64_t offset,
                                 bool is_cold = false) {
    return ValueLoc((is_inline ? (1ULL << 63) : 0) | (is_cold ? (1ULL << 62) : 0) |
                    (static_cast<std::uint64_t>(size) << 40) | (offset & ((1ULL << 40) - 1)));
  }

  constexpr std::uint64_t raw() const { return raw_; }
  constexpr bool is_null() const { return raw_ == 0; }
  constexpr bool is_inline() const { return (raw_ >> 63) != 0; }
  constexpr bool is_cold() const { return ((raw_ >> 62) & 1) != 0; }
  constexpr std::uint32_t size() const {
    return static_cast<std::uint32_t>((raw_ >> 40) & 0x3fffff);
  }
  constexpr std::uint64_t offset() const { return raw_ & ((1ULL << 40) - 1); }

 private:
  std::uint64_t raw_ = 0;
};

// One of the two persistent versions: transaction SID + value location.
struct VersionDesc {
  std::uint64_t sid = 0;
  std::uint64_t loc = 0;
};
static_assert(sizeof(VersionDesc) == 16);

inline constexpr std::size_t kRowHeaderSize = 88;

// Header layout of a persistent row; the inline heap follows immediately.
struct PersistentRowHeader {
  Key key = 0;                       // 8
  TableId table = 0;                 // 4
  std::uint32_t flags = 0;           // 4 (kRowValid)
  VersionDesc v[2];                  // 32 — both descriptors in the first cache line
  std::uint64_t reserved[5] = {};    // 40 — pads the header to 88 bytes
};
static_assert(sizeof(PersistentRowHeader) == kRowHeaderSize);
static_assert(offsetof(PersistentRowHeader, v) + sizeof(VersionDesc[2]) <= kCacheLineSize,
              "both version descriptors must share the row's first cache line");

inline constexpr std::uint32_t kRowValid = 1;

// Accessor for a persistent row living at a device offset. Stateless view;
// all mutation goes through methods that charge the device appropriately.
class PersistentRow {
 public:
  PersistentRow(sim::NvmDevice& device, std::uint64_t offset, std::size_t row_size)
      : device_(&device), offset_(offset), row_size_(row_size) {}

  std::uint64_t offset() const { return offset_; }
  std::size_t row_size() const { return row_size_; }
  std::size_t inline_heap_size() const { return row_size_ - kRowHeaderSize; }
  std::uint64_t inline_heap_offset() const { return offset_ + kRowHeaderSize; }

  PersistentRowHeader* header() { return device_->As<PersistentRowHeader>(offset_); }
  const PersistentRowHeader* header() const {
    return device_->As<PersistentRowHeader>(offset_);
  }

  // Initializes a freshly allocated row (insert step). Does not persist.
  void Init(TableId table, Key key) {
    PersistentRowHeader* h = header();
    *h = PersistentRowHeader{};
    h->key = key;
    h->table = table;
    h->flags = kRowValid;
  }

  // ---- Version access -------------------------------------------------------

  VersionDesc ReadDesc(int slot) const { return header()->v[slot]; }

  // Writes a descriptor honoring the SID-before-location *store* order: both
  // words share a cache line, so any write-back of that line (explicit or
  // natural eviction on real hardware) exposes (old,old), (new,old) or
  // (new,new) but never (old,new) — the property the crash-repair cases of
  // section 4.5 rely on. One persist covers the line.
  void WriteDesc(int slot, Sid sid, ValueLoc loc, std::size_t core) {
    PersistentRowHeader* h = header();
    h->v[slot].sid = sid.raw();
    std::atomic_signal_fence(std::memory_order_seq_cst);  // keep the store order
    h->v[slot].loc = loc.raw();
    device_->Persist(offset_ + offsetof(PersistentRowHeader, v) + slot * sizeof(VersionDesc),
                     sizeof(VersionDesc), core);
  }

  // The latest version with sid <= bound (recovery uses the last
  // checkpointed epoch's max SID as the bound). Returns slot index or -1.
  int LatestSlotAtOrBefore(Sid bound) const {
    const PersistentRowHeader* h = header();
    if (h->v[1].sid != 0 && Sid(h->v[1].sid) <= bound && !ValueLoc(h->v[1].loc).is_null()) {
      return 1;
    }
    if (h->v[0].sid != 0 && Sid(h->v[0].sid) <= bound) {
      return 0;
    }
    return -1;
  }

  // ---- Inline heap management ----------------------------------------------

  // Returns the inline-heap location for a new value of `size` bytes, or a
  // null loc when the value cannot be placed inline. The chosen slot must
  // not overlap a live descriptor's inline storage.
  ValueLoc FindInlineSpace(std::uint32_t size) const;

  // Reads the value of the descriptor into out (value bytes only). Charges
  // an NVM read for the row header + value.
  void ReadValue(const VersionDesc& desc, void* out, std::size_t core) const;

  // Copies value bytes into the given location and persists them.
  void WriteValue(ValueLoc loc, const void* data, std::uint32_t size, std::size_t core) {
    device_->WritePersist(loc.offset(), data, size, core);
  }

 private:
  sim::NvmDevice* device_;
  std::uint64_t offset_;
  std::size_t row_size_;
};

}  // namespace nvc::vstore
