// nvc::Status / nvc::StatusOr<T> — canonical error propagation for the
// public API surface.
//
// The seed codebase grew three ad-hoc error conventions: int-or-negative
// (ReadCommitted), exceptions (Recover, constructors), and silent UB
// (out-of-range accessor ids). Status unifies the recoverable half of these:
// an operation that can fail in a way the caller is expected to handle
// returns Status (no payload) or StatusOr<T> (payload or error). Programmer
// errors (out-of-range ids from tooling) stay exceptions/asserts.
//
// Modeled on absl::Status, minus the dependency: a code, a message, and a
// StatusOr that throws std::runtime_error from value() on misuse so tests
// can keep the terse `db.Recover(reg).value()` shape.
#pragma once

#include <cassert>
#include <new>
#include <stdexcept>
#include <string>
#include <utility>

namespace nvc {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,   // caller passed a bad spec/argument
  kNotFound = 2,          // the named row/key/entity does not exist
  kOutOfRange = 3,        // id or index outside the configured bounds
  kResourceExhausted = 4, // queue/pool full; retry after backpressure clears
  kFailedPrecondition = 5,// object not in the required state for the call
  kUnavailable = 6,       // service stopped/stopping; submission refused
  kDataLoss = 7,          // device contents unusable (bad magic, torn state)
  kAborted = 8,           // operation abandoned (crash hook, shutdown race)
  kInternal = 9,          // invariant violation that was caught, not proven
};

constexpr const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kDataLoss: return "DATA_LOSS";
    case StatusCode::kAborted: return "ABORTED";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "?";
}

class Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) {
      return "OK";
    }
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

  // Explicit no-op for call sites that intentionally drop a Status.
  void IgnoreError() const {}

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// Thrown by StatusOr::value() on a non-OK result; carries the full status.
class BadStatus : public std::runtime_error {
 public:
  explicit BadStatus(Status status)
      : std::runtime_error(status.ToString()), status_(std::move(status)) {}
  const Status& status() const { return status_; }

 private:
  Status status_;
};

// A T or the Status explaining why there is no T. Never holds an OK status
// without a value: constructing from an OK status is a programmer error and
// is converted to kInternal.
template <typename T>
class StatusOr {
 public:
  StatusOr(const T& value) : status_(Status::Ok()) { new (&storage_) T(value); }
  StatusOr(T&& value) : status_(Status::Ok()) { new (&storage_) T(std::move(value)); }
  StatusOr(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr constructed from an OK status without a value");
    if (status_.ok()) {
      status_ = Status::Internal("StatusOr constructed from an OK status without a value");
    }
  }

  StatusOr(const StatusOr& other) : status_(other.status_) {
    if (status_.ok()) {
      new (&storage_) T(other.ref());
    }
  }
  StatusOr(StatusOr&& other) noexcept(std::is_nothrow_move_constructible_v<T>)
      : status_(std::move(other.status_)) {
    if (status_.ok()) {
      new (&storage_) T(std::move(other.ref()));
    }
  }
  StatusOr& operator=(const StatusOr& other) {
    if (this != &other) {
      Destroy();
      status_ = other.status_;
      if (status_.ok()) {
        new (&storage_) T(other.ref());
      }
    }
    return *this;
  }
  StatusOr& operator=(StatusOr&& other) noexcept(std::is_nothrow_move_constructible_v<T>) {
    if (this != &other) {
      Destroy();
      status_ = std::move(other.status_);
      if (status_.ok()) {
        new (&storage_) T(std::move(other.ref()));
      }
    }
    return *this;
  }
  ~StatusOr() { Destroy(); }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  // Accessors throw BadStatus (a std::runtime_error) when no value is held,
  // so `Recover(reg).value()` keeps the pre-migration fail-fast behavior.
  T& value() & {
    EnsureOk();
    return ref();
  }
  const T& value() const& {
    EnsureOk();
    return ref();
  }
  T&& value() && {
    EnsureOk();
    return std::move(ref());
  }

  T value_or(T fallback) const& { return ok() ? ref() : std::move(fallback); }

  // Explicit no-op for call sites that intentionally drop the result.
  void IgnoreError() const {}

  // Unchecked access for call sites that just tested ok().
  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  T& ref() { return *std::launder(reinterpret_cast<T*>(&storage_)); }
  const T& ref() const { return *std::launder(reinterpret_cast<const T*>(&storage_)); }
  void EnsureOk() const {
    if (!ok()) {
      throw BadStatus(status_);
    }
  }
  void Destroy() {
    if (status_.ok()) {
      ref().~T();
    }
  }

  Status status_;
  alignas(T) unsigned char storage_[sizeof(T)];
};

}  // namespace nvc
