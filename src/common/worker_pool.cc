#include "src/common/worker_pool.h"

namespace nvc {

WorkerPool::WorkerPool(std::size_t workers) : workers_(workers == 0 ? 1 : workers) {
  threads_.reserve(workers_ - 1);
  for (std::size_t i = 1; i < workers_; ++i) {
    threads_.emplace_back([this, i] { ThreadMain(i); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> guard(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& thread : threads_) {
    thread.join();
  }
}

void WorkerPool::RunParallel(const std::function<void(std::size_t)>& fn) {
  if (workers_ == 1) {
    fn(0);
    return;
  }
  {
    std::lock_guard<std::mutex> guard(mu_);
    job_ = &fn;
    pending_ = workers_ - 1;
    ++generation_;
  }
  work_cv_.notify_all();
  fn(0);
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
  job_ = nullptr;
}

void WorkerPool::ThreadMain(std::size_t worker_id) {
  std::uint64_t seen_generation = 0;
  while (true) {
    const std::function<void(std::size_t)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return shutdown_ || generation_ != seen_generation; });
      if (shutdown_) {
        return;
      }
      seen_generation = generation_;
      job = job_;
    }
    (*job)(worker_id);
    {
      std::lock_guard<std::mutex> guard(mu_);
      if (--pending_ == 0) {
        done_cv_.notify_one();
      }
    }
  }
}

}  // namespace nvc
