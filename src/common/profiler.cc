#include "src/common/profiler.h"

#include <algorithm>
#include <cassert>
#include <cstdarg>
#include <cstdio>
#include <fstream>
#include <ostream>

namespace nvc {
namespace {

std::uint64_t SatSub(std::uint64_t a, std::uint64_t b) { return a >= b ? a - b : 0; }

double MsFromNs(std::uint64_t ns) { return static_cast<double>(ns) / 1e6; }

void AppendFormatted(std::string& out, const char* fmt, ...) {
  char buffer[512];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buffer, sizeof(buffer), fmt, args);
  va_end(args);
  if (n > 0) {
    out.append(buffer, std::min<std::size_t>(static_cast<std::size_t>(n), sizeof(buffer) - 1));
  }
}

// Emits one Chrome-trace "X" (complete) event. ts/dur are microseconds.
void EmitCompleteEvent(std::ostream& os, bool& first, const char* name, double ts_us,
                       double dur_us, std::uint32_t tid, Epoch epoch,
                       const OpCounters* ops) {
  if (!first) {
    os << ",\n";
  }
  first = false;
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "{\"name\":\"%s\",\"cat\":\"phase\",\"ph\":\"X\",\"ts\":%.3f,"
                "\"dur\":%.3f,\"pid\":1,\"tid\":%u,\"args\":{\"epoch\":%u",
                name, ts_us, dur_us, tid, epoch);
  os << buffer;
  if (ops != nullptr) {
    std::snprintf(buffer, sizeof(buffer),
                  ",\"nvm_read_bytes\":%llu,\"nvm_write_bytes\":%llu,"
                  "\"nvm_write_lines\":%llu,\"nvm_persist_ops\":%llu,"
                  "\"nvm_fences\":%llu,\"transient_writes\":%llu,"
                  "\"persistent_writes\":%llu",
                  static_cast<unsigned long long>(ops->nvm_read_bytes),
                  static_cast<unsigned long long>(ops->nvm_write_bytes),
                  static_cast<unsigned long long>(ops->nvm_write_lines),
                  static_cast<unsigned long long>(ops->nvm_persist_ops),
                  static_cast<unsigned long long>(ops->nvm_fences),
                  static_cast<unsigned long long>(ops->transient_writes),
                  static_cast<unsigned long long>(ops->persistent_writes));
    os << buffer;
  }
  os << "}}";
}

void EmitThreadName(std::ostream& os, bool& first, std::uint32_t tid, const std::string& name) {
  if (!first) {
    os << ",\n";
  }
  first = false;
  os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
     << ",\"args\":{\"name\":\"" << name << "\"}}";
}

}  // namespace

OpCounters& OpCounters::operator+=(const OpCounters& o) {
  nvm_read_bytes += o.nvm_read_bytes;
  nvm_read_granules += o.nvm_read_granules;
  nvm_write_bytes += o.nvm_write_bytes;
  nvm_write_lines += o.nvm_write_lines;
  nvm_persist_ops += o.nvm_persist_ops;
  nvm_fences += o.nvm_fences;
  transient_writes += o.transient_writes;
  persistent_writes += o.persistent_writes;
  cache_hits += o.cache_hits;
  cache_misses += o.cache_misses;
  return *this;
}

OpCounters OpCounters::operator-(const OpCounters& o) const {
  OpCounters d;
  d.nvm_read_bytes = SatSub(nvm_read_bytes, o.nvm_read_bytes);
  d.nvm_read_granules = SatSub(nvm_read_granules, o.nvm_read_granules);
  d.nvm_write_bytes = SatSub(nvm_write_bytes, o.nvm_write_bytes);
  d.nvm_write_lines = SatSub(nvm_write_lines, o.nvm_write_lines);
  d.nvm_persist_ops = SatSub(nvm_persist_ops, o.nvm_persist_ops);
  d.nvm_fences = SatSub(nvm_fences, o.nvm_fences);
  d.transient_writes = SatSub(transient_writes, o.transient_writes);
  d.persistent_writes = SatSub(persistent_writes, o.persistent_writes);
  d.cache_hits = SatSub(cache_hits, o.cache_hits);
  d.cache_misses = SatSub(cache_misses, o.cache_misses);
  return d;
}

PhaseProfiler::PhaseProfiler() : origin_(std::chrono::steady_clock::now()) {}

std::uint64_t PhaseProfiler::NowNs() const {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now() - origin_)
                                        .count());
}

void PhaseProfiler::Configure(const ProfilerConfig& config) {
  assert(!active_ && "Configure during a profiled epoch");
  config_ = config;
  Reset();
}

void PhaseProfiler::Reset() {
  origin_ = std::chrono::steady_clock::now();
  active_ = false;
  phase_open_ = false;
  epochs_ = 0;
  dropped_.store(0, std::memory_order_relaxed);
  agg_ = {};
  for (auto& recorder : phase_epoch_wall_) {
    recorder.Clear();
  }
  epoch_wall_.Clear();
  driver_spans_.clear();
  driver_span_ops_.clear();
  epoch_others_.clear();
  for (auto& track : tracks_) {
    track.spans.clear();
  }
  epoch_phase_wall_ms_ = {};
  epoch_phase_ops_sum_ = OpCounters{};
  tail_open_ = false;
  tail_open_epoch_ = 0;
  tail_open_start_ns_ = 0;
  tail_spans_.clear();
  pipeline_ = PipelineStats{};
}

void PhaseProfiler::PushSpan(Track& track, const PhaseSpan& span) {
  if (track.spans.size() >= config_.max_spans_per_track) {
    // Workers hit the cap concurrently (their tracks are private but the
    // drop counter is shared), so the count must be atomic.
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  track.spans.push_back(span);
}

void PhaseProfiler::BeginEpoch(Epoch epoch) {
  if (!config_.enabled) {
    return;
  }
  assert(!active_ && "BeginEpoch while an epoch is already being profiled");
  active_ = true;
  current_epoch_ = epoch;
  epoch_start_ns_ = NowNs();
  epoch_start_ops_ = Snapshot();
  epoch_phase_wall_ms_ = {};
  epoch_phase_ops_sum_ = OpCounters{};
}

void PhaseProfiler::BeginPhase(Phase phase) {
  if (!active_) {
    return;
  }
  assert(!phase_open_ && "phases must not nest");
  phase_open_ = true;
  current_phase_ = phase;
  phase_start_ns_ = NowNs();
  phase_start_ops_ = Snapshot();
}

void PhaseProfiler::EndPhase() {
  if (!active_ || !phase_open_) {
    return;
  }
  phase_open_ = false;
  const std::uint64_t end_ns = NowNs();
  const OpCounters delta = Snapshot() - phase_start_ops_;
  const auto idx = static_cast<std::size_t>(current_phase_);
  const double wall_ms = MsFromNs(end_ns - phase_start_ns_);

  PhaseAggregate& agg = agg_[idx];
  agg.activations += 1;
  agg.wall_ms += wall_ms;
  agg.ops += delta;
  epoch_phase_wall_ms_[idx] += wall_ms;
  epoch_phase_ops_sum_ += delta;

  driver_spans_.push_back(PhaseSpan{current_phase_, kDriverTrack, current_epoch_,
                                    phase_start_ns_, end_ns - phase_start_ns_});
  driver_span_ops_.push_back(delta);
}

void PhaseProfiler::EndEpoch() {
  if (!active_) {
    return;
  }
  if (phase_open_) {
    EndPhase();  // defensive: a phase left open attributes to itself
  }
  const std::uint64_t end_ns = NowNs();
  const OpCounters epoch_delta = Snapshot() - epoch_start_ops_;
  const OpCounters other = epoch_delta - epoch_phase_ops_sum_;
  const double epoch_ms = MsFromNs(end_ns - epoch_start_ns_);

  double phased_ms = 0;
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    if (epoch_phase_wall_ms_[i] > 0) {
      phase_epoch_wall_[i].Record(epoch_phase_wall_ms_[i]);
    }
    phased_ms += epoch_phase_wall_ms_[i];
  }
  const double other_ms = std::max(0.0, epoch_ms - phased_ms);
  const auto other_idx = static_cast<std::size_t>(Phase::kOther);
  agg_[other_idx].activations += 1;
  agg_[other_idx].wall_ms += other_ms;
  agg_[other_idx].ops += other;
  phase_epoch_wall_[other_idx].Record(other_ms);

  epoch_wall_.Record(epoch_ms);
  epoch_others_.push_back(EpochOther{current_epoch_, epoch_start_ns_,
                                     end_ns - epoch_start_ns_, other});
  ++epochs_;
  active_ = false;
}

void PhaseProfiler::BeginTailSpan(Epoch epoch) {
  if (!config_.enabled) {
    return;
  }
  tail_open_ = true;
  tail_open_epoch_ = epoch;
  tail_open_start_ns_ = NowNs();
}

void PhaseProfiler::EndTailSpan() {
  if (!config_.enabled || !tail_open_) {
    return;
  }
  tail_open_ = false;
  const std::uint64_t end_ns = NowNs();
  const std::uint64_t dur_ns = end_ns - tail_open_start_ns_;
  const double wall_ms = MsFromNs(dur_ns);
  // Tail-owned slot: no op attribution (the concurrent foreground would
  // pollute any device-counter delta taken here).
  const auto idx = static_cast<std::size_t>(Phase::kTailPersist);
  agg_[idx].activations += 1;
  agg_[idx].wall_ms += wall_ms;
  phase_epoch_wall_[idx].Record(wall_ms);
  if (tail_spans_.size() < config_.max_spans_per_track) {
    tail_spans_.push_back(PhaseSpan{Phase::kTailPersist, kDriverTrack, tail_open_epoch_,
                                    tail_open_start_ns_, dur_ns});
  } else {
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

void PhaseProfiler::AddTailOverlap(std::uint64_t tail_ns, std::uint64_t overlapped_ns,
                                   std::uint64_t tail_cpu_ns) {
  if (!config_.enabled) {
    return;
  }
  pipeline_.tails += 1;
  pipeline_.tail_ns += tail_ns;
  pipeline_.tail_cpu_ns += tail_cpu_ns;
  pipeline_.overlapped_ns += std::min(overlapped_ns, tail_ns);
}

void PhaseProfiler::CancelEpoch() {
  phase_open_ = false;
  active_ = false;
  epoch_phase_wall_ms_ = {};
  epoch_phase_ops_sum_ = OpCounters{};
}

PhaseProfiler::WorkerScope::WorkerScope(PhaseProfiler& profiler, std::size_t worker) {
  if (!profiler.active_) {
    return;
  }
  profiler_ = &profiler;
  worker_ = static_cast<std::uint32_t>(worker % kMaxCores);
  start_ns_ = profiler.NowNs();
}

PhaseProfiler::WorkerScope::~WorkerScope() {
  if (profiler_ == nullptr) {
    return;
  }
  const std::uint64_t end_ns = profiler_->NowNs();
  profiler_->PushSpan(profiler_->tracks_[worker_],
                      PhaseSpan{profiler_->current_phase_, worker_,
                                profiler_->current_epoch_, start_ns_, end_ns - start_ns_});
}

ProfileReport PhaseProfiler::Report() const {
  ProfileReport report;
  report.enabled = config_.enabled;
  report.epochs = epochs_;
  report.dropped_spans = dropped_.load(std::memory_order_relaxed);
  report.pipeline = pipeline_;
  report.phases = agg_;
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const LatencyRecorder& recorder = phase_epoch_wall_[i];
    if (!recorder.empty()) {
      report.phases[i].epoch_p50_ms = recorder.Percentile(50);
      report.phases[i].epoch_p95_ms = recorder.Percentile(95);
      report.phases[i].epoch_max_ms = recorder.Max();
    }
    report.total += agg_[i].ops;
  }
  for (const Track& track : tracks_) {
    for (const PhaseSpan& span : track.spans) {
      PhaseAggregate& agg = report.phases[static_cast<std::size_t>(span.phase)];
      agg.worker_spans += 1;
      agg.busy_ms += MsFromNs(span.dur_ns);
    }
  }
  if (!epoch_wall_.empty()) {
    report.epoch_wall_p50_ms = epoch_wall_.Percentile(50);
    report.epoch_wall_p95_ms = epoch_wall_.Percentile(95);
    report.epoch_wall_max_ms = epoch_wall_.Max();
  }
  return report;
}

std::string ProfileReport::ToTable() const {
  std::string out;
  AppendFormatted(out, "epoch-phase profile: %llu epochs, epoch wall p50 %.3f ms  p95 %.3f"
                       " ms  max %.3f ms\n",
                  static_cast<unsigned long long>(epochs), epoch_wall_p50_ms,
                  epoch_wall_p95_ms, epoch_wall_max_ms);
  AppendFormatted(out, "%-15s %6s %10s %10s %9s %9s %9s %12s %12s %9s %8s\n", "phase", "acts",
                  "wall-ms", "busy-ms", "ep-p50", "ep-p95", "ep-max", "NVMr-bytes",
                  "NVMw-lines", "persists", "fences");
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const PhaseAggregate& agg = phases[i];
    if (agg.activations == 0 && agg.worker_spans == 0) {
      continue;
    }
    AppendFormatted(out, "%-15s %6llu %10.3f %10.3f %9.3f %9.3f %9.3f %12llu %12llu %9llu"
                         " %8llu\n",
                    PhaseName(static_cast<Phase>(i)),
                    static_cast<unsigned long long>(agg.activations), agg.wall_ms, agg.busy_ms,
                    agg.epoch_p50_ms, agg.epoch_p95_ms, agg.epoch_max_ms,
                    static_cast<unsigned long long>(agg.ops.nvm_read_bytes),
                    static_cast<unsigned long long>(agg.ops.nvm_write_lines),
                    static_cast<unsigned long long>(agg.ops.nvm_persist_ops),
                    static_cast<unsigned long long>(agg.ops.nvm_fences));
  }
  if (dropped_spans > 0) {
    AppendFormatted(out, "(%llu spans dropped by max_spans_per_track)\n",
                    static_cast<unsigned long long>(dropped_spans));
  }
  return out;
}

void PhaseProfiler::WriteChromeTrace(std::ostream& os) const {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  EmitThreadName(os, first, 0, "epochs");
  EmitThreadName(os, first, 1, "driver");
  for (std::size_t w = 0; w < kMaxCores; ++w) {
    if (!tracks_[w].spans.empty()) {
      EmitThreadName(os, first, static_cast<std::uint32_t>(w) + 2,
                     "worker " + std::to_string(w));
    }
  }
  if (!tail_spans_.empty()) {
    EmitThreadName(os, first, static_cast<std::uint32_t>(kMaxCores) + 2, "tail");
  }
  // Epoch track (tid 0): one span per epoch; args carry the op deltas not
  // attributed to any phase (the kOther share).
  for (const EpochOther& eo : epoch_others_) {
    const std::string name = "epoch " + std::to_string(eo.epoch);
    EmitCompleteEvent(os, first, name.c_str(), static_cast<double>(eo.start_ns) / 1e3,
                      static_cast<double>(eo.dur_ns) / 1e3, 0, eo.epoch, &eo.ops);
  }
  // Driver track (tid 1): serial phase brackets with per-phase op deltas.
  for (std::size_t i = 0; i < driver_spans_.size(); ++i) {
    const PhaseSpan& span = driver_spans_[i];
    EmitCompleteEvent(os, first, PhaseName(span.phase),
                      static_cast<double>(span.start_ns) / 1e3,
                      static_cast<double>(span.dur_ns) / 1e3, 1, span.epoch,
                      &driver_span_ops_[i]);
  }
  // Worker tracks (tid = worker + 2): per-worker phase spans; gaps between
  // spans of the same driver phase are barrier skew.
  for (std::size_t w = 0; w < kMaxCores; ++w) {
    for (const PhaseSpan& span : tracks_[w].spans) {
      EmitCompleteEvent(os, first, PhaseName(span.phase),
                        static_cast<double>(span.start_ns) / 1e3,
                        static_cast<double>(span.dur_ns) / 1e3,
                        static_cast<std::uint32_t>(w) + 2, span.epoch, nullptr);
    }
  }
  // Tail track: asynchronous persistence tails (pipelined epochs).
  for (const PhaseSpan& span : tail_spans_) {
    EmitCompleteEvent(os, first, PhaseName(span.phase),
                      static_cast<double>(span.start_ns) / 1e3,
                      static_cast<double>(span.dur_ns) / 1e3,
                      static_cast<std::uint32_t>(kMaxCores) + 2, span.epoch, nullptr);
  }
  os << "\n]}\n";
}

bool PhaseProfiler::WriteChromeTrace(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return false;
  }
  WriteChromeTrace(out);
  return out.good();
}

}  // namespace nvc
