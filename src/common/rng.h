// Deterministic pseudo-random generators for workload construction.
//
// Workload generation must be reproducible from a seed so that recovery tests
// can regenerate the exact transaction stream; std::mt19937 is avoided because
// its distributions are not guaranteed identical across standard libraries.
#pragma once

#include <cstdint>

namespace nvc {

// splitmix64: used to seed and to hash integers into well-mixed values.
constexpr std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// xoshiro-style 64-bit generator with explicit, portable output.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    state_ = SplitMix64(seed);
    if (state_ == 0) {
      state_ = 0x9e3779b97f4a7c15ULL;
    }
  }

  std::uint64_t Next() {
    // xorshift64*
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545f4914f6cdd1dULL;
  }

  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t NextBounded(std::uint64_t bound) { return Next() % bound; }

  // Uniform in [lo, hi] inclusive.
  std::uint64_t NextRange(std::uint64_t lo, std::uint64_t hi) {
    return lo + NextBounded(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0); }

  // Returns true with probability pct/100.
  bool NextPercent(std::uint32_t pct) { return NextBounded(100) < pct; }

 private:
  std::uint64_t state_;
};

// TPC-C NURand non-uniform distribution (clause 2.1.6).
class NuRand {
 public:
  NuRand(std::uint64_t a, std::uint64_t c) : a_(a), c_(c) {}

  std::uint64_t Next(Rng& rng, std::uint64_t x, std::uint64_t y) const {
    return (((rng.NextRange(0, a_) | rng.NextRange(x, y)) + c_) % (y - x + 1)) + x;
  }

 private:
  std::uint64_t a_;
  std::uint64_t c_;
};

}  // namespace nvc
