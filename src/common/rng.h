// Deterministic pseudo-random generators for workload construction.
//
// Workload generation must be reproducible from a seed so that recovery tests
// can regenerate the exact transaction stream; std::mt19937 is avoided because
// its distributions are not guaranteed identical across standard libraries.
#pragma once

#include <cmath>
#include <cstdint>

namespace nvc {

// splitmix64: used to seed and to hash integers into well-mixed values.
constexpr std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// xoshiro-style 64-bit generator with explicit, portable output.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    state_ = SplitMix64(seed);
    if (state_ == 0) {
      state_ = 0x9e3779b97f4a7c15ULL;
    }
  }

  std::uint64_t Next() {
    // xorshift64*
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545f4914f6cdd1dULL;
  }

  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t NextBounded(std::uint64_t bound) { return Next() % bound; }

  // Uniform in [lo, hi] inclusive.
  std::uint64_t NextRange(std::uint64_t lo, std::uint64_t hi) {
    return lo + NextBounded(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0); }

  // Returns true with probability pct/100.
  bool NextPercent(std::uint32_t pct) { return NextBounded(100) < pct; }

 private:
  std::uint64_t state_;
};

// Zipfian distribution over [0, n) with exponent theta, using the
// Gray/Jim-Gray "quick" inversion (the YCSB generator's method): draw u in
// [0,1) and invert the analytic approximation of the zeta CDF. Ranks are
// scattered with SplitMix64 so that rank 0 (the hottest key) is not always
// key 0 — pass scatter=false to keep the raw rank (hot keys contiguous at the
// low end, which adversarial skew suites want for range scans).
class ZipfGenerator {
 public:
  ZipfGenerator(std::uint64_t n, double theta, bool scatter = true)
      : n_(n), theta_(theta), scatter_(scatter) {
    zetan_ = Zeta(n_, theta_);
    const double zeta2 = Zeta(2, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - Pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2 / zetan_);
  }

  std::uint64_t Next(Rng& rng) {
    const double u = rng.NextDouble();
    const double uz = u * zetan_;
    std::uint64_t rank;
    if (uz < 1.0) {
      rank = 0;
    } else if (uz < 1.0 + Pow(0.5, theta_)) {
      rank = 1;
    } else {
      rank = static_cast<std::uint64_t>(
          static_cast<double>(n_) * Pow(eta_ * u - eta_ + 1.0, alpha_));
      if (rank >= n_) {
        rank = n_ - 1;
      }
    }
    return scatter_ ? SplitMix64(rank) % n_ : rank;
  }

 private:
  // std::pow is deterministic within one binary, which is the property the
  // determinism tests assert (cross-libm bit-identity is not required: the
  // skew shape, not the exact key sequence, is the contract across builds).
  static double Pow(double x, double y) { return std::pow(x, y); }
  static double Zeta(std::uint64_t n, double theta) {
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i) {
      sum += 1.0 / Pow(static_cast<double>(i), theta);
    }
    return sum;
  }

  std::uint64_t n_;
  double theta_;
  bool scatter_;
  double zetan_;
  double alpha_;
  double eta_;
};

// TPC-C NURand non-uniform distribution (clause 2.1.6).
class NuRand {
 public:
  NuRand(std::uint64_t a, std::uint64_t c) : a_(a), c_(c) {}

  std::uint64_t Next(Rng& rng, std::uint64_t x, std::uint64_t y) const {
    return (((rng.NextRange(0, a_) | rng.NextRange(x, y)) + c_) % (y - x + 1)) + x;
  }

 private:
  std::uint64_t a_;
  std::uint64_t c_;
};

}  // namespace nvc
