// Lightweight statistics counters.
//
// Counters are sharded per core (cache-line padded) and summed on read, so the
// hot path is a relaxed increment with no sharing.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace nvc {

inline constexpr std::size_t kMaxCores = 64;

// One relaxed 64-bit counter per core, padded to avoid false sharing.
class ShardedCounter {
 public:
  void Add(std::size_t core, std::uint64_t n = 1) {
    shards_[core % kMaxCores].value.fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t Sum() const {
    std::uint64_t total = 0;
    for (const auto& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (auto& shard : shards_) {
      shard.value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(kCacheLineSize) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<Shard, kMaxCores> shards_{};
};

// Fixed set of engine-wide statistics. Kept as a plain struct of counters so
// benches can snapshot and diff them between phases.
struct EngineStats {
  ShardedCounter nvm_read_bytes;
  ShardedCounter nvm_write_bytes;
  ShardedCounter nvm_read_lines;    // 256B-granule touches (locality accounting)
  ShardedCounter nvm_write_lines;
  ShardedCounter nvm_persist_ops;   // clwb-equivalents
  ShardedCounter nvm_fences;
  ShardedCounter transient_writes;  // intermediate versions written to DRAM
  ShardedCounter persistent_writes; // final versions written to NVMM
  ShardedCounter cache_hits;
  ShardedCounter cache_misses;
  ShardedCounter cache_evictions;
  ShardedCounter minor_gc_runs;
  ShardedCounter major_gc_runs;
  ShardedCounter demotions;    // hot->cold value moves (cold-tier extension)
  ShardedCounter cold_reads;   // value reads served from the cold tier
  ShardedCounter log_bytes;
  ShardedCounter txn_committed;
  ShardedCounter txn_aborted;

  void Reset() {
    nvm_read_bytes.Reset();
    nvm_write_bytes.Reset();
    nvm_read_lines.Reset();
    nvm_write_lines.Reset();
    nvm_persist_ops.Reset();
    nvm_fences.Reset();
    transient_writes.Reset();
    persistent_writes.Reset();
    cache_hits.Reset();
    cache_misses.Reset();
    cache_evictions.Reset();
    minor_gc_runs.Reset();
    major_gc_runs.Reset();
    demotions.Reset();
    cold_reads.Reset();
    log_bytes.Reset();
    txn_committed.Reset();
    txn_aborted.Reset();
  }
};

// One-call percentile digest of a LatencyRecorder (all values in the unit
// the samples were recorded in). The service front-end reports these per
// run; benches serialize them into their JSON artifacts.
struct LatencySummary {
  std::size_t count = 0;
  double mean = 0;
  double p50 = 0;
  double p99 = 0;
  double max = 0;
};

// Simple percentile recorder for epoch latencies (figure 12).
class LatencyRecorder {
 public:
  void Record(double micros) { samples_.push_back(micros); }
  void Clear() { samples_.clear(); }
  bool empty() const { return samples_.empty(); }
  std::size_t count() const { return samples_.size(); }
  void Reserve(std::size_t n) { samples_.reserve(n); }

  double Mean() const;
  double Percentile(double p) const;  // p in [0, 100]
  double Max() const;

  // Sorts once and extracts count/mean/p50/p99/max (cheaper than separate
  // Percentile calls, which each re-sort).
  LatencySummary Summarize() const;

 private:
  std::vector<double> samples_;
};

}  // namespace nvc
