// Epoch-phase profiler.
//
// Records (phase, worker, start, duration) spans around every parallel
// fan-out of the epoch loop plus the serial driver phases, and attributes
// operation-counter deltas (NVM reads/writes/persists/fences, engine cache
// and version counters) to the phase during which they occurred. The driver
// thread brackets each phase with BeginPhase/EndPhase (which snapshot the
// counters via a caller-supplied provider); workers record their own spans
// with WorkerScope inside the fan-out closure.
//
// The profiler is compiled in always and gated by ProfilerConfig::enabled:
// when off, every entry point is a single relaxed branch and no memory is
// touched. Phase boundaries only ever run on the driver thread while the
// workers are quiesced (before/after WorkerPool::RunParallel), so counter
// snapshots are consistent without synchronization; worker tracks are
// per-worker and never shared.
//
// Ops that happen inside an epoch but outside any bracketed phase (pool
// BeginEpoch resets, deferred index removals, ...) are attributed to the
// synthetic kOther phase at EndEpoch, so the per-phase deltas always sum
// exactly to the whole-epoch delta.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/common/types.h"

namespace nvc {

// One entry per distinct stretch of the epoch loop (DESIGN.md section 9).
enum class Phase : std::uint8_t {
  kLogInputs,      // input logging (NVCaracal mode)
  kInsert,         // insert step fan-out
  kMajorGc,        // major GC passes 1+2 and the GC-tail persists
  kCacheEvict,     // epoch-based K-LRU cache eviction
  kDemotion,       // cold-tier demotions
  kAppend,         // append step (single-phase variant)
  kAppendCollect,  // batch append sub-phase 1: intent collection
  kAppendBuild,    // batch append sub-phase 2: version-array builds
  kExecute,        // PWV execution + final-write checkpointing
  kCheckpoint,     // pool/index checkpoints, counters, epoch persist
  kGcLog,          // persisted major-GC list (persistent-index runs)
  kFinish,         // transient pool reset
  kRecoveryBackfill,  // instant-recovery redo: on-demand + background sweep
  kTailPersist,    // pipelined epochs: asynchronous persistence tail, timed
                   // on the tail thread (no op attribution — the concurrent
                   // foreground would pollute device-counter deltas)
  kOther,          // synthetic: in-epoch work outside any bracketed phase
};
inline constexpr std::size_t kPhaseCount = 15;

constexpr const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kLogInputs: return "log-inputs";
    case Phase::kInsert: return "insert";
    case Phase::kMajorGc: return "major-gc";
    case Phase::kCacheEvict: return "cache-evict";
    case Phase::kDemotion: return "demotion";
    case Phase::kAppend: return "append";
    case Phase::kAppendCollect: return "append-collect";
    case Phase::kAppendBuild: return "append-build";
    case Phase::kExecute: return "execute";
    case Phase::kCheckpoint: return "checkpoint";
    case Phase::kGcLog: return "gc-log";
    case Phase::kFinish: return "finish";
    case Phase::kRecoveryBackfill: return "recovery-backfill";
    case Phase::kTailPersist: return "tail-persist";
    case Phase::kOther: return "other";
  }
  return "?";
}

struct ProfilerConfig {
  bool enabled = false;
  // Per-track span cap; spans beyond it are counted in dropped_spans().
  std::size_t max_spans_per_track = 1 << 18;
};

// Counter snapshot attributed to phases as deltas. The NVM fields mirror the
// hot sim::NvmDevice counters; the engine fields a subset of EngineStats.
struct OpCounters {
  std::uint64_t nvm_read_bytes = 0;
  std::uint64_t nvm_read_granules = 0;
  std::uint64_t nvm_write_bytes = 0;
  std::uint64_t nvm_write_lines = 0;  // 64 B lines covered by Persist
  std::uint64_t nvm_persist_ops = 0;
  std::uint64_t nvm_fences = 0;
  std::uint64_t transient_writes = 0;
  std::uint64_t persistent_writes = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;

  OpCounters& operator+=(const OpCounters& o);
  OpCounters operator-(const OpCounters& o) const;  // element-wise, saturating
};

struct PhaseSpan {
  Phase phase;
  std::uint32_t worker;  // worker id; kDriverTrack for driver-level spans
  Epoch epoch;
  std::uint64_t start_ns;  // since profiler Reset/Configure
  std::uint64_t dur_ns;
};

// Aggregated view of one phase across all profiled epochs.
struct PhaseAggregate {
  std::uint64_t activations = 0;   // driver-level BeginPhase..EndPhase pairs
  std::uint64_t worker_spans = 0;
  double wall_ms = 0;   // driver wall time, summed over activations
  double busy_ms = 0;   // worker span durations, summed over workers
  OpCounters ops;       // counter deltas attributed to this phase
  // Distribution of this phase's per-epoch wall time.
  double epoch_p50_ms = 0;
  double epoch_p95_ms = 0;
  double epoch_max_ms = 0;
};

// Pipelined-epoch overlap accounting (DESIGN.md section 13): how much of the
// asynchronous persistence tail ran concurrently with foreground execution.
struct PipelineStats {
  std::uint64_t tails = 0;          // asynchronous tails joined
  std::uint64_t tail_ns = 0;        // summed tail wall time
  std::uint64_t tail_cpu_ns = 0;    // summed tail-thread CPU time (the work a
                                    // dedicated tail core would absorb; wall
                                    // minus this is preemption, not work)
  std::uint64_t overlapped_ns = 0;  // tail time overlapped with the foreground
  double overlap_fraction() const {
    return tail_ns == 0 ? 0.0 : static_cast<double>(overlapped_ns) / static_cast<double>(tail_ns);
  }
};

struct ProfileReport {
  bool enabled = false;
  std::uint64_t epochs = 0;
  std::uint64_t dropped_spans = 0;
  PipelineStats pipeline;
  std::array<PhaseAggregate, kPhaseCount> phases{};
  OpCounters total;  // sum across phases == whole-epoch deltas
  double epoch_wall_p50_ms = 0;
  double epoch_wall_p95_ms = 0;
  double epoch_wall_max_ms = 0;

  const PhaseAggregate& phase(Phase p) const {
    return phases[static_cast<std::size_t>(p)];
  }
  // Human-readable per-phase table (one row per phase with activity).
  std::string ToTable() const;
};

class PhaseProfiler {
 public:
  // tid used for driver-level spans in worker_spans()/trace output.
  static constexpr std::uint32_t kDriverTrack = 0xFFFFFFFF;

  using SnapshotFn = std::function<OpCounters()>;

  PhaseProfiler();

  // Enables/disables and resets all recorded state. Must not be called
  // while an epoch is being profiled.
  void Configure(const ProfilerConfig& config);
  const ProfilerConfig& config() const { return config_; }
  bool enabled() const { return config_.enabled; }

  // Supplies the counter snapshot taken at phase boundaries. Optional: when
  // absent, phases still get timing spans with zero op attribution.
  void SetSnapshotProvider(SnapshotFn fn) { snapshot_ = std::move(fn); }

  // ---- Driver-side bracketing (epoch loop thread only) ----------------------
  void BeginEpoch(Epoch epoch);
  void EndEpoch();
  // Discards the current epoch's partial aggregates (crash-injection path).
  void CancelEpoch();
  void BeginPhase(Phase phase);
  void EndPhase();

  // ---- Pipelined-tail accounting -------------------------------------------
  // Begin/EndTailSpan run on the tail thread and only touch tail-owned state
  // (the kTailPersist aggregate slot and a dedicated span track); the driver
  // never writes either, and Report() readers synchronize via the tail join.
  // AddTailOverlap runs on the driver thread after joining a tail.
  void BeginTailSpan(Epoch epoch);
  void EndTailSpan();
  void AddTailOverlap(std::uint64_t tail_ns, std::uint64_t overlapped_ns,
                      std::uint64_t tail_cpu_ns);
  const std::vector<PhaseSpan>& tail_spans() const { return tail_spans_; }

  bool in_epoch() const { return active_; }

  // RAII driver phase bracket (exception-safe across crash hooks).
  class ScopedPhase {
   public:
    ScopedPhase(PhaseProfiler& profiler, Phase phase) : profiler_(profiler) {
      profiler_.BeginPhase(phase);
    }
    ~ScopedPhase() { profiler_.EndPhase(); }
    ScopedPhase(const ScopedPhase&) = delete;
    ScopedPhase& operator=(const ScopedPhase&) = delete;

   private:
    PhaseProfiler& profiler_;
  };

  // RAII per-worker span, constructed inside the fan-out closure. Reads the
  // driver-set current phase/epoch; the WorkerPool job handoff orders those
  // writes before any worker runs.
  class WorkerScope {
   public:
    WorkerScope(PhaseProfiler& profiler, std::size_t worker);
    ~WorkerScope();
    WorkerScope(const WorkerScope&) = delete;
    WorkerScope& operator=(const WorkerScope&) = delete;

   private:
    PhaseProfiler* profiler_ = nullptr;  // null when profiling is off
    std::uint32_t worker_ = 0;
    std::uint64_t start_ns_ = 0;
  };

  // ---- Results --------------------------------------------------------------
  ProfileReport Report() const;

  // Worker span track (spans in recording order; disjoint by construction).
  const std::vector<PhaseSpan>& worker_spans(std::size_t worker) const {
    return tracks_[worker].spans;
  }
  const std::vector<PhaseSpan>& driver_spans() const { return driver_spans_; }
  std::uint64_t dropped_spans() const { return dropped_.load(std::memory_order_relaxed); }

  // Chrome-trace ("Trace Event Format") JSON, loadable in Perfetto or
  // chrome://tracing: one track per worker, one driver track, one epoch
  // track whose span args carry the phase-unattributed op deltas.
  void WriteChromeTrace(std::ostream& os) const;
  bool WriteChromeTrace(const std::string& path) const;

  // Clears all recorded spans and aggregates; keeps config and provider.
  void Reset();

 private:
  struct alignas(kCacheLineSize) Track {
    std::vector<PhaseSpan> spans;
  };
  // Per-epoch op deltas attributed to no phase (reported under kOther).
  struct EpochOther {
    Epoch epoch;
    std::uint64_t start_ns;
    std::uint64_t dur_ns;
    OpCounters ops;
  };

  std::uint64_t NowNs() const;
  OpCounters Snapshot() const { return snapshot_ ? snapshot_() : OpCounters{}; }
  void PushSpan(Track& track, const PhaseSpan& span);

  ProfilerConfig config_;
  SnapshotFn snapshot_;
  std::chrono::steady_clock::time_point origin_;

  // Driver-side state (single-threaded).
  bool active_ = false;           // enabled && inside BeginEpoch..EndEpoch
  Epoch current_epoch_ = 0;
  std::uint64_t epoch_start_ns_ = 0;
  OpCounters epoch_start_ops_;
  bool phase_open_ = false;
  Phase current_phase_ = Phase::kOther;
  std::uint64_t phase_start_ns_ = 0;
  OpCounters phase_start_ops_;
  std::array<double, kPhaseCount> epoch_phase_wall_ms_{};
  OpCounters epoch_phase_ops_sum_;

  // Accumulated results.
  std::uint64_t epochs_ = 0;
  std::array<PhaseAggregate, kPhaseCount> agg_{};
  std::array<LatencyRecorder, kPhaseCount> phase_epoch_wall_;
  LatencyRecorder epoch_wall_;
  std::vector<PhaseSpan> driver_spans_;
  std::vector<OpCounters> driver_span_ops_;  // parallel to driver_spans_
  std::vector<EpochOther> epoch_others_;
  std::array<Track, kMaxCores> tracks_{};
  std::atomic<std::uint64_t> dropped_{0};  // bumped by concurrent WorkerScopes

  // Pipelined-tail state: the *_open_* fields and tail_spans_ are written
  // only by the tail thread; pipeline_ only by the driver (AddTailOverlap).
  bool tail_open_ = false;
  Epoch tail_open_epoch_ = 0;
  std::uint64_t tail_open_start_ns_ = 0;
  std::vector<PhaseSpan> tail_spans_;
  PipelineStats pipeline_;
};

}  // namespace nvc
