// Deterministic keyspace partitioner.
//
// Every place that spreads (table, key) pairs across a fixed number of
// buckets — the parallel tail's owner assignment, persistent-index delta
// apply, DRAM index striping, Aria reservation shards, and the multi-shard
// router — must agree on the same mapping, or replay/recovery would assign
// work to different owners than the original run. This header is the single
// definition of that mapping; do not hand-roll `HashKey % n` elsewhere.
#pragma once

#include <cstddef>

#include "src/common/hash.h"
#include "src/common/types.h"

namespace nvc {

// Owning bucket of (table, key) among `partitions` equally-weighted buckets.
// Pure function of its inputs: stable across runs, replicas, and recovery.
inline std::size_t PartitionOf(TableId table, Key key, std::size_t partitions) {
  return static_cast<std::size_t>(HashKey(table, key) % partitions);
}

}  // namespace nvc
