// Fixed-size worker pool used by the epoch phases.
//
// Every phase (insert, append, execute, GC) fans the same closure out to all
// workers and waits for completion — a fork/join barrier per phase. Threads
// are created once and reused across epochs. With a single worker the closure
// runs inline on the caller, which keeps single-core benchmarks free of
// scheduling noise.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace nvc {

class WorkerPool {
 public:
  // Creates a pool with `workers` logical workers (>= 1). Worker 0 is the
  // calling thread; workers 1..n-1 are dedicated threads.
  explicit WorkerPool(std::size_t workers);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  std::size_t size() const { return workers_; }

  // Runs fn(worker_id) on every worker and returns when all have finished.
  // Must not be called re-entrantly.
  void RunParallel(const std::function<void(std::size_t)>& fn);

 private:
  void ThreadMain(std::size_t worker_id);

  std::size_t workers_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  std::size_t pending_ = 0;
  bool shutdown_ = false;
};

// Splits [0, total) into pool.size() contiguous chunks and returns the chunk
// for `worker`: [begin, end).
struct Range {
  std::size_t begin;
  std::size_t end;
};

inline Range SplitRange(std::size_t total, std::size_t workers, std::size_t worker) {
  std::size_t chunk = total / workers;
  std::size_t rem = total % workers;
  std::size_t begin = worker * chunk + (worker < rem ? worker : rem);
  std::size_t size = chunk + (worker < rem ? 1 : 0);
  return {begin, begin + size};
}

}  // namespace nvc
