// Minimal spin latch for short critical sections.
#pragma once

#include <atomic>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace nvc {

inline void CpuRelax() {
#if defined(__x86_64__)
  _mm_pause();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

// Test-and-test-and-set spin latch. Used for per-shard index latches and the
// per-row version array build; critical sections are a few instructions.
class SpinLatch {
 public:
  SpinLatch() = default;
  SpinLatch(const SpinLatch&) = delete;
  SpinLatch& operator=(const SpinLatch&) = delete;

  void Lock() {
    while (true) {
      if (!locked_.exchange(true, std::memory_order_acquire)) {
        return;
      }
      while (locked_.load(std::memory_order_relaxed)) {
        CpuRelax();
      }
    }
  }

  bool TryLock() { return !locked_.exchange(true, std::memory_order_acquire); }

  void Unlock() { locked_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> locked_{false};
};

class SpinLatchGuard {
 public:
  explicit SpinLatchGuard(SpinLatch& latch) : latch_(latch) { latch_.Lock(); }
  ~SpinLatchGuard() { latch_.Unlock(); }
  SpinLatchGuard(const SpinLatchGuard&) = delete;
  SpinLatchGuard& operator=(const SpinLatchGuard&) = delete;

 private:
  SpinLatch& latch_;
};

}  // namespace nvc
