// Core value types shared by every NVCaracal subsystem.
#pragma once

#include <cstddef>
#include <cstdint>

namespace nvc {

// Cache line size assumed by the persistence model (clwb granularity).
inline constexpr std::size_t kCacheLineSize = 64;

// Internal access granularity of Intel Optane Persistent Memory. Used for
// locality accounting in the simulated device and as the default persistent
// row size (paper section 5.3).
inline constexpr std::size_t kNvmAccessGranularity = 256;

using Epoch = std::uint32_t;
using TableId = std::uint32_t;
using Key = std::uint64_t;

// Serial ID of a transaction: strictly increasing across the predetermined
// serial order. The epoch occupies the upper 32 bits, so SIDs in later
// epochs always compare greater, and the writing epoch of any version can be
// recovered from its SID alone (needed by crash repair, paper section 4.5).
class Sid {
 public:
  constexpr Sid() = default;
  constexpr explicit Sid(std::uint64_t raw) : raw_(raw) {}
  constexpr Sid(Epoch epoch, std::uint32_t seq)
      : raw_((static_cast<std::uint64_t>(epoch) << 32) | seq) {}

  constexpr std::uint64_t raw() const { return raw_; }
  constexpr Epoch epoch() const { return static_cast<Epoch>(raw_ >> 32); }
  constexpr std::uint32_t seq() const { return static_cast<std::uint32_t>(raw_); }
  constexpr bool is_null() const { return raw_ == 0; }

  friend constexpr bool operator==(Sid a, Sid b) { return a.raw_ == b.raw_; }
  friend constexpr bool operator!=(Sid a, Sid b) { return a.raw_ != b.raw_; }
  friend constexpr bool operator<(Sid a, Sid b) { return a.raw_ < b.raw_; }
  friend constexpr bool operator<=(Sid a, Sid b) { return a.raw_ <= b.raw_; }
  friend constexpr bool operator>(Sid a, Sid b) { return a.raw_ > b.raw_; }
  friend constexpr bool operator>=(Sid a, Sid b) { return a.raw_ >= b.raw_; }

 private:
  std::uint64_t raw_ = 0;
};

inline constexpr Sid kNullSid{};

// Rounds n up to the next multiple of align (align must be a power of two).
constexpr std::size_t AlignUp(std::size_t n, std::size_t align) {
  return (n + align - 1) & ~(align - 1);
}

constexpr bool IsPowerOfTwo(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

}  // namespace nvc
