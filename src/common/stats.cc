#include "src/common/stats.h"

#include <algorithm>
#include <cmath>

namespace nvc {

double LatencyRecorder::Mean() const {
  if (samples_.empty()) {
    return 0.0;
  }
  double total = 0.0;
  for (double s : samples_) {
    total += s;
  }
  return total / static_cast<double>(samples_.size());
}

double LatencyRecorder::Percentile(double p) const {
  if (samples_.empty()) {
    return 0.0;
  }
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  double rank = (p / 100.0) * static_cast<double>(sorted.size() - 1);
  auto lo = static_cast<std::size_t>(std::floor(rank));
  auto hi = static_cast<std::size_t>(std::ceil(rank));
  double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double LatencyRecorder::Max() const {
  if (samples_.empty()) {
    return 0.0;
  }
  return *std::max_element(samples_.begin(), samples_.end());
}

LatencySummary LatencyRecorder::Summarize() const {
  LatencySummary summary;
  summary.count = samples_.size();
  if (samples_.empty()) {
    return summary;
  }
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  double total = 0.0;
  for (double s : sorted) {
    total += s;
  }
  summary.mean = total / static_cast<double>(sorted.size());
  const auto at = [&sorted](double p) {
    const double rank = (p / 100.0) * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(rank));
    const auto hi = static_cast<std::size_t>(std::ceil(rank));
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  };
  summary.p50 = at(50);
  summary.p99 = at(99);
  summary.max = sorted.back();
  return summary;
}

}  // namespace nvc
