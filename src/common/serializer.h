// Binary encode/decode helpers for transaction inputs.
//
// Transaction inputs are persisted verbatim in the NVMM input log and decoded
// again during deterministic replay, so the wire format must be
// position-independent and self-delimiting at the record level (the log layer
// adds record framing).
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace nvc {

// Thrown when a decoder runs off the end of its input. Input payloads cross a
// crash (NVMM input log) or a network hop (replication bundles), so a torn or
// bit-flipped buffer must surface as a clean decode failure, never as an
// out-of-bounds read during replay.
class SerializeError : public std::runtime_error {
 public:
  explicit SerializeError(const std::string& what) : std::runtime_error(what) {}
};

class BinaryWriter {
 public:
  explicit BinaryWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  template <typename T>
  void Put(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* p = reinterpret_cast<const std::uint8_t*>(&value);
    out_.insert(out_.end(), p, p + sizeof(T));
  }

  void PutBytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    out_.insert(out_.end(), p, p + n);
  }

  std::size_t size() const { return out_.size(); }

 private:
  std::vector<std::uint8_t>& out_;
};

class BinaryReader {
 public:
  BinaryReader(const std::uint8_t* data, std::size_t n) : data_(data), size_(n) {}

  template <typename T>
  T Get() {
    static_assert(std::is_trivially_copyable_v<T>);
    Require(sizeof(T));
    T value;
    std::memcpy(&value, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  void GetBytes(void* out, std::size_t n) {
    Require(n);
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
  }

  void Skip(std::size_t n) {
    Require(n);
    pos_ += n;
  }

  std::size_t remaining() const { return size_ - pos_; }
  bool exhausted() const { return pos_ >= size_; }
  std::size_t pos() const { return pos_; }

 private:
  void Require(std::size_t n) const {
    if (size_ - pos_ < n) {  // pos_ <= size_ always holds, so no underflow
      throw SerializeError("BinaryReader: truncated input (need " + std::to_string(n) +
                           " bytes at offset " + std::to_string(pos_) + " of " +
                           std::to_string(size_) + ")");
    }
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace nvc
