// Hash functions for index sharding and key distribution.
#pragma once

#include <cstdint>

#include "src/common/rng.h"
#include "src/common/types.h"

namespace nvc {

// Mixes a (table, key) pair into a well-distributed 64-bit hash.
inline std::uint64_t HashKey(TableId table, Key key) {
  return SplitMix64(key ^ (static_cast<std::uint64_t>(table) * 0x9e3779b97f4a7c15ULL));
}

// FNV-1a over an arbitrary byte range; used for log record checksums.
inline std::uint64_t Fnv1a(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace nvc
