#include "src/alloc/persistent_pool.h"

#include <cassert>
#include <cstring>

namespace nvc::alloc {

std::size_t PersistentPool::RequiredBytes(const PersistentPoolConfig& config, std::size_t cores) {
  const std::size_t meta = cores * sizeof(MetaNvm);
  const std::size_t rings = cores * config.freelist_capacity * sizeof(std::uint64_t);
  const std::size_t data = cores * config.blocks_per_core * config.block_size;
  return AlignUp(meta, kNvmAccessGranularity) + AlignUp(rings, kNvmAccessGranularity) +
         AlignUp(data, kNvmAccessGranularity);
}

PersistentPool::PersistentPool(sim::NvmDevice& device, const PersistentPoolConfig& config,
                               std::uint64_t base_offset, std::size_t cores)
    : device_(device), config_(config), base_(base_offset), cores_(cores), state_(cores) {
  assert(config_.block_size > 0 && config_.blocks_per_core > 0);
  assert(config_.freelist_capacity > 0);
  ring_base_ = base_ + AlignUp(cores_ * sizeof(MetaNvm), kNvmAccessGranularity);
  data_base_ =
      ring_base_ + AlignUp(cores_ * config_.freelist_capacity * sizeof(std::uint64_t),
                           kNvmAccessGranularity);
}

void PersistentPool::Format() {
  for (std::size_t core = 0; core < cores_; ++core) {
    auto* meta = device_.As<MetaNvm>(MetaOffset(core));
    std::memset(meta, 0, sizeof(MetaNvm));
    device_.Persist(MetaOffset(core), sizeof(MetaNvm), core);
    state_[core] = CoreState{};
  }
  device_.Fence(0);
}

void PersistentPool::BeginEpoch() {
  for (CoreState& cs : state_) {
    cs.head_limit = cs.tail_at_ckpt;
  }
}

std::uint64_t PersistentPool::Alloc(std::size_t core) {
  CoreState& cs = state_[core];
  if (cs.head < cs.head_limit) {
    const std::uint64_t entry_off = RingOffset(core, cs.head);
    device_.ChargeRead(entry_off, sizeof(std::uint64_t), core);
    const std::uint64_t block = *device_.As<std::uint64_t>(entry_off);
    ++cs.head;
    return block;
  }
  if (cs.bump >= config_.blocks_per_core) {
    return 0;  // exhausted
  }
  return BlockOffset(core, cs.bump++);
}

void PersistentPool::AppendToRing(std::size_t core, std::uint64_t block_offset) {
  CoreState& cs = state_[core];
  // Invariant 1: never overwrite the window [head_at_ckpt, tail) that a
  // crash-revert may need.
  assert(cs.tail - cs.head_at_ckpt < config_.freelist_capacity &&
         "persistent pool free list overflow");
  *device_.As<std::uint64_t>(RingOffset(core, cs.tail)) = block_offset;
  ++cs.tail;
}

void PersistentPool::Free(std::size_t core, std::uint64_t block_offset) {
  AppendToRing(core, block_offset);
}

void PersistentPool::FreeGc(std::size_t core, std::uint64_t block_offset) {
  assert(config_.gc_tail && "FreeGc is only valid on gc_tail pools");
  AppendToRing(core, block_offset);
}

void PersistentPool::PersistRingEntries(std::size_t core, std::size_t core_for_stats) {
  CoreState& cs = state_[core];
  const std::uint64_t cap = config_.freelist_capacity;
  std::uint64_t from = cs.tail_persisted;
  while (from < cs.tail) {
    // Persist the contiguous ring span [from, min(tail, next wrap)).
    const std::uint64_t pos = from % cap;
    const std::uint64_t span = std::min(cs.tail - from, cap - pos);
    device_.Persist(RingOffset(core, from), span * sizeof(std::uint64_t), core_for_stats);
    from += span;
  }
  cs.tail_persisted = cs.tail;
}

void PersistentPool::CheckpointCore(Epoch epoch, std::size_t core,
                                    std::size_t core_for_stats) {
  const std::size_t slot = epoch & 1;
  CoreState& cs = state_[core];
  PersistRingEntries(core, core_for_stats);
  auto* meta = device_.As<MetaNvm>(MetaOffset(core));
  meta->bump[slot] = cs.bump;
  meta->head[slot] = cs.head;
  meta->tail[slot] = cs.tail;
  device_.Persist(MetaOffset(core), sizeof(MetaNvm), core_for_stats);
  cs.head_at_ckpt = cs.head;
  cs.tail_at_ckpt = cs.tail;
}

void PersistentPool::Checkpoint(Epoch epoch, std::size_t core_for_stats) {
  for (std::size_t core = 0; core < cores_; ++core) {
    CheckpointCore(epoch, core, core_for_stats);
  }
}

void PersistentPool::PersistGcTail(std::size_t core_for_stats) {
  assert(config_.gc_tail);
  for (std::size_t core = 0; core < cores_; ++core) {
    PersistRingEntries(core, core_for_stats);
  }
  device_.Fence(core_for_stats);
  for (std::size_t core = 0; core < cores_; ++core) {
    CoreState& cs = state_[core];
    auto* meta = device_.As<MetaNvm>(MetaOffset(core));
    meta->current_tail = cs.tail;
    device_.Persist(MetaOffset(core) + offsetof(MetaNvm, current_tail), sizeof(std::uint64_t),
                    core_for_stats);
    // Execution-phase allocations may now reuse the blocks GC just freed.
    cs.head_limit = cs.tail;
  }
  device_.Fence(core_for_stats);
}

void PersistentPool::PersistBumpNonRevertible(std::size_t core_for_stats) {
  for (std::size_t core = 0; core < cores_; ++core) {
    auto* meta = device_.As<MetaNvm>(MetaOffset(core));
    meta->bump[0] = std::max(meta->bump[0], state_[core].bump);
    meta->bump[1] = std::max(meta->bump[1], state_[core].bump);
    device_.Persist(MetaOffset(core), 2 * sizeof(std::uint64_t), core_for_stats);
  }
  device_.Fence(core_for_stats);
}

void PersistentPool::Recover(Epoch last_checkpointed_epoch) {
  const std::size_t slot = last_checkpointed_epoch & 1;
  for (std::size_t core = 0; core < cores_; ++core) {
    CoreState& cs = state_[core];
    device_.ChargeRead(MetaOffset(core), sizeof(MetaNvm), core);
    const auto* meta = device_.As<MetaNvm>(MetaOffset(core));
    cs.bump = meta->bump[slot];
    cs.head = meta->head[slot];
    cs.tail = meta->tail[slot];
    cs.tail_at_ckpt = cs.tail;
    if (config_.gc_tail && meta->current_tail > cs.tail) {
      // GC frees of the crashed epoch are non-revertible (the stale values
      // were unlinked from their rows); keep them in the free list.
      cs.tail = meta->current_tail;
    }
    cs.head_at_ckpt = cs.head;
    cs.head_limit = cs.tail_at_ckpt;
    cs.tail_persisted = cs.tail;
  }
}

std::unordered_set<std::uint64_t> PersistentPool::BuildFreeSet() const {
  std::unordered_set<std::uint64_t> free_set;
  for (std::size_t core = 0; core < cores_; ++core) {
    const CoreState& cs = state_[core];
    for (std::uint64_t pos = cs.head; pos < cs.tail; ++pos) {
      const std::uint64_t entry_off =
          ring_base_ + (core * config_.freelist_capacity + pos % config_.freelist_capacity) *
                           sizeof(std::uint64_t);
      device_.ChargeRead(entry_off, sizeof(std::uint64_t), core);
      free_set.insert(*device_.As<std::uint64_t>(entry_off));
    }
  }
  return free_set;
}

std::unordered_set<std::uint64_t> PersistentPool::GcWindowEntries() const {
  std::unordered_set<std::uint64_t> window;
  for (std::size_t core = 0; core < cores_; ++core) {
    const CoreState& cs = state_[core];
    for (std::uint64_t pos = cs.tail_at_ckpt; pos < cs.tail; ++pos) {
      const std::uint64_t entry_off =
          ring_base_ + (core * config_.freelist_capacity + pos % config_.freelist_capacity) *
                           sizeof(std::uint64_t);
      device_.ChargeRead(entry_off, sizeof(std::uint64_t), core);
      window.insert(*device_.As<std::uint64_t>(entry_off));
    }
  }
  return window;
}

void PersistentPool::ForEachAllocated(std::size_t core,
                                      const std::unordered_set<std::uint64_t>& free_set,
                                      const std::function<void(std::uint64_t)>& fn) const {
  const CoreState& cs = state_[core];
  for (std::uint64_t block = 0; block < cs.bump; ++block) {
    const std::uint64_t offset = BlockOffset(core, block);
    if (free_set.find(offset) == free_set.end()) {
      fn(offset);
    }
  }
}

std::uint64_t PersistentPool::blocks_allocated() const {
  std::uint64_t total = 0;
  for (const CoreState& cs : state_) {
    total += cs.bump - (cs.tail - cs.head);
  }
  return total;
}

std::uint64_t PersistentPool::bump_blocks() const {
  std::uint64_t total = 0;
  for (const CoreState& cs : state_) {
    total += cs.bump;
  }
  return total;
}

}  // namespace nvc::alloc
