// Per-epoch transient memory pool (paper section 5.1).
//
// Intermediate row versions and version arrays live only for the duration of
// one epoch, so they are allocated from per-core bump allocators and the
// whole pool is discarded at the end of the epoch by resetting the bump
// offsets. Chunk memory is retained across epochs, so steady-state epochs
// perform no malloc/free at all.
//
// The pool holds two banks of arenas for pipelined epochs (DESIGN.md section
// 13): epoch N+1 flips to the other bank before its first allocation, so
// epoch N's transient state stays intact and readable while N's persistence
// tail is still in flight on the tail thread. Barrier-mode engines never
// flip; they reset the active bank at epoch end exactly as before.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/stats.h"
#include "src/common/types.h"

namespace nvc::alloc {

class TransientPool {
 public:
  // chunk_bytes is the growth quantum of each per-core arena.
  explicit TransientPool(std::size_t cores, std::size_t chunk_bytes = 1u << 20);

  TransientPool(const TransientPool&) = delete;
  TransientPool& operator=(const TransientPool&) = delete;

  // Allocates n bytes (8-byte aligned) from core's arena in the active bank.
  // Never fails except by std::bad_alloc. Thread-safe across cores, not
  // within one core.
  void* Alloc(std::size_t core, std::size_t n);

  // Discards every allocation in the active bank. Chunks are kept for reuse.
  // Caller must guarantee no allocation is concurrently in flight.
  void Reset();

  // Pipelined epochs: makes the other bank active and discards its previous
  // contents (they belong to the epoch before last, whose tail has joined).
  // The outgoing bank's allocations stay valid until the next flip. Caller
  // must guarantee no allocation is concurrently in flight.
  void FlipBank();

  // Bytes handed out and still live across both banks (DRAM footprint
  // accounting).
  std::size_t bytes_allocated() const;

  // High-water mark across all epochs (figure 8 reports the pool footprint).
  std::size_t high_water_bytes() const { return high_water_; }

  std::size_t cores() const { return banks_[0].size(); }

 private:
  struct Chunk {
    std::unique_ptr<std::uint8_t[]> data;
    std::size_t size;
  };
  struct alignas(kCacheLineSize) Arena {
    std::vector<Chunk> chunks;
    std::size_t current_chunk = 0;
    std::size_t offset = 0;  // within current chunk
    std::size_t allocated = 0;
  };

  void ResetBank(std::size_t bank);

  std::size_t chunk_bytes_;
  std::array<std::vector<Arena>, 2> banks_;
  std::size_t active_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace nvc::alloc
