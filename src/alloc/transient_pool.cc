#include "src/alloc/transient_pool.h"

#include <algorithm>

namespace nvc::alloc {

TransientPool::TransientPool(std::size_t cores, std::size_t chunk_bytes)
    : chunk_bytes_(chunk_bytes) {
  const std::size_t n = cores == 0 ? 1 : cores;
  banks_[0].resize(n);
  banks_[1].resize(n);
}

void* TransientPool::Alloc(std::size_t core, std::size_t n) {
  Arena& arena = banks_[active_][core];
  n = AlignUp(n, 8);
  while (true) {
    if (arena.current_chunk < arena.chunks.size()) {
      Chunk& chunk = arena.chunks[arena.current_chunk];
      if (arena.offset + n <= chunk.size) {
        void* p = chunk.data.get() + arena.offset;
        arena.offset += n;
        arena.allocated += n;
        return p;
      }
      // Move to the next retained chunk (or fall through to grow).
      ++arena.current_chunk;
      arena.offset = 0;
      continue;
    }
    const std::size_t size = std::max(chunk_bytes_, n);
    arena.chunks.push_back(Chunk{std::make_unique<std::uint8_t[]>(size), size});
    arena.offset = 0;
  }
}

void TransientPool::ResetBank(std::size_t bank) {
  for (Arena& arena : banks_[bank]) {
    arena.current_chunk = 0;
    arena.offset = 0;
    arena.allocated = 0;
  }
}

void TransientPool::Reset() {
  high_water_ = std::max(high_water_, bytes_allocated());
  ResetBank(active_);
}

void TransientPool::FlipBank() {
  high_water_ = std::max(high_water_, bytes_allocated());
  active_ ^= 1;
  ResetBank(active_);
}

std::size_t TransientPool::bytes_allocated() const {
  std::size_t total = 0;
  for (const std::vector<Arena>& bank : banks_) {
    for (const Arena& arena : bank) {
      total += arena.allocated;
    }
  }
  return total;
}

}  // namespace nvc::alloc
