// Persistent NVM block pools with epoch-granularity undo (paper 5.4, 5.5).
//
// A pool hands out fixed-size NVM blocks (persistent rows, or persistent
// values) from per-core regions. Each core has:
//
//   * a bump allocator — the allocation offset lives in DRAM; two
//     checkpointed copies live in NVM, written alternately by epoch parity;
//   * a ring-buffer free list in NVM — freed block offsets are appended at
//     the tail and reused from the head; the head/tail offsets live in DRAM
//     with two checkpointed NVM copies each.
//
// Allocations therefore require no NVM writes at all, and frees append
// sequentially (persisted in batches at checkpoint time). On a crash the
// DRAM offsets are reloaded from the checkpointed copies, which reverts
// every allocation and deletion of the crashed epoch:
//
//   invariant 1 — the checkpointed free list region is never modified before
//   the next checkpoint (appends go past the checkpointed tail; ring
//   capacity asserts protect wrap-around);
//   invariant 2 — blocks freed in the current epoch are not reallocated in
//   the same epoch (the free-list head may not cross the checkpointed tail).
//
// The persistent *value* pool additionally cooperates with major GC
// (paper 5.5): GC frees are non-revertible, so they are appended during the
// initialization phase and made durable — together with a third NVM offset,
// current_tail — before the execution phase starts. A crash during execution
// reverts the free list only to its post-GC state.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "src/common/types.h"
#include "src/sim/nvm_device.h"

namespace nvc::alloc {

struct PersistentPoolConfig {
  std::size_t block_size = 0;         // bytes per block
  std::size_t blocks_per_core = 0;    // bump-area capacity per core
  std::size_t freelist_capacity = 0;  // ring entries per core
  bool gc_tail = false;               // maintain the non-revertible current_tail
};

class PersistentPool {
 public:
  // Total device bytes the pool occupies for the given core count.
  static std::size_t RequiredBytes(const PersistentPoolConfig& config, std::size_t cores);

  // Attaches to [base_offset, base_offset + RequiredBytes) of the device.
  // Call Format() exactly once per device lifetime before first use, or
  // Recover() when re-attaching after a crash.
  PersistentPool(sim::NvmDevice& device, const PersistentPoolConfig& config,
                 std::uint64_t base_offset, std::size_t cores);

  PersistentPool(const PersistentPool&) = delete;
  PersistentPool& operator=(const PersistentPool&) = delete;

  // Zeroes the pool metadata (fresh database).
  void Format();

  // ---- Epoch lifecycle ----------------------------------------------------

  // Resets the per-epoch allocation limit (head may consume entries up to
  // the checkpointed tail). Called at the start of every epoch.
  void BeginEpoch();

  // Persists the DRAM offsets into the parity slot for `epoch`, together
  // with any unpersisted free-list ring entries. The caller issues the
  // fence that makes the checkpoint durable.
  void Checkpoint(Epoch epoch, std::size_t core_for_stats);

  // Checkpoints a single core's shard (ring entries + meta parity slot).
  // The parallel epoch tail has worker w call CheckpointCore(epoch, w, w) so
  // each worker persists exactly the shard it dirtied; Checkpoint() is the
  // serial all-cores loop over this. Distinct cores may run concurrently.
  void CheckpointCore(Epoch epoch, std::size_t core, std::size_t core_for_stats);

  // Value pool only: make the init-phase GC frees durable and advance
  // current_tail, allowing the execution phase to both reuse GC'd blocks
  // and survive a crash without reverting the GC. Issues its own fences.
  void PersistGcTail(std::size_t core_for_stats);

  // Makes every allocation performed so far non-revertible by persisting the
  // bump offsets into BOTH parity slots (cold-tier demotion: a descriptor
  // may reference a freshly allocated block before the epoch commits, so the
  // allocation must survive a crash; unreferenced blocks leak boundedly).
  // Issues its own fence.
  void PersistBumpNonRevertible(std::size_t core_for_stats);

  // Reloads the DRAM offsets from the checkpointed copies of
  // `last_checkpointed_epoch` (plus current_tail for gc_tail pools).
  void Recover(Epoch last_checkpointed_epoch);

  // ---- Allocation ----------------------------------------------------------

  // Returns the device offset of a block, or 0 when the pool is exhausted.
  // Only `core` may call concurrently with itself.
  std::uint64_t Alloc(std::size_t core);

  // Revertible free (transaction logic). Appends to core's free list.
  void Free(std::size_t core, std::uint64_t block_offset);

  // Non-revertible free from major GC (gc_tail pools, init phase only).
  void FreeGc(std::size_t core, std::uint64_t block_offset);

  // ---- Recovery support -----------------------------------------------------

  // Offsets currently sitting in any core's free list (post-Recover state);
  // used to skip free blocks while scanning the row area.
  std::unordered_set<std::uint64_t> BuildFreeSet() const;

  // Ring entries appended by GC in the crashed epoch, i.e. entries in
  // (checkpointed tail, current tail]; used as the idempotence dedup set
  // when re-running major GC during recovery (paper 5.5).
  std::unordered_set<std::uint64_t> GcWindowEntries() const;

  // Invokes fn(block_offset) for every block allocated from `core`'s bump
  // area that is not in free_set.
  void ForEachAllocated(std::size_t core,
                        const std::unordered_set<std::uint64_t>& free_set,
                        const std::function<void(std::uint64_t)>& fn) const;

  // ---- Accounting -----------------------------------------------------------

  std::uint64_t blocks_allocated() const;  // bump total minus free-list population
  std::uint64_t bytes_in_use() const { return blocks_allocated() * config_.block_size; }
  std::uint64_t bump_blocks() const;       // high-water blocks taken from bump areas
  std::size_t block_size() const { return config_.block_size; }
  std::size_t cores() const { return cores_; }

 private:
  // One NVM cache line per core holding the checkpointed offsets.
  struct MetaNvm {
    std::uint64_t bump[2];
    std::uint64_t head[2];
    std::uint64_t tail[2];
    std::uint64_t current_tail;
    std::uint64_t reserved;
  };
  static_assert(sizeof(MetaNvm) == kCacheLineSize);

  struct alignas(kCacheLineSize) CoreState {
    std::uint64_t bump = 0;            // blocks taken from the bump area
    std::uint64_t head = 0;            // free list consume position (monotonic)
    std::uint64_t tail = 0;            // free list append position (monotonic)
    std::uint64_t head_limit = 0;      // alloc limit this epoch (invariant 2)
    std::uint64_t head_at_ckpt = 0;    // for ring wrap-around assertion
    std::uint64_t tail_at_ckpt = 0;    // checkpointed tail (GC dedup window base)
    std::uint64_t tail_persisted = 0;  // ring entries durable up to here
  };

  std::uint64_t MetaOffset(std::size_t core) const { return base_ + core * sizeof(MetaNvm); }
  std::uint64_t RingOffset(std::size_t core, std::uint64_t position) const {
    return ring_base_ + (core * config_.freelist_capacity + position % config_.freelist_capacity) *
                            sizeof(std::uint64_t);
  }
  std::uint64_t BlockOffset(std::size_t core, std::uint64_t block) const {
    return data_base_ + (core * config_.blocks_per_core + block) * config_.block_size;
  }

  void AppendToRing(std::size_t core, std::uint64_t block_offset);
  void PersistRingEntries(std::size_t core, std::size_t core_for_stats);

  sim::NvmDevice& device_;
  PersistentPoolConfig config_;
  std::uint64_t base_;       // meta area
  std::uint64_t ring_base_;  // free-list rings
  std::uint64_t data_base_;  // block areas
  std::size_t cores_;
  std::vector<CoreState> state_;
};

}  // namespace nvc::alloc
