// Engine configuration and database specification.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"

namespace nvc::core {

// Storage designs evaluated in the paper (sections 6.4 and 6.7).
enum class EngineMode {
  // The paper's contribution: transient intermediate versions in DRAM,
  // final write per row per epoch to NVMM, input logging for recovery.
  kNvCaracal,
  // NVCaracal without input logging (no failure recovery) — figure 10.
  kNoLogging,
  // Everything in (zero-latency) DRAM, no logging — figure 10's all-DRAM.
  // Run this mode on a device with LatencyProfile::None().
  kAllDram,
  // Version arrays in DRAM but *every* update written to NVMM (no logging;
  // Zen-style write-through with DRAM caching) — figure 7's "hybrid".
  kHybrid,
  // Version arrays and intermediate values also charged to NVMM — figure
  // 7's "Caracal in NVMM" baseline.
  kAllNvmm,
};

inline bool ModeLogsInputs(EngineMode mode) {
  return mode == EngineMode::kNvCaracal;
}

inline bool ModeWritesThrough(EngineMode mode) {
  return mode == EngineMode::kHybrid || mode == EngineMode::kAllNvmm;
}

// Deterministic concurrency control scheme (paper section 7 future work:
// "recently proposed deterministic concurrency control schemes such as Aria
// ... eliminate this [pre-declared write set] requirement ... We plan to
// explore integrating NVMM in these databases").
enum class ConcurrencyControl {
  // Caracal: pre-declared write sets, version arrays, PWV execution.
  kCaracal,
  // Aria-style: execute the whole batch against the last epoch's snapshot
  // with buffered writes, reserve write keys, then commit the conflict-free
  // transactions in one shot — the rest are deterministically deferred to
  // the next batch. No write sets, no version arrays; each committed key is
  // still written to NVMM exactly once per epoch, so the dual-version
  // checkpointing, GC and recovery machinery apply unchanged.
  kAria,
};

// How recovery treats versions written by the crashed epoch (section 6.2.3).
enum class RecoveryPolicy {
  // Fully deterministic workloads: replay detects already-written versions
  // by SID and overwrites them in place (crash-repair case 3).
  kReplayInPlace,
  // Workloads with non-deterministic order-id counters (Caracal's TPC-C):
  // revert every persistent version written by the crashed epoch during the
  // recovery scan, then replay.
  kRevertAndReplay,
};

struct TableSpec {
  std::string name;
  std::size_t row_size = kNvmAccessGranularity;  // >= kRowHeaderSize + 0
  bool ordered = false;
  std::size_t capacity_rows = 1 << 16;       // total across cores
  std::size_t freelist_capacity = 1 << 14;   // ring entries per core
};

struct DatabaseSpec {
  std::size_t workers = 1;
  EngineMode mode = EngineMode::kNvCaracal;
  ConcurrencyControl concurrency = ConcurrencyControl::kCaracal;
  RecoveryPolicy recovery = RecoveryPolicy::kReplayInPlace;

  std::vector<TableSpec> tables;
  std::vector<std::uint64_t> counters;  // initial values

  // Persistent value pool (paper 5.5). Values larger than the inline heap
  // are allocated here in fixed blocks.
  std::size_t value_block_size = 1024;
  std::size_t value_blocks_per_core = 1 << 16;
  std::size_t value_freelist_capacity = 1 << 16;

  // Multi-size value pools (the extension named in paper 5.5: "one pool for
  // each power of two size"). When non-empty, overrides the three fields
  // above; an allocation uses the smallest class that fits.
  struct ValuePoolSpec {
    std::size_t block_size;
    std::size_t blocks_per_core;
    std::size_t freelist_capacity;
  };
  std::vector<ValuePoolSpec> value_pools;

  // Input log buffer size (per parity buffer).
  std::size_t log_bytes = 16u << 20;

  // DRAM cache of persistent values (paper 4.2).
  bool enable_cache = true;
  std::size_t cache_max_entries = 1 << 20;
  Epoch cache_k = 20;

  // Cache admission on final writes (the paper's section-7 future work:
  // "creating cached versions only for hot rows, which can be identified
  // during epoch initialization"). kAlways caches every final write;
  // kHotOnly caches a final write only when the row received multiple
  // versions this epoch (its version array proves it hot) or was already
  // cached. Read misses always admit (a read is itself a heat signal).
  enum class CachePolicy { kAlways, kHotOnly };
  CachePolicy cache_policy = CachePolicy::kAlways;

  // Minor GC optimization (paper 4.4/5.3); when disabled every updated row
  // is collected by the major collector in the next epoch (figure 9).
  bool enable_minor_gc = true;

  // Persistent NVMM row index (the paper's section-7 future work). Index
  // deltas are applied in batches at each checkpoint; recovery rebuilds the
  // DRAM index from compact 32-byte slots instead of scanning full rows.
  // The fast recovery path requires RecoveryPolicy::kReplayInPlace (with
  // kRevertAndReplay, recovery falls back to the full row scan, which also
  // performs the version reverts).
  bool enable_persistent_index = false;
  // Capacity of the persisted major-GC list (rows updated per epoch whose
  // stale version needs major collection). Overflow falls back to scan
  // recovery for the next crash.
  std::size_t gc_log_capacity = 1 << 16;

  // Cold tier on block storage (the conclusion's "extend to fast
  // block-based storage" direction). When a cold device is supplied to the
  // Database constructor, persistent values whose DRAM-cached copy ages out
  // of the cache (not accessed for cache_k epochs) are demoted from NVMM to
  // the cold device during initialization; a later write promotes the row
  // back (the stale cold version is collected by the major GC). A crash
  // during demotion can leak at most one batch of cold blocks (documented
  // in DESIGN.md).
  bool enable_cold_tier = false;
  std::size_t cold_block_size = 1024;
  std::size_t cold_blocks_per_core = 1 << 16;
  std::size_t cold_freelist_capacity = 1 << 16;

  // Instant recovery (DESIGN.md section 12). During the epoch tail the
  // engine also persists a per-epoch key -> txn-slot digest next to the
  // input log; after a crash, Recover() returns as soon as the index roots
  // are rebuilt, marking the crashed epoch "pending-replay". Accesses to an
  // unreplayed key trigger targeted redo of that key's slice of the crashed
  // epoch, and a background backfill sweep retires the remaining keys.
  // Requires RecoveryPolicy::kReplayInPlace and ConcurrencyControl::kCaracal
  // (the digest is collected from the deterministic declare/insert steps).
  bool enable_instant_recovery = false;
  // Digest buffer size per parity copy (entries are 16 bytes per declared
  // write; an epoch whose digest does not fit falls back to full replay).
  std::size_t digest_bytes = 1u << 20;

  // Caracal's batch-append optimization (absent from the paper's artifact,
  // which is why contended small-row YCSB degrades at large epochs —
  // section 6.9). When enabled, the append step collects intents per worker,
  // repartitions them by row-owner core, and builds each version array with
  // one exact-capacity sorted fill instead of per-append sorted insertion.
  bool enable_batch_append = false;

  // Checks every spec-only invariant the Database constructor relies on and
  // returns the first violation with an actionable message (kOk when the
  // spec is constructible). Device-dependent checks (device size, presence
  // of a cold device) still live in the constructor, which calls this first.
  // Defined in database.cc.
  Status Validate() const;

  // Parallel epoch tail (DESIGN.md section 10). When enabled, the durability
  // tail of ExecuteEpoch — input-log serialization, cold-tier demotion, pool
  // checkpoints, persistent-index delta application, and GC-log assembly —
  // fans out over the worker pool instead of running serially on core 0,
  // with one cross-core barrier fence wherever the serial tail fenced once.
  // Disabling it restores the serial tail (A/B benchmarking, oracle tests).
  bool enable_parallel_tail = true;

  // Epoch pipelining (DESIGN.md section 13). When enabled, the persistence
  // tail of epoch N — checkpoint shards, persistent-index delta apply,
  // GC-log assembly, counter persists and the epoch-number flip — runs on a
  // dedicated tail thread while epoch N+1 begins: its input-log/digest
  // encode always overlaps, and under Aria the execute and commit phases
  // overlap too (they only read the previous epoch's snapshot and buffer
  // writes privately). Phases that mutate NVMM (insert/GC/demotion/append/
  // apply) still wait for N's header flip, preserving the exact
  // crash-ordering invariants; NVM line/byte/fence counts are identical to
  // the barrier engine. Disabling it restores the fully synchronous epoch
  // loop.
  bool enable_epoch_pipeline = true;
};

}  // namespace nvc::core
