#include "src/core/oracle.h"

#include <unordered_map>

#include "src/vstore/persistent_row.h"

namespace nvc::core {
namespace {

void Report(std::string* out, std::size_t index, std::size_t max_reports,
            const std::string& line) {
  if (out != nullptr && index < max_reports) {
    out->append(line);
    out->push_back('\n');
  }
}

}  // namespace

OracleState CaptureState(Database& db) {
  OracleState state;
  state.epoch = db.current_epoch();
  state.counters.reserve(db.counter_count());
  for (std::size_t id = 0; id < db.counter_count(); ++id) {
    state.counters.push_back(db.counter_value(static_cast<txn::CounterId>(id)));
  }
  state.tables.resize(db.table_count());
  std::vector<std::uint8_t> buffer(1 << 16);
  for (std::size_t t = 0; t < db.table_count(); ++t) {
    auto& snapshot = state.tables[t];
    std::vector<Key> keys;
    db.table_index(static_cast<TableId>(t)).ForEach([&](Key key, vstore::RowEntry*) {
      keys.push_back(key);
    });
    for (Key key : keys) {
      const StatusOr<std::uint32_t> size = db.ReadCommitted(
          static_cast<TableId>(t), key, buffer.data(),
          static_cast<std::uint32_t>(buffer.size()));
      if (!size.ok()) {
        continue;  // indexed but no committed version: logically absent
      }
      snapshot.emplace(key,
                       std::vector<std::uint8_t>(buffer.begin(), buffer.begin() + *size));
    }
  }
  return state;
}

std::uint64_t StateHash(const OracleState& state) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xFF;
      h *= 1099511628211ULL;
    }
  };
  mix(state.epoch);
  mix(state.counters.size());
  for (const std::uint64_t c : state.counters) {
    mix(c);
  }
  mix(state.tables.size());
  for (const auto& table : state.tables) {
    mix(table.size());
    for (const auto& [key, bytes] : table) {  // std::map: key order
      mix(key);
      mix(bytes.size());
      for (const std::uint8_t b : bytes) {
        h ^= b;
        h *= 1099511628211ULL;
      }
    }
  }
  return h;
}

std::uint64_t MultiShardStateHash(const std::vector<OracleState>& shards) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xFF;
      h *= 1099511628211ULL;
    }
  };
  mix(shards.size());
  for (std::size_t s = 0; s < shards.size(); ++s) {
    mix(s);
    mix(StateHash(shards[s]));
  }
  return h;
}

std::size_t DiffShardedStates(const std::vector<OracleState>& expected,
                              const std::vector<OracleState>& actual, std::string* out,
                              std::size_t max_reports) {
  std::size_t divergences = 0;
  if (expected.size() != actual.size()) {
    Report(out, divergences++, max_reports,
           "shard count: expected " + std::to_string(expected.size()) + ", got " +
               std::to_string(actual.size()));
    return divergences;
  }
  // All shards of one deployment must agree on the global epoch; a stray
  // shard that checkpointed ahead or behind is itself a divergence even when
  // its row contents match the expectation.
  for (std::size_t s = 1; s < actual.size(); ++s) {
    if (actual[s].epoch != actual[0].epoch) {
      Report(out, divergences++, max_reports,
             "shard " + std::to_string(s) + ": epoch " + std::to_string(actual[s].epoch) +
                 " disagrees with shard 0's epoch " + std::to_string(actual[0].epoch));
    }
  }
  for (std::size_t s = 0; s < expected.size(); ++s) {
    std::string shard_out;
    const std::size_t n = DiffStates(expected[s], actual[s],
                                     out != nullptr ? &shard_out : nullptr, max_reports);
    if (n > 0 && out != nullptr) {
      std::size_t line_start = 0;
      for (std::size_t i = 0; i <= shard_out.size(); ++i) {
        if (i == shard_out.size() || shard_out[i] == '\n') {
          if (i > line_start && divergences < max_reports) {
            out->append("shard " + std::to_string(s) + ": " +
                        shard_out.substr(line_start, i - line_start));
            out->push_back('\n');
          }
          line_start = i + 1;
        }
      }
    }
    divergences += n;
  }
  return divergences;
}

std::size_t DiffStates(const OracleState& expected, const OracleState& actual,
                       std::string* out, std::size_t max_reports) {
  std::size_t divergences = 0;
  if (expected.epoch != actual.epoch) {
    Report(out, divergences++, max_reports,
           "epoch: expected " + std::to_string(expected.epoch) + ", got " +
               std::to_string(actual.epoch));
  }
  if (expected.counters.size() != actual.counters.size()) {
    Report(out, divergences++, max_reports,
           "counter count: expected " + std::to_string(expected.counters.size()) +
               ", got " + std::to_string(actual.counters.size()));
  } else {
    for (std::size_t id = 0; id < expected.counters.size(); ++id) {
      if (expected.counters[id] != actual.counters[id]) {
        Report(out, divergences++, max_reports,
               "counter " + std::to_string(id) + ": expected " +
                   std::to_string(expected.counters[id]) + ", got " +
                   std::to_string(actual.counters[id]));
      }
    }
  }
  if (expected.tables.size() != actual.tables.size()) {
    Report(out, divergences++, max_reports,
           "table count: expected " + std::to_string(expected.tables.size()) + ", got " +
               std::to_string(actual.tables.size()));
    return divergences;
  }
  for (std::size_t t = 0; t < expected.tables.size(); ++t) {
    const auto& exp = expected.tables[t];
    const auto& act = actual.tables[t];
    for (const auto& [key, bytes] : exp) {
      auto it = act.find(key);
      if (it == act.end()) {
        Report(out, divergences++, max_reports,
               "table " + std::to_string(t) + " key " + std::to_string(key) +
                   ": missing after recovery (expected " + std::to_string(bytes.size()) +
                   " bytes)");
      } else if (it->second != bytes) {
        std::size_t first_bad = 0;
        const std::size_t common = std::min(bytes.size(), it->second.size());
        while (first_bad < common && bytes[first_bad] == it->second[first_bad]) {
          ++first_bad;
        }
        Report(out, divergences++, max_reports,
               "table " + std::to_string(t) + " key " + std::to_string(key) +
                   ": value mismatch (expected " + std::to_string(bytes.size()) +
                   " bytes, got " + std::to_string(it->second.size()) +
                   ", first difference at byte " + std::to_string(first_bad) + ")");
      }
    }
    for (const auto& [key, bytes] : act) {
      if (exp.find(key) == exp.end()) {
        Report(out, divergences++, max_reports,
               "table " + std::to_string(t) + " key " + std::to_string(key) +
                   ": unexpected row after recovery (" + std::to_string(bytes.size()) +
                   " bytes)");
      }
    }
  }
  return divergences;
}

std::size_t ValidatePersistentIndex(Database& db, std::string* out,
                                    std::size_t max_reports) {
  // Index deltas are applied by the epoch's persistence tail, which may still
  // be in flight under pipelining; quiesce before cross-checking so the index
  // reflects every cut epoch.
  (void)db.WaitIdle();
  std::size_t inconsistencies = 0;
  for (std::size_t t = 0; t < db.table_count(); ++t) {
    index::PersistentIndex* pindex = db.persistent_index(static_cast<TableId>(t));
    if (pindex == nullptr) {
      continue;
    }
    auto& dram = db.table_index(static_cast<TableId>(t));
    const std::size_t row_size = dram.schema().row_size;
    std::unordered_map<Key, std::uint64_t> live;
    pindex->ForEachLive(
        db.current_epoch(),
        [&](Key key, std::uint64_t prow) {
          if (!live.emplace(key, prow).second) {
            Report(out, inconsistencies++, max_reports,
                   "pindex table " + std::to_string(t) + " key " + std::to_string(key) +
                       ": duplicate live slot");
            return;
          }
          vstore::PersistentRow row(db.device(), prow, row_size);
          if (row.header()->key != key) {
            Report(out, inconsistencies++, max_reports,
                   "pindex table " + std::to_string(t) + " key " + std::to_string(key) +
                       ": row header holds key " + std::to_string(row.header()->key));
          }
          vstore::RowEntry* entry = dram.Get(key);
          if (entry == nullptr) {
            Report(out, inconsistencies++, max_reports,
                   "pindex table " + std::to_string(t) + " key " + std::to_string(key) +
                       ": live in NVMM index but absent from the DRAM index");
          } else if (entry->prow != prow) {
            Report(out, inconsistencies++, max_reports,
                   "pindex table " + std::to_string(t) + " key " + std::to_string(key) +
                       ": NVMM index names row offset " + std::to_string(prow) +
                       " but DRAM index names " + std::to_string(entry->prow));
          }
        },
        0);
    dram.ForEach([&](Key key, vstore::RowEntry* entry) {
      if (entry->prow != 0 && live.find(key) == live.end()) {
        Report(out, inconsistencies++, max_reports,
               "pindex table " + std::to_string(t) + " key " + std::to_string(key) +
                   ": in the DRAM index but not live in the NVMM index");
      }
    });
  }
  return inconsistencies;
}

std::size_t ValidateOrderedIndex(Database& db, std::string* out,
                                 std::size_t max_reports) {
  std::size_t inconsistencies = 0;
  for (std::size_t t = 0; t < db.table_count(); ++t) {
    auto& index = db.table_index(static_cast<TableId>(t));
    if (!index.schema().ordered) {
      continue;
    }
    std::unordered_map<Key, vstore::RowEntry*> hashed;
    index.ForEach([&](Key key, vstore::RowEntry* entry) {
      hashed.emplace(key, entry);
    });
    std::size_t walked = 0;
    Key prev = 0;
    bool first = true;
    index.ForRangeWhile(0, ~Key{0}, [&](Key key, vstore::RowEntry* entry) {
      ++walked;
      if (!first && key <= prev) {
        Report(out, inconsistencies++, max_reports,
               "ordered table " + std::to_string(t) + " key " + std::to_string(key) +
                   ": out of order after " + std::to_string(prev));
      }
      first = false;
      prev = key;
      auto it = hashed.find(key);
      if (it == hashed.end()) {
        Report(out, inconsistencies++, max_reports,
               "ordered table " + std::to_string(t) + " key " + std::to_string(key) +
                   ": in the ordered index but absent from the hash index");
      } else if (it->second != entry) {
        Report(out, inconsistencies++, max_reports,
               "ordered table " + std::to_string(t) + " key " + std::to_string(key) +
                   ": ordered and hash indexes name different row entries");
      }
      return true;
    });
    if (walked != hashed.size()) {
      Report(out, inconsistencies++, max_reports,
             "ordered table " + std::to_string(t) + ": ordered index holds " +
                 std::to_string(walked) + " keys but hash index holds " +
                 std::to_string(hashed.size()));
    }
  }
  return inconsistencies;
}

}  // namespace nvc::core
