// Aria-style deterministic concurrency control (paper section 7 future
// work; Lu et al., VLDB '20) integrated with the NVMM dual-version
// checkpointing machinery.
//
// Epoch pipeline (contrast with Algorithm 1's Caracal pipeline):
//
//   log_transaction_inputs()        whole batch, deferred txns included
//   execute phase                   every transaction runs against the last
//                                   epoch's snapshot; writes are buffered
//                                   privately; write keys are reserved with
//                                   an atomic min-SID per key
//   commit phase                    a transaction commits iff none of its
//                                   read or written keys carries a smaller
//                                   writer reservation (no RAW, lowest-SID
//                                   writer wins WAW); losers are deferred
//                                   deterministically to the next batch
//   GC_major() / evict / demote     init-phase NVMM work, after the commit
//                                   phase so the execute+commit half can
//                                   overlap the previous epoch's persistence
//                                   tail under pipelining (reads only see the
//                                   latest versions, which GC never moves)
//   apply phase                     committed buffered writes are applied —
//                                   at most one writer per key, so each key
//                                   is written to NVMM exactly once per
//                                   epoch through the same PersistFinal /
//                                   insert / delete paths as Caracal mode
//   fence(); persist_epoch_number(); fence()
//
// Because conflict resolution is a pure function of the batch, replaying the
// logged batch after a crash commits the same transactions and defers the
// same ones — the standard recovery machinery (allocator revert, descriptor
// repairs, case-3 overwrites) applies unchanged.
#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/hash.h"
#include "src/common/partition.h"
#include "src/core/database.h"

namespace nvc::core {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

// Sharded reservation table: (table, key) -> minimum writer SID. Reservation
// keys are hashed; a collision only merges reservations, which can defer a
// transaction unnecessarily but never misses a conflict (conservative and
// still deterministic). Ordered tables additionally keep exact per-key
// reservations in a sorted map so scan validation can ask for the minimum
// writer inside a key interval (the phantom check).
class ReservationTable {
 public:
  // `ordered_tables[t]` marks tables whose reservations also feed the
  // range-queryable side structure.
  explicit ReservationTable(std::vector<bool> ordered_tables, std::size_t shards = 16)
      : shards_(shards), ordered_tables_(std::move(ordered_tables)) {
    range_min_.resize(ordered_tables_.size());
  }

  void ReserveWrite(TableId table, Key key, Sid sid) {
    Shard& shard = ShardFor(table, key);
    {
      SpinLatchGuard guard(shard.latch);
      auto [it, inserted] = shard.min_writer.try_emplace(HashKey(table, key), sid.raw());
      if (!inserted && sid.raw() < it->second) {
        it->second = sid.raw();
      }
    }
    if (table < ordered_tables_.size() && ordered_tables_[table]) {
      SpinLatchGuard guard(range_latch_);
      auto [it, inserted] = range_min_[table].try_emplace(key, sid.raw());
      if (!inserted && sid.raw() < it->second) {
        it->second = sid.raw();
      }
    }
  }

  // The smallest writer SID reserved on the key, or 0 when none.
  std::uint64_t MinWriter(TableId table, Key key) {
    Shard& shard = ShardFor(table, key);
    SpinLatchGuard guard(shard.latch);
    auto it = shard.min_writer.find(HashKey(table, key));
    return it == shard.min_writer.end() ? 0 : it->second;
  }

  // The smallest writer SID reserved on any key in [lo, hi] of an ordered
  // table, or 0 when none (exact keys — no hash collisions here, so a scan
  // only defers on a genuine interval overlap).
  std::uint64_t MinWriterInRange(TableId table, Key lo, Key hi) {
    SpinLatchGuard guard(range_latch_);
    std::uint64_t min_sid = 0;
    const auto& m = range_min_[table];
    for (auto it = m.lower_bound(lo); it != m.end() && it->first <= hi; ++it) {
      if (min_sid == 0 || it->second < min_sid) {
        min_sid = it->second;
      }
    }
    return min_sid;
  }

  void Clear() {
    for (Shard& shard : shards_) {
      shard.min_writer.clear();
    }
    for (auto& m : range_min_) {
      m.clear();
    }
  }

 private:
  struct alignas(kCacheLineSize) Shard {
    SpinLatch latch;
    std::unordered_map<std::uint64_t, std::uint64_t> min_writer;
  };
  Shard& ShardFor(TableId table, Key key) {
    return shards_[PartitionOf(table, key, shards_.size())];
  }
  std::vector<Shard> shards_;
  std::vector<bool> ordered_tables_;
  SpinLatch range_latch_;
  std::vector<std::map<Key, std::uint64_t>> range_min_;  // per ordered table
};

struct BufferedOp {
  enum Kind { kWrite, kInsert, kDelete } kind;
  TableId table;
  Key key;
  std::vector<std::uint8_t> data;
};

struct AriaTxnState {
  txn::Transaction* txn = nullptr;
  Sid sid;
  bool user_aborted = false;
  bool deferred = false;
  std::vector<std::pair<TableId, Key>> reads;
  std::vector<BufferedOp> writes;
  // Observed scan intervals ([lo, hi] clamped to the last delivered key when
  // the scan stopped early); validated against the reservation table's
  // ordered side in the commit phase (phantom check).
  std::vector<txn::ScanSpec> scans;
};

}  // namespace

// Snapshot reads + private write buffering.
class AriaExecContext final : public txn::ExecContext {
 public:
  AriaExecContext(Database* db, AriaTxnState* st, std::size_t core)
      : db_(db), st_(st), core_(core) {}

  int Read(TableId table, Key key, void* out, std::uint32_t cap) override {
    // Read-your-own-writes from the buffer first (latest op wins).
    for (auto it = st_->writes.rbegin(); it != st_->writes.rend(); ++it) {
      if (it->table == table && it->key == key) {
        if (it->kind == BufferedOp::kDelete) {
          return -1;
        }
        std::memcpy(out, it->data.data(), std::min<std::size_t>(cap, it->data.size()));
        return static_cast<int>(it->data.size());
      }
    }
    st_->reads.emplace_back(table, key);
    return db_->AriaSnapshotRead(table, key, out, cap, core_);
  }

  void Write(TableId table, Key key, const void* data, std::uint32_t size) override {
    st_->writes.push_back(BufferedOp{
        BufferedOp::kWrite, table, key,
        std::vector<std::uint8_t>(static_cast<const std::uint8_t*>(data),
                                  static_cast<const std::uint8_t*>(data) + size)});
  }

  void Insert(TableId table, Key key, const void* data, std::uint32_t size) override {
    st_->writes.push_back(BufferedOp{
        BufferedOp::kInsert, table, key,
        std::vector<std::uint8_t>(static_cast<const std::uint8_t*>(data),
                                  static_cast<const std::uint8_t*>(data) + size)});
  }

  void Delete(TableId table, Key key) override {
    st_->writes.push_back(BufferedOp{BufferedOp::kDelete, table, key, {}});
  }

  void Abort() override { st_->user_aborted = true; }

  bool FirstInRange(TableId table, Key lo, Key hi, Key* found) override {
    return db_->tables_[table]->FirstInRange(lo, hi, found);
  }
  bool LastInRange(TableId table, Key lo, Key hi, Key* found) override {
    return db_->tables_[table]->LastInRange(lo, hi, found);
  }

  // Snapshot range scan merged with this transaction's own buffered writes
  // (read-your-own-writes; buffered deletes hide the key). The observed
  // interval — [lo, hi], clamped to the last delivered key when the scan
  // stopped early — is recorded for the commit phase's phantom check: any
  // smaller-SID write reservation inside it defers this transaction, because
  // in serial order that write would have changed what the scan returned.
  std::uint32_t Scan(const txn::ScanSpec& spec, const txn::ScanRowFn& fn) override {
    if (!db_->tables_[spec.table]->schema().ordered) {
      throw std::logic_error("Scan on table " + std::to_string(spec.table) +
                             " which is not TableSchema::ordered");
    }
    std::map<Key, const BufferedOp*> own;  // latest buffered op per key
    for (const BufferedOp& op : st_->writes) {
      if (op.table == spec.table && op.key >= spec.lo && op.key <= spec.hi) {
        own[op.key] = &op;
      }
    }
    std::vector<Key> snapshot;
    db_->tables_[spec.table]->ForRangeWhile(
        spec.lo, spec.hi, [&snapshot](Key key, vstore::RowEntry*) {
          snapshot.push_back(key);
          return true;
        });
    std::uint32_t delivered = 0;
    Key observed_hi = spec.hi;
    std::vector<std::uint8_t> buf(256);
    std::size_t si = 0;
    auto oi = own.begin();
    while (si < snapshot.size() || oi != own.end()) {
      Key key;
      const BufferedOp* op = nullptr;
      if (oi != own.end() && (si >= snapshot.size() || oi->first <= snapshot[si])) {
        key = oi->first;
        op = oi->second;
        if (si < snapshot.size() && snapshot[si] == key) {
          ++si;  // the buffered op shadows the snapshot version
        }
        ++oi;
      } else {
        key = snapshot[si++];
      }
      const std::uint8_t* data = nullptr;
      std::uint32_t size = 0;
      if (op != nullptr) {
        if (op->kind == BufferedOp::kDelete) {
          continue;  // deleted by this transaction: invisible
        }
        data = op->data.data();
        size = static_cast<std::uint32_t>(op->data.size());
      } else {
        int n = db_->AriaSnapshotRead(spec.table, key, buf.data(),
                                      static_cast<std::uint32_t>(buf.size()), core_);
        if (n < 0) {
          continue;  // no committed pre-epoch version
        }
        if (static_cast<std::size_t>(n) > buf.size()) {
          buf.resize(static_cast<std::size_t>(n));
          n = db_->AriaSnapshotRead(spec.table, key, buf.data(),
                                    static_cast<std::uint32_t>(buf.size()), core_);
        }
        data = buf.data();
        size = static_cast<std::uint32_t>(n);
      }
      ++delivered;
      const bool keep_going = fn(key, data, size);
      if (delivered >= spec.limit || !keep_going) {
        // Stopped early at `key`: smaller-SID writes beyond it cannot change
        // the delivered prefix, so the validated interval ends here.
        observed_hi = key;
        break;
      }
    }
    txn::ScanSpec observed = spec;
    observed.hi = observed_hi;
    st_->scans.push_back(observed);
    return delivered;
  }
  std::uint64_t CounterEpochStart(txn::CounterId counter) const override {
    return db_->counters_epoch_start_[counter];
  }
  Sid sid() const override { return st_->sid; }

 private:
  Database* db_;
  AriaTxnState* st_;
  std::size_t core_;
};

// Reads the latest version committed before the executing epoch (the Aria
// snapshot). Bound-aware so replay skips versions the crashed epoch wrote.
int Database::AriaSnapshotRead(TableId table, Key key, void* out, std::uint32_t cap,
                               std::size_t core) {
  vstore::RowEntry* entry = tables_[table]->Get(key);
  if (entry == nullptr || entry->prow == 0) {
    return -1;
  }
  if (spec_.enable_cache) {
    vstore::CachedValue* cached = entry->cached.load(std::memory_order_acquire);
    if (cached != nullptr) {
      cache_->Touch(entry, epoch_);
      stats_.cache_hits.Add(core);
      std::memcpy(out, cached->data(), std::min(cap, cached->size));
      return static_cast<int>(cached->size);
    }
    stats_.cache_misses.Add(core);
  }
  vstore::PersistentRow row = RowAt(entry);
  const int slot = row.LatestSlotAtOrBefore(Sid(Sid(epoch_, 0).raw() - 1));
  if (slot < 0) {
    return -1;
  }
  const vstore::VersionDesc desc = row.ReadDesc(slot);
  const vstore::ValueLoc loc(desc.loc);
  if (loc.size() <= cap) {
    ReadVersionValue(row, desc, out, core);
    if (spec_.enable_cache) {
      SpinLatchGuard guard(entry->latch);
      if (entry->cached.load(std::memory_order_relaxed) == nullptr) {
        cache_->Put(entry, out, loc.size(), epoch_, core);
      }
    }
    return static_cast<int>(loc.size());
  }
  std::vector<std::uint8_t> tmp(loc.size());
  ReadVersionValue(row, desc, tmp.data(), core);
  std::memcpy(out, tmp.data(), cap);
  return static_cast<int>(loc.size());
}

EpochResult Database::ExecuteEpochAria(std::vector<std::unique_ptr<txn::Transaction>> txns) {
  assert(loaded_ && "call Format + FinalizeLoad (or Recover) first");
  // Pipelined epochs: Aria's execute and commit phases only read the
  // previous epoch's snapshot and buffer writes privately, so they overlap
  // the previous epoch's persistence tail along with the log encode. The
  // init-phase NVMM work (major GC, eviction, demotions) runs after the
  // commit phase in BOTH modes — identical phase order keeps the pipelined
  // and barrier engines' NVM traffic byte-identical — and waits for the tail
  // under pipelining, as does everything from the apply phase on.
  const bool pipelined = spec_.enable_epoch_pipeline && !replaying_;
  if (pipelined && !tail_thread_.joinable()) {
    nvm_mirror_snapshot_ = device_.stats().Snapshot();
    tail_thread_ = std::thread(&Database::TailThreadMain, this);
  }
  const auto start = std::chrono::steady_clock::now();
  const Epoch epoch = current_epoch_ + 1;
  epoch_ = epoch;

  // Batch = previously deferred transactions (in their original relative
  // order) followed by the new ones.
  owned_txns_.clear();
  owned_txns_.reserve(aria_deferred_.size() + txns.size());
  for (auto& txn : aria_deferred_) {
    owned_txns_.push_back(std::move(txn));
  }
  aria_deferred_.clear();
  for (auto& txn : txns) {
    owned_txns_.push_back(std::move(txn));
  }

  std::vector<AriaTxnState> states(owned_txns_.size());
  for (std::size_t i = 0; i < owned_txns_.size(); ++i) {
    states[i].txn = owned_txns_[i].get();
    states[i].sid = Sid(epoch, static_cast<std::uint32_t>(i + 1));
  }

  EpochResult result;
  result.epoch = epoch;
  // Per executed slot (deferred-carryover transactions first); delivered to
  // the epoch callback once the epoch number is durable.
  std::vector<TxnOutcome> outcomes;
  try {
    if (ModeLogsInputs(spec_.mode) && !replaying_) {
      last_log_bytes_ = log_->LogEpoch(epoch, owned_txns_, 0);
      stats_.log_bytes.Add(0, last_log_bytes_);
    }
    MaybeCrash(CrashSite::kAfterLog);
    MaybeCrash(CrashSite::kMidOverlapExecute);

    // Counter epoch-start snapshot before execute (AriaExecContext reads
    // it). Pure atomic loads — safe while the previous tail persists the
    // counter area concurrently.
    counters_epoch_start_.resize(counters_.size());
    for (std::size_t i = 0; i < counters_.size(); ++i) {
      counters_epoch_start_[i] = counters_[i].load(std::memory_order_relaxed);
    }

    // ---- Execute phase: snapshot reads, buffered writes, reservations ----
    std::vector<bool> ordered_tables(tables_.size());
    for (std::size_t t = 0; t < tables_.size(); ++t) {
      ordered_tables[t] = tables_[t]->schema().ordered;
    }
    ReservationTable reservations(std::move(ordered_tables));
    const bool hook_each_txn = static_cast<bool>(crash_hook_) && spec_.workers == 1;
    pool_.RunParallel([&](std::size_t w) {
      for (std::size_t i = w; i < states.size(); i += spec_.workers) {
        if (hook_each_txn) {
          MaybeCrash(CrashSite::kMidExecution);
        }
        AriaTxnState& st = states[i];
        AriaExecContext ctx(this, &st, w);
        st.txn->Execute(ctx);
        if (!st.user_aborted) {
          for (const BufferedOp& op : st.writes) {
            reservations.ReserveWrite(op.table, op.key, st.sid);
          }
        }
      }
    });
    MaybeCrash(CrashSite::kAfterAppend);

    // ---- Commit phase: conflict checks ----
    pool_.RunParallel([&](std::size_t w) {
      for (std::size_t i = w; i < states.size(); i += spec_.workers) {
        AriaTxnState& st = states[i];
        if (st.user_aborted) {
          continue;
        }
        bool defer = false;
        for (const BufferedOp& op : st.writes) {
          const std::uint64_t min_writer = reservations.MinWriter(op.table, op.key);
          if (min_writer != 0 && min_writer < st.sid.raw()) {
            defer = true;  // WAW: a smaller writer owns the key this batch
            break;
          }
        }
        if (!defer) {
          for (const auto& [table, key] : st.reads) {
            const std::uint64_t min_writer = reservations.MinWriter(table, key);
            if (min_writer != 0 && min_writer < st.sid.raw()) {
              defer = true;  // RAW: read a key a smaller transaction writes
              break;
            }
          }
        }
        if (!defer) {
          for (const txn::ScanSpec& scan : st.scans) {
            if (hook_each_txn) {
              MaybeCrash(CrashSite::kMidScanValidate);
            }
            const std::uint64_t min_writer =
                reservations.MinWriterInRange(scan.table, scan.lo, scan.hi);
            if (min_writer != 0 && min_writer < st.sid.raw()) {
              defer = true;  // phantom: a smaller transaction wrote inside
                             // the observed scan interval
              break;
            }
          }
        }
        st.deferred = defer;
      }
    });

    // Everything below mutates state the previous epoch's tail reads (pool
    // allocator meta, core_state_ GC lists, index deltas): wait for it.
    if (pipelined) {
      if (!JoinTail()) {
        result.crashed = true;
        return result;
      }
      transient_.FlipBank();
    }

    for (auto& pool : value_pools_) {
      pool->BeginEpoch();
    }
    for (auto& pool : row_pools_) {
      pool->BeginEpoch();
    }
    if (cold_pool_ != nullptr) {
      cold_pool_->BeginEpoch();
    }
    for (std::size_t w = 0; w < spec_.workers; ++w) {
      pending_major_gc_[w] = std::move(core_state_[w].major_gc);
      core_state_[w].major_gc.clear();
    }
    cold_frees_due_ = std::move(cold_frees_next_);
    cold_frees_next_.clear();

    RunMajorGc();
    if (spec_.enable_cache) {
      vstore::VersionCache::EvictCallback on_evict;
      if (spec_.enable_cold_tier) {
        on_evict = [this](vstore::RowEntry* entry) {
          demotion_candidates_.push_back(entry);
        };
      }
      cache_->EvictForEpoch(epoch, &stats_, on_evict);
    }
    if (spec_.enable_cold_tier) {
      RunDemotions();
    }
    MaybeCrash(CrashSite::kAfterInsert);

    // ---- Apply phase: committed writes reach NVMM once per key ----
    // Per-transaction ops are coalesced per key first (only the net effect
    // is applied): repeated writes keep the last data; write-after-insert is
    // an insert with the final data; insert-then-delete is a no-op.
    pool_.RunParallel([&](std::size_t w) {
      for (std::size_t i = w; i < states.size(); i += spec_.workers) {
        AriaTxnState& st = states[i];
        if (st.user_aborted || st.deferred) {
          continue;
        }
        std::vector<std::size_t> last_op;
        std::vector<bool> inserted_key;
        for (std::size_t op_index = 0; op_index < st.writes.size(); ++op_index) {
          const BufferedOp& op = st.writes[op_index];
          std::size_t found = last_op.size();
          for (std::size_t j = 0; j < last_op.size(); ++j) {
            const BufferedOp& prev = st.writes[last_op[j]];
            if (prev.table == op.table && prev.key == op.key) {
              found = j;
              break;
            }
          }
          if (found == last_op.size()) {
            last_op.push_back(op_index);
            inserted_key.push_back(op.kind == BufferedOp::kInsert);
          } else {
            last_op[found] = op_index;
            if (op.kind == BufferedOp::kInsert) {
              inserted_key[found] = true;
            }
          }
        }
        for (std::size_t j = 0; j < last_op.size(); ++j) {
          const BufferedOp& op = st.writes[last_op[j]];
          const bool fresh = inserted_key[j];
          switch (op.kind) {
            case BufferedOp::kInsert:
              InsertRowInternal(op.table, op.key, op.data.data(),
                                static_cast<std::uint32_t>(op.data.size()), st.sid, w);
              break;
            case BufferedOp::kWrite:
              if (fresh) {
                InsertRowInternal(op.table, op.key, op.data.data(),
                                  static_cast<std::uint32_t>(op.data.size()), st.sid, w);
              } else {
                vstore::RowEntry* entry = tables_[op.table]->Get(op.key);
                assert(entry != nullptr && "Aria write to a missing row");
                PersistFinal(entry, st.sid, op.data.data(),
                             static_cast<std::uint32_t>(op.data.size()), w);
              }
              break;
            case BufferedOp::kDelete:
              if (!fresh) {
                vstore::RowEntry* entry = tables_[op.table]->Get(op.key);
                assert(entry != nullptr && "Aria delete of a missing row");
                ProcessDelete(entry, w);
              }
              break;
          }
        }
      }
    });
    MaybeCrash(CrashSite::kAfterExecution);

    // Deferred transactions carry over to the next batch, keeping order.
    std::vector<std::unique_ptr<txn::Transaction>> still_deferred;
    outcomes.reserve(states.size());
    for (std::size_t i = 0; i < states.size(); ++i) {
      const AriaTxnState& st = states[i];
      if (st.deferred) {
        still_deferred.push_back(std::move(owned_txns_[i]));
        ++result.deferred;
        outcomes.push_back(TxnOutcome::kDeferred);
      } else if (st.user_aborted) {
        ++result.aborted;
        stats_.txn_aborted.Add(0);
        outcomes.push_back(TxnOutcome::kAborted);
      } else {
        ++result.committed;
        stats_.txn_committed.Add(0);
        outcomes.push_back(TxnOutcome::kCommitted);
      }
    }

    for (CoreEpochState& cs : core_state_) {
      for (vstore::RowEntry* entry : cs.deleted) {
        tables_[entry->table]->Remove(entry->key);
      }
      cs.deleted.clear();
    }

    if (pipelined) {
      // Cut point: hand the persistence tail to the tail thread. The
      // execute phase's lines move to the detached set so the next epoch's
      // overlapped front cannot retire them with its own fences.
      device_.DetachPending();
      aria_deferred_ = std::move(still_deferred);
      owned_txns_.clear();
      current_epoch_ = epoch;
      result.seconds = SecondsSince(start);
      TailWork work;
      work.epoch = epoch;
      work.result = result;
      work.outcomes = std::move(outcomes);
      work.has_outcomes = true;
      SubmitTail(std::move(work));
      return result;
    }

    CheckpointEpoch(epoch);
    FinishEpoch();
    aria_deferred_ = std::move(still_deferred);
    current_epoch_ = epoch;
  } catch (const CrashedException&) {
    if (pipelined) {
      JoinTail();  // quiesce the in-flight tail before the harness crashes us
    }
    result.crashed = true;
    return result;
  }

  result.seconds = SecondsSince(start);
  {
    std::lock_guard<std::mutex> lock(callback_mu_);
    if (epoch_callback_) {
      epoch_callback_(result, outcomes);
    }
  }
  return result;
}

}  // namespace nvc::core
