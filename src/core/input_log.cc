#include "src/core/input_log.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "src/common/hash.h"
#include "src/common/profiler.h"
#include "src/common/serializer.h"
#include "src/common/worker_pool.h"
#include "src/txn/stream.h"

namespace nvc::core {
namespace {

// Checksum chunk size. Must divide evenly into worker slices only at chunk
// granularity, not byte granularity, so any value works; 4 KB keeps the
// per-chunk hash array tiny.
constexpr std::size_t kChecksumChunk = 4096;

std::uint64_t AlignDownLine(std::uint64_t offset) {
  return offset / kCacheLineSize * kCacheLineSize;
}

}  // namespace

InputLog::InputLog(sim::NvmDevice& device, std::uint64_t base_offset, std::size_t buffer_bytes)
    : device_(device), base_(base_offset), buffer_bytes_(buffer_bytes) {}

std::uint64_t InputLog::Checksum(const std::uint8_t* data, std::size_t n) {
  const std::size_t chunks = (n + kChecksumChunk - 1) / kChecksumChunk;
  std::vector<std::uint64_t> hashes(chunks);
  for (std::size_t i = 0; i < chunks; ++i) {
    const std::size_t begin = i * kChecksumChunk;
    hashes[i] = Fnv1a(data + begin, std::min(kChecksumChunk, n - begin));
  }
  return Fnv1a(reinterpret_cast<const std::uint8_t*>(hashes.data()),
               chunks * sizeof(std::uint64_t));
}

void InputLog::Format() {
  for (int parity = 0; parity < 2; ++parity) {
    auto* header = device_.As<LogHeader>(base_ + parity * buffer_bytes_);
    std::memset(header, 0, sizeof(LogHeader));
    device_.Persist(base_ + parity * buffer_bytes_, sizeof(LogHeader), 0);
  }
  device_.Fence(0);
}

std::size_t InputLog::LogEpoch(Epoch epoch,
                               const std::vector<std::unique_ptr<txn::Transaction>>& txns,
                               std::size_t core) {
  const std::vector<std::uint8_t> payload = txn::EncodeTxnStream(txns);

  const std::uint64_t buffer = BufferOffset(epoch);
  if (sizeof(LogHeader) + payload.size() > buffer_bytes_) {
    throw std::runtime_error("InputLog: epoch inputs exceed log buffer size");
  }

  // Invalidate the buffer first so a crash mid-write cannot leave a stale
  // complete header in front of new payload bytes.
  auto* header = device_.As<LogHeader>(buffer);
  header->complete = 0;
  device_.Persist(buffer + offsetof(LogHeader, complete), sizeof(std::uint64_t), core);
  device_.Fence(core);

  // Bulk, sequential payload write at close to full NVMM bandwidth.
  device_.WritePersist(buffer + sizeof(LogHeader), payload.data(), payload.size(), core);
  header->epoch = epoch;
  header->txn_count = static_cast<std::uint32_t>(txns.size());
  header->payload_bytes = payload.size();
  header->checksum = Checksum(payload.data(), payload.size());
  device_.Persist(buffer, sizeof(LogHeader), core);
  device_.Fence(core);

  header->complete = 1;
  device_.Persist(buffer + offsetof(LogHeader, complete), sizeof(std::uint64_t), core);
  device_.Fence(core);
  return payload.size();
}

std::size_t InputLog::LogEpochParallel(Epoch epoch,
                                       const std::vector<std::unique_ptr<txn::Transaction>>& txns,
                                       WorkerPool& pool, PhaseProfiler& profiler) {
  const std::size_t workers = pool.size();

  // Pass 1: encode disjoint serial-order ranges into per-worker DRAM
  // buffers. Concatenating the ranges reproduces EncodeTxnStream exactly
  // (records are independently framed).
  std::vector<std::vector<std::uint8_t>> parts(workers);
  pool.RunParallel([&](std::size_t w) {
    PhaseProfiler::WorkerScope scope(profiler, w);
    const Range r = SplitRange(txns.size(), workers, w);
    parts[w] = txn::EncodeTxnRange(txns, r.begin, r.end);
  });

  std::vector<std::uint64_t> part_base(workers);
  std::uint64_t payload_bytes = 0;
  for (std::size_t w = 0; w < workers; ++w) {
    part_base[w] = payload_bytes;
    payload_bytes += parts[w].size();
  }

  const std::uint64_t buffer = BufferOffset(epoch);
  // Capacity check before the device is touched, like the serial path: an
  // overflowing epoch must leave the previous log intact.
  if (sizeof(LogHeader) + payload_bytes > buffer_bytes_) {
    throw std::runtime_error("InputLog: epoch inputs exceed log buffer size");
  }

  auto* header = device_.As<LogHeader>(buffer);
  header->complete = 0;
  device_.Persist(buffer + offsetof(LogHeader, complete), sizeof(std::uint64_t), 0);
  device_.Fence(0);

  // Pass 2: copy each worker's bytes to its prefix-summed position and
  // persist line-disjoint slices. Interior slice boundaries are aligned down
  // to cache lines so no line is covered by two Persist calls — the summed
  // persisted_lines/write_bytes equal the serial single-call counts; only
  // persist_ops grows (one op per active slice instead of one total).
  const std::uint64_t payload_start = buffer + sizeof(LogHeader);
  const std::uint64_t payload_end = payload_start + payload_bytes;
  pool.RunParallel([&](std::size_t w) {
    PhaseProfiler::WorkerScope scope(profiler, w);
    if (!parts[w].empty()) {
      std::memcpy(device_.At(payload_start + part_base[w]), parts[w].data(), parts[w].size());
    }
    const std::uint64_t slice_begin =
        w == 0 ? payload_start
               : std::max(payload_start, AlignDownLine(payload_start + part_base[w]));
    const std::uint64_t slice_end =
        w + 1 == workers
            ? payload_end
            : std::max(payload_start, AlignDownLine(payload_start + part_base[w + 1]));
    if (slice_end > slice_begin) {
      device_.Persist(slice_begin, slice_end - slice_begin, w);
    }
  });

  // Pass 3: hash disjoint checksum-chunk ranges straight off the device
  // image (all bytes are in place after the join above).
  const std::size_t chunks = (payload_bytes + kChecksumChunk - 1) / kChecksumChunk;
  std::vector<std::uint64_t> chunk_hashes(chunks);
  pool.RunParallel([&](std::size_t w) {
    PhaseProfiler::WorkerScope scope(profiler, w);
    const Range r = SplitRange(chunks, workers, w);
    for (std::size_t i = r.begin; i < r.end; ++i) {
      const std::size_t begin = i * kChecksumChunk;
      chunk_hashes[i] = Fnv1a(device_.At(payload_start + begin),
                              std::min<std::size_t>(kChecksumChunk, payload_bytes - begin));
    }
  });

  header->epoch = epoch;
  header->txn_count = static_cast<std::uint32_t>(txns.size());
  header->payload_bytes = payload_bytes;
  header->checksum = Fnv1a(reinterpret_cast<const std::uint8_t*>(chunk_hashes.data()),
                           chunks * sizeof(std::uint64_t));
  device_.Persist(buffer, sizeof(LogHeader), 0);
  // The workers' payload persists are staged on their own cores: one
  // cross-core barrier orders payload + header before the complete flag,
  // exactly where the serial path fenced once. Bounded to the worker cores —
  // under pipelined epochs this runs concurrently with the previous epoch's
  // tail thread, which owns the device core at index `workers`.
  device_.FenceWorkers(workers, 0);

  header->complete = 1;
  device_.Persist(buffer + offsetof(LogHeader, complete), sizeof(std::uint64_t), 0);
  device_.Fence(0);
  return payload_bytes;
}

void InputLog::AttachDigestArea(std::uint64_t base_offset, std::size_t buffer_bytes) {
  digest_base_ = base_offset;
  digest_bytes_ = buffer_bytes;
}

void InputLog::FormatDigest() {
  for (int parity = 0; parity < 2; ++parity) {
    auto* header = device_.As<LogHeader>(digest_base_ + parity * digest_bytes_);
    std::memset(header, 0, sizeof(LogHeader));
    device_.Persist(digest_base_ + parity * digest_bytes_, sizeof(LogHeader), 0);
  }
  device_.Fence(0);
}

bool InputLog::LogDigest(Epoch epoch, const std::vector<DigestEntry>& entries,
                         std::size_t core) {
  const std::uint64_t buffer = DigestBufferOffset(epoch);
  const std::size_t payload_bytes = entries.size() * sizeof(DigestEntry);

  // Invalidate first in every case: after an overflow the buffer must not
  // present a stale complete digest next to the new epoch's log.
  auto* header = device_.As<LogHeader>(buffer);
  header->complete = 0;
  device_.Persist(buffer + offsetof(LogHeader, complete), sizeof(std::uint64_t), core);
  device_.Fence(core);

  if (sizeof(LogHeader) + payload_bytes > digest_bytes_) {
    return false;  // falls back to full replay for this epoch
  }

  device_.WritePersist(buffer + sizeof(LogHeader),
                       reinterpret_cast<const std::uint8_t*>(entries.data()), payload_bytes,
                       core);
  header->epoch = epoch;
  header->txn_count = static_cast<std::uint32_t>(entries.size());
  header->payload_bytes = payload_bytes;
  header->checksum =
      Checksum(reinterpret_cast<const std::uint8_t*>(entries.data()), payload_bytes);
  device_.Persist(buffer, sizeof(LogHeader), core);
  device_.Fence(core);

  header->complete = 1;
  device_.Persist(buffer + offsetof(LogHeader, complete), sizeof(std::uint64_t), core);
  device_.Fence(core);
  return true;
}

bool InputLog::LoadDigest(Epoch epoch, std::vector<DigestEntry>* out, std::size_t core) const {
  if (digest_bytes_ == 0) {
    return false;
  }
  const std::uint64_t buffer = DigestBufferOffset(epoch);
  device_.ChargeRead(buffer, sizeof(LogHeader), core);
  const auto* header = device_.As<LogHeader>(buffer);
  if (header->complete != 1 || header->epoch != epoch) {
    return false;
  }
  if (header->payload_bytes > digest_bytes_ - sizeof(LogHeader) ||
      header->payload_bytes != header->txn_count * sizeof(DigestEntry)) {
    return false;
  }
  const std::uint8_t* payload = device_.At(buffer + sizeof(LogHeader));
  device_.ChargeRead(buffer + sizeof(LogHeader), header->payload_bytes, core);
  if (Checksum(payload, header->payload_bytes) != header->checksum) {
    return false;
  }
  out->resize(header->txn_count);
  std::memcpy(out->data(), payload, header->payload_bytes);
  return true;
}

bool InputLog::LoadEpoch(Epoch epoch, const txn::TxnRegistry& registry,
                         std::vector<std::unique_ptr<txn::Transaction>>* out,
                         std::size_t core) const {
  const std::uint64_t buffer = BufferOffset(epoch);
  device_.ChargeRead(buffer, sizeof(LogHeader), core);
  const auto* header = device_.As<LogHeader>(buffer);
  if (header->complete != 1 || header->epoch != epoch) {
    return false;
  }
  if (header->payload_bytes > buffer_bytes_ - sizeof(LogHeader)) {
    return false;  // corrupt header: the claimed payload exceeds the buffer
  }
  const std::uint8_t* payload = device_.At(buffer + sizeof(LogHeader));
  device_.ChargeRead(buffer + sizeof(LogHeader), header->payload_bytes, core);
  if (Checksum(payload, header->payload_bytes) != header->checksum) {
    return false;
  }
  try {
    *out = txn::DecodeTxnStream(payload, header->payload_bytes, header->txn_count, registry);
  } catch (const SerializeError&) {
    // A payload that passes the checksum but decodes past its bounds is still
    // a torn/corrupt log: treat it as "no complete log", the same as a
    // checksum failure, rather than crashing the recovery.
    out->clear();
    return false;
  }
  return true;
}

bool InputLog::HasCompleteEpoch(Epoch epoch, std::size_t core) const {
  const std::uint64_t buffer = BufferOffset(epoch);
  device_.ChargeRead(buffer, sizeof(LogHeader), core);
  const auto* header = device_.As<LogHeader>(buffer);
  if (header->complete != 1 || header->epoch != epoch) {
    return false;
  }
  if (header->payload_bytes > buffer_bytes_ - sizeof(LogHeader)) {
    return false;
  }
  const std::uint8_t* payload = device_.At(buffer + sizeof(LogHeader));
  device_.ChargeRead(buffer + sizeof(LogHeader), header->payload_bytes, core);
  return Checksum(payload, header->payload_bytes) == header->checksum;
}

}  // namespace nvc::core
