#include "src/core/input_log.h"

#include <cstring>
#include <stdexcept>

#include "src/common/hash.h"
#include "src/common/serializer.h"
#include "src/txn/stream.h"

namespace nvc::core {

InputLog::InputLog(sim::NvmDevice& device, std::uint64_t base_offset, std::size_t buffer_bytes)
    : device_(device), base_(base_offset), buffer_bytes_(buffer_bytes) {}

void InputLog::Format() {
  for (int parity = 0; parity < 2; ++parity) {
    auto* header = device_.As<LogHeader>(base_ + parity * buffer_bytes_);
    std::memset(header, 0, sizeof(LogHeader));
    device_.Persist(base_ + parity * buffer_bytes_, sizeof(LogHeader), 0);
  }
  device_.Fence(0);
}

std::size_t InputLog::LogEpoch(Epoch epoch,
                               const std::vector<std::unique_ptr<txn::Transaction>>& txns,
                               std::size_t core) {
  const std::vector<std::uint8_t> payload = txn::EncodeTxnStream(txns);

  const std::uint64_t buffer = BufferOffset(epoch);
  if (sizeof(LogHeader) + payload.size() > buffer_bytes_) {
    throw std::runtime_error("InputLog: epoch inputs exceed log buffer size");
  }

  // Invalidate the buffer first so a crash mid-write cannot leave a stale
  // complete header in front of new payload bytes.
  auto* header = device_.As<LogHeader>(buffer);
  header->complete = 0;
  device_.Persist(buffer + offsetof(LogHeader, complete), sizeof(std::uint64_t), core);
  device_.Fence(core);

  // Bulk, sequential payload write at close to full NVMM bandwidth.
  device_.WritePersist(buffer + sizeof(LogHeader), payload.data(), payload.size(), core);
  header->epoch = epoch;
  header->txn_count = static_cast<std::uint32_t>(txns.size());
  header->payload_bytes = payload.size();
  header->checksum = Fnv1a(payload.data(), payload.size());
  device_.Persist(buffer, sizeof(LogHeader), core);
  device_.Fence(core);

  header->complete = 1;
  device_.Persist(buffer + offsetof(LogHeader, complete), sizeof(std::uint64_t), core);
  device_.Fence(core);
  return payload.size();
}

bool InputLog::LoadEpoch(Epoch epoch, const txn::TxnRegistry& registry,
                         std::vector<std::unique_ptr<txn::Transaction>>* out,
                         std::size_t core) const {
  const std::uint64_t buffer = BufferOffset(epoch);
  device_.ChargeRead(buffer, sizeof(LogHeader), core);
  const auto* header = device_.As<LogHeader>(buffer);
  if (header->complete != 1 || header->epoch != epoch) {
    return false;
  }
  if (header->payload_bytes > buffer_bytes_ - sizeof(LogHeader)) {
    return false;  // corrupt header: the claimed payload exceeds the buffer
  }
  const std::uint8_t* payload = device_.At(buffer + sizeof(LogHeader));
  device_.ChargeRead(buffer + sizeof(LogHeader), header->payload_bytes, core);
  if (Fnv1a(payload, header->payload_bytes) != header->checksum) {
    return false;
  }
  try {
    *out = txn::DecodeTxnStream(payload, header->payload_bytes, header->txn_count, registry);
  } catch (const SerializeError&) {
    // A payload that passes the checksum but decodes past its bounds is still
    // a torn/corrupt log: treat it as "no complete log", the same as a
    // checksum failure, rather than crashing the recovery.
    out->clear();
    return false;
  }
  return true;
}

}  // namespace nvc::core
