// Epoch-based deterministic transaction processing (paper Algorithm 1) and
// the row read/write paths (paper sections 4.1, 4.4, 4.5, 4.6).
#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstring>
#include <ctime>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/common/partition.h"
#include "src/core/database.h"

namespace nvc::core {
namespace {

// Sentinel latest_sid for rows deleted in the current epoch.
constexpr std::uint64_t kDeletedSid = ~0ULL;

// CPU time of the calling thread. The tail thread reports this alongside its
// wall time so profiler readers can separate tail work from preemption on
// oversubscribed hosts (wall includes timeslices lost to the foreground).
std::uint64_t ThreadCpuNs() {
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) {
    return 0;
  }
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ULL +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

// Spin-then-yield wait for a PENDING version. Yielding matters when workers
// outnumber cores: the writer thread needs CPU time to publish its value.
std::uint64_t WaitNonPending(std::atomic<std::uint64_t>& state) {
  std::uint64_t s = state.load(std::memory_order_acquire);
  int spins = 0;
  while (s == vstore::kPending) {
    if (++spins < 256) {
      CpuRelax();
    } else {
      std::this_thread::yield();
    }
    s = state.load(std::memory_order_acquire);
  }
  return s;
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace

// ---- Engine-side phase contexts ---------------------------------------------

class EngineInsertContext final : public txn::InsertContext {
 public:
  EngineInsertContext(Database* db, Database::TxnState* st, std::size_t core)
      : db_(db), st_(st), core_(core) {}

  void InsertRow(TableId table, Key key, const void* data, std::uint32_t size) override {
    st_->inserted.push_back(db_->InsertRowInternal(table, key, data, size, st_->sid, core_));
  }

  std::uint64_t CounterFetchAdd(txn::CounterId counter, std::uint64_t delta) override {
    return db_->counters_[counter].fetch_add(delta, std::memory_order_relaxed);
  }

  std::uint64_t CounterEpochStart(txn::CounterId counter) const override {
    return db_->counters_epoch_start_[counter];
  }

  std::uint64_t CounterFetchAddIfLess(txn::CounterId counter, std::uint64_t bound) override {
    std::uint64_t current = db_->counters_[counter].load(std::memory_order_relaxed);
    while (current < bound) {
      if (db_->counters_[counter].compare_exchange_weak(current, current + 1,
                                                        std::memory_order_relaxed)) {
        return current;
      }
    }
    return ~0ULL;
  }

  Sid sid() const override { return st_->sid; }

 private:
  Database* db_;
  Database::TxnState* st_;
  std::size_t core_;
};

class EngineAppendContext final : public txn::AppendContext {
 public:
  EngineAppendContext(Database* db, Database::TxnState* st, std::size_t core)
      : db_(db), st_(st), core_(core) {}

  void DeclareUpdate(TableId table, Key key) override {
    db_->DeclareWrite(*st_, table, key, core_);
  }
  void DeclareDelete(TableId table, Key key) override {
    db_->DeclareWrite(*st_, table, key, core_);
  }
  int ReadPreEpoch(TableId table, Key key, void* out, std::uint32_t cap) override {
    return db_->ReadPreEpoch(table, key, out, cap, core_);
  }
  Sid sid() const override { return st_->sid; }

 private:
  Database* db_;
  Database::TxnState* st_;
  std::size_t core_;
};

class EngineExecContext final : public txn::ExecContext {
 public:
  EngineExecContext(Database* db, Database::TxnState* st, std::size_t core)
      : db_(db), st_(st), core_(core) {}

  int Read(TableId table, Key key, void* out, std::uint32_t cap) override {
    return db_->ReadRow(table, key, st_->sid, out, cap, core_);
  }
  void Write(TableId table, Key key, const void* data, std::uint32_t size) override {
    assert(!st_->aborted && "transaction wrote after aborting");
    db_->WriteRow(*st_, table, key, data, size, core_);
  }
  void Delete(TableId table, Key key) override {
    assert(!st_->aborted && "transaction deleted after aborting");
    db_->DeleteRow(*st_, table, key, core_);
  }
  void Abort() override { st_->aborted = true; }
  bool FirstInRange(TableId table, Key lo, Key hi, Key* found) override {
    return db_->tables_[table]->FirstInRange(lo, hi, found);
  }
  bool LastInRange(TableId table, Key lo, Key hi, Key* found) override {
    return db_->tables_[table]->LastInRange(lo, hi, found);
  }
  std::uint32_t Scan(const txn::ScanSpec& spec, const txn::ScanRowFn& fn) override {
    return db_->ExecScan(spec, st_->sid, fn, core_);
  }
  std::uint64_t CounterEpochStart(txn::CounterId counter) const override {
    return db_->counters_epoch_start_[counter];
  }
  Sid sid() const override { return st_->sid; }

 private:
  Database* db_;
  Database::TxnState* st_;
  std::size_t core_;
};

// ---- Replay-digest collection (instant recovery) ------------------------------
//
// Runs the insert and append declarations against side-effect-light contexts
// to enumerate the epoch's (table, key, slot) writes before execution. The
// counter state is a local snapshot so the real insert step later observes
// unchanged counters; pre-epoch reads go through the regular read path (cache
// side effects only, and the cache is not consulted for correctness). Serial
// slot order keeps the digest slot-ascending per key, which SetupInstantRecovery
// relies on to invert it.

class DigestInsertContext final : public txn::InsertContext {
 public:
  DigestInsertContext(Database* db, std::vector<DigestEntry>* out,
                      std::vector<std::uint64_t>* running,
                      const std::vector<std::uint64_t>* start, std::uint32_t slot, Sid sid)
      : db_(db), out_(out), running_(running), start_(start), slot_(slot), sid_(sid) {}

  void InsertRow(TableId table, Key key, const void*, std::uint32_t) override {
    out_->push_back(DigestEntry{key, table, slot_});
  }
  std::uint64_t CounterFetchAdd(txn::CounterId counter, std::uint64_t delta) override {
    const std::uint64_t v = (*running_)[counter];
    (*running_)[counter] += delta;
    return v;
  }
  std::uint64_t CounterEpochStart(txn::CounterId counter) const override {
    return (*start_)[counter];
  }
  std::uint64_t CounterFetchAddIfLess(txn::CounterId counter, std::uint64_t bound) override {
    std::uint64_t& current = (*running_)[counter];
    if (current < bound) {
      return current++;
    }
    return ~0ULL;
  }
  Sid sid() const override { return sid_; }

 private:
  Database* db_;
  std::vector<DigestEntry>* out_;
  std::vector<std::uint64_t>* running_;
  const std::vector<std::uint64_t>* start_;
  std::uint32_t slot_;
  Sid sid_;
};

class DigestAppendContext final : public txn::AppendContext {
 public:
  DigestAppendContext(Database* db, std::vector<DigestEntry>* out, std::uint32_t slot, Sid sid)
      : db_(db), out_(out), slot_(slot), sid_(sid) {}

  void DeclareUpdate(TableId table, Key key) override {
    out_->push_back(DigestEntry{key, table, slot_});
  }
  void DeclareDelete(TableId table, Key key) override {
    out_->push_back(DigestEntry{key, table, slot_});
  }
  int ReadPreEpoch(TableId table, Key key, void* out, std::uint32_t cap) override {
    return db_->ReadPreEpoch(table, key, out, cap, 0);
  }
  Sid sid() const override { return sid_; }

 private:
  Database* db_;
  std::vector<DigestEntry>* out_;
  std::uint32_t slot_;
  Sid sid_;
};

std::vector<DigestEntry> Database::CollectDigest(
    const std::vector<std::unique_ptr<txn::Transaction>>& txns, Epoch epoch) {
  std::vector<DigestEntry> entries;
  std::vector<std::uint64_t> start(counters_.size());
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    start[i] = counters_[i].load(std::memory_order_relaxed);
  }
  std::vector<std::uint64_t> running = start;
  for (std::size_t i = 0; i < txns.size(); ++i) {
    const Sid sid(epoch, static_cast<std::uint32_t>(i + 1));
    const auto slot = static_cast<std::uint32_t>(i);
    DigestInsertContext ictx(this, &entries, &running, &start, slot, sid);
    txns[i]->InsertStep(ictx);
    DigestAppendContext actx(this, &entries, slot, sid);
    txns[i]->AppendStep(actx);
  }
  return entries;
}

// ---- Epoch driver -------------------------------------------------------------

bool Database::MaybeCrash(CrashSite site) {
  const auto idx = static_cast<std::size_t>(site);
  site_reached_[idx].fetch_add(1, std::memory_order_relaxed);
  if (crash_hook_ && crash_hook_(site)) {
    site_fired_[idx].fetch_add(1, std::memory_order_relaxed);
    throw CrashedException{};
  }
  return false;
}

EpochResult Database::ExecuteEpoch(std::vector<std::unique_ptr<txn::Transaction>> txns) {
  if (spec_.concurrency == ConcurrencyControl::kAria) {
    return ExecuteEpochAria(std::move(txns));
  }
  assert(loaded_ && "call Format + FinalizeLoad (or Recover) first");

  // Instant recovery still pending: finish it before admitting a new epoch.
  // The crashed epoch's checkpoint must precede any new-epoch final write
  // (rows must never carry a newer SID than the durable epoch number), and
  // the new epoch must observe fully replayed state.
  if (instant_active_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(instant_mu_);
    if (instant_active_.load(std::memory_order_relaxed)) {
      profiler_.BeginEpoch(instant_->crashed_epoch);
      try {
        PhaseProfiler::ScopedPhase phase(profiler_, Phase::kRecoveryBackfill);
        FinishInstantRecoveryLocked();
      } catch (const CrashedException&) {
        profiler_.CancelEpoch();
        EpochResult result;
        result.epoch = instant_ != nullptr ? instant_->crashed_epoch : current_epoch_;
        result.crashed = true;
        return result;
      }
      profiler_.EndEpoch();
    }
  }

  // Pipelined epochs (DESIGN.md section 13): this epoch's front half — the
  // input-log/digest encode, which only touches the log's parity half that
  // the epoch before last has long drained — overlaps the previous epoch's
  // asynchronous persistence tail. Every phase that mutates NVMM or
  // engine-shared state waits for that tail (JoinTail below). Replay always
  // runs the synchronous loop: its epoch must be checkpointed before control
  // returns to recovery.
  const bool pipelined = spec_.enable_epoch_pipeline && !replaying_;
  if (pipelined && !tail_thread_.joinable()) {
    nvm_mirror_snapshot_ = device_.stats().Snapshot();
    tail_thread_ = std::thread(&Database::TailThreadMain, this);
  }

  const auto start = std::chrono::steady_clock::now();
  const Epoch epoch = current_epoch_ + 1;
  epoch_ = epoch;

  owned_txns_ = std::move(txns);
  txn_states_.clear();
  txn_states_.resize(owned_txns_.size());
  for (std::size_t i = 0; i < owned_txns_.size(); ++i) {
    txn_states_[i].txn = owned_txns_[i].get();
    txn_states_[i].sid = Sid(epoch, static_cast<std::uint32_t>(i + 1));
  }
  epoch_committed_.store(0, std::memory_order_relaxed);
  epoch_aborted_.store(0, std::memory_order_relaxed);

  EpochResult result;
  result.epoch = epoch;
  // Captured before the epoch state is cleared; delivered to the epoch
  // callback only after the epoch number is durable.
  std::vector<TxnOutcome> outcomes;
  if (!pipelined) {
    epoch_nvm_start_ = device_.stats().Snapshot();
  }
  profiler_.BeginEpoch(epoch);
  try {
    // Input logging: all inputs durable before execution starts (4.3). The
    // replay path skips it — the crashed epoch's log is already durable.
    if (ModeLogsInputs(spec_.mode) && !replaying_) {
      PhaseProfiler::ScopedPhase phase(profiler_, Phase::kLogInputs);
      last_log_bytes_ = spec_.enable_parallel_tail
                            ? log_->LogEpochParallel(epoch, owned_txns_, pool_, profiler_)
                            : log_->LogEpoch(epoch, owned_txns_, 0);
      stats_.log_bytes.Add(0, last_log_bytes_);
      if (log_->has_digest_area()) {
        // The write-set digest must be durable alongside the log before
        // execution so a crash anywhere in this epoch can recover instantly.
        // An overflowing digest leaves its buffer invalidated and a crash in
        // this epoch falls back to full replay.
        log_->LogDigest(epoch, CollectDigest(owned_txns_, epoch), 0);
      }
    }
    MaybeCrash(CrashSite::kAfterLog);
    // Pipelined: the previous epoch's tail may still be persisting here.
    MaybeCrash(CrashSite::kMidOverlapExecute);

    // Multi-shard durability barrier (src/shard): no shard may start mutating
    // NVMM state for this epoch until every shard's input log is durable,
    // otherwise a crash could leave one shard executed and another without a
    // log to replay. The hook returning false means a peer shard crashed
    // before logging; surface it as this engine crashing here — the epoch is
    // logged but unexecuted, which global recovery resolves deterministically.
    if (post_log_hook_ && !replaying_ && !post_log_hook_(epoch)) {
      throw CrashedException{};
    }

    if (pipelined) {
      // Barrier against the previous epoch's tail: from here on this epoch
      // mutates pool allocator state, rows and version arrays, all of which
      // the tail checkpoints. A tail-thread crash surfaces as this epoch
      // crashing (nothing of this epoch escaped to NVMM yet except its log,
      // which recovery replays only after the previous epoch's state).
      if (!JoinTail()) {
        profiler_.CancelEpoch();
        result.crashed = true;
        return result;
      }
      // Flip to the other transient bank: the previous epoch's transient
      // state stayed intact while its tail was in flight; the bank being
      // reset belonged to the epoch before last.
      transient_.FlipBank();
    }

    for (auto& pool : value_pools_) {
      pool->BeginEpoch();
    }
    for (auto& pool : row_pools_) {
      pool->BeginEpoch();
    }
    if (cold_pool_ != nullptr) {
      cold_pool_->BeginEpoch();
    }
    counters_epoch_start_.resize(counters_.size());
    for (std::size_t i = 0; i < counters_.size(); ++i) {
      counters_epoch_start_[i] = counters_[i].load(std::memory_order_relaxed);
    }
    for (std::size_t w = 0; w < spec_.workers; ++w) {
      pending_major_gc_[w] = std::move(core_state_[w].major_gc);
      core_state_[w].major_gc.clear();
    }
    // Hot blocks vacated by the previous epoch's demotions become freeable
    // now that that epoch is checkpointed (their descriptors are durable).
    cold_frees_due_ = std::move(cold_frees_next_);
    cold_frees_next_.clear();

    RunInsertStep();
    MaybeCrash(CrashSite::kAfterInsert);

    RunMajorGc();

    if (spec_.enable_cache) {
      PhaseProfiler::ScopedPhase phase(profiler_, Phase::kCacheEvict);
      vstore::VersionCache::EvictCallback on_evict;
      if (spec_.enable_cold_tier) {
        on_evict = [this](vstore::RowEntry* entry) {
          demotion_candidates_.push_back(entry);
        };
      }
      cache_->EvictForEpoch(epoch, &stats_, on_evict);
    }
    if (spec_.enable_cold_tier) {
      RunDemotions();
    }

    RunAppendStep();
    MaybeCrash(CrashSite::kAfterAppend);

    RunExecutePhase();
    MaybeCrash(CrashSite::kAfterExecution);

    // Deferred index removals for rows whose final version was a tombstone.
    for (CoreEpochState& cs : core_state_) {
      for (vstore::RowEntry* entry : cs.deleted) {
        tables_[entry->table]->Remove(entry->key);
      }
      cs.deleted.clear();
    }

    // Built unconditionally (cheap: one byte per transaction) so a callback
    // installed concurrently mid-epoch still receives correct outcomes.
    outcomes.resize(txn_states_.size());
    for (std::size_t i = 0; i < txn_states_.size(); ++i) {
      outcomes[i] = txn_states_[i].aborted ? TxnOutcome::kAborted : TxnOutcome::kCommitted;
    }

    if (pipelined) {
      // Cut point: all workers are quiesced, nothing else touches the device
      // until the next epoch's log encode. Hand the epoch's staged-but-
      // unfenced lines and its persistence tail to the tail thread and admit
      // the next epoch immediately.
      result.committed = epoch_committed_.load(std::memory_order_relaxed);
      result.aborted = epoch_aborted_.load(std::memory_order_relaxed);
      device_.DetachPending();
      owned_txns_.clear();
      txn_states_.clear();
      current_epoch_ = epoch;
      result.seconds = SecondsSince(start);
      profiler_.EndEpoch();
      TailWork work;
      work.epoch = epoch;
      work.result = result;
      work.outcomes = std::move(outcomes);
      work.has_outcomes = true;
      SubmitTail(std::move(work));
      return result;
    }

    CheckpointEpoch(epoch);
    {
      PhaseProfiler::ScopedPhase phase(profiler_, Phase::kFinish);
      FinishEpoch();
    }
    current_epoch_ = epoch;
  } catch (const CrashedException&) {
    if (pipelined) {
      JoinTail();  // quiesce the device so the harness can simulate the crash
    }
    profiler_.CancelEpoch();
    result.crashed = true;
    return result;
  }

  profiler_.EndEpoch();
  // Mirror the epoch's device deltas into the engine-side counters so
  // EngineStats reports NVM costs of epoch processing (loads excluded).
  const sim::NvmCounters nvm_end = device_.stats().Snapshot();
  stats_.nvm_read_bytes.Add(0, nvm_end.read_bytes - epoch_nvm_start_.read_bytes);
  stats_.nvm_read_lines.Add(0, nvm_end.read_granules - epoch_nvm_start_.read_granules);
  stats_.nvm_write_bytes.Add(0, nvm_end.write_bytes - epoch_nvm_start_.write_bytes);
  stats_.nvm_write_lines.Add(0, nvm_end.persisted_lines - epoch_nvm_start_.persisted_lines);
  stats_.nvm_persist_ops.Add(0, nvm_end.persist_ops - epoch_nvm_start_.persist_ops);
  stats_.nvm_fences.Add(0, nvm_end.fences - epoch_nvm_start_.fences);

  result.committed = epoch_committed_.load(std::memory_order_relaxed);
  result.aborted = epoch_aborted_.load(std::memory_order_relaxed);
  result.seconds = SecondsSince(start);
  {
    std::lock_guard<std::mutex> lock(callback_mu_);
    if (epoch_callback_) {
      epoch_callback_(result, outcomes);
    }
  }
  return result;
}

void Database::RunInsertStep() {
  PhaseProfiler::ScopedPhase phase(profiler_, Phase::kInsert);
  pool_.RunParallel([this](std::size_t w) {
    PhaseProfiler::WorkerScope span(profiler_, w);
    for (std::size_t i = w; i < txn_states_.size(); i += spec_.workers) {
      TxnState& st = txn_states_[i];
      EngineInsertContext ctx(this, &st, w);
      st.txn->InsertStep(ctx);
    }
  });
}

void Database::RunMajorGc() {
  bool any = !cold_frees_due_.empty();
  for (const auto& list : pending_major_gc_) {
    if (!list.empty()) {
      any = true;
      break;
    }
  }
  if (!any) {
    return;
  }
  PhaseProfiler::ScopedPhase phase(profiler_, Phase::kMajorGc);

  // Hot-tier blocks vacated by committed demotions (non-revertible frees,
  // same durability window as the GC frees below).
  for (const vstore::ValueLoc& loc : cold_frees_due_) {
    if (gc_dedup_.find(loc.offset()) == gc_dedup_.end()) {
      FreeValueGc(0, loc);
    }
  }
  cold_frees_due_.clear();

  // Pass 1 — append the stale non-inline values to the value-pool free list.
  pool_.RunParallel([this](std::size_t w) {
    PhaseProfiler::WorkerScope span(profiler_, w);
    for (vstore::RowEntry* entry : pending_major_gc_[w]) {
      vstore::PersistentRow row = RowAt(entry);
      const vstore::VersionDesc v0 = row.ReadDesc(0);
      const vstore::VersionDesc v1 = row.ReadDesc(1);
      if (v1.sid == 0 || vstore::ValueLoc(v1.loc).is_null() || v0.sid == 0) {
        continue;  // already collected (recovery re-run)
      }
      if (v0.sid == v1.sid) {
        // Aliased descriptors: an interrupted earlier collection already
        // copied version 2 over version 1 (and freed the old stale value,
        // durably — the GC-tail fence preceded the descriptor writes).
        // Only the reset remains; freeing here would free the live value.
        continue;
      }
      const vstore::ValueLoc stale(v0.loc);
      if (!stale.is_null() && !stale.is_inline()) {
        if (!replaying_ || gc_dedup_.find(stale.offset()) == gc_dedup_.end()) {
          FreeValueGc(w, stale);
        }
      }
    }
  });

  // GC frees are non-revertible: make them durable, with the current-tail
  // offsets, before execution can reuse the blocks (paper 5.5).
  for (auto& pool : value_pools_) {
    pool->PersistGcTail(0);
  }
  if (cold_pool_ != nullptr) {
    cold_pool_->PersistGcTail(0);
  }
  MaybeCrash(CrashSite::kDuringMajorGc);

  // Pass 2 — copy the checkpointed version to the stale slot and reset the
  // now-available slot (paper 4.5 ordering rules).
  const bool hook_pass2 = static_cast<bool>(crash_hook_) && spec_.workers == 1;
  pool_.RunParallel([this, hook_pass2](std::size_t w) {
    PhaseProfiler::WorkerScope span(profiler_, w);
    for (vstore::RowEntry* entry : pending_major_gc_[w]) {
      vstore::PersistentRow row = RowAt(entry);
      const vstore::VersionDesc v1 = row.ReadDesc(1);
      if (v1.sid == 0 || vstore::ValueLoc(v1.loc).is_null()) {
        continue;
      }
      row.WriteDesc(0, Sid(v1.sid), vstore::ValueLoc(v1.loc), w);
      if (hook_pass2) {
        // Crash with aliased descriptors: v0 == v1 and the reset still
        // pending — recovery must take the "already collected" repair branch
        // instead of freeing the live value.
        MaybeCrash(CrashSite::kDuringGcPass2);
      }
      row.WriteDesc(1, Sid(0), vstore::ValueLoc{}, w);
      stats_.major_gc_runs.Add(w);
    }
    pending_major_gc_[w].clear();
  });
  MaybeCrash(CrashSite::kAfterGcPersist);
}

void Database::RunAppendStep() {
  if (spec_.enable_batch_append) {
    RunBatchAppendStep();
    return;
  }
  PhaseProfiler::ScopedPhase phase(profiler_, Phase::kAppend);
  pool_.RunParallel([this](std::size_t w) {
    PhaseProfiler::WorkerScope span(profiler_, w);
    for (std::size_t i = w; i < txn_states_.size(); i += spec_.workers) {
      TxnState& st = txn_states_[i];
      EngineAppendContext ctx(this, &st, w);
      st.txn->AppendStep(ctx);
    }
  });
}

// Caracal's batch-append optimization: collect (row, SID) intents per
// worker, repartition by row-owner core, then build each version array with
// one exact-capacity ascending fill — O(n log n) per owner instead of
// O(n^2) sorted insertion on hot rows.
void Database::RunBatchAppendStep() {
  if (append_intents_.empty()) {
    append_intents_.resize(spec_.workers);
    for (auto& per_worker : append_intents_) {
      per_worker.resize(spec_.workers);
    }
  }
  // Sub-phase 1: collect intents (DeclareWrite routes here in batch mode).
  {
    PhaseProfiler::ScopedPhase phase(profiler_, Phase::kAppendCollect);
    pool_.RunParallel([this](std::size_t w) {
      PhaseProfiler::WorkerScope span(profiler_, w);
      for (std::size_t i = w; i < txn_states_.size(); i += spec_.workers) {
        TxnState& st = txn_states_[i];
        EngineAppendContext ctx(this, &st, w);
        st.txn->AppendStep(ctx);
      }
    });
  }
  // Sub-phase 2: each owner core builds the version arrays of its rows.
  PhaseProfiler::ScopedPhase phase(profiler_, Phase::kAppendBuild);
  pool_.RunParallel([this](std::size_t owner) {
    PhaseProfiler::WorkerScope span(profiler_, owner);
    std::vector<BatchIntent> intents;
    std::size_t total = 0;
    for (const auto& bucket : append_intents_[owner]) {
      total += bucket.size();
    }
    intents.reserve(total);
    for (auto& bucket : append_intents_[owner]) {
      intents.insert(intents.end(), bucket.begin(), bucket.end());
      bucket.clear();
    }
    std::sort(intents.begin(), intents.end(), [](const BatchIntent& a, const BatchIntent& b) {
      if (a.entry != b.entry) {
        return a.entry < b.entry;
      }
      return a.sid < b.sid;
    });
    std::size_t i = 0;
    while (i < intents.size()) {
      std::size_t j = i;
      while (j < intents.size() && intents[j].entry == intents[i].entry) {
        ++j;
      }
      vstore::RowEntry* entry = intents[i].entry;
      auto* va = vstore::VersionArray::CreateWithCapacity(
          transient_, owner, static_cast<std::uint32_t>(j - i));
      FillInitialVersion(entry, va, owner);
      for (std::size_t k = i; k < j; ++k) {
        va->Append(transient_, owner, Sid(intents[k].sid));  // ascending: O(1)
      }
      if (spec_.mode == EngineMode::kAllNvmm) {
        device_.ChargeSyntheticWrite((j - i) * sizeof(vstore::VersionEntry), owner);
      }
      entry->varray = va;
      entry->varray_epoch = epoch_;
      i = j;
    }
  });
}

void Database::RunExecutePhase() {
  PhaseProfiler::ScopedPhase phase(profiler_, Phase::kExecute);
  const bool hook_each_txn = static_cast<bool>(crash_hook_) && spec_.workers == 1;
  pool_.RunParallel([this, hook_each_txn](std::size_t w) {
    PhaseProfiler::WorkerScope span(profiler_, w);
    for (std::size_t i = w; i < txn_states_.size(); i += spec_.workers) {
      if (hook_each_txn) {
        MaybeCrash(CrashSite::kMidExecution);
      }
      TxnState& st = txn_states_[i];
      EngineExecContext ctx(this, &st, w);
      st.txn->Execute(ctx);
      PostExecute(st, w);
      if (st.aborted) {
        epoch_aborted_.fetch_add(1, std::memory_order_relaxed);
        stats_.txn_aborted.Add(w);
      } else {
        epoch_committed_.fetch_add(1, std::memory_order_relaxed);
        stats_.txn_committed.Add(w);
      }
    }
  });
}

void Database::CheckpointEpoch(Epoch epoch) {
  {
    PhaseProfiler::ScopedPhase phase(profiler_, Phase::kCheckpoint);
    if (spec_.enable_parallel_tail) {
      // Parallel tail: worker w checkpoints exactly the per-core pool shards
      // it dirtied during the epoch (pool core == worker id throughout the
      // engine). No fence is needed between shards — the serial path also
      // deferred durability to the epoch's FenceAll below — so the workers
      // are fully independent.
      const bool hook_tail = static_cast<bool>(crash_hook_) && spec_.workers == 1;
      pool_.RunParallel([this, epoch, hook_tail](std::size_t w) {
        PhaseProfiler::WorkerScope span(profiler_, w);
        for (auto& pool : value_pools_) {
          pool->CheckpointCore(epoch, w, w);
        }
        if (hook_tail) {
          // Crash between a core's value-pool and row-pool shard
          // checkpoints: this epoch's meta parity slots are part-written,
          // but nothing reads them until the superblock epoch flips.
          MaybeCrash(CrashSite::kMidParallelCheckpoint);
        }
        for (auto& pool : row_pools_) {
          pool->CheckpointCore(epoch, w, w);
        }
        if (cold_pool_ != nullptr) {
          cold_pool_->CheckpointCore(epoch, w, w);
        }
      });
      if (cold_pool_ != nullptr) {
        // One cross-core barrier where the serial path fenced once: the
        // workers' cold-meta persists all retire here.
        cold_device_->FenceAll(0);
      }
    } else {
      for (auto& pool : value_pools_) {
        pool->Checkpoint(epoch, 0);
      }
      for (auto& pool : row_pools_) {
        pool->Checkpoint(epoch, 0);
      }
      if (cold_pool_ != nullptr) {
        cold_pool_->Checkpoint(epoch, 0);
        cold_device_->Fence(0);  // cold-pool checkpoint durable with this epoch
      }
    }
    // Same crash state as the pipelined tail's site: checkpoint shards
    // part-staged, nothing fenced, header not flipped.
    MaybeCrash(CrashSite::kMidOverlapTailPersist);
    if (spec_.enable_persistent_index) {
      if (spec_.enable_parallel_tail) {
        ApplyIndexDeltasParallel(epoch);
      } else {
        ApplyIndexDeltasSerial(epoch);
      }
    }
  }
  if (spec_.enable_persistent_index) {
    PhaseProfiler::ScopedPhase phase(profiler_, Phase::kGcLog);
    if (spec_.enable_parallel_tail) {
      WriteGcLogParallel(epoch);
    } else {
      WriteGcLog(epoch);
    }
  }
  PhaseProfiler::ScopedPhase phase(profiler_, Phase::kCheckpoint);
  PersistCounters(epoch);
  FenceAll();
  MaybeCrash(CrashSite::kBeforeEpochPersist);
  auto* sb = device_.As<SuperBlock>(layout_.superblock);
  sb->epoch = epoch;
  device_.Persist(layout_.superblock + offsetof(SuperBlock, epoch), sizeof(std::uint64_t), 0);
  device_.Fence(0);
}

// Serial index-delta application (enable_parallel_tail off, and the
// pipelined tail thread, which passes its own device core). Applies the
// epoch's index deltas in a batch (section-7 extension). The per-slot epoch
// tags make a torn batch recoverable, and replay re-applies its deltas
// idempotently.
void Database::ApplyIndexDeltasSerial(Epoch epoch, std::size_t core) {
  for (CoreEpochState& cs : core_state_) {
    for (const IndexDelta& delta : cs.index_deltas) {
      // Crash with the batch partially applied: the already-written slots
      // carry this (uncheckpointed) epoch's tag, so the fast rebuild must
      // ignore them and replay must re-apply the whole batch idempotently.
      MaybeCrash(CrashSite::kDuringIndexApply);
      if (delta.is_delete) {
        pindexes_[delta.table]->ApplyDelete(delta.key, epoch, core);
      } else {
        pindexes_[delta.table]->ApplyInsert(delta.key, delta.prow, epoch, core);
      }
    }
    cs.index_deltas.clear();
  }
}

// Parallel index-delta application: deltas are sharded by key-hash owner
// (the batch-append owner function), so all operations on one key run on one
// worker and per-core delta order — which carries the insert-before-delete
// requirement for keys inserted and deleted in the same epoch — is preserved
// within each shard. Every worker walks all core buckets in (core, index)
// order and applies only its own keys; the slot CAS protocol in
// PersistentIndex makes concurrent probes over shared chains safe.
void Database::ApplyIndexDeltasParallel(Epoch epoch) {
  const bool hook_tail = static_cast<bool>(crash_hook_) && spec_.workers == 1;
  pool_.RunParallel([this, epoch, hook_tail](std::size_t w) {
    PhaseProfiler::WorkerScope span(profiler_, w);
    for (CoreEpochState& cs : core_state_) {
      for (const IndexDelta& delta : cs.index_deltas) {
        if (PartitionOf(delta.table, delta.key, spec_.workers) != w) {
          continue;
        }
        if (hook_tail) {
          // Same crash state as the serial site: batch partially applied,
          // already-written slots tagged with the uncheckpointed epoch.
          MaybeCrash(CrashSite::kDuringIndexApply);
        }
        if (delta.is_delete) {
          pindexes_[delta.table]->ApplyDelete(delta.key, epoch, w);
        } else {
          pindexes_[delta.table]->ApplyInsert(delta.key, delta.prow, epoch, w);
        }
        if (hook_tail) {
          // Crash right after an application: the shard batch is mid-apply
          // with at least one slot already written.
          MaybeCrash(CrashSite::kMidParallelIndexApply);
        }
      }
    }
  });
  for (CoreEpochState& cs : core_state_) {
    cs.index_deltas.clear();
  }
}

// Persists the rows scheduled for major GC in the next epoch, so a crash
// during that GC can repair exactly the affected rows without a full scan.
// Entries go to the epoch-parity half and are fenced before the header flips
// to them, so a torn write never corrupts the half a durable header names.
void Database::WriteGcLog(Epoch epoch, std::size_t core) {
  auto* header = device_.As<GcLogHeader>(layout_.gc_log);
  const std::uint64_t entries_base =
      layout_.gc_log + sizeof(GcLogHeader) +
      (epoch & 1) * spec_.gc_log_capacity * sizeof(std::uint64_t);
  std::uint32_t count = 0;
  bool overflow = false;
  for (const CoreEpochState& cs : core_state_) {
    for (const vstore::RowEntry* entry : cs.major_gc) {
      if (count >= spec_.gc_log_capacity) {
        overflow = true;
        break;
      }
      // Pack the owning table into the high bits of the row offset.
      *device_.As<std::uint64_t>(entries_base + count * sizeof(std::uint64_t)) =
          (static_cast<std::uint64_t>(entry->table) << 48) | entry->prow;
      ++count;
    }
  }
  if (count > 0) {
    device_.Persist(entries_base, count * sizeof(std::uint64_t), core);
  }
  device_.Fence(core);
  header->epoch = epoch;
  header->count = count;
  header->overflow = overflow ? 1 : 0;
  device_.Persist(layout_.gc_log, sizeof(GcLogHeader), core);
}

// Parallel-tail GC-log assembly. Prefix-sums the per-core contributions
// (truncated at capacity in core order, matching the serial fill exactly),
// then has each worker write and persist a disjoint slice of the
// epoch-parity half. Interior persist boundaries are aligned down to cache
// lines so no line is covered twice; one cross-core barrier replaces the
// serial fence before the header flip.
void Database::WriteGcLogParallel(Epoch epoch) {
  auto* header = device_.As<GcLogHeader>(layout_.gc_log);
  const std::uint64_t entries_base =
      layout_.gc_log + sizeof(GcLogHeader) +
      (epoch & 1) * spec_.gc_log_capacity * sizeof(std::uint64_t);

  const std::size_t cores = core_state_.size();
  std::vector<std::size_t> base(cores + 1, 0);
  std::size_t raw_total = 0;
  for (std::size_t c = 0; c < cores; ++c) {
    raw_total += core_state_[c].major_gc.size();
    base[c + 1] = std::min(raw_total, spec_.gc_log_capacity);
  }
  const auto count = static_cast<std::uint32_t>(base[cores]);
  const bool overflow = raw_total > spec_.gc_log_capacity;

  if (count > 0) {
    pool_.RunParallel([&, this](std::size_t w) {
      PhaseProfiler::WorkerScope span(profiler_, w);
      const Range r = SplitRange(count, spec_.workers, w);
      if (r.begin == r.end) {
        return;
      }
      std::size_t core = 0;
      while (base[core + 1] <= r.begin) {
        ++core;
      }
      std::size_t idx = r.begin - base[core];
      for (std::size_t g = r.begin; g < r.end; ++g) {
        while (g >= base[core + 1]) {
          ++core;
          idx = 0;
        }
        const vstore::RowEntry* entry = core_state_[core].major_gc[idx++];
        // Pack the owning table into the high bits of the row offset.
        *device_.As<std::uint64_t>(entries_base + g * sizeof(std::uint64_t)) =
            (static_cast<std::uint64_t>(entry->table) << 48) | entry->prow;
      }
      const auto align_down = [](std::uint64_t off) {
        return off / kCacheLineSize * kCacheLineSize;
      };
      const std::uint64_t begin_off =
          r.begin == 0 ? entries_base
                       : std::max<std::uint64_t>(
                             entries_base,
                             align_down(entries_base + r.begin * sizeof(std::uint64_t)));
      const std::uint64_t end_off =
          r.end == count ? entries_base + count * sizeof(std::uint64_t)
                         : std::max<std::uint64_t>(
                               entries_base,
                               align_down(entries_base + r.end * sizeof(std::uint64_t)));
      if (end_off > begin_off) {
        device_.Persist(begin_off, end_off - begin_off, w);
      }
    });
  }
  device_.FenceAll(0);
  header->epoch = epoch;
  header->count = count;
  header->overflow = overflow ? 1 : 0;
  device_.Persist(layout_.gc_log, sizeof(GcLogHeader), 0);
}

void Database::FinishEpoch() {
  transient_.Reset();
  owned_txns_.clear();
  txn_states_.clear();
}

// ---- Pipelined epoch tail (DESIGN.md section 13) -------------------------------

// The serial persistence tail relocated onto the tail thread: identical NVM
// writes and the same fence ledger as the barrier serial tail — cold fence
// (if cold tier), the GC log's interior fence (if persistent index), one
// fence per worker for the execute phase's detached lines, and the fence
// after the epoch-number flip. It must not touch the profiler's driver
// bracketing, the worker pool, or any per-epoch transient state: the next
// epoch's front half runs concurrently with all of it.
void Database::RunTailPersist(Epoch epoch, std::size_t core) {
  for (auto& pool : value_pools_) {
    pool->Checkpoint(epoch, core);
  }
  for (auto& pool : row_pools_) {
    pool->Checkpoint(epoch, core);
  }
  if (cold_pool_ != nullptr) {
    cold_pool_->Checkpoint(epoch, core);
    cold_device_->Fence(core);  // cold-pool checkpoint durable with this epoch
  }
  // Crash mid-tail: checkpoint shards staged but unfenced, the execute
  // phase's lines still detached — everything since the last durable header
  // reverts, while the next epoch's front half may be concurrently encoding
  // its (parity-disjoint) input log.
  MaybeCrash(CrashSite::kMidOverlapTailPersist);
  if (spec_.enable_persistent_index) {
    ApplyIndexDeltasSerial(epoch, core);
    WriteGcLog(epoch, core);
  }
  PersistCounters(epoch, core);
  // The execute phase's final writes were detached at the cut point; retire
  // them with the same per-worker fence count the synchronous tail charges.
  device_.FenceDetached(spec_.workers, core);
  MaybeCrash(CrashSite::kBeforeEpochPersist);
  auto* sb = device_.As<SuperBlock>(layout_.superblock);
  sb->epoch = epoch;
  device_.Persist(layout_.superblock + offsetof(SuperBlock, epoch), sizeof(std::uint64_t),
                  core);
  device_.Fence(core);
}

void Database::TailThreadMain() {
  std::unique_lock<std::mutex> lock(tail_mu_);
  for (;;) {
    tail_cv_.wait(lock, [this] { return tail_stop_ || tail_inflight_; });
    if (!tail_inflight_) {
      return;  // tail_stop_ with nothing queued
    }
    TailWork work = std::move(tail_work_);
    lock.unlock();

    const auto tail_start = std::chrono::steady_clock::now();
    const std::uint64_t cpu_start = ThreadCpuNs();
    profiler_.BeginTailSpan(work.epoch);
    bool crashed = false;
    try {
      // Device core spec_.workers: never used by the foreground, so the
      // tail's staged persists and fences cannot collide with the next
      // epoch's log encode on the worker cores.
      RunTailPersist(work.epoch, spec_.workers);
    } catch (const CrashedException&) {
      crashed = true;
    }
    profiler_.EndTailSpan();
    const std::uint64_t cpu_ns = ThreadCpuNs() - cpu_start;
    const auto dur_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                             tail_start)
            .count());

    if (!crashed) {
      // Mirror the device deltas since the previous tail into the engine
      // counters. The window telescopes across tails, so the cumulative
      // stats after WaitIdle equal the barrier engine's per-epoch sums; the
      // per-tail split is approximate (concurrent front-half charges land in
      // whichever window observes them).
      const sim::NvmCounters nvm_end = device_.stats().Snapshot();
      stats_.nvm_read_bytes.Add(0, nvm_end.read_bytes - nvm_mirror_snapshot_.read_bytes);
      stats_.nvm_read_lines.Add(0, nvm_end.read_granules - nvm_mirror_snapshot_.read_granules);
      stats_.nvm_write_bytes.Add(0, nvm_end.write_bytes - nvm_mirror_snapshot_.write_bytes);
      stats_.nvm_write_lines.Add(
          0, nvm_end.persisted_lines - nvm_mirror_snapshot_.persisted_lines);
      stats_.nvm_persist_ops.Add(0, nvm_end.persist_ops - nvm_mirror_snapshot_.persist_ops);
      stats_.nvm_fences.Add(0, nvm_end.fences - nvm_mirror_snapshot_.fences);
      nvm_mirror_snapshot_ = nvm_end;
      // Durable-notify before clearing tail_inflight_: a caller returning
      // from JoinTail/WaitIdle is guaranteed the callback already ran, so
      // clearing the callback after a join leaves no in-flight invocation.
      std::lock_guard<std::mutex> cb(callback_mu_);
      if (epoch_callback_ && work.has_outcomes) {
        epoch_callback_(work.result, work.outcomes);
      }
    }

    lock.lock();
    tail_last_dur_ns_ = dur_ns == 0 ? 1 : dur_ns;
    tail_last_cpu_ns_ = cpu_ns;
    if (crashed) {
      tail_crashed_ = true;
    }
    tail_inflight_ = false;
    tail_cv_.notify_all();
  }
}

void Database::SubmitTail(TailWork work) {
  std::lock_guard<std::mutex> lock(tail_mu_);
  assert(!tail_inflight_ && "SubmitTail without a preceding JoinTail");
  tail_work_ = std::move(work);
  tail_inflight_ = true;
  tail_cv_.notify_all();
}

bool Database::JoinTail() {
  std::unique_lock<std::mutex> lock(tail_mu_);
  const auto wait_start = std::chrono::steady_clock::now();
  tail_cv_.wait(lock, [this] { return !tail_inflight_; });
  if (tail_last_dur_ns_ != 0) {
    // Overlap accounting: the share of the tail's wall time this thread did
    // NOT spend blocked on it was overlapped with foreground work.
    const auto blocked_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                             wait_start)
            .count());
    const std::uint64_t dur = tail_last_dur_ns_;
    profiler_.AddTailOverlap(dur, dur > blocked_ns ? dur - blocked_ns : 0, tail_last_cpu_ns_);
    tail_last_dur_ns_ = 0;
    tail_last_cpu_ns_ = 0;
  }
  return !tail_crashed_;
}

// ---- Row operations ------------------------------------------------------------

vstore::RowEntry* Database::InsertRowInternal(TableId table, Key key, const void* data,
                                              std::uint32_t size, Sid sid, std::size_t core) {
  const std::uint64_t prow_off = row_pools_[table]->Alloc(core);
  if (prow_off == 0) {
    throw std::runtime_error("insert: row pool exhausted for table " + spec_.tables[table].name);
  }
  vstore::PersistentRow row(device_, prow_off, spec_.tables[table].row_size);
  row.Init(table, key);

  if (data != nullptr) {
    vstore::ValueLoc loc = row.FindInlineSpace(size);
    if (loc.is_null()) {
      loc = AllocValue(size, core);
      device_.WritePersist(loc.offset(), data, size, core);
    } else {
      std::memcpy(device_.At(loc.offset()), data, size);
    }
    row.header()->v[0].sid = sid.raw();
    row.header()->v[0].loc = loc.raw();
    stats_.persistent_writes.Add(core);
  }
  // One persist covers the header and any inline value bytes.
  device_.Persist(prow_off, spec_.tables[table].row_size, core);

  bool created = false;
  vstore::RowEntry* entry = tables_[table]->GetOrCreate(key, &created);
  assert(created && "insert of an existing key");
  entry->prow = prow_off;
  entry->latest_sid.store(data != nullptr ? sid.raw() : 0, std::memory_order_release);
  if (spec_.enable_persistent_index) {
    core_state_[core].index_deltas.push_back(
        IndexDelta{.table = table, .is_delete = false, .key = key, .prow = prow_off});
  }
  return entry;
}

void Database::DeclareWrite(TxnState& st, TableId table, Key key, std::size_t core) {
  vstore::RowEntry* entry = tables_[table]->Get(key);
  assert(entry != nullptr && "write declared for a missing row");
  if (spec_.enable_batch_append) {
    // Batch mode: record an intent; the arrays are built in sub-phase 2.
    // The hashed filter replaces a linear rescan of the write set, which
    // was O(writes) per declaration (quadratic for wide transactions).
    if (st.declared.CheckAndInsert(entry)) {
      return;  // duplicate declaration by the same transaction
    }
    st.writes.push_back(entry);
    const std::size_t owner = PartitionOf(table, key, spec_.workers);
    append_intents_[owner][core].push_back(BatchIntent{entry, st.sid.raw()});
    return;
  }
  SpinLatchGuard guard(entry->latch);
  vstore::VersionArray* va = entry->ArrayForEpoch(epoch_);
  if (va == nullptr) {
    va = vstore::VersionArray::Create(transient_, core);
    FillInitialVersion(entry, va, core);
    entry->varray = va;
    entry->varray_epoch = epoch_;
  }
  if (va->FindSlot(st.sid) >= 0) {
    return;  // duplicate declaration by the same transaction
  }
  va->Append(transient_, core, st.sid);
  if (spec_.mode == EngineMode::kAllNvmm) {
    device_.ChargeSyntheticWrite(sizeof(vstore::VersionEntry), core);
  }
  st.writes.push_back(entry);
}

void Database::FillInitialVersion(vstore::RowEntry* entry, vstore::VersionArray* va,
                                  std::size_t core) {
  vstore::VersionEntry& init = va->entry(0);
  // From the DRAM cache when possible; the cached copy is deleted because the
  // row will be updated during the execution phase (paper 4.1).
  if (spec_.enable_cache) {
    vstore::CachedValue* cached = entry->cached.load(std::memory_order_acquire);
    if (cached != nullptr) {
      auto* tv = static_cast<vstore::TransientValue*>(
          transient_.Alloc(core, sizeof(vstore::TransientValue) + cached->size));
      tv->size = cached->size;
      std::memcpy(tv->data(), cached->data(), cached->size);
      entry->cache_dropped_epoch.store(epoch_, std::memory_order_relaxed);
      cache_->Drop(entry);
      init.state.store(reinterpret_cast<std::uint64_t>(tv), std::memory_order_release);
      return;
    }
  }
  // From the persistent row: the latest version checkpointed before this
  // epoch. During replay this bound also skips versions the crashed epoch
  // already wrote.
  if (entry->prow == 0) {
    init.state.store(vstore::kIgnore, std::memory_order_release);
    return;
  }
  vstore::PersistentRow row = RowAt(entry);
  int slot = row.LatestSlotAtOrBefore(Sid(Sid(epoch_, 0).raw() - 1));
  if (slot < 0) {
    // No pre-epoch version — but the row may have been inserted *with data*
    // in this very epoch (insert-step write to v0; paper 3.1.2's insert
    // optimization). That version is the initial one for later-SID readers;
    // the slot keeps the inserter's SID so earlier-SID readers skip it.
    // (A crashed epoch's *final* write always lands above an existing
    // version and is never mistaken for insert-step data here.)
    const vstore::VersionDesc v0 = row.ReadDesc(0);
    if (v0.sid != 0 && Sid(v0.sid).epoch() == epoch_ && !vstore::ValueLoc(v0.loc).is_null()) {
      init.sid = v0.sid;
      slot = 0;
    }
  }
  if (slot < 0) {
    init.state.store(vstore::kIgnore, std::memory_order_release);
    return;
  }
  const vstore::VersionDesc desc = row.ReadDesc(slot);
  const vstore::ValueLoc loc(desc.loc);
  auto* tv = static_cast<vstore::TransientValue*>(
      transient_.Alloc(core, sizeof(vstore::TransientValue) + loc.size()));
  tv->size = loc.size();
  ReadVersionValue(row, desc, tv->data(), core);
  if (spec_.mode == EngineMode::kAllNvmm) {
    device_.ChargeSyntheticWrite(loc.size(), core);
  }
  init.state.store(reinterpret_cast<std::uint64_t>(tv), std::memory_order_release);
}

int Database::ReadRow(TableId table, Key key, Sid sid, void* out, std::uint32_t cap,
                      std::size_t core) {
  vstore::RowEntry* entry = tables_[table]->Get(key);
  if (entry == nullptr) {
    return -1;
  }
  vstore::VersionArray* va = entry->ArrayForEpoch(epoch_);
  if (va != nullptr) {
    int i = va->LatestBefore(sid);
    while (i >= 0) {
      vstore::VersionEntry& ve = va->entry(static_cast<std::uint32_t>(i));
      const std::uint64_t s = WaitNonPending(ve.state);
      if (s == vstore::kIgnore) {
        --i;
        continue;
      }
      if (s == vstore::kTombstone) {
        return -1;
      }
      const auto* tv = reinterpret_cast<const vstore::TransientValue*>(s);
      if (spec_.mode == EngineMode::kAllNvmm) {
        device_.ChargeSyntheticRead(tv->size, core);
      }
      std::memcpy(out, tv->data(), std::min(cap, tv->size));
      return static_cast<int>(tv->size);
    }
    return -1;
  }

  // No writes to this row in the current epoch.
  std::uint64_t latest = entry->latest_sid.load(std::memory_order_acquire);
  if (latest == 0 && entry->prow != 0) {
    // Lazy load: fast (persistent-index) recovery rebuilds entries without
    // reading row descriptors; resolve the latest SID from NVMM once.
    vstore::PersistentRow prow_view = RowAt(entry);
    device_.ChargeRead(entry->prow, vstore::kRowHeaderSize, core);
    const int slot = prow_view.LatestSlotAtOrBefore(Sid(Sid(epoch_, 0).raw() - 1));
    if (slot >= 0) {
      latest = prow_view.ReadDesc(slot).sid;
      entry->latest_sid.store(latest, std::memory_order_release);
    }
  }
  if (latest == 0 || latest == kDeletedSid || latest >= sid.raw()) {
    return -1;  // never written, deleted, or born later in this epoch
  }
  if (spec_.enable_cache) {
    vstore::CachedValue* cached = entry->cached.load(std::memory_order_acquire);
    if (cached != nullptr) {
      cache_->Touch(entry, epoch_);
      stats_.cache_hits.Add(core);
      std::memcpy(out, cached->data(), std::min(cap, cached->size));
      return static_cast<int>(cached->size);
    }
    stats_.cache_misses.Add(core);
  }
  vstore::PersistentRow row = RowAt(entry);
  const vstore::VersionDesc v1 = row.ReadDesc(1);
  const vstore::VersionDesc desc =
      (v1.sid != 0 && !vstore::ValueLoc(v1.loc).is_null()) ? v1 : row.ReadDesc(0);
  if (desc.sid == 0 || vstore::ValueLoc(desc.loc).is_null()) {
    return -1;
  }
  const vstore::ValueLoc loc(desc.loc);
  if (loc.size() <= cap) {
    ReadVersionValue(row, desc, out, core);
    if (spec_.enable_cache) {
      // Populate the cache so hot rows pay the NVM read once (paper 4.1:
      // rows are cached when first accessed).
      SpinLatchGuard guard(entry->latch);
      if (entry->cached.load(std::memory_order_relaxed) == nullptr) {
        cache_->Put(entry, out, loc.size(), epoch_, core);
      }
    }
    return static_cast<int>(loc.size());
  }
  // Caller buffer too small: read through the per-core scratch buffer (no
  // per-call allocation on this hot path).
  std::uint8_t* tmp = ScratchFor(core, loc.size());
  ReadVersionValue(row, desc, tmp, core);
  std::memcpy(out, tmp, cap);
  return static_cast<int>(loc.size());
}

// Execution-phase ordered range scan at `sid` (Caracal path). The key
// interval is collected under the ordered latch first; the versioned
// read-back then runs latch-free — entries stay valid until the epoch ends
// (removals are deferred) and structural changes only happen outside the
// execution phase. Per-row visibility (insert SIDs, tombstones, IGNOREd
// finals) is decided by ReadRow exactly as for point reads, so replaying
// the logged batch reproduces the identical scan result; Caracal needs no
// separate phantom validation because the in-epoch key set is fixed before
// execution starts.
std::uint32_t Database::ExecScan(const txn::ScanSpec& spec, Sid sid,
                                 const txn::ScanRowFn& fn, std::size_t core) {
  CheckTableId(spec.table);
  if (!tables_[spec.table]->schema().ordered) {
    throw std::logic_error("Scan on table " + std::to_string(spec.table) +
                           " which is not TableSchema::ordered");
  }
  std::vector<Key> keys;
  tables_[spec.table]->ForRangeWhile(spec.lo, spec.hi, [&keys](Key key, vstore::RowEntry*) {
    keys.push_back(key);
    return true;
  });
  // Crash point between the interval collection and the versioned read-back
  // (the scan equivalent of kMidExecution; single-worker hook runs only).
  if (crash_hook_ && spec_.workers == 1) {
    MaybeCrash(CrashSite::kMidScanValidate);
  }
  std::uint32_t delivered = 0;
  std::vector<std::uint8_t> buf(256);
  for (const Key key : keys) {
    if (delivered >= spec.limit) {
      break;
    }
    int n = ReadRow(spec.table, key, sid, buf.data(),
                    static_cast<std::uint32_t>(buf.size()), core);
    if (n < 0) {
      continue;  // not visible to this SID (tombstone / born later / absent)
    }
    if (static_cast<std::size_t>(n) > buf.size()) {
      buf.resize(static_cast<std::size_t>(n));
      n = ReadRow(spec.table, key, sid, buf.data(),
                  static_cast<std::uint32_t>(buf.size()), core);
    }
    ++delivered;
    if (!fn(key, buf.data(), static_cast<std::uint32_t>(n))) {
      break;
    }
  }
  return delivered;
}

int Database::ReadPreEpoch(TableId table, Key key, void* out, std::uint32_t cap,
                           std::size_t core) {
  vstore::RowEntry* entry = tables_[table]->Get(key);
  if (entry == nullptr || entry->prow == 0) {
    return -1;
  }
  // Runs during the append step, concurrently with version-array creation on
  // the same row (which drops the cached value under the row latch), so the
  // cached pointer must be copied out under the latch.
  if (spec_.enable_cache) {
    SpinLatchGuard guard(entry->latch);
    vstore::CachedValue* cached = entry->cached.load(std::memory_order_acquire);
    if (cached != nullptr) {
      cache_->Touch(entry, epoch_);
      stats_.cache_hits.Add(core);
      std::memcpy(out, cached->data(), std::min(cap, cached->size));
      return static_cast<int>(cached->size);
    }
    stats_.cache_misses.Add(core);
  }
  vstore::PersistentRow row = RowAt(entry);
  const int slot = row.LatestSlotAtOrBefore(Sid(Sid(epoch_, 0).raw() - 1));
  if (slot < 0) {
    return -1;
  }
  const vstore::VersionDesc desc = row.ReadDesc(slot);
  const vstore::ValueLoc loc(desc.loc);
  if (loc.size() <= cap) {
    ReadVersionValue(row, desc, out, core);
    return static_cast<int>(loc.size());
  }
  std::uint8_t* tmp = ScratchFor(core, loc.size());
  ReadVersionValue(row, desc, tmp, core);
  std::memcpy(out, tmp, cap);
  return static_cast<int>(loc.size());
}

void Database::WriteRow(TxnState& st, TableId table, Key key, const void* data,
                        std::uint32_t size, std::size_t core) {
  vstore::RowEntry* entry = tables_[table]->Get(key);
  assert(entry != nullptr && "write to missing row");
  vstore::VersionArray* va = entry->ArrayForEpoch(epoch_);
  assert(va != nullptr && "write without declaration");
  const int slot = va->FindSlot(st.sid);
  assert(slot >= 0 && "write not declared in the append step");

  vstore::VersionEntry& ve = va->entry(static_cast<std::uint32_t>(slot));
  // Always publish a fresh buffer, even when this transaction already wrote
  // the slot: once the pointer is store-released, a reader at a later SID may
  // be mid-memcpy from it, and mutating the published bytes in place would
  // hand that reader a torn value. The transient pool is a per-epoch bump
  // allocator, so the superseded buffer is reclaimed at epoch end anyway.
  auto* tv = static_cast<vstore::TransientValue*>(
      transient_.Alloc(core, sizeof(vstore::TransientValue) + size));
  tv->size = size;
  std::memcpy(tv->data(), data, size);
  ve.state.store(reinterpret_cast<std::uint64_t>(tv), std::memory_order_release);

  if (va->IsFinal(st.sid)) {
    if (spec_.mode == EngineMode::kAllNvmm) {
      // The version-array value itself lives in NVMM in this baseline.
      device_.ChargeSyntheticWrite(size, core);
    }
    PersistFinal(entry, st.sid, data, size, core);
  } else {
    stats_.transient_writes.Add(core);
    if (ModeWritesThrough(spec_.mode)) {
      // Hybrid and all-NVMM baselines persist every update to NVMM (the
      // hybrid writes through to the row store; all-NVMM writes the version
      // value in place).
      device_.ChargeSyntheticWrite(size, core);
    }
  }
}

void Database::DeleteRow(TxnState& st, TableId table, Key key, std::size_t core) {
  vstore::RowEntry* entry = tables_[table]->Get(key);
  assert(entry != nullptr && "delete of missing row");
  vstore::VersionArray* va = entry->ArrayForEpoch(epoch_);
  assert(va != nullptr && "delete without declaration");
  const int slot = va->FindSlot(st.sid);
  assert(slot >= 0 && "delete not declared in the append step");
  va->entry(static_cast<std::uint32_t>(slot))
      .state.store(vstore::kTombstone, std::memory_order_release);
  if (va->IsFinal(st.sid)) {
    ProcessDelete(entry, core);
  }
}

void Database::PostExecute(TxnState& st, std::size_t core) {
  // Aborted transactions discard any rows they inserted (deterministic on
  // replay because the same allocations and frees repeat).
  if (st.aborted) {
    for (vstore::RowEntry* entry : st.inserted) {
      ProcessDelete(entry, core);
    }
  }
  // Unwritten declared versions become IGNORE markers (covers user aborts and
  // conditionally-skipped writes), then an ignored final slot is resolved to
  // the latest non-ignored version (paper 4.6).
  for (vstore::RowEntry* entry : st.writes) {
    vstore::VersionArray* va = entry->ArrayForEpoch(epoch_);
    const int slot = va->FindSlot(st.sid);
    vstore::VersionEntry& ve = va->entry(static_cast<std::uint32_t>(slot));
    std::uint64_t expected = vstore::kPending;
    ve.state.compare_exchange_strong(expected, vstore::kIgnore, std::memory_order_release,
                                     std::memory_order_relaxed);
  }
  for (vstore::RowEntry* entry : st.writes) {
    vstore::VersionArray* va = entry->ArrayForEpoch(epoch_);
    if (va->IsFinal(st.sid) &&
        va->last().state.load(std::memory_order_acquire) == vstore::kIgnore) {
      ResolveIgnoredFinal(entry, core);
    }
  }
}

void Database::ResolveIgnoredFinal(vstore::RowEntry* entry, std::size_t core) {
  vstore::VersionArray* va = entry->ArrayForEpoch(epoch_);
  int i = static_cast<int>(va->count()) - 2;
  while (i >= 1) {
    vstore::VersionEntry& ve = va->entry(static_cast<std::uint32_t>(i));
    const std::uint64_t s = WaitNonPending(ve.state);
    if (s == vstore::kIgnore) {
      --i;
      continue;
    }
    if (s == vstore::kTombstone) {
      ProcessDelete(entry, core);
      return;
    }
    const auto* tv = reinterpret_cast<const vstore::TransientValue*>(s);
    PersistFinal(entry, Sid(ve.sid), tv->data(), tv->size, core);
    return;
  }
  // Only the initial version remains: the persistent row already holds it
  // (written in a previous epoch); just restore the cached copy (paper 4.6).
  const std::uint64_t s = va->entry(0).state.load(std::memory_order_acquire);
  if (va->entry(0).IsValuePointer(s) && spec_.enable_cache) {
    const auto* tv = reinterpret_cast<const vstore::TransientValue*>(s);
    cache_->Put(entry, tv->data(), tv->size, epoch_, core);
  }
}

void Database::PersistFinal(vstore::RowEntry* entry, Sid sid, const void* data,
                            std::uint32_t size, std::size_t core) {
  PersistFinalImpl(entry, sid, data, size, core, replaying_);
}

void Database::PersistFinalImpl(vstore::RowEntry* entry, Sid sid, const void* data,
                                std::uint32_t size, std::size_t core, bool replay) {
  // The cached value is created before the persistent write so other
  // transactions in later epochs can read it from DRAM (paper 4.1). Under
  // the selective policy, cold rows (single version this epoch, not already
  // cached) skip admission — creating cached versions costs memory and CPU
  // and is not always effective (paper 6.6).
  if (spec_.enable_cache) {
    bool admit = true;
    if (spec_.cache_policy == DatabaseSpec::CachePolicy::kHotOnly) {
      vstore::VersionArray* va = entry->ArrayForEpoch(epoch_);
      const bool hot_this_epoch = va != nullptr && va->count() > 2;  // initial + >1 write
      const bool was_cached =
          entry->cache_dropped_epoch.load(std::memory_order_relaxed) == epoch_;
      admit = hot_this_epoch || was_cached;
    }
    if (admit) {
      cache_->Put(entry, data, size, epoch_, core);
    }
  }
  entry->latest_sid.store(sid.raw(), std::memory_order_release);
  stats_.persistent_writes.Add(core);

  vstore::PersistentRow row = RowAt(entry);
  vstore::VersionDesc v0 = row.ReadDesc(0);
  vstore::VersionDesc v1 = row.ReadDesc(1);

  if (replay && v1.sid == sid.raw()) {
    // Crash-repair case 3: this transaction already claimed slot 1 before
    // the crash. Its value-pool allocation was reverted with the allocator
    // offsets, so the recorded location may be handed to another row during
    // replay — it must not be trusted or reused. Clear the location (the
    // paper: "the transaction overwrites the version, thus updating the
    // pointer") and write a freshly allocated value below.
    if (!vstore::ValueLoc(v1.loc).is_null()) {
      row.WriteDesc(1, sid, vstore::ValueLoc{}, core);
    }
    v1 = vstore::VersionDesc{};
  }

  int target;
  if (v1.sid != 0 && !vstore::ValueLoc(v1.loc).is_null()) {
    // Two live versions: minor GC collects the stale first version in
    // place. Normally only reached when the stale version is inline —
    // non-inline stale versions were collected by the major collector
    // during initialization — except for aliased descriptors left by an
    // interrupted collection (v0 == v1), where the copy is a no-op and
    // nothing needs freeing.
    assert(v0.sid != 0);
    assert(vstore::ValueLoc(v0.loc).is_inline() || vstore::ValueLoc(v0.loc).is_null() ||
           v0.loc == v1.loc);
    stats_.minor_gc_runs.Add(core);
    row.WriteDesc(0, Sid(v1.sid), vstore::ValueLoc(v1.loc), core);
    row.WriteDesc(1, Sid(0), vstore::ValueLoc{}, core);
    target = 1;
  } else if (v0.sid != 0) {
    target = 1;  // single version lives in slot 0; the new one goes above it
  } else {
    target = 0;  // fresh row (inserted without data this epoch)
  }

  vstore::ValueLoc loc = row.FindInlineSpace(size);
  if (loc.is_null()) {
    loc = AllocValue(size, core);
  }
  row.WriteValue(loc, data, size, core);
  row.WriteDesc(target, sid, loc, core);

  // GC bookkeeping for the next epoch: if the row now carries two versions
  // and the stale one cannot be minor-collected at the next write (it is not
  // inline, or minor GC is disabled), schedule the major collector.
  const vstore::VersionDesc post0 = row.ReadDesc(0);
  const vstore::VersionDesc post1 = row.ReadDesc(1);
  if (post0.sid != 0 && post1.sid != 0 && !vstore::ValueLoc(post1.loc).is_null()) {
    const bool stale_inline = vstore::ValueLoc(post0.loc).is_inline();
    if (!spec_.enable_minor_gc || !stale_inline) {
      core_state_[core].major_gc.push_back(entry);
    }
  }
}

// Cold-tier demotion (initialization phase). For each row whose cached copy
// just aged out of the DRAM cache, move its single non-inline hot value to
// the cold device. Ordering makes every crash state valid without repairs:
// data + allocations become durable (non-revertibly) BEFORE any descriptor
// may reference a cold block, and the vacated hot blocks are freed only in
// the next epoch, after this epoch's checkpoint made the new descriptors
// durable. A crash in between leaks at most one batch (bounded; reclaimable
// offline).
void Database::RunDemotions() {
  if (demotion_candidates_.empty()) {
    return;
  }
  PhaseProfiler::ScopedPhase phase(profiler_, Phase::kDemotion);
  struct Demotion {
    vstore::RowEntry* entry;
    int slot;
    vstore::VersionDesc old_desc;
    vstore::ValueLoc new_loc;
  };
  // Eligibility + copy for one candidate on `core`; returns false when the
  // candidate is skipped, throws nothing. Cold-tier exhaustion is signalled
  // by *exhausted (the caller stops consuming its range).
  const auto try_demote = [this](vstore::RowEntry* entry, std::size_t core,
                                 std::vector<Demotion>* out, bool* exhausted) {
    if (entry->prow == 0 ||
        entry->latest_sid.load(std::memory_order_relaxed) == ~0ULL) {
      return;
    }
    vstore::PersistentRow row = RowAt(entry);
    const vstore::VersionDesc v0 = row.ReadDesc(0);
    const vstore::VersionDesc v1 = row.ReadDesc(1);
    // Demote the latest version's value. Two-version rows occur here only
    // when the stale first version is inline or cold (non-inline hot stale
    // versions were major-collected earlier this epoch), so the latest is
    // v1; otherwise the single version lives in v0.
    int slot;
    vstore::VersionDesc target;
    if (v1.sid != 0 && !vstore::ValueLoc(v1.loc).is_null()) {
      const vstore::ValueLoc stale(v0.loc);
      if (!stale.is_null() && !stale.is_inline() && !stale.is_cold()) {
        return;  // awaiting major GC; skip defensively
      }
      slot = 1;
      target = v1;
    } else {
      slot = 0;
      target = v0;
    }
    const vstore::ValueLoc loc(target.loc);
    if (target.sid == 0 || loc.is_null() || loc.is_inline() || loc.is_cold() ||
        loc.size() > spec_.cold_block_size) {
      return;
    }
    const std::uint64_t cold_offset = cold_pool_->Alloc(core);
    if (cold_offset == 0) {
      *exhausted = true;  // this core's cold shard is full
      return;
    }
    device_.ChargeRead(loc.offset(), loc.size(), core);
    cold_device_->WritePersist(cold_offset, device_.At(loc.offset()), loc.size(), core);
    out->push_back(Demotion{entry, slot, target,
                            vstore::ValueLoc::Make(false, loc.size(), cold_offset,
                                                   /*is_cold=*/true)});
  };

  std::vector<std::vector<Demotion>> batches(spec_.workers);
  if (spec_.enable_parallel_tail) {
    // Read+copy fans out: each worker copies a contiguous candidate range to
    // cold blocks from its own per-core cold shard. No descriptor is touched
    // yet, so worker order is free.
    pool_.RunParallel([&, this](std::size_t w) {
      PhaseProfiler::WorkerScope span(profiler_, w);
      const Range r = SplitRange(demotion_candidates_.size(), spec_.workers, w);
      bool exhausted = false;
      for (std::size_t i = r.begin; i < r.end && !exhausted; ++i) {
        try_demote(demotion_candidates_[i], w, &batches[w], &exhausted);
      }
    });
  } else {
    bool exhausted = false;
    for (vstore::RowEntry* entry : demotion_candidates_) {
      if (exhausted) {
        break;  // cold tier full
      }
      try_demote(entry, 0, &batches[0], &exhausted);
    }
  }
  demotion_candidates_.clear();
  bool any = false;
  for (const auto& batch : batches) {
    any = any || !batch.empty();
  }
  if (!any) {
    return;
  }
  // Crash before the durability point: the copied cold data and bump pointer
  // are not fenced yet, so recovery must still see every descriptor pointing
  // at its hot value.
  MaybeCrash(CrashSite::kDuringDemotion);
  // Durability point: cold data + allocations survive any crash from here on,
  // so descriptors may reference them. The parallel path's workers staged
  // their cold persists per core; one cross-core barrier retires them all
  // where the serial path fenced once.
  if (spec_.enable_parallel_tail) {
    cold_device_->FenceAll(0);
  } else {
    cold_device_->Fence(0);
  }
  cold_pool_->PersistBumpNonRevertible(0);
  const bool hook_tail = static_cast<bool>(crash_hook_) && spec_.workers == 1;
  if (spec_.enable_parallel_tail) {
    pool_.RunParallel([&, this](std::size_t w) {
      PhaseProfiler::WorkerScope span(profiler_, w);
      for (const Demotion& demotion : batches[w]) {
        vstore::PersistentRow row = RowAt(demotion.entry);
        row.WriteDesc(demotion.slot, Sid(demotion.old_desc.sid), demotion.new_loc, w);
        stats_.demotions.Add(w);
        if (hook_tail) {
          // Crash mid-batch: some descriptors already name cold locations,
          // the rest still name hot ones; both must read back correctly
          // after recovery.
          MaybeCrash(CrashSite::kDuringDemotion);
        }
      }
    });
  } else {
    for (const Demotion& demotion : batches[0]) {
      vstore::PersistentRow row = RowAt(demotion.entry);
      row.WriteDesc(demotion.slot, Sid(demotion.old_desc.sid), demotion.new_loc, 0);
      stats_.demotions.Add(0);
      // Crash mid-batch: some descriptors already name cold locations, the
      // rest still name hot ones; both must read back correctly.
      MaybeCrash(CrashSite::kDuringDemotion);
    }
  }
  // Vacated hot blocks free in the NEXT epoch (after this epoch's checkpoint
  // made the new descriptors durable). Worker-major order == candidate order
  // (ranges are contiguous), matching the serial append order.
  for (const auto& batch : batches) {
    for (const Demotion& demotion : batch) {
      cold_frees_next_.push_back(vstore::ValueLoc(demotion.old_desc.loc));
    }
  }
}

void Database::ProcessDelete(vstore::RowEntry* entry, std::size_t core) {
  vstore::PersistentRow row = RowAt(entry);
  for (int slot = 0; slot < 2; ++slot) {
    const vstore::VersionDesc desc = row.ReadDesc(slot);
    const vstore::ValueLoc loc(desc.loc);
    if (desc.sid != 0 && !loc.is_null() && !loc.is_inline()) {
      // Transaction-logic deletions are revertible (paper 5.5).
      FreeValue(core, loc);
    }
  }
  row_pools_[entry->table]->Free(core, entry->prow);
  if (spec_.enable_cache) {
    cache_->Drop(entry);
  }
  entry->latest_sid.store(kDeletedSid, std::memory_order_release);
  core_state_[core].deleted.push_back(entry);
  if (spec_.enable_persistent_index) {
    // Delta ordering: a key inserted and deleted in the same epoch must see
    // insert-before-delete at application time. Inserts happen in the insert
    // step on the inserting transaction's worker and a same-epoch delete of
    // that key only occurs on the same transaction's abort path (same
    // worker), so per-core ordering suffices.
    core_state_[core].index_deltas.push_back(
        IndexDelta{.table = entry->table, .is_delete = true, .key = entry->key, .prow = 0});
  }
}

}  // namespace nvc::core
