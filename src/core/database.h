// NVCaracal: a deterministic database with NVMM dual-version checkpointing.
//
// This is the engine described in sections 4 and 5 of the paper. Epoch
// processing follows Algorithm 1:
//
//   for each epoch:
//     log_transaction_inputs()        (NVCaracal mode)
//     insert_step()                   persistent rows created in NVMM
//     GC_major()                      collect stale versions of rows updated
//                                     in the previous epoch
//     evict_cache()                   epoch-based K-LRU
//     append_step()                   build sorted transient version arrays
//     execute_phase()                 PWV execution; the final write per row
//                                     is checkpointed to NVMM
//     fence(); persist_epoch_number(); fence()
//     transient_pool_free()
//
// Failure model: destroying the Database object models losing DRAM; calling
// NvmDevice::Crash() (or restarting the process with a file-backed device)
// models losing unflushed NVMM lines. A fresh Database over the same device
// then runs Recover() to rebuild the index and deterministically replay the
// crashed epoch from the input log.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <memory>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/alloc/persistent_pool.h"
#include "src/alloc/transient_pool.h"
#include "src/common/profiler.h"
#include "src/common/status.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/types.h"
#include "src/common/worker_pool.h"
#include "src/core/config.h"
#include "src/core/input_log.h"
#include "src/index/persistent_index.h"
#include "src/index/table_index.h"
#include "src/sim/nvm_device.h"
#include "src/txn/transaction.h"
#include "src/vstore/persistent_row.h"
#include "src/vstore/version_array.h"
#include "src/vstore/version_cache.h"

namespace nvc::core {

struct EpochResult {
  Epoch epoch = 0;
  std::size_t committed = 0;
  std::size_t aborted = 0;   // user-level aborts
  std::size_t deferred = 0;  // Aria: conflict-deferred to the next batch
  double seconds = 0;
  bool crashed = false;  // a crash hook fired; the Database must be discarded
};

// Per-transaction fate within one executed epoch.
enum class TxnOutcome : std::uint8_t {
  kCommitted = 0,
  kAborted = 1,   // user-level abort (durable: the abort is the outcome)
  kDeferred = 2,  // Aria: conflict-deferred; re-runs at the front of the
                  // next batch (the Database retains the transaction)
};

// Durable-notify hook for epoch completion. Invoked *after* the epoch number
// is persisted (the group-commit durability point) and never for a crashed
// epoch. With enable_epoch_pipeline off it runs synchronously on the
// ExecuteEpoch caller's thread; with pipelining on it runs on the internal
// tail thread, strictly in epoch order, possibly concurrent with the next
// epoch's ExecuteEpoch — the callback must be thread-safe against the
// submitting thread. `outcomes` is indexed by executed-batch slot: under
// Aria the batch is [previously deferred transactions in order, then the new
// ones]; under Caracal it is exactly the input vector. The service front-end
// (src/service/) uses this to resolve per-transaction tickets and measure
// submit->durable latency.
using EpochCallback =
    std::function<void(const EpochResult& result, const std::vector<TxnOutcome>& outcomes)>;

struct RecoveryReport {
  Epoch recovered_epoch = 0;       // last checkpointed epoch
  bool replayed = false;           // a complete log for the crashed epoch existed
  bool used_persistent_index = false;  // fast rebuild path (no full row scan)
  bool instant = false;            // fast phase returned with pending-replay state
  std::size_t rows_scanned = 0;
  std::size_t replayed_txns = 0;   // instant: txns the pending epoch will redo
  std::size_t reverted_versions = 0;  // kRevertAndReplay only
  std::size_t backfill_pending_keys = 0;  // keys awaiting on-demand/backfill redo
  double load_txn_seconds = 0;
  double scan_rebuild_seconds = 0;
  double revert_seconds = 0;       // folded into the scan pass; timed separately
  double replay_seconds = 0;
  // Seconds until the database could serve its first post-crash access:
  // the fast-phase wall time under instant recovery, total_seconds() for a
  // full-replay recovery.
  double time_to_first_commit = 0;
  double total_seconds() const {
    return load_txn_seconds + scan_rebuild_seconds + revert_seconds + replay_seconds;
  }
};

// Live view of an in-progress instant recovery (Database::RecoveryProgress).
struct BackfillProgress {
  bool pending = false;        // crashed epoch still pending-replay
  Epoch crashed_epoch = 0;
  std::size_t pending_keys = 0;   // keys not yet redone
  std::size_t total_keys = 0;     // keys the crashed epoch wrote
  std::size_t replayed_txns = 0;  // transaction slots executed so far
  std::size_t total_txns = 0;     // transactions in the crashed epoch
};

// DRAM / NVMM footprint breakdown (figure 8).
struct MemoryBreakdown {
  std::size_t dram_index_bytes = 0;
  std::size_t dram_transient_bytes = 0;  // transient pool high-water mark
  std::size_t dram_cache_bytes = 0;
  std::size_t nvm_row_bytes = 0;
  std::size_t nvm_value_bytes = 0;
  std::size_t nvm_log_bytes = 0;
  std::size_t cold_value_bytes = 0;  // values demoted to block storage
  std::size_t dram_total() const {
    return dram_index_bytes + dram_transient_bytes + dram_cache_bytes;
  }
  std::size_t nvm_total() const { return nvm_row_bytes + nvm_value_bytes + nvm_log_bytes; }
};

// Sites where tests can inject a simulated process crash (the hook returns
// true to crash). After a crash the Database object must be destroyed,
// NvmDevice::Crash()/CrashChaos()/CrashTorn() invoked, and a fresh Database
// recovered.
enum class CrashSite {
  kAfterLog,
  kAfterInsert,
  kDuringMajorGc,      // between the free pass and the descriptor pass
  kDuringGcPass2,      // inside pass 2, between a row's copy and its reset
                       // (aliased descriptors; single-worker runs)
  kAfterGcPersist,
  kDuringDemotion,     // cold-tier demotion: before the durability fence and
                       // between per-row descriptor updates
  kAfterAppend,
  kMidExecution,       // between transactions (single-worker runs)
  kAfterExecution,
  kDuringIndexApply,   // between persistent-index delta applications
  kBeforeEpochPersist,
  kMidParallelCheckpoint,  // parallel tail: between a worker's value-pool and
                           // row-pool shard checkpoints (single-worker runs)
  kMidParallelIndexApply,  // parallel tail: after a delta application, while
                           // the shard batch is part-applied (single-worker)
  kMidInstantRecoveryOnDemand,  // instant recovery: before an on-demand key
                                // redo triggered by a foreground access
  kMidBackfill,                 // instant recovery: between backfill keys
                                // (crash while recovering from a crash)
  kMidOverlapExecute,      // pipelined: inside epoch N+1's overlapped front
                           // (after the log/digest encode) while epoch N's
                           // tail may still be persisting
  kMidOverlapTailPersist,  // pipelined: on the tail thread, between the
                           // checkpoint shards and the index-delta apply
  kMidScanValidate,        // range scans: between a scan's key-interval
                           // collection and its read-back (Caracal execute
                           // phase) or before its phantom interval check
                           // (Aria commit phase); single-worker runs
  kMidOrderedIndexRebuild,  // recovery: while re-inserting an ordered
                            // table's keys into the skiplist (crash during
                            // recovery; single-worker runs)
  kMidShardExchange,        // multi-shard (src/shard): after a shard published
                            // its exchange slots, before the fixed-point
                            // barrier; never fired by the engine itself
  kMidShardEpochBarrier,    // multi-shard: inside the post-log durability
                            // hook, before the cross-shard barrier; never
                            // fired by the engine itself
};
inline constexpr std::size_t kCrashSiteCount = 21;
inline constexpr CrashSite kAllCrashSites[kCrashSiteCount] = {
    CrashSite::kAfterLog,        CrashSite::kAfterInsert,   CrashSite::kDuringMajorGc,
    CrashSite::kDuringGcPass2,   CrashSite::kAfterGcPersist, CrashSite::kDuringDemotion,
    CrashSite::kAfterAppend,     CrashSite::kMidExecution,  CrashSite::kAfterExecution,
    CrashSite::kDuringIndexApply, CrashSite::kBeforeEpochPersist,
    CrashSite::kMidParallelCheckpoint, CrashSite::kMidParallelIndexApply,
    CrashSite::kMidInstantRecoveryOnDemand, CrashSite::kMidBackfill,
    CrashSite::kMidOverlapExecute, CrashSite::kMidOverlapTailPersist,
    CrashSite::kMidScanValidate, CrashSite::kMidOrderedIndexRebuild,
    CrashSite::kMidShardExchange, CrashSite::kMidShardEpochBarrier,
};

constexpr const char* CrashSiteName(CrashSite site) {
  switch (site) {
    case CrashSite::kAfterLog: return "AfterLog";
    case CrashSite::kAfterInsert: return "AfterInsert";
    case CrashSite::kDuringMajorGc: return "DuringMajorGc";
    case CrashSite::kDuringGcPass2: return "DuringGcPass2";
    case CrashSite::kAfterGcPersist: return "AfterGcPersist";
    case CrashSite::kDuringDemotion: return "DuringDemotion";
    case CrashSite::kAfterAppend: return "AfterAppend";
    case CrashSite::kMidExecution: return "MidExecution";
    case CrashSite::kAfterExecution: return "AfterExecution";
    case CrashSite::kDuringIndexApply: return "DuringIndexApply";
    case CrashSite::kBeforeEpochPersist: return "BeforeEpochPersist";
    case CrashSite::kMidParallelCheckpoint: return "MidParallelCheckpoint";
    case CrashSite::kMidParallelIndexApply: return "MidParallelIndexApply";
    case CrashSite::kMidInstantRecoveryOnDemand: return "MidInstantRecoveryOnDemand";
    case CrashSite::kMidBackfill: return "MidBackfill";
    case CrashSite::kMidOverlapExecute: return "MidOverlapExecute";
    case CrashSite::kMidOverlapTailPersist: return "MidOverlapTailPersist";
    case CrashSite::kMidScanValidate: return "MidScanValidate";
    case CrashSite::kMidOrderedIndexRebuild: return "MidOrderedIndexRebuild";
    case CrashSite::kMidShardExchange: return "MidShardExchange";
    case CrashSite::kMidShardEpochBarrier: return "MidShardEpochBarrier";
  }
  return "?";
}

using CrashHook = std::function<bool(CrashSite)>;

// Counts how often each CrashSite was reached (MaybeCrash evaluated) and how
// often a hook fired there, so a fuzzing sweep can report which recovery
// branches its runs actually exercised.
struct CrashSiteCoverage {
  std::array<std::uint64_t, kCrashSiteCount> reached{};
  std::array<std::uint64_t, kCrashSiteCount> fired{};

  void Merge(const CrashSiteCoverage& other) {
    for (std::size_t i = 0; i < kCrashSiteCount; ++i) {
      reached[i] += other.reached[i];
      fired[i] += other.fired[i];
    }
  }
};

class Database {
 public:
  // Device bytes the spec requires; size the NvmDevice with at least this.
  static std::size_t RequiredDeviceBytes(const DatabaseSpec& spec);

  // Human-readable map of the on-device areas (offline inspection tooling).
  struct AreaInfo {
    std::string name;
    std::uint64_t offset;
    std::uint64_t bytes;
  };
  static std::vector<AreaInfo> DescribeLayout(const DatabaseSpec& spec);

  // `cold_device` backs the optional cold tier (spec.enable_cold_tier);
  // size it with RequiredColdDeviceBytes and give it a block-storage latency
  // profile + 4096-byte access granule.
  Database(sim::NvmDevice& device, const DatabaseSpec& spec,
           sim::NvmDevice* cold_device = nullptr);
  ~Database();

  static std::size_t RequiredColdDeviceBytes(const DatabaseSpec& spec);

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // Initializes a fresh database on the device. Follow with BulkLoad calls
  // and exactly one FinalizeLoad before the first ExecuteEpoch.
  void Format();

  // Writes one row during initial population (bypasses epoch machinery but
  // still pays NVMM costs).
  void BulkLoad(TableId table, Key key, const void* data, std::uint32_t size);

  // Checkpoints the loaded state as epoch 1.
  void FinalizeLoad();

  // Rebuilds DRAM state from the device after a crash and deterministically
  // replays the crashed epoch from the input log if one is complete.
  // Failure statuses:
  //   kDataLoss           the device carries no NVCaracal superblock
  //   kFailedPrecondition the on-device table count disagrees with the spec
  //   kAborted            a crash hook fired during the replay
  StatusOr<RecoveryReport> Recover(const txn::TxnRegistry& registry);

  // Multi-shard recovery coordination (src/shard). `allow_replay=false`
  // restores the last checkpointed epoch but never replays a complete input
  // log for the next epoch — the sharded recovery decision may require a
  // shard that crashed *after* logging to hold the epoch back because a peer
  // shard never logged it.
  struct RecoverOptions {
    bool allow_replay = true;
  };
  StatusOr<RecoveryReport> Recover(const txn::TxnRegistry& registry,
                                   const RecoverOptions& options);

  // Non-destructive look at the device before recovery: the last
  // checkpointed epoch in the superblock and whether a complete input log
  // for the following epoch exists. The sharded recovery coordinator peeks
  // every shard first to decide the global replay policy.
  //   kDataLoss           no NVCaracal superblock on the device
  //   kFailedPrecondition on-device table count disagrees with the spec
  struct RecoveryPeek {
    Epoch checkpointed = 0;
    bool has_next_log = false;  // complete log for epoch checkpointed+1
  };
  StatusOr<RecoveryPeek> PeekRecovery();

  // Pre-Status shim; identical to Recover(registry).value().
  [[deprecated("use Recover(), which returns StatusOr<RecoveryReport>")]]
  RecoveryReport RecoverOrDie(const txn::TxnRegistry& registry) {
    return Recover(registry).value();
  }

  // Processes one epoch of transactions (batch = epoch, paper footnote 1).
  // When an instant recovery is pending, first completes the crashed epoch's
  // backfill and checkpoint (profiled as Phase::kRecoveryBackfill), so the
  // new epoch observes fully-replayed state.
  EpochResult ExecuteEpoch(std::vector<std::unique_ptr<txn::Transaction>> txns);

  // Pipelined mode: blocks until the asynchronous persistence tail of the
  // last executed epoch (if any) has completed, so device state, stats and
  // the shadow image are quiescent. No-op with enable_epoch_pipeline off.
  // Returns kAborted when a crash hook fired on the tail thread — the
  // Database must then be discarded and recovered like any other crash.
  Status WaitIdle();

  // ---- Instant recovery (spec.enable_instant_recovery; recovery.cc) ----------

  // True while the crashed epoch is pending-replay (between a fast-phase
  // Recover() and the completion of backfill + the crashed epoch's
  // checkpoint).
  bool instant_recovery_pending() const {
    return instant_active_.load(std::memory_order_acquire);
  }

  // Live backfill progress; pending == false once recovery fully retired.
  BackfillProgress RecoveryProgress() const;

  // Replays up to `max_keys` still-pending keys (background backfill sweep);
  // returns the number of pending keys remaining. The step that retires the
  // last key also checkpoints the crashed epoch, after which the fast path
  // is branch-free again. kAborted when a crash hook fired mid-backfill.
  StatusOr<std::size_t> RunBackfillStep(std::size_t max_keys);

  // Runs backfill steps to completion. No-op when nothing is pending.
  Status CompleteBackfill();

  // ---- Introspection ---------------------------------------------------------

  Epoch current_epoch() const { return current_epoch_; }
  const DatabaseSpec& spec() const { return spec_; }
  EngineStats& stats() { return stats_; }

  // ---- Epoch-phase profiler --------------------------------------------------
  // Off by default; ConfigureProfiler({.enabled = true}) turns on span
  // recording and per-phase NVM/engine counter attribution for every
  // subsequent ExecuteEpoch. See DESIGN.md section 9.
  void ConfigureProfiler(const ProfilerConfig& config) { profiler_.Configure(config); }
  PhaseProfiler& profiler() { return profiler_; }
  const PhaseProfiler& profiler() const { return profiler_; }
  nvc::ProfileReport ProfileReport() const { return profiler_.Report(); }

  // Bounds-checked introspection accessors: an out-of-range id from tooling
  // used to index straight into the vectors (UB); they now throw
  // std::out_of_range with the offending id and the configured bound.
  std::uint64_t counter_value(txn::CounterId id) const {
    CheckCounterId(id);
    return counters_[id].load(std::memory_order_relaxed);
  }
  std::size_t table_rows(TableId table) const {
    CheckTableId(table);
    return tables_[table]->entries();
  }

  // Reads the latest committed value of a row outside any epoch (tests,
  // examples, tooling). Returns the number of bytes copied into `out`
  // (min(cap, value size)); kNotFound when the row has no committed value.
  StatusOr<std::uint32_t> ReadCommitted(TableId table, Key key, void* out, std::uint32_t cap);

  // One RangeScan result row.
  struct ScanRow {
    Key key = 0;
    std::vector<std::uint8_t> value;
  };
  // Committed-state range scan outside any epoch (tests, tooling, read-only
  // clients): live rows with key in [begin, end] ascending, at most `limit`.
  // kInvalidArgument when the table is not TableSchema::ordered.
  StatusOr<std::vector<ScanRow>> RangeScan(TableId table, Key begin, Key end,
                                           std::size_t limit = ~std::size_t{0});

  // Pre-Status shim for the old int convention (bytes copied, or -1 when
  // absent). Unused in-repo; kept for one PR for external callers.
  [[deprecated("use ReadCommitted(), which returns StatusOr<std::uint32_t>")]]
  int ReadCommittedLegacy(TableId table, Key key, void* out, std::uint32_t cap) {
    const StatusOr<std::uint32_t> n = ReadCommitted(table, key, out, cap);
    return n.ok() ? static_cast<int>(*n) : -1;
  }

  MemoryBreakdown GetMemoryBreakdown() const;

  // Installing a hook quiesces any in-flight asynchronous epoch tail first,
  // so the hook only observes sites of epochs submitted after this call
  // (and the swap never races the tail thread's reads). Declared out of
  // line: quiescing needs the tail machinery.
  void SetCrashHook(CrashHook hook);

  // Multi-shard durability barrier (src/shard). Invoked by ExecuteEpoch once
  // the epoch's input log (and digest) are durable, before any NVMM state of
  // the epoch is mutated; skipped during replay. Returning false makes the
  // epoch fail exactly as if a crash hook fired at that point (the epoch's
  // log stays durable; the Database must be discarded and recovered).
  // Installation quiesces the tail like SetCrashHook.
  using PostLogHook = std::function<bool(Epoch)>;
  void SetPostLogHook(PostLogHook hook);

  // Durable-notify: see EpochCallback above. Pass {} to clear. Safe to call
  // concurrently with a running epoch or its asynchronous tail: install and
  // invocation serialize on an internal mutex, so once a clearing call
  // returns, no in-flight invocation of the old callback remains.
  void SetEpochCallback(EpochCallback callback) {
    std::lock_guard<std::mutex> lk(callback_mu_);
    epoch_callback_ = std::move(callback);
  }

  // Per-site reach/fire counts accumulated over this object's lifetime.
  CrashSiteCoverage crash_coverage() const {
    CrashSiteCoverage cov;
    for (std::size_t i = 0; i < kCrashSiteCount; ++i) {
      cov.reached[i] = site_reached_[i].load(std::memory_order_relaxed);
      cov.fired[i] = site_fired_[i].load(std::memory_order_relaxed);
    }
    return cov;
  }

  index::TableIndex& table_index(TableId table) {
    CheckTableId(table);
    return *tables_[table];
  }

  // ---- Oracle / fuzzing support ---------------------------------------------
  sim::NvmDevice& device() { return device_; }
  std::size_t table_count() const { return tables_.size(); }
  std::size_t counter_count() const { return counters_.size(); }
  // Null when spec().enable_persistent_index is off.
  index::PersistentIndex* persistent_index(TableId table) {
    return pindexes_.empty() ? nullptr : pindexes_[table].get();
  }

 private:
  void CheckTableId(TableId table) const;
  void CheckCounterId(txn::CounterId id) const;

  friend class EngineInsertContext;
  friend class EngineAppendContext;
  friend class EngineExecContext;
  friend class AriaExecContext;

  struct ValuePoolArea {
    std::uint64_t base = 0;
    std::uint64_t end = 0;
    std::size_t block_size = 0;
  };
  struct Layout {
    std::uint64_t superblock = 0;
    std::uint64_t counters = 0;
    std::uint64_t log = 0;
    std::uint64_t digest = 0;  // replay digest (instant recovery; optional)
    std::vector<ValuePoolArea> value_pools;  // ascending block size
    std::vector<std::uint64_t> row_pools;
    std::vector<std::uint64_t> pindexes;  // persistent index areas (optional)
    std::uint64_t gc_log = 0;             // persisted major-GC list (optional)
    std::uint64_t total = 0;
  };
  static Layout ComputeLayout(const DatabaseSpec& spec);

  // Value-pool size classes (legacy single pool when spec.value_pools empty).
  static std::vector<DatabaseSpec::ValuePoolSpec> EffectiveValuePools(
      const DatabaseSpec& spec);

  struct SuperBlock {
    std::uint64_t magic;
    std::uint32_t version;
    std::uint32_t table_count;
    std::uint64_t epoch;  // last checkpointed epoch number
    std::uint64_t reserved[5];
  };
  static_assert(sizeof(SuperBlock) == kCacheLineSize);

  // Small open-addressing set of pointers. Deduplicates a transaction's
  // declared writes in O(1) per declaration instead of a linear rescan of
  // the whole write set (quadratic for wide transactions).
  class PtrSet {
   public:
    // Returns true when p was already present; inserts it otherwise.
    bool CheckAndInsert(const void* p) {
      if (slots_.empty()) {
        slots_.assign(16, 0);
      } else if ((size_ + 1) * 2 > slots_.size()) {
        Grow();
      }
      const auto v = reinterpret_cast<std::uintptr_t>(p);
      const std::size_t mask = slots_.size() - 1;
      for (std::size_t i = SplitMix64(v) & mask;; i = (i + 1) & mask) {
        if (slots_[i] == v) {
          return true;
        }
        if (slots_[i] == 0) {
          slots_[i] = v;
          ++size_;
          return false;
        }
      }
    }

   private:
    void Grow() {
      std::vector<std::uintptr_t> old = std::move(slots_);
      slots_.assign(old.size() * 2, 0);
      const std::size_t mask = slots_.size() - 1;
      for (const std::uintptr_t v : old) {
        if (v == 0) {
          continue;
        }
        std::size_t i = SplitMix64(v) & mask;
        while (slots_[i] != 0) {
          i = (i + 1) & mask;
        }
        slots_[i] = v;
      }
    }

    std::vector<std::uintptr_t> slots_;  // 0 = empty (rows never live at 0)
    std::size_t size_ = 0;
  };

  // Per-transaction epoch state.
  struct TxnState {
    txn::Transaction* txn = nullptr;
    Sid sid;
    bool aborted = false;
    std::vector<vstore::RowEntry*> writes;    // declared write set (append step)
    std::vector<vstore::RowEntry*> inserted;  // rows created in the insert step
    PtrSet declared;                          // batch-append duplicate filter
  };

  // ---- Aria concurrency control (aria.cc) -------------------------------------
  EpochResult ExecuteEpochAria(std::vector<std::unique_ptr<txn::Transaction>> txns);
  int AriaSnapshotRead(TableId table, Key key, void* out, std::uint32_t cap,
                       std::size_t core);

  // ---- Epoch phases (epoch.cc) ----------------------------------------------
  void RunInsertStep();
  void RunMajorGc();
  void RunAppendStep();
  void RunBatchAppendStep();
  void RunExecutePhase();
  void CheckpointEpoch(Epoch epoch);
  void FinishEpoch();
  bool MaybeCrash(CrashSite site);

  // ---- Row operations (epoch.cc) --------------------------------------------
  vstore::RowEntry* InsertRowInternal(TableId table, Key key, const void* data,
                                      std::uint32_t size, Sid sid, std::size_t core);
  void DeclareWrite(TxnState& st, TableId table, Key key, std::size_t core);
  int ReadRow(TableId table, Key key, Sid sid, void* out, std::uint32_t cap, std::size_t core);
  // Execution-phase ordered range scan at `sid` (epoch.cc).
  std::uint32_t ExecScan(const txn::ScanSpec& spec, Sid sid, const txn::ScanRowFn& fn,
                         std::size_t core);
  int ReadPreEpoch(TableId table, Key key, void* out, std::uint32_t cap, std::size_t core);
  void WriteRow(TxnState& st, TableId table, Key key, const void* data, std::uint32_t size,
                std::size_t core);
  void DeleteRow(TxnState& st, TableId table, Key key, std::size_t core);
  void PostExecute(TxnState& st, std::size_t core);

  // Checkpoints `data` as the row's version `sid` in NVMM (the epoch's final
  // write; paper 4.5). Handles minor GC and crash-repair case 3. The
  // explicit-replay overload lets instant-recovery redo apply case-3 repair
  // without flipping the shared replaying_ flag under concurrent epochs.
  void PersistFinal(vstore::RowEntry* entry, Sid sid, const void* data, std::uint32_t size,
                    std::size_t core);
  void PersistFinalImpl(vstore::RowEntry* entry, Sid sid, const void* data,
                        std::uint32_t size, std::size_t core, bool replay);

  // Collects the per-epoch write-set digest by running the transactions'
  // insert/append declarations against side-effect-free contexts (epoch.cc).
  std::vector<DigestEntry> CollectDigest(
      const std::vector<std::unique_ptr<txn::Transaction>>& txns, Epoch epoch);
  friend class DigestAppendContext;
  friend class DigestInsertContext;

  // ---- Value pool routing (multi-size classes + cold tier) --------------------
  // Allocates a value block for `size` bytes from the smallest fitting class.
  vstore::ValueLoc AllocValue(std::uint32_t size, std::size_t core);
  // Maps a value offset back to its owning pool (disjoint areas).
  alloc::PersistentPool& ValuePoolForOffset(std::uint64_t offset);
  void FreeValue(std::size_t core, const vstore::ValueLoc& loc);
  void FreeValueGc(std::size_t core, const vstore::ValueLoc& loc);

  // Tier-aware value read (hot NVMM, inline, or cold block storage).
  void ReadVersionValue(vstore::PersistentRow& row, const vstore::VersionDesc& desc,
                        void* out, std::size_t core);

  // Cold-tier demotion (init phase; see DatabaseSpec::enable_cold_tier).
  void RunDemotions();
  // Walks back from an IGNOREd final slot to the latest non-ignored version
  // and checkpoints it (paper 4.6).
  void ResolveIgnoredFinal(vstore::RowEntry* entry, std::size_t core);
  void ProcessDelete(vstore::RowEntry* entry, std::size_t core);

  // Copies the row's latest pre-epoch value into the version array's initial
  // slot (append step).
  void FillInitialVersion(vstore::RowEntry* entry, vstore::VersionArray* va, std::size_t core);

  void FenceAll();
  void PersistCounters(Epoch epoch, std::size_t core = 0);

  // Reusable per-core bounce buffer for tiered value reads (grows
  // geometrically, never shrinks); replaces per-call std::vector allocation
  // on the ReadRow/ReadPreEpoch hot paths.
  std::uint8_t* ScratchFor(std::size_t core, std::size_t size) {
    auto& buf = scratch_[core].buf;
    if (buf.size() < size) {
      buf.resize(std::max(size, buf.size() * 2));
    }
    return buf.data();
  }

  // ---- Parallel epoch tail (epoch.cc; DESIGN.md section 10) -------------------
  // Each fans the serial tail loop out over pool_, preserving the serial
  // path's fence ordering (one FenceAll where the serial code fenced once).
  void ApplyIndexDeltasParallel(Epoch epoch);
  void ApplyIndexDeltasSerial(Epoch epoch, std::size_t core = 0);
  void WriteGcLogParallel(Epoch epoch);

  // ---- Pipelined epoch tail (epoch.cc; DESIGN.md section 13) ------------------
  // Work handed from ExecuteEpoch to the tail thread at the cut point.
  struct TailWork {
    Epoch epoch = 0;
    EpochResult result;
    std::vector<TxnOutcome> outcomes;
    bool has_outcomes = false;
  };
  // Runs epoch N's persistence tail — pool checkpoint shards, index-delta
  // apply, GC log, counters, the detached-line drain and the epoch-number
  // flip — at device core `core` (== spec_.workers on the tail thread).
  // Serial variants only; throws CrashedException when a crash hook fires.
  void RunTailPersist(Epoch epoch, std::size_t core);
  void TailThreadMain();
  // Hands the executed epoch to the tail thread. Requires JoinTail() first.
  void SubmitTail(TailWork work);
  // Waits for the in-flight tail, if any. False when the tail crashed.
  bool JoinTail();

  vstore::PersistentRow RowAt(const vstore::RowEntry* entry) {
    return vstore::PersistentRow(device_, entry->prow,
                                 tables_[entry->table]->schema().row_size);
  }

  // ---- Recovery (recovery.cc) ------------------------------------------------
  void ScanAndRebuild(RecoveryReport* report);
  void FastRebuildFromPersistentIndex(RecoveryReport* report);
  // Shared per-row crash repair + major-GC list rebuild (paper 4.5 / 5.5).
  void RepairAndCollectGc(vstore::PersistentRow& row, vstore::RowEntry* entry,
                          Epoch crashed_epoch, std::size_t core);

  // ---- Instant recovery internals (recovery.cc; DESIGN.md section 12) --------
  // Value of a pending key after one of its write slots executed (ascending
  // slot order). Histories are retained until the whole epoch retires so a
  // later-redone transaction can still read the value as of its own slot.
  struct RedoVersion {
    std::uint32_t slot;
    bool deleted;
    bool has_data;  // false only for insert-without-data (no committed value)
    std::vector<std::uint8_t> data;
  };
  struct RedoKey {
    std::vector<std::uint32_t> slots;  // ascending write slots from the digest
    std::vector<RedoVersion> history;  // values produced by executed slots
    std::vector<std::uint8_t> initial; // pre-epoch committed value
    bool initial_loaded = false;
    bool existed_pre_epoch = false;    // had a committed value before the epoch
    bool inserted = false;             // created by the crashed epoch's insert step
    std::uint32_t next = 0;            // next index into `slots` to execute
    bool retired = false;              // final state persisted to NVMM
  };
  struct InstantState {
    Epoch crashed_epoch = 0;
    std::vector<std::unique_ptr<txn::Transaction>> txns;
    std::vector<std::uint8_t> txn_ran;  // slot executed (at most once, ever)
    // Inverted digest: slot -> keys it writes (drives write-order redo).
    std::vector<std::vector<std::pair<TableId, Key>>> slot_writes;
    std::vector<std::unordered_map<Key, RedoKey>> pending;  // per table
    std::size_t total_keys = 0;
    std::size_t retired_keys = 0;
    std::size_t txns_ran = 0;
    // Deterministic sweep order for the background backfill.
    std::vector<std::pair<TableId, Key>> key_order;
    std::size_t sweep_next = 0;
  };
  // Fast-phase setup: load the digest, build the pending-replay state.
  // Returns false (leaving *txns untouched) when the digest is absent, torn,
  // or inconsistent, in which case Recover() falls back to full replay.
  bool SetupInstantRecovery(std::vector<std::unique_ptr<txn::Transaction>>* txns,
                            Epoch crashed_epoch);
  // Foreground hook (caller holds instant_mu_ with instant_ live): redo
  // `key`'s slice of the crashed epoch if still pending. Throws
  // CrashedException if a crash hook fires.
  void RedoKeySliceLocked(TableId table, Key key, std::size_t core);
  StatusOr<std::uint32_t> ReadCommittedImpl(TableId table, Key key, void* out,
                                            std::uint32_t cap);
  // Under instant_mu_: execute key's write slots < bound (all of them when
  // bound == ~0u), retiring the key at full bound.
  void EnsureKeyRedoneLocked(TableId table, Key key, std::uint32_t bound,
                             std::size_t core);
  void RunRedoSlotLocked(std::uint32_t slot, std::size_t core);
  // Serial-order read for redo execution: key's value as of `reader_slot`.
  int RedoReadLocked(TableId table, Key key, std::uint32_t reader_slot, void* out,
                     std::uint32_t cap, std::size_t core);
  void LoadRedoInitialLocked(TableId table, Key key, RedoKey& rk, std::size_t core);
  void RetireKeyLocked(TableId table, Key key, RedoKey& rk, std::size_t core);
  // Backfill-all + leftover slots + crashed-epoch checkpoint; clears the
  // pending state. Throws CrashedException if a crash hook fires.
  void FinishInstantRecoveryLocked();

  friend class RedoExecContext;
  friend class RedoAppendContext;
  friend class RedoInsertContext;

  // Persisted major-GC list (with enable_persistent_index).
  struct GcLogHeader {
    std::uint32_t epoch;
    std::uint32_t count;
    std::uint32_t overflow;
    std::uint32_t reserved;
  };
  void WriteGcLog(Epoch epoch, std::size_t core = 0);

  sim::NvmDevice& device_;
  sim::NvmDevice* cold_device_ = nullptr;
  DatabaseSpec spec_;
  Layout layout_;
  WorkerPool pool_;
  alloc::TransientPool transient_;
  std::vector<std::unique_ptr<alloc::PersistentPool>> value_pools_;  // ascending block size
  std::vector<std::unique_ptr<alloc::PersistentPool>> row_pools_;
  std::unique_ptr<alloc::PersistentPool> cold_pool_;  // on cold_device_ (optional)
  std::vector<std::unique_ptr<index::PersistentIndex>> pindexes_;  // per table (optional)
  std::vector<std::unique_ptr<index::TableIndex>> tables_;
  std::unique_ptr<InputLog> log_;
  std::unique_ptr<vstore::VersionCache> cache_;
  std::vector<std::atomic<std::uint64_t>> counters_;
  std::vector<std::uint64_t> counters_epoch_start_;
  EngineStats stats_;
  PhaseProfiler profiler_;
  sim::NvmCounters epoch_nvm_start_;  // mirrored into stats_.nvm_* at epoch end

  Epoch current_epoch_ = 0;  // last completed epoch
  Epoch epoch_ = 0;          // epoch currently executing
  bool loaded_ = false;
  std::size_t load_rr_ = 0;  // round-robin core for bulk load

  // Per-epoch state.
  std::vector<std::unique_ptr<txn::Transaction>> owned_txns_;
  std::vector<TxnState> txn_states_;
  std::atomic<std::size_t> epoch_committed_{0};
  std::atomic<std::size_t> epoch_aborted_{0};
  struct IndexDelta {
    TableId table;
    bool is_delete;
    Key key;
    std::uint64_t prow;
  };
  struct alignas(kCacheLineSize) CoreEpochState {
    std::vector<vstore::RowEntry*> major_gc;   // rows to collect next epoch
    std::vector<vstore::RowEntry*> deleted;    // index removals at epoch end
    std::vector<IndexDelta> index_deltas;      // persistent-index batch (optional)
  };
  std::vector<CoreEpochState> core_state_;
  std::vector<std::vector<vstore::RowEntry*>> pending_major_gc_;  // consumed this epoch

  struct alignas(kCacheLineSize) CoreScratch {
    std::vector<std::uint8_t> buf;
  };
  std::vector<CoreScratch> scratch_;  // see ScratchFor()

  // Batch-append intent buffers: [owner core][collecting worker].
  struct BatchIntent {
    vstore::RowEntry* entry;
    std::uint64_t sid;
  };
  std::vector<std::vector<std::vector<BatchIntent>>> append_intents_;

  bool replaying_ = false;
  std::unordered_set<std::uint64_t> gc_dedup_;  // value offsets already freed by crashed GC

  // Instant recovery: pending-replay state for the crashed epoch. All redo
  // work (foreground on-demand and background backfill) serializes on
  // instant_mu_; instant_active_ is the lock-free fast-path gate.
  std::unique_ptr<InstantState> instant_;
  mutable std::mutex instant_mu_;
  std::atomic<bool> instant_active_{false};

  // Striped pending-key membership for the instant-recovery read gate.
  // Readers consult their key's stripe before touching instant_mu_, so reads
  // of retired (or never-pending) keys proceed without contending on the
  // global redo lock while redo/backfill work holds it. Entries are hash
  // counts (collision-safe); a key is erased only after RetireKeyLocked
  // persisted its final state.
  static constexpr std::size_t kInstantStripes = 64;
  struct alignas(kCacheLineSize) InstantStripe {
    mutable std::mutex mu;
    std::unordered_map<std::uint64_t, std::uint32_t> pending;  // hash -> count
  };
  std::array<InstantStripe, kInstantStripes> instant_stripes_;
  InstantStripe& StripeFor(TableId table, Key key);
  bool InstantKeyPending(TableId table, Key key);
  void InstantStripeInsert(TableId table, Key key);
  void InstantStripeErase(TableId table, Key key);

  // Cold tier: rows whose cache entry aged out (demotion candidates for this
  // epoch) and hot-value blocks to free once the demoting epoch committed.
  std::vector<vstore::RowEntry*> demotion_candidates_;
  std::vector<vstore::ValueLoc> cold_frees_next_;  // freed in the NEXT epoch's GC
  std::vector<vstore::ValueLoc> cold_frees_due_;

  CrashHook crash_hook_;
  PostLogHook post_log_hook_;
  // Guards installation AND invocation of epoch_callback_ (the tail thread
  // invokes it concurrently with client threads calling SetEpochCallback).
  std::mutex callback_mu_;
  EpochCallback epoch_callback_;
  std::array<std::atomic<std::uint64_t>, kCrashSiteCount> site_reached_{};
  std::array<std::atomic<std::uint64_t>, kCrashSiteCount> site_fired_{};
  std::size_t last_log_bytes_ = 0;

  // Pipelined epoch tail (enable_epoch_pipeline; DESIGN.md section 13). The
  // tail thread is started lazily by the first pipelined ExecuteEpoch and
  // joined by the destructor. tail_mu_ guards all tail_* fields below.
  std::thread tail_thread_;
  std::mutex tail_mu_;
  std::condition_variable tail_cv_;
  TailWork tail_work_;
  bool tail_inflight_ = false;
  bool tail_stop_ = false;
  bool tail_crashed_ = false;  // sticky: a crash hook fired on the tail thread
  // Stats-mirror cursor for pipelined mode: device-counter snapshot taken at
  // the end of the previous tail (tail-thread-owned once the thread runs).
  sim::NvmCounters nvm_mirror_snapshot_;
  // Wall and thread-CPU time of the last completed tail, consumed (and
  // zeroed) by the next JoinTail for overlap accounting. Guarded by tail_mu_.
  std::uint64_t tail_last_dur_ns_ = 0;
  std::uint64_t tail_last_cpu_ns_ = 0;

  // Aria: transactions deferred by conflicts, re-queued at the front of the
  // next batch (deterministic from the batch composition).
  std::vector<std::unique_ptr<txn::Transaction>> aria_deferred_;

  struct CrashedException {};
};

}  // namespace nvc::core
