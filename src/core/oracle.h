// Crash-consistency oracle: full logical-state capture and diff.
//
// The chaos harness (tools/crash_fuzz) recovers a crashed database and then
// compares it against a reference database that executed the same input
// stream crash-free. Comparison is *logical* — per-key committed bytes,
// application counters, and the epoch number — because physical placement
// (value-pool offsets, version-slot parity) may legitimately differ after a
// replayed epoch re-allocates.
//
// ValidatePersistentIndex additionally cross-checks the optional NVMM index
// (section 7 extension) against the DRAM index, in both directions, so a
// torn delta batch that survives recovery is caught even when row contents
// happen to match.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/core/database.h"

namespace nvc::core {

// A full logical snapshot of committed database state.
struct OracleState {
  Epoch epoch = 0;
  std::vector<std::uint64_t> counters;
  // Per table: key -> latest committed value bytes. A key missing from the
  // map has no committed row (never inserted, deleted, or tombstoned).
  std::vector<std::map<Key, std::vector<std::uint8_t>>> tables;

  std::size_t total_rows() const {
    std::size_t n = 0;
    for (const auto& t : tables) {
      n += t.size();
    }
    return n;
  }
};

// Captures every table, every row, and every counter. Call only between
// epochs (no execution in flight).
OracleState CaptureState(Database& db);

// Order-independent 64-bit digest of a snapshot (FNV-1a over epoch,
// counters, and every table's key/value bytes in key order). Two states
// hash equal iff DiffStates would report zero divergences, up to hash
// collisions; tests use it to compare runs without holding both states.
std::uint64_t StateHash(const OracleState& state);

// Compares two snapshots. Returns the number of divergences and appends a
// human-readable description of the first `max_reports` of them to *out.
std::size_t DiffStates(const OracleState& expected, const OracleState& actual,
                       std::string* out, std::size_t max_reports = 16);

// ---- Multi-shard oracle (src/shard) -----------------------------------------
// A sharded database's logical state is the ordered vector of its shards'
// states. These are pure functions over OracleState vectors so the core
// oracle stays independent of the shard layer.

// Global digest across all shards: mixes each shard's index and StateHash so
// the hash pins both shard contents and shard placement. Two sharded
// deployments hash equal iff every shard pair diffs clean.
std::uint64_t MultiShardStateHash(const std::vector<OracleState>& shards);

// Compares two sharded snapshots shard by shard (including the global-epoch
// agreement across shards). Returns total divergences; descriptions of the
// first `max_reports` are appended to *out with a "shard N" prefix.
std::size_t DiffShardedStates(const std::vector<OracleState>& expected,
                              const std::vector<OracleState>& actual, std::string* out,
                              std::size_t max_reports = 16);

// Self-consistency check of the persistent NVMM index against the DRAM
// index (both key-set directions plus row-header key agreement). Returns the
// number of inconsistencies, described in *out. Zero when the database runs
// without enable_persistent_index.
std::size_t ValidatePersistentIndex(Database& db, std::string* out,
                                    std::size_t max_reports = 16);

// Self-consistency check of each ordered table's skiplist against its hash
// index: both key-set directions agree and the ordered traversal is strictly
// ascending. Returns the number of inconsistencies, described in *out. Zero
// when no table is declared ordered.
std::size_t ValidateOrderedIndex(Database& db, std::string* out,
                                 std::size_t max_reports = 16);

}  // namespace nvc::core
